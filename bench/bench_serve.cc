// Network-server benchmark: drives a live `pcube serve` instance over
// loopback at 1x and 2x its measured capacity and reports what the
// admission controller does about it. Phase one calibrates — as many
// closed-loop clients as the server has workers measure the sustainable
// QPS. Phase two offers that load (1x: clients == workers, nothing to
// shed) and then doubles the offered concurrency past the queue capacity
// (2x), where the server MUST shed with ResourceExhausted while the
// requests it does admit keep a bounded queue wait.
//
// The sweep doubles as the ci.sh `serve` overload gate: the process exits
// non-zero when the 2x run sheds nothing (admission inert), when any
// client sees a non-shed/non-timeout failure, or when the 1x run sheds
// more than a quarter of its traffic (capacity model broken).
//
// Output: a table on stdout plus BENCH_serve.json in the working
// directory — per-run offered/achieved QPS, shed rate, and p50/p95/p99
// queue wait as reported by the server per admitted request.
//
// Environment knobs:
//   PCUBE_SERVE_ROWS       dataset size                   (default 60000)
//   PCUBE_SERVE_WORKERS    server executor threads        (default 2)
//   PCUBE_SERVE_QUEUE_CAP  admission queue capacity       (default 8)
//   PCUBE_SERVE_SECONDS    measured seconds per run       (default 2)
//   PCUBE_SERVE_SMOKE      when set, shrink rows/seconds for CI
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "data/generators.h"
#include "server/client.h"
#include "server/server.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

/// Deterministic mixed workload over the synthetic schema: skylines and
/// linear top-k spread across the boolean cells.
std::vector<QueryRequest> BuildWorkload(const SyntheticConfig& config) {
  Random rng(2024);
  auto ranking = std::make_shared<LinearRanking>(
      std::vector<double>(config.num_pref, 1.0));
  std::vector<QueryRequest> queries;
  for (int i = 0; i < 24; ++i) {
    PredicateSet preds;
    preds.Add({static_cast<int>(rng.Uniform(config.num_bool)),
               static_cast<uint32_t>(rng.Uniform(config.bool_cardinality))});
    if (i % 2 == 0) {
      queries.push_back(QueryRequest::Skyline(std::move(preds)));
    } else {
      queries.push_back(QueryRequest::TopK(std::move(preds), ranking, 10));
    }
  }
  return queries;
}

struct RunStats {
  double seconds = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t timeout = 0;
  uint64_t hard_failures = 0;
  std::vector<double> queue_waits;  // seconds, admitted requests only

  double OfferedQps() const {
    return static_cast<double>(ok + shed + timeout) / seconds;
  }
  double Qps() const { return static_cast<double>(ok) / seconds; }
  double ShedRate() const {
    uint64_t total = ok + shed + timeout;
    return total == 0 ? 0.0 : static_cast<double>(shed) / total;
  }
  double QueueWaitQuantile(double q) const {
    if (queue_waits.empty()) return 0.0;
    std::vector<double> sorted = queue_waits;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
  }
};

/// `clients` closed-loop connections hammer the server for `seconds`,
/// cycling through the workload. Offered load is set by the concurrency:
/// each client keeps exactly one request in flight at all times.
RunStats DriveLoad(uint16_t port, const std::vector<QueryRequest>& queries,
                   size_t clients, double seconds) {
  RunStats stats;
  stats.seconds = seconds;
  Mutex mu;
  const auto end =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6));
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = PCubeClient::Connect("127.0.0.1", port);
      RunStats local;
      if (!client.ok()) {
        local.hard_failures = 1;
      } else {
        size_t i = c;  // stagger the starting query per client
        while (std::chrono::steady_clock::now() < end) {
          PCubeClient::ServerStats server_stats;
          auto resp =
              (*client)->Run(queries[i++ % queries.size()], "bench",
                             &server_stats);
          if (resp.ok()) {
            ++local.ok;
            local.queue_waits.push_back(server_stats.queue_wait_seconds);
          } else if (resp.status().IsResourceExhausted()) {
            ++local.shed;
            // Shed answers are nearly free; without a beat of backoff a
            // rejected closed-loop client would re-offer at memory speed
            // and the "offered QPS" number would stop meaning anything.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          } else if (resp.status().IsTimeout()) {
            ++local.timeout;
          } else {
            ++local.hard_failures;
            break;  // a protocol/socket failure poisons this connection
          }
        }
      }
      MutexLock lock(&mu);
      stats.ok += local.ok;
      stats.shed += local.shed;
      stats.timeout += local.timeout;
      stats.hard_failures += local.hard_failures;
      stats.queue_waits.insert(stats.queue_waits.end(),
                               local.queue_waits.begin(),
                               local.queue_waits.end());
    });
  }
  for (std::thread& t : threads) t.join();
  return stats;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("PCUBE_SERVE_SMOKE") != nullptr;
  SyntheticConfig config;
  config.num_tuples = EnvU64("PCUBE_SERVE_ROWS", smoke ? 20000 : 60000);
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 6;
  config.seed = 42;
  const size_t workers = EnvU64("PCUBE_SERVE_WORKERS", 2);
  const size_t queue_cap = EnvU64("PCUBE_SERVE_QUEUE_CAP", 8);
  const double seconds =
      static_cast<double>(EnvU64("PCUBE_SERVE_SECONDS", smoke ? 1 : 2));

  WorkbenchOptions wo;
  // Every request must execute for the offered load to be real; a result
  // cache would answer the repeats in microseconds and hide the queue.
  wo.result_cache_mb = 0;
  std::printf("building workbench: %llu rows\n",
              static_cast<unsigned long long>(config.num_tuples));
  auto wb = Workbench::Build(GenerateSynthetic(config), wo);
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();

  ServerOptions options;
  options.workers = workers;
  options.admission.queue_cap = queue_cap;
  PCubeServer server(wb->get(), options);
  Status started = server.Start();
  PCUBE_CHECK(started.ok()) << started.ToString();
  std::printf("pcube serve on 127.0.0.1:%u (%zu workers, queue cap %zu)\n",
              server.port(), workers, queue_cap);

  std::vector<QueryRequest> queries = BuildWorkload(config);

  // Untimed warm-up so calibration and the measured runs all see the same
  // steady cache state (the fragment cache warms across the whole sweep).
  (void)DriveLoad(server.port(), queries, workers, seconds * 0.5);

  // Calibration: closed-loop concurrency == workers saturates the executor
  // without queueing — the measured QPS is the sustainable capacity.
  RunStats capacity = DriveLoad(server.port(), queries, workers, seconds);
  std::printf("capacity: %.1f qps at concurrency %zu\n", capacity.Qps(),
              workers);

  // 1x: same concurrency as capacity — nothing should be shed.
  // 2x: offered concurrency doubles past queue_cap + workers, so the
  //     instantaneous backlog exceeds the queue and the controller MUST
  //     shed rather than let the queue (and every deadline in it) grow.
  struct Run {
    const char* name;
    size_t clients;
    RunStats stats;
  };
  std::vector<Run> runs;
  runs.push_back({"1x", workers, {}});
  runs.push_back({"2x", 2 * (queue_cap + workers), {}});
  for (Run& run : runs) {
    run.stats = DriveLoad(server.port(), queries, run.clients, seconds);
    std::printf(
        "  %s (%2zu clients): %7.1f qps offered, %7.1f answered, "
        "shed %4.1f%%, queue wait p50 %.2f ms p95 %.2f ms p99 %.2f ms\n",
        run.name, run.clients, run.stats.OfferedQps(), run.stats.Qps(),
        run.stats.ShedRate() * 100, run.stats.QueueWaitQuantile(0.5) * 1e3,
        run.stats.QueueWaitQuantile(0.95) * 1e3,
        run.stats.QueueWaitQuantile(0.99) * 1e3);
  }
  server.Stop();

  std::ofstream json("BENCH_serve.json");
  json << "{\n  \"workload\": {\"rows\": " << config.num_tuples
       << ", \"workers\": " << workers << ", \"queue_cap\": " << queue_cap
       << ", \"seconds_per_run\": " << seconds
       << ", \"capacity_qps\": " << capacity.Qps() << "},\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunStats& s = runs[i].stats;
    json << "    {\"offered\": \"" << runs[i].name
         << "\", \"clients\": " << runs[i].clients
         << ", \"offered_qps\": " << s.OfferedQps()
         << ", \"qps\": " << s.Qps() << ", \"shed_rate\": " << s.ShedRate()
         << ", \"shed\": " << s.shed << ", \"timeouts\": " << s.timeout
         << ", \"queue_wait_p50\": " << s.QueueWaitQuantile(0.5)
         << ", \"queue_wait_p95\": " << s.QueueWaitQuantile(0.95)
         << ", \"queue_wait_p99\": " << s.QueueWaitQuantile(0.99) << "}"
         << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("wrote BENCH_serve.json\n");

  // Gates (ci.sh `serve` phase relies on the exit code).
  uint64_t hard = capacity.hard_failures;
  for (const Run& run : runs) hard += run.stats.hard_failures;
  if (hard != 0) {
    std::fprintf(stderr, "bench_serve: %llu hard failures\n",
                 static_cast<unsigned long long>(hard));
    return 1;
  }
  if (runs[1].stats.shed == 0) {
    std::fprintf(stderr,
                 "bench_serve: 2x overload shed nothing — admission inert\n");
    return 1;
  }
  if (runs[0].stats.ShedRate() > 0.25) {
    std::fprintf(stderr,
                 "bench_serve: 1x load shed %.0f%% — capacity model broken\n",
                 runs[0].stats.ShedRate() * 100);
    return 1;
  }
  return 0;
}
