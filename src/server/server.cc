#include "server/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/timer.h"
#include "server/protocol.h"

namespace pcube {

namespace {
/// What one worker-pool execution hands back to the connection thread.
struct ExecOutcome {
  Status status;
  QueryResponse response;
  double queue_wait_seconds = 0;
  double exec_seconds = 0;
};
}  // namespace

PCubeServer::PCubeServer(QueryService* service, ServerOptions options,
                         QueryLog* query_log)
    : service_(service),
      options_([&options] {
        if (options.workers == 0) {
          options.workers = std::max(1u, std::thread::hardware_concurrency());
        }
        options.admission.workers = options.workers;
        return options;
      }()),
      query_log_(query_log),
      admission_(options_.admission, &MetricsRegistry::Default()) {
  requests_total_ =
      MetricsRegistry::Default().GetCounter("pcube_server_query_frames_total");
  responses_total_ =
      MetricsRegistry::Default().GetCounter("pcube_server_responses_total");
  write_frames_total_ =
      MetricsRegistry::Default().GetCounter("pcube_server_write_frames_total");
  write_acks_total_ =
      MetricsRegistry::Default().GetCounter("pcube_server_write_acks_total");
}

PCubeServer::~PCubeServer() { Stop(); }

Status PCubeServer::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) return Status::InvalidArgument("server already started");
    started_ = true;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // unauthenticated protocol
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status s =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  pool_ = std::make_unique<ThreadPool>(options_.workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void PCubeServer::Stop() {
  if (stopping_.exchange(true)) {
    // A second caller still waits for the first shutdown to finish.
    if (accept_thread_.joinable()) accept_thread_.join();
    MutexLock lock(&mu_);
    conns_done_.Wait(&mu_, [this]() REQUIRES(mu_) {
      return active_conns_ == 0;
    });
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    MutexLock lock(&mu_);
    // Unblock every connection thread stuck in a socket read; the threads
    // own their fds and close them on exit.
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    conns_done_.Wait(&mu_, [this]() REQUIRES(mu_) {
      return active_conns_ == 0;
    });
  }
  pool_.reset();  // drains in-flight tasks (all futures already collected)
}

uint64_t PCubeServer::requests_served() const {
  return responses_total_->Value();
}

void PCubeServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — stop accepting
    }
    // A response is several small sends (header, chunks, done); with Nagle
    // on, each one can stall ~40 ms behind the peer's delayed ACK.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    bool admitted = false;
    {
      MutexLock lock(&mu_);
      if (!stopping_.load(std::memory_order_relaxed) &&
          active_conns_ < options_.max_connections) {
        open_fds_.push_back(fd);
        ++active_conns_;
        admitted = true;
      }
    }
    if (!admitted) {
      // Courtesy reject before closing; the close is the real answer.
      wire::WriteFrame(fd, wire::FrameType::kError,
                       wire::EncodeError(Status::ResourceExhausted(
                           "server connection limit reached")))
          .IgnoreError();
      ::close(fd);
      continue;
    }
    std::thread([this, fd] { ServeConnection(fd); }).detach();
  }
}

void PCubeServer::ServeConnection(int fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    wire::FrameHeader header;
    std::string payload;
    Timer accept_timer;
    Status s = wire::ReadFrame(fd, &header, &payload);
    const double accept_seconds = accept_timer.ElapsedSeconds();
    if (!s.ok()) {
      // Header-level damage desynchronizes the stream: answer (the peer
      // may still be reading) and close. Clean closes / resets just close.
      if (s.IsCorruption()) {
        // Best-effort: the peer may already be gone; we close either way.
        wire::WriteFrame(fd, wire::FrameType::kError, wire::EncodeError(s))
            .IgnoreError();
      }
      break;
    }
    if (header.type == wire::FrameType::kWrite) {
      if (!HandleWrite(fd, payload)) break;
      continue;
    }
    if (header.type != wire::FrameType::kQuery) {
      // Best-effort courtesy error; the break below drops the connection.
      wire::WriteFrame(fd, wire::FrameType::kError,
                       wire::EncodeError(Status::InvalidArgument(
                           "expected a query or write frame")))
          .IgnoreError();
      break;  // a confused peer is unlikely to be framed correctly ahead
    }
    if (!HandleQuery(fd, payload, accept_seconds)) break;
  }
  ::close(fd);
  {
    MutexLock lock(&mu_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
    --active_conns_;
    // Signalled under mu_ so Stop() cannot destroy the CondVar while a
    // notify is in progress.
    conns_done_.SignalAll();
  }
}

bool PCubeServer::HandleQuery(int fd, const std::string& payload,
                              double accept_seconds) {
  requests_total_->Increment();
  auto answer_error = [fd](const Status& s) {
    return wire::WriteFrame(fd, wire::FrameType::kError, wire::EncodeError(s))
        .ok();
  };

  Timer parse_timer;
  wire::QueryEnvelope envelope;
  Status parse_status = wire::DecodeQuery(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      &envelope);
  const double parse_seconds = parse_timer.ElapsedSeconds();
  if (!parse_status.ok()) {
    // Payload-level damage in a well-framed request: the stream is still
    // synchronized, so answer and keep the connection.
    return answer_error(parse_status);
  }
  if (envelope.tenant.empty()) envelope.tenant = "default";
  const QueryRequest& request = envelope.request;

  AdmissionController::Ticket ticket;
  Status admit = admission_.Admit(envelope.tenant, request.deadline_ms,
                                  &ticket);
  if (!admit.ok()) {
    return answer_error(admit);  // the early shed: nothing was queued
  }

  // The connection thread blocks on its own query (one in flight per
  // connection); concurrency comes from many connections sharing the pool.
  std::future<ExecOutcome> future = pool_->Submit([&, ticket] {
    ExecOutcome out;
    uint64_t remaining_ms = 0;
    Status start = admission_.StartExecution(
        ticket, request.deadline_ms, &remaining_ms, &out.queue_wait_seconds);
    if (!start.ok()) {
      out.status = std::move(start);  // budget died in the queue: Timeout
      return out;
    }
    QueryRequest run = request;
    run.deadline_ms = remaining_ms;
    Timer exec_timer;
    Result<QueryResponse> result = service_->RunShared(run);
    out.exec_seconds = exec_timer.ElapsedSeconds();
    admission_.Finish(/*executed=*/true, out.exec_seconds);
    if (result.ok()) {
      out.response = std::move(result).value();
    } else {
      out.status = result.status();
    }
    return out;
  });
  ExecOutcome out = future.get();
  if (!out.status.ok()) return answer_error(out.status);

  QueryResponse& resp = out.response;
  wire::ResultHeader rh;
  rh.trace_id = resp.trace_id();
  rh.result_count = resp.tids.size();
  rh.has_scores = !resp.scores.empty();
  rh.plan = static_cast<uint8_t>(resp.estimate.choice);
  rh.cache = static_cast<uint8_t>(resp.cache);
  rh.degraded = resp.degraded;
  rh.fanout_shards = resp.fanout_shards;
  rh.seconds = resp.seconds;
  rh.queue_wait_seconds = out.queue_wait_seconds;
  rh.io_reads = resp.io.TotalReads();
  rh.counters = resp.counters;

  Timer respond_timer;
  bool wrote = wire::WriteFrame(fd, wire::FrameType::kResultHeader,
                                wire::EncodeResultHeader(rh))
                   .ok();
  for (size_t first = 0; wrote && first < resp.tids.size();
       first += wire::kChunkTuples) {
    const size_t count =
        std::min(wire::kChunkTuples, resp.tids.size() - first);
    wrote = wire::WriteFrame(
                fd, wire::FrameType::kResultChunk,
                wire::EncodeResultChunk(resp.tids, resp.scores, first, count))
                .ok();
  }
  if (wrote) {
    wrote = wire::WriteFrame(fd, wire::FrameType::kDone, std::string()).ok();
  }
  const double respond_seconds = respond_timer.ElapsedSeconds();

  resp.trace.Record("accept", accept_seconds);
  resp.trace.Record("parse", parse_seconds);
  resp.trace.Record("queue_wait", out.queue_wait_seconds);
  resp.trace.Record("execute", out.exec_seconds);
  resp.trace.Record("respond", respond_seconds);
  if (query_log_ != nullptr) {
    query_log_->Append(QueryLogRecord(request, resp, envelope.tenant));
  }
  if (wrote) responses_total_->Increment();
  return wrote;
}

bool PCubeServer::HandleWrite(int fd, const std::string& payload) {
  write_frames_total_->Increment();
  auto answer_error = [fd](const Status& s) {
    return wire::WriteFrame(fd, wire::FrameType::kError, wire::EncodeError(s))
        .ok();
  };

  wire::WriteEnvelope envelope;
  Status parse_status = wire::DecodeWrite(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
      &envelope);
  if (!parse_status.ok()) {
    // Payload-level damage in a well-framed write: stream still in sync.
    return answer_error(parse_status);
  }
  if (envelope.tenant.empty()) envelope.tenant = "default";

  // No admission ticket: writes don't queue on the worker pool, and the
  // WAL's group commit is itself the write-side backpressure (a writer
  // blocks until its group's fsync lands). The tenant is still recorded
  // so the per-tenant frame counters stay honest.
  Result<WriteResult> result = service_->Apply(envelope.batch);
  if (!result.ok()) return answer_error(result.status());
  const bool wrote = wire::WriteFrame(fd, wire::FrameType::kWriteAck,
                                      wire::EncodeWriteAck(result.value()))
                         .ok();
  if (wrote) write_acks_total_->Increment();
  return wrote;
}

}  // namespace pcube
