// Lemma 2 tests: drill-down and roll-up executed from the previous query's
// cached lists must return exactly the answers of a fresh query — for both
// skyline and top-k — while expanding fewer R-tree nodes.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "query/incremental.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

std::vector<double> Scores(const TopKOutput& out) {
  std::vector<double> s;
  for (const SearchEntry& e : out.results) s.push_back(e.key);
  return s;
}

class IncrementalTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Workbench> MakeWorkbench(uint64_t seed) {
    SyntheticConfig config;
    config.num_tuples = 4000;
    config.num_bool = 3;
    config.num_pref = 2;
    config.bool_cardinality = 3;
    config.seed = seed;
    WorkbenchOptions options;
    options.rtree.max_entries = 10;
    auto wb = Workbench::Build(GenerateSynthetic(config), options);
    PCUBE_CHECK(wb.ok());
    return std::move(*wb);
  }

  Result<SkylineOutput> RunSkyline(Workbench& w, const PredicateSet& preds,
                                   const std::vector<SearchEntry>* seed) {
    auto probe = w.cube()->MakeProbe(preds);
    if (!probe.ok()) return probe.status();
    SkylineEngine engine(w.tree(), probe->get(), nullptr);
    return seed == nullptr ? engine.Run() : engine.RunFrom(*seed);
  }

  Result<TopKOutput> RunTopK(Workbench& w, const PredicateSet& preds,
                             const RankingFunction& f, size_t k,
                             const std::vector<SearchEntry>* seed) {
    auto probe = w.cube()->MakeProbe(preds);
    if (!probe.ok()) return probe.status();
    TopKEngine engine(w.tree(), probe->get(), nullptr, &f, k);
    return seed == nullptr ? engine.Run() : engine.RunFrom(*seed);
  }
};

TEST_P(IncrementalTest, SkylineDrillDownMatchesFreshQuery) {
  auto wb = MakeWorkbench(300 + GetParam());
  Random rng(GetParam());
  PredicateSet base{{0, static_cast<uint32_t>(rng.Uniform(3))}};
  auto first = RunSkyline(*wb, base, nullptr);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(SkylineTids(*first), NaiveSkyline(wb->data(), base));

  // Drill down by adding a predicate on another dimension.
  PredicateSet drilled = base;
  drilled.Add({1, static_cast<uint32_t>(rng.Uniform(3))});
  auto seed = DrillDownSeed(*first);
  ASSERT_TRUE(wb->ColdStart().ok());
  auto incremental = RunSkyline(*wb, drilled, &seed);
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(SkylineTids(*incremental), NaiveSkyline(wb->data(), drilled));

  // And it must be cheaper than a fresh execution (Fig. 16's speed-up).
  auto fresh = RunSkyline(*wb, drilled, nullptr);
  ASSERT_TRUE(fresh.ok());
  EXPECT_LE(incremental->counters.nodes_expanded,
            fresh->counters.nodes_expanded);
}

TEST_P(IncrementalTest, SkylineRollUpMatchesFreshQuery) {
  auto wb = MakeWorkbench(330 + GetParam());
  Random rng(40 + GetParam());
  PredicateSet base{{0, static_cast<uint32_t>(rng.Uniform(3))},
                    {2, static_cast<uint32_t>(rng.Uniform(3))}};
  auto first = RunSkyline(*wb, base, nullptr);
  ASSERT_TRUE(first.ok());

  PredicateSet rolled = base;
  rolled.Remove(2);
  auto seed = RollUpSeed(*first);
  auto incremental = RunSkyline(*wb, rolled, &seed);
  ASSERT_TRUE(incremental.ok());
  EXPECT_EQ(SkylineTids(*incremental), NaiveSkyline(wb->data(), rolled));
}

TEST_P(IncrementalTest, TopKDrillDownMatchesFreshQuery) {
  auto wb = MakeWorkbench(360 + GetParam());
  Random rng(80 + GetParam());
  LinearRanking f({0.5, 0.5});
  PredicateSet base{{0, static_cast<uint32_t>(rng.Uniform(3))}};
  auto first = RunTopK(*wb, base, f, 20, nullptr);
  ASSERT_TRUE(first.ok());

  PredicateSet drilled = base;
  drilled.Add({1, static_cast<uint32_t>(rng.Uniform(3))});
  auto seed = DrillDownSeed(*first);
  auto incremental = RunTopK(*wb, drilled, f, 20, &seed);
  ASSERT_TRUE(incremental.ok());
  auto naive = NaiveTopK(wb->data(), drilled, f, 20);
  std::vector<double> expect;
  for (const auto& [tid, score] : naive) expect.push_back(score);
  std::vector<double> got = Scores(*incremental);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], expect[i], 1e-9);
}

TEST_P(IncrementalTest, TopKRollUpMatchesFreshQuery) {
  auto wb = MakeWorkbench(390 + GetParam());
  Random rng(120 + GetParam());
  LinearRanking f({0.8, 0.2});
  PredicateSet base{{0, static_cast<uint32_t>(rng.Uniform(3))},
                    {1, static_cast<uint32_t>(rng.Uniform(3))}};
  auto first = RunTopK(*wb, base, f, 15, nullptr);
  ASSERT_TRUE(first.ok());

  PredicateSet rolled = base;
  rolled.Remove(0);
  auto seed = RollUpSeed(*first);
  auto incremental = RunTopK(*wb, rolled, f, 15, &seed);
  ASSERT_TRUE(incremental.ok());
  auto naive = NaiveTopK(wb->data(), rolled, f, 15);
  std::vector<double> got = Scores(*incremental);
  ASSERT_EQ(got.size(), naive.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], naive[i].second, 1e-9);
  }
}

TEST_P(IncrementalTest, ChainedDrillDowns) {
  // Drill down twice (1 -> 2 -> 3 predicates), reusing lists each time.
  auto wb = MakeWorkbench(420 + GetParam());
  Random rng(160 + GetParam());
  PredicateSet preds{{0, static_cast<uint32_t>(rng.Uniform(3))}};
  auto out = RunSkyline(*wb, preds, nullptr);
  ASSERT_TRUE(out.ok());
  for (int dim = 1; dim <= 2; ++dim) {
    preds.Add({dim, static_cast<uint32_t>(rng.Uniform(3))});
    auto seed = DrillDownSeed(*out);
    out = RunSkyline(*wb, preds, &seed);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(SkylineTids(*out), NaiveSkyline(wb->data(), preds))
        << preds.ToString();
  }
}

TEST_P(IncrementalTest, ChainedDrillDownsThenRollUpsSkyline) {
  // Regression test for session-list maintenance: after an incremental run,
  // earlier pruned entries must be carried forward (MergeAfterDrillDown /
  // MergeAfterRollUp) or a later roll-up misses answers.
  auto wb = MakeWorkbench(450 + GetParam());
  Random rng(200 + GetParam());
  std::vector<Predicate> chain = {
      {0, static_cast<uint32_t>(rng.Uniform(3))},
      {1, static_cast<uint32_t>(rng.Uniform(3))},
      {2, static_cast<uint32_t>(rng.Uniform(3))}};

  PredicateSet preds{chain[0]};
  auto out = RunSkyline(*wb, preds, nullptr);
  ASSERT_TRUE(out.ok());
  SkylineOutput session = std::move(*out);

  // Drill down twice.
  for (int i = 1; i <= 2; ++i) {
    preds.Add(chain[i]);
    auto seed = DrillDownSeed(session);
    auto run = RunSkyline(*wb, preds, &seed);
    ASSERT_TRUE(run.ok());
    session = MergeAfterDrillDown(std::move(*run), session);
    EXPECT_EQ(SkylineTids(session), NaiveSkyline(wb->data(), preds));
  }
  // Roll back up twice, in reverse.
  for (int i = 2; i >= 1; --i) {
    preds.Remove(chain[i].dim);
    auto seed = RollUpSeed(session);
    auto run = RunSkyline(*wb, preds, &seed);
    ASSERT_TRUE(run.ok());
    session = MergeAfterRollUp(std::move(*run), session);
    EXPECT_EQ(SkylineTids(session), NaiveSkyline(wb->data(), preds))
        << "roll-up to " << preds.ToString();
  }
}

TEST_P(IncrementalTest, ChainedDrillDownsThenRollUpsTopK) {
  auto wb = MakeWorkbench(480 + GetParam());
  Random rng(240 + GetParam());
  LinearRanking f({0.4, 0.6});
  const size_t k = 12;
  std::vector<Predicate> chain = {
      {0, static_cast<uint32_t>(rng.Uniform(3))},
      {1, static_cast<uint32_t>(rng.Uniform(3))},
      {2, static_cast<uint32_t>(rng.Uniform(3))}};

  auto expect_matches = [&](const TopKOutput& out, const PredicateSet& p) {
    auto naive = NaiveTopK(wb->data(), p, f, k);
    ASSERT_EQ(out.results.size(), naive.size()) << p.ToString();
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(out.results[i].key, naive[i].second, 1e-9)
          << p.ToString() << " rank " << i;
    }
  };

  PredicateSet preds{chain[0]};
  auto out = RunTopK(*wb, preds, f, k, nullptr);
  ASSERT_TRUE(out.ok());
  TopKOutput session = std::move(*out);
  expect_matches(session, preds);

  for (int i = 1; i <= 2; ++i) {
    preds.Add(chain[i]);
    auto seed = DrillDownSeed(session);
    auto run = RunTopK(*wb, preds, f, k, &seed);
    ASSERT_TRUE(run.ok());
    session = MergeAfterDrillDown(std::move(*run), session);
    expect_matches(session, preds);
  }
  for (int i = 2; i >= 1; --i) {
    preds.Remove(chain[i].dim);
    auto seed = RollUpSeed(session);
    auto run = RunTopK(*wb, preds, f, k, &seed);
    ASSERT_TRUE(run.ok());
    session = MergeAfterRollUp(std::move(*run), session);
    expect_matches(session, preds);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace pcube
