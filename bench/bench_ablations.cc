// Ablations for the design choices behind P-Cube:
//
//   compression/*       node-level codec choice (verbatim / WAH / sparse /
//                       adaptive): total signature bytes and encode time —
//                       the paper's rationale for adaptive node-level
//                       compression (§IV.B.1 reason (2));
//   materialization/*   atomic cuboids only vs. also materialising 2-d
//                       composite cells: cube size and build time vs. the
//                       multi-predicate query cost (the paper's Fig. 15
//                       argument that atomic cuboids suffice);
//   rtree/*             R* forced re-insertion on/off and STR bulk load:
//                       build time vs. query-time block reads;
//   bloom/*             §VII lossy Bloom signatures (+ tuple verification)
//                       vs. exact signatures: store size, loads, query I/O.
#include "bench_common.h"

#include "bitmap/codec.h"
#include "core/signature_builder.h"
#include "workbench/planner.h"

namespace pcube::bench {
namespace {

// ---------------------------------------------------------------- codecs

void BM_CompressionScheme(benchmark::State& state, const char* scheme_name) {
  Workbench* wb = CachedWorkbench2("ablation", [] {
    return GenerateSynthetic(PaperConfig(TupleSweep()[0]));
  });
  auto paths = PathTable::Collect(*wb->tree());
  PCUBE_CHECK(paths.ok());
  // All signatures of the first atomic cuboid.
  std::vector<Signature> sigs = BuildAtomicCuboidSignatures(
      wb->data(), *paths, 0, wb->tree()->fanout(), wb->cube()->levels());

  std::string scheme(scheme_name);
  uint64_t total_bytes = 0;
  for (auto _ : state) {
    total_bytes = 0;
    Timer t;
    for (const Signature& sig : sigs) {
      // Walk every node array and encode it with the chosen scheme.
      std::vector<const SignatureNode*> stack{&sig.root()};
      while (!stack.empty()) {
        const SignatureNode* node = stack.back();
        stack.pop_back();
        if (node->bits.empty()) continue;
        std::vector<uint8_t> buf;
        if (scheme == "adaptive") {
          BitmapCodec::Encode(node->bits, &buf);
        } else if (scheme == "verbatim") {
          BitmapCodec::EncodeWith(BitmapScheme::kVerbatim, node->bits, &buf);
        } else if (scheme == "wah") {
          BitmapCodec::EncodeWith(BitmapScheme::kWah, node->bits, &buf);
        } else {
          BitmapCodec::EncodeWith(BitmapScheme::kSparse, node->bits, &buf);
        }
        total_bytes += buf.size();
        for (const auto& [slot, child] : node->children) {
          stack.push_back(child.get());
        }
      }
    }
    state.SetIterationTime(t.ElapsedSeconds());
  }
  state.counters["total_KB"] = static_cast<double>(total_bytes) / 1024.0;
}

// -------------------------------------------------------- materialization

void BM_Materialization(benchmark::State& state, int max_dims) {
  uint64_t n = TupleSweep()[0];
  SyntheticConfig config = PaperConfig(n);
  config.bool_cardinality = 10;  // keep the 2-d cuboids tractable
  Dataset data = GenerateSynthetic(config);

  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, size_t{1} << 16, &stats);
  RTreeOptions rtree_options;
  rtree_options.dims = data.num_pref();
  auto tree = RStarTree::BulkLoad(&pool, data, rtree_options);
  PCUBE_CHECK(tree.ok());

  PCubeOptions cube_options;
  cube_options.materialize_max_dims = max_dims;
  double build_ms = 0;
  std::unique_ptr<PCube> cube;
  {
    Timer t;
    auto built = PCube::Build(&pool, data, *tree, cube_options);
    PCUBE_CHECK(built.ok());
    build_ms = t.ElapsedMillis();
    cube = std::make_unique<PCube>(std::move(*built));
  }

  // Two-predicate skyline: with max_dims = 2 the composite cell's exact
  // signature is used; with 1, two atomic cursors are ANDed lazily.
  PredicateSet preds{{0, 3}, {1, 7}};
  IoStats before;
  uint64_t blocks = 0, sig_pages = 0;
  for (auto _ : state) {
    PCUBE_CHECK_OK(pool.Clear());
    before = stats;
    auto probe = cube->MakeProbe(preds);
    PCUBE_CHECK(probe.ok());
    SkylineEngine engine(&*tree, probe->get(), nullptr);
    Timer t;
    auto out = engine.Run();
    PCUBE_CHECK(out.ok());
    state.SetIterationTime(t.ElapsedSeconds());
    IoStats delta = stats.Delta(before);
    blocks = delta.ReadCount(IoCategory::kRtreeBlock);
    sig_pages = delta.ReadCount(IoCategory::kSignature);
  }
  state.counters["build_ms"] = build_ms;
  state.counters["cube_pages"] = static_cast<double>(cube->MaterializedPages());
  state.counters["cells"] = static_cast<double>(cube->num_cells());
  state.counters["rtree_blocks"] = static_cast<double>(blocks);
  state.counters["sig_pages"] = static_cast<double>(sig_pages);
}

// ------------------------------------------------------------------ rtree

void BM_RTreeVariant(benchmark::State& state, const char* variant) {
  uint64_t n = TupleSweep()[0];
  Dataset data = GenerateSynthetic(PaperConfig(n));
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, size_t{1} << 16, &stats);
  RTreeOptions options;
  options.dims = data.num_pref();
  std::string v(variant);
  options.forced_reinsert = (v == "rstar");

  double build_ms = 0;
  std::unique_ptr<RStarTree> tree;
  {
    Timer t;
    auto built = (v == "bulk") ? RStarTree::BulkLoad(&pool, data, options)
                               : RStarTree::BuildByInsertion(&pool, data,
                                                             options);
    PCUBE_CHECK(built.ok());
    build_ms = t.ElapsedMillis();
    tree = std::make_unique<RStarTree>(std::move(*built));
  }
  auto cube = PCube::Build(&pool, data, *tree, PCubeOptions{});
  PCUBE_CHECK(cube.ok());

  PredicateSet preds = OnePredicate(100);
  uint64_t blocks = 0;
  for (auto _ : state) {
    PCUBE_CHECK_OK(pool.Clear());
    IoStats before = stats;
    auto probe = cube->MakeProbe(preds);
    PCUBE_CHECK(probe.ok());
    SkylineEngine engine(&*tree, probe->get(), nullptr);
    Timer t;
    auto out = engine.Run();
    PCUBE_CHECK(out.ok());
    state.SetIterationTime(t.ElapsedSeconds());
    blocks = stats.Delta(before).ReadCount(IoCategory::kRtreeBlock);
  }
  state.counters["build_ms"] = build_ms;
  state.counters["rtree_pages"] = static_cast<double>(tree->num_pages());
  state.counters["query_blocks"] = static_cast<double>(blocks);
}

// ------------------------------------------------------------------ bloom

void BM_BloomVsExact(benchmark::State& state, const char* mode) {
  static Workbench* wb = [] {
    WorkbenchOptions options;
    options.pcube.build_bloom = true;
    auto built = Workbench::Build(
        GenerateSynthetic(PaperConfig(TupleSweep()[0])), options);
    PCUBE_CHECK(built.ok());
    return built->release();
  }();
  PredicateSet preds = OnePredicate(100);
  std::string m(mode);
  MeasuredRun last;
  for (auto _ : state) {
    PCUBE_CHECK_OK(wb->ColdStart());
    Timer t;
    if (m == "exact") {
      auto probe = wb->cube()->MakeProbe(preds);
      PCUBE_CHECK(probe.ok());
      SkylineEngine engine(wb->tree(), probe->get(), nullptr);
      auto out = engine.Run();
      PCUBE_CHECK(out.ok());
      last.result_size = out->skyline.size();
      last.heap_peak = out->counters.heap_peak;
    } else {
      auto probe = wb->cube()->MakeBloomProbe(preds);
      PCUBE_CHECK(probe.ok());
      TupleVerifier verifier(wb->table(), preds);
      SkylineEngine engine(wb->tree(), probe->get(), &verifier);
      auto out = engine.Run();
      PCUBE_CHECK(out.ok());
      last.result_size = out->skyline.size();
      last.heap_peak = out->counters.heap_peak;
    }
    last.seconds = t.ElapsedSeconds();
    last.io = wb->IoSince();
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

// ------------------------------------------------------------ partition

void BM_PartitionTemplate(benchmark::State& state, const char* kind) {
  // The paper's third proposal shares ONE partition template across all
  // cells; this ablation swaps the template: R* clustering vs STR bulk
  // load vs equi-width grids (the ranking cube's partition [12]).
  uint64_t n = TupleSweep()[0];
  Dataset data = GenerateSynthetic(PaperConfig(n));
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, size_t{1} << 16, &stats);
  RTreeOptions options;
  options.dims = data.num_pref();
  std::string k(kind);
  Result<RStarTree> built = Status::Internal("unset");
  if (k == "grid8") {
    built = RStarTree::BuildGridPartition(&pool, data, options, 8);
  } else if (k == "grid16") {
    built = RStarTree::BuildGridPartition(&pool, data, options, 16);
  } else {
    built = RStarTree::BulkLoad(&pool, data, options);
  }
  PCUBE_CHECK(built.ok());
  RStarTree tree = std::move(*built);
  auto cube = PCube::Build(&pool, data, tree, PCubeOptions{});
  PCUBE_CHECK(cube.ok());

  PredicateSet preds = OnePredicate(100);
  uint64_t blocks = 0, sig_pages = 0;
  for (auto _ : state) {
    PCUBE_CHECK_OK(pool.Clear());
    IoStats before = stats;
    auto probe = cube->MakeProbe(preds);
    PCUBE_CHECK(probe.ok());
    SkylineEngine engine(&tree, probe->get(), nullptr);
    Timer t;
    auto out = engine.Run();
    PCUBE_CHECK(out.ok());
    state.SetIterationTime(t.ElapsedSeconds());
    IoStats delta = stats.Delta(before);
    blocks = delta.ReadCount(IoCategory::kRtreeBlock);
    sig_pages = delta.ReadCount(IoCategory::kSignature);
  }
  state.counters["tree_pages"] = static_cast<double>(tree.num_pages());
  state.counters["cube_pages"] = static_cast<double>(cube->MaterializedPages());
  state.counters["query_blocks"] = static_cast<double>(blocks);
  state.counters["sig_pages"] = static_cast<double>(sig_pages);
}

// ---------------------------------------------------------------- planner

void BM_Planner(benchmark::State& state, const char* mode) {
  // Sweep the Fig. 11 cardinalities; the planner should track the winner
  // at both ends of the crossover.
  uint32_t c = static_cast<uint32_t>(state.range(0));
  uint64_t n = TupleSweep()[0] * 2;
  // The ablation measures plan selection + execution per iteration; the L1
  // result cache would answer every repeat instantly, so it stays off.
  WorkbenchOptions options;
  options.result_cache_mb = 0;
  Workbench* wb = CachedWorkbench2(
      "ablation_planner_" + std::to_string(c),
      [n, c] {
        SyntheticConfig config = PaperConfig(n);
        config.bool_cardinality = c;
        return GenerateSynthetic(config);
      },
      options);
  PredicateSet preds = OnePredicate(c);
  std::string m(mode);
  MeasuredRun last;
  for (auto _ : state) {
    if (m == "planner") {
      QueryPlanner planner(wb);
      Timer t;
      auto out = planner.Run(QueryRequest::Skyline(preds));
      PCUBE_CHECK(out.ok());
      last.seconds = t.ElapsedSeconds();
      last.io = out->io;
      last.result_size = out->tids.size();
      state.counters["chose_boolean"] =
          out->estimate.choice == PlanChoice::kBooleanFirst ? 1 : 0;
    } else if (m == "signature") {
      last = RunSignatureSkyline(wb, preds);
    } else {
      last = RunBooleanSkyline(wb, preds);
    }
    state.SetIterationTime(CostSeconds(last));
  }
  state.counters["disk"] = static_cast<double>(last.io.TotalReads());
}

void RegisterAll() {
  for (const char* scheme : {"verbatim", "wah", "sparse", "adaptive"}) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/compression/") + scheme).c_str(),
        BM_CompressionScheme, scheme)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  for (int max_dims : {1, 2}) {
    benchmark::RegisterBenchmark("ablation/materialization",
                                 BM_Materialization, max_dims)
        ->Arg(max_dims)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  for (const char* variant : {"rstar", "no_reinsert", "bulk"}) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/rtree/") + variant).c_str(), BM_RTreeVariant,
        variant)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  for (const char* mode : {"exact", "bloom"}) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/bloom/") + mode).c_str(), BM_BloomVsExact, mode)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  for (const char* kind : {"str", "grid8", "grid16"}) {
    benchmark::RegisterBenchmark(
        (std::string("ablation/partition/") + kind).c_str(),
        BM_PartitionTemplate, kind)
        ->Iterations(3)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
  for (uint32_t c : {10u, 100u, 2000u}) {
    for (const char* mode : {"signature", "boolean", "planner"}) {
      benchmark::RegisterBenchmark(
          (std::string("ablation/planner/") + mode).c_str(), BM_Planner, mode)
          ->Arg(c)
          ->Iterations(3)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
