// Negative controls for pcube-ignore-error-rationale: the discard is
// explained on the same or the immediately preceding line.
#include "lint_fixture_support.h"

namespace pcube {

Status Fallible();

void DropStatusesWithReasons() {
  // Best-effort warm-up: a failed preload just means a cold first query.
  Fallible().IgnoreError();

  Status s = Fallible();
  s.IgnoreError();  // advisory sidecar; reads fall back to recompute

  /* shutdown path: the socket is closing either way */
  s.IgnoreError();
}

}  // namespace pcube
