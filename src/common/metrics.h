// Process-wide metrics: named counters, gauges and log-bucketed latency
// histograms behind one thread-safe registry, rendered as a Prometheus-style
// text dump. The paper's evaluation is entirely counter-driven (heap peaks,
// pruned entries, probe time, page I/O — Figs. 8-16); this registry makes
// the same counters observable in a running server instead of only inside
// one-off benchmark mains.
//
// Thread-safety: metric updates (Increment/Set/Observe) are relaxed atomics
// and safe from any number of threads; registration (Get*) takes a mutex
// once and returns a pointer that stays valid for the registry's lifetime.
// Reading while writers are active yields a momentary view, exact once the
// writers have quiesced — the same contract as IoStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"

namespace pcube {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time value (set, not accumulated).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Log-bucketed histogram for positive values (typically seconds). Bucket i
/// spans (kMinUpper * 2^(i-1), kMinUpper * 2^i]; bucket 0 catches everything
/// <= kMinUpper (1 microsecond when observing seconds), the last bucket
/// catches overflow. Quantiles interpolate linearly inside the bucket, so
/// they are estimates with at most one power of two of relative error —
/// plenty for p50/p95/p99 latency reporting.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;
  static constexpr double kMinUpper = 1e-6;

  void Observe(double v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const { return Count() == 0 ? 0 : Sum() / Count(); }

  /// Estimated value at quantile `q` in [0, 1]; 0 when empty.
  double Quantile(double q) const;

  /// Index of the bucket `v` lands in (exposed for tests).
  static int BucketFor(double v);
  /// Inclusive upper edge of bucket `i` (lower edge of `i+1`).
  static double BucketUpper(int i);

  uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Thread-safe name -> metric registry. Names follow Prometheus conventions
/// and may carry labels inline: `pcube_bufferpool_hits{stripe="3"}`.
class MetricsRegistry {
 public:
  /// The process-wide registry queries and pools report into.
  static MetricsRegistry& Default();

  /// Find-or-create; the returned pointer stays valid for the registry's
  /// lifetime, so hot paths look a metric up once and cache the pointer.
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name) EXCLUDES(mu_);

  /// Prometheus-style text dump: `name value` per counter/gauge, and
  /// `name_count` / `name_sum` / `name{quantile="..."}` per histogram, in
  /// sorted name order.
  std::string RenderText() const EXCLUDES(mu_);

  /// Zeroes every registered metric (benchmark reruns, tests). Pointers
  /// handed out earlier stay valid.
  void ResetAll() EXCLUDES(mu_);

 private:
  // Reader/writer split: registration (Get*) mutates the maps under the
  // writer lock; RenderText/ResetAll only traverse them (metric values are
  // atomics), so concurrent scrapes never serialise against each other.
  mutable SharedMutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace pcube
