# Empty compiler generated dependencies file for pcube_rtree.
# This may be replaced when dependencies are built.
