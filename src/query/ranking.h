// Ranking functions for top-k queries (paper §III): any f over the
// preference dimensions for which a lower bound over a box domain can be
// derived. The engines schedule R-tree nodes by LowerBound(MBR) and score
// data objects by Score(point) — best-first search is correct because the
// bound never exceeds the score of any point inside the box.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "rtree/geometry.h"

namespace pcube {

/// A scoring function with box lower bounds (users prefer minimal values).
class RankingFunction {
 public:
  virtual ~RankingFunction() = default;

  /// Exact score of a point.
  virtual double Score(std::span<const float> point) const = 0;

  /// Lower bound of the score over all points inside `box`.
  virtual double LowerBound(const RectF& box) const = 0;

  /// Canonical description of this function for query fingerprinting: two
  /// rankings with equal CacheKey() must score every point identically
  /// (bit-exact, because cached responses carry exact scores — which is
  /// also why proportional weights are NOT collapsed). Empty means "not
  /// canonicalizable": such queries bypass the result cache.
  virtual std::string CacheKey() const { return std::string(); }
};

namespace ranking_detail {
/// Stable textual form of a double: the exact bit pattern in hex, so the
/// key is independent of printf rounding and locale.
inline void AppendDoubleBits(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  out->append(buf);
}

inline void AppendDoubleList(const std::vector<double>& vs, std::string* out) {
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendDoubleBits(vs[i], out);
  }
}
}  // namespace ranking_detail

/// f(x) = sum_d w_d * x_d. Weights may be negative.
class LinearRanking : public RankingFunction {
 public:
  explicit LinearRanking(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  double Score(std::span<const float> point) const override {
    PCUBE_DCHECK_EQ(point.size(), weights_.size());
    double s = 0;
    for (size_t d = 0; d < weights_.size(); ++d) s += weights_[d] * point[d];
    return s;
  }

  double LowerBound(const RectF& box) const override {
    double s = 0;
    for (size_t d = 0; d < weights_.size(); ++d) {
      s += weights_[d] * (weights_[d] >= 0 ? box.min[d] : box.max[d]);
    }
    return s;
  }

  std::string CacheKey() const override {
    std::string s = "linear:";
    ranking_detail::AppendDoubleList(weights_, &s);
    return s;
  }

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// f(x) = sum_d w_d * (x_d - t_d)^2 — the used-car query of Example 1
/// ("(price - 15k)^2 + alpha * (mileage - 30k)^2"). Weights must be >= 0.
class WeightedL2Ranking : public RankingFunction {
 public:
  WeightedL2Ranking(std::vector<double> target, std::vector<double> weights)
      : target_(std::move(target)), weights_(std::move(weights)) {
    PCUBE_CHECK_EQ(target_.size(), weights_.size());
    for (double w : weights_) PCUBE_CHECK_GE(w, 0.0);
  }

  double Score(std::span<const float> point) const override {
    double s = 0;
    for (size_t d = 0; d < weights_.size(); ++d) {
      double diff = point[d] - target_[d];
      s += weights_[d] * diff * diff;
    }
    return s;
  }

  double LowerBound(const RectF& box) const override {
    // Minimised by clamping the target into the box per dimension.
    double s = 0;
    for (size_t d = 0; d < weights_.size(); ++d) {
      double c = std::clamp(target_[d], static_cast<double>(box.min[d]),
                            static_cast<double>(box.max[d]));
      double diff = c - target_[d];
      s += weights_[d] * diff * diff;
    }
    return s;
  }

  std::string CacheKey() const override {
    std::string s = "wl2:";
    ranking_detail::AppendDoubleList(target_, &s);
    s.push_back(';');
    ranking_detail::AppendDoubleList(weights_, &s);
    return s;
  }

  const std::vector<double>& target() const { return target_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> target_;
  std::vector<double> weights_;
};

/// f(x) = sum_d w_d * |x_d - t_d|^p with p >= 1 (weighted Minkowski-style
/// distance to an expectation point).
class MinkowskiRanking : public RankingFunction {
 public:
  MinkowskiRanking(std::vector<double> target, std::vector<double> weights,
                   double p)
      : target_(std::move(target)), weights_(std::move(weights)), p_(p) {
    PCUBE_CHECK_EQ(target_.size(), weights_.size());
    PCUBE_CHECK_GE(p_, 1.0);
  }

  double Score(std::span<const float> point) const override {
    double s = 0;
    for (size_t d = 0; d < weights_.size(); ++d) {
      s += weights_[d] * std::pow(std::abs(point[d] - target_[d]), p_);
    }
    return s;
  }

  double LowerBound(const RectF& box) const override {
    double s = 0;
    for (size_t d = 0; d < weights_.size(); ++d) {
      double c = std::clamp(target_[d], static_cast<double>(box.min[d]),
                            static_cast<double>(box.max[d]));
      s += weights_[d] * std::pow(std::abs(c - target_[d]), p_);
    }
    return s;
  }

  std::string CacheKey() const override {
    std::string s = "mink:";
    ranking_detail::AppendDoubleBits(p_, &s);
    s.push_back(';');
    ranking_detail::AppendDoubleList(target_, &s);
    s.push_back(';');
    ranking_detail::AppendDoubleList(weights_, &s);
    return s;
  }

  const std::vector<double>& target() const { return target_; }
  const std::vector<double>& weights() const { return weights_; }
  double p() const { return p_; }

 private:
  std::vector<double> target_;
  std::vector<double> weights_;
  double p_;
};

}  // namespace pcube
