// Signature union and intersection (paper §IV.B.2, Fig. 3). Used to
// assemble the signature of an arbitrary boolean predicate online from the
// materialised atomic cuboids:
//   * union computes the bit-or (e.g. "A=a2 or B=b2");
//   * intersection is recursive: a bit survives only if set in both inputs
//     AND its child intersection is non-empty — plain bit-and would leave
//     spurious 1s on inner nodes whose subtrees share no common tuple.
#pragma once

#include "core/signature.h"

namespace pcube {

/// Bit-or of two signatures of identical shape parameters.
Signature SignatureUnion(const Signature& a, const Signature& b);

/// Recursive intersection per the paper: exact at every level (an inner bit
/// is cleared when the child intersection comes out all-zero).
Signature SignatureIntersect(const Signature& a, const Signature& b);

}  // namespace pcube
