# Empty dependencies file for page_manager_test.
# This may be replaced when dependencies are built.
