# Empty dependencies file for bench_fig12_prefdims.
# This may be replaced when dependencies are built.
