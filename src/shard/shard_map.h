// Deterministic tuple -> shard assignment for the scatter-gather
// coordinator (DESIGN.md §13). Tuples are hashed on their full boolean row
// (FNV-1a over the dimension values), so every tuple that can match a given
// conjunction of equality predicates keeps co-locating with the tuples it
// shares values with, and the map needs no lookup table — any process that
// sees the row recomputes the same shard. Relations without boolean
// dimensions fall back to hashing the tuple id (no predicate can route
// anywhere anyway), which keeps the shards load-balanced.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cube/relation.h"

namespace pcube {

/// FNV-1a over the little-endian bytes of a boolean row.
uint64_t BoolRowHash(std::span<const uint32_t> row);

/// Shard owning tuple `tid` under an N-way boolean-hash partition.
size_t ShardOfTuple(const Dataset& data, TupleId tid, size_t num_shards);

/// One N-way split of a relation: per-shard datasets (shared schema, dense
/// local tids) plus the local -> global tid translation the merge applies.
struct ShardPartition {
  std::vector<Dataset> datasets;
  /// global_tids[s][local] == the global TupleId of shard s's tuple
  /// `local`; Append order makes it ascending per shard.
  std::vector<std::vector<TupleId>> global_tids;
};

/// Splits `data` across `num_shards` by boolean-row hash. Shards may come
/// back empty (small relations, skewed value sets); callers skip those.
ShardPartition PartitionByBoolHash(const Dataset& data, size_t num_shards);

}  // namespace pcube
