#include "common/thread_pool.h"

namespace pcube {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  wake_.SignalAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      wake_.Wait(&mu_, [this]() REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      // Graceful shutdown: finish everything queued before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.SignalAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  idle_.Wait(&mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

}  // namespace pcube
