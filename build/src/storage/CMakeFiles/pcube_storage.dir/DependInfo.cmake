
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/boolean_index.cc" "src/storage/CMakeFiles/pcube_storage.dir/boolean_index.cc.o" "gcc" "src/storage/CMakeFiles/pcube_storage.dir/boolean_index.cc.o.d"
  "/root/repo/src/storage/bplus_tree.cc" "src/storage/CMakeFiles/pcube_storage.dir/bplus_tree.cc.o" "gcc" "src/storage/CMakeFiles/pcube_storage.dir/bplus_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/pcube_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/pcube_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_manager.cc" "src/storage/CMakeFiles/pcube_storage.dir/page_manager.cc.o" "gcc" "src/storage/CMakeFiles/pcube_storage.dir/page_manager.cc.o.d"
  "/root/repo/src/storage/table_store.cc" "src/storage/CMakeFiles/pcube_storage.dir/table_store.cc.o" "gcc" "src/storage/CMakeFiles/pcube_storage.dir/table_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/pcube_cube.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
