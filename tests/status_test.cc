// Status / Result contract: every constructor maps to its code, every code
// has a printable name, and the predicates partition the codes — the typed
// failure taxonomy the fault-tolerance layer (checksums, retry, degradation,
// deadlines) relies on to route errors.
#include "common/status.h"

#include <gtest/gtest.h>

#include <vector>

namespace pcube {
namespace {

TEST(StatusTest, OkDefaults) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_FALSE(s.IsCorruption());
  EXPECT_FALSE(s.IsTimeout());
}

TEST(StatusTest, ConstructorCodeRoundTrips) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const std::vector<Case> cases = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument},
      {Status::NotFound("m"), StatusCode::kNotFound},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange},
      {Status::Corruption("m"), StatusCode::kCorruption},
      {Status::IoError("m"), StatusCode::kIoError},
      {Status::NotSupported("m"), StatusCode::kNotSupported},
      {Status::Internal("m"), StatusCode::kInternal},
      {Status::Timeout("m"), StatusCode::kTimeout},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    // ToString carries the code name and the message.
    EXPECT_NE(c.status.ToString().find(StatusCodeToString(c.code)),
              std::string::npos);
    EXPECT_NE(c.status.ToString().find("m"), std::string::npos);
    // Reconstructing from (code, message) preserves the code.
    Status rebuilt(c.status.code(), c.status.message());
    EXPECT_EQ(rebuilt.code(), c.code);
  }
}

TEST(StatusTest, PredicatesMatchExactlyOneCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());

  // Cross-checks: each predicate rejects the other failure codes.
  const std::vector<Status> all = {
      Status::InvalidArgument("x"), Status::NotFound("x"),
      Status::AlreadyExists("x"),   Status::OutOfRange("x"),
      Status::Corruption("x"),      Status::IoError("x"),
      Status::NotSupported("x"),    Status::Internal("x"),
      Status::Timeout("x"),
  };
  int corruption = 0, io = 0, timeout = 0, not_found = 0, invalid = 0;
  for (const Status& s : all) {
    corruption += s.IsCorruption();
    io += s.IsIoError();
    timeout += s.IsTimeout();
    not_found += s.IsNotFound();
    invalid += s.IsInvalidArgument();
  }
  EXPECT_EQ(corruption, 1);
  EXPECT_EQ(io, 1);
  EXPECT_EQ(timeout, 1);
  EXPECT_EQ(not_found, 1);
  EXPECT_EQ(invalid, 1);
}

TEST(StatusTest, EveryCodeHasADistinctName) {
  std::vector<StatusCode> codes = {
      StatusCode::kOk,          StatusCode::kInvalidArgument,
      StatusCode::kNotFound,    StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,  StatusCode::kCorruption,
      StatusCode::kIoError,     StatusCode::kNotSupported,
      StatusCode::kInternal,    StatusCode::kTimeout,
  };
  std::vector<std::string_view> names;
  for (StatusCode code : codes) {
    std::string_view name = StatusCodeToString(code);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "Unknown");
    for (std::string_view seen : names) EXPECT_NE(seen, name);
    names.push_back(name);
  }
}

TEST(StatusTest, ResultPropagatesStatus) {
  Result<int> ok_result(7);
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(*ok_result, 7);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::Timeout("deadline"));
  ASSERT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsTimeout());
  EXPECT_EQ(err_result.status().message(), "deadline");
}

}  // namespace
}  // namespace pcube
