#include "common/thread_pool.h"

#include "common/metrics.h"

namespace pcube {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  wake_.SignalAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      wake_.Wait(&mu_, [this]() REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      // Graceful shutdown: finish everything queued before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    NoteDequeued();
    task();
    {
      MutexLock lock(&mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.SignalAll();
    }
  }
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  idle_.Wait(&mu_, [this]() REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::NoteEnqueued() {
  size_t depth = depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_.compare_exchange_weak(peak, depth,
                                      std::memory_order_relaxed)) {
  }
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetGauge("pcube_threadpool_queue_depth")
      ->Set(static_cast<double>(depth));
  // Monotone max across every pool. The read-then-set is racy between
  // pools, but a metrics gauge tolerates a momentarily stale maximum — the
  // same contract every relaxed metric in the registry carries.
  Gauge* registry_peak =
      registry.GetGauge("pcube_threadpool_queue_depth_peak");
  if (static_cast<double>(depth) > registry_peak->Value()) {
    registry_peak->Set(static_cast<double>(depth));
  }
}

void ThreadPool::NoteDequeued() {
  size_t depth = depth_.fetch_sub(1, std::memory_order_relaxed) - 1;
  MetricsRegistry::Default()
      .GetGauge("pcube_threadpool_queue_depth")
      ->Set(static_cast<double>(depth));
}

}  // namespace pcube
