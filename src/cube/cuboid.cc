#include "cube/cuboid.h"

#include <bit>

namespace pcube {

namespace {
std::vector<std::pair<int, uint32_t>> Key(const PredicateSet& preds) {
  std::vector<std::pair<int, uint32_t>> k;
  k.reserve(preds.size());
  for (const auto& p : preds.predicates()) k.emplace_back(p.dim, p.value);
  return k;
}
}  // namespace

std::vector<CuboidMask> EnumerateCuboids(int num_bool_dims, int max_dims) {
  std::vector<CuboidMask> out;
  CuboidMask all = (num_bool_dims >= 32) ? ~CuboidMask{0}
                                         : ((CuboidMask{1} << num_bool_dims) - 1);
  for (CuboidMask m = 1; m <= all; ++m) {
    if (std::popcount(m) <= max_dims) out.push_back(m);
    if (m == all) break;
  }
  return out;
}

CellId CellRegistry::Intern(const PredicateSet& preds) {
  PCUBE_CHECK_GE(preds.size(), size_t{1});
  if (preds.size() == 1) {
    const Predicate& p = preds.predicates()[0];
    return AtomicCellId(p.dim, p.value);
  }
  auto key = Key(preds);
  auto it = composite_.find(key);
  if (it != composite_.end()) return it->second;
  CellId id = kCompositeBase + composite_.size();
  composite_.emplace(std::move(key), id);
  return id;
}

CellId CellRegistry::Lookup(const PredicateSet& preds) const {
  if (preds.size() == 1) {
    const Predicate& p = preds.predicates()[0];
    return AtomicCellId(p.dim, p.value);
  }
  auto it = composite_.find(Key(preds));
  return it == composite_.end() ? kUnknownCell : it->second;
}

}  // namespace pcube
