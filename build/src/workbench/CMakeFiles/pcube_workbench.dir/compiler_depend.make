# Empty compiler generated dependencies file for pcube_workbench.
# This may be replaced when dependencies are built.
