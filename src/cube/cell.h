// Cells and predicates of the data-cube model (paper §IV.A). A cuboid is a
// subset of the boolean dimensions; a cell fixes a value for each dimension
// of its cuboid (e.g. cell "type = sedan" of cuboid (type)). P-Cube
// materialises one signature per cell of every *atomic* cuboid (the
// one-dimensional cuboids), which §V.C / Fig. 15 shows is usually enough;
// composite cells can optionally be materialised too and are assembled
// online via signature intersection otherwise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"
#include "cube/relation.h"

namespace pcube {

/// One equality predicate A_dim = value.
struct Predicate {
  int dim = 0;
  uint32_t value = 0;

  bool operator==(const Predicate&) const = default;
};

/// Conjunction of equality predicates on distinct boolean dimensions,
/// kept sorted by dimension.
class PredicateSet {
 public:
  PredicateSet() = default;
  PredicateSet(std::initializer_list<Predicate> preds) {
    for (const auto& p : preds) Add(p);
  }

  /// Adds a predicate; replaces any existing predicate on the same dimension.
  void Add(const Predicate& p) {
    for (auto& q : preds_) {
      if (q.dim == p.dim) {
        q.value = p.value;
        return;
      }
    }
    preds_.push_back(p);
    std::sort(preds_.begin(), preds_.end(),
              [](const Predicate& a, const Predicate& b) { return a.dim < b.dim; });
  }

  /// Removes the predicate on `dim` if present (roll-up).
  void Remove(int dim) {
    std::erase_if(preds_, [dim](const Predicate& p) { return p.dim == dim; });
  }

  bool empty() const { return preds_.empty(); }
  size_t size() const { return preds_.size(); }
  const std::vector<Predicate>& predicates() const { return preds_; }

  /// True when tuple `t` of `data` satisfies every predicate.
  bool Matches(const Dataset& data, TupleId t) const {
    for (const auto& p : preds_) {
      if (data.BoolValue(t, p.dim) != p.value) return false;
    }
    return true;
  }

  /// True when `other` extends this set (drill-down relationship).
  bool IsPrefixOf(const PredicateSet& other) const {
    for (const auto& p : preds_) {
      bool found = false;
      for (const auto& q : other.preds_) {
        if (q.dim == p.dim && q.value == p.value) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  bool operator==(const PredicateSet&) const = default;

  std::string ToString() const {
    std::string s = "{";
    for (size_t i = 0; i < preds_.size(); ++i) {
      if (i > 0) s += ", ";
      s += "A" + std::to_string(preds_[i].dim) + "=" + std::to_string(preds_[i].value);
    }
    return s + "}";
  }

 private:
  std::vector<Predicate> preds_;
};

/// Identifies a materialised cell in the signature store.
/// Atomic cells (single predicate) use a fixed encoding; composite cells get
/// ids from a registry (see cube/cuboid.h).
using CellId = uint64_t;

/// Cell id of the atomic cell A_dim = value.
inline CellId AtomicCellId(int dim, uint32_t value) {
  PCUBE_DCHECK_GE(dim, 0);
  return (static_cast<uint64_t>(dim + 1) << 32) | value;
}

}  // namespace pcube
