// SignatureStore + SignatureCursor tests: persistence round-trips, rewrites
// with tombstones, lazy cursor loading with exact SSig page accounting.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/signature_cursor.h"
#include "core/signature_store.h"

namespace pcube {
namespace {

Signature RandomSignature(uint32_t m, int levels, int paths, uint64_t seed) {
  Random rng(seed);
  Signature sig(m, levels);
  for (int i = 0; i < paths; ++i) {
    Path p(levels);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(m));
    sig.SetPath(p);
  }
  return sig;
}

class SignatureStoreTest : public ::testing::Test {
 protected:
  SignatureStoreTest() : pool_(&pm_, 4096, &stats_) {}

  MemoryPageManager pm_;
  IoStats stats_;
  BufferPool pool_;
};

TEST_F(SignatureStoreTest, PutLoadFullRoundTrip) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  Signature sig = RandomSignature(5, 3, 200, 41);
  ASSERT_TRUE(store->Put(77, sig).ok());
  auto loaded = store->LoadFull(77, 5, 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Equals(sig));
  EXPECT_TRUE(*store->HasCell(77));
  EXPECT_FALSE(*store->HasCell(78));
  auto missing = store->LoadFull(78, 5, 3);
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->Empty());
}

TEST_F(SignatureStoreTest, RewriteReplacesAndTombstones) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  Signature big = RandomSignature(40, 3, 40000, 42);
  ASSERT_TRUE(store->Put(5, big).ok());
  auto sids_before = store->ListPartials(5);
  ASSERT_TRUE(sids_before.ok());
  EXPECT_GT(sids_before->size(), 1u);

  Signature small(40, 3);
  small.SetPath({1, 1, 1});
  ASSERT_TRUE(store->Put(5, small).ok());
  auto loaded = store->LoadFull(5, 40, 3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Equals(small));
  auto sids_after = store->ListPartials(5);
  ASSERT_TRUE(sids_after.ok());
  EXPECT_EQ(sids_after->size(), 1u);

  // Tombstoned partials must be invisible.
  for (uint64_t sid : *sids_before) {
    if (sid != (*sids_after)[0]) {
      EXPECT_TRUE(store->LoadPartial(5, sid).status().IsNotFound());
    }
  }
  // Rewriting to empty removes the cell entirely.
  Signature empty(40, 3);
  ASSERT_TRUE(store->Put(5, empty).ok());
  EXPECT_FALSE(*store->HasCell(5));
}

TEST_F(SignatureStoreTest, ManyCellsCoexist) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  std::vector<Signature> sigs;
  for (uint64_t c = 0; c < 30; ++c) {
    sigs.push_back(RandomSignature(4, 3, 50, 400 + c));
    ASSERT_TRUE(store->Put(1000 + c, sigs.back()).ok());
  }
  for (uint64_t c = 0; c < 30; ++c) {
    auto loaded = store->LoadFull(1000 + c, 4, 3);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded->Equals(sigs[c])) << "cell " << c;
  }
}

TEST_F(SignatureStoreTest, CursorMatchesSignature) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  Signature sig = RandomSignature(4, 3, 120, 43);
  ASSERT_TRUE(store->Put(9, sig).ok());

  SignatureCursor cursor(&*store, 9, 4, 3);
  Random rng(44);
  for (int i = 0; i < 2000; ++i) {
    size_t len = 1 + rng.Uniform(3);
    Path p(len);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(4));
    auto got = cursor.Test(p);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sig.Test(p)) << PathToString(p);
  }
}

TEST_F(SignatureStoreTest, CursorOnEmptyCellPrunesEverything) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  SignatureCursor cursor(&*store, 12345, 4, 3);
  auto got = cursor.Test({1, 1, 1});
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
  EXPECT_EQ(cursor.partials_loaded(), 0u);
}

TEST_F(SignatureStoreTest, CursorLoadsPartialsLazily) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  // A wide signature over a large fanout forces many partials.
  Signature sig = RandomSignature(120, 3, 60000, 45);
  ASSERT_TRUE(store->Put(3, sig).ok());
  auto all_sids = store->ListPartials(3);
  ASSERT_TRUE(all_sids.ok());
  ASSERT_GT(all_sids->size(), 3u);

  SignatureCursor cursor(&*store, 3, 120, 3);
  // Probing one shallow path loads at most a couple of partials, not all.
  Path probe = {1, 1, 1};
  ASSERT_TRUE(cursor.Test(probe).ok());
  EXPECT_LT(cursor.partials_loaded(), all_sids->size());
  EXPECT_GE(cursor.partials_loaded(), 1u);

  // Exhaustive agreement after arbitrary probing order.
  Random rng(46);
  for (int i = 0; i < 3000; ++i) {
    size_t len = 1 + rng.Uniform(3);
    Path p(len);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(120));
    auto got = cursor.Test(p);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, sig.Test(p)) << PathToString(p);
  }
}

TEST_F(SignatureStoreTest, CursorPageLoadsChargeSignatureCategory) {
  auto store = SignatureStore::Create(&pool_);
  ASSERT_TRUE(store.ok());
  Signature sig = RandomSignature(8, 3, 400, 47);
  ASSERT_TRUE(store->Put(6, sig).ok());
  ASSERT_TRUE(pool_.Clear().ok());
  stats_.Reset();
  SignatureCursor cursor(&*store, 6, 8, 3);
  ASSERT_TRUE(cursor.Test({1, 1, 1}).ok());
  EXPECT_EQ(stats_.ReadCount(IoCategory::kSignature), cursor.partials_loaded());
  EXPECT_GT(stats_.ReadCount(IoCategory::kBtree), 0u);  // directory lookups
}

}  // namespace
}  // namespace pcube
