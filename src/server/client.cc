#include "server/client.h"

#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "server/protocol.h"

namespace pcube {

Result<std::unique_ptr<PCubeClient>> PCubeClient::Connect(
    const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError(std::string("resolve ") + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // The query frame is one small send; don't let Nagle hold it hostage
    // to the previous response's ACK.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return std::unique_ptr<PCubeClient>(new PCubeClient(fd));
    }
    last = Status::IoError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

PCubeClient::~PCubeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<QueryResponse> PCubeClient::Run(const QueryRequest& request,
                                       const std::string& tenant,
                                       ServerStats* stats) {
  wire::QueryEnvelope envelope;
  envelope.tenant = tenant;
  envelope.request = request;
  Result<std::string> payload = wire::EncodeQuery(envelope);
  if (!payload.ok()) return payload.status();
  PCUBE_RETURN_NOT_OK(
      wire::WriteFrame(fd_, wire::FrameType::kQuery, payload.value()));

  // The stream: kResultHeader, kResultChunk*, kDone — or kError anywhere.
  wire::FrameHeader header;
  std::string body;
  PCUBE_RETURN_NOT_OK(wire::ReadFrame(fd_, &header, &body));
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(body.data());
  if (header.type == wire::FrameType::kError) {
    return wire::DecodeError(bytes, body.size());
  }
  if (header.type != wire::FrameType::kResultHeader) {
    return Status::Corruption("expected a result header frame");
  }
  wire::ResultHeader rh;
  PCUBE_RETURN_NOT_OK(wire::DecodeResultHeader(bytes, body.size(), &rh));

  QueryResponse resp;
  resp.tids.reserve(rh.result_count);
  if (rh.has_scores) resp.scores.reserve(rh.result_count);
  while (true) {
    PCUBE_RETURN_NOT_OK(wire::ReadFrame(fd_, &header, &body));
    bytes = reinterpret_cast<const uint8_t*>(body.data());
    if (header.type == wire::FrameType::kError) {
      return wire::DecodeError(bytes, body.size());
    }
    if (header.type == wire::FrameType::kDone) break;
    if (header.type != wire::FrameType::kResultChunk) {
      return Status::Corruption("expected a result chunk frame");
    }
    PCUBE_RETURN_NOT_OK(wire::DecodeResultChunk(
        bytes, body.size(), rh.has_scores, &resp.tids, &resp.scores));
    if (resp.tids.size() > rh.result_count) {
      return Status::Corruption("result stream longer than announced");
    }
  }
  if (resp.tids.size() != rh.result_count) {
    return Status::Corruption("result stream shorter than announced");
  }

  resp.counters = rh.counters;
  resp.estimate.choice =
      rh.plan == 0 ? PlanChoice::kSignature : PlanChoice::kBooleanFirst;
  resp.cache = static_cast<CacheOutcome>(rh.cache);
  resp.degraded = rh.degraded;
  resp.fanout_shards = rh.fanout_shards;
  resp.seconds = rh.seconds;
  if (stats != nullptr) {
    stats->trace_id = rh.trace_id;
    stats->queue_wait_seconds = rh.queue_wait_seconds;
    stats->io_reads = rh.io_reads;
  }
  return resp;
}

}  // namespace pcube
