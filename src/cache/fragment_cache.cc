#include "cache/fragment_cache.h"

#include <algorithm>

#include "common/bit_util.h"

namespace pcube {

namespace {
/// Words one node occupies in the packed block: its payload rounded up to a
/// 4-word (32-byte) boundary so the next node's slice is aligned too.
size_t PaddedWords(size_t num_bits) {
  return (bit_util::Words64(num_bits) + 3) & ~size_t{3};
}

size_t FragmentCharge(const CachedFragment& f) {
  size_t c = 96 + f.words.capacity() * sizeof(uint64_t);
  for (const auto& node : f.nodes) {
    c += sizeof(CachedFragment::NodeRef) +
         node.path.capacity() * sizeof(Path::value_type);
  }
  return c;
}
}  // namespace

std::span<const uint64_t> CachedFragment::node_words(size_t i) const {
  const NodeRef& ref = nodes[i];
  return {words.data() + ref.word_offset, bit_util::Words64(ref.num_bits)};
}

BitVector CachedFragment::NodeBits(size_t i) const {
  return BitVector(nodes[i].num_bits, node_words(i));
}

FragmentCache::FragmentCache(size_t capacity_bytes, const DataEpoch* epoch)
    : epoch_(epoch), shards_(new Shard[kShards]) {
  for (size_t i = 0; i < kShards; ++i) {
    shards_[i].slru.set_capacity(capacity_bytes / kShards);
  }
  auto& reg = MetricsRegistry::Default();
  hits_ = reg.GetCounter("pcube_fragment_cache_hits_total");
  misses_ = reg.GetCounter("pcube_fragment_cache_misses_total");
  stale_ = reg.GetCounter("pcube_fragment_cache_stale_total");
  evictions_ = reg.GetCounter("pcube_fragment_cache_evictions_total");
}

std::shared_ptr<const CachedFragment> FragmentCache::Lookup(CellId cell,
                                                            uint64_t sid) {
  Key key{cell, sid};
  Shard& shard = ShardOf(key);
  std::shared_ptr<const CachedFragment> value;
  {
    MutexLock lock(&shard.mu);
    if (!shard.slru.Lookup(key, &value)) {
      misses_->Increment();
      return nullptr;
    }
    if (value->epoch != epoch_->OfCell(cell)) {
      // Lazy invalidation: the cell changed since this decode was cached.
      size_t before = shard.slru.bytes();
      shard.slru.Erase(key);
      bytes_.fetch_sub(before - shard.slru.bytes(),
                       std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      stale_->Increment();
      return nullptr;
    }
  }
  hits_->Increment();
  return value;
}

void FragmentCache::Insert(CellId cell, uint64_t sid, bool present,
                           std::vector<std::pair<Path, BitVector>> nodes,
                           uint64_t epoch) {
  auto entry = std::make_shared<CachedFragment>();
  entry->present = present;
  entry->epoch = epoch;
  size_t total_words = 0;
  for (const auto& [path, bits] : nodes) {
    total_words += PaddedWords(bits.size());
  }
  entry->words.resize(total_words);  // value-init: padding words stay zero
  entry->nodes.reserve(nodes.size());
  size_t offset = 0;
  for (auto& [path, bits] : nodes) {
    CachedFragment::NodeRef ref;
    ref.path = std::move(path);
    ref.word_offset = static_cast<uint32_t>(offset);
    ref.num_bits = static_cast<uint32_t>(bits.size());
    std::copy_n(bits.words().data(), bits.words().size(),
                entry->words.data() + offset);
    offset += PaddedWords(bits.size());
    entry->nodes.push_back(std::move(ref));
  }
  entry->charge = FragmentCharge(*entry);
  size_t charge = entry->charge;

  Key key{cell, sid};
  Shard& shard = ShardOf(key);
  MutexLock lock(&shard.mu);
  size_t bytes_before = shard.slru.bytes();
  size_t entries_before = shard.slru.entries();
  size_t evicted = shard.slru.Insert(key, std::move(entry), charge);
  if (evicted > 0) evictions_->Increment(evicted);
  bytes_.fetch_add(shard.slru.bytes() - bytes_before,
                   std::memory_order_relaxed);
  entries_.fetch_add(shard.slru.entries() - entries_before,
                     std::memory_order_relaxed);
}

}  // namespace pcube
