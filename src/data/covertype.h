// Surrogate for the UCI Forest CoverType dataset (paper §VI.A).
//
// The paper uses the real 581,012-row dataset with 3 quantitative attributes
// (cardinalities 1989, 5787, 5827) as preference dimensions and 12
// categorical attributes (cardinalities 255, 207, 185, 67, 7, 2, 2, 2, 2, 2,
// 2, 2) as boolean dimensions. This environment has no network access, so we
// generate a synthetic dataset with identical row count, dimensionality and
// per-dimension cardinalities: boolean values follow a Zipf-like skew (real
// categorical attributes are skewed), quantitative attributes are mildly
// correlated draws quantised to the original cardinalities. Figures 14-16
// depend on the boolean selectivities and the preference-space granularity,
// both of which are preserved; see DESIGN.md §5.
#pragma once

#include <cstdint>
#include <vector>

#include "cube/relation.h"

namespace pcube {

struct CoverTypeConfig {
  /// Row count; the real dataset has 581,012 (benchmarks scale this down
  /// via PCUBE_BENCH_SCALE).
  uint64_t num_tuples = 581012;
  uint64_t seed = 7;
};

/// Cardinalities of the 12 boolean dimensions of the surrogate.
const std::vector<uint32_t>& CoverTypeBoolCardinalities();

/// Cardinalities of the 3 quantitative (preference) dimensions.
const std::vector<uint32_t>& CoverTypePrefCardinalities();

/// Generates the surrogate dataset; deterministic in the seed.
Dataset GenerateCoverTypeSurrogate(const CoverTypeConfig& config);

}  // namespace pcube
