file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sigload.dir/bench_fig15_sigload.cc.o"
  "CMakeFiles/bench_fig15_sigload.dir/bench_fig15_sigload.cc.o.d"
  "bench_fig15_sigload"
  "bench_fig15_sigload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sigload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
