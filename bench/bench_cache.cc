// Two-level query cache benchmark: the same mixed batch workload as
// bench_throughput, but with repeated queries — the regime the cache is
// for. Three phases over one Workbench:
//
//   cold — first pass, empty caches: every query decodes signatures and
//          runs branch-and-bound; fills both levels.
//   warm — second pass of the SAME batch: exact repeats served from the L1
//          result cache (the drill-down/truncation paths fire for the
//          contained variants the workload mixes in).
//   hot  — N more passes, steady state: measures the cache-resident QPS.
//
// The run fails (exit 1) when the warm pass does not beat the cold pass by
// the acceptance factor or the L1 hit-rate stays at zero, so scripts/ci.sh
// can use it as a smoke gate directly.
//
// Output: a table on stdout plus BENCH_cache.json, BENCH_cache_metrics.prom
// (cache counters and hit-rate gauges included) and
// BENCH_cache_querylog.jsonl (per-query `cache:` field) in the working
// directory.
//
// Environment knobs:
//   PCUBE_CACHE_ROWS        dataset size            (default 20000)
//   PCUBE_CACHE_QUERIES     queries per batch       (default 120)
//   PCUBE_CACHE_LATENCY_US  per-read sleep, micros  (default 200)
//   PCUBE_CACHE_WORKERS     batch workers           (default 4)
//   PCUBE_CACHE_HOT_PASSES  passes in the hot phase (default 3)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "data/generators.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

/// Mixed workload with deliberate reuse structure: repeated skylines and
/// top-k families (same predicates + ranking, varying k — truncation hits)
/// plus drill-down variants (supersets of earlier predicates — containment
/// hits). Built once; every phase runs the identical batch.
std::vector<BatchQuery> BuildWorkload(size_t n, const SyntheticConfig& config) {
  Random rng(2024);
  // A pool of query *families* — (predicates, ranking, k) fixed per family
  // so the same query recurs, within a pass and across passes. Every
  // fourth occurrence drills into the family's superset predicates, which
  // exercises the containment path. Families ~ n/3 distinct queries per
  // pass: the cold pass still executes every family once while repeats
  // within and across passes hit the cache.
  struct Family {
    PredicateSet base;
    PredicateSet drilled;
    std::shared_ptr<LinearRanking> ranking;
    size_t k;
  };
  std::vector<Family> families;
  size_t num_families = n / 3 < 4 ? 4 : n / 3;
  for (size_t i = 0; i < num_families; ++i) {
    Family fam;
    int dim = static_cast<int>(rng.Uniform(config.num_bool));
    fam.base = {{dim, static_cast<uint32_t>(
                          rng.Uniform(config.bool_cardinality))}};
    fam.drilled = fam.base;
    fam.drilled.Add({(dim + 1) % config.num_bool,
                     static_cast<uint32_t>(
                         rng.Uniform(config.bool_cardinality))});
    std::vector<double> weights(config.num_pref);
    for (double& w : weights) w = 0.25 + rng.NextDouble();
    fam.ranking = std::make_shared<LinearRanking>(weights);
    fam.k = 5 + rng.Uniform(3) * 5;
    families.push_back(std::move(fam));
  }
  std::vector<BatchQuery> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Family& fam = families[rng.Uniform(families.size())];
    PredicateSet preds = rng.Uniform(4) == 0 ? fam.drilled : fam.base;
    if (i % 3 == 0) {
      queries.push_back(BatchQuery::Skyline(std::move(preds)));
    } else {
      queries.push_back(BatchQuery::TopK(std::move(preds), fam.ranking, fam.k));
    }
  }
  return queries;
}

double CounterValue(const char* name) {
  return static_cast<double>(
      MetricsRegistry::Default().GetCounter(name)->Value());
}

}  // namespace

int main() {
  SyntheticConfig config;
  config.num_tuples = EnvU64("PCUBE_CACHE_ROWS", 20000);
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = 100;
  config.seed = 42;

  const size_t num_queries = EnvU64("PCUBE_CACHE_QUERIES", 120);
  const size_t workers = EnvU64("PCUBE_CACHE_WORKERS", 4);
  const size_t hot_passes = EnvU64("PCUBE_CACHE_HOT_PASSES", 3);
  const double latency_us =
      static_cast<double>(EnvU64("PCUBE_CACHE_LATENCY_US", 200));

  WorkbenchOptions options;
  // Small pool + real per-read latency: misses pay for their pages the way
  // the paper's disk-bound experiments do, so the cold/warm gap reflects
  // the I/O (and decode work) the caches remove, not just CPU.
  options.pool_pages = 64;
  options.pool_stripes = 16;
  options.read_latency_us = latency_us;
  // Skyline entries carry their pruned-node lists for Lemma 2 drill-down
  // (~0.5 MB each at this scale), so the L1 must be sized for the working
  // set — the default 16 MB would churn and mask the steady state.
  options.result_cache_mb = 64;
  std::printf(
      "building workbench: %llu rows, %zu queries/batch, %zu workers, "
      "%.0f us/read\n",
      static_cast<unsigned long long>(config.num_tuples), num_queries,
      workers, latency_us);
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();
  // All query traffic goes through the QueryService interface; swapping in
  // a ShardedWorkbench coordinator is a one-line change (bench_shard).
  QueryService& service = **wb;

  std::vector<BatchQuery> queries = BuildWorkload(num_queries, config);

  std::unique_ptr<QueryLog> query_log;
  {
    auto log = QueryLog::OpenFile("BENCH_cache_querylog.jsonl");
    PCUBE_CHECK(log.ok()) << log.status().ToString();
    query_log = std::move(*log);
  }

  struct Phase {
    std::string name;
    double seconds = 0;
    double qps = 0;
    uint64_t reads = 0;
    double hits = 0;         // L1 hits + containment during the phase
    double lookups = 0;      // L1 hits + containment + misses
    LatencySummary latency;
  };
  auto run_phase = [&](const std::string& name, size_t passes,
                       QueryLog* log) {
    Phase p;
    p.name = name;
    double before_hits = CounterValue("pcube_result_cache_hits_total") +
                         CounterValue("pcube_result_cache_containment_total");
    double before_misses = CounterValue("pcube_result_cache_misses_total");
    for (size_t i = 0; i < passes; ++i) {
      BatchOutput out = service.RunBatch(queries, workers, log);
      PCUBE_CHECK_EQ(out.failed, 0u);
      p.seconds += out.seconds;
      p.reads += out.io.TotalReads();
      p.latency = out.latency;
    }
    p.qps = static_cast<double>(passes * queries.size()) / p.seconds;
    p.hits = CounterValue("pcube_result_cache_hits_total") +
             CounterValue("pcube_result_cache_containment_total") -
             before_hits;
    p.lookups = p.hits +
                CounterValue("pcube_result_cache_misses_total") - before_misses;
    std::printf(
        "  %-4s  %7.1f qps  (%.3f s, %6llu page reads, L1 %3.0f%% of %.0f "
        "lookups, p95 %.1f ms)\n",
        p.name.c_str(), p.qps, p.seconds,
        static_cast<unsigned long long>(p.reads),
        p.lookups > 0 ? 100.0 * p.hits / p.lookups : 0.0, p.lookups,
        p.latency.p95 * 1e3);
    return p;
  };

  std::vector<Phase> phases;
  phases.push_back(run_phase("cold", 1, nullptr));
  phases.push_back(run_phase("warm", 1, nullptr));
  // The last hot pass writes the query log so its `cache:` fields show the
  // steady state.
  if (hot_passes > 1) (void)run_phase("hot*", hot_passes - 1, nullptr);
  phases.push_back(run_phase("hot", 1, query_log.get()));

  const Phase& cold = phases[0];
  const Phase& warm = phases[1];
  const Phase& hot = phases.back();
  const double warm_speedup = warm.qps / cold.qps;

  std::ofstream json("BENCH_cache.json");
  json << "{\n  \"workload\": {\"rows\": " << config.num_tuples
       << ", \"queries\": " << num_queries << ", \"workers\": " << workers
       << ", \"read_latency_us\": " << latency_us << "},\n  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const Phase& p = phases[i];
    json << "    {\"phase\": \"" << p.name << "\", \"qps\": " << p.qps
         << ", \"seconds\": " << p.seconds << ", \"page_reads\": " << p.reads
         << ", \"l1_hits\": " << p.hits << ", \"l1_lookups\": " << p.lookups
         << ", \"l1_hit_rate\": "
         << (p.lookups > 0 ? p.hits / p.lookups : 0.0)
         << ", \"latency_p95\": " << p.latency.p95 << "}"
         << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"warm_over_cold\": " << warm_speedup
       << ",\n  \"hot_over_cold\": " << hot.qps / cold.qps << "\n}\n";
  json.close();

  MetricsRegistry& registry = MetricsRegistry::Default();
  service.ExportMetrics(&registry);
  std::ofstream prom("BENCH_cache_metrics.prom");
  prom << registry.RenderText();
  prom.close();

  std::printf("warm-over-cold: %.2fx   hot-over-cold: %.2fx\n", warm_speedup,
              hot.qps / cold.qps);
  std::printf(
      "wrote BENCH_cache.json, BENCH_cache_metrics.prom, "
      "BENCH_cache_querylog.jsonl\n");

  // Smoke gate (scripts/ci.sh): the cache must actually pay for itself.
  const double kMinWarmSpeedup = 2.0;
  if (warm.hits <= 0) {
    std::fprintf(stderr, "FAIL: warm pass recorded no L1 hits\n");
    return 1;
  }
  if (warm_speedup < kMinWarmSpeedup) {
    std::fprintf(stderr, "FAIL: warm-over-cold %.2fx < %.2fx\n", warm_speedup,
                 kMinWarmSpeedup);
    return 1;
  }
  if (hot.qps < cold.qps) {
    std::fprintf(stderr, "FAIL: hot qps below cold qps\n");
    return 1;
  }
  return 0;
}
