#include "query/write_batch.h"

#include <cmath>
#include <cstring>

#include "common/bit_util.h"

namespace pcube {

namespace {

// Encoding (little-endian):
//   u8  ack
//   u16 num_bool | u16 num_pref
//   u32 num_inserts | u32 num_deletes
//   inserts: num_inserts x (num_bool x u32, num_pref x f32)
//   deletes: num_deletes x u64
constexpr size_t kBatchHeaderBytes = 1 + 2 + 2 + 4 + 4;

template <typename T>
void AppendLE(std::string* out, T v) {
  uint8_t buf[sizeof(T)];
  bit_util::StoreLE(buf, v);
  out->append(reinterpret_cast<const char*>(buf), sizeof(T));
}

}  // namespace

Status ValidateWriteBatch(const WriteBatch& batch, const Schema& schema) {
  if (batch.num_rows() == 0) {
    return Status::InvalidArgument("empty write batch");
  }
  if (batch.num_rows() > kMaxBatchRows) {
    return Status::InvalidArgument("write batch exceeds " +
                                   std::to_string(kMaxBatchRows) + " rows");
  }
  for (const WriteBatch::Row& row : batch.inserts) {
    if (row.bools.size() != static_cast<size_t>(schema.num_bool) ||
        row.prefs.size() != static_cast<size_t>(schema.num_pref)) {
      return Status::InvalidArgument("insert row does not match the schema");
    }
    for (int d = 0; d < schema.num_bool; ++d) {
      if (row.bools[d] >= schema.bool_cardinality[d]) {
        return Status::InvalidArgument(
            "bool value " + std::to_string(row.bools[d]) +
            " out of range for dimension " + std::to_string(d));
      }
    }
    for (float v : row.prefs) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("preference coordinate is not finite");
      }
    }
  }
  return Status::OK();
}

Result<std::string> EncodeWriteBatch(const WriteBatch& batch) {
  if (batch.num_rows() > kMaxBatchRows) {
    return Status::InvalidArgument("write batch exceeds the row cap");
  }
  size_t num_bool = 0, num_pref = 0;
  if (!batch.inserts.empty()) {
    num_bool = batch.inserts[0].bools.size();
    num_pref = batch.inserts[0].prefs.size();
  }
  if (num_bool > kMaxBatchDims || num_pref > kMaxBatchDims) {
    return Status::InvalidArgument("write batch exceeds the dimension cap");
  }
  std::string out;
  out.reserve(kBatchHeaderBytes +
              batch.inserts.size() * 4 * (num_bool + num_pref) +
              batch.deletes.size() * 8);
  AppendLE<uint8_t>(&out, static_cast<uint8_t>(batch.ack));
  AppendLE<uint16_t>(&out, static_cast<uint16_t>(num_bool));
  AppendLE<uint16_t>(&out, static_cast<uint16_t>(num_pref));
  AppendLE<uint32_t>(&out, static_cast<uint32_t>(batch.inserts.size()));
  AppendLE<uint32_t>(&out, static_cast<uint32_t>(batch.deletes.size()));
  for (const WriteBatch::Row& row : batch.inserts) {
    if (row.bools.size() != num_bool || row.prefs.size() != num_pref) {
      return Status::InvalidArgument("ragged insert rows in write batch");
    }
    for (uint32_t v : row.bools) AppendLE(&out, v);
    for (float v : row.prefs) {
      uint32_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      AppendLE(&out, bits);
    }
  }
  for (TupleId tid : batch.deletes) AppendLE<uint64_t>(&out, tid);
  return out;
}

Status DecodeWriteBatch(const uint8_t* data, size_t size, WriteBatch* out) {
  *out = WriteBatch();
  if (size < kBatchHeaderBytes) {
    return Status::Corruption("write batch truncated");
  }
  const uint8_t* p = data;
  uint8_t ack = *p++;
  if (ack > static_cast<uint8_t>(WriteBatch::Ack::kDurable)) {
    return Status::Corruption("unknown write batch ack mode");
  }
  out->ack = static_cast<WriteBatch::Ack>(ack);
  uint16_t num_bool = bit_util::LoadLE<uint16_t>(p);
  p += 2;
  uint16_t num_pref = bit_util::LoadLE<uint16_t>(p);
  p += 2;
  uint32_t num_inserts = bit_util::LoadLE<uint32_t>(p);
  p += 4;
  uint32_t num_deletes = bit_util::LoadLE<uint32_t>(p);
  p += 4;
  if (num_bool > kMaxBatchDims || num_pref > kMaxBatchDims) {
    return Status::Corruption("write batch dimension count exceeds cap");
  }
  if (static_cast<uint64_t>(num_inserts) + num_deletes > kMaxBatchRows) {
    return Status::Corruption("write batch row count exceeds cap");
  }
  const size_t row_bytes = 4 * (static_cast<size_t>(num_bool) + num_pref);
  const size_t need = kBatchHeaderBytes + num_inserts * row_bytes +
                      static_cast<size_t>(num_deletes) * 8;
  if (size != need) {
    return Status::Corruption("write batch length mismatch");
  }
  out->inserts.reserve(num_inserts);
  for (uint32_t i = 0; i < num_inserts; ++i) {
    WriteBatch::Row row;
    row.bools.reserve(num_bool);
    row.prefs.reserve(num_pref);
    for (uint16_t d = 0; d < num_bool; ++d) {
      row.bools.push_back(bit_util::LoadLE<uint32_t>(p));
      p += 4;
    }
    for (uint16_t d = 0; d < num_pref; ++d) {
      uint32_t bits = bit_util::LoadLE<uint32_t>(p);
      p += 4;
      float v;
      std::memcpy(&v, &bits, sizeof(v));
      if (!std::isfinite(v)) {
        return Status::Corruption("write batch preference is not finite");
      }
      row.prefs.push_back(v);
    }
    out->inserts.push_back(std::move(row));
  }
  out->deletes.reserve(num_deletes);
  for (uint32_t i = 0; i < num_deletes; ++i) {
    out->deletes.push_back(bit_util::LoadLE<uint64_t>(p));
    p += 8;
  }
  if (p != data + size) {
    return Status::Corruption("write batch has trailing bytes");
  }
  return Status::OK();
}

}  // namespace pcube
