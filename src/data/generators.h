// Synthetic workload generators (paper §VI.A): T tuples with Db boolean
// dimensions of cardinality C (uniform) and Dp preference dimensions drawn
// from the standard skyline-benchmark distributions of Borzsonyi et al. [2]:
// independent (uniform), correlated, and anti-correlated.
#pragma once

#include <cstdint>

#include "cube/relation.h"

namespace pcube {

enum class PrefDistribution {
  kUniform,         ///< independent U[0,1] per dimension
  kCorrelated,      ///< points near the main diagonal (small skylines)
  kAntiCorrelated,  ///< points near the anti-diagonal plane (large skylines)
};

/// Parameters of one synthetic dataset (paper defaults: Db = Dp = 3,
/// C = 100, uniform).
struct SyntheticConfig {
  uint64_t num_tuples = 100000;  ///< T
  int num_bool = 3;              ///< Db
  int num_pref = 3;              ///< Dp
  uint32_t bool_cardinality = 100;  ///< C, same for every boolean dimension
  PrefDistribution dist = PrefDistribution::kUniform;
  uint64_t seed = 42;
};

/// Generates a dataset; deterministic in the seed.
Dataset GenerateSynthetic(const SyntheticConfig& config);

}  // namespace pcube
