# Empty compiler generated dependencies file for pcube_bitmap.
# This may be replaced when dependencies are built.
