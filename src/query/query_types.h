// Shared types of the Algorithm 1 query framework (paper §V): candidate-heap
// entries, the three bookkeeping lists (result, b_list, d_list) and the
// per-query counters behind Figures 8-16.
#pragma once

#include <cstdint>
#include <vector>

#include "common/io_stats.h"
#include "rtree/geometry.h"
#include "rtree/path.h"

namespace pcube {

/// Configuration for one skyline query.
struct SkylineQueryOptions {
  /// Preference dimensions the skyline is computed on (indices into the
  /// tree's dimensions); empty = all.
  std::vector<int> pref_dims;
  /// Dynamic skyline (paper §VII, after [9]): when non-empty, dominance is
  /// evaluated on the transformed coordinates |x_d - origin_d| — "closer to
  /// my reference point in every respect". Must have one entry per tree
  /// dimension.
  std::vector<float> origin;
  /// k-skyband: report the objects dominated by fewer than k others
  /// (k = 1 is the ordinary skyline).
  size_t skyband_k = 1;
};

/// One candidate-heap entry: an R-tree node or a data object.
struct SearchEntry {
  /// Heap priority: skyline queries use the lower-corner coordinate sum
  /// d(n) (paper §V.A); top-k queries use f's lower bound (f(point) for
  /// data objects).
  double key = 0;
  bool is_data = false;
  /// Child PageId for nodes, TupleId for data objects.
  uint64_t id = 0;
  /// MBR for nodes; min == max == point for data objects.
  RectF rect;
  /// Node path / full tuple path (1-based slots); empty for the root.
  Path path;
};

/// Why an entry left the search (which Lemma 2 list it belongs to).
enum class PruneReason { kNotPruned, kDominated, kBoolean };

/// Counters reported by one query execution.
struct EngineCounters {
  uint64_t heap_peak = 0;         ///< Fig. 10: peak candidate-heap size
  uint64_t nodes_expanded = 0;    ///< R-tree node pages read
  uint64_t pruned_boolean = 0;    ///< entries sent to b_list
  uint64_t pruned_preference = 0; ///< entries sent to d_list
  uint64_t verified = 0;          ///< random-access boolean verifications
  uint64_t verify_failed = 0;
  double sig_seconds = 0;         ///< time inside boolean probes (Fig. 15)
};

/// Result of one skyline query (Algorithm 1 run to exhaustion).
struct SkylineOutput {
  std::vector<SearchEntry> skyline;
  /// Entries pruned by boolean predicates / by domination (paper's global
  /// b_list and d_list, kept to seed drill-down and roll-up queries).
  std::vector<SearchEntry> b_list;
  std::vector<SearchEntry> d_list;
  EngineCounters counters;
};

/// Result of one top-k query.
struct TopKOutput {
  /// At most k data entries in ascending score (entry.key = exact score).
  std::vector<SearchEntry> results;
  std::vector<SearchEntry> b_list;
  std::vector<SearchEntry> d_list;
  /// Heap contents left unexamined when the k-th result was found; needed to
  /// seed incremental queries.
  std::vector<SearchEntry> remaining;
  EngineCounters counters;
};

}  // namespace pcube
