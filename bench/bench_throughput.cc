// Inter-query parallelism benchmark: a fixed mixed workload of top-k and
// skyline queries fans out over 1/2/4/8 workers against one shared,
// immutable PCube + R*-tree through the striped BufferPool, and the sweep
// reports QPS and speedup vs. the single-worker baseline.
//
// Methodology: the paper's experiments are disk-bound (§VI; bench_common.h
// charges 5 ms per cold page read arithmetically). Here the latency is made
// REAL — a LatencyPageManager sleeps per physical read — so worker threads
// genuinely overlap their I/O stalls, which is where the throughput win of
// inter-query parallelism comes from on any machine (CPU parallelism adds
// on top when cores are available). The buffer pool is deliberately smaller
// than the working set so the workload keeps faulting, as a loaded server
// serving many distinct queries would.
//
// Output: a human-readable table on stdout plus three artifacts in the
// working directory — BENCH_throughput.json (per-run qps and latency
// quantiles), BENCH_throughput_metrics.prom (Prometheus-style dump of every
// engine and buffer-pool metric) and BENCH_throughput_querylog.jsonl (one
// trace record per query of the final measured batch).
//
// Environment knobs:
//   PCUBE_THROUGHPUT_ROWS        dataset size            (default 20000)
//   PCUBE_THROUGHPUT_QUERIES     queries per batch       (default 120)
//   PCUBE_THROUGHPUT_LATENCY_US  per-read sleep, micros  (default 1000)
//   PCUBE_THROUGHPUT_POOL_PAGES  buffer-pool capacity    (default 64)
//   PCUBE_THROUGHPUT_STRIPES     buffer-pool stripes     (default 16)
//   PCUBE_THROUGHPUT_SMOKE       when set, sweep only {1, 2} workers (CI)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/timer.h"
#include "common/trace.h"
#include "data/generators.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

/// Deterministic mixed workload: 1/3 skylines, 2/3 top-k (linear and
/// distance-to-target), predicates spread over all boolean dimensions.
std::vector<BatchQuery> BuildWorkload(size_t n, const SyntheticConfig& config) {
  Random rng(2024);
  std::vector<BatchQuery> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PredicateSet preds;
    preds.Add({static_cast<int>(rng.Uniform(config.num_bool)),
               static_cast<uint32_t>(rng.Uniform(config.bool_cardinality))});
    if (rng.Uniform(4) == 0) {  // every 4th query drills into two dimensions
      preds.Add({static_cast<int>(rng.Uniform(config.num_bool)),
                 static_cast<uint32_t>(rng.Uniform(config.bool_cardinality))});
    }
    switch (i % 3) {
      case 0:
        queries.push_back(BatchQuery::Skyline(std::move(preds)));
        break;
      case 1: {
        std::vector<double> weights(config.num_pref);
        for (double& w : weights) w = 0.25 + rng.NextDouble();
        queries.push_back(BatchQuery::TopK(
            std::move(preds), std::make_shared<LinearRanking>(weights), 10));
        break;
      }
      default: {
        std::vector<double> target(config.num_pref);
        for (double& t : target) t = rng.NextDouble();
        std::vector<double> weights(config.num_pref, 1.0);
        queries.push_back(BatchQuery::TopK(
            std::move(preds),
            std::make_shared<WeightedL2Ranking>(target, weights), 10));
        break;
      }
    }
  }
  return queries;
}

}  // namespace

int main() {
  SyntheticConfig config;
  config.num_tuples = EnvU64("PCUBE_THROUGHPUT_ROWS", 20000);
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = 100;
  config.seed = 42;

  const size_t num_queries = EnvU64("PCUBE_THROUGHPUT_QUERIES", 120);
  const double latency_us =
      static_cast<double>(EnvU64("PCUBE_THROUGHPUT_LATENCY_US", 1000));
  // Small pool so the workload keeps faulting; explicit stripes so misses on
  // different pages overlap (the default heuristic would leave a pool this
  // small single-striped for strict-LRU compatibility).
  const size_t pool_pages = EnvU64("PCUBE_THROUGHPUT_POOL_PAGES", 64);
  const size_t pool_stripes = EnvU64("PCUBE_THROUGHPUT_STRIPES", 16);

  WorkbenchOptions options;
  options.pool_pages = pool_pages;
  options.pool_stripes = pool_stripes;
  options.read_latency_us = latency_us;
  // This benchmark measures engine throughput under real I/O stalls; the
  // sweep re-runs one workload, which the query caches would answer without
  // touching a page after the warm-up. bench_cache measures the caches.
  options.result_cache_mb = 0;
  options.fragment_cache_mb = 0;
  std::printf(
      "building workbench: %llu rows, pool %zu pages / %zu stripes, "
      "%.0f us/read\n",
      static_cast<unsigned long long>(config.num_tuples), pool_pages,
      pool_stripes, latency_us);
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();
  // All query traffic goes through the QueryService interface; swapping in
  // a ShardedWorkbench coordinator is a one-line change (bench_shard).
  QueryService& service = **wb;

  std::vector<BatchQuery> queries = BuildWorkload(num_queries, config);

  // One untimed pass brings the pool to its steady faulting state so every
  // measured worker count starts from the same cache contents.
  (void)service.RunBatch(queries, 4);

  struct Row {
    size_t workers;
    double seconds;
    double qps;
    uint64_t reads;
    uint64_t failed;
    LatencySummary latency;
    double queue_depth_peak;
  };
  std::vector<Row> rows;
  std::vector<size_t> sweep = {1, 2, 4, 8};
  if (std::getenv("PCUBE_THROUGHPUT_SMOKE") != nullptr) sweep = {1, 2};
  // The last sweep point also writes the JSONL query log (one record per
  // query; earlier runs would just overwrite it).
  std::unique_ptr<QueryLog> query_log;
  {
    auto log = QueryLog::OpenFile("BENCH_throughput_querylog.jsonl");
    PCUBE_CHECK(log.ok()) << log.status().ToString();
    query_log = std::move(*log);
  }
  // The pool's peak-backlog gauge is monotone across pools; resetting it
  // before each sweep point turns it into a per-run high-water mark.
  Gauge* pool_peak = MetricsRegistry::Default().GetGauge(
      "pcube_threadpool_queue_depth_peak");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const size_t workers = sweep[i];
    const bool last = i + 1 == sweep.size();
    pool_peak->Reset();
    BatchOutput out =
        service.RunBatch(queries, workers, last ? query_log.get() : nullptr);
    PCUBE_CHECK_EQ(out.failed, 0u);
    rows.push_back({workers, out.seconds,
                    static_cast<double>(queries.size()) / out.seconds,
                    out.io.TotalReads(), out.failed, out.latency,
                    pool_peak->Value()});
    std::printf(
        "  %zu worker(s): %6.2f qps  (%.3f s, %llu page reads, "
        "p50 %.1f ms, p95 %.1f ms, p99 %.1f ms, queue peak %.0f)\n",
        workers, rows.back().qps, out.seconds,
        static_cast<unsigned long long>(rows.back().reads),
        out.latency.p50 * 1e3, out.latency.p95 * 1e3, out.latency.p99 * 1e3,
        rows.back().queue_depth_peak);
  }

  const double base_qps = rows.front().qps;
  std::ofstream json("BENCH_throughput.json");
  json << "{\n  \"workload\": {\"rows\": " << config.num_tuples
       << ", \"queries\": " << num_queries
       << ", \"pool_pages\": " << pool_pages
       << ", \"read_latency_us\": " << latency_us << "},\n  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"workers\": " << r.workers << ", \"qps\": " << r.qps
         << ", \"seconds\": " << r.seconds << ", \"page_reads\": " << r.reads
         << ", \"latency_p50\": " << r.latency.p50
         << ", \"latency_p95\": " << r.latency.p95
         << ", \"latency_p99\": " << r.latency.p99
         << ", \"latency_mean\": " << r.latency.mean
         << ", \"queue_depth_peak\": " << r.queue_depth_peak
         << ", \"speedup\": " << r.qps / base_qps << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  // Process-wide metrics dump: engine counters and latency histogram from
  // every batch above plus this instance's buffer-pool/storage gauges.
  MetricsRegistry& registry = MetricsRegistry::Default();
  service.ExportMetrics(&registry);
  std::ofstream prom("BENCH_throughput_metrics.prom");
  prom << registry.RenderText();
  prom.close();

  for (const Row& r : rows) {
    std::printf("speedup @%zu workers: %.2fx\n", r.workers, r.qps / base_qps);
  }
  std::printf(
      "wrote BENCH_throughput.json, BENCH_throughput_metrics.prom, "
      "BENCH_throughput_querylog.jsonl\n");
  return 0;
}
