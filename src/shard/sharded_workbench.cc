#include "shard/sharded_workbench.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <queue>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "common/timer.h"
#include "query/dominance_kernels.h"

namespace pcube {

namespace {

/// tuple_homes_ sentinel for rows orphaned by a failed insert sub-batch:
/// the global tid keeps its Dataset row but lives on no shard.
constexpr uint32_t kNoHome = UINT32_MAX;

/// Preference dimensions a skyline request is evaluated on — mirrors the
/// SkylineEngine constructor verbatim (pref_dims as given, all dimensions
/// when empty) so the merge's dominance tests replay the shards' exactly.
std::vector<int> SkylineDims(const SkylineQueryOptions& options,
                             int num_pref) {
  if (!options.pref_dims.empty()) return options.pref_dims;
  std::vector<int> dims(static_cast<size_t>(num_pref));
  std::iota(dims.begin(), dims.end(), 0);
  return dims;
}

}  // namespace

Result<std::unique_ptr<ShardedWorkbench>> ShardedWorkbench::Build(
    Dataset data, ShardedOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  std::unique_ptr<ShardedWorkbench> sw(new ShardedWorkbench());
  sw->data_ = std::move(data);
  ShardPartition part = PartitionByBoolHash(sw->data_, options.num_shards);
  sw->global_tids_ = std::move(part.global_tids);
  // Invert the partition for delete routing: global tid -> (shard, local).
  sw->tuple_homes_.resize(sw->data_.num_tuples());
  for (size_t s = 0; s < sw->global_tids_.size(); ++s) {
    for (TupleId local = 0; local < sw->global_tids_[s].size(); ++local) {
      sw->tuple_homes_[sw->global_tids_[s][local]] = {
          static_cast<uint32_t>(s), local};
    }
  }
  sw->shards_.resize(options.num_shards);
  WorkbenchOptions shard_options = options.shard;
  // One semantic cache, at the coordinator; shards keep their private L2
  // fragment caches. Shards are rebuilt from the partition, never persisted.
  shard_options.result_cache_mb = 0;
  shard_options.file_path.clear();
  for (size_t s = 0; s < options.num_shards; ++s) {
    if (part.datasets[s].num_tuples() == 0) continue;
    auto wb = Workbench::Build(std::move(part.datasets[s]), shard_options);
    if (!wb.ok()) return wb.status();
    sw->shards_[s] = std::move(*wb);
    ++sw->live_shards_;
  }
  if (options.result_cache_mb > 0) {
    sw->result_cache_ = std::make_unique<ResultCache>(
        options.result_cache_mb << 20, &sw->epoch_,
        options.enable_containment);
  }
  size_t threads = options.fanout_threads != 0 ? options.fanout_threads
                                               : sw->live_shards_;
  sw->pool_ = std::make_unique<ThreadPool>(std::max<size_t>(1, threads));
  return sw;
}

ShardedWorkbench::SubResult ShardedWorkbench::RunShardQuery(
    size_t s, const QueryRequest& request,
    const std::optional<std::chrono::steady_clock::time_point>& deadline)
    const {
  SubResult sub;
  MetricsRegistry::Default()
      .GetCounter("pcube_shard_queries_total")
      ->Increment();
  Workbench* wb = shards_[s].get();
  // Per-thread I/O attribution and io_wait routing, exactly like a
  // BatchExecutor worker. No cold start: the fan-out measures warm shards.
  BufferPool::ScopedThreadStats scope(&sub.io);
  Trace::ScopedBind bind(&sub.trace);
  Timer timer;
  auto probe = wb->cube()->MakeProbe(request.preds);
  if (!probe.ok()) {
    sub.status = probe.status();
    return sub;
  }
  const std::vector<TupleId>& to_global = global_tids_[s];
  switch (request.kind) {
    case QueryRequest::Kind::kSkyline: {
      SkylineEngine engine(wb->tree(), probe->get(), nullptr,
                           request.skyline);
      engine.set_trace(&sub.trace);
      if (deadline) engine.set_deadline(*deadline);
      auto out = engine.Run();
      if (!out.ok()) {
        sub.status = out.status();
        break;
      }
      sub.counters = out->counters;
      sub.tids.reserve(out->skyline.size());
      for (const SearchEntry& e : out->skyline) {
        sub.tids.push_back(to_global[e.id]);
      }
      break;
    }
    case QueryRequest::Kind::kTopK: {
      TopKEngine engine(wb->tree(), probe->get(), nullptr,
                        request.ranking.get(), request.k);
      engine.set_trace(&sub.trace);
      if (deadline) engine.set_deadline(*deadline);
      auto out = engine.Run();
      if (!out.ok()) {
        sub.status = out.status();
        break;
      }
      sub.counters = out->counters;
      sub.tids.reserve(out->results.size());
      for (const SearchEntry& e : out->results) {
        sub.tids.push_back(to_global[e.id]);
        sub.scores.push_back(e.key);
      }
      break;
    }
  }
  sub.seconds = timer.ElapsedSeconds();
  return sub;
}

Status ShardedWorkbench::FirstFailure(
    const std::vector<SubResult>& subs) const {
  for (const SubResult& sub : subs) {
    if (!sub.status.ok()) return sub.status;
  }
  return Status::OK();
}

void ShardedWorkbench::MergeSubResults(const QueryRequest& request,
                                       std::vector<SubResult>* subs,
                                       QueryResponse* resp) const {
  for (const SubResult& sub : *subs) {
    resp->counters.heap_peak =
        std::max(resp->counters.heap_peak, sub.counters.heap_peak);
    resp->counters.nodes_expanded += sub.counters.nodes_expanded;
    resp->counters.pruned_boolean += sub.counters.pruned_boolean;
    resp->counters.pruned_preference += sub.counters.pruned_preference;
    resp->counters.verified += sub.counters.verified;
    resp->counters.verify_failed += sub.counters.verify_failed;
    resp->counters.sig_seconds += sub.counters.sig_seconds;
    resp->io.Merge(sub.io);
    // Fold the per-shard stage timings into the coordinator trace (one
    // observation per shard per stage; seconds aggregate exactly, call
    // counts collapse to shard granularity).
    for (const Trace::Stage& stage : sub.trace.stages()) {
      resp->trace.Record(stage.name, stage.seconds);
    }
  }
  if (request.kind == QueryRequest::Kind::kSkyline) {
    // Union of the local skyband lists, then one dominance-filter pass.
    // Sound and exact (DESIGN.md §13): shards partition the relation, so a
    // tuple's global dominators are the union of its per-shard dominators,
    // every global skyband member survives its own shard's local skyband,
    // and each local list retains min(k, |local dominators|) of any
    // candidate's dominators — the saturating count over the union equals
    // the global count's saturation at k.
    std::vector<TupleId> cand;
    for (const SubResult& sub : *subs) {
      cand.insert(cand.end(), sub.tids.begin(), sub.tids.end());
    }
    std::sort(cand.begin(), cand.end());  // shards are disjoint: no dups
    const std::vector<int> dims =
        SkylineDims(request.skyline, data_.num_pref());
    const std::vector<float>& origin = request.skyline.origin;
    const size_t limit = std::max<size_t>(1, request.skyline.skyband_k);
    const size_t d = dims.size();
    // Transform every candidate exactly as SkylineEngine::LowCoord does for
    // a data point (float -> double promotion is exact, so the merge's
    // comparisons are bit-identical to the shards').
    std::vector<double> coords(cand.size() * d);
    for (size_t i = 0; i < cand.size(); ++i) {
      for (size_t j = 0; j < d; ++j) {
        double v = static_cast<double>(data_.PrefValue(cand[i], dims[j]));
        if (!origin.empty()) {
          v = std::abs(v - static_cast<double>(origin[dims[j]]));
        }
        coords[i * d + j] = v;
      }
    }
    DominanceWindow window(d);
    for (size_t i = 0; i < cand.size(); ++i) window.Append(&coords[i * d]);
    // A candidate never dominates itself (equal coordinates are not strict
    // on any dimension), so testing against the full window is safe.
    for (size_t i = 0; i < cand.size(); ++i) {
      if (window.CountDominators(&coords[i * d], limit) < limit) {
        resp->tids.push_back(cand[i]);
      }
    }
  } else {
    // k-way merge of the per-shard ascending score lists; ties broken by
    // global tid for a deterministic order.
    struct Head {
      double score;
      TupleId tid;
      size_t shard;
      size_t idx;
    };
    auto later = [](const Head& a, const Head& b) {
      return a.score > b.score || (a.score == b.score && a.tid > b.tid);
    };
    std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
    for (size_t s = 0; s < subs->size(); ++s) {
      const SubResult& sub = (*subs)[s];
      if (!sub.tids.empty()) {
        heap.push({sub.scores[0], sub.tids[0], s, 0});
      }
    }
    while (!heap.empty() && resp->tids.size() < request.k) {
      Head head = heap.top();
      heap.pop();
      resp->tids.push_back(head.tid);
      resp->scores.push_back(head.score);
      const SubResult& sub = (*subs)[head.shard];
      if (head.idx + 1 < sub.tids.size()) {
        heap.push({sub.scores[head.idx + 1], sub.tids[head.idx + 1],
                   head.shard, head.idx + 1});
      }
    }
  }
}

Result<QueryResponse> ShardedWorkbench::Run(const QueryRequest& request) {
  if (request.kind == QueryRequest::Kind::kTopK &&
      request.ranking == nullptr) {
    return Status::InvalidArgument("top-k query without ranking");
  }
  QueryResponse resp;
  resp.estimate.choice = PlanChoice::kSignature;
  MetricsRegistry& registry = MetricsRegistry::Default();
  // Shared hold for the whole execution: the pool workers this thread waits
  // on read the global tid maps under this hold (see coord_mu_).
  ReaderLock coord_lock(&coord_mu_);

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (request.deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(request.deadline_ms);
  }

  // Coordinator-level L1, consulted BEFORE any fan-out: a hot request is
  // served here and no shard ever sees it (resp.fanout_shards stays 0).
  // The hint/canonicalizability gating matches QueryPlanner::Run.
  ResultCache* cache = result_cache_.get();
  const bool use_cache = cache != nullptr &&
                         request.hint == PlanHint::kAuto &&
                         request.Canonicalizable();
  if (cache != nullptr && !use_cache) {
    resp.cache = CacheOutcome::kBypass;
    registry.GetCounter("pcube_result_cache_bypass_total")->Increment();
  }
  if (use_cache) {
    ResultCache::Lookup found;
    {
      ScopedSpan span(&resp.trace, "cache_lookup");
      found = cache->Find(request, data_);
    }
    resp.cache = found.outcome;
    if (found.outcome == CacheOutcome::kHit ||
        (found.outcome == CacheOutcome::kContainment &&
         request.kind == QueryRequest::Kind::kTopK)) {
      Timer timer;
      resp.tids = std::move(found.tids);
      resp.scores = std::move(found.scores);
      resp.estimate.choice = found.plan;
      resp.seconds = timer.ElapsedSeconds();
      registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
      return resp;
    }
    if (found.outcome == CacheOutcome::kContainment) {
      // Skyline containment seeds a Lemma 2 drill-down from ONE tree's
      // engine state; merged answers carry none and per-shard states do not
      // compose across trees, so the coordinator treats this as a miss.
      resp.cache = CacheOutcome::kMiss;
    }
  }
  ResultCache::Stamps stamps;
  if (use_cache) stamps = cache->SnapshotStamps(request.preds);

  Timer timer;
  std::vector<SubResult> subs(shards_.size());
  {
    ScopedSpan span(&resp.trace, "scatter_gather");
    std::vector<std::pair<size_t, std::future<SubResult>>> futures;
    futures.reserve(live_shards_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s] == nullptr) continue;  // empty shard: nothing to ask
      futures.emplace_back(
          s, pool_->Submit([this, s, &request, deadline] {
            return RunShardQuery(s, request, deadline);
          }));
    }
    for (auto& [s, future] : futures) subs[s] = future.get();
  }
  Status status = FirstFailure(subs);
  if (!status.ok()) {
    if (status.IsTimeout()) {
      registry.GetCounter("pcube_query_timeouts_total")->Increment();
    }
    return status;
  }
  {
    ScopedSpan span(&resp.trace, "shard_merge");
    Timer merge_timer;
    MergeSubResults(request, &subs, &resp);
    registry.GetHistogram("pcube_shard_merge_us")
        ->Observe(merge_timer.ElapsedSeconds() * 1e6);
  }
  resp.fanout_shards = static_cast<uint32_t>(live_shards_);
  resp.seconds = timer.ElapsedSeconds();

  // Publish for the next exact repeat / truncation hit. Merged answers
  // carry no engine state (nullptr), so skyline containment over this
  // entry can never fire and top-k containment's filter pass — a final
  // answer derived from tids/scores alone — stays sound globally.
  if (use_cache) cache->Insert(request, resp, nullptr, nullptr, stamps);

  registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
  return resp;
}

BatchOutput ShardedWorkbench::RunBatch(const std::vector<BatchQuery>& queries,
                                       size_t num_workers,
                                       QueryLog* query_log) {
  Timer timer;
  BatchOutput out;
  out.results.resize(queries.size());
  ReaderLock coord_lock(&coord_mu_);
  ResultCache* cache = result_cache_.get();
  MetricsRegistry& registry = MetricsRegistry::Default();
  // A fresh pool sized by the caller, like BatchExecutor's contract; the
  // coordinator's own fan-out pool is reserved for Run().
  ThreadPool pool(std::max<size_t>(1, num_workers));

  // Phase 1 (driver thread): validate, consult the coordinator L1. Hits
  // are final answers; like Run(), they never fan out. Batches ignore plan
  // hints (sub-queries always run the signature engines), so only
  // canonicalizability gates cache use.
  struct ColdQuery {
    size_t index;
    bool use_cache;
    ResultCache::Stamps stamps;
    /// Absolute deadline fixed on the DRIVER thread when the query enters
    /// the batch, so time a sub-query spends waiting for a pool worker
    /// counts against the caller's budget instead of silently re-granting
    /// the full deadline_ms at task start.
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };
  std::vector<ColdQuery> cold;
  for (size_t i = 0; i < queries.size(); ++i) {
    const BatchQuery& q = queries[i];
    BatchQueryResult& r = out.results[i];
    r.response.estimate.choice = PlanChoice::kSignature;
    if (q.kind == BatchQuery::Kind::kTopK && q.ranking == nullptr) {
      r.status = Status::InvalidArgument("top-k query without ranking");
      continue;
    }
    const bool use_cache = cache != nullptr && q.Canonicalizable();
    if (cache != nullptr && !use_cache) {
      r.response.cache = CacheOutcome::kBypass;
      registry.GetCounter("pcube_result_cache_bypass_total")->Increment();
    }
    if (use_cache) {
      Timer hit_timer;
      ResultCache::Lookup found;
      {
        ScopedSpan span(&r.response.trace, "cache_lookup");
        found = cache->Find(q, data_);
      }
      r.response.cache = found.outcome;
      if (found.outcome == CacheOutcome::kHit ||
          (found.outcome == CacheOutcome::kContainment &&
           q.kind == BatchQuery::Kind::kTopK)) {
        // Served without scattering. Unlike BatchExecutor, the entry holds
        // no engine state, so r.skyline/r.topk stay unset (see RunBatch's
        // declaration comment).
        r.response.tids = std::move(found.tids);
        r.response.scores = std::move(found.scores);
        r.response.estimate.choice = found.plan;
        r.seconds = hit_timer.ElapsedSeconds();
        r.response.seconds = r.seconds;
        continue;
      }
      if (found.outcome == CacheOutcome::kContainment) {
        r.response.cache = CacheOutcome::kMiss;  // as in Run(): no state
      }
    }
    ColdQuery c;
    c.index = i;
    c.use_cache = use_cache;
    if (use_cache) c.stamps = cache->SnapshotStamps(q.preds);
    if (q.deadline_ms > 0) {
      c.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(q.deadline_ms);
    }
    cold.push_back(std::move(c));
  }

  // Phase 2: scatter the (cold query x live shard) grid; every cell is an
  // independent task, so shards stay busy across query boundaries. Tasks
  // are submitted only from the driver thread (ThreadPool contract).
  std::vector<std::vector<SubResult>> subs(cold.size());
  std::vector<std::future<void>> futures;
  futures.reserve(cold.size() * std::max<size_t>(1, live_shards_));
  for (size_t c = 0; c < cold.size(); ++c) {
    subs[c].resize(shards_.size());
    const BatchQuery& q = queries[cold[c].index];
    const std::optional<std::chrono::steady_clock::time_point>& deadline =
        cold[c].deadline;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s] == nullptr) continue;
      futures.push_back(pool.Submit([this, &q, c, s, &subs, &deadline] {
        subs[c][s] = RunShardQuery(s, q, deadline);
      }));
    }
  }
  for (auto& f : futures) f.get();

  // Phase 3 (driver thread): merge each cold query's sub-results.
  for (size_t c = 0; c < cold.size(); ++c) {
    const BatchQuery& q = queries[cold[c].index];
    BatchQueryResult& r = out.results[cold[c].index];
    Status status = FirstFailure(subs[c]);
    if (!status.ok()) {
      r.status = status;
      continue;
    }
    double slowest = 0;
    for (const SubResult& sub : subs[c]) {
      slowest = std::max(slowest, sub.seconds);
    }
    Timer merge_timer;
    MergeSubResults(q, &subs[c], &r.response);
    registry.GetHistogram("pcube_shard_merge_us")
        ->Observe(merge_timer.ElapsedSeconds() * 1e6);
    r.response.fanout_shards = static_cast<uint32_t>(live_shards_);
    // The query's wall time under unconstrained parallelism: its slowest
    // shard plus the merge (the grid may actually serialise sub-queries
    // when workers < shards, but per-query latency should not charge one
    // query for another's occupancy).
    r.seconds = slowest + merge_timer.ElapsedSeconds();
    r.response.seconds = r.seconds;
    r.io = r.response.io;
    if (cold[c].use_cache) {
      cache->Insert(q, r.response, nullptr, nullptr, cold[c].stamps);
    }
  }

  // Phase 4: per-query bookkeeping and batch aggregates, as BatchExecutor.
  Histogram latency;
  for (size_t i = 0; i < queries.size(); ++i) {
    const BatchQueryResult& r = out.results[i];
    ReportQueryMetrics(queries[i], r.response, r.status);
    if (query_log != nullptr && r.status.ok()) {
      query_log->Append(QueryLogRecord(queries[i], r.response));
    }
    out.io.Merge(r.io);
    if (!r.status.ok()) {
      ++out.failed;
      if (r.status.IsTimeout()) ++out.timed_out;
    } else {
      latency.Observe(r.seconds);
    }
  }
  out.latency.p50 = latency.Quantile(0.50);
  out.latency.p95 = latency.Quantile(0.95);
  out.latency.p99 = latency.Quantile(0.99);
  out.latency.mean = latency.Mean();
  out.latency.count = latency.Count();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<WriteResult> ShardedWorkbench::Apply(const WriteBatch& batch) {
  PCUBE_RETURN_NOT_OK(ValidateWriteBatch(batch, data_.schema()));
  if (live_shards_ == 0) {
    return Status::NotSupported("no live shards to route writes to");
  }
  const auto start = std::chrono::steady_clock::now();

  // One writer at a time: global_tids_[s].size() then equals shard s's
  // staged row count, which is exactly the local tid its next insert gets.
  MutexLock apply_lock(&apply_mu_);

  std::vector<size_t> live;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s] != nullptr) live.push_back(s);
  }

  // Route every row/delete to its shard sub-batch.
  std::vector<WriteBatch> subs(shards_.size());
  std::vector<std::vector<size_t>> insert_rows(shards_.size());
  const TupleId first_tid = data_.num_tuples();
  for (size_t i = 0; i < batch.inserts.size(); ++i) {
    const WriteBatch::Row& row = batch.inserts[i];
    size_t target =
        data_.num_bool() > 0
            ? live[BoolRowHash(std::span<const uint32_t>(row.bools)) %
                   live.size()]
            : live[(first_tid + i) % live.size()];
    subs[target].inserts.push_back(row);
    insert_rows[target].push_back(i);
  }
  // Validate every delete BEFORE any state changes: a bad tid rejects the
  // whole batch here, with nothing routed and the global view untouched, so
  // no shard can refuse a sub-batch at ITS stage time (which would leave
  // the coordinator's view ahead of the shard's row count).
  std::unordered_set<TupleId> batch_deletes;
  for (TupleId tid : batch.deletes) {
    if (tid >= tuple_homes_.size()) {
      return Status::InvalidArgument("delete of unknown tuple " +
                                     std::to_string(tid));
    }
    const auto& [shard, local] = tuple_homes_[tid];
    if (shard >= shards_.size()) {
      // Orphaned by a failed insert sub-batch (see the reconciliation
      // below): the row exists in the global Dataset but on no shard.
      return Status::InvalidArgument("delete of unknown tuple " +
                                     std::to_string(tid));
    }
    if (shards_[shard] == nullptr) {
      return Status::Corruption("tuple " + std::to_string(tid) +
                                " maps to an empty shard");
    }
    if (shards_[shard]->tombstones().count(local) > 0 ||
        !batch_deletes.insert(tid).second) {
      return Status::NotFound("tuple " + std::to_string(tid) +
                              " is already deleted");
    }
    subs[shard].deletes.push_back(local);
  }

  // Extend the global view FIRST, under the exclusive side: the moment a
  // shard acks its sub-batch the new local tids are queryable, and the
  // merge must already be able to translate them. The epoch bump rides in
  // the same window so stale coordinator-L1 entries die before any query
  // can observe the new rows.
  std::vector<CellId> cells;
  {
    WriterLock coord_lock(&coord_mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      for (size_t i : insert_rows[s]) {
        const WriteBatch::Row& row = batch.inserts[i];
        TupleId global = data_.Append(row.bools, row.prefs);
        global_tids_[s].push_back(global);
        tuple_homes_.push_back({static_cast<uint32_t>(s),
                                static_cast<TupleId>(global_tids_[s].size() - 1)});
        for (int d = 0; d < data_.num_bool(); ++d) {
          cells.push_back(AtomicCellId(d, row.bools[d]));
        }
      }
    }
    for (TupleId tid : batch.deletes) {
      for (int d = 0; d < data_.num_bool(); ++d) {
        cells.push_back(AtomicCellId(d, data_.BoolValue(tid, d)));
      }
    }
    epoch_.BumpCells(cells);
  }

  // Apply each shard's sub-batch with read-your-writes semantics. The first
  // failure is returned; later shards are still attempted so the fan-out
  // does not wedge half the batch in pending queues.
  WriteResult result;
  result.first_tid = first_tid;
  Status first_error;
  bool reconcile = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (subs[s].empty()) continue;
    subs[s].ack = WriteBatch::Ack::kApplied;
    auto sub = shards_[s]->Apply(subs[s]);
    if (!sub.ok()) {
      if (first_error.ok()) first_error = sub.status();
      if (!subs[s].inserts.empty()) reconcile = true;
      continue;
    }
    // The predicted local tids must match what the shard assigned; a
    // mismatch means the coordinator's tid map no longer describes the
    // shard and every translation through it would be wrong.
    if (!subs[s].inserts.empty() &&
        sub->first_tid + subs[s].inserts.size() != global_tids_[s].size()) {
      if (first_error.ok()) {
        first_error = Status::Corruption(
            "shard " + std::to_string(s) + " assigned local tids ending at " +
            std::to_string(sub->first_tid + subs[s].inserts.size()) +
            " but the coordinator predicted " +
            std::to_string(global_tids_[s].size()));
      }
      reconcile = true;
      continue;
    }
    result.lsn = std::max(result.lsn, sub->lsn);
    result.group_size = std::max(result.group_size, sub->group_size);
  }
  if (reconcile) {
    // A shard did not stage every insert routed to it. Shrink the global
    // view back to each shard's actual staged row count so local -> global
    // translation and the next write's tid prediction stay exact (instead
    // of diverging permanently). The orphaned global tids keep their
    // Dataset rows but lose their home: they become phantoms no shard can
    // return, and deleting one reports an unknown tuple.
    WriterLock coord_lock(&coord_mu_);
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shards_[s] == nullptr || insert_rows[s].empty()) continue;
      const uint64_t actual = shards_[s]->staged_rows();
      while (global_tids_[s].size() > actual) {
        tuple_homes_[global_tids_[s].back()] = {kNoHome, 0};
        global_tids_[s].pop_back();
      }
    }
  }
  if (!first_error.ok()) return first_error;

  result.epoch = epoch_.global();
  result.durable = false;  // shards are in-memory rebuilds (RAM-backed WALs)
  result.commit_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry.GetCounter("pcube_write_batches_total")->Increment();
  registry.GetCounter("pcube_write_rows_total")->Increment(batch.num_rows());
  registry.GetHistogram("pcube_write_commit_seconds")
      ->Observe(result.commit_seconds);
  return result;
}

Result<PlanEstimate> ShardedWorkbench::Estimate(const PredicateSet& preds) {
  PlanEstimate total;
  ReaderLock coord_lock(&coord_mu_);
  for (auto& shard : shards_) {
    if (shard == nullptr) continue;
    auto est = shard->Estimate(preds);
    if (!est.ok()) return est.status();
    total.matching_tuples += est->matching_tuples;
    total.boolean_pages += est->boolean_pages;
    total.signature_pages += est->signature_pages;
  }
  total.choice = total.signature_pages <= total.boolean_pages
                     ? PlanChoice::kSignature
                     : PlanChoice::kBooleanFirst;
  return total;
}

std::string ShardedWorkbench::DescribeShards() const {
  std::string out;
  ReaderLock coord_lock(&coord_mu_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    out += "shard " + std::to_string(s) + ": ";
    if (shards_[s] == nullptr) {
      out += "(empty)\n";
      continue;
    }
    out += std::to_string(shards_[s]->data().num_tuples()) +
           " tuples, " + std::to_string(shards_[s]->tree()->num_pages()) +
           " r-tree pages, " +
           std::to_string(shards_[s]->cube()->num_cells()) + " cube cells\n";
  }
  out += "partition: boolean-row hash (fnv1a), " +
         std::to_string(live_shards_) + "/" +
         std::to_string(shards_.size()) + " shards live\n";
  return out;
}

void ShardedWorkbench::ExportMetrics(MetricsRegistry* registry) const {
  ReaderLock coord_lock(&coord_mu_);
  registry->GetGauge("pcube_shard_count")
      ->Set(static_cast<double>(shards_.size()));
  registry->GetGauge("pcube_shard_live")
      ->Set(static_cast<double>(live_shards_));
  for (size_t s = 0; s < shards_.size(); ++s) {
    registry
        ->GetGauge("pcube_shard_tuples{shard=\"" + std::to_string(s) + "\"}")
        ->Set(shards_[s] == nullptr
                  ? 0.0
                  : static_cast<double>(shards_[s]->data().num_tuples()));
  }
  // Coordinator L1 occupancy + hit rate, same gauge names as a single
  // Workbench (no collision: shards are built without a result cache and
  // their storage gauges are per-instance — scrape shard(i) directly for
  // per-shard buffer-pool detail).
  MetricsRegistry& events = MetricsRegistry::Default();
  if (result_cache_ != nullptr) {
    registry->GetGauge("pcube_result_cache_bytes")
        ->Set(static_cast<double>(result_cache_->bytes()));
    registry->GetGauge("pcube_result_cache_entries")
        ->Set(static_cast<double>(result_cache_->entries()));
    double hits =
        events.GetCounter("pcube_result_cache_hits_total")->Value() +
        events.GetCounter("pcube_result_cache_containment_total")->Value();
    double lookups =
        hits + events.GetCounter("pcube_result_cache_misses_total")->Value();
    registry->GetGauge("pcube_result_cache_hit_rate")
        ->Set(lookups > 0 ? hits / lookups : 0.0);
  }
}

}  // namespace pcube
