file(REMOVE_RECURSE
  "CMakeFiles/table_store_test.dir/table_store_test.cc.o"
  "CMakeFiles/table_store_test.dir/table_store_test.cc.o.d"
  "table_store_test"
  "table_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
