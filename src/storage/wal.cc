#include "storage/wal.h"

#include <cstring>

#include "common/bit_util.h"
#include "common/metrics.h"
#include "storage/checksum.h"

namespace pcube {

namespace {

constexpr uint32_t kWalMagic = 0x4C415750;  // "PWAL" little-endian
constexpr uint32_t kWalVersion = 1;
constexpr size_t kRecordHeaderBytes = 16;  // crc(4) + len(4) + lsn(8)

// Header page layout: u32 magic | u32 version | u64 start_lsn.
constexpr size_t kHeaderBytes = 16;

uint32_t RecordCrc(uint32_t len, uint64_t lsn, const uint8_t* payload) {
  uint8_t head[12];
  bit_util::StoreLE(head, len);
  bit_util::StoreLE(head + 4, lsn);
  // Chain the two CRCs by running the polynomial over a concatenation the
  // reader can rebuild without copying: crc(head || payload) computed in two
  // stages would need a streaming API; instead hash head and payload
  // separately and mix. Both words are CRC-32s of the actual bytes, so any
  // single-bit damage in either part changes the result.
  uint32_t a = Crc32(head, sizeof(head));
  uint32_t b = len == 0 ? 0 : Crc32(payload, len);
  return a ^ (b * 0x9E3779B9u + 0x7F4A7C15u);
}

void EncodeRecord(uint64_t lsn, const std::string& payload, std::string* out) {
  uint8_t head[kRecordHeaderBytes];
  uint32_t len = static_cast<uint32_t>(payload.size());
  bit_util::StoreLE(head, RecordCrc(len, lsn,
                                    reinterpret_cast<const uint8_t*>(
                                        payload.data())));
  bit_util::StoreLE(head + 4, len);
  bit_util::StoreLE(head + 8, lsn);
  out->append(reinterpret_cast<const char*>(head), sizeof(head));
  out->append(payload);
}

/// Reads the whole record region (pages 1..N) into one buffer.
Status ReadRegion(PageManager* pm, std::string* out) {
  out->clear();
  const uint64_t num_pages = pm->NumPages();
  Page page;
  for (PageId pid = 1; pid < num_pages; ++pid) {
    PCUBE_RETURN_NOT_OK(pm->Read(pid, &page));
    out->append(reinterpret_cast<const char*>(page.data()), kPageSize);
  }
  return Status::OK();
}

/// Shared scan: walks records in `region`, verifying CRCs and LSN order.
/// Returns the byte offset just past the last intact record via
/// `*valid_bytes`. `visit` may be null (Inspect).
Result<Wal::InspectReport> ScanRegion(
    const std::string& region, uint64_t start_lsn,
    const std::function<Status(const Wal::Record&)>& visit,
    uint64_t* valid_bytes) {
  Wal::InspectReport report;
  report.start_lsn = start_lsn;
  const uint8_t* base = reinterpret_cast<const uint8_t*>(region.data());
  uint64_t offset = 0;
  uint64_t expected = start_lsn;
  while (offset + kRecordHeaderBytes <= region.size()) {
    uint32_t crc = bit_util::LoadLE<uint32_t>(base + offset);
    uint32_t len = bit_util::LoadLE<uint32_t>(base + offset + 4);
    uint64_t lsn = bit_util::LoadLE<uint64_t>(base + offset + 8);
    if (crc == 0 && len == 0 && lsn == 0) break;  // clean end of log
    if (len > kMaxWalPayload ||
        offset + kRecordHeaderBytes + len > region.size()) {
      // The record claims bytes past the written region: the crash hit
      // before the leader finished it. Never acknowledged, safe to drop.
      report.torn_tail = true;
      break;
    }
    const uint8_t* payload = base + offset + kRecordHeaderBytes;
    if (RecordCrc(len, lsn, payload) != crc) {
      report.torn_tail = true;
      break;
    }
    if (lsn < expected) {
      // Stale residue from before the last checkpoint (crash between the
      // header rewrite and the tail reset). Everything it described is
      // already in the checkpointed page file — skip without applying.
      offset += kRecordHeaderBytes + len;
      continue;
    }
    if (lsn != expected) {
      report.errors.push_back("LSN gap: expected " + std::to_string(expected) +
                              ", found " + std::to_string(lsn));
      break;
    }
    if (visit != nullptr) {
      Wal::Record record;
      record.lsn = lsn;
      record.payload.assign(reinterpret_cast<const char*>(payload), len);
      PCUBE_RETURN_NOT_OK(visit(record));
    }
    ++report.num_records;
    report.last_lsn = lsn;
    offset += kRecordHeaderBytes + len;
    expected = lsn + 1;
  }
  if (valid_bytes != nullptr) *valid_bytes = offset;
  return report;
}

}  // namespace

Wal::Wal()
    : commits_metric_(
          MetricsRegistry::Default().GetCounter("pcube_wal_commits_total")),
      syncs_metric_(
          MetricsRegistry::Default().GetCounter("pcube_wal_syncs_total")),
      group_size_metric_(
          MetricsRegistry::Default().GetHistogram("pcube_wal_group_size")) {}

Result<std::unique_ptr<Wal>> Wal::Open(const Options& options) {
  std::unique_ptr<Wal> wal(new Wal());
  std::unique_ptr<PageManager> pm;
  if (options.path.empty()) {
    pm = std::make_unique<MemoryPageManager>();
    wal->file_backed_ = false;
  } else {
    auto fpm = FilePageManager::Open(options.path, options.truncate);
    if (!fpm.ok()) return fpm.status();
    pm = std::move(*fpm);
    wal->file_backed_ = true;
  }
  if (options.fault_plan.enabled()) {
    auto wrapped = std::make_unique<FaultInjectingPageManager>(
        std::move(pm), options.fault_plan);
    wal->faults_ = wrapped.get();
    wal->faults_->set_armed(false);  // callers arm once recovery is done
    pm = std::move(wrapped);
  }
  // Page checksums stay in memory: the per-record CRC is what survives a
  // restart, the page CRCs catch same-run rot on the rare WAL read.
  pm = std::make_unique<ChecksumPageManager>(std::move(pm));
  wal->pm_ = std::move(pm);

  MutexLock lock(&wal->mu_);
  if (wal->pm_->NumPages() == 0) {
    // Fresh log: header page + first record page.
    auto header = wal->pm_->Allocate();
    if (!header.ok()) return header.status();
    PCUBE_CHECK_EQ(*header, PageId{0});
    PCUBE_RETURN_NOT_OK(wal->WriteHeader());
  } else {
    Page page;
    PCUBE_RETURN_NOT_OK(wal->pm_->Read(0, &page));
    if (bit_util::LoadLE<uint32_t>(page.data()) != kWalMagic) {
      return Status::Corruption("WAL header magic mismatch");
    }
    if (bit_util::LoadLE<uint32_t>(page.data() + 4) != kWalVersion) {
      return Status::Corruption("WAL header version mismatch");
    }
    wal->start_lsn_ = bit_util::LoadLE<uint64_t>(page.data() + 8);
    if (wal->start_lsn_ == 0) {
      return Status::Corruption("WAL header start LSN is zero");
    }
    wal->next_lsn_ = wal->start_lsn_;
    wal->durable_lsn_ = wal->start_lsn_ - 1;
  }
  wal->tail_.Zero();
  return wal;
}

Result<Wal::InspectReport> Wal::Replay(
    const std::function<Status(const Record&)>& visit) {
  MutexLock lock(&mu_);
  std::string region;
  PCUBE_RETURN_NOT_OK(ReadRegion(pm_.get(), &region));
  uint64_t valid_bytes = 0;
  auto report = ScanRegion(region, start_lsn_, visit, &valid_bytes);
  if (!report.ok()) return report;
  if (!report->errors.empty()) {
    return Status::Corruption("WAL replay: " + report->errors.front());
  }
  next_lsn_ = std::max<uint64_t>(start_lsn_, report->last_lsn + 1);
  durable_lsn_ = next_lsn_ - 1;
  PCUBE_RETURN_NOT_OK(SeekTail(valid_bytes));
  if (report->torn_tail) {
    // Zero the discarded suffix in place so the next verify sees a clean
    // log; only the tail page can hold torn bytes we care about (later
    // pages are past the append cursor and unreachable by the scan).
    PCUBE_RETURN_NOT_OK(pm_->Write(tail_page_, tail_));
    PCUBE_RETURN_NOT_OK(pm_->Sync());
  }
  return report;
}

Result<Wal::InspectReport> Wal::Inspect(const std::string& path) {
  auto fpm = FilePageManager::Open(path, /*truncate=*/false);
  if (!fpm.ok()) return fpm.status();
  std::unique_ptr<PageManager> pm = std::move(*fpm);
  InspectReport report;
  if (pm->NumPages() == 0) return report;  // empty file: vacuously clean
  Page page;
  PCUBE_RETURN_NOT_OK(pm->Read(0, &page));
  if (bit_util::LoadLE<uint32_t>(page.data()) != kWalMagic) {
    report.errors.push_back("WAL header magic mismatch");
    return report;
  }
  if (bit_util::LoadLE<uint32_t>(page.data() + 4) != kWalVersion) {
    report.errors.push_back("WAL header version mismatch");
    return report;
  }
  uint64_t start_lsn = bit_util::LoadLE<uint64_t>(page.data() + 8);
  if (start_lsn == 0) {
    report.errors.push_back("WAL header start LSN is zero");
    return report;
  }
  std::string region;
  PCUBE_RETURN_NOT_OK(ReadRegion(pm.get(), &region));
  return ScanRegion(region, start_lsn, nullptr, nullptr);
}

Result<uint64_t> Wal::Stage(const std::string& payload) {
  if (payload.size() > kMaxWalPayload) {
    return Status::InvalidArgument("WAL record payload exceeds cap");
  }
  MutexLock lock(&mu_);
  if (!broken_.ok()) return broken_;
  uint64_t lsn = next_lsn_++;
  EncodeRecord(lsn, payload, &pending_);
  return lsn;
}

Status Wal::WaitDurable(uint64_t lsn, uint32_t* group_size) {
  MutexLock lock(&mu_);
  if (lsn >= next_lsn_) {
    // Committing an LSN that was never staged would loop forever: every
    // pass would lead an empty group and durable_lsn_ would never reach it.
    return Status::InvalidArgument("WaitDurable(" + std::to_string(lsn) +
                                   "): LSN has not been staged");
  }
  for (;;) {
    if (!broken_.ok()) return broken_;
    if (durable_lsn_ >= lsn) {
      if (group_size != nullptr) *group_size = last_group_size_;
      return Status::OK();
    }
    if (!leader_active_) break;
    cv_.Wait(&mu_);
  }
  // Leader: commit everything staged so far in one write + one Sync.
  leader_active_ = true;
  std::string batch = std::move(pending_);
  pending_.clear();
  const uint64_t batch_end = next_lsn_ - 1;
  const uint32_t group =
      static_cast<uint32_t>(batch_end - durable_lsn_);
  lock.Unlock();
  Status s = WriteAndSync(batch);
  lock.Lock();
  leader_active_ = false;
  if (s.ok()) {
    durable_lsn_ = batch_end;
    last_group_size_ = group;
    commits_metric_->Increment(group);
    syncs_metric_->Increment();
    syncs_.fetch_add(1, std::memory_order_relaxed);
    group_size_metric_->Observe(static_cast<double>(group));
    if (group_size != nullptr) *group_size = group;
  } else {
    // The staged bytes are gone and the on-disk suffix is undefined: no
    // later commit can be trusted to be gap-free. Poison the log.
    broken_ = s;
  }
  cv_.SignalAll();
  return s;
}

Status Wal::WriteAndSync(const std::string& bytes) {
  // Only the leader runs here (leader_active_ serializes), so the tail
  // cursor is safe to touch without mu_.
  mu_.Lock();
  PageId page = tail_page_;
  size_t offset = tail_offset_;
  Page tail = tail_;
  mu_.Unlock();

  size_t done = 0;
  while (done < bytes.size()) {
    while (page >= pm_->NumPages()) {
      auto pid = pm_->Allocate();
      if (!pid.ok()) return pid.status();
    }
    size_t n = std::min(bytes.size() - done, kPageSize - offset);
    std::memcpy(tail.data() + offset, bytes.data() + done, n);
    done += n;
    offset += n;
    PCUBE_RETURN_NOT_OK(pm_->Write(page, tail));
    if (offset == kPageSize) {
      ++page;
      offset = 0;
      tail.Zero();
    }
  }
  PCUBE_RETURN_NOT_OK(pm_->Sync());

  MutexLock lock(&mu_);
  tail_page_ = page;
  tail_offset_ = offset;
  tail_ = tail;
  return Status::OK();
}

Status Wal::WriteHeader() {
  mu_.AssertHeld();
  Page page;
  page.Zero();
  bit_util::StoreLE(page.data(), kWalMagic);
  bit_util::StoreLE(page.data() + 4, kWalVersion);
  bit_util::StoreLE(page.data() + 8, start_lsn_);
  static_assert(kHeaderBytes <= kPageSize);
  PCUBE_RETURN_NOT_OK(pm_->Write(0, page));
  return pm_->Sync();
}

Status Wal::SeekTail(uint64_t region_bytes) {
  mu_.AssertHeld();
  tail_page_ = 1 + region_bytes / kPageSize;
  tail_offset_ = region_bytes % kPageSize;
  tail_.Zero();
  if (tail_offset_ > 0) {
    Page page;
    PCUBE_RETURN_NOT_OK(pm_->Read(tail_page_, &page));
    std::memcpy(tail_.data(), page.data(), tail_offset_);
  }
  return Status::OK();
}

Status Wal::Checkpoint() {
  MutexLock lock(&mu_);
  if (!broken_.ok()) return broken_;
  if (!pending_.empty() || leader_active_ || durable_lsn_ != next_lsn_ - 1) {
    return Status::InvalidArgument(
        "WAL checkpoint with in-flight commits; drain writers first");
  }
  start_lsn_ = next_lsn_;
  // Header first: once start_lsn is ahead of every logged record, a crash
  // before the tail reset leaves only stale LSNs, which replay skips.
  PCUBE_RETURN_NOT_OK(WriteHeader());
  Page zero;
  zero.Zero();
  // Zero the whole record region, not just page 1: appends restart at the
  // front, and a later scan must never walk into pre-checkpoint residue.
  const uint64_t num_pages = pm_->NumPages();
  for (PageId pid = 1; pid < num_pages; ++pid) {
    PCUBE_RETURN_NOT_OK(pm_->Write(pid, zero));
  }
  if (num_pages > 1) PCUBE_RETURN_NOT_OK(pm_->Sync());
  tail_page_ = 1;
  tail_offset_ = 0;
  tail_.Zero();
  return Status::OK();
}

uint64_t Wal::next_lsn() const {
  MutexLock lock(&mu_);
  return next_lsn_;
}

uint64_t Wal::durable_lsn() const {
  MutexLock lock(&mu_);
  return durable_lsn_;
}

uint64_t Wal::sync_count() const {
  return syncs_.load(std::memory_order_relaxed);
}

}  // namespace pcube
