// Dynamic fixed-length bit vector. This is the in-memory form of one
// signature node's bit array (one bit per R-tree child slot); the codecs in
// bitmap/codec.h compress it for storage inside partial signatures.
//
// Storage is 32-byte aligned (common/simd/aligned.h) and the bulk algebra
// (And/Or/AndNot/Count) dispatches to the kernel layer of DESIGN.md §12, so
// every vector — fragment nodes, cache blocks, codec scratch — is a legal
// SIMD operand without copies.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"
#include "common/simd/aligned.h"

namespace pcube {

/// Fixed-length sequence of bits with bulk boolean algebra.
class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector of `num_bits` bits.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_(bit_util::Words64(num_bits), 0) {}

  /// Vector initialised from a packed word array (e.g. one node's slice of
  /// a FragmentCache block). `words` must hold exactly Words64(num_bits)
  /// words with the pad bits of the last word zero.
  BitVector(size_t num_bits, std::span<const uint64_t> words)
      : num_bits_(num_bits), words_(words.begin(), words.end()) {
    PCUBE_DCHECK_EQ(words_.size(), bit_util::Words64(num_bits));
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Get(size_t i) const {
    PCUBE_DCHECK_LT(i, num_bits_);
    return bit_util::GetBit(words_.data(), i);
  }

  void Set(size_t i) {
    PCUBE_DCHECK_LT(i, num_bits_);
    bit_util::SetBit(words_.data(), i);
  }

  void Clear(size_t i) {
    PCUBE_DCHECK_LT(i, num_bits_);
    bit_util::ClearBit(words_.data(), i);
  }

  void Assign(size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Number of set bits (hardware popcount via the kernel layer).
  size_t Count() const;

  bool AnySet() const;

  /// Index of the first set bit at or after `from`, or size() if none.
  size_t FindNextSet(size_t from) const;

  /// In-place bitwise algebra with an equally sized vector. InplaceAnd
  /// returns whether any bit survives (fused with the AND — signature
  /// intersection's liveness check costs no second pass).
  bool InplaceAnd(const BitVector& other);
  void InplaceOr(const BitVector& other);
  /// this &= ~other.
  void InplaceAndNot(const BitVector& other);

  /// |this & other| without materialising the intersection.
  size_t AndCount(const BitVector& other) const;

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  const simd::AlignedVector<uint64_t>& words() const { return words_; }

  /// Mutable backing words, for codec fast paths that assemble the vector
  /// word-at-a-time. Callers must keep the pad bits of the last word zero.
  uint64_t* mutable_words() { return words_.data(); }

  /// Positions of all set bits, ascending.
  std::vector<uint32_t> SetPositions() const;

  /// e.g. "10110" (bit 0 first), for tests and debugging.
  std::string ToString() const;

 private:
  size_t num_bits_ = 0;
  simd::AlignedVector<uint64_t> words_;
};

}  // namespace pcube
