// Baseline tests: Boolean-first, Domination-first and Index-merge must all
// return the reference answers, and the Lemma 1 proxy must hold — the
// signature method never reads more R-tree blocks than Domination-first.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

class BaselinesTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Workbench> MakeWorkbench(uint64_t seed,
                                           PrefDistribution dist) {
    SyntheticConfig config;
    config.num_tuples = 4000;
    config.num_bool = 3;
    config.num_pref = 2;
    config.bool_cardinality = 5;
    config.dist = dist;
    config.seed = seed;
    WorkbenchOptions options;
    options.rtree.max_entries = 12;
    auto wb = Workbench::Build(GenerateSynthetic(config), options);
    PCUBE_CHECK(wb.ok());
    return std::move(*wb);
  }
};

TEST_P(BaselinesTest, BooleanFirstSkylineMatchesNaive) {
  auto wb = MakeWorkbench(500 + GetParam(), PrefDistribution::kUniform);
  BooleanFirstExecutor boolean(&wb->indices(), wb->table());
  Random rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    PredicateSet preds;
    for (int d = 0; d < trial % 3; ++d) {
      preds.Add({d, static_cast<uint32_t>(rng.Uniform(5))});
    }
    auto out = boolean.Skyline(preds);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->tids, NaiveSkyline(wb->data(), preds)) << preds.ToString();
  }
}

TEST_P(BaselinesTest, BooleanFirstTopKMatchesNaive) {
  auto wb = MakeWorkbench(520 + GetParam(), PrefDistribution::kUniform);
  BooleanFirstExecutor boolean(&wb->indices(), wb->table());
  LinearRanking f({0.3, 0.7});
  PredicateSet preds{{0, 2}};
  auto out = boolean.TopK(preds, f, 25);
  ASSERT_TRUE(out.ok());
  auto naive = NaiveTopK(wb->data(), preds, f, 25);
  ASSERT_EQ(out->scores.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(out->scores[i], naive[i].second, 1e-9);
  }
}

TEST_P(BaselinesTest, DominationFirstSkylineMatchesNaive) {
  auto wb = MakeWorkbench(540 + GetParam(), PrefDistribution::kAntiCorrelated);
  Random rng(30 + GetParam());
  for (int npreds : {0, 1, 2}) {
    PredicateSet preds;
    for (int d = 0; d < npreds; ++d) {
      preds.Add({d, static_cast<uint32_t>(rng.Uniform(5))});
    }
    auto out = DominationFirstSkyline(*wb->tree(), *wb->table(), preds);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(SkylineTids(*out), NaiveSkyline(wb->data(), preds))
        << preds.ToString();
  }
}

TEST_P(BaselinesTest, RankingFirstTopKMatchesNaive) {
  auto wb = MakeWorkbench(560 + GetParam(), PrefDistribution::kUniform);
  LinearRanking f({0.6, 0.4});
  PredicateSet preds{{1, 1}};
  auto out = RankingFirstTopK(*wb->tree(), *wb->table(), preds, f, 30);
  ASSERT_TRUE(out.ok());
  auto naive = NaiveTopK(wb->data(), preds, f, 30);
  ASSERT_EQ(out->results.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(out->results[i].key, naive[i].second, 1e-9);
  }
  EXPECT_GT(out->counters.verified, 0u);
}

TEST_P(BaselinesTest, IndexMergeTopKMatchesNaive) {
  auto wb = MakeWorkbench(580 + GetParam(), PrefDistribution::kUniform);
  LinearRanking f({0.5, 0.5});
  Random rng(60 + GetParam());
  for (int npreds : {1, 2, 3}) {
    PredicateSet preds;
    for (int d = 0; d < npreds; ++d) {
      preds.Add({d, static_cast<uint32_t>(rng.Uniform(5))});
    }
    auto out = IndexMergeTopK(*wb->tree(), wb->indices(), preds, f, 20);
    ASSERT_TRUE(out.ok());
    auto naive = NaiveTopK(wb->data(), preds, f, 20);
    ASSERT_EQ(out->results.size(), naive.size()) << preds.ToString();
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(out->results[i].key, naive[i].second, 1e-9);
    }
  }
}

TEST_P(BaselinesTest, Lemma1ProxySignatureReadsNoMoreBlocks) {
  auto wb = MakeWorkbench(600 + GetParam(), PrefDistribution::kUniform);
  Random rng(90 + GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    PredicateSet preds{{0, static_cast<uint32_t>(rng.Uniform(5))}};
    auto sig = wb->SignatureSkyline(preds);
    ASSERT_TRUE(sig.ok());
    auto dom = DominationFirstSkyline(*wb->tree(), *wb->table(), preds);
    ASSERT_TRUE(dom.ok());
    EXPECT_EQ(SkylineTids(*sig), SkylineTids(*dom));
    // Lemma 1: signature pruning is a strict superset of domination pruning.
    EXPECT_LE(sig->counters.nodes_expanded, dom->counters.nodes_expanded);
    // And the signature method performs no random boolean verifications.
    EXPECT_EQ(sig->counters.verified, 0u);
    EXPECT_GT(dom->counters.verified, 0u);
  }
}

TEST_P(BaselinesTest, BloomProbeWithVerificationMatchesNaive) {
  // §VII lossy variant: bloom probe + tuple verification = exact answers.
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 4;
  config.seed = 620 + GetParam();
  WorkbenchOptions options;
  options.rtree.max_entries = 10;
  options.pcube.build_bloom = true;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  PredicateSet preds{{0, 1}};
  auto probe = w.cube()->MakeBloomProbe(preds);
  ASSERT_TRUE(probe.ok());
  TupleVerifier verifier(w.table(), preds);
  SkylineEngine engine(w.tree(), probe->get(), &verifier);
  auto out = engine.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(SkylineTids(*out), NaiveSkyline(w.data(), preds));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselinesTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace pcube
