// The `pcube serve` network server (DESIGN.md §14, ROADMAP item 1): a TCP
// front door over any QueryService — a single Workbench or the sharded
// scatter-gather coordinator — speaking the framed binary protocol of
// protocol.h. One accept thread, one thread per connection (bounded by
// max_connections), and a shared worker ThreadPool that actually executes
// queries via QueryService::RunShared. Every request passes through the
// AdmissionController before it may queue; overload is answered with an
// early kError(ResourceExhausted) frame instead of unbounded queueing.
//
// Per-request lifecycle and its trace spans:
//   accept     — blocking read of the query frame off the socket
//   parse      — defensive decode (protocol.h caps; damage never crashes)
//   queue_wait — admission to worker pickup (charged against the deadline)
//   execute    — QueryService::RunShared with the SHRUNK remaining budget
//   respond    — result header + chunk stream + done back onto the socket
// The spans are recorded into the response's Trace, so the JSONL query log
// (which gains a `tenant:` field) shows where server time went per query.
//
// Error handling at the connection level: header-level damage (bad magic /
// version / oversized frame) desynchronizes the byte stream — the server
// sends one kError frame best-effort and closes. Payload-level damage in a
// well-framed query gets a kError answer and the connection KEEPS serving:
// one malformed query must not tear down a client's session.
//
// The listener binds 127.0.0.1 only: the protocol carries no
// authentication, so the server deliberately refuses non-local peers.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "server/admission.h"
#include "workbench/query_service.h"

namespace pcube {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back with
  /// port() after Start — the tests and benchmarks do this).
  uint16_t port = 0;
  /// Query-executor threads; 0 = hardware_concurrency.
  size_t workers = 0;
  /// Concurrent connections; the acceptor answers the excess with a
  /// kError(ResourceExhausted) frame and closes.
  size_t max_connections = 64;
  /// Admission gates (AdmissionOptions::workers is overwritten with the
  /// resolved worker count so the projected-wait model matches reality).
  AdmissionOptions admission;
};

/// TCP server over a QueryService. Not copyable/movable; Stop() (or the
/// destructor) joins every thread before returning.
class PCubeServer {
 public:
  /// `service` and `query_log` (optional) must outlive the server.
  PCubeServer(QueryService* service, ServerOptions options,
              QueryLog* query_log = nullptr);
  ~PCubeServer();
  PCubeServer(const PCubeServer&) = delete;
  PCubeServer& operator=(const PCubeServer&) = delete;

  /// Binds, listens and spawns the accept thread. InvalidArgument /
  /// IoError on socket failures (port in use, ...).
  Status Start();

  /// Idempotent shutdown: stops accepting, shuts down every live
  /// connection socket (unblocking their reads), waits for in-flight
  /// queries to finish and joins all threads.
  void Stop();

  /// The bound port (resolves option port 0 to the kernel's choice).
  uint16_t port() const { return port_; }

  const AdmissionController& admission() const { return admission_; }

  /// Requests fully answered (result stream completed) since Start.
  uint64_t requests_served() const;

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Parses + admits + executes + responds to one query frame
  /// (`accept_seconds` = time spent reading it off the socket, recorded as
  /// the `accept` span). Returns false when the connection must close
  /// (socket error); protocol-level failures answer with a kError frame
  /// and return true.
  bool HandleQuery(int fd, const std::string& payload, double accept_seconds);
  /// Parses + applies one kWrite frame and answers with a kWriteAck. Write
  /// frames run on the CONNECTION thread, not the worker pool: Apply blocks
  /// on its own group commit (an fsync wait), and parking that wait on a
  /// query worker would let a slow disk starve read traffic. Concurrent
  /// writers on separate connections still form commit groups inside the
  /// WAL. Same return contract as HandleQuery.
  bool HandleWrite(int fd, const std::string& payload);

  QueryService* const service_;
  const ServerOptions options_;
  QueryLog* const query_log_;
  // pcube-lint: begin-lock-free(fixed by the constructor and Start() before
  // the accept thread or any connection thread exists; admission_ and the
  // metric objects are internally synchronized, the rest are read-only once
  // the server is running)
  AdmissionController admission_;
  std::unique_ptr<ThreadPool> pool_;
  Counter* requests_total_;
  Counter* responses_total_;
  Counter* write_frames_total_;
  Counter* write_acks_total_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  // pcube-lint: end-lock-free

  // Connection threads detach themselves; Stop() waits for active_conns_
  // to reach zero (signalled under mu_, so the CondVar cannot outlive a
  // waiter mid-notify) after shutting down every fd in open_fds_.
  mutable Mutex mu_;
  CondVar conns_done_;
  std::vector<int> open_fds_ GUARDED_BY(mu_);
  size_t active_conns_ GUARDED_BY(mu_) = 0;
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace pcube
