// Edge-case and failure-injection tests across the stack: degenerate
// datasets, duplicate points, extreme parameters, tiny buffer pools, and
// store compaction under churn.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/signature_store.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

Dataset TinyDataset(std::vector<std::pair<uint32_t, std::vector<float>>> rows,
                    uint32_t card, int dp) {
  Schema schema;
  schema.num_bool = 1;
  schema.num_pref = dp;
  schema.bool_cardinality = {card};
  Dataset data(schema, 0);
  for (auto& [b, p] : rows) {
    data.Append(std::vector<uint32_t>{b}, p);
  }
  return data;
}

TEST(EdgeCaseTest, SingleTupleDataset) {
  Dataset data = TinyDataset({{0, {0.5f, 0.5f}}}, 2, 2);
  auto wb = Workbench::Build(std::move(data), WorkbenchOptions{});
  ASSERT_TRUE(wb.ok());
  auto sky = (*wb)->SignatureSkyline({{0, 0}});
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), (std::vector<TupleId>{0}));
  auto none = (*wb)->SignatureSkyline({{0, 1}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->skyline.empty());
  LinearRanking f({1.0, 1.0});
  auto topk = (*wb)->SignatureTopK({{0, 0}}, f, 10);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->results.size(), 1u);
}

TEST(EdgeCaseTest, AllIdenticalPoints) {
  std::vector<std::pair<uint32_t, std::vector<float>>> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({static_cast<uint32_t>(i % 2), {0.3f, 0.3f}});
  }
  Dataset data = TinyDataset(std::move(rows), 2, 2);
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  auto wb = Workbench::Build(std::move(data), options);
  ASSERT_TRUE(wb.ok());
  // No point dominates an identical point: everything is in the skyline.
  auto sky = (*wb)->SignatureSkyline({{0, 0}});
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(sky->skyline.size(), 100u);
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), {{0, 0}}));
}

TEST(EdgeCaseTest, DuplicatePointsTopK) {
  std::vector<std::pair<uint32_t, std::vector<float>>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({0, {0.1f, 0.1f}});
  for (int i = 0; i < 50; ++i) rows.push_back({0, {0.9f, 0.9f}});
  Dataset data = TinyDataset(std::move(rows), 1, 2);
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  auto wb = Workbench::Build(std::move(data), options);
  ASSERT_TRUE(wb.ok());
  LinearRanking f({0.5, 0.5});
  auto topk = (*wb)->SignatureTopK({}, f, 60);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->results.size(), 60u);
  for (int i = 0; i < 50; ++i) EXPECT_NEAR(topk->results[i].key, 0.1, 1e-6);
  for (int i = 50; i < 60; ++i) EXPECT_NEAR(topk->results[i].key, 0.9, 1e-6);
}

TEST(EdgeCaseTest, KLargerThanMatches) {
  SyntheticConfig config;
  config.num_tuples = 500;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 100;
  config.seed = 99;
  auto wb = Workbench::Build(GenerateSynthetic(config), WorkbenchOptions{});
  ASSERT_TRUE(wb.ok());
  LinearRanking f({1.0, 1.0});
  PredicateSet preds{{0, 5}};
  auto naive = NaiveTopK((*wb)->data(), preds, f, 1000);
  auto topk = (*wb)->SignatureTopK(preds, f, 1000);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->results.size(), naive.size());  // fewer than k matches
}

TEST(EdgeCaseTest, ZeroKTopK) {
  Dataset data = TinyDataset({{0, {0.5f, 0.5f}}}, 1, 2);
  auto wb = Workbench::Build(std::move(data), WorkbenchOptions{});
  ASSERT_TRUE(wb.ok());
  LinearRanking f({1.0, 1.0});
  auto topk = (*wb)->SignatureTopK({}, f, 0);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->results.empty());
}

TEST(EdgeCaseTest, OneDimensionalPreferenceSpace) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_bool = 2;
  config.num_pref = 1;
  config.bool_cardinality = 4;
  config.seed = 17;
  WorkbenchOptions options;
  options.rtree.max_entries = 16;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  // 1-d skyline = the minimum (plus exact ties).
  PredicateSet preds{{0, 2}};
  auto sky = (*wb)->SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), preds));
}

TEST(EdgeCaseTest, HighDimensionalPreferenceSpace) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_bool = 1;
  config.num_pref = 6;
  config.bool_cardinality = 3;
  config.seed = 18;
  WorkbenchOptions options;
  options.rtree.max_entries = 12;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  PredicateSet preds{{0, 1}};
  auto sky = (*wb)->SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), preds));
}

TEST(EdgeCaseTest, QueriesSurviveTinyBufferPool) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 4;
  config.seed = 19;
  WorkbenchOptions options;
  options.pool_pages = 4;  // brutal thrashing
  options.rtree.max_entries = 10;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  PredicateSet preds{{0, 1}};
  auto sky = (*wb)->SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), preds));
}

TEST(EdgeCaseTest, StoreCompactionUnderChurn) {
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 4096, &stats);
  auto store = SignatureStore::Create(&pool);
  ASSERT_TRUE(store.ok());
  Random rng(21);
  // Churn: grow and shrink many cell signatures repeatedly so in-place
  // rewrites leak slot space.
  std::vector<Signature> current;
  for (int round = 0; round < 6; ++round) {
    current.clear();
    for (uint64_t cell = 0; cell < 40; ++cell) {
      int paths = 5 + static_cast<int>(rng.Uniform(400));
      Signature sig(12, 3);
      for (int i = 0; i < paths; ++i) {
        Path p(3);
        for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(12));
        sig.SetPath(p);
      }
      ASSERT_TRUE(store->Put(100 + cell, sig).ok());
      current.push_back(sig.Clone());
    }
  }
  uint64_t pages_before = store->num_pages();
  size_t free_before = pm.num_free();
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->num_pages(), pages_before);
  EXPECT_GT(pm.num_free(), free_before);
  // Content unchanged after compaction.
  for (uint64_t cell = 0; cell < 40; ++cell) {
    auto loaded = store->LoadFull(100 + cell, 12, 3);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded->Equals(current[cell])) << "cell " << cell;
  }
  // New allocations reuse freed pages: total page count stops growing.
  uint64_t pm_pages = pm.NumPages();
  Signature extra(12, 3);
  extra.SetPath({1, 1, 1});
  ASSERT_TRUE(store->Put(999, extra).ok());
  EXPECT_EQ(pm.NumPages(), pm_pages);
}

TEST(EdgeCaseTest, EmptyPredicateSkylineEqualsGlobalSkyline) {
  SyntheticConfig config;
  config.num_tuples = 2000;
  config.num_bool = 1;
  config.num_pref = 3;
  config.bool_cardinality = 5;
  config.seed = 23;
  auto wb = Workbench::Build(GenerateSynthetic(config), WorkbenchOptions{});
  ASSERT_TRUE(wb.ok());
  auto sky = (*wb)->SignatureSkyline({});
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), {}));
}

}  // namespace
}  // namespace pcube
