#include "workbench/planner.h"

#include <algorithm>
#include <cmath>

namespace pcube {

Result<PlanEstimate> QueryPlanner::Estimate(const PredicateSet& preds) const {
  PlanEstimate est;
  const uint64_t total = wb_->data().num_tuples();

  // Exact per-predicate counts from the boolean indices (an index-only
  // scan; cheap relative to either plan).
  uint64_t min_count = total;
  double combined_selectivity = 1.0;
  for (const Predicate& p : preds.predicates()) {
    auto count = wb_->indices()[p.dim].Count(p.value);
    if (!count.ok()) return count.status();
    min_count = std::min(min_count, *count);
    combined_selectivity *=
        total == 0 ? 0.0 : static_cast<double>(*count) / total;
  }
  est.matching_tuples = preds.empty()
                            ? total
                            : static_cast<uint64_t>(combined_selectivity *
                                                    static_cast<double>(total));

  // Boolean-first: fetch the most selective predicate's postings (one
  // random page per tuple) or scan the table, whichever is cheaper — the
  // same rule BooleanFirstExecutor applies.
  uint64_t scan_pages = wb_->table()->num_pages();
  est.boolean_pages = preds.empty() ? scan_pages : std::min(min_count, scan_pages);

  // Signature plan: the branch-and-bound visits the root path plus the
  // leaf-region around the selected subset's skyline. Model: the traversal
  // touches the fraction of R-tree pages holding matching tuples, discounted
  // by preference pruning (empirically ~2/3 of the subset's pages are
  // pruned), plus one signature page and its directory lookup per predicate.
  double match_fraction =
      preds.empty() ? 1.0
                    : std::max(combined_selectivity,
                               1.0 / static_cast<double>(std::max<uint64_t>(
                                         1, wb_->tree()->num_pages())));
  constexpr double kPreferencePruning = 1.0 / 3.0;
  est.signature_pages =
      static_cast<uint64_t>(wb_->tree()->height() + 1 +
                            match_fraction * kPreferencePruning *
                                static_cast<double>(wb_->tree()->num_pages())) +
      2 * preds.size();

  est.choice = est.signature_pages <= est.boolean_pages
                   ? PlanChoice::kSignature
                   : PlanChoice::kBooleanFirst;
  return est;
}

Result<PlannedSkyline> QueryPlanner::Skyline(const PredicateSet& preds) {
  auto est = Estimate(preds);
  if (!est.ok()) return est.status();
  PlannedSkyline out;
  out.estimate = *est;
  PCUBE_RETURN_NOT_OK(wb_->ColdStart());
  if (est->choice == PlanChoice::kSignature) {
    auto run = wb_->SignatureSkyline(preds);
    if (!run.ok()) return run.status();
    for (const SearchEntry& e : run->skyline) out.tids.push_back(e.id);
  } else {
    BooleanFirstExecutor boolean(&wb_->indices(), wb_->table());
    auto run = boolean.Skyline(preds);
    if (!run.ok()) return run.status();
    out.tids = run->tids;
  }
  std::sort(out.tids.begin(), out.tids.end());
  out.executed_io = wb_->IoSince();
  return out;
}

Result<PlannedTopK> QueryPlanner::TopK(const PredicateSet& preds,
                                       const RankingFunction& f, size_t k) {
  auto est = Estimate(preds);
  if (!est.ok()) return est.status();
  PlannedTopK out;
  out.estimate = *est;
  PCUBE_RETURN_NOT_OK(wb_->ColdStart());
  if (est->choice == PlanChoice::kSignature) {
    auto run = wb_->SignatureTopK(preds, f, k);
    if (!run.ok()) return run.status();
    for (const SearchEntry& e : run->results) {
      out.results.emplace_back(e.id, e.key);
    }
  } else {
    BooleanFirstExecutor boolean(&wb_->indices(), wb_->table());
    auto run = boolean.TopK(preds, f, k);
    if (!run.ok()) return run.status();
    for (size_t i = 0; i < run->tids.size(); ++i) {
      out.results.emplace_back(run->tids[i], run->scores[i]);
    }
  }
  out.executed_io = wb_->IoSince();
  return out;
}

}  // namespace pcube
