// Fixed-size worker pool for inter-query parallelism. The P-Cube query
// structures are read-only once built (see DESIGN.md "Concurrency model"),
// so throughput scaling comes from running many independent queries at once
// over the shared index; this pool is the execution substrate the
// BatchExecutor fans queries out on.
//
// Thread-safety: Submit/Wait may be called from any thread. Tasks must not
// Submit to the pool they run on and then block on the returned future from
// within Wait-ing code (classic pool deadlock); the BatchExecutor only
// submits from the driver thread.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"

namespace pcube {

/// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Graceful shutdown: drains every task already queued, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// the task are captured into the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    NoteEnqueued();
    wake_.Signal();
    return future;
  }

  /// Blocks until the queue is empty and every worker is idle.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks submitted but not yet picked up by a worker — the backlog the
  /// admission controller's backpressure watches. Momentary view (relaxed
  /// atomic), exact once submitters quiesce.
  size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  /// High-water mark of queue_depth() over this pool's lifetime.
  size_t queue_peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// Depth accounting + the `pcube_threadpool_queue_depth` gauge and
  /// `pcube_threadpool_queue_depth_peak` max-gauge in the default registry
  /// (shared by every pool: depth is last-writer-wins, peak is the max over
  /// all pools since the last ResetAll).
  void NoteEnqueued();
  void NoteDequeued();

  Mutex mu_;
  CondVar wake_;  // workers: queue non-empty or stopping
  CondVar idle_;  // Wait(): queue drained and all idle
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<size_t> depth_{0};  // queued, not yet executing
  std::atomic<size_t> peak_{0};   // lifetime max of depth_
  // pcube-lint: lock-free(populated in the constructor and joined in the
  // destructor; no other thread ever touches the handle vector)
  std::vector<std::thread> workers_;
};

}  // namespace pcube
