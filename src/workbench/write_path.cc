#include "workbench/write_path.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "common/bit_util.h"
#include "workbench/workbench.h"

namespace pcube {

Status WriteApplier::Apply(const WriteBatch& batch, bool replay) {
  Dataset& data = *wb_->mutable_data();
  const TupleId first_new_tid = data.num_tuples();

  // Screen every delete BEFORE any structure mutation. Workbench::Apply
  // already rejected logically invalid deletes at stage time, so finding
  // one here means the record predates that validation or raced a
  // checkpoint: under replay such entries are skipped — recovery must never
  // refuse to open over a delete the original run already refused — and
  // outside replay the whole batch is rejected with nothing applied
  // (WriteBatch's all-or-nothing contract for malformed batches).
  std::vector<TupleId> deletes;
  deletes.reserve(batch.deletes.size());
  {
    const TupleId tid_limit =
        first_new_tid + static_cast<TupleId>(batch.inserts.size());
    std::unordered_set<TupleId> in_batch;
    for (const TupleId tid : batch.deletes) {
      if (tid >= tid_limit) {
        if (replay) continue;
        return Status::InvalidArgument("delete of unknown tuple " +
                                       std::to_string(tid));
      }
      if (wb_->tombstones_.count(tid) > 0 || !in_batch.insert(tid).second) {
        if (replay) continue;  // crash between Save() and the WAL checkpoint
        return Status::NotFound("tuple " + std::to_string(tid) +
                                " is already deleted");
      }
      deletes.push_back(tid);
    }
  }

  PathChangeSet changes;
  // Collect the first failure instead of returning at once: whatever tree
  // changes DID land before the failure must still flow into the cube
  // maintenance below, or the signatures would disagree with the tree and
  // the engines could prune live results.
  Status first_error;

  for (const WriteBatch::Row& row : batch.inserts) {
    TupleId tid = data.Append(row.bools, row.prefs);
    if (wb_->table_ != nullptr) {
      auto appended = wb_->table_->Append(row.bools, row.prefs);
      if (!appended.ok()) {
        first_error = appended.status();
        break;
      }
      PCUBE_CHECK_EQ(*appended, tid);
    }
    for (size_t d = 0; d < wb_->indices_.size() && first_error.ok(); ++d) {
      first_error = wb_->indices_[d].Add(row.bools[d], tid);
    }
    if (!first_error.ok()) break;
    first_error = wb_->tree_->Insert(data.PrefPoint(tid), tid, &changes);
    if (!first_error.ok()) break;
  }

  for (size_t i = 0; first_error.ok() && i < deletes.size(); ++i) {
    const TupleId tid = deletes[i];
    Status removed = wb_->tree_->Delete(data.PrefPoint(tid), tid, &changes);
    if (!removed.ok()) {
      if (replay && removed.code() == StatusCode::kNotFound) continue;
      first_error = removed;
      break;
    }
    wb_->tombstones_.insert(tid);
  }

  Status maintained;
  if (wb_->cube_ != nullptr) {
    maintained = wb_->cube_->ApplyChanges(data, changes);
    if (maintained.code() == StatusCode::kNotSupported) {
      // Root split: every path changed, re-derive all signatures.
      maintained = wb_->cube_->Rebuild(data, *wb_->tree_);
    }
  } else {
    // No cube: the epoch bump ApplyChanges would have issued happens here
    // so the L1 cache still invalidates exactly.
    std::vector<CellId> cells;
    auto collect = [&](TupleId tid) {
      for (int d = 0; d < data.num_bool(); ++d) {
        cells.push_back(AtomicCellId(d, data.BoolValue(tid, d)));
      }
    };
    for (TupleId tid = first_new_tid; tid < data.num_tuples(); ++tid) {
      collect(tid);
    }
    for (TupleId tid : deletes) collect(tid);
    wb_->epoch_.BumpCells(cells);
  }
  return first_error.ok() ? maintained : first_error;
}

Status WriteApplier::RebuildCube() {
  if (wb_->cube_ == nullptr) {
    return Status::InvalidArgument("instance was built without a cube");
  }
  return wb_->cube_->Rebuild(*wb_->mutable_data(), *wb_->tree_);
}

Result<std::string> EncodeWalPayload(uint64_t base_rows,
                                     const WriteBatch& batch) {
  auto encoded = EncodeWriteBatch(batch);
  if (!encoded.ok()) return encoded.status();
  std::string payload;
  payload.reserve(8 + encoded->size());
  uint8_t buf[8];
  bit_util::StoreLE(buf, base_rows);
  payload.append(reinterpret_cast<const char*>(buf), sizeof(buf));
  payload.append(*encoded);
  return payload;
}

Status DecodeWalPayload(const std::string& payload, uint64_t* base_rows,
                        WriteBatch* batch) {
  if (payload.size() < 8) {
    return Status::Corruption("WAL payload shorter than its row cursor");
  }
  *base_rows =
      bit_util::LoadLE<uint64_t>(reinterpret_cast<const uint8_t*>(payload.data()));
  return DecodeWriteBatch(
      reinterpret_cast<const uint8_t*>(payload.data()) + 8, payload.size() - 8,
      batch);
}

}  // namespace pcube
