// Figure 5: construction time w.r.t. T for the R-tree partition (shared by
// Signature and Domination), the P-Cube signatures, and the boolean B+-tree
// indices (used by Boolean-first).
//
// Paper's claim to reproduce: computing the P-Cube is 7-8x faster than
// building the R-tree and comparable to building the B+-trees.
#include "bench_common.h"

namespace pcube::bench {
namespace {

void BM_BuildRTree(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Dataset data = GenerateSynthetic(PaperConfig(n));
  for (auto _ : state) {
    MemoryPageManager pm;
    IoStats stats;
    BufferPool pool(&pm, size_t{1} << 16, &stats);
    RTreeOptions options;
    options.dims = data.num_pref();
    Timer t;
    auto tree = RStarTree::BuildByInsertion(&pool, data, options);
    PCUBE_CHECK(tree.ok());
    state.SetIterationTime(t.ElapsedSeconds());
    state.counters["pages"] = static_cast<double>(tree->num_pages());
  }
}

void BM_BuildPCube(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Dataset data = GenerateSynthetic(PaperConfig(n));
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, size_t{1} << 16, &stats);
  RTreeOptions options;
  options.dims = data.num_pref();
  auto tree = RStarTree::BulkLoad(&pool, data, options);
  PCUBE_CHECK(tree.ok());
  for (auto _ : state) {
    Timer t;
    auto cube = PCube::Build(&pool, data, *tree, PCubeOptions{});
    PCUBE_CHECK(cube.ok());
    state.SetIterationTime(t.ElapsedSeconds());
    state.counters["pages"] = static_cast<double>(cube->MaterializedPages());
    state.counters["cells"] = static_cast<double>(cube->num_cells());
  }
}

void BM_BuildBTrees(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Dataset data = GenerateSynthetic(PaperConfig(n));
  for (auto _ : state) {
    MemoryPageManager pm;
    IoStats stats;
    BufferPool pool(&pm, size_t{1} << 16, &stats);
    Timer t;
    uint64_t pages = 0;
    for (int d = 0; d < data.num_bool(); ++d) {
      auto index = BooleanIndex::Build(&pool, data, d);
      PCUBE_CHECK(index.ok());
      pages += index->num_pages();
    }
    state.SetIterationTime(t.ElapsedSeconds());
    state.counters["pages"] = static_cast<double>(pages);
  }
}

void RegisterAll() {
  for (uint64_t n : TupleSweep()) {
    benchmark::RegisterBenchmark("fig5/BuildRTree", BM_BuildRTree)
        ->Arg(static_cast<int64_t>(n))
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig5/BuildPCube", BM_BuildPCube)
        ->Arg(static_cast<int64_t>(n))
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig5/BuildBTrees", BM_BuildBTrees)
        ->Arg(static_cast<int64_t>(n))
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
