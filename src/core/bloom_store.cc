#include "core/bloom_store.h"

#include <algorithm>

#include "cube/cell.h"

namespace pcube {

namespace {

void CollectSids(const SignatureNode& node, Path* prefix, uint32_t m,
                 std::vector<uint64_t>* sids) {
  if (node.bits.empty()) return;
  for (size_t bit = node.bits.FindNextSet(0); bit < node.bits.size();
       bit = node.bits.FindNextSet(bit + 1)) {
    prefix->push_back(static_cast<uint16_t>(bit + 1));
    sids->push_back(PathToSid(*prefix, m));
    auto it = node.children.find(static_cast<uint16_t>(bit + 1));
    if (it != node.children.end()) CollectSids(*it->second, prefix, m, sids);
    prefix->pop_back();
  }
}

}  // namespace

Status BloomStore::Put(CellId cell, const Signature& sig, double bits_per_key) {
  std::vector<uint64_t> sids;
  Path prefix;
  CollectSids(sig.root(), &prefix, sig.fanout(), &sids);
  if (sids.empty()) return Status::OK();
  BloomFilter filter(sids.size(), bits_per_key);
  for (uint64_t sid : sids) filter.Add(sid);
  std::vector<uint8_t> bytes = filter.Serialize();

  std::vector<PageId>& pages = blobs_[cell];
  pages.clear();
  for (size_t off = 0; off < bytes.size(); off += kPageSize) {
    PageId pid;
    auto handle = pool_->New(IoCategory::kSignature, &pid);
    if (!handle.ok()) return handle.status();
    ++num_pages_;
    size_t n = std::min(kPageSize, bytes.size() - off);
    std::copy(bytes.begin() + off, bytes.begin() + off + n,
              (*handle)->data());
    pages.push_back(pid);
  }
  blob_sizes_[cell] = static_cast<uint32_t>(bytes.size());
  return Status::OK();
}

Result<BloomFilter> BloomStore::Load(CellId cell, uint64_t* pages_read) const {
  auto it = blobs_.find(cell);
  if (it == blobs_.end()) return Status::NotFound("cell has no bloom filter");
  uint32_t size = blob_sizes_.at(cell);
  std::vector<uint8_t> bytes;
  bytes.reserve(size);
  for (PageId pid : it->second) {
    auto handle = pool_->Get(pid, IoCategory::kSignature);
    if (!handle.ok()) return handle.status();
    size_t n = std::min(kPageSize, static_cast<size_t>(size) - bytes.size());
    bytes.insert(bytes.end(), (*handle)->data(), (*handle)->data() + n);
    if (pages_read != nullptr) ++*pages_read;
  }
  return BloomFilter::Deserialize(bytes);
}

}  // namespace pcube
