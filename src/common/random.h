// Deterministic pseudo-random generator (xoshiro256**). All synthetic data
// and benchmark workloads draw from this so runs are reproducible from the
// seed alone, independent of the standard library's distribution details.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/logging.h"

namespace pcube {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) {
    PCUBE_DCHECK(n > 0);
    return Next() % n;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller (one value per call; no caching).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace pcube
