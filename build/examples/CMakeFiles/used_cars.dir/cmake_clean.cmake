file(REMOVE_RECURSE
  "CMakeFiles/used_cars.dir/used_cars.cpp.o"
  "CMakeFiles/used_cars.dir/used_cars.cpp.o.d"
  "used_cars"
  "used_cars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/used_cars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
