// OLAP-style drill-down session on the Forest CoverType surrogate (the
// paper's real-data experiment, §VI.B.4): a sequence of skyline queries that
// progressively adds boolean predicates, each answered incrementally from
// the previous query's cached lists (Lemma 2), with the paper's disk-access
// accounting printed per step.
//
//   ./covertype_analysis [num_rows]
#include <cstdio>
#include <cstdlib>

#include "data/covertype.h"
#include "query/incremental.h"
#include "workbench/workbench.h"

using namespace pcube;

int main(int argc, char** argv) {
  uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100000;
  std::printf("CoverType surrogate: %llu rows, 12 boolean dims "
              "(cards 255,207,185,67,7,2,...), 3 preference dims\n\n",
              static_cast<unsigned long long>(n));
  CoverTypeConfig config;
  config.num_tuples = n;
  auto wb = Workbench::Build(GenerateCoverTypeSurrogate(config),
                             WorkbenchOptions{});
  PCUBE_CHECK(wb.ok());
  Workbench& w = **wb;

  // Drill-down chain, broad to narrow (same shape as Figs. 14/16).
  const int dims[] = {5, 4, 3, 2};
  PredicateSet preds;
  SkylineOutput previous;
  bool have_previous = false;

  for (int step = 0; step < 4; ++step) {
    preds.Add({dims[step], 0});
    auto probe = w.cube()->MakeProbe(preds);
    PCUBE_CHECK(probe.ok());
    SkylineEngine engine(w.tree(), probe->get(), nullptr);

    PCUBE_CHECK_OK(w.ColdStart());
    Result<SkylineOutput> out = Status::Internal("unset");
    if (have_previous) {
      auto seed = DrillDownSeed(previous);
      out = engine.RunFrom(seed);
      // Chained sessions carry earlier boolean-pruned entries forward so the
      // lists stay valid seeds for later roll-ups (see query/incremental.h).
      if (out.ok()) *out = MergeAfterDrillDown(std::move(*out), previous);
    } else {
      out = engine.Run();
    }
    PCUBE_CHECK(out.ok());
    IoStats io = w.IoSince();

    std::printf("step %d: %s %s\n", step + 1, preds.ToString().c_str(),
                have_previous ? "(drill-down)" : "(fresh query)");
    std::printf("  skyline size: %zu   heap peak: %llu\n",
                out->skyline.size(),
                static_cast<unsigned long long>(out->counters.heap_peak));
    std::printf("  disk: SBlock=%llu SSig=%llu directory=%llu\n\n",
                static_cast<unsigned long long>(
                    io.ReadCount(IoCategory::kRtreeBlock)),
                static_cast<unsigned long long>(
                    io.ReadCount(IoCategory::kSignature)),
                static_cast<unsigned long long>(
                    io.ReadCount(IoCategory::kBtree)));
    previous = std::move(*out);
    have_previous = true;
  }

  // Roll all the way back up: remove every predicate but the first, seeding
  // from b_list per Lemma 2.
  PredicateSet rolled;
  rolled.Add({dims[0], 0});
  auto probe = w.cube()->MakeProbe(rolled);
  PCUBE_CHECK(probe.ok());
  SkylineEngine engine(w.tree(), probe->get(), nullptr);
  auto seed = RollUpSeed(previous);
  PCUBE_CHECK_OK(w.ColdStart());
  auto rolled_out = engine.RunFrom(seed);
  PCUBE_CHECK(rolled_out.ok());
  std::printf("roll-up back to %s: skyline size %zu, %llu nodes expanded\n",
              rolled.ToString().c_str(), rolled_out->skyline.size(),
              static_cast<unsigned long long>(
                  rolled_out->counters.nodes_expanded));
  return 0;
}
