// Signature union/intersection tests, anchored on the paper's Fig. 3
// assembling example ((A=a2), (B=b2) over Table I) plus randomized
// equivalence properties: algebra output == directly-built signature of the
// combined predicate.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/signature_algebra.h"
#include "core/signature_builder.h"
#include "data/generators.h"
#include "data/table1.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pcube {
namespace {

Signature Table1Signature(const PredicateSet& preds) {
  Dataset data = MakeTable1Dataset();
  Signature sig(2, 3);
  for (const auto& [tid, point, path] : Table1TreeEntries()) {
    if (preds.Matches(data, tid)) sig.SetPath(path);
  }
  return sig;
}

TEST(SignatureAlgebraTest, Fig3WorkedExample) {
  // A = a2 holds t2 <1,1,2>, t6 <2,1,2>; B = b2 holds t2 <1,1,2>,
  // t7 <2,2,1>.
  Signature a2 = Table1Signature({{kTable1DimA, 1}});
  Signature b2 = Table1Signature({{kTable1DimB, 1}});
  EXPECT_EQ(a2.root().bits.ToString(), "11");
  EXPECT_EQ(b2.root().bits.ToString(), "11");

  // Union (A=a2 or B=b2): tuples t2, t6, t7.
  Signature u = SignatureUnion(a2, b2);
  EXPECT_EQ(u.root().bits.ToString(), "11");
  EXPECT_TRUE(u.Test({1, 1, 2}));  // t2
  EXPECT_TRUE(u.Test({2, 1, 2}));  // t6
  EXPECT_TRUE(u.Test({2, 2, 1}));  // t7
  EXPECT_FALSE(u.Test({1, 1, 1}));
  EXPECT_FALSE(u.Test({2, 2, 2}));

  // Intersection (A=a2 and B=b2): only t2. The paper's Fig. 3c: the root
  // becomes "10" because the bit-and at the root ("11") is cleaned up by the
  // empty child intersection under N2.
  Signature i = SignatureIntersect(a2, b2);
  EXPECT_EQ(i.root().bits.ToString(), "10");
  EXPECT_TRUE(i.Test({1, 1, 2}));
  EXPECT_FALSE(i.Test({2}));
  EXPECT_FALSE(i.Test({2, 1, 2}));
  EXPECT_FALSE(i.Test({2, 2, 1}));

  // The recursive intersection equals the directly-built composite cell.
  Signature direct =
      Table1Signature({{kTable1DimA, 1}, {kTable1DimB, 1}});
  EXPECT_TRUE(i.Equals(direct));
}

TEST(SignatureAlgebraTest, UnionWithEmpty) {
  Signature a(2, 2);
  a.SetPath({1, 2});
  Signature empty(2, 2);
  Signature u = SignatureUnion(a, empty);
  EXPECT_TRUE(u.Test({1, 2}));
  EXPECT_EQ(u.CountBits(), a.CountBits());
  Signature i = SignatureIntersect(a, empty);
  EXPECT_TRUE(i.Empty());
}

TEST(SignatureAlgebraTest, IntersectIsExactNotJustBitAnd) {
  // Two cells that share an inner node but no tuple: plain bit-and would
  // leave the inner bit set; the recursive intersection must clear it.
  Signature a(2, 3), b(2, 3);
  a.SetPath({1, 1, 1});
  b.SetPath({1, 1, 2});
  Signature i = SignatureIntersect(a, b);
  EXPECT_TRUE(i.Empty()) << i.ToString();
  EXPECT_FALSE(i.Test({1}));
}

class AlgebraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraPropertyTest, MatchesDirectBuildOnRealTree) {
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 4096, &stats);
  Random rng(GetParam());
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 100 + GetParam();
  Dataset data = GenerateSynthetic(config);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 4 + static_cast<uint32_t>(rng.Uniform(8));
  auto tree = RStarTree::BuildByInsertion(&pool, data, options);
  ASSERT_TRUE(tree.ok());
  auto paths = PathTable::Collect(*tree);
  ASSERT_TRUE(paths.ok());
  int levels = tree->height() + 1;

  for (uint32_t va = 0; va < 3; ++va) {
    for (uint32_t vb = 0; vb < 3; ++vb) {
      Signature sa = BuildCellSignature(data, *paths, {{0, va}},
                                        tree->fanout(), levels);
      Signature sb = BuildCellSignature(data, *paths, {{1, vb}},
                                        tree->fanout(), levels);
      Signature both = BuildCellSignature(data, *paths, {{0, va}, {1, vb}},
                                          tree->fanout(), levels);
      Signature i = SignatureIntersect(sa, sb);
      EXPECT_TRUE(i.Equals(both))
          << "va=" << va << " vb=" << vb << "\nintersect:\n"
          << i.ToString() << "\ndirect:\n"
          << both.ToString();

      // Union equals the signature of tuples matching either predicate.
      Signature u = SignatureUnion(sa, sb);
      Signature either(tree->fanout(), levels);
      for (TupleId t = 0; t < data.num_tuples(); ++t) {
        if (data.BoolValue(t, 0) == va || data.BoolValue(t, 1) == vb) {
          either.SetPath(paths->path(t));
        }
      }
      EXPECT_TRUE(u.Equals(either)) << "va=" << va << " vb=" << vb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace pcube
