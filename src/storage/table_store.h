// Heap file for the base relation: fixed-width rows packed into 4 KB pages.
// Random tuple fetches (used by the Domination-first baseline for boolean
// verification, paper's "DBool" accesses) and sequential scans (the
// Boolean-first baseline's table-scan path) both go through the buffer pool
// so they show up in IoStats.
//
// Thread-safety: GetTuple and Scan are const and safe from any number of
// threads once the table is built; Append is single-threaded by contract.
#pragma once

#include <functional>

#include "common/status.h"
#include "cube/relation.h"
#include "storage/buffer_pool.h"

namespace pcube {

/// One materialised tuple.
struct TupleData {
  TupleId tid = 0;
  std::vector<uint32_t> bools;
  std::vector<float> prefs;
};

/// Paged heap file with fixed-width rows in TupleId order.
class TableStore {
 public:
  /// Materialises `data` into pages of `pool`'s page manager.
  static Result<TableStore> Build(BufferPool* pool, const Dataset& data);

  /// Re-attaches to previously built pages (catalog-driven reopen).
  static TableStore Attach(BufferPool* pool, int num_bool, int num_pref,
                           uint64_t num_tuples, std::vector<PageId> page_ids) {
    TableStore store(pool, num_bool, num_pref);
    store.num_tuples_ = num_tuples;
    store.page_ids_ = std::move(page_ids);
    return store;
  }

  const std::vector<PageId>& page_ids() const { return page_ids_; }

  /// Fetches tuple `tid`; the page read is charged to `cat` (the
  /// Domination-first baseline passes kBooleanVerify).
  Result<TupleData> GetTuple(TupleId tid,
                             IoCategory cat = IoCategory::kHeapFile) const;

  /// Appends one tuple (incremental-maintenance path); returns its id.
  Result<TupleId> Append(std::span<const uint32_t> bools,
                         std::span<const float> prefs);

  /// Full scan in TupleId order; visitor returns false to stop.
  Status Scan(const std::function<bool(const TupleData&)>& visit) const;

  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_pages() const { return page_ids_.size(); }
  uint64_t rows_per_page() const { return rows_per_page_; }

 private:
  TableStore(BufferPool* pool, int num_bool, int num_pref)
      : pool_(pool),
        num_bool_(num_bool),
        num_pref_(num_pref),
        row_size_(4 * num_bool + 4 * num_pref),
        rows_per_page_(kPageSize / row_size_) {}

  void DecodeRow(const uint8_t* src, TupleId tid, TupleData* out) const;
  void EncodeRow(std::span<const uint32_t> bools, std::span<const float> prefs,
                 uint8_t* dst) const;

  BufferPool* pool_;
  int num_bool_;
  int num_pref_;
  size_t row_size_;
  uint64_t rows_per_page_;
  uint64_t num_tuples_ = 0;
  std::vector<PageId> page_ids_;
};

}  // namespace pcube
