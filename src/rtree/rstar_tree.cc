#include "rtree/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace pcube {

namespace {

/// Entry gathered from a node during restructuring.
struct GatheredEntry {
  RectF rect;
  uint64_t id = 0;
  /// Original slot in the overflowing node, or -1 for the extra entry that
  /// caused the overflow.
  int orig_slot = -1;
};

/// R* ChooseSplitAxis/ChooseSplitIndex over M+1 entries. Returns the sorted
/// entry order and the split position k: entries [0,k) go left, [k, n) right.
struct SplitDecision {
  std::vector<GatheredEntry> sorted;
  size_t split_at = 0;
};

SplitDecision ChooseSplit(std::vector<GatheredEntry> entries, int dims,
                          uint32_t m) {
  const size_t n = entries.size();
  const size_t mmin = std::max<size_t>(1, static_cast<size_t>(0.4 * (m + 1)));
  PCUBE_DCHECK_GE(n, 2 * mmin);

  auto distribution_margins = [&](std::vector<GatheredEntry>& ents) {
    // Prefix/suffix MBRs for all split positions.
    double total_margin = 0;
    std::vector<RectF> prefix(n), suffix(n);
    prefix[0] = ents[0].rect;
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1];
      prefix[i].Expand(ents[i].rect);
    }
    suffix[n - 1] = ents[n - 1].rect;
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].Expand(ents[i].rect);
    }
    for (size_t k = mmin; k + mmin <= n; ++k) {
      total_margin += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return std::make_pair(total_margin, std::make_pair(prefix, suffix));
  };

  double best_axis_margin = std::numeric_limits<double>::max();
  SplitDecision best;
  for (int axis = 0; axis < dims; ++axis) {
    for (int by_max = 0; by_max < 2; ++by_max) {
      std::sort(entries.begin(), entries.end(),
                [&](const GatheredEntry& a, const GatheredEntry& b) {
                  return by_max ? a.rect.max[axis] < b.rect.max[axis]
                                : a.rect.min[axis] < b.rect.min[axis];
                });
      auto [margin, mbrs] = distribution_margins(entries);
      if (margin < best_axis_margin) {
        best_axis_margin = margin;
        // Choose the split index on this axis/order: min overlap, then area.
        auto& [prefix, suffix] = mbrs;
        double best_overlap = std::numeric_limits<double>::max();
        double best_area = std::numeric_limits<double>::max();
        size_t best_k = mmin;
        for (size_t k = mmin; k + mmin <= n; ++k) {
          double overlap = prefix[k - 1].OverlapArea(suffix[k]);
          double area = prefix[k - 1].Area() + suffix[k].Area();
          if (overlap < best_overlap ||
              (overlap == best_overlap && area < best_area)) {
            best_overlap = overlap;
            best_area = area;
            best_k = k;
          }
        }
        best.sorted = entries;
        best.split_at = best_k;
      }
    }
  }
  return best;
}

}  // namespace

Result<RStarTree> RStarTree::Create(BufferPool* pool,
                                    const RTreeOptions& options) {
  PCUBE_CHECK_GE(options.dims, 1);
  PCUBE_CHECK_LE(options.dims, kMaxDims);
  RStarTree tree(pool, options);
  PCUBE_CHECK_GE(tree.m_, 2u) << "fanout must be at least 2";
  PageId pid;
  auto handle = pool->New(IoCategory::kRtreeBlock, &pid);
  if (!handle.ok()) return handle.status();
  NodeView(handle->get(), options.dims).Init(/*is_leaf=*/true, /*level=*/0);
  tree.root_ = pid;
  tree.height_ = 0;
  tree.num_pages_ = 1;
  return tree;
}

Result<RStarTree> RStarTree::BuildByInsertion(BufferPool* pool,
                                              const Dataset& data,
                                              const RTreeOptions& options) {
  auto tree = Create(pool, options);
  if (!tree.ok()) return tree.status();
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    PCUBE_RETURN_NOT_OK(tree->Insert(data.PrefPoint(t), t, nullptr));
  }
  return tree;
}

Status RStarTree::ChooseLeaf(const RectF& rect,
                             std::vector<DescentStep>* stack) const {
  stack->clear();
  PageId pid = root_;
  for (int depth = 0; depth <= height_; ++depth) {
    auto handle = pool_->Get(pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView node(handle->get(), options_.dims);
    DescentStep step;
    step.pid = pid;
    if (node.is_leaf()) {
      stack->push_back(step);
      return Status::OK();
    }
    // Collect candidate slots.
    std::vector<uint32_t> slots;
    slots.reserve(node.count());
    for (uint32_t s = 0; s < node.max_entries(); ++s) {
      if (node.Valid(s)) slots.push_back(s);
    }
    PCUBE_CHECK(!slots.empty()) << "internal node with no children";
    uint32_t chosen;
    if (node.level() == 1) {
      // Children are leaves: minimise overlap enlargement (R*), restricted to
      // the 32 candidates with least area enlargement for large fanouts.
      if (slots.size() > 32) {
        std::nth_element(
            slots.begin(), slots.begin() + 32, slots.end(),
            [&](uint32_t a, uint32_t b) {
              return node.GetRect(a).Enlargement(rect) <
                     node.GetRect(b).Enlargement(rect);
            });
        slots.resize(32);
      }
      double best_overlap_delta = std::numeric_limits<double>::max();
      double best_enlarge = std::numeric_limits<double>::max();
      chosen = slots[0];
      for (uint32_t cand : slots) {
        RectF before = node.GetRect(cand);
        RectF after = before;
        after.Expand(rect);
        double delta = 0;
        for (uint32_t s = 0; s < node.max_entries(); ++s) {
          if (!node.Valid(s) || s == cand) continue;
          RectF sib = node.GetRect(s);
          delta += after.OverlapArea(sib) - before.OverlapArea(sib);
        }
        double enlarge = before.Enlargement(rect);
        if (delta < best_overlap_delta ||
            (delta == best_overlap_delta && enlarge < best_enlarge)) {
          best_overlap_delta = delta;
          best_enlarge = enlarge;
          chosen = cand;
        }
      }
    } else {
      // Minimise area enlargement; ties by area.
      double best_enlarge = std::numeric_limits<double>::max();
      double best_area = std::numeric_limits<double>::max();
      chosen = slots[0];
      for (uint32_t cand : slots) {
        RectF r = node.GetRect(cand);
        double enlarge = r.Enlargement(rect);
        double area = r.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          chosen = cand;
        }
      }
    }
    step.slot = chosen;
    stack->push_back(step);
    pid = node.GetId(chosen);
  }
  return Status::Internal("descent exceeded tree height");
}

Status RStarTree::UpdateAncestorMbrs(const std::vector<DescentStep>& stack,
                                     size_t deepest) {
  // Recompute exact MBRs from stack[deepest] upward to the root.
  for (size_t i = deepest; i > 0; --i) {
    RectF child_mbr;
    {
      auto child = pool_->Get(stack[i].pid, IoCategory::kRtreeBlock);
      if (!child.ok()) return child.status();
      child_mbr = NodeView(child->get(), options_.dims).Mbr();
    }
    auto parent = pool_->GetMutable(stack[i - 1].pid, IoCategory::kRtreeBlock);
    if (!parent.ok()) return parent.status();
    NodeView pv(parent->get(), options_.dims);
    pv.SetEntry(stack[i - 1].slot, child_mbr, stack[i].pid);
  }
  return Status::OK();
}

void RStarTree::MarkDirty(PathChangeSet* changes, TupleId tid) {
  if (changes == nullptr) return;
  for (auto& c : changes->changes) {
    if (c.tid == tid) {
      c.has_new = false;
      return;
    }
  }
}

void RStarTree::RecordOldPath(PathChangeSet* changes, TupleId tid,
                              std::span<const float> point,
                              const Path& old_path) {
  if (changes == nullptr) return;
  for (auto& c : changes->changes) {
    if (c.tid == tid) {
      // First recorded old path wins (it predates every move in this batch),
      // but the new path must be recomputed after this move.
      c.has_new = false;
      return;
    }
  }
  PathChange c;
  c.tid = tid;
  c.point.assign(point.begin(), point.end());
  c.has_old = true;
  c.has_new = false;
  c.old_path = old_path;
  changes->changes.push_back(std::move(c));
}

Status RStarTree::CollectSubtreePaths(PageId pid, Path* prefix,
                                      const PathVisitor& visit) const {
  auto handle = pool_->Get(pid, IoCategory::kRtreeBlock);
  if (!handle.ok()) return handle.status();
  NodeView node(handle->get(), options_.dims);
  for (uint32_t s = 0; s < node.max_entries(); ++s) {
    if (!node.Valid(s)) continue;
    prefix->push_back(static_cast<uint16_t>(s + 1));
    if (node.is_leaf()) {
      RectF r = node.GetRect(s);
      visit(node.GetId(s), *prefix,
            std::span<const float>(r.min.data(),
                                   static_cast<size_t>(options_.dims)));
    } else {
      // Pins nest safely; recursion depth is bounded by the tree height.
      PCUBE_RETURN_NOT_OK(CollectSubtreePaths(node.GetId(s), prefix, visit));
    }
    prefix->pop_back();
  }
  return Status::OK();
}

Status RStarTree::SplitNode(std::vector<DescentStep>* stack, size_t depth,
                            const RectF& extra_rect, uint64_t extra_id,
                            PathChangeSet* changes) {
  const PageId node_pid = (*stack)[depth].pid;
  bool is_leaf;
  uint16_t level;
  std::vector<GatheredEntry> entries;
  {
    auto handle = pool_->Get(node_pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView node(handle->get(), options_.dims);
    is_leaf = node.is_leaf();
    level = node.level();
    entries.reserve(node.count() + 1);
    for (uint32_t s = 0; s < node.max_entries(); ++s) {
      if (!node.Valid(s)) continue;
      entries.push_back({node.GetRect(s), node.GetId(s), static_cast<int>(s)});
    }
  }
  entries.push_back({extra_rect, extra_id, -1});

  SplitDecision split = ChooseSplit(std::move(entries), options_.dims, m_);

  // Build the path prefix of this node (pre-split ancestry).
  Path node_prefix;
  for (size_t i = 0; i < depth; ++i) {
    node_prefix.push_back(static_cast<uint16_t>((*stack)[i].slot + 1));
  }

  // Record old paths for everything that moves to the right node. Entries
  // staying in the left node keep their slots, so their paths are unchanged.
  if (changes != nullptr) {
    for (size_t i = split.split_at; i < split.sorted.size(); ++i) {
      const GatheredEntry& e = split.sorted[i];
      if (e.orig_slot < 0) continue;  // extra entry: recorded by the caller
      Path old_path = node_prefix;
      old_path.push_back(static_cast<uint16_t>(e.orig_slot + 1));
      if (is_leaf) {
        std::span<const float> pt(e.rect.min.data(),
                                  static_cast<size_t>(options_.dims));
        RecordOldPath(changes, e.id, pt, old_path);
      } else {
        PCUBE_RETURN_NOT_OK(CollectSubtreePaths(
            e.id, &old_path,
            [&](TupleId tid, const Path& p, std::span<const float> pt) {
              RecordOldPath(changes, tid, pt, p);
            }));
      }
    }
  }

  // Restructure the left node: clear moved entries, then place the extra
  // entry if it belongs left.
  RectF left_mbr = RectF::Empty(options_.dims);
  RectF right_mbr = RectF::Empty(options_.dims);
  PageId right_pid;
  {
    auto handle = pool_->GetMutable(node_pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView node(handle->get(), options_.dims);
    for (size_t i = split.split_at; i < split.sorted.size(); ++i) {
      if (split.sorted[i].orig_slot >= 0) {
        node.ClearEntry(static_cast<uint32_t>(split.sorted[i].orig_slot));
      }
    }
    for (size_t i = 0; i < split.split_at; ++i) {
      const GatheredEntry& e = split.sorted[i];
      if (e.orig_slot < 0) {
        uint32_t free = node.FirstFreeSlot();
        PCUBE_CHECK_LT(free, m_);
        node.SetEntry(free, e.rect, e.id);
      }
      left_mbr.Expand(e.rect);
    }

    // Build the right node.
    auto right = pool_->New(IoCategory::kRtreeBlock, &right_pid);
    if (!right.ok()) return right.status();
    ++num_pages_;
    NodeView rnode(right->get(), options_.dims);
    rnode.Init(is_leaf, level);
    uint32_t slot = 0;
    for (size_t i = split.split_at; i < split.sorted.size(); ++i) {
      rnode.SetEntry(slot++, split.sorted[i].rect, split.sorted[i].id);
      right_mbr.Expand(split.sorted[i].rect);
    }
  }

  if (depth == 0) {
    // Root split: add a level.
    PageId new_root;
    auto handle = pool_->New(IoCategory::kRtreeBlock, &new_root);
    if (!handle.ok()) return handle.status();
    ++num_pages_;
    NodeView root(handle->get(), options_.dims);
    root.Init(/*is_leaf=*/false, static_cast<uint16_t>(level + 1));
    root.SetEntry(0, left_mbr, node_pid);
    root.SetEntry(1, right_mbr, right_pid);
    root_ = new_root;
    ++height_;
    if (changes != nullptr) changes->root_split = true;
    return Status::OK();
  }

  // Update the parent: fix the left child's MBR, then add the right child.
  {
    auto parent = pool_->GetMutable((*stack)[depth - 1].pid,
                                    IoCategory::kRtreeBlock);
    if (!parent.ok()) return parent.status();
    NodeView pv(parent->get(), options_.dims);
    pv.SetEntry((*stack)[depth - 1].slot, left_mbr, node_pid);
    uint32_t free = pv.FirstFreeSlot();
    if (free < m_) {
      pv.SetEntry(free, right_mbr, right_pid);
      parent->Release();
      return UpdateAncestorMbrs(*stack, depth - 1);
    }
  }
  // Parent overflows in turn.
  return SplitNode(stack, depth - 1, right_mbr, right_pid, changes);
}

Status RStarTree::InsertLeafEntry(const PendingEntry& entry,
                                  PathChangeSet* changes, bool* reinsert_done,
                                  std::vector<PendingEntry>* pending) {
  std::vector<DescentStep> stack;
  PCUBE_RETURN_NOT_OK(ChooseLeaf(entry.rect, &stack));
  const size_t leaf_depth = stack.size() - 1;
  const PageId leaf_pid = stack[leaf_depth].pid;

  uint32_t free_slot;
  {
    auto handle = pool_->GetMutable(leaf_pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView leaf(handle->get(), options_.dims);
    free_slot = leaf.FirstFreeSlot();
    if (free_slot < m_) {
      leaf.SetEntry(free_slot, entry.rect, entry.tid);
      MarkDirty(changes, entry.tid);
      handle->Release();
      return UpdateAncestorMbrs(stack, leaf_depth);
    }
  }

  // Overflow treatment (R*): forced re-insertion once per logical insert at
  // the leaf level, unless the leaf is the root; otherwise split.
  if (leaf_depth > 0 && options_.forced_reinsert && !*reinsert_done) {
    *reinsert_done = true;
    Path leaf_prefix;
    for (size_t i = 0; i < leaf_depth; ++i) {
      leaf_prefix.push_back(static_cast<uint16_t>(stack[i].slot + 1));
    }
    auto handle = pool_->GetMutable(leaf_pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView leaf(handle->get(), options_.dims);
    RectF mbr = leaf.Mbr();
    mbr.Expand(entry.rect);
    struct Victim {
      uint32_t slot;
      double dist;
    };
    std::vector<Victim> victims;
    victims.reserve(leaf.count());
    for (uint32_t s = 0; s < leaf.max_entries(); ++s) {
      if (leaf.Valid(s)) {
        victims.push_back({s, leaf.GetRect(s).CenterDist2(mbr)});
      }
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim& a, const Victim& b) { return a.dist > b.dist; });
    size_t k = std::max<size_t>(
        1, static_cast<size_t>(options_.reinsert_fraction * m_));
    k = std::min(k, victims.size());
    for (size_t i = 0; i < k; ++i) {
      uint32_t s = victims[i].slot;
      RectF r = leaf.GetRect(s);
      TupleId tid = leaf.GetId(s);
      Path old_path = leaf_prefix;
      old_path.push_back(static_cast<uint16_t>(s + 1));
      std::span<const float> pt(r.min.data(), static_cast<size_t>(options_.dims));
      RecordOldPath(changes, tid, pt, old_path);
      pending->push_back({r, tid});
      leaf.ClearEntry(s);
    }
    uint32_t slot = leaf.FirstFreeSlot();
    PCUBE_CHECK_LT(slot, m_);
    leaf.SetEntry(slot, entry.rect, entry.tid);
    MarkDirty(changes, entry.tid);
    handle->Release();
    return UpdateAncestorMbrs(stack, leaf_depth);
  }

  return SplitNode(&stack, leaf_depth, entry.rect, entry.tid, changes);
}

Status RStarTree::FinalizeNewPaths(PathChangeSet* changes) {
  if (changes == nullptr) return Status::OK();
  for (auto& c : changes->changes) {
    if (c.deleted || c.has_new) continue;
    auto path = FindPath(c.point, c.tid);
    if (!path.ok()) return path.status();
    c.new_path = std::move(*path);
    c.has_new = true;
  }
  return Status::OK();
}

Status RStarTree::Insert(std::span<const float> point, TupleId tid,
                         PathChangeSet* changes) {
  PCUBE_CHECK_EQ(point.size(), static_cast<size_t>(options_.dims));
  bool reinsert_done = false;
  std::vector<PendingEntry> pending;
  pending.push_back({RectF::Point(point), tid});
  if (changes != nullptr) {
    bool known = false;
    for (auto& c : changes->changes) {
      if (c.tid == tid) {  // re-insert of a tuple touched earlier in a batch
        c.deleted = false;
        c.has_new = false;
        c.point.assign(point.begin(), point.end());
        known = true;
        break;
      }
    }
    if (!known) {
      PathChange c;
      c.tid = tid;
      c.point.assign(point.begin(), point.end());
      c.has_old = false;
      c.has_new = false;
      changes->changes.push_back(std::move(c));
    }
  }
  while (!pending.empty()) {
    PendingEntry e = pending.back();
    pending.pop_back();
    PCUBE_RETURN_NOT_OK(InsertLeafEntry(e, changes, &reinsert_done, &pending));
  }
  ++num_entries_;
  return FinalizeNewPaths(changes);
}

Status RStarTree::Delete(std::span<const float> point, TupleId tid,
                         PathChangeSet* changes) {
  auto found = FindPath(point, tid);
  if (!found.ok()) return found.status();
  const Path& path = *found;

  // Resolve the descent stack along the known path.
  std::vector<DescentStep> stack;
  PageId pid = root_;
  for (size_t i = 0; i < path.size(); ++i) {
    DescentStep step;
    step.pid = pid;
    step.slot = static_cast<uint32_t>(path[i] - 1);
    stack.push_back(step);
    if (i + 1 < path.size()) {
      auto handle = pool_->Get(pid, IoCategory::kRtreeBlock);
      if (!handle.ok()) return handle.status();
      pid = NodeView(handle->get(), options_.dims).GetId(step.slot);
    }
  }

  {
    auto handle = pool_->GetMutable(stack.back().pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView leaf(handle->get(), options_.dims);
    leaf.ClearEntry(stack.back().slot);
  }
  --num_entries_;

  // Walk upward: drop now-empty nodes from their parents (their pages leak;
  // the tree never merges nodes, so surviving slots — and paths — stay
  // stable), then recompute ancestor MBRs exactly.
  bool clearing = true;
  for (size_t i = stack.size(); i-- > 1;) {
    RectF child_mbr;
    uint16_t child_count;
    {
      auto handle = pool_->Get(stack[i].pid, IoCategory::kRtreeBlock);
      if (!handle.ok()) return handle.status();
      NodeView node(handle->get(), options_.dims);
      child_count = node.count();
      child_mbr = node.Mbr();
    }
    auto parent = pool_->GetMutable(stack[i - 1].pid, IoCategory::kRtreeBlock);
    if (!parent.ok()) return parent.status();
    NodeView pv(parent->get(), options_.dims);
    if (clearing && child_count == 0) {
      pv.ClearEntry(stack[i - 1].slot);
    } else {
      clearing = false;
      pv.SetEntry(stack[i - 1].slot, child_mbr, stack[i].pid);
    }
  }

  if (changes != nullptr) {
    bool known = false;
    for (auto& c : changes->changes) {
      if (c.tid == tid) {
        c.deleted = true;
        c.has_new = false;
        known = true;
        break;
      }
    }
    if (!known) {
      PathChange c;
      c.tid = tid;
      c.point.assign(point.begin(), point.end());
      c.has_old = true;
      c.old_path = path;
      c.deleted = true;
      changes->changes.push_back(std::move(c));
    }
  }
  return Status::OK();
}

namespace {

/// DFS search for a (point, tid) leaf entry; prunes by MBR containment.
Status FindPathRec(BufferPool* pool, int dims, PageId pid,
                   std::span<const float> point, TupleId tid, Path* path,
                   bool* found) {
  auto handle = pool->Get(pid, IoCategory::kRtreeBlock);
  if (!handle.ok()) return handle.status();
  NodeView node(handle->get(), dims);
  for (uint32_t s = 0; s < node.max_entries(); ++s) {
    if (!node.Valid(s)) continue;
    if (node.is_leaf()) {
      if (node.GetId(s) != tid) continue;
      RectF r = node.GetRect(s);
      if (!r.ContainsPoint(point)) continue;
      path->push_back(static_cast<uint16_t>(s + 1));
      *found = true;
      return Status::OK();
    }
    if (!node.GetRect(s).ContainsPoint(point)) continue;
    path->push_back(static_cast<uint16_t>(s + 1));
    PCUBE_RETURN_NOT_OK(
        FindPathRec(pool, dims, node.GetId(s), point, tid, path, found));
    if (*found) return Status::OK();
    path->pop_back();
  }
  return Status::OK();
}

}  // namespace

Result<Path> RStarTree::FindPath(std::span<const float> point,
                                 TupleId tid) const {
  Path path;
  bool found = false;
  PCUBE_RETURN_NOT_OK(
      FindPathRec(pool_, options_.dims, root_, point, tid, &path, &found));
  if (!found) {
    return Status::NotFound("tuple " + std::to_string(tid) + " not in tree");
  }
  return path;
}

Status RStarTree::CollectPaths(const PathVisitor& visit) const {
  Path prefix;
  return CollectSubtreePaths(root_, &prefix, visit);
}

Result<PageId> RStarTree::ResolvePath(const Path& path, IoCategory cat) const {
  PageId pid = root_;
  for (uint16_t p : path) {
    auto handle = pool_->Get(pid, cat);
    if (!handle.ok()) return handle.status();
    NodeView node(handle->get(), options_.dims);
    uint32_t slot = static_cast<uint32_t>(p - 1);
    if (p < 1 || slot >= node.max_entries() || !node.Valid(slot) ||
        node.is_leaf()) {
      return Status::NotFound("path does not address a node");
    }
    pid = node.GetId(slot);
  }
  return pid;
}

Result<RStarTree> RStarTree::BulkLoad(BufferPool* pool, const Dataset& data,
                                      const RTreeOptions& options) {
  const uint64_t n = data.num_tuples();
  // Only the empty tree takes Create()'s pre-allocated root; a non-empty
  // load builds every node (the root included) itself, so pre-allocating
  // would orphan a page and overcount num_pages().
  if (n == 0) return Create(pool, options);
  RStarTree tree(pool, options);
  PCUBE_CHECK_GE(tree.m_, 2u) << "fanout must be at least 2";
  const int dims = options.dims;
  const uint32_t cap = std::max<uint32_t>(
      2, static_cast<uint32_t>(options.bulk_fill * tree.m_));

  struct Item {
    RectF rect;
    uint64_t id;
  };
  std::vector<Item> items;
  items.reserve(n);
  for (TupleId t = 0; t < n; ++t) {
    items.push_back({RectF::Point(data.PrefPoint(t)), t});
  }

  // Sort-Tile-Recursive tiling: recursively slab-partition by each axis.
  std::vector<std::vector<Item>> groups;
  std::function<void(std::span<Item>, int)> tile = [&](std::span<Item> span,
                                                       int axis) {
    if (span.size() <= cap) {
      groups.emplace_back(span.begin(), span.end());
      return;
    }
    std::sort(span.begin(), span.end(), [axis](const Item& a, const Item& b) {
      float ca = a.rect.min[axis] + a.rect.max[axis];
      float cb = b.rect.min[axis] + b.rect.max[axis];
      return ca < cb;
    });
    if (axis == dims - 1) {
      for (size_t i = 0; i < span.size(); i += cap) {
        size_t len = std::min<size_t>(cap, span.size() - i);
        groups.emplace_back(span.begin() + i, span.begin() + i + len);
      }
      return;
    }
    double leaves = std::ceil(static_cast<double>(span.size()) / cap);
    size_t slabs = static_cast<size_t>(
        std::ceil(std::pow(leaves, 1.0 / (dims - axis))));
    slabs = std::max<size_t>(1, slabs);
    size_t per_slab = (span.size() + slabs - 1) / slabs;
    for (size_t i = 0; i < span.size(); i += per_slab) {
      size_t len = std::min(per_slab, span.size() - i);
      tile(span.subspan(i, len), axis + 1);
    }
  };

  // Builds one level of nodes from grouped children; returns (mbr, id) per
  // node for the level above.
  auto build_level = [&](const std::vector<std::vector<Item>>& grps,
                         bool is_leaf, uint16_t level,
                         std::vector<Item>* out) -> Status {
    out->clear();
    for (const auto& g : grps) {
      PageId pid;
      {
        auto handle = pool->New(IoCategory::kRtreeBlock, &pid);
        if (!handle.ok()) return handle.status();
        ++tree.num_pages_;
      }
      auto handle = pool->GetMutable(pid, IoCategory::kRtreeBlock);
      if (!handle.ok()) return handle.status();
      NodeView node(handle->get(), dims);
      node.Init(is_leaf, level);
      RectF mbr = RectF::Empty(dims);
      uint32_t slot = 0;
      for (const Item& it : g) {
        node.SetEntry(slot++, it.rect, it.id);
        mbr.Expand(it.rect);
      }
      out->push_back({mbr, pid});
    }
    return Status::OK();
  };

  tile(items, 0);
  std::vector<Item> level_items;
  PCUBE_RETURN_NOT_OK(build_level(groups, /*is_leaf=*/true, 0, &level_items));
  uint16_t level = 0;
  while (level_items.size() > 1) {
    ++level;
    groups.clear();
    tile(level_items, 0);
    std::vector<Item> next;
    PCUBE_RETURN_NOT_OK(build_level(groups, /*is_leaf=*/false, level, &next));
    level_items = std::move(next);
  }
  tree.root_ = static_cast<PageId>(level_items[0].id);
  tree.height_ = level;
  tree.num_entries_ = n;
  return tree;
}

Result<RStarTree> RStarTree::BuildGridPartition(BufferPool* pool,
                                                const Dataset& data,
                                                const RTreeOptions& options,
                                                int cells_per_dim) {
  PCUBE_CHECK_GE(cells_per_dim, 1);
  const uint64_t n = data.num_tuples();
  if (n == 0) return Create(pool, options);
  RStarTree tree(pool, options);
  PCUBE_CHECK_GE(tree.m_, 2u) << "fanout must be at least 2";
  const int dims = options.dims;

  // Per-dimension bounds of the data.
  std::vector<float> lo(dims, std::numeric_limits<float>::max());
  std::vector<float> hi(dims, std::numeric_limits<float>::lowest());
  for (TupleId t = 0; t < n; ++t) {
    auto pt = data.PrefPoint(t);
    for (int d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], pt[d]);
      hi[d] = std::max(hi[d], pt[d]);
    }
  }

  // Bucket tuples into row-major cell ids.
  auto cell_of = [&](std::span<const float> pt) {
    uint64_t id = 0;
    for (int d = 0; d < dims; ++d) {
      double width = static_cast<double>(hi[d]) - lo[d];
      int c = width <= 0 ? 0
                         : std::min<int>(cells_per_dim - 1,
                                         static_cast<int>((pt[d] - lo[d]) /
                                                          width *
                                                          cells_per_dim));
      id = id * cells_per_dim + static_cast<uint64_t>(c);
    }
    return id;
  };
  std::map<uint64_t, std::vector<TupleId>> cells;
  for (TupleId t = 0; t < n; ++t) {
    cells[cell_of(data.PrefPoint(t))].push_back(t);
  }

  // Leaves: each grid cell's tuples chunked to the fill target; cells are
  // emitted in row-major order, which keeps neighbouring cells in
  // neighbouring upper-level nodes.
  const uint32_t cap = std::max<uint32_t>(
      2, static_cast<uint32_t>(options.bulk_fill * tree.m_));
  struct Item {
    RectF rect;
    uint64_t id;
  };
  std::vector<Item> level_items;
  for (const auto& [cell_id, tids] : cells) {
    for (size_t i = 0; i < tids.size(); i += cap) {
      PageId pid;
      auto handle = pool->New(IoCategory::kRtreeBlock, &pid);
      if (!handle.ok()) return handle.status();
      ++tree.num_pages_;
      NodeView node(handle->get(), dims);
      node.Init(/*is_leaf=*/true, 0);
      RectF mbr = RectF::Empty(dims);
      uint32_t slot = 0;
      for (size_t j = i; j < std::min(tids.size(), i + cap); ++j) {
        RectF r = RectF::Point(data.PrefPoint(tids[j]));
        node.SetEntry(slot++, r, tids[j]);
        mbr.Expand(r);
      }
      level_items.push_back({mbr, pid});
    }
  }

  // Upper levels: sequential packing of the (spatially ordered) children.
  uint16_t level = 0;
  while (level_items.size() > 1) {
    ++level;
    std::vector<Item> next;
    for (size_t i = 0; i < level_items.size(); i += cap) {
      PageId pid;
      auto handle = pool->New(IoCategory::kRtreeBlock, &pid);
      if (!handle.ok()) return handle.status();
      ++tree.num_pages_;
      NodeView node(handle->get(), dims);
      node.Init(/*is_leaf=*/false, level);
      RectF mbr = RectF::Empty(dims);
      uint32_t slot = 0;
      for (size_t j = i; j < std::min(level_items.size(), i + cap); ++j) {
        node.SetEntry(slot++, level_items[j].rect, level_items[j].id);
        mbr.Expand(level_items[j].rect);
      }
      next.push_back({mbr, pid});
    }
    level_items = std::move(next);
  }
  tree.root_ = static_cast<PageId>(level_items[0].id);
  tree.height_ = level;
  tree.num_entries_ = n;
  return tree;
}

Result<RStarTree> RStarTree::BuildExplicit(
    BufferPool* pool, const RTreeOptions& options,
    const std::vector<std::tuple<TupleId, std::vector<float>, Path>>& entries) {
  PCUBE_CHECK(!entries.empty());
  const size_t depth = std::get<2>(entries[0]).size();
  for (const auto& e : entries) {
    PCUBE_CHECK_EQ(std::get<2>(e).size(), depth) << "uneven path lengths";
  }
  auto tree_result = Create(pool, options);
  if (!tree_result.ok()) return tree_result.status();
  RStarTree tree = std::move(*tree_result);

  // Materialise nodes keyed by path prefix, creating them on demand.
  std::map<Path, PageId> nodes;
  nodes[{}] = tree.root_;
  {
    auto root = pool->GetMutable(tree.root_, IoCategory::kRtreeBlock);
    if (!root.ok()) return root.status();
    NodeView(root->get(), options.dims)
        .Init(depth == 1, static_cast<uint16_t>(depth - 1));
  }
  tree.height_ = static_cast<int>(depth) - 1;

  auto get_or_create = [&](const Path& prefix) -> Result<PageId> {
    auto it = nodes.find(prefix);
    if (it != nodes.end()) return it->second;
    PageId pid;
    auto handle = pool->New(IoCategory::kRtreeBlock, &pid);
    if (!handle.ok()) return handle.status();
    ++tree.num_pages_;
    NodeView(handle->get(), options.dims)
        .Init(prefix.size() == depth - 1,
              static_cast<uint16_t>(depth - 1 - prefix.size()));
    nodes[prefix] = pid;
    return pid;
  };

  for (const auto& [tid, point, path] : entries) {
    Path prefix(path.begin(), path.end() - 1);
    auto leaf = get_or_create(prefix);
    if (!leaf.ok()) return leaf.status();
    auto handle = pool->GetMutable(*leaf, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView node(handle->get(), options.dims);
    PCUBE_CHECK_LE(path.back(), tree.m_) << "slot exceeds fanout";
    node.SetEntry(static_cast<uint32_t>(path.back() - 1),
                  RectF::Point(point), tid);
  }

  // Wire up internal entries bottom-up (deepest prefixes first) and set MBRs.
  for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
    const Path& prefix = it->first;
    if (prefix.empty()) continue;
    RectF mbr;
    {
      auto handle = pool->Get(it->second, IoCategory::kRtreeBlock);
      if (!handle.ok()) return handle.status();
      mbr = NodeView(handle->get(), options.dims).Mbr();
    }
    Path parent_prefix(prefix.begin(), prefix.end() - 1);
    auto parent = get_or_create(parent_prefix);
    if (!parent.ok()) return parent.status();
    auto handle = pool->GetMutable(*parent, IoCategory::kRtreeBlock);
    if (!handle.ok()) return handle.status();
    NodeView(handle->get(), options.dims)
        .SetEntry(static_cast<uint32_t>(prefix.back() - 1), mbr, it->second);
  }
  tree.num_entries_ = entries.size();
  return tree;
}

Status RStarTree::CheckStructure(std::vector<std::string>* problems) const {
  struct Pending {
    PageId pid;
    int expected_level;
    bool has_parent_rect;
    RectF parent_rect;
  };
  auto note = [problems](PageId pid, const std::string& what) {
    problems->push_back("rtree page " + std::to_string(pid) + ": " + what);
  };
  std::vector<Pending> stack;
  stack.push_back({root_, height_, false, RectF::Empty(options_.dims)});
  uint64_t nodes_seen = 0;
  uint64_t leaf_entries = 0;
  while (!stack.empty()) {
    Pending cur = stack.back();
    stack.pop_back();
    auto handle = pool_->Get(cur.pid, IoCategory::kRtreeBlock);
    if (!handle.ok()) {
      note(cur.pid, handle.status().ToString());
      continue;
    }
    ++nodes_seen;
    NodeView node(handle->get(), options_.dims);
    if (node.level() != cur.expected_level) {
      note(cur.pid, "level " + std::to_string(node.level()) + ", expected " +
                        std::to_string(cur.expected_level));
    }
    if (node.is_leaf() != (cur.expected_level == 0)) {
      note(cur.pid, "leaf flag disagrees with level");
    }
    uint32_t valid = 0;
    for (uint32_t s = 0; s < node.max_entries(); ++s) {
      if (!node.Valid(s)) continue;
      ++valid;
      RectF rect = node.GetRect(s);
      if (cur.has_parent_rect) {
        // Float equality is exact here: parent entries are computed as the
        // max/min over these very child values.
        for (int d = 0; d < options_.dims; ++d) {
          if (rect.min[d] < cur.parent_rect.min[d] ||
              rect.max[d] > cur.parent_rect.max[d]) {
            note(cur.pid, "entry " + std::to_string(s) +
                              " escapes its parent MBR");
            break;
          }
        }
      }
      if (node.is_leaf()) {
        ++leaf_entries;
      } else {
        stack.push_back({static_cast<PageId>(node.GetId(s)),
                         cur.expected_level - 1, true, rect});
      }
    }
    if (valid != node.count()) {
      note(cur.pid, "header count " + std::to_string(node.count()) +
                        " but " + std::to_string(valid) + " valid slots");
    }
  }
  if (nodes_seen != num_pages_) {
    problems->push_back("rtree: visited " + std::to_string(nodes_seen) +
                        " nodes, catalog says " + std::to_string(num_pages_));
  }
  if (leaf_entries != num_entries_) {
    problems->push_back("rtree: found " + std::to_string(leaf_entries) +
                        " leaf entries, catalog says " +
                        std::to_string(num_entries_));
  }
  return Status::OK();
}

}  // namespace pcube
