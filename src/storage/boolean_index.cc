#include "storage/boolean_index.h"

#include <algorithm>

namespace pcube {

Result<BooleanIndex> BooleanIndex::Build(BufferPool* pool, const Dataset& data,
                                         int dim) {
  // Keys are <value, tid>: ascending by construction within a value, and the
  // tid in the low bits keeps keys strictly ascending overall after sorting.
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(data.num_tuples());
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    entries.emplace_back(MakeKey(data.BoolValue(t, dim), t), t);
  }
  std::sort(entries.begin(), entries.end());
  auto tree = BPlusTree::BulkLoad(pool, entries);
  if (!tree.ok()) return tree.status();
  BooleanIndex index(std::move(*tree), dim);
  index.next_seq_ = data.num_tuples();
  return index;
}

Status BooleanIndex::Add(uint32_t value, TupleId tid) {
  return tree_.Insert(MakeKey(value, next_seq_++), tid);
}

Result<std::vector<TupleId>> BooleanIndex::Lookup(uint32_t value) const {
  std::vector<TupleId> out;
  Status st = tree_.RangeScan(MakeKey(value, 0),
                              MakeKey(value, (uint64_t{1} << kSeqBits) - 1),
                              [&](uint64_t, uint64_t tid) {
                                out.push_back(tid);
                                return true;
                              });
  if (!st.ok()) return st;
  return out;
}

Result<uint64_t> BooleanIndex::Count(uint32_t value) const {
  uint64_t n = 0;
  Status st = tree_.RangeScan(MakeKey(value, 0),
                              MakeKey(value, (uint64_t{1} << kSeqBits) - 1),
                              [&](uint64_t, uint64_t) {
                                ++n;
                                return true;
                              });
  if (!st.ok()) return st;
  return n;
}

}  // namespace pcube
