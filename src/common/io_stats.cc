#include "common/io_stats.h"

#include <sstream>

namespace pcube {

namespace {
const char* kCategoryNames[] = {"rtree", "signature", "bool-verify", "btree",
                                "heapfile"};
}  // namespace

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{";
  bool first = true;
  for (int i = 0; i < static_cast<int>(IoCategory::kNumCategories); ++i) {
    uint64_t r = reads[i].load(std::memory_order_relaxed);
    uint64_t w = writes[i].load(std::memory_order_relaxed);
    if (r == 0 && w == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << kCategoryNames[i] << ": r=" << r << " w=" << w;
  }
  os << "}";
  return os.str();
}

}  // namespace pcube
