// Positive fixtures for pcube-ignore-error-rationale: a bare
// `.IgnoreError()` with no rationale comment nearby. The expect-lint
// markers themselves are invisible to the check, so a marker can never
// double as the missing rationale.
#include "lint_fixture_support.h"

namespace pcube {

Status Fallible();

void DropStatusesSilently() {
  Fallible().IgnoreError();  // expect-lint: pcube-ignore-error-rationale

  Status s = Fallible();
  s.IgnoreError();  // expect-lint: pcube-ignore-error-rationale

  const Status* p = &s;
  p->IgnoreError();  // expect-lint: pcube-ignore-error-rationale
}

}  // namespace pcube
