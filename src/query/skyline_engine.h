// Skyline query processing with Algorithm 1 (paper §V.A): branch-and-bound
// over the R-tree in ascending d(n) = coordinate-sum order [9], pruning each
// candidate first by domination against the skyline found so far, then by
// the boolean probe (signatures). Entries pruned by domination go to d_list,
// entries pruned by the boolean predicate to b_list — the seeds of
// drill-down / roll-up queries (Lemma 2, incremental.h).
#pragma once

#include <optional>

#include "core/probe.h"
#include "query/query_types.h"
#include "query/verifier.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// Configuration for one skyline query.
struct SkylineQueryOptions {
  /// Preference dimensions the skyline is computed on (indices into the
  /// tree's dimensions); empty = all.
  std::vector<int> pref_dims;
  /// Dynamic skyline (paper §VII, after [9]): when non-empty, dominance is
  /// evaluated on the transformed coordinates |x_d - origin_d| — "closer to
  /// my reference point in every respect". Must have one entry per tree
  /// dimension.
  std::vector<float> origin;
  /// k-skyband: report the objects dominated by fewer than k others
  /// (k = 1 is the ordinary skyline).
  size_t skyband_k = 1;
};

/// Executes skyline queries against one R-tree + boolean probe.
class SkylineEngine {
 public:
  /// `probe` supplies boolean pruning (TrueProbe for the Domination
  /// baseline). `verifier`, when non-null, re-checks every accepted data
  /// object against the base table (minimal probing [3]; also required for
  /// non-exact probes). Both must outlive the engine.
  SkylineEngine(const RStarTree* tree, BooleanProbe* probe,
                const TupleVerifier* verifier,
                SkylineQueryOptions options = {});

  /// Runs Algorithm 1 from the root.
  Result<SkylineOutput> Run();

  /// Runs Algorithm 1 with a reconstructed candidate heap (Lemma 2): the
  /// seed replaces the root, everything else is unchanged.
  Result<SkylineOutput> RunFrom(const std::vector<SearchEntry>& seed);

 private:
  double EntryKey(const RectF& rect) const;
  /// Optimistic transformed coordinate of `rect` on dimension d: the least
  /// value any point inside can attain (identity without an origin; minimal
  /// |x - origin_d| with one).
  double LowCoord(const RectF& rect, int d) const;
  /// True when the entry's optimistic corner is dominated by >= skyband_k
  /// current results.
  bool Dominated(const RectF& rect) const;
  /// Applies the paper's prune() (lines 14-20): preference first, boolean
  /// second; files the entry into the appropriate list.
  Result<bool> Prune(const SearchEntry& e);

  const RStarTree* tree_;
  BooleanProbe* probe_;
  const TupleVerifier* verifier_;
  SkylineQueryOptions options_;
  std::vector<int> dims_;
  SkylineOutput out_;
};

}  // namespace pcube
