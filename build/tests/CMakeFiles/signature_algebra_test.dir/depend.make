# Empty dependencies file for signature_algebra_test.
# This may be replaced when dependencies are built.
