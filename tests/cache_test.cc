// Two-level query cache tests (cache/): L1 semantic result cache semantics
// — exact repeats, top-k truncation, containment reuse (skyline Lemma 2
// drill-down, top-k filter pass), epoch staleness after Fig. 7 incremental
// maintenance, capacity eviction — plus the L2 fragment cache's
// decode-once behaviour, plan-hint bypass, and the corruption regression:
// degraded answers must never populate the result cache.
// Run under TSan and ASan by scripts/ci.sh.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/epoch.h"
#include "cache/fragment_cache.h"
#include "cache/result_cache.h"
#include "common/metrics.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/planner.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Default().GetCounter(name)->Value();
}

std::unique_ptr<Workbench> BuildBench(WorkbenchOptions options = {},
                                      uint64_t rows = 4000) {
  SyntheticConfig config;
  config.num_tuples = rows;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 11;
  auto wb = Workbench::Build(GenerateSynthetic(config), std::move(options));
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();
  return std::move(*wb);
}

/// Appends one tuple through the write path (Apply routes it into the
/// Fig. 7 incremental maintenance, falling back to a rebuild when the root
/// splits, which invalidates everything anyway).
void InsertTuple(Workbench* wb, std::vector<uint32_t> bool_row,
                 std::vector<float> pref) {
  WriteBatch batch;
  batch.inserts.push_back({std::move(bool_row), std::move(pref)});
  auto result = wb->Apply(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

// --------------------------------------------------------------- L1 basics

TEST(ResultCacheTest, ExactSkylineRepeatHitsByteIdentical) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  PredicateSet preds{{0, 3}};
  QueryRequest request = QueryRequest::Skyline(preds);

  auto r1 = planner.Run(request);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->cache, CacheOutcome::kMiss);
  EXPECT_EQ(r1->tids, NaiveSkyline(wb->data(), preds));
  EXPECT_EQ(wb->result_cache()->entries(), 1u);

  auto r2 = planner.Run(request);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->cache, CacheOutcome::kHit);
  EXPECT_EQ(r2->tids, r1->tids);
  // A hit reports the plan that produced the entry and does no page I/O.
  EXPECT_EQ(r2->estimate.choice, r1->estimate.choice);
  EXPECT_EQ(r2->io.TotalReads(), 0u);
}

TEST(ResultCacheTest, ExactTopKRepeatHitsByteIdentical) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  PredicateSet preds{{1, 5}};
  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.7, 0.3});
  QueryRequest request = QueryRequest::TopK(preds, f, 10);

  auto r1 = planner.Run(request);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->cache, CacheOutcome::kMiss);
  auto naive = NaiveTopK(wb->data(), preds, *f, 10);
  ASSERT_EQ(r1->tids.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(r1->tids[i], naive[i].first);
    EXPECT_DOUBLE_EQ(r1->scores[i], naive[i].second);
  }

  auto r2 = planner.Run(request);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->cache, CacheOutcome::kHit);
  EXPECT_EQ(r2->tids, r1->tids);
  EXPECT_EQ(r2->scores, r1->scores);  // bit-exact, not approximately equal
}

TEST(ResultCacheTest, TopKTruncationServesSmallerK) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  PredicateSet preds{{2, 2}};
  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.5, 0.5});

  auto r10 = planner.Run(QueryRequest::TopK(preds, f, 10));
  ASSERT_TRUE(r10.ok()) << r10.status().ToString();
  EXPECT_EQ(r10->cache, CacheOutcome::kMiss);

  // Smaller k: answered by prefix of the cached 10-list.
  auto r4 = planner.Run(QueryRequest::TopK(preds, f, 4));
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();
  EXPECT_EQ(r4->cache, CacheOutcome::kHit);
  ASSERT_EQ(r4->tids.size(), 4u);
  EXPECT_EQ(r4->tids,
            std::vector<TupleId>(r10->tids.begin(), r10->tids.begin() + 4));
  EXPECT_EQ(r4->scores,
            std::vector<double>(r10->scores.begin(), r10->scores.begin() + 4));

  // Larger k cannot be served (the entry was cut off at 10): re-executes
  // and replaces the family's entry.
  auto r16 = planner.Run(QueryRequest::TopK(preds, f, 16));
  ASSERT_TRUE(r16.ok()) << r16.status().ToString();
  EXPECT_EQ(r16->cache, CacheOutcome::kMiss);
  ASSERT_EQ(r16->tids.size(), 16u);

  // The replaced entry serves both the exact repeat and the original k.
  auto again16 = planner.Run(QueryRequest::TopK(preds, f, 16));
  ASSERT_TRUE(again16.ok());
  EXPECT_EQ(again16->cache, CacheOutcome::kHit);
  auto again10 = planner.Run(QueryRequest::TopK(preds, f, 10));
  ASSERT_TRUE(again10.ok());
  EXPECT_EQ(again10->cache, CacheOutcome::kHit);
  EXPECT_EQ(again10->tids, r10->tids);
}

TEST(ResultCacheTest, ExhaustedTopKAnswersAnyLargerK) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  // Two predicates match ~ rows / 64 tuples, far fewer than k: the run
  // returns every matching tuple and the entry is marked exhausted.
  PredicateSet preds{{0, 3}, {1, 5}};
  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.4, 0.6});

  auto all = planner.Run(QueryRequest::TopK(preds, f, 10000));
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->cache, CacheOutcome::kMiss);
  ASSERT_LT(all->tids.size(), 10000u);  // ran dry — the list is complete

  // An exhaustive list answers any k, including one above the entry's.
  auto more = planner.Run(QueryRequest::TopK(preds, f, 20000));
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  EXPECT_EQ(more->cache, CacheOutcome::kHit);
  EXPECT_EQ(more->tids, all->tids);
}

// --------------------------------------------------------- L1 containment

TEST(ResultCacheTest, SkylineContainmentRunsDrillDownNotFilter) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  PredicateSet broad{{0, 3}};
  PredicateSet narrow{{0, 3}, {1, 5}};

  auto base = planner.Run(QueryRequest::Skyline(broad));
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->cache, CacheOutcome::kMiss);

  uint64_t containment_before =
      CounterValue("pcube_result_cache_containment_total");
  auto drilled = planner.Run(QueryRequest::Skyline(narrow));
  ASSERT_TRUE(drilled.ok()) << drilled.status().ToString();
  EXPECT_EQ(drilled->cache, CacheOutcome::kContainment);
  EXPECT_EQ(CounterValue("pcube_result_cache_containment_total"),
            containment_before + 1);
  // The drill-down must produce exactly the fresh answer — filtering the
  // broad skyline would lose tuples whose dominators stop qualifying.
  EXPECT_EQ(drilled->tids, NaiveSkyline(wb->data(), narrow));

  // The drilled answer was published: the narrow query now hits exactly.
  auto repeat = planner.Run(QueryRequest::Skyline(narrow));
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->cache, CacheOutcome::kHit);
  EXPECT_EQ(repeat->tids, drilled->tids);
}

TEST(ResultCacheTest, TopKContainmentFiltersCachedList) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  PredicateSet broad{{0, 3}};
  PredicateSet narrow{{0, 3}, {1, 5}};
  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.3, 0.7});

  auto base = planner.Run(QueryRequest::TopK(broad, f, 60));
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ(base->cache, CacheOutcome::kMiss);

  // The cached 60-list filtered by the extra predicate must keep >= 2
  // survivors for the reuse to be sound; the fixed seed guarantees it.
  auto narrow_naive = NaiveTopK(wb->data(), narrow, *f, 2);
  ASSERT_EQ(narrow_naive.size(), 2u);
  auto filtered = planner.Run(QueryRequest::TopK(narrow, f, 2));
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  EXPECT_EQ(filtered->cache, CacheOutcome::kContainment);
  ASSERT_EQ(filtered->tids.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(filtered->tids[i], narrow_naive[i].first);
    EXPECT_DOUBLE_EQ(filtered->scores[i], narrow_naive[i].second);
  }
}

// ------------------------------------------------------ epoch invalidation

TEST(ResultCacheTest, IncrementalInsertInvalidatesAffectedEntries) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  PredicateSet preds{{0, 3}};
  QueryRequest request = QueryRequest::Skyline(preds);

  ASSERT_TRUE(planner.Run(request).ok());
  auto warm = planner.Run(request);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache, CacheOutcome::kHit);

  // Fig. 7 maintenance: the new tuple lands in cell (0,3), bumping its
  // epoch; the cached entry must not survive.
  ASSERT_NO_FATAL_FAILURE(InsertTuple(wb.get(), {3, 1, 2}, {0.001f, 0.001f}));

  uint64_t stale_before = CounterValue("pcube_result_cache_stale_total");
  auto after = planner.Run(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->cache, CacheOutcome::kHit);
  EXPECT_EQ(CounterValue("pcube_result_cache_stale_total"), stale_before + 1);
  // The re-executed answer sees the new tuple (its point is near the
  // origin, so it must enter this skyline).
  EXPECT_EQ(after->tids, NaiveSkyline(wb->data(), preds));
  EXPECT_NE(after->tids, warm->tids);

  auto rewarmed = planner.Run(request);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_EQ(rewarmed->cache, CacheOutcome::kHit);
}

TEST(ResultCacheUnitTest, OnlyAffectedCellsGoStale) {
  SyntheticConfig config;
  config.num_tuples = 64;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 7;
  Dataset data = GenerateSynthetic(config);

  DataEpoch epoch;
  ResultCache cache(1 << 20, &epoch, /*enable_containment=*/false);
  QueryRequest qa = QueryRequest::Skyline({{0, 3}});
  QueryRequest qb = QueryRequest::Skyline({{0, 4}});
  QueryResponse resp;
  resp.tids = {1, 2, 3};
  cache.Insert(qa, resp, nullptr, nullptr, cache.SnapshotStamps(qa.preds));
  cache.Insert(qb, resp, nullptr, nullptr, cache.SnapshotStamps(qb.preds));
  EXPECT_EQ(cache.Find(qa, data).outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.Find(qb, data).outcome, CacheOutcome::kHit);

  epoch.BumpCells({AtomicCellId(0, 3)});

  // qa's footprint was bumped — lazily evicted; qb's cell was not touched,
  // so its answer stays valid (tids don't depend on the tree shape).
  EXPECT_EQ(cache.Find(qa, data).outcome, CacheOutcome::kMiss);
  EXPECT_EQ(cache.Find(qb, data).outcome, CacheOutcome::kHit);
  EXPECT_EQ(cache.entries(), 1u);
}

// ------------------------------------------------------- capacity / bypass

TEST(ResultCacheUnitTest, EvictionKeepsBytesWithinBudget) {
  SyntheticConfig config;
  config.num_tuples = 64;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 7;
  Dataset data = GenerateSynthetic(config);

  DataEpoch epoch;
  const size_t budget = 64 * 1024;
  ResultCache cache(budget, &epoch, /*enable_containment=*/false);
  uint64_t evictions_before = CounterValue("pcube_result_cache_evictions_total");

  QueryResponse fat;
  fat.tids.resize(500);  // ~4 KiB per entry; 64 entries overflow the budget
  for (size_t i = 0; i < fat.tids.size(); ++i) fat.tids[i] = i;
  QueryRequest last;
  for (uint32_t v = 0; v < 8; ++v) {
    for (uint32_t w = 0; w < 8; ++w) {
      last = QueryRequest::Skyline({{0, v}, {1, w}});
      cache.Insert(last, fat, nullptr, nullptr,
                   cache.SnapshotStamps(last.preds));
    }
  }
  EXPECT_LE(cache.bytes(), budget);
  EXPECT_LT(cache.entries(), 64u);
  EXPECT_GT(CounterValue("pcube_result_cache_evictions_total"),
            evictions_before);
  // The most recent insert is MRU of its shard and must have survived.
  EXPECT_EQ(cache.Find(last, data).outcome, CacheOutcome::kHit);
}

TEST(ResultCacheTest, ForcedPlanHintBypassesBothDirections) {
  auto wb = BuildBench();
  QueryPlanner planner(wb.get());
  QueryRequest request = QueryRequest::Skyline({{0, 3}});
  request.hint = PlanHint::kSignature;

  uint64_t bypass_before = CounterValue("pcube_result_cache_bypass_total");
  auto r1 = planner.Run(request);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->cache, CacheOutcome::kBypass);
  auto r2 = planner.Run(request);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->cache, CacheOutcome::kBypass);  // never served from cache
  EXPECT_EQ(CounterValue("pcube_result_cache_bypass_total"),
            bypass_before + 2);
  EXPECT_EQ(wb->result_cache()->entries(), 0u);  // ...and never published

  // The auto-plan query finds nothing cached.
  auto r3 = planner.Run(QueryRequest::Skyline({{0, 3}}));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->cache, CacheOutcome::kMiss);
  EXPECT_EQ(r3->tids, r1->tids);
}

TEST(ResultCacheTest, DisabledCacheLeavesQueriesUntouched) {
  WorkbenchOptions options;
  options.result_cache_mb = 0;
  options.fragment_cache_mb = 0;
  auto wb = BuildBench(std::move(options));
  EXPECT_EQ(wb->result_cache(), nullptr);
  EXPECT_EQ(wb->fragment_cache(), nullptr);
  QueryPlanner planner(wb.get());
  auto r1 = planner.Run(QueryRequest::Skyline({{0, 3}}));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->cache, CacheOutcome::kNone);
  auto r2 = planner.Run(QueryRequest::Skyline({{0, 3}}));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->cache, CacheOutcome::kNone);
  EXPECT_EQ(r2->tids, r1->tids);
}

// ------------------------------------------------- degradation regression

/// Flips one byte of every signature data page BELOW the checksum layer
/// (same fault as fault_injection_test.cc) so signature reads fail and the
/// planner degrades to the boolean-first plan.
void CorruptSignaturePages(Workbench* wb) {
  ASSERT_NE(wb->checksums(), nullptr);
  PageManager* below = wb->checksums()->inner();
  auto pages = wb->cube()->store().DataPages();
  ASSERT_TRUE(pages.ok()) << pages.status().ToString();
  ASSERT_FALSE(pages->empty());
  for (PageId pid : *pages) {
    Page page;
    ASSERT_TRUE(below->Read(pid, &page).ok());
    page.data()[17] ^= 0xFF;
    ASSERT_TRUE(below->Write(pid, page).ok());
  }
}

TEST(ResultCacheTest, DegradedAnswersAreNeverCached) {
  // PR 3's corruption gate with the cache ENABLED: a boolean-first answer
  // computed around corrupt signature pages must not be published — it
  // would outlive the corruption and mask it from later queries.
  auto wb = BuildBench();
  ASSERT_NO_FATAL_FAILURE(CorruptSignaturePages(wb.get()));
  ASSERT_TRUE(wb->ColdStart().ok());

  QueryPlanner planner(wb.get());
  PredicateSet preds{{0, 3}};
  uint64_t inserts_before = CounterValue("pcube_result_cache_inserts_total");

  auto r1 = planner.Run(QueryRequest::Skyline(preds));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1->degraded);
  EXPECT_EQ(r1->cache, CacheOutcome::kMiss);
  EXPECT_EQ(r1->tids, NaiveSkyline(wb->data(), preds));
  EXPECT_EQ(wb->result_cache()->entries(), 0u);

  // The repeat must degrade again — not hit a cached degraded answer.
  auto r2 = planner.Run(QueryRequest::Skyline(preds));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2->degraded);
  EXPECT_EQ(r2->cache, CacheOutcome::kMiss);
  EXPECT_EQ(r2->tids, r1->tids);
  EXPECT_EQ(wb->result_cache()->entries(), 0u);
  EXPECT_EQ(CounterValue("pcube_result_cache_inserts_total"), inserts_before);
}

// ------------------------------------------------------------ L2 fragments

TEST(FragmentCacheTest, DecodeOnceAcrossColdStarts) {
  auto wb = BuildBench();
  PredicateSet preds{{0, 3}};

  ASSERT_TRUE(wb->ColdStart().ok());
  auto cold = wb->SignatureSkyline(preds);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  IoStats first = wb->IoSince();
  EXPECT_GT(first.ReadCount(IoCategory::kSignature), 0u);

  // Empty the buffer pool again: without L2 the rerun would re-fetch and
  // re-decode the signature pages; the fragment cache sits above the pool
  // and replays the decoded nodes instead.
  ASSERT_TRUE(wb->ColdStart().ok());
  auto warm = wb->SignatureSkyline(preds);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  IoStats second = wb->IoSince();
  EXPECT_EQ(second.ReadCount(IoCategory::kSignature), 0u);
  EXPECT_GT(wb->fragment_cache()->entries(), 0u);

  // Same answer either way.
  ASSERT_EQ(warm->skyline.size(), cold->skyline.size());
  for (size_t i = 0; i < warm->skyline.size(); ++i) {
    EXPECT_EQ(warm->skyline[i].id, cold->skyline[i].id);
  }
}

TEST(FragmentCacheUnitTest, NegativeEntriesAndEpochStaleness) {
  DataEpoch epoch;
  FragmentCache cache(1 << 20, &epoch);
  const CellId cell = AtomicCellId(1, 4);

  EXPECT_EQ(cache.Lookup(cell, 5), nullptr);
  cache.Insert(cell, 5, /*present=*/true, {}, epoch.OfCell(cell));
  // Negative entry: the store has no partial for SID 6 — cache that too.
  cache.Insert(cell, 6, /*present=*/false, {}, epoch.OfCell(cell));

  auto hit = cache.Lookup(cell, 5);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->present);
  auto negative = cache.Lookup(cell, 6);
  ASSERT_NE(negative, nullptr);
  EXPECT_FALSE(negative->present);
  EXPECT_EQ(cache.entries(), 2u);

  uint64_t stale_before = CounterValue("pcube_fragment_cache_stale_total");
  epoch.BumpCells({cell});
  EXPECT_EQ(cache.Lookup(cell, 5), nullptr);
  EXPECT_EQ(cache.Lookup(cell, 6), nullptr);
  EXPECT_EQ(CounterValue("pcube_fragment_cache_stale_total"),
            stale_before + 2);
  EXPECT_EQ(cache.entries(), 0u);

  // A different cell is unaffected by the bump.
  const CellId other = AtomicCellId(0, 0);
  cache.Insert(other, 1, true, {}, epoch.OfCell(other));
  EXPECT_NE(cache.Lookup(other, 1), nullptr);
}

}  // namespace
}  // namespace pcube
