// In-memory signature tree (paper §IV.B.1). A signature summarises, for one
// cube cell, which regions of the shared R-tree partition contain tuples of
// that cell: it mirrors the R-tree's topology, holding one bit array per
// node in which bit b (1-based, matching slot b of the R-tree node) is 1 iff
// the subtree under that slot contains at least one tuple of the cell. Bits
// of leaf-level arrays address tuple entries directly, which is what makes
// signature-based boolean checking exact (paper §V.A).
//
// This class is the authoritative, uncompressed form used by the builder,
// the algebra (union/intersection) and incremental maintenance; the codec in
// signature_codec.h turns it into page-sized compressed partial signatures.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "bitmap/bitvector.h"
#include "rtree/path.h"

namespace pcube {

/// One node of a signature tree: a bit array over the R-tree node's slots
/// plus child signature nodes for the slots that are internal and set.
struct SignatureNode {
  BitVector bits;
  /// Keyed by 1-based slot; present only below set bits of internal levels.
  std::map<uint16_t, std::unique_ptr<SignatureNode>> children;
};

/// Signature of one cell over an R-tree with fanout `M` and `levels` node
/// levels (= tuple path length; leaf arrays are at depth levels-1).
class Signature {
 public:
  Signature(uint32_t M, int levels) : m_(M), levels_(levels) {}

  Signature(Signature&&) = default;
  Signature& operator=(Signature&&) = default;

  uint32_t fanout() const { return m_; }
  int levels() const { return levels_; }

  /// Marks tuple path `p` (length == levels) as present: sets the bit at
  /// every level and materialises intermediate nodes.
  void SetPath(const Path& p);

  /// Clears the leaf bit of tuple path `p` and propagates emptiness upward
  /// (a node whose array becomes all-zero is removed and its parent bit
  /// cleared) — the exact inverse of SetPath.
  void ClearPath(const Path& p);

  /// True iff the node/tuple addressed by `p` (any length in [1, levels])
  /// is marked present.
  bool Test(const Path& p) const;

  /// True when no bit is set.
  bool Empty() const { return !root_.bits.AnySet() && root_.children.empty(); }

  const SignatureNode& root() const { return root_; }
  SignatureNode& mutable_root() { return root_; }

  /// Node addressed by path prefix `p` (empty = root), or nullptr.
  const SignatureNode* FindNode(const Path& p) const;

  /// Total set bits across all arrays (for stats/tests).
  uint64_t CountBits() const;

  /// Number of materialised arrays (nodes).
  uint64_t CountNodes() const;

  bool Equals(const Signature& other) const;

  /// Multi-line dump ("<path>: bits") for tests and debugging.
  std::string ToString() const;

  /// Deep copy (signatures are otherwise move-only to avoid accidents).
  Signature Clone() const;

 private:
  static void CloneInto(const SignatureNode& src, SignatureNode* dst);

  uint32_t m_;
  int levels_;
  SignatureNode root_;
};

}  // namespace pcube
