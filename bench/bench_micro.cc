// Micro-benchmarks for the P-Cube building blocks: bitmap codecs, signature
// probing, B+-tree operations, R-tree node access, and the SIMD kernel
// layer of DESIGN.md §12 (intersect / union / cardinality / dominance,
// scalar vs vector, several densities). These quantify the constants behind
// the figure-level results (e.g. why Csig << CR-tree).
//
// Smoke mode: PCUBE_SIMD_SMOKE=1 skips the google-benchmark harness and
// instead times the kernel pairs directly (best-of-N so the measurement
// survives a noisy single-core CI box), writes BENCH_simd.json to the
// working directory, and — when the active dispatch level is AVX2 — exits
// non-zero unless verbatim intersection beats scalar by >= 2x and batched
// dominance by >= 1.5x. On scalar-only machines (or PCUBE_SIMD_LEVEL=scalar
// / -DPCUBE_SIMD=OFF builds) the speedups are report-only. scripts/ci.sh
// runs this as the `simd` phase.
#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

#include "bitmap/codec.h"
#include "common/simd/aligned.h"
#include "common/simd/simd.h"
#include "common/simd/word_kernels.h"
#include "core/signature_cursor.h"
#include "query/dominance_kernels.h"

namespace pcube::bench {
namespace {

void BM_BitmapEncode(benchmark::State& state) {
  Random rng(1);
  size_t nbits = static_cast<size_t>(state.range(0));
  int density_pct = static_cast<int>(state.range(1));
  BitVector bits(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    if (rng.Uniform(100) < static_cast<uint64_t>(density_pct)) bits.Set(i);
  }
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    BitmapCodec::Encode(bits, &buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_BitmapEncode)
    ->Args({128, 5})
    ->Args({128, 50})
    ->Args({2048, 5})
    ->Args({2048, 50});

void BM_BitmapDecode(benchmark::State& state) {
  Random rng(2);
  size_t nbits = static_cast<size_t>(state.range(0));
  BitVector bits(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    if (rng.Uniform(100) < 20) bits.Set(i);
  }
  std::vector<uint8_t> buf;
  BitmapCodec::Encode(bits, &buf);
  for (auto _ : state) {
    size_t offset = 0;
    BitVector out;
    PCUBE_CHECK_OK(BitmapCodec::Decode(buf.data(), buf.size(), &offset, &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BitmapDecode)->Arg(128)->Arg(2048);

void BM_SignatureProbe(benchmark::State& state) {
  Workbench* wb = CachedWorkbench2("micro", [] {
    return GenerateSynthetic(PaperConfig(50000));
  });
  auto probe = wb->cube()->MakeProbe(OnePredicate(100));
  PCUBE_CHECK(probe.ok());
  // Collect some real tuple paths to probe.
  std::vector<Path> paths;
  PCUBE_CHECK_OK(wb->tree()->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        if (tid % 997 == 0) paths.push_back(p);
      }));
  size_t i = 0;
  for (auto _ : state) {
    auto r = (*probe)->Test(paths[i++ % paths.size()]);
    PCUBE_CHECK(r.ok());
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_SignatureProbe);

void BM_BPlusTreeGet(benchmark::State& state) {
  static MemoryPageManager* pm = new MemoryPageManager();
  static IoStats* stats = new IoStats();
  static BufferPool* pool = new BufferPool(pm, 1 << 14, stats);
  static BPlusTree* tree = [] {
    std::vector<std::pair<uint64_t, uint64_t>> sorted;
    for (uint64_t k = 0; k < 200000; ++k) sorted.emplace_back(k * 3, k);
    auto t = BPlusTree::BulkLoad(pool, sorted);
    PCUBE_CHECK(t.ok());
    return new BPlusTree(std::move(*t));
  }();
  Random rng(3);
  for (auto _ : state) {
    uint64_t k = rng.Uniform(200000) * 3;
    auto v = tree->Get(k);
    PCUBE_CHECK(v.ok());
    benchmark::DoNotOptimize(*v);
  }
}
BENCHMARK(BM_BPlusTreeGet);

void BM_RTreeNodeRead(benchmark::State& state) {
  Workbench* wb = CachedWorkbench2("micro", [] {
    return GenerateSynthetic(PaperConfig(50000));
  });
  for (auto _ : state) {
    auto handle = wb->tree()->ReadNode(wb->tree()->root());
    PCUBE_CHECK(handle.ok());
    benchmark::DoNotOptimize(handle->get());
  }
}
BENCHMARK(BM_RTreeNodeRead);

void BM_SkylineQueryEndToEnd(benchmark::State& state) {
  Workbench* wb = CachedWorkbench2("micro", [] {
    return GenerateSynthetic(PaperConfig(50000));
  });
  PredicateSet preds = OnePredicate(100);
  for (auto _ : state) {
    auto out = wb->SignatureSkyline(preds);
    PCUBE_CHECK(out.ok());
    benchmark::DoNotOptimize(out->skyline.size());
  }
}
BENCHMARK(BM_SkylineQueryEndToEnd)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ SIMD kernels

simd::AlignedVector<uint64_t> RandomKernelWords(Random* rng, size_t n,
                                                int density_pct) {
  simd::AlignedVector<uint64_t> w(n);
  for (auto& x : w) {
    uint64_t v = 0;
    for (int bit = 0; bit < 64; ++bit) {
      if (rng->Uniform(100) < static_cast<uint64_t>(density_pct)) {
        v |= uint64_t{1} << bit;
      }
    }
    x = v;
  }
  return w;
}

// range(0) = words, range(1) = 0 scalar / 1 vector.
void BM_KernelIntersect(benchmark::State& state) {
  bool vec = state.range(1) != 0;
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (vec && !simd::CpuSupportsAvx2()) {
    state.SkipWithError("no AVX2 on this CPU");
    return;
  }
#else
  if (vec) {
    state.SkipWithError("SIMD compiled out");
    return;
  }
#endif
  Random rng(17);
  size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomKernelWords(&rng, n, 50);
  auto b = RandomKernelWords(&rng, n, 50);
  simd::AlignedVector<uint64_t> dst(n);
  for (auto _ : state) {
    bool any;
#if defined(PCUBE_SIMD_HAVE_AVX2)
    if (vec) {
      any = simd::AndWordsAvx2(dst.data(), a.data(), b.data(), n);
    } else {
      any = simd::AndWordsScalar(dst.data(), a.data(), b.data(), n);
    }
#else
    any = simd::AndWordsScalar(dst.data(), a.data(), b.data(), n);
#endif
    benchmark::DoNotOptimize(any);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 8 * 2);
}
BENCHMARK(BM_KernelIntersect)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

void BM_KernelUnion(benchmark::State& state) {
  bool vec = state.range(1) != 0;
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (vec && !simd::CpuSupportsAvx2()) {
    state.SkipWithError("no AVX2 on this CPU");
    return;
  }
#else
  if (vec) {
    state.SkipWithError("SIMD compiled out");
    return;
  }
#endif
  Random rng(18);
  size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomKernelWords(&rng, n, 5);
  auto b = RandomKernelWords(&rng, n, 5);
  simd::AlignedVector<uint64_t> dst(n);
  for (auto _ : state) {
#if defined(PCUBE_SIMD_HAVE_AVX2)
    if (vec) {
      simd::OrWordsAvx2(dst.data(), a.data(), b.data(), n);
    } else {
      simd::OrWordsScalar(dst.data(), a.data(), b.data(), n);
    }
#else
    simd::OrWordsScalar(dst.data(), a.data(), b.data(), n);
#endif
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_KernelUnion)->Args({1024, 0})->Args({1024, 1});

void BM_KernelCardinality(benchmark::State& state) {
  bool vec = state.range(1) != 0;
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (vec && !simd::CpuSupportsAvx2()) {
    state.SkipWithError("no AVX2 on this CPU");
    return;
  }
#else
  if (vec) {
    state.SkipWithError("SIMD compiled out");
    return;
  }
#endif
  Random rng(19);
  size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomKernelWords(&rng, n, 50);
  for (auto _ : state) {
    uint64_t c;
#if defined(PCUBE_SIMD_HAVE_AVX2)
    c = vec ? simd::PopcountWordsAvx2(a.data(), n)
            : simd::PopcountWordsScalar(a.data(), n);
#else
    c = simd::PopcountWordsScalar(a.data(), n);
#endif
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_KernelCardinality)->Args({1024, 0})->Args({1024, 1});

// range(0) = skyline members, range(1) = 0 scalar / 1 vector. Candidate is
// dominated by every member and the limit is never reached, so both paths
// do the full streaming pass (worst case, no early exit).
void BM_KernelDominance(benchmark::State& state) {
  bool vec = state.range(1) != 0;
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (vec && !simd::CpuSupportsAvx2()) {
    state.SkipWithError("no AVX2 on this CPU");
    return;
  }
#else
  if (vec) {
    state.SkipWithError("SIMD compiled out");
    return;
  }
#endif
  Random rng(20);
  const size_t dims = 4;
  size_t members = static_cast<size_t>(state.range(0));
  DominanceWindow window(dims);
  double coords[dims];
  for (size_t i = 0; i < members; ++i) {
    for (auto& c : coords) c = rng.NextDouble();
    window.Append(coords);
  }
  double cand[dims] = {2.0, 2.0, 2.0, 2.0};
  for (auto _ : state) {
    size_t c;
#if defined(PCUBE_SIMD_HAVE_AVX2)
    c = vec ? window.CountDominatorsAvx2(cand, members + 1)
            : window.CountDominatorsScalar(cand, members + 1);
#else
    c = window.CountDominatorsScalar(cand, members + 1);
#endif
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_KernelDominance)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

// WAH-aware encoded intersection vs decode-both-then-AND, at a runs-heavy
// density (where fill skipping pays) and a uniform one (literal fallback).
void BM_EncodedIntersect(benchmark::State& state) {
  Random rng(21);
  size_t nbits = 16384;
  bool runny = state.range(0) != 0;
  bool fused = state.range(1) != 0;
  BitVector a(nbits), b(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    if (runny) {
      // 1/64 chance per aligned 512-bit block: long zero runs dominate.
      if ((i & 511) == 0 && rng.Uniform(64) == 0) a.Set(i);
      if ((i & 511) == 0 && rng.Uniform(64) == 0) b.Set(i);
    } else {
      if (rng.Uniform(100) < 30) a.Set(i);
      if (rng.Uniform(100) < 30) b.Set(i);
    }
  }
  std::vector<uint8_t> buf_a, buf_b;
  BitmapCodec::EncodeWith(BitmapScheme::kWah, a, &buf_a);
  BitmapCodec::EncodeWith(BitmapScheme::kWah, b, &buf_b);
  for (auto _ : state) {
    size_t oa = 0, ob = 0;
    BitVector out;
    if (fused) {
      PCUBE_CHECK_OK(BitmapCodec::IntersectEncoded(buf_a.data(), buf_a.size(),
                                                   &oa, buf_b.data(),
                                                   buf_b.size(), &ob, &out));
    } else {
      BitVector other;
      PCUBE_CHECK_OK(BitmapCodec::Decode(buf_a.data(), buf_a.size(), &oa,
                                         &out));
      PCUBE_CHECK_OK(BitmapCodec::Decode(buf_b.data(), buf_b.size(), &ob,
                                         &other));
      out.InplaceAnd(other);
    }
    benchmark::DoNotOptimize(out.words().data());
  }
}
BENCHMARK(BM_EncodedIntersect)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({0, 1});

// ------------------------------------------------------- SIMD smoke gate

/// Minimum of `reps` timings of `iters` calls of `body` — seconds per call.
template <typename Body>
double BestSecondsPerCall(int reps, int iters, Body body) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (int i = 0; i < iters; ++i) body();
    best = std::min(best, t.ElapsedSeconds() / iters);
  }
  return best;
}

int RunSimdSmoke() {
  const int kReps = 9;
  const int kIters = 4000;
  const size_t kWords = 1024;  // 64 Kbit: L1-resident, past all tail paths
  Random rng(29);
  auto a = RandomKernelWords(&rng, kWords, 50);
  auto b = RandomKernelWords(&rng, kWords, 50);
  simd::AlignedVector<uint64_t> dst(kWords);

  const size_t kMembers = 512;
  const size_t kDims = 4;
  DominanceWindow window(kDims);
  double coords[kDims];
  for (size_t i = 0; i < kMembers; ++i) {
    for (auto& c : coords) c = rng.NextDouble();
    window.Append(coords);
  }
  double cand[kDims] = {2.0, 2.0, 2.0, 2.0};

  double intersect_scalar = BestSecondsPerCall(kReps, kIters, [&] {
    benchmark::DoNotOptimize(
        simd::AndWordsScalar(dst.data(), a.data(), b.data(), kWords));
  });
  double union_scalar = BestSecondsPerCall(kReps, kIters, [&] {
    simd::OrWordsScalar(dst.data(), a.data(), b.data(), kWords);
    benchmark::DoNotOptimize(dst.data());
  });
  double card_scalar = BestSecondsPerCall(kReps, kIters, [&] {
    benchmark::DoNotOptimize(simd::PopcountWordsScalar(a.data(), kWords));
  });
  double dom_scalar = BestSecondsPerCall(kReps, kIters, [&] {
    benchmark::DoNotOptimize(
        window.CountDominatorsScalar(cand, kMembers + 1));
  });

  double intersect_vec = intersect_scalar;
  double union_vec = union_scalar;
  double card_vec = card_scalar;
  double dom_vec = dom_scalar;
  bool have_avx2 = false;
#if defined(PCUBE_SIMD_HAVE_AVX2)
  have_avx2 = simd::CpuSupportsAvx2();
  if (have_avx2) {
    intersect_vec = BestSecondsPerCall(kReps, kIters, [&] {
      benchmark::DoNotOptimize(
          simd::AndWordsAvx2(dst.data(), a.data(), b.data(), kWords));
    });
    union_vec = BestSecondsPerCall(kReps, kIters, [&] {
      simd::OrWordsAvx2(dst.data(), a.data(), b.data(), kWords);
      benchmark::DoNotOptimize(dst.data());
    });
    card_vec = BestSecondsPerCall(kReps, kIters, [&] {
      benchmark::DoNotOptimize(simd::PopcountWordsAvx2(a.data(), kWords));
    });
    dom_vec = BestSecondsPerCall(kReps, kIters, [&] {
      benchmark::DoNotOptimize(
          window.CountDominatorsAvx2(cand, kMembers + 1));
    });
  }
#endif

  double intersect_speedup = intersect_scalar / intersect_vec;
  double union_speedup = union_scalar / union_vec;
  double card_speedup = card_scalar / card_vec;
  double dom_speedup = dom_scalar / dom_vec;
  const char* level = simd::SimdLevelName(simd::ActiveSimdLevel());

  std::printf("simd smoke: level=%s cpu_avx2=%d\n", level, have_avx2 ? 1 : 0);
  std::printf("  intersect   scalar %8.1f ns  vector %8.1f ns  %.2fx\n",
              intersect_scalar * 1e9, intersect_vec * 1e9, intersect_speedup);
  std::printf("  union       scalar %8.1f ns  vector %8.1f ns  %.2fx\n",
              union_scalar * 1e9, union_vec * 1e9, union_speedup);
  std::printf("  cardinality scalar %8.1f ns  vector %8.1f ns  %.2fx\n",
              card_scalar * 1e9, card_vec * 1e9, card_speedup);
  std::printf("  dominance   scalar %8.1f ns  vector %8.1f ns  %.2fx\n",
              dom_scalar * 1e9, dom_vec * 1e9, dom_speedup);

  {
    std::ofstream json("BENCH_simd.json");
    json << "{\n"
         << "  \"simd_level\": \"" << level << "\",\n"
         << "  \"cpu_avx2\": " << (have_avx2 ? "true" : "false") << ",\n"
         << "  \"words\": " << kWords << ",\n"
         << "  \"dominance_members\": " << kMembers << ",\n"
         << "  \"intersect_scalar_ns\": " << intersect_scalar * 1e9 << ",\n"
         << "  \"intersect_vector_ns\": " << intersect_vec * 1e9 << ",\n"
         << "  \"intersect_speedup\": " << intersect_speedup << ",\n"
         << "  \"union_speedup\": " << union_speedup << ",\n"
         << "  \"cardinality_speedup\": " << card_speedup << ",\n"
         << "  \"dominance_scalar_ns\": " << dom_scalar * 1e9 << ",\n"
         << "  \"dominance_vector_ns\": " << dom_vec * 1e9 << ",\n"
         << "  \"dominance_speedup\": " << dom_speedup << "\n"
         << "}\n";
  }

  // Gate only when the AVX2 kernels are actually dispatched: a scalar-only
  // machine (or a clamped / SIMD-off build) reports but cannot regress.
  if (simd::ActiveSimdLevel() == simd::SimdLevel::kAvx2) {
    if (intersect_speedup < 2.0) {
      std::fprintf(stderr,
                   "simd smoke: verbatim intersect speedup %.2fx < 2.0x\n",
                   intersect_speedup);
      return 1;
    }
    if (dom_speedup < 1.5) {
      std::fprintf(stderr,
                   "simd smoke: batched dominance speedup %.2fx < 1.5x\n",
                   dom_speedup);
      return 1;
    }
  }
  std::printf("simd smoke: ok\n");
  return 0;
}

}  // namespace

int SimdSmokeMain() { return RunSimdSmoke(); }

}  // namespace pcube::bench

int main(int argc, char** argv) {
  const char* smoke = std::getenv("PCUBE_SIMD_SMOKE");
  if (smoke != nullptr && smoke[0] == '1') {
    return pcube::bench::SimdSmokeMain();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
