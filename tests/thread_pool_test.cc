// ThreadPool tests: futures carry results, the queue drains on shutdown,
// Wait() blocks until idle, and many producers can submit concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace pcube {
namespace {

TEST(ThreadPoolTest, FuturesReturnValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // ~ThreadPool must finish everything already queued.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, WaitBlocksUntilIdle) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 30; ++i) {
    pool.Submit([&ran] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ran.fetch_add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 30);
  // Wait() on an idle pool returns immediately.
  pool.Wait();
}

TEST(ThreadPoolTest, ExceptionsArriveThroughTheFuture) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &total] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&total] { total.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(total.load(), 400);
}

}  // namespace
}  // namespace pcube
