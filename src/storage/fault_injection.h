// Deterministic storage fault injection.
//
// FaultInjectingPageManager is a PageManager decorator that perturbs reads
// and writes according to a seeded FaultPlan. Every decision derives from
// (seed, per-op counter) through SplitMix64, so a plan replays identically
// run after run — a failing fuzz seed is a reproducible test case.
//
// Fault kinds:
//   transient read error — Read returns Status::IoError for a page, healing
//       after `read_error_burst` consecutive attempts on that page (models
//       a flaky device the BufferPool's retry loop can ride out).
//   bit flip  — one deterministic bit of the returned page is inverted
//       after a successful inner read (models media rot; the checksum layer
//       above this one turns it into Status::Corruption).
//   short read — the tail of the returned page is zeroed (models a torn
//       sector; also caught by checksums).
//   torn write — only a prefix of the new content is written; the tail
//       keeps the page's previous bytes (zeroes if the page was never
//       readable), modelling a crash mid-pwrite.
//
// Besides the probabilistic rates, a plan can carry scripted faults pinned
// to a specific page and operation — "the 3rd read of page 17 fails twice"
// — which the degradation tests use to corrupt exactly the signature path.
//
// Stacking order in the Workbench: base (memory/file) → FaultInjecting →
// Checksum → Latency → BufferPool, so injected corruption is subject to
// checksum verification exactly like real corruption would be.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/page_manager.h"

namespace pcube {

/// One scripted fault: after `after` prior operations of kind `op` on page
/// `pid`, inject `kind` for the next `times` such operations.
struct ScriptedFault {
  enum class Op { kRead, kWrite };
  enum class Kind { kTransientError, kBitFlip, kShortRead, kTornWrite };

  PageId pid = 0;
  Op op = Op::kRead;
  Kind kind = Kind::kTransientError;
  uint64_t after = 0;   ///< ops on this page to let through first
  uint64_t times = 1;   ///< how many subsequent ops to fault (~0 = forever)
};

/// Seeded description of what to inject. Rates are per-operation
/// probabilities in [0, 1]; 0 everywhere (the default) disables the layer.
struct FaultPlan {
  uint64_t seed = 1;
  double read_error_rate = 0;    ///< P(transient IoError) per read
  uint32_t read_error_burst = 1; ///< consecutive failures per triggered error
  double bit_flip_rate = 0;      ///< P(single bit flip) per read
  double short_read_rate = 0;    ///< P(zeroed tail) per read
  double torn_write_rate = 0;    ///< P(partial write) per write
  std::vector<ScriptedFault> script;

  bool enabled() const {
    return read_error_rate > 0 || bit_flip_rate > 0 || short_read_rate > 0 ||
           torn_write_rate > 0 || !script.empty();
  }

  /// Parses "seed=7,read_error=0.05,burst=2,bit_flip=0.01,short_read=0.01,
  /// torn_write=0.02" (any subset, any order). Unknown keys are an error.
  static Result<FaultPlan> Parse(const std::string& spec);

  /// Round-trippable textual form of the rate fields (script omitted).
  std::string ToString() const;
};

/// PageManager decorator injecting the faults described by a FaultPlan.
class FaultInjectingPageManager : public PageManager {
 public:
  FaultInjectingPageManager(std::unique_ptr<PageManager> inner,
                            FaultPlan plan);

  PageManager* inner() const { return inner_.get(); }
  const FaultPlan& plan() const { return plan_; }

  /// While disarmed the decorator passes everything through untouched.
  /// Workbench build/open paths disarm injection so faults only start once
  /// the structures exist (mirroring how LatencyPageManager builds at zero
  /// latency).
  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  Result<PageId> Allocate() override { return inner_->Allocate(); }
  Status Read(PageId pid, Page* out) override;
  Status Write(PageId pid, const Page& page) override;
  Status Free(PageId pid) override { return inner_->Free(pid); }
  uint64_t NumPages() const override { return inner_->NumPages(); }
  Status Sync() override { return inner_->Sync(); }

  uint64_t injected_read_errors() const { return read_errors_.load(); }
  uint64_t injected_bit_flips() const { return bit_flips_.load(); }
  uint64_t injected_short_reads() const { return short_reads_.load(); }
  uint64_t injected_torn_writes() const { return torn_writes_.load(); }

 private:
  /// Deterministic roll in [0, 1) for the `page_op_index`-th operation on
  /// page `pid`; `salt` separates the independent fault kinds. Keyed on
  /// per-page op counts (not a global counter) so outcomes don't depend on
  /// thread interleaving across pages.
  double EventRoll(PageId pid, uint64_t page_op_index, uint64_t salt) const;
  /// Checks the script for a fault matching this op; returns true and sets
  /// `*kind` when one fires.
  bool ScriptFires(PageId pid, ScriptedFault::Op op, uint64_t page_op_index,
                   ScriptedFault::Kind* kind) const;

  // pcube-lint: begin-lock-free(both are fixed in the constructor: inner_
  // is the wrapped manager, plan_ the immutable fault script)
  std::unique_ptr<PageManager> inner_;
  FaultPlan plan_;
  // pcube-lint: end-lock-free
  std::atomic<bool> armed_{true};

  // Per-(page, op) operation counts drive the script and burst state; a
  // mutex keeps them consistent (fault paths are not hot paths).
  mutable Mutex mu_;
  std::map<std::pair<PageId, int>, uint64_t> page_ops_ GUARDED_BY(mu_);
  std::map<PageId, uint32_t> pending_errors_
      GUARDED_BY(mu_);  ///< remaining burst per page

  std::atomic<uint64_t> read_errors_{0};
  std::atomic<uint64_t> bit_flips_{0};
  std::atomic<uint64_t> short_reads_{0};
  std::atomic<uint64_t> torn_writes_{0};
};

}  // namespace pcube
