// Shared infrastructure for the figure-reproduction benchmarks.
//
// The paper sweeps T in {1M, 5M, 10M}; by default these benchmarks use a
// laptop-scale sweep {20k, 100k, 200k} that preserves the relative shapes
// (who wins, slopes, crossovers). Set PCUBE_BENCH_SCALE=50 to reproduce the
// paper's absolute scale (50 * 20k = 1M etc.).
//
// All "disk access" numbers are physical page fetches through a cold buffer
// pool (see DESIGN.md §3), so they are deterministic.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/timer.h"
#include "data/covertype.h"
#include "data/generators.h"
#include "workbench/workbench.h"

namespace pcube::bench {

/// Multiplier applied to every dataset size (env PCUBE_BENCH_SCALE).
inline uint64_t Scale() {
  static uint64_t scale = [] {
    const char* env = std::getenv("PCUBE_BENCH_SCALE");
    if (env == nullptr) return uint64_t{1};
    uint64_t v = std::strtoull(env, nullptr, 10);
    return v == 0 ? uint64_t{1} : v;
  }();
  return scale;
}

/// The three T values standing in for the paper's 1M / 5M / 10M.
inline std::vector<uint64_t> TupleSweep() {
  return {20000 * Scale(), 100000 * Scale(), 200000 * Scale()};
}

/// Paper defaults (§VI.B.1): Db = Dp = 3, C = 100, uniform distribution.
inline SyntheticConfig PaperConfig(uint64_t num_tuples) {
  SyntheticConfig config;
  config.num_tuples = num_tuples;
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = 100;
  config.dist = PrefDistribution::kUniform;
  config.seed = 42;
  return config;
}

/// Cache of built workbenches, keyed by a config string — figure benches
/// re-query the same instance many times.
inline Workbench* CachedWorkbench(const std::string& key, Dataset (*gen)(),
                                  WorkbenchOptions options = {}) {
  static std::map<std::string, std::unique_ptr<Workbench>>* cache =
      new std::map<std::string, std::unique_ptr<Workbench>>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto wb = Workbench::Build(gen(), options);
    PCUBE_CHECK(wb.ok()) << wb.status().ToString();
    it = cache->emplace(key, std::move(*wb)).first;
  }
  return it->second.get();
}

template <typename GenFn>
Workbench* CachedWorkbench2(const std::string& key, GenFn gen,
                            WorkbenchOptions options = {}) {
  static std::map<std::string, std::unique_ptr<Workbench>>* cache =
      new std::map<std::string, std::unique_ptr<Workbench>>();
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto wb = Workbench::Build(gen(), options);
    PCUBE_CHECK(wb.ok()) << wb.status().ToString();
    it = cache->emplace(key, std::move(*wb)).first;
  }
  return it->second.get();
}

/// The standard single-predicate query of the skyline experiments.
inline PredicateSet OnePredicate(uint32_t cardinality) {
  return PredicateSet{{0, cardinality / 2}};
}

/// The k-predicate queries of the CoverType experiments (Figs. 14-16):
/// an OLAP drill-down chain from broad to narrow — the first predicate goes
/// on a low-cardinality dimension (weakly selective), each further predicate
/// on a higher-cardinality one. Values are the most frequent code of each
/// dimension so every prefix of the chain has a non-empty answer.
inline PredicateSet CoverTypePredicates(int k) {
  static const int kDims[] = {5, 4, 3, 2};  // cardinalities 2, 7, 67, 185
  PCUBE_CHECK_LE(k, 4);
  PredicateSet preds;
  for (int i = 0; i < k; ++i) preds.Add({kDims[i], 0});
  return preds;
}

/// Simulated random-page-read latency (env PCUBE_PAGE_LATENCY_US, default
/// 5000 us — a 2008-era disk seek). Query-time benchmarks report
///   time = measured CPU time + cold-cache page misses * latency,
/// reproducing the disk-bound regime of the paper's testbed without
/// sleeping. Set PCUBE_PAGE_LATENCY_US=0 for pure CPU time.
inline double PageLatencySeconds() {
  static double latency = [] {
    const char* env = std::getenv("PCUBE_PAGE_LATENCY_US");
    double us = env == nullptr ? 5000.0 : std::strtod(env, nullptr);
    return us * 1e-6;
  }();
  return latency;
}

/// One measured query execution (any method).
struct MeasuredRun {
  double seconds = 0;
  double sig_seconds = 0;
  IoStats io;
  uint64_t heap_peak = 0;
  uint64_t result_size = 0;
  uint64_t nodes_expanded = 0;
};

inline MeasuredRun RunSignatureSkyline(Workbench* wb, const PredicateSet& preds) {
  PCUBE_CHECK_OK(wb->ColdStart());
  Timer t;
  auto out = wb->SignatureSkyline(preds);
  PCUBE_CHECK(out.ok()) << out.status().ToString();
  MeasuredRun run;
  run.seconds = t.ElapsedSeconds();
  run.sig_seconds = out->counters.sig_seconds;
  run.io = wb->IoSince();
  run.heap_peak = out->counters.heap_peak;
  run.result_size = out->skyline.size();
  run.nodes_expanded = out->counters.nodes_expanded;
  return run;
}

inline MeasuredRun RunDominationSkyline(Workbench* wb,
                                        const PredicateSet& preds) {
  PCUBE_CHECK_OK(wb->ColdStart());
  Timer t;
  auto out = DominationFirstSkyline(*wb->tree(), *wb->table(), preds);
  PCUBE_CHECK(out.ok()) << out.status().ToString();
  MeasuredRun run;
  run.seconds = t.ElapsedSeconds();
  run.io = wb->IoSince();
  run.heap_peak = out->counters.heap_peak;
  run.result_size = out->skyline.size();
  run.nodes_expanded = out->counters.nodes_expanded;
  return run;
}

inline MeasuredRun RunBooleanSkyline(Workbench* wb, const PredicateSet& preds) {
  PCUBE_CHECK_OK(wb->ColdStart());
  Timer t;
  BooleanFirstExecutor boolean(&wb->indices(), wb->table());
  auto out = boolean.Skyline(preds);
  PCUBE_CHECK(out.ok()) << out.status().ToString();
  MeasuredRun run;
  run.seconds = t.ElapsedSeconds();
  run.io = wb->IoSince();
  run.heap_peak = out->counters.heap_peak;
  run.result_size = out->tids.size();
  return run;
}

/// Cost-model execution time: CPU + simulated disk.
inline double CostSeconds(const MeasuredRun& run) {
  return run.seconds + static_cast<double>(run.io.TotalReads()) *
                           PageLatencySeconds();
}

/// Attaches the standard per-run counters to a benchmark state.
inline void ReportRun(benchmark::State& state, const MeasuredRun& run) {
  state.counters["disk"] = static_cast<double>(run.io.TotalReads());
  state.counters["rtree_blocks"] =
      static_cast<double>(run.io.ReadCount(IoCategory::kRtreeBlock));
  state.counters["sig_pages"] =
      static_cast<double>(run.io.ReadCount(IoCategory::kSignature));
  state.counters["bool_verify"] =
      static_cast<double>(run.io.ReadCount(IoCategory::kBooleanVerify));
  state.counters["heap_peak"] = static_cast<double>(run.heap_peak);
  state.counters["results"] = static_cast<double>(run.result_size);
}

}  // namespace pcube::bench
