// Write-path benchmark (DESIGN.md §15): sustained ingest through
// QueryService::Apply against a FILE-backed workbench — every commit is a
// real WAL append + fsync — first alone, then concurrent with query
// traffic. Reports inserts/sec, commit-latency quantiles (p50/p95/p99),
// and the group-commit amortization (commits per fsync), which is the
// number the whole design argues for: N writers, one disk flush.
//
// Doubles as the scripts/ci.sh `ingest` smoke gate (non-zero exit) when:
//   - any Apply or query fails, or a commit comes back non-durable,
//   - barriered writers fail to coalesce into ONE fsync group (checked
//     deterministically against a throwaway WAL; the Apply phases' own
//     grouping is additionally gated on machines with >= 2 cores, where
//     commits can genuinely overlap),
//   - the final row count disagrees with what was acknowledged.
//
// Output: a table on stdout plus BENCH_ingest.json in the working
// directory. The database (BENCH_ingest.db[.wal]) is deleted on exit.
//
// Environment knobs:
//   PCUBE_INGEST_ROWS        base relation size      (default 20000)
//   PCUBE_INGEST_BATCHES     batches per phase       (default 150)
//   PCUBE_INGEST_BATCH_ROWS  inserts per batch       (default 64)
//   PCUBE_INGEST_WRITERS     writer threads          (default 4)
//   PCUBE_INGEST_READERS     reader threads, phase 2 (default 2)
//   PCUBE_INGEST_DB          database path           (default BENCH_ingest.db)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "data/generators.h"
#include "query/write_batch.h"
#include "storage/wal.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t i = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[i];
}

struct PhaseStats {
  std::string name;
  double seconds = 0;
  double inserts_per_sec = 0;
  double commit_p50_ms = 0, commit_p95_ms = 0, commit_p99_ms = 0;
  double mean_group = 0;
  uint32_t max_group = 0;
  uint64_t batches = 0;
  uint64_t syncs = 0;  ///< fsyncs this phase (group commit amortizes these)
  double reader_qps = 0;
  uint64_t queries = 0;
};

}  // namespace

int main() {
  SyntheticConfig config;
  config.num_tuples = EnvU64("PCUBE_INGEST_ROWS", 20000);
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = 100;
  config.seed = 42;

  const uint64_t batches_per_phase = EnvU64("PCUBE_INGEST_BATCHES", 150);
  const uint64_t batch_rows = EnvU64("PCUBE_INGEST_BATCH_ROWS", 64);
  const size_t writers = EnvU64("PCUBE_INGEST_WRITERS", 4);
  const size_t readers = EnvU64("PCUBE_INGEST_READERS", 2);
  const char* db_env = std::getenv("PCUBE_INGEST_DB");
  const std::string db_path = db_env != nullptr ? db_env : "BENCH_ingest.db";
  auto cleanup = [&] {
    std::remove(db_path.c_str());
    std::remove((db_path + ".wal").c_str());
    std::remove((db_path + ".chk").c_str());
  };
  cleanup();

  std::printf(
      "building file-backed workbench: %llu rows, %llu batches/phase x %llu "
      "rows, %zu writers, %zu readers\n",
      static_cast<unsigned long long>(config.num_tuples),
      static_cast<unsigned long long>(batches_per_phase),
      static_cast<unsigned long long>(batch_rows), writers, readers);
  WorkbenchOptions options;
  options.file_path = db_path;
  auto built = Workbench::Build(GenerateSynthetic(config), options);
  PCUBE_CHECK(built.ok()) << built.status().ToString();
  Workbench& wb = **built;

  // Pre-generate every row to ingest so the measured loop is Apply only.
  SyntheticConfig extra_config = config;
  extra_config.num_tuples = 2 * batches_per_phase * batch_rows;
  extra_config.seed = 4242;
  Dataset extra = GenerateSynthetic(extra_config);

  std::atomic<uint64_t> next_batch{0};
  std::atomic<uint64_t> failures{0};
  std::atomic<uint64_t> not_durable{0};

  auto make_batch = [&](uint64_t index) {
    WriteBatch batch;
    batch.inserts.reserve(batch_rows);
    for (uint64_t r = 0; r < batch_rows; ++r) {
      TupleId t = static_cast<TupleId>(index * batch_rows + r);
      auto bools = extra.BoolRow(t);
      auto prefs = extra.PrefPoint(t);
      batch.inserts.push_back(
          {{bools.begin(), bools.end()}, {prefs.begin(), prefs.end()}});
    }
    return batch;
  };

  auto run_phase = [&](const std::string& name, bool with_queries) {
    PhaseStats stats;
    stats.name = name;
    const uint64_t end_batch = next_batch.load() + batches_per_phase;
    const uint64_t syncs_before = wb.wal()->sync_count();
    std::vector<std::vector<double>> commit_ms(writers);
    std::vector<std::vector<uint32_t>> groups(writers);
    std::atomic<bool> writers_done{false};
    std::atomic<uint64_t> queries_ok{0};

    Timer phase_timer;
    std::vector<std::thread> threads;
    for (size_t w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        for (;;) {
          uint64_t index = next_batch.fetch_add(1);
          if (index >= end_batch) {
            next_batch.fetch_sub(1);  // hand the overshoot back
            return;
          }
          auto applied = wb.Apply(make_batch(index));
          if (!applied.ok()) {
            failures.fetch_add(1);
            return;
          }
          if (!applied->durable) not_durable.fetch_add(1);
          commit_ms[w].push_back(applied->commit_seconds * 1e3);
          groups[w].push_back(applied->group_size);
        }
      });
    }
    std::vector<std::thread> query_threads;
    for (size_t r = 0; with_queries && r < readers; ++r) {
      query_threads.emplace_back([&, r] {
        uint64_t i = r;
        while (!writers_done.load(std::memory_order_acquire)) {
          PredicateSet preds{
              {static_cast<int>(i % config.num_bool),
               static_cast<uint32_t>((i * 7) % config.bool_cardinality)}};
          auto resp = wb.RunShared(QueryRequest::Skyline(preds));
          if (!resp.ok()) {
            failures.fetch_add(1);
            return;
          }
          queries_ok.fetch_add(1);
          ++i;
        }
      });
    }
    for (auto& t : threads) t.join();
    writers_done.store(true, std::memory_order_release);
    const double write_seconds = phase_timer.ElapsedSeconds();
    for (auto& t : query_threads) t.join();

    std::vector<double> all_ms;
    double group_sum = 0;
    uint64_t group_n = 0;
    for (size_t w = 0; w < writers; ++w) {
      all_ms.insert(all_ms.end(), commit_ms[w].begin(), commit_ms[w].end());
      for (uint32_t g : groups[w]) {
        group_sum += g;
        ++group_n;
        stats.max_group = std::max(stats.max_group, g);
      }
    }
    std::sort(all_ms.begin(), all_ms.end());
    stats.seconds = write_seconds;
    stats.batches = all_ms.size();
    stats.inserts_per_sec =
        static_cast<double>(stats.batches * batch_rows) / write_seconds;
    stats.commit_p50_ms = Quantile(all_ms, 0.50);
    stats.commit_p95_ms = Quantile(all_ms, 0.95);
    stats.commit_p99_ms = Quantile(all_ms, 0.99);
    stats.mean_group = group_n > 0 ? group_sum / static_cast<double>(group_n) : 0;
    stats.syncs = wb.wal()->sync_count() - syncs_before;
    stats.queries = queries_ok.load();
    stats.reader_qps = static_cast<double>(stats.queries) / write_seconds;
    std::string query_note =
        with_queries
            ? " | " + std::to_string(stats.queries) + " concurrent queries"
            : "";
    std::printf(
        "  %-14s %9.0f inserts/s  commit p50/p95/p99 %6.2f/%6.2f/%6.2f ms  "
        "group mean %.2f max %u  %llu commits over %llu fsyncs%s\n",
        stats.name.c_str(), stats.inserts_per_sec, stats.commit_p50_ms,
        stats.commit_p95_ms, stats.commit_p99_ms, stats.mean_group,
        stats.max_group, static_cast<unsigned long long>(stats.batches),
        static_cast<unsigned long long>(stats.syncs), query_note.c_str());
    return stats;
  };

  std::vector<PhaseStats> phases;
  phases.push_back(run_phase("ingest-only", false));
  phases.push_back(run_phase("ingest+query", true));

  PCUBE_CHECK_OK(wb.DrainWrites());

  // Deterministic group-commit check against a throwaway WAL: every stager
  // is barriered past Stage() before any calls WaitDurable(), so the first
  // waiter MUST become leader of all K records — K commits, one fsync — on
  // any machine, including a single core where the Apply phases above can
  // serialize and never overlap their commits.
  const uint32_t forced_writers = static_cast<uint32_t>(std::max<size_t>(writers, 4));
  uint32_t forced_group = 0;
  uint64_t forced_syncs = 0;
  {
    const std::string group_path = db_path + ".groupwal";
    std::remove(group_path.c_str());
    Wal::Options wal_options;
    wal_options.path = group_path;
    wal_options.truncate = true;
    auto wal = Wal::Open(wal_options);
    PCUBE_CHECK(wal.ok()) << wal.status().ToString();
    std::atomic<uint32_t> staged{0};
    std::atomic<uint32_t> max_group{0};
    std::vector<std::thread> stagers;
    for (uint32_t i = 0; i < forced_writers; ++i) {
      stagers.emplace_back([&] {
        auto lsn = (*wal)->Stage("bench-ingest group-commit probe");
        PCUBE_CHECK(lsn.ok()) << lsn.status().ToString();
        staged.fetch_add(1);
        while (staged.load() < forced_writers) std::this_thread::yield();
        uint32_t group = 0;
        PCUBE_CHECK_OK((*wal)->WaitDurable(*lsn, &group));
        uint32_t seen = max_group.load();
        while (group > seen && !max_group.compare_exchange_weak(seen, group)) {
        }
      });
    }
    for (auto& t : stagers) t.join();
    forced_group = max_group.load();
    forced_syncs = (*wal)->sync_count();
    wal->reset();
    std::remove(group_path.c_str());
    std::printf("  group-commit   %u staged writers -> group %u over %llu fsync(s)\n",
                forced_writers, forced_group,
                static_cast<unsigned long long>(forced_syncs));
  }
  const uint64_t expected_rows =
      config.num_tuples + 2 * batches_per_phase * batch_rows;
  const uint64_t final_rows = wb.data().num_tuples();

  std::ofstream json("BENCH_ingest.json");
  json << "{\n  \"config\": {\"base_rows\": " << config.num_tuples
       << ", \"batches_per_phase\": " << batches_per_phase
       << ", \"batch_rows\": " << batch_rows << ", \"writers\": " << writers
       << ", \"readers\": " << readers << "},\n  \"phases\": [\n";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    json << "    {\"phase\": \"" << p.name
         << "\", \"inserts_per_sec\": " << p.inserts_per_sec
         << ", \"commit_p50_ms\": " << p.commit_p50_ms
         << ", \"commit_p95_ms\": " << p.commit_p95_ms
         << ", \"commit_p99_ms\": " << p.commit_p99_ms
         << ", \"mean_group_size\": " << p.mean_group
         << ", \"max_group_size\": " << p.max_group
         << ", \"commits\": " << p.batches << ", \"fsyncs\": " << p.syncs
         << ", \"reader_qps\": " << p.reader_qps
         << ", \"queries\": " << p.queries << "}"
         << (i + 1 < phases.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"forced_group\": {\"writers\": " << forced_writers
       << ", \"group_size\": " << forced_group
       << ", \"fsyncs\": " << forced_syncs << "},\n  \"final_rows\": "
       << final_rows << ",\n  \"expected_rows\": " << expected_rows << "\n}\n";
  json.close();
  std::printf("wrote BENCH_ingest.json\n");
  cleanup();

  // Smoke gates (scripts/ci.sh `ingest` phase).
  if (failures.load() > 0 || not_durable.load() > 0) {
    std::fprintf(stderr, "FAIL: %llu failed operations, %llu non-durable acks\n",
                 static_cast<unsigned long long>(failures.load()),
                 static_cast<unsigned long long>(not_durable.load()));
    return 1;
  }
  if (final_rows != expected_rows) {
    std::fprintf(stderr, "FAIL: %llu rows after drain, expected %llu\n",
                 static_cast<unsigned long long>(final_rows),
                 static_cast<unsigned long long>(expected_rows));
    return 1;
  }
  if (forced_group < forced_writers || forced_syncs != 1) {
    std::fprintf(stderr,
                 "FAIL: %u barriered writers got group %u over %llu fsyncs "
                 "(want %u over 1)\n",
                 forced_writers, forced_group,
                 static_cast<unsigned long long>(forced_syncs),
                 forced_writers);
    return 1;
  }
  // The Apply phases only coalesce when commits genuinely overlap, which a
  // single-core machine may never produce — gate there, report here.
  if (std::thread::hardware_concurrency() >= 2 && writers >= 2 &&
      phases[0].max_group < 2) {
    std::fprintf(stderr,
                 "FAIL: %zu concurrent writers never formed a commit group\n",
                 writers);
    return 1;
  }
  if (phases[1].queries == 0 && readers > 0) {
    std::fprintf(stderr, "FAIL: no queries completed during ingest\n");
    return 1;
  }
  return 0;
}
