// On-disk catalog: the metadata needed to reopen a persisted workbench —
// relation schema, heap-file page map, boolean-index roots, R-tree root and
// shape, and the signature store's directory state. Stored as a chain of
// pages starting at a fixed root (page 0 of the file), each page holding
//   u32 payload_len | u64 next_pid | payload
// so catalogs of any size fit.
#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "cube/cell.h"
#include "storage/buffer_pool.h"

namespace pcube {

/// Serializable description of one persisted workbench.
struct CatalogData {
  static constexpr uint32_t kMagic = 0x50435542;  // "PCUB"
  static constexpr uint32_t kVersion = 1;

  // Relation.
  int num_bool = 0;
  int num_pref = 0;
  std::vector<uint32_t> bool_cardinality;
  uint64_t num_tuples = 0;

  // Heap file.
  std::vector<PageId> table_pages;

  // Boolean indices, one per dimension.
  struct IndexInfo {
    PageId root = kInvalidPageId;
    uint64_t num_entries = 0;
    uint64_t num_pages = 0;
    uint64_t next_seq = 0;
  };
  std::vector<IndexInfo> indices;

  // R-tree.
  PageId rtree_root = kInvalidPageId;
  int rtree_height = 0;
  uint32_t rtree_fanout = 0;
  uint64_t rtree_entries = 0;
  uint64_t rtree_pages = 0;

  // P-Cube / signature store.
  bool has_cube = false;
  PageId sig_index_root = kInvalidPageId;
  uint64_t sig_index_entries = 0;
  uint64_t sig_index_pages = 0;
  std::map<CellId, uint32_t> sig_dense;
  uint64_t sig_num_partials = 0;
  uint64_t sig_num_pages = 0;
  PageId sig_append_page = kInvalidPageId;
  uint32_t sig_append_offset = 0;
  uint64_t cube_cells = 0;
  int cube_levels = 0;

  /// Optional value dictionaries for the boolean dimensions (CSV imports);
  /// empty = none stored.
  std::vector<std::vector<std::string>> dictionaries;

  /// Tuples deleted through the write path (sorted). The heap file keeps
  /// their rows; the boolean-first plan filters through this set. Absent in
  /// catalogs from before the write path (decoded as empty).
  std::vector<TupleId> tombstones;
};

/// Writes `catalog` into the page chain rooted at `root` (pages are
/// allocated as needed; the root must already exist).
Status SaveCatalog(BufferPool* pool, PageId root, const CatalogData& catalog);

/// Reads a catalog from the chain rooted at `root`.
Result<CatalogData> LoadCatalog(BufferPool* pool, PageId root);

}  // namespace pcube
