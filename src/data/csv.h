// CSV import for the CLI and for users with real data. A column spec string
// assigns each CSV column a role:
//   'b' — boolean dimension (categorical; values are dictionary-coded in
//         order of first appearance),
//   'p' — preference dimension (numeric, smaller preferred),
//   '-' — ignored column.
// Example: spec "bb-pp" reads columns 0,1 as boolean, skips 2, reads 3,4 as
// preference dimensions.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "cube/relation.h"

namespace pcube {

/// Result of a CSV import: the dataset plus the dictionaries that map coded
/// boolean values back to the original strings.
struct CsvTable {
  Dataset data;
  /// One dictionary per boolean dimension; index = coded value.
  std::vector<std::vector<std::string>> dictionaries;
  /// Header names per dimension (empty when has_header = false).
  std::vector<std::string> bool_names;
  std::vector<std::string> pref_names;
};

/// Parses CSV from `in` using `spec` (see above). `has_header` consumes the
/// first row as column names. Fails with InvalidArgument on ragged rows or
/// non-numeric preference values.
Result<CsvTable> ReadCsv(std::istream& in, const std::string& spec,
                         bool has_header);

/// Convenience: reads from a file path.
Result<CsvTable> ReadCsvFile(const std::string& path, const std::string& spec,
                             bool has_header);

}  // namespace pcube
