// Boolean pruning interface used by the query engines (Algorithm 1's
// boolean_prune step). Given the path of a candidate entry — an R-tree node
// or a tuple — a probe answers whether the target subset of data may appear
// there:
//   SignatureProbe  one cursor per predicate, bits ANDed lazily (exact at
//                   tuple level; at inner levels an upper bound of the
//                   recursive intersection, so pruning is sound);
//   BloomProbe      §VII lossy variant (false positives possible even at
//                   tuple level -> results need table verification);
//   TrueProbe       no boolean pruning (the Domination baseline and BBS).
//
// Thread-safety: probes memoise loaded signature state, so a probe instance
// belongs to exactly one query and must not be shared across threads.
// Concurrent queries each call PCube::MakeProbe for their own instance —
// that is cheap and safe (see pcube.h).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bitmap/bloom_filter.h"
#include "core/signature_cursor.h"

namespace pcube {

/// Answers "may the target cell contain data under this path?".
class BooleanProbe {
 public:
  virtual ~BooleanProbe() = default;

  /// `path` addresses an R-tree node (length <= levels-1) or a tuple entry
  /// (length == levels). A false return proves the subtree/tuple disjoint
  /// from the queried cell.
  virtual Result<bool> Test(const Path& path) = 0;

  /// Tuple-level check. Signature probes answer from the leaf bit (the path
  /// identifies the entry exactly); probes keyed by tuple id — e.g. the
  /// index-merge baseline's RID set — override this instead.
  virtual Result<bool> TestData(const Path& path, TupleId) {
    return Test(path);
  }

  /// Whether a positive Test at tuple level is exact (signatures: yes;
  /// Bloom filters: no — the engine must verify results against the table).
  virtual bool exact() const { return true; }

  /// Signature pages loaded so far (the paper's SSig count), if applicable.
  virtual uint64_t partials_loaded() const { return 0; }
};

/// Probe that never prunes.
class TrueProbe : public BooleanProbe {
 public:
  Result<bool> Test(const Path&) override { return true; }
};

/// Lazy AND over one signature cursor per boolean predicate.
///
/// With a single cursor, Test delegates straight to it. With two or more,
/// the probe fuses the cursors' node arrays level by level: at each path
/// prefix it materialises every cursor's node, intersects the first pair in
/// compressed form (BitmapCodec::IntersectEncoded — WAH fills skip whole
/// runs without decoding) with the remaining cursors ANDed in, and memoises
/// the fused array so deeper probes of the same subtree test one bit array
/// instead of one per predicate. Pruning decisions are identical to the
/// cursor-major loop — a path passes iff every cursor's bit is set at every
/// level — only the order partial signatures are faulted in differs.
class SignatureProbe : public BooleanProbe {
 public:
  explicit SignatureProbe(std::vector<SignatureCursor> cursors);

  Result<bool> Test(const Path& path) override;

  uint64_t partials_loaded() const override {
    uint64_t n = 0;
    for (const auto& c : cursors_) n += c.partials_loaded();
    return n;
  }

 private:
  /// The intersection of every cursor's array for the node at `prefix`,
  /// memoised; null when any cursor's signature lacks the node (which
  /// proves the fused subtree empty).
  Result<const BitVector*> FusedNode(const Path& prefix);

  std::vector<SignatureCursor> cursors_;
  /// Memo of fused node arrays; nullopt records "absent in some cursor".
  std::map<Path, std::optional<BitVector>> fused_;
};

/// AND over per-predicate Bloom filters on present-SIDs (paper §VII).
class BloomProbe : public BooleanProbe {
 public:
  BloomProbe(std::vector<BloomFilter> filters, uint32_t fanout,
             uint64_t pages_loaded)
      : filters_(std::move(filters)),
        fanout_(fanout),
        pages_loaded_(pages_loaded) {}

  Result<bool> Test(const Path& path) override {
    uint64_t sid = PathToSid(path, fanout_);
    for (const auto& f : filters_) {
      if (!f.MayContain(sid)) return false;
    }
    return true;
  }

  bool exact() const override { return false; }
  uint64_t partials_loaded() const override { return pages_loaded_; }

 private:
  std::vector<BloomFilter> filters_;
  uint32_t fanout_;
  uint64_t pages_loaded_;
};

}  // namespace pcube
