# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bitmap")
subdirs("storage")
subdirs("rtree")
subdirs("cube")
subdirs("core")
subdirs("query")
subdirs("baselines")
subdirs("data")
subdirs("workbench")
