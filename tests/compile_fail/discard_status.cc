// Compile-fail case: silently dropping a Status must not build.
// Clean variant: the discard is made explicit with IgnoreError().
// Faulty variant (-DPCUBE_COMPILE_FAIL): the bare call discards the
// [[nodiscard]] Status and -Werror=unused-result rejects it.
#include "common/status.h"

namespace {

pcube::Status Fallible() { return pcube::Status::IoError("injected"); }

}  // namespace

int main() {
#ifdef PCUBE_COMPILE_FAIL
  Fallible();
#else
  // The explicit discard is the behavior under test.
  Fallible().IgnoreError();
#endif
  return 0;
}
