// Bloom filter over SIDs — the lossy signature compression sketched in the
// paper's §VII: "build a bloom filter on all SID's whose corresponding
// entries are 1 in the signature ... load the compressed signature (i.e., a
// bloom filter), and test a SID upon that."
//
// False positives only weaken pruning (a node may be visited although the
// cell has no data there); they can never drop an answer, because a
// "present" verdict means "do not prune".
#pragma once

#include <cstdint>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"

namespace pcube {

/// Standard Bloom filter with double hashing (Kirsch-Mitzenmacher).
class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` keys at `bits_per_key` bits each.
  /// The number of probes is chosen as ln(2) * bits_per_key, clamped to
  /// [1, 30].
  BloomFilter(size_t expected_keys, double bits_per_key = 10.0);

  /// Reconstructs a filter from its serialised form.
  static BloomFilter Deserialize(const std::vector<uint8_t>& bytes);

  void Add(uint64_t key);

  /// False means "definitely absent"; true means "probably present".
  bool MayContain(uint64_t key) const;

  /// Size of the bit array in bytes.
  size_t SizeBytes() const { return words_.size() * 8; }

  std::vector<uint8_t> Serialize() const;

 private:
  BloomFilter(size_t num_bits, int num_probes, std::vector<uint64_t> words)
      : num_bits_(num_bits), num_probes_(num_probes), words_(std::move(words)) {}

  static uint64_t Mix(uint64_t key);

  size_t num_bits_;
  int num_probes_;
  std::vector<uint64_t> words_;
};

}  // namespace pcube
