#include "cache/result_cache.h"

#include <algorithm>

namespace pcube {

namespace {

size_t EntryListCharge(const std::vector<SearchEntry>& entries) {
  size_t c = entries.capacity() * sizeof(SearchEntry);
  for (const SearchEntry& e : entries) {
    c += e.path.capacity() * sizeof(Path::value_type);
  }
  return c;
}

size_t ResultCharge(const CachedResult& e) {
  size_t c = 160 + e.family.capacity() + e.tids.capacity() * sizeof(TupleId) +
             e.scores.capacity() * sizeof(double) +
             e.cell_stamps.capacity() * sizeof(e.cell_stamps[0]);
  if (e.skyline_state != nullptr) {
    c += EntryListCharge(e.skyline_state->skyline) +
         EntryListCharge(e.skyline_state->b_list) +
         EntryListCharge(e.skyline_state->d_list);
  }
  if (e.topk_state != nullptr) {
    c += EntryListCharge(e.topk_state->results) +
         EntryListCharge(e.topk_state->b_list) +
         EntryListCharge(e.topk_state->d_list) +
         EntryListCharge(e.topk_state->remaining);
  }
  return c;
}

}  // namespace

ResultCache::ResultCache(size_t capacity_bytes, const DataEpoch* epoch,
                         bool enable_containment)
    : epoch_(epoch),
      enable_containment_(enable_containment),
      shards_(new Shard[kShards]) {
  for (size_t i = 0; i < kShards; ++i) {
    shards_[i].slru.set_capacity(capacity_bytes / kShards);
  }
  auto& reg = MetricsRegistry::Default();
  hits_ = reg.GetCounter("pcube_result_cache_hits_total");
  misses_ = reg.GetCounter("pcube_result_cache_misses_total");
  containment_ = reg.GetCounter("pcube_result_cache_containment_total");
  stale_ = reg.GetCounter("pcube_result_cache_stale_total");
  evictions_ = reg.GetCounter("pcube_result_cache_evictions_total");
  inserts_ = reg.GetCounter("pcube_result_cache_inserts_total");
}

ResultCache::Stamps ResultCache::SnapshotStamps(
    const PredicateSet& preds) const {
  Stamps s;
  // Order matters for the empty-predicate case too: read global/structure
  // first so that they are at most as new as the per-cell reads.
  s.global = epoch_->global();
  s.structure = epoch_->structure();
  s.cells.reserve(preds.size());
  for (const Predicate& p : preds.predicates()) {
    CellId cell = AtomicCellId(p.dim, p.value);
    s.cells.emplace_back(cell, epoch_->OfCell(cell));
  }
  return s;
}

bool ResultCache::AnswerFresh(const CachedResult& entry) const {
  if (entry.preds.empty()) return entry.global_stamp == epoch_->global();
  for (const auto& [cell, stamp] : entry.cell_stamps) {
    if (epoch_->OfCell(cell) != stamp) return false;
  }
  return true;
}

std::shared_ptr<const CachedResult> ResultCache::GetFresh(
    uint64_t fp, const std::string& family) {
  Shard& shard = ShardOf(fp);
  std::shared_ptr<const CachedResult> entry;
  {
    MutexLock lock(&shard.mu);
    if (!shard.slru.Lookup(fp, &entry)) return nullptr;
  }
  // Different family behind the same fingerprint: a 64-bit collision. Keep
  // the resident entry (its queries are live too) and report a miss.
  if (entry->family != family) return nullptr;
  if (!AnswerFresh(*entry)) {
    MutexLock lock(&shard.mu);
    size_t bytes_before = shard.slru.bytes();
    if (shard.slru.Erase(fp)) {
      bytes_.fetch_sub(bytes_before - shard.slru.bytes(),
                       std::memory_order_relaxed);
      entries_.fetch_sub(1, std::memory_order_relaxed);
      stale_->Increment();
    }
    return nullptr;
  }
  return entry;
}

ResultCache::Lookup ResultCache::Find(const QueryRequest& request,
                                      const Dataset& data,
                                      bool require_state) {
  Lookup out;
  if (!request.Canonicalizable()) return out;

  const bool topk = request.kind == QueryRequest::Kind::kTopK;
  std::string family = request.CanonicalFamily(request.preds);
  if (auto entry = GetFresh(Fnv1a64(family), family)) {
    if (!topk) {
      std::shared_ptr<const SkylineOutput> state;
      if (entry->skyline_state != nullptr &&
          entry->structure_stamp == epoch_->structure()) {
        state = entry->skyline_state;
      }
      if (state != nullptr || !require_state) {
        out.outcome = CacheOutcome::kHit;
        out.tids = entry->tids;
        out.plan = entry->plan;
        out.skyline_state = std::move(state);
        hits_->Increment();
        return out;
      }
      // require_state without live state: a subset entry with state may
      // still seed a drill-down below.
    } else if (entry->k >= request.k || entry->Exhausted()) {
      std::shared_ptr<const TopKOutput> state;
      if (entry->topk_state != nullptr && entry->k == request.k &&
          entry->structure_stamp == epoch_->structure()) {
        state = entry->topk_state;
      }
      if (state != nullptr || !require_state) {
        // Truncation reuse: a prefix of a larger-k run IS the smaller-k
        // answer (same ranking, same candidates, same order).
        size_t n = std::min(request.k, entry->tids.size());
        out.outcome = CacheOutcome::kHit;
        out.tids.assign(entry->tids.begin(), entry->tids.begin() + n);
        out.scores.assign(entry->scores.begin(), entry->scores.begin() + n);
        out.plan = entry->plan;
        out.topk_state = std::move(state);
        hits_->Increment();
        return out;
      }
    }
    // Otherwise (top-k cut off below request.k, or state demanded but
    // stale): fall through — a subset entry might still serve — and let
    // the executed answer replace this entry.
  }

  // Top-k containment yields a bare filtered list, never engine state.
  if (enable_containment_ && !(topk && require_state) &&
      !request.preds.empty() &&
      request.preds.size() <= kMaxContainmentPreds) {
    const auto& ps = request.preds.predicates();
    const uint32_t n = static_cast<uint32_t>(ps.size());
    const uint32_t full = (uint32_t{1} << n) - 1;
    // Proper subsets in decreasing size: the largest cached ancestor gives
    // the cheapest filter/drill-down. Mask 0 (no predicates) is a valid
    // ancestor — an unconstrained cached run answers everything below it.
    std::vector<uint32_t> masks;
    masks.reserve(full);
    for (uint32_t m = 0; m < full; ++m) masks.push_back(m);
    std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
      int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
      return pa != pb ? pa > pb : a < b;
    });
    for (uint32_t mask : masks) {
      PredicateSet sub;
      for (uint32_t i = 0; i < n; ++i) {
        if (mask & (uint32_t{1} << i)) sub.Add(ps[i]);
      }
      std::string fam = request.CanonicalFamily(sub);
      auto entry = GetFresh(Fnv1a64(fam), fam);
      if (entry == nullptr) continue;
      if (topk) {
        // Filter the ancestor's ranked list by the full predicate set.
        // Sound when enough survivors remain (anything outside the list
        // scores no better than its worst member) or the list already held
        // every matching tuple.
        std::vector<TupleId> tids;
        std::vector<double> scores;
        for (size_t i = 0; i < entry->tids.size(); ++i) {
          if (request.preds.Matches(data, entry->tids[i])) {
            tids.push_back(entry->tids[i]);
            scores.push_back(entry->scores[i]);
          }
        }
        if (tids.size() < request.k && !entry->Exhausted()) continue;
        if (tids.size() > request.k) {
          tids.resize(request.k);
          scores.resize(request.k);
        }
        out.outcome = CacheOutcome::kContainment;
        out.tids = std::move(tids);
        out.scores = std::move(scores);
        out.plan = entry->plan;
        containment_->Increment();
        return out;
      }
      // Skyline: a filter pass is NOT sound (dominators that stop
      // qualifying can promote new members); hand the ancestor's engine
      // output to the caller for a Lemma 2 drill-down instead. Needs the
      // tree shape unchanged — the state stores node paths and MBRs.
      if (entry->skyline_state != nullptr &&
          entry->structure_stamp == epoch_->structure()) {
        out.outcome = CacheOutcome::kContainment;
        out.drill_prev = entry->skyline_state;
        out.plan = entry->plan;
        containment_->Increment();
        return out;
      }
    }
  }

  misses_->Increment();
  return out;
}

void ResultCache::Insert(const QueryRequest& request,
                         const QueryResponse& response,
                         std::shared_ptr<const SkylineOutput> skyline_state,
                         std::shared_ptr<const TopKOutput> topk_state,
                         const Stamps& stamps) {
  // Degraded answers must never populate the cache: a boolean-first result
  // computed around corrupt signature pages would outlive the corruption
  // and keep serving after a repair (or mask the damage entirely).
  if (response.degraded || !request.Canonicalizable()) return;

  auto entry = std::make_shared<CachedResult>();
  entry->family = request.CanonicalFamily(request.preds);
  entry->kind = request.kind;
  entry->preds = request.preds;
  entry->k = request.kind == QueryRequest::Kind::kTopK ? request.k : 0;
  entry->tids = response.tids;
  entry->scores = response.scores;
  entry->plan = response.estimate.choice;
  entry->skyline_state = std::move(skyline_state);
  entry->topk_state = std::move(topk_state);
  entry->cell_stamps = stamps.cells;
  entry->global_stamp = stamps.global;
  entry->structure_stamp = stamps.structure;
  entry->charge = ResultCharge(*entry);

  uint64_t fp = Fnv1a64(entry->family);
  size_t charge = entry->charge;
  Shard& shard = ShardOf(fp);
  MutexLock lock(&shard.mu);
  size_t bytes_before = shard.slru.bytes();
  size_t entries_before = shard.slru.entries();
  size_t evicted = shard.slru.Insert(fp, std::move(entry), charge);
  if (evicted > 0) evictions_->Increment(evicted);
  bytes_.fetch_add(shard.slru.bytes() - bytes_before,
                   std::memory_order_relaxed);
  entries_.fetch_add(shard.slru.entries() - entries_before,
                     std::memory_order_relaxed);
  inserts_->Increment();
}

}  // namespace pcube
