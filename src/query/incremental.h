// Drill-down and roll-up execution (paper §V.C, Lemma 2). Incremental
// queries reuse the bookkeeping lists of the previous run instead of
// restarting from the R-tree root:
//
//   drill-down (predicates strengthened): entries pruned by the old boolean
//     predicate stay pruned, so  c_heap = result ∪ d_list;
//   roll-up (predicates relaxed): results keep qualifying and their
//     domination pruning stays valid, so  c_heap = result ∪ b_list.
//
// Top-k runs additionally carry the unexamined heap frontier (`remaining`),
// which must re-enter the heap in both directions; score-pruned d_list
// entries stay pruned under roll-up because the k-th best score can only
// improve.
//
// The seeds below feed SkylineEngine::RunFrom / TopKEngine::RunFrom, which
// re-apply the new query's prune() to every entry ("the size of c_heap can
// be further reduced by enforcing boolean checking and domination checking
// beforehand").
#pragma once

#include "query/query_types.h"

namespace pcube {

inline std::vector<SearchEntry> DrillDownSeed(const SkylineOutput& prev) {
  std::vector<SearchEntry> seed = prev.skyline;
  seed.insert(seed.end(), prev.d_list.begin(), prev.d_list.end());
  return seed;
}

inline std::vector<SearchEntry> RollUpSeed(const SkylineOutput& prev) {
  std::vector<SearchEntry> seed = prev.skyline;
  seed.insert(seed.end(), prev.b_list.begin(), prev.b_list.end());
  return seed;
}

inline std::vector<SearchEntry> DrillDownSeed(const TopKOutput& prev) {
  std::vector<SearchEntry> seed = prev.results;
  seed.insert(seed.end(), prev.d_list.begin(), prev.d_list.end());
  seed.insert(seed.end(), prev.remaining.begin(), prev.remaining.end());
  return seed;
}

inline std::vector<SearchEntry> RollUpSeed(const TopKOutput& prev) {
  std::vector<SearchEntry> seed = prev.results;
  seed.insert(seed.end(), prev.b_list.begin(), prev.b_list.end());
  seed.insert(seed.end(), prev.remaining.begin(), prev.remaining.end());
  return seed;
}

// ---------------------------------------------------------------------------
// Chained sessions. An incremental run only re-examines its seed, so its
// output lists cover a subset of the space; entries pruned in *earlier*
// queries of the chain must be carried forward for the lists to stay usable
// as future seeds:
//   after a drill-down, the previous b_list entries still fail the (now
//     stronger) predicate — append them to the run's b_list;
//   after a roll-up, the previous d_list entries stay dominated (their
//     dominators qualify under the relaxed predicate, and domination is
//     transitive) — append them to the run's d_list.
// Use these whenever more than one incremental step follows a fresh query.

inline SkylineOutput MergeAfterDrillDown(SkylineOutput run,
                                         const SkylineOutput& prev) {
  run.b_list.insert(run.b_list.end(), prev.b_list.begin(), prev.b_list.end());
  return run;
}

inline SkylineOutput MergeAfterRollUp(SkylineOutput run,
                                      const SkylineOutput& prev) {
  run.d_list.insert(run.d_list.end(), prev.d_list.begin(), prev.d_list.end());
  return run;
}

inline TopKOutput MergeAfterDrillDown(TopKOutput run, const TopKOutput& prev) {
  run.b_list.insert(run.b_list.end(), prev.b_list.begin(), prev.b_list.end());
  return run;
}

inline TopKOutput MergeAfterRollUp(TopKOutput run, const TopKOutput& prev) {
  run.d_list.insert(run.d_list.end(), prev.d_list.begin(), prev.d_list.end());
  return run;
}

}  // namespace pcube
