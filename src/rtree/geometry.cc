#include "rtree/geometry.h"

#include <sstream>

namespace pcube {

std::string RectF::ToString() const {
  std::ostringstream os;
  os << "[";
  for (int d = 0; d < dims; ++d) {
    if (d > 0) os << " x ";
    os << "(" << min[d] << "," << max[d] << ")";
  }
  os << "]";
  return os.str();
}

}  // namespace pcube
