#include "storage/fault_injection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace pcube {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic 64-bit hash of one (page, op-index, fault-kind) event.
uint64_t EventHash(uint64_t seed, PageId pid, uint64_t page_op_index,
                   uint64_t salt) {
  return SplitMix64(seed ^ SplitMix64(pid + (salt << 56)) ^
                    SplitMix64(page_op_index + 0x5151ull));
}

double ToUnit(uint64_t h) {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

constexpr int kOpRead = 0;
constexpr int kOpWrite = 1;

}  // namespace

Result<FaultPlan> FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan item without '=': " + item);
    }
    std::string key = item.substr(0, eq);
    std::string val = item.substr(eq + 1);
    char* end = nullptr;
    double num = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0') {
      return Status::InvalidArgument("fault plan value not a number: " + item);
    }
    if (key == "seed") {
      plan.seed = static_cast<uint64_t>(num);
    } else if (key == "read_error") {
      plan.read_error_rate = num;
    } else if (key == "burst") {
      plan.read_error_burst = static_cast<uint32_t>(num);
    } else if (key == "bit_flip") {
      plan.bit_flip_rate = num;
    } else if (key == "short_read") {
      plan.short_read_rate = num;
    } else if (key == "torn_write") {
      plan.torn_write_rate = num;
    } else {
      return Status::InvalidArgument("unknown fault plan key: " + key);
    }
  }
  if (plan.read_error_rate < 0 || plan.read_error_rate > 1 ||
      plan.bit_flip_rate < 0 || plan.bit_flip_rate > 1 ||
      plan.short_read_rate < 0 || plan.short_read_rate > 1 ||
      plan.torn_write_rate < 0 || plan.torn_write_rate > 1) {
    return Status::InvalidArgument("fault plan rates must be in [0, 1]");
  }
  if (plan.read_error_burst == 0) plan.read_error_burst = 1;
  return plan;
}

std::string FaultPlan::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "seed=%llu,read_error=%g,burst=%u,bit_flip=%g,short_read=%g,"
                "torn_write=%g",
                static_cast<unsigned long long>(seed), read_error_rate,
                read_error_burst, bit_flip_rate, short_read_rate,
                torn_write_rate);
  return buf;
}

FaultInjectingPageManager::FaultInjectingPageManager(
    std::unique_ptr<PageManager> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {}

double FaultInjectingPageManager::EventRoll(PageId pid,
                                            uint64_t page_op_index,
                                            uint64_t salt) const {
  return ToUnit(EventHash(plan_.seed, pid, page_op_index, salt));
}

bool FaultInjectingPageManager::ScriptFires(PageId pid, ScriptedFault::Op op,
                                            uint64_t page_op_index,
                                            ScriptedFault::Kind* kind) const {
  for (const ScriptedFault& f : plan_.script) {
    if (f.pid != pid || f.op != op) continue;
    if (page_op_index < f.after) continue;
    if (f.times != ~0ull && page_op_index >= f.after + f.times) continue;
    *kind = f.kind;
    return true;
  }
  return false;
}

Status FaultInjectingPageManager::Read(PageId pid, Page* out) {
  if (!armed_.load(std::memory_order_relaxed) || !plan_.enabled()) {
    return inner_->Read(pid, out);
  }

  bool inject_error = false;
  bool inject_flip = false;
  bool inject_short = false;
  uint64_t page_op_index;
  {
    MutexLock lock(&mu_);
    page_op_index = page_ops_[{pid, kOpRead}]++;

    ScriptedFault::Kind scripted;
    if (ScriptFires(pid, ScriptedFault::Op::kRead, page_op_index, &scripted)) {
      switch (scripted) {
        case ScriptedFault::Kind::kTransientError:
          inject_error = true;
          break;
        case ScriptedFault::Kind::kBitFlip:
          inject_flip = true;
          break;
        case ScriptedFault::Kind::kShortRead:
          inject_short = true;
          break;
        case ScriptedFault::Kind::kTornWrite:
          break;  // not a read fault; ignore
      }
    }

    if (!inject_error) {
      // A probabilistic trigger arms a burst of `read_error_burst`
      // consecutive failures on this page, so retry behaviour is exercised.
      auto it = pending_errors_.find(pid);
      if (it != pending_errors_.end()) {
        inject_error = true;
        if (--it->second == 0) pending_errors_.erase(it);
      } else if (plan_.read_error_rate > 0 &&
                 EventRoll(pid, page_op_index, /*salt=*/1) <
                     plan_.read_error_rate) {
        inject_error = true;
        if (plan_.read_error_burst > 1) {
          pending_errors_[pid] = plan_.read_error_burst - 1;
        }
      }
    }
  }

  if (inject_error) {
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    return Status::IoError("injected transient read error on page " +
                           std::to_string(pid));
  }

  PCUBE_RETURN_NOT_OK(inner_->Read(pid, out));

  uint64_t h = EventHash(plan_.seed, pid, page_op_index, /*salt=*/2);
  if (!inject_flip && plan_.bit_flip_rate > 0 &&
      EventRoll(pid, page_op_index, /*salt=*/3) < plan_.bit_flip_rate) {
    inject_flip = true;
  }
  if (!inject_short && plan_.short_read_rate > 0 &&
      EventRoll(pid, page_op_index, /*salt=*/4) < plan_.short_read_rate) {
    inject_short = true;
  }
  if (inject_flip) {
    size_t byte = static_cast<size_t>(h % kPageSize);
    out->data()[byte] ^= static_cast<uint8_t>(1u << ((h >> 13) % 8));
    bit_flips_.fetch_add(1, std::memory_order_relaxed);
  }
  if (inject_short) {
    size_t keep = 1 + static_cast<size_t>((h >> 21) % (kPageSize - 1));
    std::fill(out->data() + keep, out->data() + kPageSize, uint8_t{0});
    short_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status FaultInjectingPageManager::Write(PageId pid, const Page& page) {
  if (!armed_.load(std::memory_order_relaxed) || !plan_.enabled()) {
    return inner_->Write(pid, page);
  }

  bool tear = false;
  uint64_t page_op_index;
  {
    MutexLock lock(&mu_);
    page_op_index = page_ops_[{pid, kOpWrite}]++;
    ScriptedFault::Kind scripted;
    if (ScriptFires(pid, ScriptedFault::Op::kWrite, page_op_index,
                    &scripted) &&
        scripted == ScriptedFault::Kind::kTornWrite) {
      tear = true;
    }
  }
  if (!tear && plan_.torn_write_rate > 0 &&
      EventRoll(pid, page_op_index, /*salt=*/5) < plan_.torn_write_rate) {
    tear = true;
  }
  if (!tear) return inner_->Write(pid, page);

  // Torn write: persist a prefix of the new content over the old bytes, the
  // way a crash mid-pwrite would. The caller sees success; the damage shows
  // up on a later read (as a checksum mismatch when that layer is stacked).
  uint64_t h = EventHash(plan_.seed, pid, page_op_index, /*salt=*/6);
  size_t prefix = static_cast<size_t>(h % kPageSize);
  Page torn;
  if (!inner_->Read(pid, &torn).ok()) torn.Zero();
  std::copy(page.data(), page.data() + prefix, torn.data());
  torn_writes_.fetch_add(1, std::memory_order_relaxed);
  return inner_->Write(pid, torn);
}

}  // namespace pcube
