// Page-backed store for the Bloom-filter signature variant (paper §VII):
// per cell, one Bloom filter over the SIDs of all present nodes/tuples.
// Loading a cell's filter reads its pages (charged as signature I/O).
#pragma once

#include <map>
#include <vector>

#include "bitmap/bloom_filter.h"
#include "common/status.h"
#include "core/signature.h"
#include "cube/cell.h"
#include "storage/buffer_pool.h"

namespace pcube {

/// Stores serialized Bloom filters, one per cell, across pages.
class BloomStore {
 public:
  explicit BloomStore(BufferPool* pool) : pool_(pool) {}

  /// Builds and stores the filter for `cell` from a signature: every set bit
  /// contributes the SID of the path it addresses.
  Status Put(CellId cell, const Signature& sig, double bits_per_key);

  /// Loads a cell's filter; reads ceil(size/page) pages. NotFound when the
  /// cell has none (empty cells store nothing).
  Result<BloomFilter> Load(CellId cell, uint64_t* pages_read) const;

  uint64_t num_pages() const { return num_pages_; }

 private:
  BufferPool* pool_;
  std::map<CellId, std::vector<PageId>> blobs_;  // pages of each serialized filter
  std::map<CellId, uint32_t> blob_sizes_;
  uint64_t num_pages_ = 0;
};

}  // namespace pcube
