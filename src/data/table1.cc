#include "data/table1.h"

namespace pcube {

namespace {

struct Row {
  uint32_t a;
  uint32_t b;
  float x;
  float y;
  Path path;
};

// Table I verbatim (a1..a4 -> 0..3, b1..b3 -> 0..2).
const std::vector<Row>& Rows() {
  static const std::vector<Row> rows = {
      {0, 0, 0.00f, 0.40f, {1, 1, 1}},  // t1
      {1, 1, 0.20f, 0.60f, {1, 1, 2}},  // t2
      {0, 0, 0.30f, 0.70f, {1, 2, 1}},  // t3
      {2, 2, 0.50f, 0.40f, {1, 2, 2}},  // t4
      {3, 0, 0.60f, 0.00f, {2, 1, 1}},  // t5
      {1, 2, 0.72f, 0.30f, {2, 1, 2}},  // t6
      {3, 1, 0.72f, 0.36f, {2, 2, 1}},  // t7
      {2, 2, 0.85f, 0.62f, {2, 2, 2}},  // t8
  };
  return rows;
}

}  // namespace

Dataset MakeTable1Dataset() {
  Schema schema;
  schema.num_bool = 2;
  schema.num_pref = 2;
  schema.bool_cardinality = {4, 3};
  Dataset data(schema, Rows().size());
  for (TupleId t = 0; t < Rows().size(); ++t) {
    const Row& r = Rows()[t];
    data.SetBoolValue(t, kTable1DimA, r.a);
    data.SetBoolValue(t, kTable1DimB, r.b);
    data.SetPrefValue(t, 0, r.x);
    data.SetPrefValue(t, 1, r.y);
  }
  return data;
}

std::vector<std::tuple<TupleId, std::vector<float>, Path>> Table1TreeEntries() {
  std::vector<std::tuple<TupleId, std::vector<float>, Path>> entries;
  for (TupleId t = 0; t < Rows().size(); ++t) {
    const Row& r = Rows()[t];
    entries.emplace_back(t, std::vector<float>{r.x, r.y}, r.path);
  }
  return entries;
}

}  // namespace pcube
