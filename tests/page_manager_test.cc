// PageManager tests: memory and file implementations behave identically.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "storage/page_manager.h"

namespace pcube {
namespace {

void FillPattern(Page* p, uint8_t seed) {
  for (size_t i = 0; i < kPageSize; ++i) {
    p->bytes[i] = static_cast<uint8_t>(seed + i);
  }
}

void ExerciseManager(PageManager* pm) {
  EXPECT_EQ(pm->NumPages(), 0u);
  auto p0 = pm->Allocate();
  auto p1 = pm->Allocate();
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(pm->NumPages(), 2u);
  EXPECT_EQ(pm->SizeBytes(), 2 * kPageSize);

  Page w;
  FillPattern(&w, 7);
  ASSERT_TRUE(pm->Write(*p1, w).ok());
  Page r;
  ASSERT_TRUE(pm->Read(*p1, &r).ok());
  EXPECT_EQ(r.bytes, w.bytes);

  // Fresh pages read back zeroed.
  ASSERT_TRUE(pm->Read(*p0, &r).ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(r.bytes[i], 0);

  // Out-of-range access fails.
  EXPECT_FALSE(pm->Read(99, &r).ok());
  EXPECT_FALSE(pm->Write(99, w).ok());
}

TEST(MemoryPageManagerTest, BasicOps) {
  MemoryPageManager pm;
  ExerciseManager(&pm);
}

TEST(FilePageManagerTest, BasicOps) {
  std::string path = testing::TempDir() + "/pcube_fpm_test.db";
  auto pm = FilePageManager::Open(path, /*truncate=*/true);
  ASSERT_TRUE(pm.ok());
  ExerciseManager(pm->get());
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, PersistsAcrossReopen) {
  std::string path = testing::TempDir() + "/pcube_fpm_reopen.db";
  {
    auto pm = FilePageManager::Open(path, /*truncate=*/true);
    ASSERT_TRUE(pm.ok());
    auto pid = (*pm)->Allocate();
    ASSERT_TRUE(pid.ok());
    Page w;
    FillPattern(&w, 99);
    ASSERT_TRUE((*pm)->Write(*pid, w).ok());
  }
  {
    auto pm = FilePageManager::Open(path, /*truncate=*/false);
    ASSERT_TRUE(pm.ok());
    EXPECT_EQ((*pm)->NumPages(), 1u);
    Page r;
    ASSERT_TRUE((*pm)->Read(0, &r).ok());
    Page expect;
    FillPattern(&expect, 99);
    EXPECT_EQ(r.bytes, expect.bytes);
  }
  std::remove(path.c_str());
}

TEST(FilePageManagerTest, ShortPreadIsCorruption) {
  std::string path = testing::TempDir() + "/pcube_fpm_short.db";
  {
    auto pm = FilePageManager::Open(path, /*truncate=*/true);
    ASSERT_TRUE(pm.ok());
    Page w;
    FillPattern(&w, 3);
    ASSERT_TRUE((*pm)->Allocate().ok());
    auto p1 = (*pm)->Allocate();
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE((*pm)->Write(*p1, w).ok());
  }
  // Truncate the file mid-page: page 1 now has only 512 of its 4096 bytes.
  ASSERT_EQ(::truncate(path.c_str(), kPageSize + 512), 0);
  {
    auto pm = FilePageManager::Open(path, /*truncate=*/false);
    ASSERT_TRUE(pm.ok());
    // Open floors the page count, so the torn tail page is already gone...
    EXPECT_EQ((*pm)->NumPages(), 1u);
    Page r;
    EXPECT_TRUE((*pm)->Read(0, &r).ok());
  }
  // ...so re-create a manager that still believes page 1 exists by
  // allocating past the tear, then truncating underneath it.
  {
    auto pm = FilePageManager::Open(path, /*truncate=*/false);
    ASSERT_TRUE(pm.ok());
    auto p1 = (*pm)->Allocate();
    ASSERT_TRUE(p1.ok());
    ASSERT_EQ(::truncate(path.c_str(), kPageSize + 512), 0);
    Page r;
    Status s = (*pm)->Read(*p1, &r);
    EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcube
