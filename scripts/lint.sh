#!/usr/bin/env bash
# pcube-lint driver: architecture-aware static checks (DESIGN.md §16).
#
# Two tiers enforce the same four rules:
#
#   plugin tier — when clang-tidy AND the built clang-tidy plugin module
#     (tools/pcube_lint/PCubeLintModule.cpp, built only when LLVM/Clang dev
#     headers are present: -DPCUBE_LINT_PLUGIN=ON) are available, run
#     clang-tidy -load over the build's compile_commands.json with only the
#     pcube-* checks enabled. AST-accurate: sees through typedefs, macro
#     expansions and overload resolution.
#
#   fallback tier — always available: the self-contained pcube_lint_scan
#     binary (no LLVM dependency; builds with the same toolchain as the
#     engine) runs the lexical versions of the same checks over the
#     git-tracked C++ sources. This is the tier CI actually gates on in
#     environments without clang, and the fixture corpus under
#     tests/lint_fixtures/ pins its behavior either way.
#
# An optional `clang --analyze` sweep runs after either tier when clang is
# installed; it is additive (deeper path-sensitive checks), never required.
#
# Usage: scripts/lint.sh [build-dir]   (default: build)
# Exit: 0 clean, 1 findings, 2 usage/environment error.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

# The scanner is part of the default build; make sure it exists.
if [ ! -x "$BUILD_DIR/tools/pcube_lint/pcube_lint_scan" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target pcube_lint_scan
fi
SCAN="$BUILD_DIR/tools/pcube_lint/pcube_lint_scan"

# Everything the engine compiles plus the tests: the mutation-entry
# allowlist and the pragma escapes are how legitimate sites opt out, not
# path exclusions. Two directories ARE excluded: tests/lint_fixtures/ is
# the seeded-violation corpus (lint_fixture_test runs the scanner over it
# deliberately; scanning it here would fail every clean tree), and
# tools/pcube_lint/ is the lint tool itself (its diagnostic strings and
# fixture literals mention every forbidden name). git pathspecs match
# recursively, so the exclusions must be explicit.
mapfile -t files < <(git ls-files 'src/*.cc' 'src/*.h' \
                     'tools/*.cpp' 'bench/*.cc' 'bench/*.h' \
                     'tests/*.cc' 'tests/*.h' \
                     ':!tests/lint_fixtures' ':!tools/pcube_lint')

PLUGIN="$BUILD_DIR/tools/pcube_lint/libpcube_lint.so"
if command -v clang-tidy >/dev/null 2>&1 && [ -f "$PLUGIN" ]; then
  echo "lint.sh: plugin tier (clang-tidy -load) over compile_commands.json"
  # Only compiled translation units appear in the database; headers are
  # checked through their includers.
  mapfile -t tu_files < <(git ls-files 'src/*.cc' 'tools/*.cpp' \
                          'bench/*.cc' ':!tools/pcube_lint')
  clang-tidy -p "$BUILD_DIR" --quiet \
    -load "$PLUGIN" \
    -checks='-*,pcube-mutation-entry,pcube-wire-no-abort,pcube-guarded-by-completeness,pcube-ignore-error-rationale' \
    "${tu_files[@]}"
  echo "lint.sh: plugin tier clean over ${#tu_files[@]} translation units"
else
  echo "lint.sh: clang-tidy plugin unavailable — fallback tier" \
       "(pcube_lint_scan, same four checks, lexical)"
fi

# The fallback tier always runs: it is the floor both environments share,
# and the only tier that sees headers directly.
"$SCAN" "${files[@]}"

# Optional deeper sweep: clang's path-sensitive static analyzer over the
# non-test, non-bench translation units (src/ includes only — bench/ and
# tools/ pull in google-benchmark/CLI headers that need the full compile
# database). Additive only — absence is not a failure.
if command -v clang >/dev/null 2>&1; then
  echo "lint.sh: clang --analyze sweep"
  mapfile -t tu_files < <(git ls-files 'src/*.cc')
  fail=0
  for tu in "${tu_files[@]}"; do
    # clang --analyze exits nonzero only on compile errors; analyzer
    # findings still exit 0, so scan the output for warning lines.
    if ! out="$(clang --analyze --analyzer-output text -std=c++20 -Isrc \
                "$tu" 2>&1)" || grep -q 'warning:' <<<"$out"; then
      printf '%s\n' "$out" >&2
      fail=1
    fi
  done
  if [ "$fail" -ne 0 ]; then
    echo "lint.sh: clang --analyze reported findings" >&2
    exit 1
  fi
  echo "lint.sh: clang --analyze clean over ${#tu_files[@]} translation units"
else
  echo "lint.sh: clang not installed — analyzer sweep SKIPPED (advisory only)"
fi
