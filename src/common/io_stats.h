// Simulated-disk accounting. Every physical page fetch in the storage layer
// is charged to one of these counters, classified by what the page holds.
// The paper's "number of disk accesses" figures (Fig. 9, Fig. 15) are read
// straight from an IoStats snapshot, which makes them deterministic and
// hardware-independent.
//
// Thread-safety: counters are relaxed atomics, so one IoStats instance may
// be charged from many threads at once (the striped BufferPool does exactly
// that). Copying an IoStats takes an element-wise snapshot; reading totals
// while writers are active yields a momentary (not transactionally
// consistent) view — exact once the writers have quiesced, which is when
// benchmarks and tests read them. Per-thread attribution on top of the
// shared counters is provided by BufferPool::ScopedThreadStats.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pcube {

/// What a fetched page contains, for per-category breakdowns.
enum class IoCategory : int {
  kRtreeBlock = 0,   ///< R-tree node page (paper: DBlock / SBlock)
  kSignature,        ///< partial-signature page (paper: SSig)
  kBooleanVerify,    ///< random tuple access for boolean verification (DBool)
  kBtree,            ///< B+-tree node page (boolean index / signature index)
  kHeapFile,         ///< base-table block (table scans)
  kNumCategories,
};

/// Mutable counter block shared by the storage structures of one experiment.
struct IoStats {
  std::atomic<uint64_t> reads[static_cast<int>(IoCategory::kNumCategories)] = {};
  std::atomic<uint64_t> writes[static_cast<int>(IoCategory::kNumCategories)] = {};

  IoStats() = default;
  IoStats(const IoStats& o) { *this = o; }
  IoStats& operator=(const IoStats& o) {
    if (this != &o) {
      for (int i = 0; i < static_cast<int>(IoCategory::kNumCategories); ++i) {
        reads[i].store(o.reads[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        writes[i].store(o.writes[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      }
    }
    return *this;
  }

  void CountRead(IoCategory c, uint64_t n = 1) {
    reads[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  void CountWrite(IoCategory c, uint64_t n = 1) {
    writes[static_cast<int>(c)].fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t ReadCount(IoCategory c) const {
    return reads[static_cast<int>(c)].load(std::memory_order_relaxed);
  }
  uint64_t WriteCount(IoCategory c) const {
    return writes[static_cast<int>(c)].load(std::memory_order_relaxed);
  }

  uint64_t TotalReads() const {
    uint64_t t = 0;
    for (const auto& r : reads) t += r.load(std::memory_order_relaxed);
    return t;
  }
  uint64_t TotalWrites() const {
    uint64_t t = 0;
    for (const auto& w : writes) t += w.load(std::memory_order_relaxed);
    return t;
  }

  void Reset() { *this = IoStats(); }

  /// Element-wise accumulation of another counter block into this one (used
  /// to merge per-thread stats into a global snapshot).
  void Merge(const IoStats& other) {
    for (int i = 0; i < static_cast<int>(IoCategory::kNumCategories); ++i) {
      CountRead(static_cast<IoCategory>(i),
                other.reads[i].load(std::memory_order_relaxed));
      CountWrite(static_cast<IoCategory>(i),
                 other.writes[i].load(std::memory_order_relaxed));
    }
  }

  /// Difference of two snapshots (this - other), element-wise.
  IoStats Delta(const IoStats& other) const {
    IoStats d;
    for (int i = 0; i < static_cast<int>(IoCategory::kNumCategories); ++i) {
      d.reads[i].store(reads[i].load(std::memory_order_relaxed) -
                           other.reads[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      d.writes[i].store(writes[i].load(std::memory_order_relaxed) -
                            other.writes[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    return d;
  }

  std::string ToString() const;
};

}  // namespace pcube
