
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bloom_store.cc" "src/core/CMakeFiles/pcube_core.dir/bloom_store.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/bloom_store.cc.o.d"
  "/root/repo/src/core/pcube.cc" "src/core/CMakeFiles/pcube_core.dir/pcube.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/pcube.cc.o.d"
  "/root/repo/src/core/signature.cc" "src/core/CMakeFiles/pcube_core.dir/signature.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/signature.cc.o.d"
  "/root/repo/src/core/signature_algebra.cc" "src/core/CMakeFiles/pcube_core.dir/signature_algebra.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/signature_algebra.cc.o.d"
  "/root/repo/src/core/signature_builder.cc" "src/core/CMakeFiles/pcube_core.dir/signature_builder.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/signature_builder.cc.o.d"
  "/root/repo/src/core/signature_codec.cc" "src/core/CMakeFiles/pcube_core.dir/signature_codec.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/signature_codec.cc.o.d"
  "/root/repo/src/core/signature_cursor.cc" "src/core/CMakeFiles/pcube_core.dir/signature_cursor.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/signature_cursor.cc.o.d"
  "/root/repo/src/core/signature_store.cc" "src/core/CMakeFiles/pcube_core.dir/signature_store.cc.o" "gcc" "src/core/CMakeFiles/pcube_core.dir/signature_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/pcube_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/pcube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pcube_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pcube_rtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
