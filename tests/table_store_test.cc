// TableStore + BooleanIndex tests.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "storage/boolean_index.h"
#include "storage/table_store.h"

namespace pcube {
namespace {

class TableStoreTest : public ::testing::Test {
 protected:
  TableStoreTest() : pool_(&pm_, 4096, &stats_) {
    SyntheticConfig config;
    config.num_tuples = 5000;
    config.num_bool = 3;
    config.num_pref = 2;
    config.bool_cardinality = 10;
    config.seed = 77;
    data_ = GenerateSynthetic(config);
  }

  MemoryPageManager pm_;
  IoStats stats_;
  BufferPool pool_;
  Dataset data_;
};

TEST_F(TableStoreTest, RoundTripsEveryTuple) {
  auto table = TableStore::Build(&pool_, data_);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_tuples(), data_.num_tuples());
  for (TupleId t = 0; t < data_.num_tuples(); t += 97) {
    auto row = table->GetTuple(t);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->tid, t);
    for (int d = 0; d < data_.num_bool(); ++d) {
      EXPECT_EQ(row->bools[d], data_.BoolValue(t, d));
    }
    for (int d = 0; d < data_.num_pref(); ++d) {
      EXPECT_EQ(row->prefs[d], data_.PrefValue(t, d));
    }
  }
  EXPECT_FALSE(table->GetTuple(data_.num_tuples()).ok());
}

TEST_F(TableStoreTest, ScanVisitsAllInOrder) {
  auto table = TableStore::Build(&pool_, data_);
  ASSERT_TRUE(table.ok());
  TupleId expect = 0;
  ASSERT_TRUE(table->Scan([&](const TupleData& row) {
    EXPECT_EQ(row.tid, expect++);
    return true;
  }).ok());
  EXPECT_EQ(expect, data_.num_tuples());
}

TEST_F(TableStoreTest, RandomAccessChargesRequestedCategory) {
  auto table = TableStore::Build(&pool_, data_);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(pool_.Clear().ok());
  stats_.Reset();
  ASSERT_TRUE(table->GetTuple(17, IoCategory::kBooleanVerify).ok());
  EXPECT_EQ(stats_.ReadCount(IoCategory::kBooleanVerify), 1u);
  EXPECT_EQ(stats_.ReadCount(IoCategory::kHeapFile), 0u);
}

TEST_F(TableStoreTest, PageCountMatchesRowWidth) {
  auto table = TableStore::Build(&pool_, data_);
  ASSERT_TRUE(table.ok());
  uint64_t expect_pages =
      (data_.num_tuples() + table->rows_per_page() - 1) / table->rows_per_page();
  EXPECT_EQ(table->num_pages(), expect_pages);
}

TEST_F(TableStoreTest, BooleanIndexFindsExactlyMatchingTuples) {
  auto table = TableStore::Build(&pool_, data_);
  ASSERT_TRUE(table.ok());
  for (int dim = 0; dim < data_.num_bool(); ++dim) {
    auto index = BooleanIndex::Build(&pool_, data_, dim);
    ASSERT_TRUE(index.ok());
    for (uint32_t v = 0; v < 10; v += 3) {
      auto tids = index->Lookup(v);
      ASSERT_TRUE(tids.ok());
      std::vector<TupleId> expect;
      for (TupleId t = 0; t < data_.num_tuples(); ++t) {
        if (data_.BoolValue(t, dim) == v) expect.push_back(t);
      }
      EXPECT_EQ(*tids, expect);
      auto count = index->Count(v);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count, expect.size());
    }
  }
}

TEST_F(TableStoreTest, BooleanIndexAddAfterBuild) {
  auto index = BooleanIndex::Build(&pool_, data_, 0);
  ASSERT_TRUE(index.ok());
  uint64_t before = index->Lookup(3)->size();
  ASSERT_TRUE(index->Add(3, 999999).ok());
  auto after = index->Lookup(3);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before + 1);
  EXPECT_EQ(after->back(), 999999u);
}

TEST_F(TableStoreTest, AppendExtendsTable) {
  auto table = TableStore::Build(&pool_, data_);
  ASSERT_TRUE(table.ok());
  std::vector<uint32_t> bools = {1, 2, 3};
  std::vector<float> prefs = {0.5f, 0.25f};
  auto tid = table->Append(bools, prefs);
  ASSERT_TRUE(tid.ok());
  EXPECT_EQ(*tid, data_.num_tuples());
  auto row = table->GetTuple(*tid);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->bools[2], 3u);
  EXPECT_EQ(row->prefs[1], 0.25f);
}

}  // namespace
}  // namespace pcube
