# Empty compiler generated dependencies file for pcube.
# This may be replaced when dependencies are built.
