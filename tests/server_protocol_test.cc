// The wire codec under hostile input (DESIGN.md §14.1): round-trips for
// every frame kind, then the defensive half — truncations at every byte
// boundary, deterministic bit flips, pure garbage, cap violations, and a
// live server fed raw malformed bytes over a socket. Decoders must return
// a non-OK Status for damage and NEVER crash, read out of bounds, or reach
// the PCUBE_CHECK aborts inside ranking.h. Runs under ASan and UBSan via
// scripts/ci.sh (labels `asan;ubsan`).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

using wire::FrameHeader;
using wire::FrameType;
using wire::QueryEnvelope;

QueryEnvelope SkylineEnvelope() {
  QueryEnvelope e;
  e.tenant = "team-a.prod_1";
  SkylineQueryOptions options;
  options.pref_dims = {0, 2};
  options.origin = {0.25f, -1.5f, 3.0f};
  options.skyband_k = 4;
  e.request = QueryRequest::Skyline(PredicateSet{{0, 3}, {2, 7}}, options);
  e.request.deadline_ms = 1500;
  return e;
}

std::vector<QueryEnvelope> AllEnvelopes() {
  std::vector<QueryEnvelope> all;
  all.push_back(SkylineEnvelope());

  QueryEnvelope linear;
  linear.tenant = "";
  linear.request = QueryRequest::TopK(
      PredicateSet{{1, 9}},
      std::make_shared<LinearRanking>(std::vector<double>{1.0, -2.5}), 10);
  all.push_back(std::move(linear));

  QueryEnvelope wl2;
  wl2.tenant = "w";
  wl2.request = QueryRequest::TopK(
      PredicateSet{},
      std::make_shared<WeightedL2Ranking>(std::vector<double>{15000, 30000},
                                          std::vector<double>{1.0, 0.5}),
      3);
  wl2.request.deadline_ms = 1;
  all.push_back(std::move(wl2));

  QueryEnvelope mink;
  mink.tenant = "minkowski-tenant";
  mink.request = QueryRequest::TopK(
      PredicateSet{{0, 1}, {1, 2}, {2, 3}},
      std::make_shared<MinkowskiRanking>(std::vector<double>{0.5},
                                         std::vector<double>{2.0}, 3.0),
      1000);
  all.push_back(std::move(mink));
  return all;
}

std::string MustEncode(const QueryEnvelope& e) {
  Result<std::string> payload = wire::EncodeQuery(e);
  EXPECT_TRUE(payload.ok()) << payload.status().ToString();
  return payload.ok() ? payload.value() : std::string();
}

TEST(ServerProtocolTest, QueryRoundTripsExactly) {
  for (const QueryEnvelope& e : AllEnvelopes()) {
    const std::string payload = MustEncode(e);
    QueryEnvelope decoded;
    Status s = wire::DecodeQuery(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
        &decoded);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(decoded.tenant, e.tenant);
    EXPECT_EQ(decoded.request.kind, e.request.kind);
    EXPECT_EQ(decoded.request.deadline_ms, e.request.deadline_ms);
    EXPECT_EQ(decoded.request.preds, e.request.preds);
    // Canonical() covers skyline options / ranking / k bit-exactly.
    EXPECT_EQ(decoded.request.Canonical(), e.request.Canonical());
    EXPECT_EQ(decoded.request.skyline.pref_dims, e.request.skyline.pref_dims);
  }
}

TEST(ServerProtocolTest, FrameHeaderRoundTripAndDamage) {
  std::string frame;
  wire::AppendFrame(FrameType::kQuery, std::string(17, 'x'), &frame);
  ASSERT_EQ(frame.size(), wire::kHeaderBytes + 17);
  FrameHeader h;
  ASSERT_TRUE(wire::ParseFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()), &h)
                  .ok());
  EXPECT_EQ(h.type, FrameType::kQuery);
  EXPECT_EQ(h.payload_len, 17u);

  // Each kind of header damage must be rejected.
  auto damaged = [&frame](size_t at, uint8_t value) {
    std::string copy = frame;
    copy[at] = static_cast<char>(value);
    FrameHeader out;
    return wire::ParseFrameHeader(
        reinterpret_cast<const uint8_t*>(copy.data()), &out);
  };
  EXPECT_FALSE(damaged(0, 0xFF).ok());  // magic
  EXPECT_FALSE(damaged(4, 99).ok());    // version
  EXPECT_FALSE(damaged(5, 0).ok());     // frame type below range
  EXPECT_FALSE(damaged(5, 200).ok());   // frame type above range
  EXPECT_FALSE(damaged(6, 1).ok());     // reserved bytes
  EXPECT_FALSE(damaged(11, 0xFF).ok()); // payload_len > 1 MiB
}

TEST(ServerProtocolTest, ResultFramesRoundTrip) {
  wire::ResultHeader rh;
  rh.trace_id = 77;
  rh.result_count = 5;
  rh.has_scores = true;
  rh.plan = 1;
  rh.cache = 3;
  rh.degraded = true;
  rh.fanout_shards = 4;
  rh.seconds = 0.125;
  rh.queue_wait_seconds = 0.5;
  rh.io_reads = 42;
  rh.counters.heap_peak = 9;
  rh.counters.sig_seconds = 0.25;
  const std::string payload = wire::EncodeResultHeader(rh);
  wire::ResultHeader out;
  ASSERT_TRUE(wire::DecodeResultHeader(
                  reinterpret_cast<const uint8_t*>(payload.data()),
                  payload.size(), &out)
                  .ok());
  EXPECT_EQ(out.trace_id, 77u);
  EXPECT_EQ(out.result_count, 5u);
  EXPECT_TRUE(out.has_scores);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.fanout_shards, 4u);
  EXPECT_EQ(out.io_reads, 42u);
  EXPECT_EQ(out.counters.heap_peak, 9u);
  EXPECT_DOUBLE_EQ(out.counters.sig_seconds, 0.25);

  const std::vector<TupleId> tids = {1, 5, 9, 200, 4096};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.4, 0.5};
  const std::string chunk = wire::EncodeResultChunk(tids, scores, 1, 3);
  std::vector<TupleId> got_tids;
  std::vector<double> got_scores;
  ASSERT_TRUE(wire::DecodeResultChunk(
                  reinterpret_cast<const uint8_t*>(chunk.data()), chunk.size(),
                  /*has_scores=*/true, &got_tids, &got_scores)
                  .ok());
  EXPECT_EQ(got_tids, (std::vector<TupleId>{5, 9, 200}));
  EXPECT_EQ(got_scores, (std::vector<double>{0.2, 0.3, 0.4}));

  // A chunk whose score flag contradicts the stream header is corruption.
  EXPECT_FALSE(wire::DecodeResultChunk(
                   reinterpret_cast<const uint8_t*>(chunk.data()),
                   chunk.size(), /*has_scores=*/false, &got_tids, &got_scores)
                   .ok());
}

TEST(ServerProtocolTest, ErrorFrameCarriesStatus) {
  const Status in = Status::ResourceExhausted("queue full");
  const std::string payload = wire::EncodeError(in);
  Status out = wire::DecodeError(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  EXPECT_TRUE(out.IsResourceExhausted());
  EXPECT_EQ(out.message(), "queue full");

  // Oversized messages are truncated to the wire cap, not rejected.
  Status big = Status::Timeout(std::string(5000, 'm'));
  const std::string truncated = wire::EncodeError(big);
  Status back = wire::DecodeError(
      reinterpret_cast<const uint8_t*>(truncated.data()), truncated.size());
  EXPECT_TRUE(back.IsTimeout());
  EXPECT_EQ(back.message().size(), wire::kMaxErrorBytes);
}

TEST(ServerProtocolTest, CapViolationsAreRejected) {
  {
    QueryEnvelope e = SkylineEnvelope();
    e.tenant = std::string(wire::kMaxTenantBytes + 1, 'a');
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
    e.tenant = "bad tenant!";  // charset
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
  }
  {
    QueryEnvelope e = SkylineEnvelope();
    for (int d = 0; d < 70; ++d) {
      e.request.preds.Add({d, 1u});
    }
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
  }
  {
    QueryEnvelope e = SkylineEnvelope();
    e.request.skyline.skyband_k = 0;
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
    e.request.skyline.skyband_k = wire::kMaxSkybandK + 1;
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
  }
  {
    QueryEnvelope e;
    e.request = QueryRequest::TopK(
        PredicateSet{},
        std::make_shared<LinearRanking>(std::vector<double>{1.0}), 0);
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
    e.request.k = wire::kMaxK + 1;
    EXPECT_FALSE(wire::EncodeQuery(e).ok());
  }
}

// Builds a payload byte-by-byte so hostile values the encoder refuses to
// produce (negative wl2 weights, NaN, sub-1 minkowski p) still reach the
// decoder — those checks guard the ranking.h constructor aborts.
std::string HostileTopK(uint8_t rank_kind, double first_param) {
  std::string p;
  auto u8 = [&p](uint8_t v) { p.push_back(static_cast<char>(v)); };
  auto le = [&p](auto v) {
    char buf[sizeof(v)];
    std::memcpy(buf, &v, sizeof(v));
    p.append(buf, sizeof(v));
  };
  u8(0);               // tenant len
  u8(1);               // kind = topk
  le(uint64_t{0});     // deadline
  le(uint16_t{0});     // npreds
  le(uint64_t{5});     // k
  u8(rank_kind);
  le(uint16_t{1});     // ndims
  if (rank_kind == 3) le(first_param);  // minkowski p
  le(double{1.0});     // target (wl2/mink) or weights (linear)
  if (rank_kind != 1) le(first_param == first_param ? -1.0 : first_param);
  return p;
}

TEST(ServerProtocolTest, HostileRankingParametersNeverReachConstructors) {
  // Negative wl2 weight (would PCUBE_CHECK-abort in WeightedL2Ranking).
  std::string negative = HostileTopK(2, 1.0);
  QueryEnvelope out;
  EXPECT_FALSE(wire::DecodeQuery(
                   reinterpret_cast<const uint8_t*>(negative.data()),
                   negative.size(), &out)
                   .ok());
  // Minkowski p < 1 (would PCUBE_CHECK-abort in MinkowskiRanking).
  std::string small_p = HostileTopK(3, 0.25);
  EXPECT_FALSE(wire::DecodeQuery(
                   reinterpret_cast<const uint8_t*>(small_p.data()),
                   small_p.size(), &out)
                   .ok());
  // NaN parameter anywhere is rejected before any construction.
  std::string nan_p = HostileTopK(3, std::nan(""));
  EXPECT_FALSE(wire::DecodeQuery(
                   reinterpret_cast<const uint8_t*>(nan_p.data()),
                   nan_p.size(), &out)
                   .ok());
}

TEST(ServerProtocolTest, TruncationsNeverCrash) {
  for (const QueryEnvelope& e : AllEnvelopes()) {
    const std::string payload = MustEncode(e);
    for (size_t len = 0; len < payload.size(); ++len) {
      QueryEnvelope out;
      Status s = wire::DecodeQuery(
          reinterpret_cast<const uint8_t*>(payload.data()), len, &out);
      EXPECT_FALSE(s.ok()) << "truncation to " << len << " decoded";
    }
  }
  wire::ResultHeader rh;
  rh.result_count = 2;
  const std::string header = wire::EncodeResultHeader(rh);
  for (size_t len = 0; len < header.size(); ++len) {
    wire::ResultHeader out;
    EXPECT_FALSE(wire::DecodeResultHeader(
                     reinterpret_cast<const uint8_t*>(header.data()), len,
                     &out)
                     .ok());
  }
}

TEST(ServerProtocolTest, BitFlipsAndGarbageNeverCrash) {
  std::mt19937_64 rng(20260808);
  for (const QueryEnvelope& e : AllEnvelopes()) {
    const std::string payload = MustEncode(e);
    // Single-bit flips at every position: decode may succeed (a flipped
    // value bit can stay in range) but must never crash or abort.
    for (size_t byte = 0; byte < payload.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string copy = payload;
        copy[byte] = static_cast<char>(copy[byte] ^ (1 << bit));
        QueryEnvelope out;
        // Fuzzing for crashes, not outcomes: any Status is acceptable.
        wire::DecodeQuery(reinterpret_cast<const uint8_t*>(copy.data()),
                          copy.size(), &out)
            .IgnoreError();
      }
    }
  }
  // Pure garbage payloads of random lengths against every decoder.
  for (int round = 0; round < 2000; ++round) {
    std::string garbage(rng() % 200, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    const uint8_t* bytes = reinterpret_cast<const uint8_t*>(garbage.data());
    // Each decoder just has to survive the garbage; the (expected)
    // error Statuses carry no information worth asserting on.
    QueryEnvelope q;
    wire::DecodeQuery(bytes, garbage.size(), &q).IgnoreError();  // fuzz only
    wire::ResultHeader rh;
    // fuzz only: outcome irrelevant
    wire::DecodeResultHeader(bytes, garbage.size(), &rh).IgnoreError();
    std::vector<TupleId> tids;
    std::vector<double> scores;
    // fuzz only: outcome irrelevant
    wire::DecodeResultChunk(bytes, garbage.size(), true, &tids, &scores)
        .IgnoreError();
    wire::DecodeError(bytes, garbage.size()).IgnoreError();  // fuzz only
    if (garbage.size() >= wire::kHeaderBytes) {
      FrameHeader h;
      // fuzz only: outcome irrelevant
      wire::ParseFrameHeader(bytes, &h).IgnoreError();
    }
  }
}

// ---- Socket-level: a live server fed malformed bytes ---------------------

class ServerSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_tuples = 400;
    config.num_bool = 2;
    config.num_pref = 2;
    config.bool_cardinality = 4;
    config.seed = 11;
    auto built = Workbench::Build(GenerateSynthetic(config), {});
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    wb_ = std::move(*built);
    ServerOptions options;
    options.workers = 2;
    server_ = std::make_unique<PCubeServer>(wb_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_.reset();
    wb_.reset();
  }

  Result<QueryResponse> RunOne() {
    auto client = PCubeClient::Connect("127.0.0.1", server_->port());
    if (!client.ok()) return client.status();
    return (*client)->Run(QueryRequest::Skyline(PredicateSet{{0, 1}}),
                          "test");
  }

  std::unique_ptr<Workbench> wb_;
  std::unique_ptr<PCubeServer> server_;
};

/// Connects a raw TCP socket to 127.0.0.1:port (no protocol layer).
int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST_F(ServerSocketTest, GarbageHeaderGetsErrorFrameAndServerSurvives) {
  const int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  std::string garbage(64, '\0');
  std::mt19937_64 rng(7);
  for (char& c : garbage) c = static_cast<char>(rng());
  garbage[0] = 'X';  // guarantee the magic check fails
  ASSERT_TRUE(wire::WriteAll(fd, garbage.data(), garbage.size()).ok());
  // The server answers one corruption error frame and closes.
  wire::FrameHeader h;
  std::string payload;
  Status s = wire::ReadFrame(fd, &h, &payload);
  if (s.ok()) {
    EXPECT_EQ(h.type, FrameType::kError);
    Status reported = wire::DecodeError(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
    EXPECT_TRUE(reported.IsCorruption()) << reported.ToString();
  }
  ::close(fd);

  // The live server must still answer clean queries afterwards.
  auto after = RunOne();
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServerSocketTest, OversizedFrameIsRejectedBeforeAllocation) {
  const int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  // Valid magic/version/type but a payload length far beyond the cap; the
  // server must reject from the 12 header bytes without ever allocating or
  // reading the announced 256 MiB.
  std::string header;
  wire::AppendFrame(FrameType::kQuery, std::string(), &header);
  const uint32_t huge = 256u << 20;
  std::memcpy(header.data() + 8, &huge, sizeof(huge));
  ASSERT_TRUE(wire::WriteAll(fd, header.data(), header.size()).ok());
  wire::FrameHeader h;
  std::string payload;
  Status s = wire::ReadFrame(fd, &h, &payload);
  if (s.ok()) {
    EXPECT_EQ(h.type, FrameType::kError);
  }
  ::close(fd);
  auto after = RunOne();
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServerSocketTest, MalformedPayloadKeepsConnectionServing) {
  const int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  // A correctly framed query whose payload is garbage: the stream stays
  // synchronized, so the server answers an error frame and the SAME
  // connection must then serve a valid query.
  std::string bad_payload(40, '\x5A');
  ASSERT_TRUE(wire::WriteFrame(fd, FrameType::kQuery, bad_payload).ok());
  wire::FrameHeader h;
  std::string payload;
  ASSERT_TRUE(wire::ReadFrame(fd, &h, &payload).ok());
  ASSERT_EQ(h.type, FrameType::kError);

  wire::QueryEnvelope good;
  good.tenant = "t";
  good.request = QueryRequest::Skyline(PredicateSet{{0, 1}});
  Result<std::string> encoded = wire::EncodeQuery(good);
  ASSERT_TRUE(encoded.ok());
  ASSERT_TRUE(wire::WriteFrame(fd, FrameType::kQuery, encoded.value()).ok());
  ASSERT_TRUE(wire::ReadFrame(fd, &h, &payload).ok());
  EXPECT_EQ(h.type, FrameType::kResultHeader);
  // Drain the stream so the close is clean.
  while (h.type != FrameType::kDone && h.type != FrameType::kError) {
    ASSERT_TRUE(wire::ReadFrame(fd, &h, &payload).ok());
  }
  ::close(fd);
}

TEST_F(ServerSocketTest, ClientAndServerAnswerMatchesDirectRun) {
  QueryRequest q = QueryRequest::Skyline(PredicateSet{{0, 2}});
  auto direct = wb_->RunShared(q);
  ASSERT_TRUE(direct.ok());
  auto client = PCubeClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  PCubeClient::ServerStats stats;
  auto remote = (*client)->Run(q, "tenant-x", &stats);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->tids, direct->tids);
  EXPECT_EQ(remote->scores, direct->scores);
  EXPECT_GT(stats.trace_id, 0u);
}

}  // namespace
}  // namespace pcube
