// Blocking client for the `pcube serve` wire protocol: connects over TCP,
// sends one kQuery frame per Run() and reassembles the streamed response
// (result header + chunks + done) into a QueryResponse. The decoder is the
// same defensive codec the server uses — a malicious or broken SERVER
// cannot make the client allocate unboundedly or read out of bounds.
//
// Server-side errors come back as the Status the server produced
// (ResourceExhausted for shed load, Timeout for expired budgets, ...), so
// callers branch on status codes exactly as they would against a local
// QueryService.
//
// Thread-safety: none — one PCubeClient is one socket with one in-flight
// request. Concurrent load uses one client per thread (see
// tests/server_overload_test.cc and bench/bench_serve.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "query/request.h"
#include "query/write_batch.h"

namespace pcube {

class PCubeClient {
 public:
  /// Connects to `host:port` (numeric IPv4 or a resolvable name).
  static Result<std::unique_ptr<PCubeClient>> Connect(const std::string& host,
                                                      uint16_t port);
  ~PCubeClient();
  PCubeClient(const PCubeClient&) = delete;
  PCubeClient& operator=(const PCubeClient&) = delete;

  /// Server-side stats the wire carries that a QueryResponse cannot hold.
  struct ServerStats {
    uint64_t trace_id = 0;          ///< the SERVER's trace id for this query
    double queue_wait_seconds = 0;  ///< admission-to-execution wait
    uint64_t io_reads = 0;          ///< physical reads on the server
  };

  /// Sends `request` under `tenant` and blocks for the full result stream.
  /// The returned response carries tids/scores/counters/plan/cache exactly
  /// as the server executed them; `stats` (optional) receives the
  /// server-only extras. After a transport-level failure (IoError /
  /// Corruption) the stream is desynchronized and the client is dead —
  /// reconnect. Server-reported errors (shed, timeout) leave the
  /// connection usable.
  Result<QueryResponse> Run(const QueryRequest& request,
                            const std::string& tenant,
                            ServerStats* stats = nullptr);

  /// Sends `batch` under `tenant` and blocks for the server's ack. Batches
  /// whose encoding exceeds the frame cap are split transparently: inserts
  /// first, then deletes (the order a single Apply uses), each slice sized
  /// to fit one kWrite frame and acked individually at the batch's Ack
  /// level. The returned WriteResult is the merge: `lsn`/`epoch` from the
  /// last slice, `first_tid` from the first slice carrying inserts,
  /// `commit_seconds` summed, `durable` only if every slice was. NOT atomic
  /// across slices — a failure mid-split leaves earlier slices applied (the
  /// returned error says how many rows landed).
  Result<WriteResult> Write(const WriteBatch& batch, const std::string& tenant);

 private:
  explicit PCubeClient(int fd) : fd_(fd) {}

  int fd_;
};

}  // namespace pcube
