// Fixed-size worker pool for inter-query parallelism. The P-Cube query
// structures are read-only once built (see DESIGN.md "Concurrency model"),
// so throughput scaling comes from running many independent queries at once
// over the shared index; this pool is the execution substrate the
// BatchExecutor fans queries out on.
//
// Thread-safety: Submit/Wait may be called from any thread. Tasks must not
// Submit to the pool they run on and then block on the returned future from
// within Wait-ing code (classic pool deadlock); the BatchExecutor only
// submits from the driver thread.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"

namespace pcube {

/// Fixed set of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);

  /// Graceful shutdown: drains every task already queued, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// the task are captured into the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function requires copyable
    // callables, so the task rides behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(&mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.Signal();
    return future;
  }

  /// Blocks until the queue is empty and every worker is idle.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar wake_;  // workers: queue non-empty or stopping
  CondVar idle_;  // Wait(): queue drained and all idle
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t active_ GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace pcube
