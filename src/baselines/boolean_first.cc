#include "baselines/boolean_first.h"

#include <algorithm>

namespace pcube {

namespace {

bool MatchesRow(const TupleData& row, const PredicateSet& preds) {
  for (const Predicate& p : preds.predicates()) {
    if (row.bools[p.dim] != p.value) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<TupleData>> BooleanFirstExecutor::Select(
    const PredicateSet& preds, BooleanFirstOutput* out) {
  std::vector<TupleData> rows;
  if (preds.empty()) {
    out->used_table_scan = true;
    Status st = table_->Scan([&](const TupleData& row) {
      if (Live(row.tid)) rows.push_back(row);
      return true;
    });
    if (!st.ok()) return st;
    return rows;
  }

  // Cost the two access paths: the index path fetches the most selective
  // predicate's postings (one random page per tuple, plus leaf pages), the
  // table scan reads every table page.
  const Predicate* best = nullptr;
  uint64_t best_count = ~uint64_t{0};
  for (const Predicate& p : preds.predicates()) {
    auto count = (*indices_)[p.dim].Count(p.value);
    if (!count.ok()) return count.status();
    if (*count < best_count) {
      best_count = *count;
      best = &p;
    }
  }
  uint64_t index_cost = best_count;  // dominant term: random tuple fetches
  uint64_t scan_cost = table_->num_pages();

  if (scan_cost <= index_cost) {
    out->used_table_scan = true;
    Status st = table_->Scan([&](const TupleData& row) {
      if (Live(row.tid) && MatchesRow(row, preds)) rows.push_back(row);
      return true;
    });
    if (!st.ok()) return st;
    return rows;
  }

  out->used_table_scan = false;
  auto tids = (*indices_)[best->dim].Lookup(best->value);
  if (!tids.ok()) return tids.status();
  for (TupleId tid : *tids) {
    if (!Live(tid)) continue;
    auto row = table_->GetTuple(tid, IoCategory::kHeapFile);
    if (!row.ok()) return row.status();
    if (MatchesRow(*row, preds)) rows.push_back(std::move(*row));
  }
  return rows;
}

Result<BooleanFirstOutput> BooleanFirstExecutor::Skyline(
    const PredicateSet& preds, std::vector<int> pref_dims) {
  BooleanFirstOutput out;
  auto rows = Select(preds, &out);
  if (!rows.ok()) return rows.status();
  out.selected = rows->size();
  out.counters.heap_peak = rows->size();  // in-memory working set (Fig. 10)
  if (rows->empty()) return out;

  int dims = static_cast<int>((*rows)[0].prefs.size());
  if (pref_dims.empty()) {
    for (int d = 0; d < dims; ++d) pref_dims.push_back(d);
  }
  // Sort-filter skyline [7] over the fetched rows.
  auto coord_sum = [&](const TupleData& r) {
    double s = 0;
    for (int d : pref_dims) s += r.prefs[d];
    return s;
  };
  std::sort(rows->begin(), rows->end(),
            [&](const TupleData& a, const TupleData& b) {
              double sa = coord_sum(a), sb = coord_sum(b);
              if (sa != sb) return sa < sb;
              return a.tid < b.tid;
            });
  std::vector<const TupleData*> skyline;
  for (const TupleData& r : *rows) {
    bool dominated = false;
    for (const TupleData* s : skyline) {
      bool all_le = true, one_lt = false;
      for (int d : pref_dims) {
        if (s->prefs[d] > r.prefs[d]) {
          all_le = false;
          break;
        }
        if (s->prefs[d] < r.prefs[d]) one_lt = true;
      }
      if (all_le && one_lt) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(&r);
  }
  for (const TupleData* s : skyline) out.tids.push_back(s->tid);
  std::sort(out.tids.begin(), out.tids.end());
  return out;
}

Result<BooleanFirstOutput> BooleanFirstExecutor::TopK(const PredicateSet& preds,
                                                      const RankingFunction& f,
                                                      size_t k) {
  BooleanFirstOutput out;
  auto rows = Select(preds, &out);
  if (!rows.ok()) return rows.status();
  out.selected = rows->size();
  out.counters.heap_peak = rows->size();
  std::vector<std::pair<double, TupleId>> scored;
  scored.reserve(rows->size());
  for (const TupleData& r : *rows) {
    scored.emplace_back(f.Score(std::span<const float>(r.prefs)), r.tid);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  for (size_t i = 0; i < take; ++i) {
    out.tids.push_back(scored[i].second);
    out.scores.push_back(scored[i].first);
  }
  return out;
}

}  // namespace pcube
