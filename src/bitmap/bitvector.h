// Dynamic fixed-length bit vector. This is the in-memory form of one
// signature node's bit array (one bit per R-tree child slot); the codecs in
// bitmap/codec.h compress it for storage inside partial signatures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/logging.h"

namespace pcube {

/// Fixed-length sequence of bits with bulk boolean algebra.
class BitVector {
 public:
  BitVector() = default;

  /// All-zero vector of `num_bits` bits.
  explicit BitVector(size_t num_bits)
      : num_bits_(num_bits), words_(bit_util::Words64(num_bits), 0) {}

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  bool Get(size_t i) const {
    PCUBE_DCHECK_LT(i, num_bits_);
    return bit_util::GetBit(words_.data(), i);
  }

  void Set(size_t i) {
    PCUBE_DCHECK_LT(i, num_bits_);
    bit_util::SetBit(words_.data(), i);
  }

  void Clear(size_t i) {
    PCUBE_DCHECK_LT(i, num_bits_);
    bit_util::ClearBit(words_.data(), i);
  }

  void Assign(size_t i, bool v) {
    if (v) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += bit_util::PopCount(w);
    return c;
  }

  bool AnySet() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  size_t FindNextSet(size_t from) const;

  /// In-place bitwise OR / AND with an equally sized vector.
  void InplaceOr(const BitVector& other);
  void InplaceAnd(const BitVector& other);

  bool operator==(const BitVector& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  const std::vector<uint64_t>& words() const { return words_; }

  /// Positions of all set bits, ascending.
  std::vector<uint32_t> SetPositions() const;

  /// e.g. "10110" (bit 0 first), for tests and debugging.
  std::string ToString() const;

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pcube
