// Incremental maintenance tests (paper §IV.B.3): after any interleaving of
// inserts and deletes — including ones that trigger node splits and forced
// re-insertion — every stored signature equals a from-scratch rebuild.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/pcube.h"
#include "core/signature_builder.h"
#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

WriteBatch::Row MakeRow(const Dataset& data, TupleId t) {
  auto bools = data.BoolRow(t);
  auto prefs = data.PrefPoint(t);
  return {{bools.begin(), bools.end()}, {prefs.begin(), prefs.end()}};
}

class MaintenanceTest : public ::testing::TestWithParam<int> {
 protected:
  /// Compares every atomic cell's stored signature against a fresh build
  /// from the tree's current paths.
  void ExpectStoreMatchesRebuild(Workbench& w,
                                 const std::vector<bool>& alive) {
    auto paths = PathTable::Collect(*w.tree());
    ASSERT_TRUE(paths.ok());
    const Dataset& data = w.data();
    for (int dim = 0; dim < data.num_bool(); ++dim) {
      for (uint32_t v = 0; v < data.schema().bool_cardinality[dim]; ++v) {
        Signature expect(w.tree()->fanout(), w.cube()->levels());
        for (TupleId t = 0; t < data.num_tuples(); ++t) {
          if (t < alive.size() && !alive[t]) continue;
          if (data.BoolValue(t, dim) == v) expect.SetPath(paths->path(t));
        }
        auto got = w.cube()->store().LoadFull(AtomicCellId(dim, v),
                                              w.tree()->fanout(),
                                              w.cube()->levels());
        ASSERT_TRUE(got.ok());
        EXPECT_TRUE(got->Equals(expect))
            << "dim=" << dim << " v=" << v << "\nstored:\n"
            << got->ToString() << "\nexpected:\n"
            << expect.ToString();
      }
    }
  }
};

TEST_P(MaintenanceTest, InsertBatchesMatchRebuild) {
  SyntheticConfig config;
  config.num_tuples = 1200;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 60 + GetParam();
  Dataset full = GenerateSynthetic(config);

  // Start the workbench from the first 800 tuples.
  Dataset initial(full.schema(), 0);
  for (TupleId t = 0; t < 800; ++t) {
    initial.Append(full.BoolRow(t), full.PrefPoint(t));
  }
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  options.rtree_by_insertion = true;
  auto wb = Workbench::Build(std::move(initial), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;

  // Apply 4 batches of 100 inserts; the write path maintains the cube
  // (falling back to a rebuild internally when the root splits).
  for (int batch = 0; batch < 4; ++batch) {
    WriteBatch wbatch;
    for (int i = 0; i < 100; ++i) {
      wbatch.inserts.push_back(MakeRow(full, 800 + batch * 100 + i));
    }
    auto applied = w.Apply(wbatch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    std::vector<bool> alive(w.data().num_tuples(), true);
    ExpectStoreMatchesRebuild(w, alive);
  }
}

TEST_P(MaintenanceTest, MixedInsertDeleteMatchesRebuild) {
  SyntheticConfig config;
  config.num_tuples = 1000;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 70 + GetParam();
  Dataset full = GenerateSynthetic(config);

  Dataset initial(full.schema(), 0);
  for (TupleId t = 0; t < 600; ++t) {
    initial.Append(full.BoolRow(t), full.PrefPoint(t));
  }
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  options.rtree_by_insertion = true;
  auto wb = Workbench::Build(std::move(initial), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;

  std::vector<bool> alive(600, true);
  Random rng(GetParam());
  for (int batch = 0; batch < 3; ++batch) {
    WriteBatch wbatch;
    // Insert 80 new tuples...
    for (int i = 0; i < 80; ++i) {
      wbatch.inserts.push_back(MakeRow(full, 600 + batch * 80 + i));
      alive.push_back(true);
    }
    // ... and delete 40 random live ones (avoiding the not-yet-applied
    // inserts: a batch's deletes may only name existing tuples).
    const size_t existing = alive.size() - 80;
    for (int i = 0; i < 40; ++i) {
      TupleId victim = rng.Uniform(existing);
      if (!alive[victim]) continue;
      alive[victim] = false;
      wbatch.deletes.push_back(victim);
    }
    auto applied = w.Apply(wbatch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    ExpectStoreMatchesRebuild(w, alive);
  }
}

TEST(MaintenanceTest, PerTupleMaintenanceMatchesRebuild) {
  // Tuple-at-a-time maintenance (the paper's non-batched mode, Fig. 7).
  SyntheticConfig config;
  config.num_tuples = 700;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 80;
  Dataset full = GenerateSynthetic(config);
  Dataset initial(full.schema(), 0);
  for (TupleId t = 0; t < 650; ++t) {
    initial.Append(full.BoolRow(t), full.PrefPoint(t));
  }
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  options.rtree_by_insertion = true;
  auto wb = Workbench::Build(std::move(initial), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;

  for (TupleId src = 650; src < 700; ++src) {
    WriteBatch wbatch;
    wbatch.inserts.push_back(MakeRow(full, src));
    auto applied = w.Apply(wbatch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }
  // Final state must equal a rebuild.
  auto paths = PathTable::Collect(*w.tree());
  ASSERT_TRUE(paths.ok());
  for (int dim = 0; dim < 2; ++dim) {
    for (uint32_t v = 0; v < 3; ++v) {
      Signature expect = BuildCellSignature(w.data(), *paths, {{dim, v}},
                                            w.tree()->fanout(),
                                            w.cube()->levels());
      auto got = w.cube()->store().LoadFull(AtomicCellId(dim, v),
                                            w.tree()->fanout(),
                                            w.cube()->levels());
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->Equals(expect));
    }
  }
}

TEST(MaintenanceTest, CompositeCellsMaintainedToo) {
  // With materialize_max_dims = 2 the 2-d composite cells must also track
  // inserts/deletes; combos first seen after the build fall back to the
  // lazy atomic AND (which stays exact at tuple level).
  SyntheticConfig config;
  config.num_tuples = 900;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 85;
  Dataset full = GenerateSynthetic(config);
  Dataset initial(full.schema(), 0);
  for (TupleId t = 0; t < 700; ++t) {
    initial.Append(full.BoolRow(t), full.PrefPoint(t));
  }
  WorkbenchOptions options;
  options.rtree.max_entries = 8;
  options.pcube.materialize_max_dims = 2;
  auto wb = Workbench::Build(std::move(initial), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;

  WriteBatch wbatch;
  for (TupleId src = 700; src < 900; ++src) {
    wbatch.inserts.push_back(MakeRow(full, src));
  }
  for (TupleId victim = 0; victim < 80; ++victim) {
    wbatch.deletes.push_back(victim);
  }
  auto applied = w.Apply(wbatch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  // Two-predicate queries exercise the composite signatures.
  for (uint32_t va = 0; va < 3; ++va) {
    for (uint32_t vb = 0; vb < 3; ++vb) {
      PredicateSet preds{{0, va}, {1, vb}};
      auto probe = w.cube()->MakeProbe(preds);
      ASSERT_TRUE(probe.ok());
      SkylineEngine engine(w.tree(), probe->get(), nullptr);
      auto out = engine.Run();
      ASSERT_TRUE(out.ok());
      std::vector<TupleId> got;
      for (const SearchEntry& e : out->skyline) got.push_back(e.id);
      std::sort(got.begin(), got.end());
      // Oracle over live tuples (deleted tids 0..79).
      std::vector<TupleId> cand;
      for (TupleId t = 80; t < w.data().num_tuples(); ++t) {
        if (preds.Matches(w.data(), t)) cand.push_back(t);
      }
      std::vector<int> dims = {0, 1};
      auto expect = SortFilterSkyline(w.data(), cand, dims);
      EXPECT_EQ(got, expect) << preds.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintenanceTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace pcube
