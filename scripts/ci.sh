#!/usr/bin/env bash
# CI driver: builds and tests the tree twice —
#   1. plain RelWithDebInfo, full ctest suite;
#   2. ThreadSanitizer (-DPCUBE_SANITIZE=thread), concurrency-focused tests
#      (thread pool, striped buffer pool, batch executor, plus the classic
#      buffer pool and workbench suites that share the touched code).
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
echo "=== plain ctest ==="
ctest --test-dir build --output-on-failure

echo "=== tsan build ==="
cmake -B build-tsan -S . -DPCUBE_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target \
  thread_pool_test buffer_pool_concurrency_test batch_executor_test \
  buffer_pool_test workbench_test
echo "=== tsan ctest ==="
ctest --test-dir build-tsan --output-on-failure -R \
  '^(thread_pool_test|buffer_pool_concurrency_test|batch_executor_test|buffer_pool_test|workbench_test)$'

echo "ci.sh: all green"
