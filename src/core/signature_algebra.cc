#include "core/signature_algebra.h"

namespace pcube {

namespace {

void UnionRec(const SignatureNode& a, const SignatureNode& b,
              SignatureNode* out, uint32_t m) {
  out->bits = a.bits.empty() ? BitVector(m) : a.bits;
  if (!b.bits.empty()) {
    if (out->bits.empty()) {
      out->bits = b.bits;
    } else {
      out->bits.InplaceOr(b.bits);
    }
  }
  auto ia = a.children.begin();
  auto ib = b.children.begin();
  while (ia != a.children.end() || ib != b.children.end()) {
    uint16_t slot;
    const SignatureNode* ca = nullptr;
    const SignatureNode* cb = nullptr;
    if (ib == b.children.end() ||
        (ia != a.children.end() && ia->first <= ib->first)) {
      slot = ia->first;
      ca = ia->second.get();
    } else {
      slot = ib->first;
    }
    if (ib != b.children.end() && ib->first == slot) cb = ib->second.get();
    auto child = std::make_unique<SignatureNode>();
    static const SignatureNode kEmpty;
    UnionRec(ca != nullptr ? *ca : kEmpty, cb != nullptr ? *cb : kEmpty,
             child.get(), m);
    out->children.emplace(slot, std::move(child));
    if (ca != nullptr) ++ia;
    if (cb != nullptr) ++ib;
  }
}

/// Returns true when the intersection node has at least one set bit.
bool IntersectRec(const SignatureNode& a, const SignatureNode& b,
                  SignatureNode* out, uint32_t m, int depth, int levels) {
  if (a.bits.empty() || b.bits.empty()) return false;
  out->bits = a.bits;
  // The kernel-backed AND reports liveness as it combines (one pass, no
  // separate AnySet scan); a dead intersection prunes the whole subtree.
  if (!out->bits.InplaceAnd(b.bits)) return false;
  if (depth + 1 < levels) {
    // Inner level: a set bit must be confirmed by a non-empty child
    // intersection.
    for (size_t bit = out->bits.FindNextSet(0); bit < out->bits.size();
         bit = out->bits.FindNextSet(bit + 1)) {
      uint16_t slot = static_cast<uint16_t>(bit + 1);
      auto ia = a.children.find(slot);
      auto ib = b.children.find(slot);
      bool alive = false;
      if (ia != a.children.end() && ib != b.children.end()) {
        auto child = std::make_unique<SignatureNode>();
        alive = IntersectRec(*ia->second, *ib->second, child.get(), m,
                             depth + 1, levels);
        if (alive) out->children.emplace(slot, std::move(child));
      }
      if (!alive) out->bits.Clear(bit);
    }
  }
  return out->bits.AnySet();
}

}  // namespace

Signature SignatureUnion(const Signature& a, const Signature& b) {
  PCUBE_CHECK_EQ(a.fanout(), b.fanout());
  PCUBE_CHECK_EQ(a.levels(), b.levels());
  Signature out(a.fanout(), a.levels());
  UnionRec(a.root(), b.root(), &out.mutable_root(), a.fanout());
  return out;
}

Signature SignatureIntersect(const Signature& a, const Signature& b) {
  PCUBE_CHECK_EQ(a.fanout(), b.fanout());
  PCUBE_CHECK_EQ(a.levels(), b.levels());
  Signature out(a.fanout(), a.levels());
  IntersectRec(a.root(), b.root(), &out.mutable_root(), a.fanout(), 0,
               a.levels());
  return out;
}

}  // namespace pcube
