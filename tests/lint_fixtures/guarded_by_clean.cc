// Negative controls for pcube-guarded-by-completeness: every sanctioned
// escape (GUARDED_BY, sync-primitive members, const members, line pragma,
// region pragma) and a mutex-free class.
#include "lint_fixture_support.h"

#include <atomic>
#include <thread>

namespace pcube {

class CleanCounters {
 public:
  void Bump();

 private:
  mutable Mutex mu_;
  unsigned long total_ GUARDED_BY(mu_) = 0;
  unsigned long* slot_ PT_GUARDED_BY(mu_) = nullptr;
  std::atomic<unsigned long> fast_{0};  // internally synchronized
  CondVar cv_;                          // sync primitive
  const int limit_ = 8;                 // immutable by type
  // pcube-lint: lock-free(set in the constructor before any thread exists,
  // immutable afterwards)
  double threshold_ = 0.5;
  // pcube-lint: begin-lock-free(owned exclusively by the background thread;
  // the start/join protocol is the synchronization)
  std::thread worker_;
  int scratch_ = 0;
  // pcube-lint: end-lock-free
  int tail_ GUARDED_BY(mu_) = 0;
};

// No mutex member: the class is outside this check's scope entirely.
struct PlainData {
  int x = 0;
  double y = 0;
};

}  // namespace pcube
