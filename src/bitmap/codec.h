// Node-level bitmap compression (paper §IV.B.1, "Compressing and Decomposing
// Signature"). Each signature node's bit array is compressed independently,
// which lets the store decompress only the nodes a query actually requests
// and lets each node pick the scheme that suits its density:
//
//   kVerbatim  raw bits                    (dense arrays)
//   kWah       32-bit word-aligned hybrid   (long runs)
//   kSparse    varint-coded set positions   (very sparse arrays,
//                                            Fraenkel & Klein style)
//
// Encode() tries all schemes and keeps the smallest ("adaptively choosing
// different compression scheme", paper §IV.B.1 reason (2)).
//
// Wire format of one encoded node:
//   u8 scheme | u16 bit count | payload
#pragma once

#include <cstdint>
#include <vector>

#include "bitmap/bitvector.h"
#include "common/status.h"

namespace pcube {

/// Identifies the compression scheme of an encoded bit array.
enum class BitmapScheme : uint8_t {
  kVerbatim = 0,
  kWah = 1,
  kSparse = 2,
};

/// Compresses/decompresses node bit arrays.
class BitmapCodec {
 public:
  /// Maximum bit-array length the 2-byte header supports.
  static constexpr size_t kMaxBits = 65535;

  /// Appends the adaptively-compressed encoding of `bits` to `out`.
  static void Encode(const BitVector& bits, std::vector<uint8_t>* out);

  /// Appends an encoding with a forced scheme (for tests and ablations).
  static void EncodeWith(BitmapScheme scheme, const BitVector& bits,
                         std::vector<uint8_t>* out);

  /// Decodes one encoded bit array starting at data[*offset]; advances
  /// *offset past it. Fails with Corruption on malformed input.
  static Status Decode(const uint8_t* data, size_t size, size_t* offset,
                       BitVector* out);

  /// Decodes the intersection of two encoded bit arrays (which must agree
  /// on their bit count) without fully decoding both: WAH fills skip whole
  /// runs in compressed form, literal and verbatim words fall back to the
  /// 256-bit vector kernel, sparse operands stream their set positions
  /// against the other side. Advances both offsets past their encodings.
  /// This is the kernel entry point the scatter-gather merge arc builds on
  /// (ROADMAP item 2); Decode + InplaceAnd is the reference it must match
  /// bit for bit (tests/simd_kernels_test.cc).
  static Status IntersectEncoded(const uint8_t* a, size_t a_size,
                                 size_t* a_offset, const uint8_t* b,
                                 size_t b_size, size_t* b_offset,
                                 BitVector* out);

  /// Size in bytes the encoding of `bits` would occupy (header included).
  static size_t EncodedSize(const BitVector& bits);

  /// Scheme tag of an encoded array (first byte); for tests.
  static Result<BitmapScheme> PeekScheme(const uint8_t* data, size_t size);
};

}  // namespace pcube
