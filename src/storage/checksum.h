// Page checksumming.
//
// ChecksumPageManager is a PageManager decorator that keeps a CRC-32 per
// page and verifies it on every physical read, turning silent bit rot into
// a typed Status::Corruption before garbage can reach the B+-trees, the
// signature store, or the branch-and-bound engines.
//
// Checksums live OUTSIDE the page ("sidecar" model) rather than in a page
// trailer: every existing on-disk format in this repo (signature partials,
// catalog chunks, B+-tree nodes) already lays claim to the full 4 KB
// payload, so a trailer would be a breaking format change. The sidecar is a
// small versioned file next to the page file (`<path>.chk`); databases
// written before this layer existed simply have no sidecar and open in
// "adopt" mode — the first read of each page records its checksum, and all
// subsequent reads verify against it.
//
// Sidecar format (little-endian):
//   bytes 0-3   magic  "PCHK"
//   bytes 4-7   u32    version (currently 1)
//   bytes 8-15  u64    page count
//   then        u32 x count, one checksum per page (0 = unknown)
//
// The stored value 0 is a sentinel meaning "no checksum recorded"; a real
// CRC that computes to 0 is folded to 1, costing one bit of detection on a
// 1-in-2^32 value.
//
// Thread-safety matches the PageManager contract: Allocate (which grows the
// checksum table) is single-threaded; Read/Write touch only the slot of the
// page they were handed, and the BufferPool never issues two concurrent
// accesses to the same page, so slot accesses never race.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page_manager.h"

namespace pcube {

class Counter;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `n` bytes.
/// Known answer: Crc32("123456789", 9) == 0xCBF43926.
uint32_t Crc32(const void* data, size_t n);

/// PageManager decorator verifying a per-page CRC-32 on every read.
class ChecksumPageManager : public PageManager {
 public:
  /// Wraps `inner`. When `sidecar_path` is non-empty, checksums persist to
  /// that file via SyncSidecar(); an existing sidecar is loaded immediately
  /// (a missing one means a legacy database and is not an error). An empty
  /// path keeps checksums in memory only (the MemoryPageManager case).
  explicit ChecksumPageManager(std::unique_ptr<PageManager> inner,
                               std::string sidecar_path = "");

  PageManager* inner() const { return inner_.get(); }

  Result<PageId> Allocate() override;
  Status Read(PageId pid, Page* out) override;
  Status Write(PageId pid, const Page& page) override;
  Status Free(PageId pid) override;
  uint64_t NumPages() const override { return inner_->NumPages(); }
  Status Sync() override { return inner_->Sync(); }

  /// Writes the checksum table to the sidecar file. Call after flushing the
  /// page file (Workbench::Save does). No-op without a sidecar path.
  Status SyncSidecar();

  /// Recomputes nothing; reports whether page `pid` has a recorded checksum.
  bool HasChecksum(PageId pid) const {
    return pid < sums_.size() && sums_[pid] != 0;
  }

  /// Total reads whose checksum mismatched (also exported as the
  /// pcube_io_checksum_failures_total counter).
  uint64_t checksum_failures() const {
    return failures_.load(std::memory_order_relaxed);
  }

 private:
  Status LoadSidecar();

  std::unique_ptr<PageManager> inner_;
  std::string sidecar_path_;
  std::vector<uint32_t> sums_;
  std::atomic<uint64_t> failures_{0};
  Counter* failures_metric_;
};

}  // namespace pcube
