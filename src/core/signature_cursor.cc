#include "core/signature_cursor.h"

namespace pcube {

Status SignatureCursor::LoadPartialAt(const Path& root_path) {
  uint64_t sid = PathToSid(root_path, fragment_.fanout());
  if (attempted_.count(sid) > 0) return Status::OK();
  attempted_.insert(sid);
  auto bytes = store_->LoadPartial(cell_, sid);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) return Status::OK();
    return bytes.status();
  }
  ++partials_loaded_;
  return DecodePartialSignature(root_path, *bytes, &fragment_);
}

Result<bool> SignatureCursor::EnsureNode(const Path& node_path) {
  if (!root_loaded_) {
    root_loaded_ = true;
    PCUBE_RETURN_NOT_OK(LoadPartialAt({}));
  }
  if (fragment_.HasNode(node_path)) return true;
  // Probe partials rooted at successively deeper prefixes of the path.
  Path prefix;
  for (uint16_t slot : node_path) {
    prefix.push_back(slot);
    PCUBE_RETURN_NOT_OK(LoadPartialAt(prefix));
    if (fragment_.HasNode(node_path)) return true;
  }
  return false;
}

Result<bool> SignatureCursor::Test(const Path& path) {
  PCUBE_DCHECK_GE(path.size(), size_t{1});
  PCUBE_DCHECK_LE(path.size(), static_cast<size_t>(levels_));
  Path prefix;  // node whose array we are inspecting
  for (size_t i = 0; i < path.size(); ++i) {
    auto present = EnsureNode(prefix);
    if (!present.ok()) return present.status();
    if (!*present) return false;
    const BitVector* bits = fragment_.Node(prefix);
    uint16_t slot = path[i];
    if (slot < 1 || slot > fragment_.fanout() || !bits->Get(slot - 1)) {
      return false;
    }
    prefix.push_back(slot);
  }
  return true;
}

}  // namespace pcube
