// The crash-recovery gate (DESIGN.md §15, run by scripts/ci.sh's ingest
// phase): a child process builds a file-backed workbench and streams
// acknowledged WriteBatches until the parent SIGKILLs it mid-stream — a real
// kill, not a simulated fault, so whatever the kernel had not yet persisted
// is genuinely gone. The parent then reopens the database (replaying the
// WAL), checks structural integrity, and verifies the recovered answers
// match a never-crashed reference that applied exactly the recovered prefix
// of batches. Every batch the child acknowledged before the kill MUST be in
// that prefix; a torn tail beyond it is legal crash residue.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "data/generators.h"
#include "query/reference.h"
#include "storage/wal.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

constexpr TupleId kBaseRows = 800;
constexpr int kMaxBatches = 600;
constexpr uint64_t kKillAfterAcks = 8;

SyntheticConfig BaseConfig() {
  SyntheticConfig config;
  config.num_tuples = kBaseRows;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 501;
  return config;
}

SyntheticConfig ExtraConfig() {
  SyntheticConfig config = BaseConfig();
  config.num_tuples = kMaxBatches;
  config.seed = 502;
  return config;
}

/// Batch `i` of the deterministic ingest stream: one insert, and every
/// tenth batch also deletes base tuple `i` (exercising delete replay).
WriteBatch StreamBatch(const Dataset& extra, int i) {
  WriteBatch batch;
  auto bools = extra.BoolRow(static_cast<TupleId>(i));
  auto prefs = extra.PrefPoint(static_cast<TupleId>(i));
  batch.inserts.push_back(
      {{bools.begin(), bools.end()}, {prefs.begin(), prefs.end()}});
  if (i % 10 == 9) batch.deletes.push_back(static_cast<TupleId>(i));
  return batch;
}

/// Child body: never returns. Builds the db, then applies the stream,
/// reporting each acknowledged batch count over `fd` with a raw write(2)
/// (unbuffered — the ack must not outlive the process in a stdio buffer).
[[noreturn]] void RunIngestChild(const std::string& path, int fd) {
  WorkbenchOptions options;
  options.file_path = path;
  auto built = Workbench::Build(GenerateSynthetic(BaseConfig()), options);
  if (!built.ok()) _exit(10);
  if (!(*built)->Save().ok()) _exit(11);
  Dataset extra = GenerateSynthetic(ExtraConfig());
  for (int i = 0; i < kMaxBatches; ++i) {
    auto applied = (*built)->Apply(StreamBatch(extra, i));
    if (!applied.ok()) _exit(12);
    // Acknowledged: the batch is durable. Tell the parent.
    uint64_t acked = static_cast<uint64_t>(i) + 1;
    if (write(fd, &acked, sizeof(acked)) != sizeof(acked)) _exit(13);
  }
  _exit(0);
}

TEST(CrashRecoveryTest, SigkillMidIngestLosesNoAcknowledgedBatch) {
  const std::string path = testing::TempDir() + "/pcube_crash_test.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    close(pipe_fds[0]);
    RunIngestChild(path, pipe_fds[1]);  // never returns
  }
  close(pipe_fds[1]);

  // Collect acks until the kill threshold, then SIGKILL — with commits in
  // flight, so the WAL tail is torn with high likelihood. If the child
  // finishes the whole stream first (EOF), recovery of a clean shutdown
  // is what gets verified instead; both are legal runs of this gate.
  uint64_t acked = 0;
  bool killed = false;
  for (;;) {
    uint64_t value = 0;
    ssize_t n = read(pipe_fds[0], &value, sizeof(value));
    if (n != sizeof(value)) break;  // EOF: the child is gone or done
    acked = value;
    if (!killed && acked >= kKillAfterAcks) {
      kill(child, SIGKILL);
      killed = true;
      // Keep draining: acks already in the pipe still count.
    }
  }
  close(pipe_fds[0]);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  if (!killed) {
    ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
        << "child failed with status " << wstatus;
    EXPECT_EQ(acked, static_cast<uint64_t>(kMaxBatches));
  }
  ASSERT_GE(acked, kKillAfterAcks);

  // The WAL on disk must be structurally sound: intact records followed by
  // at most a torn (never-acknowledged) tail. Inspect BEFORE the reopen —
  // Open's replay heals the tail away.
  auto inspected = Wal::Inspect(path + ".wal");
  ASSERT_TRUE(inspected.ok()) << inspected.status().ToString();
  EXPECT_TRUE(inspected->ok()) << inspected->errors.front();

  // Reopen: WAL replay recovers every acknowledged batch (and possibly a
  // few more that committed after the last ack the parent read).
  auto reopened = Workbench::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Workbench& w = **reopened;
  ASSERT_GE(w.data().num_tuples(), kBaseRows + acked);
  ASSERT_LE(w.data().num_tuples(), kBaseRows + kMaxBatches);
  const int recovered = static_cast<int>(w.data().num_tuples() - kBaseRows);

  auto report = w.VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok())
      << (report->ok() ? "" : report->errors.front().second);

  // Differential check: a never-crashed reference applying exactly the
  // recovered prefix must agree on every cell's skyline, tid for tid (both
  // assign ids in stream order from the same base).
  auto reference = Workbench::Build(GenerateSynthetic(BaseConfig()), {});
  ASSERT_TRUE(reference.ok());
  Dataset extra = GenerateSynthetic(ExtraConfig());
  for (int i = 0; i < recovered; ++i) {
    auto applied = (*reference)->Apply(StreamBatch(extra, i));
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  }
  EXPECT_EQ(w.tombstones(), (*reference)->tombstones());
  for (int dim = 0; dim < 2; ++dim) {
    for (uint32_t v = 0; v < 3; ++v) {
      auto got = w.RunShared(QueryRequest::Skyline({{dim, v}}));
      auto want = (*reference)->RunShared(QueryRequest::Skyline({{dim, v}}));
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      EXPECT_EQ(got->tids, want->tids) << "dim=" << dim << " v=" << v;
    }
  }

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());
}

}  // namespace
}  // namespace pcube
