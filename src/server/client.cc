#include "server/client.h"

#include <cerrno>
#include <cstring>
#include <netdb.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "server/protocol.h"

namespace pcube {

Result<std::unique_ptr<PCubeClient>> PCubeClient::Connect(
    const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError(std::string("resolve ") + host + ": " +
                           gai_strerror(rc));
  }
  Status last = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // The query frame is one small send; don't let Nagle hold it hostage
    // to the previous response's ACK.
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return std::unique_ptr<PCubeClient>(new PCubeClient(fd));
    }
    last = Status::IoError(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

PCubeClient::~PCubeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<QueryResponse> PCubeClient::Run(const QueryRequest& request,
                                       const std::string& tenant,
                                       ServerStats* stats) {
  wire::QueryEnvelope envelope;
  envelope.tenant = tenant;
  envelope.request = request;
  Result<std::string> payload = wire::EncodeQuery(envelope);
  if (!payload.ok()) return payload.status();
  PCUBE_RETURN_NOT_OK(
      wire::WriteFrame(fd_, wire::FrameType::kQuery, payload.value()));

  // The stream: kResultHeader, kResultChunk*, kDone — or kError anywhere.
  wire::FrameHeader header;
  std::string body;
  PCUBE_RETURN_NOT_OK(wire::ReadFrame(fd_, &header, &body));
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(body.data());
  if (header.type == wire::FrameType::kError) {
    return wire::DecodeError(bytes, body.size());
  }
  if (header.type != wire::FrameType::kResultHeader) {
    return Status::Corruption("expected a result header frame");
  }
  wire::ResultHeader rh;
  PCUBE_RETURN_NOT_OK(wire::DecodeResultHeader(bytes, body.size(), &rh));

  QueryResponse resp;
  resp.tids.reserve(rh.result_count);
  if (rh.has_scores) resp.scores.reserve(rh.result_count);
  while (true) {
    PCUBE_RETURN_NOT_OK(wire::ReadFrame(fd_, &header, &body));
    bytes = reinterpret_cast<const uint8_t*>(body.data());
    if (header.type == wire::FrameType::kError) {
      return wire::DecodeError(bytes, body.size());
    }
    if (header.type == wire::FrameType::kDone) break;
    if (header.type != wire::FrameType::kResultChunk) {
      return Status::Corruption("expected a result chunk frame");
    }
    PCUBE_RETURN_NOT_OK(wire::DecodeResultChunk(
        bytes, body.size(), rh.has_scores, &resp.tids, &resp.scores));
    if (resp.tids.size() > rh.result_count) {
      return Status::Corruption("result stream longer than announced");
    }
  }
  if (resp.tids.size() != rh.result_count) {
    return Status::Corruption("result stream shorter than announced");
  }

  resp.counters = rh.counters;
  resp.estimate.choice =
      rh.plan == 0 ? PlanChoice::kSignature : PlanChoice::kBooleanFirst;
  resp.cache = static_cast<CacheOutcome>(rh.cache);
  resp.degraded = rh.degraded;
  resp.fanout_shards = rh.fanout_shards;
  resp.seconds = rh.seconds;
  if (stats != nullptr) {
    stats->trace_id = rh.trace_id;
    stats->queue_wait_seconds = rh.queue_wait_seconds;
    stats->io_reads = rh.io_reads;
  }
  return resp;
}

namespace {

/// One kWrite round trip: frame out, ack (or error) back.
Result<WriteResult> SendWrite(int fd, const std::string& tenant,
                              const WriteBatch& batch) {
  wire::WriteEnvelope envelope;
  envelope.tenant = tenant;
  envelope.batch = batch;
  Result<std::string> payload = wire::EncodeWrite(envelope);
  if (!payload.ok()) return payload.status();
  PCUBE_RETURN_NOT_OK(
      wire::WriteFrame(fd, wire::FrameType::kWrite, payload.value()));
  wire::FrameHeader header;
  std::string body;
  PCUBE_RETURN_NOT_OK(wire::ReadFrame(fd, &header, &body));
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(body.data());
  if (header.type == wire::FrameType::kError) {
    return wire::DecodeError(bytes, body.size());
  }
  if (header.type != wire::FrameType::kWriteAck) {
    return Status::Corruption("expected a write ack frame");
  }
  WriteResult result;
  PCUBE_RETURN_NOT_OK(wire::DecodeWriteAck(bytes, body.size(), &result));
  return result;
}

}  // namespace

Result<WriteResult> PCubeClient::Write(const WriteBatch& batch,
                                       const std::string& tenant) {
  // Fast path: the whole batch fits one frame (EncodeWrite enforces the
  // cap), so it commits atomically on the server.
  {
    wire::WriteEnvelope probe;
    probe.tenant = tenant;
    probe.batch = batch;
    Result<std::string> encoded = wire::EncodeWrite(probe);
    if (encoded.ok()) {
      PCUBE_RETURN_NOT_OK(
          wire::WriteFrame(fd_, wire::FrameType::kWrite, encoded.value()));
      wire::FrameHeader header;
      std::string body;
      PCUBE_RETURN_NOT_OK(wire::ReadFrame(fd_, &header, &body));
      const uint8_t* bytes = reinterpret_cast<const uint8_t*>(body.data());
      if (header.type == wire::FrameType::kError) {
        return wire::DecodeError(bytes, body.size());
      }
      if (header.type != wire::FrameType::kWriteAck) {
        return Status::Corruption("expected a write ack frame");
      }
      WriteResult result;
      PCUBE_RETURN_NOT_OK(wire::DecodeWriteAck(bytes, body.size(), &result));
      return result;
    }
    if (!encoded.status().IsInvalidArgument()) return encoded.status();
    // Oversized for one frame: fall through to the slicing path.
  }

  // Slice inserts first, then deletes — the order a single Apply applies
  // them in — shrinking the slice until it encodes under the frame cap.
  WriteResult merged;
  bool merged_any = false;
  bool merged_first_tid = false;
  size_t rows_landed = 0;
  auto apply_slice = [&](WriteBatch&& slice,
                         bool carries_inserts) -> Result<size_t> {
    size_t rows = slice.num_rows();
    while (true) {
      wire::WriteEnvelope probe;
      probe.tenant = tenant;
      probe.batch = slice;
      if (wire::EncodeWrite(probe).ok()) break;
      if (rows <= 1) {
        return Status::InvalidArgument(
            "write batch row too large for one frame");
      }
      rows = (rows + 1) / 2;
      if (carries_inserts) {
        slice.inserts.resize(rows);
      } else {
        slice.deletes.resize(rows);
      }
    }
    Result<WriteResult> ack = SendWrite(fd_, tenant, slice);
    if (!ack.ok()) {
      return Status(ack.status().code(),
                    ack.status().message() + " (partial write: " +
                        std::to_string(rows_landed) + " rows already applied)");
    }
    merged.lsn = ack.value().lsn;
    merged.epoch = ack.value().epoch;
    merged.commit_seconds += ack.value().commit_seconds;
    merged.group_size = std::max(merged.group_size, ack.value().group_size);
    merged.durable = merged_any ? (merged.durable && ack.value().durable)
                                : ack.value().durable;
    if (carries_inserts && !merged_first_tid) {
      merged.first_tid = ack.value().first_tid;
      merged_first_tid = true;
    }
    merged_any = true;
    rows_landed += rows;
    return rows;
  };

  size_t next_insert = 0;
  while (next_insert < batch.inserts.size()) {
    WriteBatch slice;
    slice.ack = batch.ack;
    slice.inserts.assign(batch.inserts.begin() + next_insert,
                         batch.inserts.end());
    Result<size_t> sent = apply_slice(std::move(slice), /*carries_inserts=*/true);
    if (!sent.ok()) return sent.status();
    next_insert += sent.value();
  }
  size_t next_delete = 0;
  while (next_delete < batch.deletes.size()) {
    WriteBatch slice;
    slice.ack = batch.ack;
    slice.deletes.assign(batch.deletes.begin() + next_delete,
                         batch.deletes.end());
    Result<size_t> sent =
        apply_slice(std::move(slice), /*carries_inserts=*/false);
    if (!sent.ok()) return sent.status();
    next_delete += sent.value();
  }
  if (!merged_any) {
    // An empty batch never reaches the slicing path (it encodes tiny), but
    // keep the contract total.
    return Status::InvalidArgument("empty write batch");
  }
  return merged;
}

}  // namespace pcube
