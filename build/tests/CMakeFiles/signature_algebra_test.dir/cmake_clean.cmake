file(REMOVE_RECURSE
  "CMakeFiles/signature_algebra_test.dir/signature_algebra_test.cc.o"
  "CMakeFiles/signature_algebra_test.dir/signature_algebra_test.cc.o.d"
  "signature_algebra_test"
  "signature_algebra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
