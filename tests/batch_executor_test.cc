// BatchExecutor tests: a concurrent batch must return exactly the results
// sequential execution returns (same skylines, same top-k, query by query),
// report per-query I/O that sums to the merged counters, and surface
// per-query failures without poisoning the batch. Run under TSan by
// scripts/ci.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "workbench/workbench.h"

namespace pcube {
namespace {

std::unique_ptr<Workbench> BuildBench(uint64_t rows,
                                      WorkbenchOptions options = {}) {
  SyntheticConfig config;
  config.num_tuples = rows;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 8;
  config.seed = 7;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  PCUBE_CHECK(wb.ok()) << wb.status().ToString();
  return std::move(*wb);
}

/// Options that disable both cache levels, for tests whose assertions
/// require every query to actually run its engine.
WorkbenchOptions NoCache() {
  WorkbenchOptions options;
  options.result_cache_mb = 0;
  options.fragment_cache_mb = 0;
  return options;
}

std::vector<BatchQuery> MixedWorkload() {
  std::vector<BatchQuery> queries;
  auto linear = std::make_shared<LinearRanking>(std::vector<double>{1.0, 2.0});
  auto l2 = std::make_shared<WeightedL2Ranking>(
      std::vector<double>{0.5, 0.5}, std::vector<double>{1.0, 1.0});
  for (uint32_t v = 0; v < 8; ++v) {
    queries.push_back(BatchQuery::Skyline(PredicateSet{{0, v}}));
    queries.push_back(BatchQuery::TopK(PredicateSet{{1, v}}, linear, 5));
    queries.push_back(BatchQuery::TopK(PredicateSet{{2, v}}, l2, 3));
  }
  // Two-predicate queries and a predicate-free skyline for variety.
  queries.push_back(BatchQuery::Skyline(PredicateSet{{0, 1}, {1, 2}}));
  queries.push_back(BatchQuery::Skyline(PredicateSet{}));
  SkylineQueryOptions band;
  band.skyband_k = 2;
  queries.push_back(BatchQuery::Skyline(PredicateSet{{2, 3}}, band));
  return queries;
}

std::vector<TupleId> SortedIds(const std::vector<SearchEntry>& entries) {
  std::vector<TupleId> ids;
  ids.reserve(entries.size());
  for (const SearchEntry& e : entries) ids.push_back(e.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(BatchExecutorTest, BatchMatchesSequentialExecution) {
  auto wb = BuildBench(4000);
  std::vector<BatchQuery> queries = MixedWorkload();

  // Sequential reference answers, one engine at a time.
  std::vector<std::vector<TupleId>> expected_ids;
  std::vector<std::vector<double>> expected_scores;
  for (const BatchQuery& q : queries) {
    if (q.kind == BatchQuery::Kind::kSkyline) {
      auto probe = wb->cube()->MakeProbe(q.preds);
      ASSERT_TRUE(probe.ok());
      SkylineEngine engine(wb->tree(), probe->get(), nullptr, q.skyline);
      auto out = engine.Run();
      ASSERT_TRUE(out.ok());
      expected_ids.push_back(SortedIds(out->skyline));
      expected_scores.push_back({});
    } else {
      auto probe = wb->cube()->MakeProbe(q.preds);
      ASSERT_TRUE(probe.ok());
      TopKEngine engine(wb->tree(), probe->get(), nullptr, q.ranking.get(),
                        q.k);
      auto out = engine.Run();
      ASSERT_TRUE(out.ok());
      // Top-k is ordered; compare ids and exact scores positionally.
      std::vector<TupleId> ids;
      std::vector<double> scores;
      for (const SearchEntry& e : out->results) {
        ids.push_back(e.id);
        scores.push_back(e.key);
      }
      expected_ids.push_back(std::move(ids));
      expected_scores.push_back(std::move(scores));
    }
  }

  BatchOutput batch = wb->RunBatch(queries, /*num_workers=*/4);
  ASSERT_EQ(batch.results.size(), queries.size());
  EXPECT_EQ(batch.failed, 0u);
  for (size_t i = 0; i < queries.size(); ++i) {
    const BatchQueryResult& r = batch.results[i];
    ASSERT_TRUE(r.status.ok()) << "query " << i << ": " << r.status.ToString();
    if (queries[i].kind == BatchQuery::Kind::kSkyline) {
      ASSERT_TRUE(r.skyline.has_value());
      EXPECT_FALSE(r.topk.has_value());
      EXPECT_EQ(SortedIds(r.skyline->skyline), expected_ids[i])
          << "skyline mismatch at query " << i;
    } else {
      ASSERT_TRUE(r.topk.has_value());
      std::vector<TupleId> ids;
      std::vector<double> scores;
      for (const SearchEntry& e : r.topk->results) {
        ids.push_back(e.id);
        scores.push_back(e.key);
      }
      EXPECT_EQ(ids, expected_ids[i]) << "top-k mismatch at query " << i;
      EXPECT_EQ(scores, expected_scores[i]);
    }
  }
}

TEST(BatchExecutorTest, RepeatedBatchesAreDeterministic) {
  auto wb = BuildBench(2000);
  std::vector<BatchQuery> queries = MixedWorkload();
  BatchOutput a = wb->RunBatch(queries, 4);
  BatchOutput b = wb->RunBatch(queries, 2);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_TRUE(a.results[i].status.ok());
    ASSERT_TRUE(b.results[i].status.ok());
    if (a.results[i].skyline.has_value()) {
      EXPECT_EQ(SortedIds(a.results[i].skyline->skyline),
                SortedIds(b.results[i].skyline->skyline));
    } else {
      EXPECT_EQ(SortedIds(a.results[i].topk->results),
                SortedIds(b.results[i].topk->results));
    }
  }
}

TEST(BatchExecutorTest, PerQueryIoSumsToMergedCounters) {
  auto wb = BuildBench(3000);
  ASSERT_TRUE(wb->ColdStart().ok());
  std::vector<BatchQuery> queries = MixedWorkload();
  BatchOutput batch = wb->RunBatch(queries, 4);

  IoStats merged;
  for (const BatchQueryResult& r : batch.results) merged.Merge(r.io);
  EXPECT_EQ(merged.TotalReads(), batch.io.TotalReads());
  // The batch's merged I/O is exactly what the shared pool observed since
  // the cold start: every physical read belongs to exactly one query.
  EXPECT_EQ(batch.io.TotalReads(), wb->IoSince().TotalReads());
  EXPECT_GT(batch.io.TotalReads(), 0u);
}

TEST(BatchExecutorTest, ResponsesCarryTracesAndLatencySummary) {
  // Caches off: the heap_expand assertion below requires every query to
  // run its engine, and the cache (exact hits, containment drill-down)
  // can legitimately skip that for repeats and predicate supersets.
  auto wb = BuildBench(3000, NoCache());
  std::vector<BatchQuery> queries = MixedWorkload();
  BatchOutput batch = wb->RunBatch(queries, 4);
  ASSERT_EQ(batch.failed, 0u);

  std::set<uint64_t> trace_ids;
  for (size_t i = 0; i < batch.results.size(); ++i) {
    const QueryResponse& resp = batch.results[i].response;
    // The unified response mirrors the legacy per-result fields.
    EXPECT_EQ(resp.seconds, batch.results[i].seconds);
    EXPECT_EQ(resp.io.TotalReads(), batch.results[i].io.TotalReads());
    EXPECT_EQ(resp.estimate.choice, PlanChoice::kSignature);
    EXPECT_FALSE(resp.tids.empty()) << "query " << i;
    if (queries[i].kind == BatchQuery::Kind::kTopK) {
      EXPECT_EQ(resp.scores.size(), resp.tids.size());
    }
    // Every query ran the branch-and-bound, so every trace holds at least
    // the heap-expansion stage with nonzero time.
    EXPECT_GT(resp.trace.StageSeconds("heap_expand"), 0.0) << "query " << i;
    trace_ids.insert(resp.trace_id());
  }
  // Trace ids are process-unique — one distinct id per query.
  EXPECT_EQ(trace_ids.size(), batch.results.size());

  EXPECT_EQ(batch.latency.count, queries.size());
  EXPECT_GT(batch.latency.p50, 0.0);
  EXPECT_LE(batch.latency.p50, batch.latency.p95);
  EXPECT_LE(batch.latency.p95, batch.latency.p99);
  EXPECT_GT(batch.latency.mean, 0.0);
}

TEST(BatchExecutorTest, QueryLogGetsOneRecordPerQuery) {
  auto wb = BuildBench(2000);
  std::vector<BatchQuery> queries = MixedWorkload();
  std::ostringstream sink;
  QueryLog log(&sink);
  BatchOutput batch = wb->RunBatch(queries, 4, &log);
  ASSERT_EQ(batch.failed, 0u);
  EXPECT_EQ(log.records(), queries.size());

  std::istringstream in(sink.str());
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    // Each record is one complete JSON object with the span map inside.
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"trace_id\":"), std::string::npos);
    EXPECT_NE(line.find("\"spans\":"), std::string::npos);
    EXPECT_NE(line.find("\"heap_expand\""), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, queries.size());
}

TEST(BatchExecutorTest, PerQueryFailuresDoNotPoisonTheBatch) {
  auto wb = BuildBench(1000);
  std::vector<BatchQuery> queries;
  queries.push_back(BatchQuery::Skyline(PredicateSet{{0, 1}}));
  // Top-k with a null ranking function must fail cleanly.
  queries.push_back(BatchQuery::TopK(PredicateSet{{0, 1}}, nullptr, 5));
  queries.push_back(BatchQuery::Skyline(PredicateSet{{1, 2}}));

  BatchOutput batch = wb->RunBatch(queries, 2);
  ASSERT_EQ(batch.results.size(), 3u);
  EXPECT_EQ(batch.failed, 1u);
  EXPECT_TRUE(batch.results[0].status.ok());
  EXPECT_FALSE(batch.results[1].status.ok());
  EXPECT_TRUE(batch.results[2].status.ok());
  EXPECT_TRUE(batch.results[0].skyline.has_value());
  EXPECT_TRUE(batch.results[2].skyline.has_value());
}

}  // namespace
}  // namespace pcube
