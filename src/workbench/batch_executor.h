// Concurrent query driver (the throughput path of the ROADMAP's
// production-scale goal). A batch of QueryRequests fans out over a
// ThreadPool; every query runs Algorithm 1 independently against ONE
// shared, immutable PCube + RStarTree through the striped BufferPool. Each
// worker builds its own BooleanProbe and engine (those stay single-threaded
// per query); the only cross-thread state is the buffer pool, the IoStats
// counters and the optional QueryLog, all thread-safe. Results come back in
// input order together with per-query QueryResponses (counters, I/O,
// per-stage trace), merged physical-I/O counters and a latency summary
// aggregated through a log-bucketed histogram.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cache/result_cache.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/pcube.h"
#include "query/query_types.h"
#include "query/ranking.h"
#include "query/request.h"
#include "query/skyline_engine.h"
#include "query/topk_engine.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// One parsed query of a batch — the unified request type; batches always
/// run the signature engines, so the plan hint is ignored here.
using BatchQuery = QueryRequest;

/// Outcome of one query of a batch (exactly one of skyline/topk is set on
/// success, matching the query's kind).
struct BatchQueryResult {
  Status status;
  /// The unified summary: result tids/scores, engine counters, physical
  /// I/O, per-stage trace and wall time.
  QueryResponse response;
  /// Full engine outputs (b_list/d_list, remaining frontier) for callers
  /// that seed incremental queries from batch results.
  std::optional<SkylineOutput> skyline;
  std::optional<TopKOutput> topk;
  /// Physical page I/O performed by this query (per-thread attribution; a
  /// page one query faults in and another then hits is charged to the
  /// faulting query, exactly like the sequential accounting). Mirrors
  /// response.io.
  IoStats io;
  double seconds = 0;  ///< wall time of this query on its worker
};

/// Latency quantiles of one batch, estimated from a log-bucketed Histogram
/// of per-query wall times (common/metrics.h).
struct LatencySummary {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double mean = 0;
  uint64_t count = 0;
};

/// Per-query bookkeeping every finished query reports into the process-wide
/// registry: volume, latency and the engine counters behind Figs. 8-16.
/// Shared by BatchExecutor and the sharded coordinator's batch driver.
void ReportQueryMetrics(const BatchQuery& query, const QueryResponse& resp,
                        const Status& status);

/// A completed batch: per-query results in input order plus merged counters.
struct BatchOutput {
  std::vector<BatchQueryResult> results;
  IoStats io;              ///< sum of every query's physical I/O
  uint64_t failed = 0;     ///< queries whose status is not OK
  uint64_t timed_out = 0;  ///< subset of `failed` with Status::Timeout
  double seconds = 0;      ///< wall time of the whole batch
  LatencySummary latency;  ///< per-query wall-time quantiles
};

/// Fans batches of queries out over a thread pool. The tree, cube and pool
/// must outlive the executor and must not be mutated while a batch runs.
class BatchExecutor {
 public:
  /// `query_log`, when non-null, receives one JSONL record per finished
  /// query (thread-safe; must outlive the executor). `cache` + `data`,
  /// when non-null, enable the L1 result cache for the batch: a query is
  /// served from cache only when the entry can reconstruct the full engine
  /// output (BatchQueryResult promises skyline/topk on success), and every
  /// executed query publishes its answer back. Both must outlive the
  /// executor.
  BatchExecutor(const RStarTree* tree, const PCube* cube, ThreadPool* pool,
                QueryLog* query_log = nullptr, ResultCache* cache = nullptr,
                const Dataset* data = nullptr)
      : tree_(tree),
        cube_(cube),
        pool_(pool),
        query_log_(query_log),
        cache_(cache),
        data_(data) {}

  /// Runs every query to completion; individual failures are reported in the
  /// per-query status, never by aborting the batch.
  BatchOutput Execute(const std::vector<BatchQuery>& queries);

  /// Runs ONE query on the calling thread: L1 lookup, private probe +
  /// signature engine, per-thread I/O attribution — exactly what one batch
  /// worker does. Thread-safe (the shared tree/cube/pool/caches all are),
  /// so concurrent callers — the network server's workers — use this
  /// without a pool. The executor may have been built with a null pool when
  /// only this entry point is used.
  BatchQueryResult ExecuteOne(const BatchQuery& query) const;

 private:
  const RStarTree* tree_;
  const PCube* cube_;
  ThreadPool* pool_;
  QueryLog* query_log_;
  ResultCache* cache_;
  const Dataset* data_;
};

}  // namespace pcube
