// Negative controls for pcube-mutation-entry: sanctioned patterns that
// must produce zero diagnostics.
#include "lint_fixture_support.h"

namespace pcube {

// A same-named method on an unrelated type is not a raw mutator: the check
// resolves receiver types (declarations here, AST in the plugin tier).
class BPlusTree {
 public:
  Status Insert(uint64_t key, uint64_t value);
};

Status SanctionedPatterns(RStarTree& tree, BPlusTree& btree) {
  PathChangeSet changes;
  // Unrelated receiver type: BPlusTree::Insert is not a guarded mutator.
  Status s = btree.Insert(1, 2);
  if (!s.ok()) return s;
  // Explicitly tagged single call site.
  // pcube-lint: allow-mutation(recovery replay applies logged batches below
  // the WriteBatch layer by design)
  s = tree.Insert(2.0f, 9, &changes);
  if (!s.ok()) return s;
  // The sanctioned spelling: mention of mutator names in comments
  // (PCube::ApplyChanges, RStarTree::Insert) or strings is ignored.
  const char* doc = "calls ApplyChanges( under the hood";
  (void)doc;
  return s;
}

}  // namespace pcube
