file(REMOVE_RECURSE
  "libpcube_data.a"
)
