# Empty dependencies file for covertype_analysis.
# This may be replaced when dependencies are built.
