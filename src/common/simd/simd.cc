#include "common/simd/simd.h"

#include <cstdlib>
#include <cstring>

#include "common/metrics.h"

namespace pcube::simd {

bool CpuSupportsAvx2() {
#if defined(PCUBE_SIMD_DISABLED)
  return false;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") > 0;
#else
  return false;
#endif
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* text, SimdLevel* out) {
  if (text == nullptr) return false;
  if (std::strcmp(text, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

namespace {

SimdLevel ResolveLevel() {
  SimdLevel detected =
      CpuSupportsAvx2() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once inside a thread-safe
  // static initializer, before any kernel has dispatched.
  SimdLevel requested = detected;
  if (ParseSimdLevel(std::getenv("PCUBE_SIMD_LEVEL"), &requested)) {
    // The env var can only select a level the CPU (and build) supports;
    // asking for avx2 on a scalar-only machine keeps scalar.
    if (requested < detected) detected = requested;
  }
  MetricsRegistry::Default().GetGauge("pcube_simd_level")
      ->Set(static_cast<double>(detected));
  return detected;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = ResolveLevel();
  return level;
}

}  // namespace pcube::simd
