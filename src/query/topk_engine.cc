#include "query/topk_engine.h"

#include <limits>
#include <queue>

#include "common/timer.h"
#include "rtree/node.h"

namespace pcube {

namespace {
struct KeyGreater {
  bool operator()(const SearchEntry& a, const SearchEntry& b) const {
    return a.key > b.key;
  }
};
using CandidateHeap =
    std::priority_queue<SearchEntry, std::vector<SearchEntry>, KeyGreater>;
}  // namespace

TopKEngine::TopKEngine(const RStarTree* tree, BooleanProbe* probe,
                       const TupleVerifier* verifier, const RankingFunction* f,
                       size_t k)
    : tree_(tree), probe_(probe), verifier_(verifier), f_(f), k_(k) {}

Result<bool> TopKEngine::Prune(const SearchEntry& e) {
  // Preference pruning: k results with scores <= f(e) already found.
  if (out_.results.size() >= k_ && !out_.results.empty() &&
      e.key >= out_.results.back().key) {
    out_.d_list.push_back(e);
    ++out_.counters.pruned_preference;
    return true;
  }
  if (!e.path.empty()) {
    Timer t;
    auto pass = e.is_data ? probe_->TestData(e.path, e.id)
                           : probe_->Test(e.path);
    double dt = t.ElapsedSeconds();
    out_.counters.sig_seconds += dt;
    if (trace_ != nullptr) trace_->Record("signature_probe", dt);
    if (!pass.ok()) return pass.status();
    if (!*pass) {
      out_.b_list.push_back(e);
      ++out_.counters.pruned_boolean;
      return true;
    }
  }
  return false;
}

Result<TopKOutput> TopKEngine::Run() {
  SearchEntry root;
  root.key = -std::numeric_limits<double>::infinity();
  root.is_data = false;
  root.id = tree_->root();
  root.rect = RectF::Empty(tree_->dims());
  return RunFrom({root});
}

Result<TopKOutput> TopKEngine::RunFrom(const std::vector<SearchEntry>& seed) {
  out_ = TopKOutput();
  CandidateHeap heap;
  auto span_of = [&](const RectF& r) {
    return std::span<const float>(r.min.data(),
                                  static_cast<size_t>(tree_->dims()));
  };
  for (const SearchEntry& e : seed) {
    SearchEntry copy = e;
    if (!copy.path.empty() || copy.is_data) {
      copy.key = copy.is_data ? f_->Score(span_of(copy.rect))
                              : f_->LowerBound(copy.rect);
    } else {
      copy.key = -std::numeric_limits<double>::infinity();
    }
    auto pruned = Prune(copy);
    if (!pruned.ok()) return pruned.status();
    if (!*pruned) heap.push(std::move(copy));
  }
  out_.counters.heap_peak =
      std::max<uint64_t>(out_.counters.heap_peak, heap.size());

  while (!heap.empty()) {
    if (out_.results.size() >= k_) break;
    if (deadline_ && std::chrono::steady_clock::now() > *deadline_) {
      return Status::Timeout("top-k query deadline exceeded");
    }
    SearchEntry e = heap.top();
    heap.pop();
    auto pruned = Prune(e);
    if (!pruned.ok()) return pruned.status();
    if (*pruned) continue;

    if (e.is_data) {
      if (verifier_ != nullptr) {
        ScopedSpan span(trace_, "boolean_verify");
        auto ok = verifier_->Verify(e.id);
        if (!ok.ok()) return ok.status();
        ++out_.counters.verified;
        if (!*ok) {
          ++out_.counters.verify_failed;
          out_.b_list.push_back(e);
          ++out_.counters.pruned_boolean;
          continue;
        }
      }
      out_.results.push_back(e);  // ascending-score arrival order
      continue;
    }

    ScopedSpan expand_span(trace_, "heap_expand");
    auto node_handle = tree_->ReadNode(e.id);
    if (!node_handle.ok()) return node_handle.status();
    ++out_.counters.nodes_expanded;
    NodeView node(node_handle->get(), tree_->dims());
    for (uint32_t s = 0; s < node.max_entries(); ++s) {
      if (!node.Valid(s)) continue;
      SearchEntry child;
      child.is_data = node.is_leaf();
      child.id = node.GetId(s);
      child.rect = node.GetRect(s);
      child.path = e.path;
      child.path.push_back(static_cast<uint16_t>(s + 1));
      child.key = child.is_data ? f_->Score(span_of(child.rect))
                                : f_->LowerBound(child.rect);
      auto child_pruned = Prune(child);
      if (!child_pruned.ok()) return child_pruned.status();
      if (!*child_pruned) {
        heap.push(std::move(child));
        out_.counters.heap_peak =
            std::max<uint64_t>(out_.counters.heap_peak, heap.size());
      }
    }
  }

  // Preserve the unexamined frontier for incremental queries (Lemma 2).
  while (!heap.empty()) {
    out_.remaining.push_back(heap.top());
    heap.pop();
  }
  return std::move(out_);
}

}  // namespace pcube
