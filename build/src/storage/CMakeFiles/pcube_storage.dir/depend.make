# Empty dependencies file for pcube_storage.
# This may be replaced when dependencies are built.
