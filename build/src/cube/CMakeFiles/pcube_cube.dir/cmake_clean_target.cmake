file(REMOVE_RECURSE
  "libpcube_cube.a"
)
