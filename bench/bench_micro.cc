// Micro-benchmarks for the P-Cube building blocks: bitmap codecs, signature
// probing, B+-tree operations, R-tree node access. These quantify the
// constants behind the figure-level results (e.g. why Csig << CR-tree).
#include "bench_common.h"

#include "bitmap/codec.h"
#include "core/signature_cursor.h"

namespace pcube::bench {
namespace {

void BM_BitmapEncode(benchmark::State& state) {
  Random rng(1);
  size_t nbits = static_cast<size_t>(state.range(0));
  int density_pct = static_cast<int>(state.range(1));
  BitVector bits(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    if (rng.Uniform(100) < static_cast<uint64_t>(density_pct)) bits.Set(i);
  }
  for (auto _ : state) {
    std::vector<uint8_t> buf;
    BitmapCodec::Encode(bits, &buf);
    benchmark::DoNotOptimize(buf);
  }
}
BENCHMARK(BM_BitmapEncode)
    ->Args({128, 5})
    ->Args({128, 50})
    ->Args({2048, 5})
    ->Args({2048, 50});

void BM_BitmapDecode(benchmark::State& state) {
  Random rng(2);
  size_t nbits = static_cast<size_t>(state.range(0));
  BitVector bits(nbits);
  for (size_t i = 0; i < nbits; ++i) {
    if (rng.Uniform(100) < 20) bits.Set(i);
  }
  std::vector<uint8_t> buf;
  BitmapCodec::Encode(bits, &buf);
  for (auto _ : state) {
    size_t offset = 0;
    BitVector out;
    PCUBE_CHECK_OK(BitmapCodec::Decode(buf.data(), buf.size(), &offset, &out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BitmapDecode)->Arg(128)->Arg(2048);

void BM_SignatureProbe(benchmark::State& state) {
  Workbench* wb = CachedWorkbench2("micro", [] {
    return GenerateSynthetic(PaperConfig(50000));
  });
  auto probe = wb->cube()->MakeProbe(OnePredicate(100));
  PCUBE_CHECK(probe.ok());
  // Collect some real tuple paths to probe.
  std::vector<Path> paths;
  PCUBE_CHECK_OK(wb->tree()->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        if (tid % 997 == 0) paths.push_back(p);
      }));
  size_t i = 0;
  for (auto _ : state) {
    auto r = (*probe)->Test(paths[i++ % paths.size()]);
    PCUBE_CHECK(r.ok());
    benchmark::DoNotOptimize(*r);
  }
}
BENCHMARK(BM_SignatureProbe);

void BM_BPlusTreeGet(benchmark::State& state) {
  static MemoryPageManager* pm = new MemoryPageManager();
  static IoStats* stats = new IoStats();
  static BufferPool* pool = new BufferPool(pm, 1 << 14, stats);
  static BPlusTree* tree = [] {
    std::vector<std::pair<uint64_t, uint64_t>> sorted;
    for (uint64_t k = 0; k < 200000; ++k) sorted.emplace_back(k * 3, k);
    auto t = BPlusTree::BulkLoad(pool, sorted);
    PCUBE_CHECK(t.ok());
    return new BPlusTree(std::move(*t));
  }();
  Random rng(3);
  for (auto _ : state) {
    uint64_t k = rng.Uniform(200000) * 3;
    auto v = tree->Get(k);
    PCUBE_CHECK(v.ok());
    benchmark::DoNotOptimize(*v);
  }
}
BENCHMARK(BM_BPlusTreeGet);

void BM_RTreeNodeRead(benchmark::State& state) {
  Workbench* wb = CachedWorkbench2("micro", [] {
    return GenerateSynthetic(PaperConfig(50000));
  });
  for (auto _ : state) {
    auto handle = wb->tree()->ReadNode(wb->tree()->root());
    PCUBE_CHECK(handle.ok());
    benchmark::DoNotOptimize(handle->get());
  }
}
BENCHMARK(BM_RTreeNodeRead);

void BM_SkylineQueryEndToEnd(benchmark::State& state) {
  Workbench* wb = CachedWorkbench2("micro", [] {
    return GenerateSynthetic(PaperConfig(50000));
  });
  PredicateSet preds = OnePredicate(100);
  for (auto _ : state) {
    auto out = wb->SignatureSkyline(preds);
    PCUBE_CHECK(out.ok());
    benchmark::DoNotOptimize(out->skyline.size());
  }
}
BENCHMARK(BM_SkylineQueryEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pcube::bench

BENCHMARK_MAIN();
