#!/usr/bin/env bash
# End-to-end CLI smoke test: generate -> build -> info -> skyline -> topk.
set -euo pipefail
PCUBE_BIN="$1"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
"$PCUBE_BIN" generate --rows 5000 --bool 2 --pref 2 --card 6 --out "$TMP/d.csv"
"$PCUBE_BIN" build --csv "$TMP/d.csv" --spec bbpp --header --db "$TMP/d.pcube"
"$PCUBE_BIN" info --db "$TMP/d.pcube" | grep -q "tuples:           5000"
"$PCUBE_BIN" skyline --db "$TMP/d.pcube" --where "0=v1" | grep -q "result(s)"
"$PCUBE_BIN" topk --db "$TMP/d.pcube" --k 5 --where "0=v1" --target 0.5,0.5 | grep -q "top 5"
echo "cli smoke: OK"
