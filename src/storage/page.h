// The unit of simulated disk I/O. Everything persistent in this library —
// R-tree nodes, B+-tree nodes, partial signatures, heap-file tuple blocks —
// lives in fixed-size pages, and every page fetch is charged to an IoStats
// category. The paper uses a 4 KB page throughout; so do we.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

namespace pcube {

/// Page size in bytes (paper §VI.A: "The page size in R-tree is set as 4KB").
constexpr size_t kPageSize = 4096;

/// Identifies a page within one PageManager. Dense, starting at 0.
using PageId = uint64_t;

constexpr PageId kInvalidPageId = ~PageId{0};

/// One fixed-size block of bytes.
struct Page {
  std::array<uint8_t, kPageSize> bytes;

  uint8_t* data() { return bytes.data(); }
  const uint8_t* data() const { return bytes.data(); }

  void Zero() { bytes.fill(0); }
};

}  // namespace pcube
