#include "storage/bplus_tree.h"

#include <algorithm>
#include <vector>

#include "common/bit_util.h"

namespace pcube {

namespace {

// Page layout
// -----------
// Leaf:      u8 kind(1) | u8 pad | u16 count | u64 next_leaf | entries...
//            entry = key u64, value u64 (16 B); capacity kLeafCap.
// Internal:  u8 kind(0) | u8 pad | u16 count(=#keys) | u64 pad |
//            child[0] u64 | { key u64, child u64 } * count
constexpr size_t kHeaderSize = 12;
constexpr size_t kLeafCap = (kPageSize - kHeaderSize) / 16;           // 255
constexpr size_t kInternalCap = (kPageSize - kHeaderSize - 8) / 16;   // max keys

uint8_t Kind(const Page& p) { return p.bytes[0]; }
void SetKind(Page* p, uint8_t k) { p->bytes[0] = k; }
uint16_t Count(const Page& p) { return bit_util::LoadLE<uint16_t>(p.data() + 2); }
void SetCount(Page* p, uint16_t c) { bit_util::StoreLE<uint16_t>(p->data() + 2, c); }
uint64_t NextLeaf(const Page& p) { return bit_util::LoadLE<uint64_t>(p.data() + 4); }
void SetNextLeaf(Page* p, uint64_t n) { bit_util::StoreLE<uint64_t>(p->data() + 4, n); }

uint64_t LeafKey(const Page& p, size_t i) {
  return bit_util::LoadLE<uint64_t>(p.data() + kHeaderSize + i * 16);
}
uint64_t LeafValue(const Page& p, size_t i) {
  return bit_util::LoadLE<uint64_t>(p.data() + kHeaderSize + i * 16 + 8);
}
void SetLeafEntry(Page* p, size_t i, uint64_t k, uint64_t v) {
  bit_util::StoreLE<uint64_t>(p->data() + kHeaderSize + i * 16, k);
  bit_util::StoreLE<uint64_t>(p->data() + kHeaderSize + i * 16 + 8, v);
}

uint64_t Child(const Page& p, size_t i) {
  // child[0] sits right after the header; child[i>0] after key[i-1].
  if (i == 0) return bit_util::LoadLE<uint64_t>(p.data() + kHeaderSize);
  return bit_util::LoadLE<uint64_t>(p.data() + kHeaderSize + 8 + (i - 1) * 16 + 8);
}
void SetChild(Page* p, size_t i, uint64_t c) {
  if (i == 0) {
    bit_util::StoreLE<uint64_t>(p->data() + kHeaderSize, c);
  } else {
    bit_util::StoreLE<uint64_t>(p->data() + kHeaderSize + 8 + (i - 1) * 16 + 8, c);
  }
}
uint64_t InternalKey(const Page& p, size_t i) {
  return bit_util::LoadLE<uint64_t>(p.data() + kHeaderSize + 8 + i * 16);
}
void SetInternalKey(Page* p, size_t i, uint64_t k) {
  bit_util::StoreLE<uint64_t>(p->data() + kHeaderSize + 8 + i * 16, k);
}

/// First index i in the leaf with key[i] >= key (lower bound).
size_t LeafLowerBound(const Page& p, uint64_t key) {
  size_t lo = 0, hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (LeafKey(p, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot to descend into for `key`: number of keys <= key.
size_t InternalChildIndex(const Page& p, uint64_t key) {
  size_t lo = 0, hi = Count(p);
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (InternalKey(p, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool, IoCategory cat) {
  BPlusTree tree(pool, cat);
  PageId pid;
  auto page = pool->New(cat, &pid);
  if (!page.ok()) return page.status();
  SetKind(page->get(), 1);
  SetCount(page->get(), 0);
  SetNextLeaf(page->get(), kInvalidPageId);
  tree.root_ = pid;
  tree.height_ = 0;
  tree.num_pages_ = 1;
  return tree;
}

BPlusTree BPlusTree::Attach(BufferPool* pool, PageId root, uint64_t num_entries,
                            uint64_t num_pages, IoCategory cat) {
  BPlusTree tree(pool, cat);
  tree.root_ = root;
  tree.num_entries_ = num_entries;
  tree.num_pages_ = num_pages;
  // Height is rediscovered lazily by walking to a leaf on first access; for
  // simplicity we walk now.

  PageId pid = root;
  int h = 0;
  while (true) {
    auto ref = pool->Get(pid, cat);
    PCUBE_CHECK(ref.ok());
    if (Kind(**ref) == 1) break;
    pid = Child(**ref, 0);
    ++h;
  }
  tree.height_ = h;
  return tree;
}

Status BPlusTree::InsertRecursive(PageId pid, int level, uint64_t key,
                                  uint64_t value, SplitResult* out) {
  out->split = false;
  if (level == 0) {
    auto ref = pool_->GetMutable(pid, cat_);
    if (!ref.ok()) return ref.status();
    Page* leaf = ref->get();
    size_t idx = LeafLowerBound(*leaf, key);
    size_t n = Count(*leaf);
    if (idx < n && LeafKey(*leaf, idx) == key) {
      SetLeafEntry(leaf, idx, key, value);  // overwrite
      return Status::OK();
    }
    if (n < kLeafCap) {
      for (size_t i = n; i > idx; --i) {
        SetLeafEntry(leaf, i, LeafKey(*leaf, i - 1), LeafValue(*leaf, i - 1));
      }
      SetLeafEntry(leaf, idx, key, value);
      SetCount(leaf, static_cast<uint16_t>(n + 1));
      ++num_entries_;
      return Status::OK();
    }
    // Split the leaf: left keeps the lower half.
    PageId right_pid;
    auto right_ref = pool_->New(cat_, &right_pid);
    if (!right_ref.ok()) return right_ref.status();
    ++num_pages_;
    Page* right = right_ref->get();
    SetKind(right, 1);
    size_t mid = (n + 1) / 2;
    // Gather all n+1 entries in order, then redistribute.
    std::vector<std::pair<uint64_t, uint64_t>> all;
    all.reserve(n + 1);
    for (size_t i = 0; i < n; ++i) {
      if (i == idx) all.emplace_back(key, value);
      all.emplace_back(LeafKey(*leaf, i), LeafValue(*leaf, i));
    }
    if (idx == n) all.emplace_back(key, value);
    for (size_t i = 0; i < mid; ++i) SetLeafEntry(leaf, i, all[i].first, all[i].second);
    SetCount(leaf, static_cast<uint16_t>(mid));
    for (size_t i = mid; i < all.size(); ++i) {
      SetLeafEntry(right, i - mid, all[i].first, all[i].second);
    }
    SetCount(right, static_cast<uint16_t>(all.size() - mid));
    SetNextLeaf(right, NextLeaf(*leaf));
    SetNextLeaf(leaf, right_pid);
    ++num_entries_;
    out->split = true;
    out->promoted_key = all[mid].first;
    out->right = right_pid;
    return Status::OK();
  }

  // Internal node.
  size_t slot;
  PageId child_pid;
  {
    auto ref = pool_->Get(pid, cat_);
    if (!ref.ok()) return ref.status();
    slot = InternalChildIndex(**ref, key);
    child_pid = Child(**ref, slot);
  }
  SplitResult child_split;
  PCUBE_RETURN_NOT_OK(InsertRecursive(child_pid, level - 1, key, value, &child_split));
  if (!child_split.split) return Status::OK();

  auto ref = pool_->GetMutable(pid, cat_);
  if (!ref.ok()) return ref.status();
  Page* node = ref->get();
  size_t n = Count(*node);
  if (n < kInternalCap) {
    for (size_t i = n; i > slot; --i) {
      SetInternalKey(node, i, InternalKey(*node, i - 1));
      SetChild(node, i + 1, Child(*node, i));
    }
    SetInternalKey(node, slot, child_split.promoted_key);
    SetChild(node, slot + 1, child_split.right);
    SetCount(node, static_cast<uint16_t>(n + 1));
    return Status::OK();
  }
  // Split the internal node.
  std::vector<uint64_t> keys;
  std::vector<uint64_t> children;
  keys.reserve(n + 1);
  children.reserve(n + 2);
  children.push_back(Child(*node, 0));
  for (size_t i = 0; i < n; ++i) {
    if (i == slot) {
      keys.push_back(child_split.promoted_key);
      children.push_back(child_split.right);
    }
    keys.push_back(InternalKey(*node, i));
    children.push_back(Child(*node, i + 1));
  }
  if (slot == n) {
    keys.push_back(child_split.promoted_key);
    children.push_back(child_split.right);
  }
  size_t total = keys.size();  // n + 1
  size_t mid = total / 2;      // key[mid] moves up
  PageId right_pid;
  auto right_ref = pool_->New(cat_, &right_pid);
  if (!right_ref.ok()) return right_ref.status();
  ++num_pages_;
  Page* right = right_ref->get();
  SetKind(right, 0);
  // Left: keys [0, mid), children [0, mid].
  SetChild(node, 0, children[0]);
  for (size_t i = 0; i < mid; ++i) {
    SetInternalKey(node, i, keys[i]);
    SetChild(node, i + 1, children[i + 1]);
  }
  SetCount(node, static_cast<uint16_t>(mid));
  // Right: keys (mid, total), children [mid+1, total].
  SetChild(right, 0, children[mid + 1]);
  for (size_t i = mid + 1; i < total; ++i) {
    SetInternalKey(right, i - mid - 1, keys[i]);
    SetChild(right, i - mid, children[i + 1]);
  }
  SetCount(right, static_cast<uint16_t>(total - mid - 1));
  out->split = true;
  out->promoted_key = keys[mid];
  out->right = right_pid;
  return Status::OK();
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  SplitResult split;
  PCUBE_RETURN_NOT_OK(InsertRecursive(root_, height_, key, value, &split));
  if (split.split) {
    PageId new_root;
    auto ref = pool_->New(cat_, &new_root);
    if (!ref.ok()) return ref.status();
    ++num_pages_;
    Page* node = ref->get();
    SetKind(node, 0);
    SetCount(node, 1);
    SetChild(node, 0, root_);
    SetInternalKey(node, 0, split.promoted_key);
    SetChild(node, 1, split.right);
    root_ = new_root;
    ++height_;
  }
  return Status::OK();
}

Result<uint64_t> BPlusTree::Get(uint64_t key) const {
  PageId pid = root_;
  for (int level = height_; level > 0; --level) {
    auto ref = pool_->Get(pid, cat_);
    if (!ref.ok()) return ref.status();
    pid = Child(**ref, InternalChildIndex(**ref, key));
  }
  auto ref = pool_->Get(pid, cat_);
  if (!ref.ok()) return ref.status();
  const Page& leaf = **ref;
  size_t idx = LeafLowerBound(leaf, key);
  if (idx < Count(leaf) && LeafKey(leaf, idx) == key) return LeafValue(leaf, idx);
  return Status::NotFound("key " + std::to_string(key));
}

Status BPlusTree::RangeScan(
    uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, uint64_t)>& visit) const {
  if (lo > hi) return Status::OK();
  PageId pid = root_;
  for (int level = height_; level > 0; --level) {
    auto ref = pool_->Get(pid, cat_);
    if (!ref.ok()) return ref.status();
    pid = Child(**ref, InternalChildIndex(**ref, lo));
  }
  while (pid != kInvalidPageId) {
    auto ref = pool_->Get(pid, cat_);
    if (!ref.ok()) return ref.status();
    const Page& leaf = **ref;
    size_t n = Count(leaf);
    for (size_t i = LeafLowerBound(leaf, lo); i < n; ++i) {
      uint64_t k = LeafKey(leaf, i);
      if (k > hi) return Status::OK();
      if (!visit(k, LeafValue(leaf, i))) return Status::OK();
    }
    pid = NextLeaf(leaf);
  }
  return Status::OK();
}

Result<BPlusTree> BPlusTree::BulkLoad(
    BufferPool* pool, const std::vector<std::pair<uint64_t, uint64_t>>& sorted,
    IoCategory cat) {
  if (sorted.empty()) return Create(pool, cat);
  BPlusTree tree(pool, cat);

  // Level 0: pack leaves. The previous leaf stays pinned so its next-leaf
  // pointer can be patched once the successor's page id is known.
  std::vector<std::pair<uint64_t, PageId>> level;  // (first key, pid)
  PageHandle prev_ref;
  size_t i = 0;
  while (i < sorted.size()) {
    PageId pid;
    auto ref = pool->New(cat, &pid);
    if (!ref.ok()) return ref.status();
    ++tree.num_pages_;
    Page* leaf = ref->get();
    SetKind(leaf, 1);
    SetNextLeaf(leaf, kInvalidPageId);
    size_t n = std::min(kLeafCap, sorted.size() - i);
    for (size_t j = 0; j < n; ++j) {
      PCUBE_CHECK(j == 0 || sorted[i + j].first > sorted[i + j - 1].first)
          << "BulkLoad requires strictly ascending keys";
      SetLeafEntry(leaf, j, sorted[i + j].first, sorted[i + j].second);
    }
    SetCount(leaf, static_cast<uint16_t>(n));
    if (prev_ref.valid()) SetNextLeaf(prev_ref.get(), pid);
    level.emplace_back(sorted[i].first, pid);
    prev_ref = std::move(*ref);
    i += n;
  }
  prev_ref.Release();
  tree.num_entries_ = sorted.size();

  // Upper levels.
  int height = 0;
  while (level.size() > 1) {
    std::vector<std::pair<uint64_t, PageId>> next;
    size_t j = 0;
    while (j < level.size()) {
      PageId pid;
      auto ref = pool->New(cat, &pid);
      if (!ref.ok()) return ref.status();
      ++tree.num_pages_;
      Page* node = ref->get();
      SetKind(node, 0);
      size_t fanout = std::min(kInternalCap + 1, level.size() - j);
      if (level.size() - j - fanout == 1) --fanout;  // avoid an orphan child
      SetChild(node, 0, level[j].second);
      for (size_t c = 1; c < fanout; ++c) {
        SetInternalKey(node, c - 1, level[j + c].first);
        SetChild(node, c, level[j + c].second);
      }
      SetCount(node, static_cast<uint16_t>(fanout - 1));
      next.emplace_back(level[j].first, pid);
      j += fanout;
    }
    level = std::move(next);
    ++height;
  }
  tree.root_ = level[0].second;
  tree.height_ = height;
  return tree;
}

}  // namespace pcube
