// Differential property tests for the SIMD kernel layer (DESIGN.md §12):
// the scalar implementations are the ground truth, and every dispatched or
// AVX2 path must match them bit for bit on randomized inputs. Covers the
// word kernels (with the dst-aliases-a in-place case), the encoded
// intersection across all scheme pairs (kVerbatim/kWah/kSparse), and the
// batched dominance window (with deliberate coordinate ties). Runs under
// asan and ubsan labels so lifetime and arithmetic bugs in the intrinsics
// paths surface in CI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bitmap/codec.h"
#include "common/random.h"
#include "common/simd/simd.h"
#include "common/simd/word_kernels.h"
#include "query/dominance_kernels.h"

namespace pcube {
namespace {

std::vector<uint64_t> RandomWords(Random* rng, size_t n) {
  std::vector<uint64_t> w(n);
  for (auto& x : w) {
    // Mix densities: all-zero, all-one and random words exercise the
    // any-nonzero fast exits and the popcount extremes.
    switch (rng->Uniform(4)) {
      case 0: x = 0; break;
      case 1: x = ~uint64_t{0}; break;
      default: x = rng->Next(); break;
    }
  }
  return w;
}

TEST(WordKernelTest, ScalarVsDispatchAndAvx2) {
  Random rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    size_t n = rng.Uniform(41);  // 0..40 words spans all block/tail splits
    auto a = RandomWords(&rng, n);
    auto b = RandomWords(&rng, n);

    std::vector<uint64_t> ref(n), got(n);
    bool ref_any = simd::AndWordsScalar(ref.data(), a.data(), b.data(), n);
    bool got_any = simd::AndWords(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(got, ref);
    EXPECT_EQ(got_any, ref_any);

    simd::OrWordsScalar(ref.data(), a.data(), b.data(), n);
    simd::OrWords(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(got, ref);

    simd::AndNotWordsScalar(ref.data(), a.data(), b.data(), n);
    simd::AndNotWords(got.data(), a.data(), b.data(), n);
    EXPECT_EQ(got, ref);

    EXPECT_EQ(simd::PopcountWords(a.data(), n),
              simd::PopcountWordsScalar(a.data(), n));
    EXPECT_EQ(simd::AndPopcountWords(a.data(), b.data(), n),
              simd::AndPopcountWordsScalar(a.data(), b.data(), n));
    EXPECT_EQ(simd::AnyWords(a.data(), n), simd::AnyWordsScalar(a.data(), n));

#if defined(PCUBE_SIMD_HAVE_AVX2)
    if (simd::CpuSupportsAvx2()) {
      simd::AndWordsScalar(ref.data(), a.data(), b.data(), n);
      EXPECT_EQ(simd::AndWordsAvx2(got.data(), a.data(), b.data(), n),
                ref_any);
      EXPECT_EQ(got, ref);
      simd::OrWordsAvx2(got.data(), a.data(), b.data(), n);
      simd::OrWordsScalar(ref.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, ref);
      simd::AndNotWordsAvx2(got.data(), a.data(), b.data(), n);
      simd::AndNotWordsScalar(ref.data(), a.data(), b.data(), n);
      EXPECT_EQ(got, ref);
      EXPECT_EQ(simd::PopcountWordsAvx2(a.data(), n),
                simd::PopcountWordsScalar(a.data(), n));
      EXPECT_EQ(simd::AndPopcountWordsAvx2(a.data(), b.data(), n),
                simd::AndPopcountWordsScalar(a.data(), b.data(), n));
      EXPECT_EQ(simd::AnyWordsAvx2(a.data(), n),
                simd::AnyWordsScalar(a.data(), n));
    }
#endif

    // In-place form: dst aliases a (the documented aliasing contract).
    auto inplace = a;
    simd::AndWordsScalar(ref.data(), a.data(), b.data(), n);
    simd::AndWords(inplace.data(), inplace.data(), b.data(), n);
    EXPECT_EQ(inplace, ref);
  }
}

// Random vectors biased toward runs: WAH's fill paths only trigger on
// aligned 31-bit groups of all-zero/all-one, which uniform bits never form.
BitVector RunBiasedVector(Random* rng, size_t num_bits) {
  BitVector v(num_bits);
  size_t i = 0;
  while (i < num_bits) {
    size_t run = 1 + rng->Uniform(96);
    bool ones;
    switch (rng->Uniform(3)) {
      case 0: ones = false; break;
      case 1: ones = true; break;
      default: ones = rng->Uniform(2) == 1; break;
    }
    for (; run > 0 && i < num_bits; --run, ++i) {
      if (ones ? rng->Uniform(8) != 0 : rng->Uniform(8) == 0) v.Set(i);
    }
  }
  return v;
}

TEST(EncodedIntersectTest, MatchesDecodeThenAndAcrossAllSchemePairs) {
  Random rng(11);
  const BitmapScheme kSchemes[] = {BitmapScheme::kVerbatim,
                                   BitmapScheme::kWah, BitmapScheme::kSparse};
  for (int trial = 0; trial < 120; ++trial) {
    size_t n = 1 + rng.Uniform(900);
    BitVector a = RunBiasedVector(&rng, n);
    BitVector b = RunBiasedVector(&rng, n);
    BitVector expected = a;
    expected.InplaceAnd(b);

    for (BitmapScheme sa : kSchemes) {
      for (BitmapScheme sb : kSchemes) {
        std::vector<uint8_t> buf_a, buf_b;
        BitmapCodec::EncodeWith(sa, a, &buf_a);
        BitmapCodec::EncodeWith(sb, b, &buf_b);
        // Trailing garbage ensures the intersection consumes exactly one
        // encoding per side, like a reader inside a partial signature.
        buf_a.push_back(0xAB);
        buf_b.push_back(0xCD);
        size_t off_a = 0, off_b = 0;
        BitVector out;
        auto st = BitmapCodec::IntersectEncoded(buf_a.data(), buf_a.size(),
                                                &off_a, buf_b.data(),
                                                buf_b.size(), &off_b, &out);
        ASSERT_TRUE(st.ok()) << st.ToString();
        EXPECT_EQ(off_a, buf_a.size() - 1);
        EXPECT_EQ(off_b, buf_b.size() - 1);
        EXPECT_TRUE(out == expected)
            << "n=" << n << " schemes " << static_cast<int>(sa) << "x"
            << static_cast<int>(sb);
      }
    }
  }
}

TEST(EncodedIntersectTest, EmptyAndFullVectors) {
  for (size_t n : {1u, 31u, 62u, 63u, 64u, 300u}) {
    BitVector zero(n);
    BitVector full(n);
    for (size_t i = 0; i < n; ++i) full.Set(i);
    for (const BitVector* x : {&zero, &full}) {
      for (const BitVector* y : {&zero, &full}) {
        std::vector<uint8_t> bx, by;
        BitmapCodec::Encode(*x, &bx);
        BitmapCodec::Encode(*y, &by);
        size_t ox = 0, oy = 0;
        BitVector out;
        ASSERT_TRUE(BitmapCodec::IntersectEncoded(bx.data(), bx.size(), &ox,
                                                  by.data(), by.size(), &oy,
                                                  &out)
                        .ok());
        BitVector expected = *x;
        expected.InplaceAnd(*y);
        EXPECT_TRUE(out == expected) << "n=" << n;
      }
    }
  }
}

TEST(EncodedIntersectTest, RejectsMismatchedBitCounts) {
  BitVector a(64), b(65);
  std::vector<uint8_t> ba, bb;
  BitmapCodec::Encode(a, &ba);
  BitmapCodec::Encode(b, &bb);
  size_t oa = 0, ob = 0;
  BitVector out;
  EXPECT_FALSE(BitmapCodec::IntersectEncoded(ba.data(), ba.size(), &oa,
                                             bb.data(), bb.size(), &ob, &out)
                   .ok());
}

// Naive dominance count, saturated: what both kernel paths must return.
size_t ReferenceDominators(const std::vector<std::vector<double>>& members,
                           const std::vector<double>& cand, size_t limit) {
  size_t count = 0;
  for (const auto& m : members) {
    bool all_le = true, one_lt = false;
    for (size_t d = 0; d < cand.size(); ++d) {
      if (m[d] > cand[d]) all_le = false;
      if (m[d] < cand[d]) one_lt = true;
    }
    if (all_le && one_lt) ++count;
  }
  return std::min(count, limit);
}

TEST(DominanceWindowTest, ScalarAvx2AndDispatchAgree) {
  Random rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    size_t dims = 1 + rng.Uniform(6);
    size_t size = rng.Uniform(41);
    DominanceWindow window(dims);
    std::vector<std::vector<double>> members;
    for (size_t i = 0; i < size; ++i) {
      std::vector<double> m(dims);
      // Coordinates from a small discrete set force exact ties, the edge
      // where <= vs < discipline matters.
      for (auto& x : m) x = static_cast<double>(rng.Uniform(5));
      window.Append(m.data());
      members.push_back(std::move(m));
    }
    ASSERT_EQ(window.size(), size);
    std::vector<double> cand(dims);
    for (auto& x : cand) x = static_cast<double>(rng.Uniform(5));
    size_t limit = 1 + rng.Uniform(5);

    size_t expected = ReferenceDominators(members, cand, limit);
    EXPECT_EQ(window.CountDominatorsScalar(cand.data(), limit), expected);
    EXPECT_EQ(window.CountDominators(cand.data(), limit), expected);
#if defined(PCUBE_SIMD_HAVE_AVX2)
    if (simd::CpuSupportsAvx2()) {
      EXPECT_EQ(window.CountDominatorsAvx2(cand.data(), limit), expected);
    }
#endif
  }
}

TEST(DominanceWindowTest, ResetClearsAndSurvivesGrowth) {
  DominanceWindow window(2);
  double origin[2] = {0.0, 0.0};
  double cand[2] = {1.0, 1.0};
  for (int i = 0; i < 100; ++i) window.Append(origin);  // forces Grow
  EXPECT_EQ(window.CountDominators(cand, 1000), 100u);
  window.Reset(3);
  EXPECT_EQ(window.size(), 0u);
  double cand3[3] = {1.0, 1.0, 1.0};
  EXPECT_EQ(window.CountDominators(cand3, 5), 0u);
}

TEST(SimdLevelTest, ParseAndNames) {
  simd::SimdLevel level;
  EXPECT_TRUE(simd::ParseSimdLevel("scalar", &level));
  EXPECT_EQ(level, simd::SimdLevel::kScalar);
  EXPECT_TRUE(simd::ParseSimdLevel("avx2", &level));
  EXPECT_EQ(level, simd::SimdLevel::kAvx2);
  EXPECT_FALSE(simd::ParseSimdLevel("sse9", &level));
  EXPECT_FALSE(simd::ParseSimdLevel("", &level));
  EXPECT_STREQ(simd::SimdLevelName(simd::SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdLevelName(simd::SimdLevel::kAvx2), "avx2");
}

TEST(SimdLevelTest, ActiveLevelIsExecutable) {
  simd::SimdLevel level = simd::ActiveSimdLevel();
  if (level == simd::SimdLevel::kAvx2) {
    EXPECT_TRUE(simd::CpuSupportsAvx2());
  }
}

}  // namespace
}  // namespace pcube
