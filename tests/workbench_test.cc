// End-to-end workbench tests: the assembled stack answers queries, and the
// I/O accounting matches the paper's qualitative claims (SSig << SBlock,
// signature expands fewer blocks than domination, P-Cube smaller than
// R-tree).
#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::unique_ptr<Workbench> MakeWorkbench(uint64_t n, uint64_t seed) {
  SyntheticConfig config;
  config.num_tuples = n;
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = 100;  // the paper's default C
  config.seed = seed;
  WorkbenchOptions options;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  PCUBE_CHECK(wb.ok());
  return std::move(*wb);
}

TEST(WorkbenchTest, EndToEndSkylineAndTopK) {
  auto wb = MakeWorkbench(20000, 700);
  PredicateSet preds{{0, 42}};
  auto sky = wb->SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  std::vector<TupleId> tids;
  for (const auto& e : sky->skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(tids, NaiveSkyline(wb->data(), preds));

  LinearRanking f({0.2, 0.5, 0.3});
  auto topk = wb->SignatureTopK(preds, f, 10);
  ASSERT_TRUE(topk.ok());
  auto naive = NaiveTopK(wb->data(), preds, f, 10);
  ASSERT_EQ(topk->results.size(), naive.size());
  for (size_t i = 0; i < naive.size(); ++i) {
    EXPECT_NEAR(topk->results[i].key, naive[i].second, 1e-9);
  }
}

TEST(WorkbenchTest, SignatureLoadIsSmallFractionOfIo) {
  // Paper §V.A / Fig. 9: Csig << CR-tree (they report <= 1%; we allow 30%
  // at this much smaller scale).
  auto wb = MakeWorkbench(30000, 701);
  ASSERT_TRUE(wb->ColdStart().ok());
  auto out = wb->SignatureSkyline({{1, 7}});
  ASSERT_TRUE(out.ok());
  IoStats io = wb->IoSince();
  EXPECT_GT(io.ReadCount(IoCategory::kRtreeBlock), 0u);
  EXPECT_LT(io.ReadCount(IoCategory::kSignature),
            std::max<uint64_t>(1, io.ReadCount(IoCategory::kRtreeBlock)));
}

TEST(WorkbenchTest, SignatureBeatsDominationOnBlocksAndHeap) {
  auto wb = MakeWorkbench(30000, 702);
  PredicateSet preds{{0, 3}};

  ASSERT_TRUE(wb->ColdStart().ok());
  auto sig = wb->SignatureSkyline(preds);
  ASSERT_TRUE(sig.ok());

  ASSERT_TRUE(wb->ColdStart().ok());
  auto dom = DominationFirstSkyline(*wb->tree(), *wb->table(), preds);
  ASSERT_TRUE(dom.ok());

  EXPECT_LE(sig->counters.nodes_expanded, dom->counters.nodes_expanded);
  EXPECT_LE(sig->counters.heap_peak, dom->counters.heap_peak);
}

TEST(WorkbenchTest, MaterializedSizesOrdering) {
  // Fig. 6's essential claim: the P-Cube is much smaller than both the
  // boolean B+-trees and the R-tree. (The paper additionally has B+-trees <
  // R-tree; our B+-tree entries are 16 B where 2008-era ones were ~8 B, so
  // the two are within ~20% of each other here.)
  auto wb = MakeWorkbench(30000, 703);
  uint64_t rtree_pages = wb->tree()->num_pages();
  uint64_t btree_pages = 0;
  for (const auto& index : wb->indices()) btree_pages += index.num_pages();
  uint64_t pcube_pages = wb->cube()->MaterializedPages();
  EXPECT_LT(pcube_pages, btree_pages / 2);
  EXPECT_LT(pcube_pages, rtree_pages / 2);
}

TEST(WorkbenchTest, ColdStartResetsAccounting) {
  auto wb = MakeWorkbench(5000, 704);
  ASSERT_TRUE(wb->ColdStart().ok());
  IoStats none = wb->IoSince();
  EXPECT_EQ(none.TotalReads(), 0u);
  ASSERT_TRUE(wb->SignatureSkyline({{0, 1}}).ok());
  EXPECT_GT(wb->IoSince().TotalReads(), 0u);
  ASSERT_TRUE(wb->ColdStart().ok());
  EXPECT_EQ(wb->IoSince().TotalReads(), 0u);
}

}  // namespace
}  // namespace pcube
