file(REMOVE_RECURSE
  "CMakeFiles/pcube_core.dir/bloom_store.cc.o"
  "CMakeFiles/pcube_core.dir/bloom_store.cc.o.d"
  "CMakeFiles/pcube_core.dir/pcube.cc.o"
  "CMakeFiles/pcube_core.dir/pcube.cc.o.d"
  "CMakeFiles/pcube_core.dir/signature.cc.o"
  "CMakeFiles/pcube_core.dir/signature.cc.o.d"
  "CMakeFiles/pcube_core.dir/signature_algebra.cc.o"
  "CMakeFiles/pcube_core.dir/signature_algebra.cc.o.d"
  "CMakeFiles/pcube_core.dir/signature_builder.cc.o"
  "CMakeFiles/pcube_core.dir/signature_builder.cc.o.d"
  "CMakeFiles/pcube_core.dir/signature_codec.cc.o"
  "CMakeFiles/pcube_core.dir/signature_codec.cc.o.d"
  "CMakeFiles/pcube_core.dir/signature_cursor.cc.o"
  "CMakeFiles/pcube_core.dir/signature_cursor.cc.o.d"
  "CMakeFiles/pcube_core.dir/signature_store.cc.o"
  "CMakeFiles/pcube_core.dir/signature_store.cc.o.d"
  "libpcube_core.a"
  "libpcube_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
