file(REMOVE_RECURSE
  "CMakeFiles/signature_store_test.dir/signature_store_test.cc.o"
  "CMakeFiles/signature_store_test.dir/signature_store_test.cc.o.d"
  "signature_store_test"
  "signature_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
