// Scatter-gather sharding benchmark: one mixed skyline/top-k workload runs
// through ShardedWorkbench coordinators at 1, 2 and 4 shards over the SAME
// relation, and the sweep reports QPS and speedup vs. the single-shard
// baseline. As in bench_throughput, per-read latency is REAL (a
// LatencyPageManager sleeps per physical read) and each shard's buffer pool
// is kept small, so the fan-out's win comes from shards faulting their
// pages concurrently — the disk-bound regime of the paper's experiments.
//
// The sweep doubles as a differential gate: every shard count must return
// byte-identical answers to the 1-shard run (the merge-soundness argument
// of DESIGN.md §13 made executable), and the process exits non-zero on any
// mismatch — which is how scripts/ci.sh's `shard` phase uses it.
//
// Output: a table on stdout plus BENCH_shard.json in the working directory.
//
// Environment knobs:
//   PCUBE_SHARD_ROWS        dataset size             (default 20000)
//   PCUBE_SHARD_QUERIES     queries per batch        (default 120)
//   PCUBE_SHARD_LATENCY_US  per-read sleep, micros   (default 500)
//   PCUBE_SHARD_POOL_PAGES  per-shard buffer pool    (default 64)
//   PCUBE_SHARD_WORKERS     batch worker threads     (default 4)
//   PCUBE_SHARD_SMOKE       when set, sweep only {1, 2} shards (CI)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/generators.h"
#include "shard/sharded_workbench.h"

using namespace pcube;

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  uint64_t v = std::strtoull(env, nullptr, 10);
  return v == 0 ? fallback : v;
}

/// Same deterministic mixed workload shape as bench_throughput: 1/3
/// skylines (one of them a 2-skyband), 2/3 top-k.
std::vector<BatchQuery> BuildWorkload(size_t n, const SyntheticConfig& config) {
  Random rng(2024);
  std::vector<BatchQuery> queries;
  queries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PredicateSet preds;
    preds.Add({static_cast<int>(rng.Uniform(config.num_bool)),
               static_cast<uint32_t>(rng.Uniform(config.bool_cardinality))});
    if (rng.Uniform(4) == 0) {
      preds.Add({static_cast<int>(rng.Uniform(config.num_bool)),
                 static_cast<uint32_t>(rng.Uniform(config.bool_cardinality))});
    }
    switch (i % 3) {
      case 0: {
        SkylineQueryOptions options;
        if (i % 6 == 3) options.skyband_k = 2;
        queries.push_back(BatchQuery::Skyline(std::move(preds), options));
        break;
      }
      case 1: {
        std::vector<double> weights(config.num_pref);
        for (double& w : weights) w = 0.25 + rng.NextDouble();
        queries.push_back(BatchQuery::TopK(
            std::move(preds), std::make_shared<LinearRanking>(weights), 10));
        break;
      }
      default: {
        std::vector<double> target(config.num_pref);
        for (double& t : target) t = rng.NextDouble();
        std::vector<double> weights(config.num_pref, 1.0);
        queries.push_back(BatchQuery::TopK(
            std::move(preds),
            std::make_shared<WeightedL2Ranking>(target, weights), 10));
        break;
      }
    }
  }
  return queries;
}

}  // namespace

int main() {
  SyntheticConfig config;
  config.num_tuples = EnvU64("PCUBE_SHARD_ROWS", 20000);
  config.num_bool = 3;
  config.num_pref = 3;
  config.bool_cardinality = 100;
  config.seed = 42;

  const size_t num_queries = EnvU64("PCUBE_SHARD_QUERIES", 120);
  const double latency_us =
      static_cast<double>(EnvU64("PCUBE_SHARD_LATENCY_US", 500));
  const size_t pool_pages = EnvU64("PCUBE_SHARD_POOL_PAGES", 64);
  const size_t workers = EnvU64("PCUBE_SHARD_WORKERS", 4);

  Dataset data = GenerateSynthetic(config);
  std::vector<BatchQuery> queries = BuildWorkload(num_queries, config);
  std::printf(
      "shard sweep: %llu rows, %zu queries, %zu workers, pool %zu "
      "pages/shard, %.0f us/read\n",
      static_cast<unsigned long long>(config.num_tuples), queries.size(),
      workers, pool_pages, latency_us);

  std::vector<size_t> sweep = {1, 2, 4};
  if (std::getenv("PCUBE_SHARD_SMOKE") != nullptr) sweep = {1, 2};

  struct Row {
    size_t shards;
    double seconds;
    double qps;
    uint64_t reads;
    LatencySummary latency;
    double queue_depth_peak;
  };
  std::vector<Row> rows;
  // Answers of the 1-shard run — every later shard count must match them
  // exactly (the differential gate).
  std::vector<std::vector<TupleId>> baseline_tids;
  std::vector<std::vector<double>> baseline_scores;
  bool mismatch = false;

  for (size_t num_shards : sweep) {
    ShardedOptions options;
    options.num_shards = num_shards;
    options.shard.pool_pages = pool_pages;
    options.shard.pool_stripes = 16;
    options.shard.read_latency_us = latency_us;
    // The sweep re-runs one workload; the coordinator L1 would serve the
    // repeats without fanning out and mask the scatter-gather cost.
    options.result_cache_mb = 0;
    options.shard.fragment_cache_mb = 0;
    auto sw = ShardedWorkbench::Build(data, options);
    PCUBE_CHECK(sw.ok()) << sw.status().ToString();
    QueryService& service = **sw;

    // Untimed warm-up pass so every shard count is measured against its
    // steady faulting state. The pool peak gauge is reset after the warm-up
    // so the reported backlog high-water mark covers the measured pass only.
    (void)service.RunBatch(queries, workers);
    Gauge* pool_peak = MetricsRegistry::Default().GetGauge(
        "pcube_threadpool_queue_depth_peak");
    pool_peak->Reset();
    BatchOutput out = service.RunBatch(queries, workers);
    PCUBE_CHECK_EQ(out.failed, 0u);
    rows.push_back({num_shards, out.seconds,
                    static_cast<double>(queries.size()) / out.seconds,
                    out.io.TotalReads(), out.latency, pool_peak->Value()});
    std::printf(
        "  %zu shard(s): %7.2f qps  (%.3f s, %llu page reads, p95 %.1f ms, "
        "queue peak %.0f, %zu live)\n",
        num_shards, rows.back().qps, out.seconds,
        static_cast<unsigned long long>(rows.back().reads),
        out.latency.p95 * 1e3, rows.back().queue_depth_peak,
        (*sw)->live_shards());

    if (baseline_tids.empty()) {
      for (const BatchQueryResult& r : out.results) {
        baseline_tids.push_back(r.response.tids);
        baseline_scores.push_back(r.response.scores);
      }
    } else {
      for (size_t q = 0; q < out.results.size(); ++q) {
        if (out.results[q].response.tids != baseline_tids[q] ||
            out.results[q].response.scores != baseline_scores[q]) {
          std::fprintf(stderr,
                       "DIFFERENTIAL MISMATCH: query %zu differs at %zu "
                       "shards\n",
                       q, num_shards);
          mismatch = true;
        }
      }
    }
  }

  const double base_qps = rows.front().qps;
  std::ofstream json("BENCH_shard.json");
  json << "{\n  \"workload\": {\"rows\": " << config.num_tuples
       << ", \"queries\": " << num_queries << ", \"workers\": " << workers
       << ", \"pool_pages\": " << pool_pages
       << ", \"read_latency_us\": " << latency_us << "},\n  \"runs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"shards\": " << r.shards << ", \"qps\": " << r.qps
         << ", \"seconds\": " << r.seconds << ", \"page_reads\": " << r.reads
         << ", \"latency_p50\": " << r.latency.p50
         << ", \"latency_p95\": " << r.latency.p95
         << ", \"latency_p99\": " << r.latency.p99
         << ", \"queue_depth_peak\": " << r.queue_depth_peak
         << ", \"speedup\": " << r.qps / base_qps
         << ", \"identical_to_baseline\": " << (mismatch ? "false" : "true")
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();

  for (const Row& r : rows) {
    std::printf("speedup @%zu shards: %.2fx\n", r.shards, r.qps / base_qps);
  }
  std::printf("wrote BENCH_shard.json\n");
  if (mismatch) {
    std::fprintf(stderr,
                 "sharded answers diverged from the 1-shard baseline\n");
    return 1;
  }
  return 0;
}
