// Paged R*-tree over the preference dimensions (Guttman [15] structure with
// the R*-tree improvements of Beckmann et al. [16]: margin-based split axis
// selection, overlap-minimal split index, and forced re-insertion).
//
// This tree is the shared partition template of the P-Cube (paper §IV.A,
// third proposal): it is built once over all tuples, and every cube cell's
// signature summarises which of its nodes contain tuples of that cell.
// To make that possible the tree:
//   * keeps entries in stable slots with free-entry reuse (§IV.B.3), so a
//     tuple's path only changes under node splits / forced re-insertion;
//   * reports every such path change through a PathChangeSet so the P-Cube
//     can be maintained incrementally.
//
// Thread-safety: the const read path (ReadNode, ResolvePath, Root and the
// accessors) keeps no mutable state of its own — all page traffic goes
// through the striped BufferPool — so any number of threads may query a
// built tree concurrently. Insert/Delete/BulkLoad mutate nodes in place and
// are single-threaded by contract (DESIGN.md "Concurrency model").
#pragma once

#include <functional>
#include <span>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "cube/relation.h"
#include "rtree/node.h"
#include "rtree/path.h"
#include "storage/buffer_pool.h"

namespace pcube {

/// Construction / maintenance knobs.
struct RTreeOptions {
  int dims = 2;
  /// 0 derives the fanout from the page size (NodeView::MaxEntries).
  uint32_t max_entries = 0;
  /// Fraction of M removed by forced re-insertion (R* paper: 30%).
  double reinsert_fraction = 0.3;
  /// Enables R* forced re-insertion on leaf overflow.
  bool forced_reinsert = true;
  /// Leaf fill factor used by STR bulk loading.
  double bulk_fill = 0.9;
};

/// Disk-resident R*-tree storing (point, TupleId) leaf entries.
class RStarTree {
 public:
  /// Visits one stored tuple: its id, current path, and point coordinates.
  using PathVisitor =
      std::function<void(TupleId, const Path&, std::span<const float>)>;

  /// Creates an empty tree (a single empty leaf as root).
  static Result<RStarTree> Create(BufferPool* pool, const RTreeOptions& options);

  /// Builds by repeated R* insertion (the faithful construction-cost path
  /// measured in Fig. 5).
  static Result<RStarTree> BuildByInsertion(BufferPool* pool,
                                            const Dataset& data,
                                            const RTreeOptions& options);

  /// Sort-Tile-Recursive bulk load; fast setup path for tests/benchmarks.
  static Result<RStarTree> BulkLoad(BufferPool* pool, const Dataset& data,
                                    const RTreeOptions& options);

  /// Equi-width grid partition (paper §IV.B.1: "the same concept can be
  /// applied with other multidimensional partition methods"; the ranking
  /// cube [12] uses grids). Tuples are bucketed into cells_per_dim^dims
  /// cells; each cell's tuples pack into leaves, and upper levels are built
  /// over the cell rectangles. Signatures, probes and engines work
  /// unchanged on the result — the grid is just a different template.
  static Result<RStarTree> BuildGridPartition(BufferPool* pool,
                                              const Dataset& data,
                                              const RTreeOptions& options,
                                              int cells_per_dim);

  /// Re-attaches to a previously built tree (catalog-driven reopen).
  static RStarTree Attach(BufferPool* pool, const RTreeOptions& options,
                          PageId root, int height, uint64_t num_entries,
                          uint64_t num_pages) {
    RStarTree tree(pool, options);
    tree.root_ = root;
    tree.height_ = height;
    tree.num_entries_ = num_entries;
    tree.num_pages_ = num_pages;
    return tree;
  }

  /// Constructs a tree with an explicitly prescribed structure: each entry is
  /// (tid, point, full path); all paths must have equal length. Used to
  /// replicate the paper's worked example (Table I / Fig. 1) exactly.
  static Result<RStarTree> BuildExplicit(
      BufferPool* pool, const RTreeOptions& options,
      const std::vector<std::tuple<TupleId, std::vector<float>, Path>>& entries);

  /// Inserts one point; appends all resulting path changes (including the new
  /// tuple's path) to `*changes` when non-null.
  Status Insert(std::span<const float> point, TupleId tid,
                PathChangeSet* changes);

  /// Removes the entry (point, tid). NotFound if absent. Other tuples' paths
  /// are unaffected (slots are never compacted).
  Status Delete(std::span<const float> point, TupleId tid,
                PathChangeSet* changes);

  /// Path of the leaf entry holding (point, tid).
  Result<Path> FindPath(std::span<const float> point, TupleId tid) const;

  /// Visits every stored tuple with its current path and point (DFS order).
  Status CollectPaths(const PathVisitor& visit) const;

  /// Reads a node page for query processing, charged to `cat`.
  Result<PageHandle> ReadNode(PageId pid,
                              IoCategory cat = IoCategory::kRtreeBlock) const {
    return pool_->Get(pid, cat);
  }

  /// Resolves a node path (1-based slots) to its page id; the root is the
  /// empty path. Reads are charged to `cat`.
  Result<PageId> ResolvePath(const Path& path, IoCategory cat) const;

  /// Structural integrity walk (pcube verify): every node is readable, slot
  /// counts match headers, levels descend to 0 at the leaves, child MBRs
  /// are contained in their parent entry, and the totals agree with
  /// num_entries()/num_pages(). Appends one message per problem to
  /// `*problems`; returns non-OK only when a page cannot be read at all.
  Status CheckStructure(std::vector<std::string>* problems) const;

  PageId root() const { return root_; }
  /// Root level; leaves are level 0, so height() + 1 node levels exist.
  int height() const { return height_; }
  uint32_t fanout() const { return m_; }
  int dims() const { return options_.dims; }
  uint64_t num_entries() const { return num_entries_; }
  uint64_t num_pages() const { return num_pages_; }
  BufferPool* pool() const { return pool_; }
  const RTreeOptions& options() const { return options_; }

 private:
  RStarTree(BufferPool* pool, const RTreeOptions& options)
      : pool_(pool),
        options_(options),
        m_(options.max_entries != 0 ? options.max_entries
                                    : NodeView::MaxEntries(options.dims)) {}

  struct DescentStep {
    PageId pid = kInvalidPageId;
    uint32_t slot = 0;  // slot taken in this node to reach the child
  };

  /// One pending (re)insertion of a leaf entry.
  struct PendingEntry {
    RectF rect;
    TupleId tid;
  };

  Status InsertLeafEntry(const PendingEntry& entry, PathChangeSet* changes,
                         bool* reinsert_done,
                         std::vector<PendingEntry>* pending);
  Status ChooseLeaf(const RectF& rect, std::vector<DescentStep>* stack) const;
  Status UpdateAncestorMbrs(const std::vector<DescentStep>& stack,
                            size_t upto_level);
  Status SplitNode(std::vector<DescentStep>* stack, size_t depth,
                   const RectF& extra_rect, uint64_t extra_id,
                   PathChangeSet* changes);
  Status CollectSubtreePaths(PageId pid, Path* prefix,
                             const PathVisitor& visit) const;
  void RecordOldPath(PathChangeSet* changes, TupleId tid,
                     std::span<const float> point, const Path& old_path);
  void MarkDirty(PathChangeSet* changes, TupleId tid);
  Status FinalizeNewPaths(PathChangeSet* changes);

  BufferPool* pool_;
  RTreeOptions options_;
  uint32_t m_;
  PageId root_ = kInvalidPageId;
  int height_ = 0;
  uint64_t num_entries_ = 0;
  uint64_t num_pages_ = 0;
};

}  // namespace pcube
