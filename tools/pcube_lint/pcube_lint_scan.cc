// pcube_lint_scan: the fallback driver of the pcube-lint static checks
// (DESIGN.md §16).
//
// The preferred implementation of these checks is the clang-tidy plugin in
// this directory (PCubeLintModule.cpp), which sees real types and call
// graphs. This binary is the fallback that keeps the `lint` CI phase
// enforcing the same four invariants on toolchains without clang-tidy
// plugin headers (the default GCC container): a self-contained,
// comment/string-aware lexical analyzer. It is deliberately conservative —
// everything it cannot prove benign it reports, and every report can be
// silenced only by an explicit, reasoned pragma comment, so the escape
// hatch is itself greppable documentation.
//
// Checks (shared semantics with the plugin; see DESIGN.md §16):
//   pcube-mutation-entry
//       Direct calls to the raw structure mutators (PCube::ApplyChanges,
//       PCube::Rebuild, RStarTree::Insert/Delete, TableStore::Append)
//       outside WriteApplier (src/workbench/write_path.cc), the mutators'
//       own defining files, or code tagged
//       `// pcube-lint: allow-mutation(<reason>)`. QueryService::Apply is
//       the only legal mutation entry point (DESIGN.md §15) — any other
//       path bypasses the WAL, the epoch stamping and the structure lock.
//   pcube-wire-no-abort
//       Abort-family calls (PCUBE_CHECK*, CHECK*, DCHECK*, assert, abort)
//       in wire-facing code (default: any file under src/server/). Wire
//       bytes are attacker-controlled; reaching a process abort from them
//       is a remote crash (DESIGN.md §14). Locally-produced values may be
//       checked with `// pcube-lint: trusted(<reason>)`.
//   pcube-guarded-by-completeness
//       Non-const, non-static data members of any class that owns a
//       Mutex/SharedMutex member must carry GUARDED_BY/PT_GUARDED_BY or an
//       explicit `// pcube-lint: lock-free(<reason>)` (single member) /
//       `// pcube-lint: begin-lock-free(<reason>)` ... `end-lock-free`
//       (member block) annotation. Members whose type is itself a
//       synchronization primitive (Mutex, SharedMutex, CondVar, atomics)
//       and const-qualified declarations are exempt.
//   pcube-ignore-error-rationale
//       `.IgnoreError()` without a rationale comment on the same or the
//       immediately preceding line. The discard stays sanctioned, but the
//       *why* must sit next to it.
//
// Known lexical limitations (the plugin has none of these): receiver types
// are resolved only from declarations in the scanned file and its paired
// header (foo.cc <-> foo.h), so an `auto` receiver of a raw mutator is not
// flagged; reachability of an abort from a decoder is approximated by file
// path.  Fixture coverage: tests/lint_fixtures/ + lint_fixture_test.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

struct Diagnostic {
  std::string file;
  int line = 0;
  int col = 0;
  std::string check;  // "pcube-mutation-entry", ...
  std::string message;
};

struct Options {
  std::set<std::string> checks;  // enabled checks, empty = all
  std::vector<std::string> wire_paths{"src/server/"};
  bool quiet = false;
};

bool CheckEnabled(const Options& opts, const std::string& name) {
  return opts.checks.empty() || opts.checks.count(name) > 0;
}

// ---------------------------------------------------------------------------
// Source model: raw text, comment-derived line facts, masked text, tokens
// ---------------------------------------------------------------------------

// Facts harvested from one line's comments before masking. Marker comments
// (`expect-lint:`, used by the fixture corpus) are invisible to every
// check so a fixture's expectations cannot silence the violation they mark.
struct LineFacts {
  bool has_rationale = false;       // any non-marker, non-pragma comment
  bool allow_mutation = false;      // pcube-lint: allow-mutation(...)
  bool allow_mutation_file = false; // pcube-lint: allow-mutation-file(...)
  bool trusted = false;             // pcube-lint: trusted(...)
  bool lock_free = false;           // pcube-lint: lock-free(...)
  bool begin_lock_free = false;     // pcube-lint: begin-lock-free(...)
  bool end_lock_free = false;       // pcube-lint: end-lock-free
};

struct Token {
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

struct SourceFile {
  std::string path;
  std::string raw;
  std::string masked;            // comments/strings/preprocessor -> spaces
  std::vector<LineFacts> lines;  // index 0 unused; [1..n]
  std::vector<Token> tokens;
  bool file_allows_mutation = false;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

// Classifies one comment's text (without the // or /* */ fence) into the
// line-fact flags of every line the comment touches.
void ClassifyComment(const std::string& body, int first_line, int last_line,
                     std::vector<LineFacts>* lines) {
  auto mark = [&](auto field) {
    for (int l = first_line; l <= last_line && l < (int)lines->size(); ++l) {
      (*lines)[l].*field = true;
    }
  };
  if (body.find("expect-lint:") != std::string::npos) {
    return;  // fixture marker: invisible to all checks
  }
  const size_t tag = body.find("pcube-lint:");
  if (tag != std::string::npos) {
    const std::string rest = body.substr(tag + std::strlen("pcube-lint:"));
    if (rest.find("allow-mutation-file") != std::string::npos) {
      mark(&LineFacts::allow_mutation_file);
    } else if (rest.find("allow-mutation") != std::string::npos) {
      mark(&LineFacts::allow_mutation);
    } else if (rest.find("trusted") != std::string::npos) {
      mark(&LineFacts::trusted);
    } else if (rest.find("begin-lock-free") != std::string::npos) {
      mark(&LineFacts::begin_lock_free);
    } else if (rest.find("end-lock-free") != std::string::npos) {
      mark(&LineFacts::end_lock_free);
    } else if (rest.find("lock-free") != std::string::npos) {
      mark(&LineFacts::lock_free);
    } else {
      mark(&LineFacts::has_rationale);  // unknown tag: plain comment
    }
    return;
  }
  // A rationale must say something: pure decoration (`////`, `---`) or an
  // empty `//` does not count.
  bool has_word = false;
  for (char c : body) {
    if (std::isalnum(static_cast<unsigned char>(c))) { has_word = true; break; }
  }
  if (has_word) mark(&LineFacts::has_rationale);
}

// One pass over the raw text: strips comments, string/char literals and
// preprocessor directives to spaces (newlines preserved, so offsets map to
// identical line/col), while harvesting per-line comment facts.
void MaskAndHarvest(SourceFile* f) {
  const std::string& s = f->raw;
  std::string out(s);
  int nlines = 1 + (int)std::count(s.begin(), s.end(), '\n');
  f->lines.assign(nlines + 2, LineFacts{});

  enum State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = kCode;
  int line = 1;
  std::string comment_body;
  int comment_first_line = 0;
  std::string raw_delim;  // for R"delim( ... )delim"
  bool line_is_preproc = false;   // current logical line starts with '#'
  bool line_has_code = false;     // saw a non-space code char this line

  auto end_comment = [&](int last_line) {
    ClassifyComment(comment_body, comment_first_line, last_line, &f->lines);
    comment_body.clear();
  };

  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    char next = i + 1 < s.size() ? s[i + 1] : '\0';
    switch (st) {
      case kCode:
        if (c == '/' && next == '/') {
          st = kLineComment;
          comment_first_line = line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          st = kBlockComment;
          comment_first_line = line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !(std::isalnum((unsigned char)s[i - 1]) ||
                                s[i - 1] == '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t p = i + 2;
          raw_delim.clear();
          while (p < s.size() && s[p] != '(') raw_delim += s[p++];
          st = kRawString;
          for (size_t k = i; k <= p && k < s.size(); ++k) {
            if (s[k] != '\n') out[k] = ' ';
          }
          i = p;
        } else if (c == '"') {
          st = kString;
          out[i] = ' ';
        } else if (c == '\'') {
          st = kChar;
          out[i] = ' ';
        } else if (c == '#' && !line_has_code) {
          line_is_preproc = true;
          out[i] = ' ';
        } else if (line_is_preproc) {
          if (c == '\\' && next == '\n') {
            out[i] = ' ';  // continuation: next line stays preprocessor
            ++i;
            ++line;
          } else if (c != '\n') {
            out[i] = ' ';
          }
        }
        if (st == kCode && !line_is_preproc && !std::isspace((unsigned char)c)) {
          line_has_code = true;
        }
        break;
      case kLineComment:
        if (c == '\n') {
          st = kCode;
          end_comment(line);
        } else {
          comment_body += c;
          out[i] = ' ';
        }
        break;
      case kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          st = kCode;
          end_comment(line);
        } else {
          if (c != '\n') {
            comment_body += c;
            out[i] = ' ';
          } else {
            comment_body += '\n';
          }
        }
        break;
      case kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < s.size()) {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          out[i] = ' ';
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n' && i + 1 < s.size()) {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          out[i] = ' ';
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (c == ')' && s.compare(i, close.size(), close) == 0) {
          for (size_t k = i; k < i + close.size() && k < s.size(); ++k) {
            if (s[k] != '\n') out[k] = ' ';
          }
          i += close.size() - 1;
          st = kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
    if (s[i] == '\n') {
      ++line;
      line_is_preproc = false;
      line_has_code = false;
    }
  }
  if (st == kLineComment || st == kBlockComment) end_comment(line);
  f->masked = std::move(out);
  for (const LineFacts& lf : f->lines) {
    if (lf.allow_mutation_file) {
      f->file_allows_mutation = true;
      break;
    }
  }
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void Tokenize(SourceFile* f) {
  const std::string& s = f->masked;
  int line = 1, col = 1;
  for (size_t i = 0; i < s.size();) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++col;
      ++i;
      continue;
    }
    Token t;
    t.line = line;
    t.col = col;
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < s.size() && IsIdentChar(s[j])) ++j;
      t.text = s.substr(i, j - i);
      col += (int)(j - i);
      i = j;
    } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
      t.text = "::";
      col += 2;
      i += 2;
    } else {
      t.text = std::string(1, c);
      ++col;
      ++i;
    }
    f->tokens.push_back(std::move(t));
  }
}

const LineFacts& FactsFor(const SourceFile& f, int line) {
  static const LineFacts kEmpty;
  if (line < 1 || line >= (int)f.lines.size()) return kEmpty;
  return f.lines[line];
}

bool IsCommentBearing(const LineFacts& lf) {
  return lf.has_rationale || lf.allow_mutation || lf.allow_mutation_file ||
         lf.trusted || lf.lock_free || lf.begin_lock_free || lf.end_lock_free;
}

// A pragma applies on the flagged line itself or anywhere in the block of
// comment-bearing lines immediately above it (clang-format may rewrap a
// long pragma comment across lines, and the reason clause often needs
// more than one line).
bool PragmaNearby(const SourceFile& f, int line, bool LineFacts::*field) {
  if (FactsFor(f, line).*field) return true;
  for (int l = line - 1; l >= 1 && l >= line - 6; --l) {
    const LineFacts& lf = FactsFor(f, l);
    if (!IsCommentBearing(lf)) break;
    if (lf.*field) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// pcube-mutation-entry
// ---------------------------------------------------------------------------

// Files allowed to call the raw mutators: the single sanctioned gateway
// (WriteApplier) and each mutator's own defining unit (internal recursion,
// bulk load, the PCube <-> tree maintenance protocol).
const char* kMutationAllowedPaths[] = {
    "src/workbench/write_path.cc",
    "src/rtree/",               // RStarTree implementation + helpers
    "src/core/pcube.",          // PCube::ApplyChanges/Rebuild internals
    "src/storage/table_store.", // TableStore::Append implementation
};

bool PathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

bool MutationPathAllowed(const std::string& path) {
  for (const char* p : kMutationAllowedPaths) {
    if (PathContains(path, p)) return true;
  }
  return false;
}

// Guarded types and their mutator method names.
const std::map<std::string, std::set<std::string>>& MutatorMethods() {
  static const std::map<std::string, std::set<std::string>> kMethods = {
      {"RStarTree", {"Insert", "Delete"}},
      {"TableStore", {"Append"}},
      {"PCube", {"ApplyChanges", "Rebuild"}},
  };
  return kMethods;
}

// Methods unique enough to flag by bare name, regardless of receiver type.
const std::set<std::string>& UniqueMutatorNames() {
  static const std::set<std::string> kNames = {"ApplyChanges", "Rebuild"};
  return kNames;
}

// Collects identifiers declared with a guarded type in `f`:
//   RStarTree t;   RStarTree* t;   RStarTree& t (param);
//   std::unique_ptr<RStarTree> t;   Result<TableStore> t;
// Maps receiver name -> type name.
void CollectTypedReceivers(const SourceFile& f,
                           std::map<std::string, std::string>* receivers) {
  const auto& methods = MutatorMethods();
  const auto& toks = f.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    auto it = methods.find(toks[i].text);
    if (it == methods.end()) continue;
    size_t j = i + 1;
    // Skip declarator decoration and template closers.
    while (j < toks.size() &&
           (toks[j].text == "*" || toks[j].text == "&" ||
            toks[j].text == ">" || toks[j].text == "const")) {
      ++j;
    }
    if (j + 1 >= toks.size()) continue;
    const std::string& name = toks[j].text;
    if (name.empty() || !(std::isalpha((unsigned char)name[0]) || name[0] == '_'))
      continue;
    const std::string& after = toks[j + 1].text;
    if (after == ";" || after == "=" || after == "{" || after == "," ||
        after == ")") {
      (*receivers)[name] = it->first;
    }
  }
}

void CheckMutationEntry(const SourceFile& f,
                        const std::map<std::string, std::string>& receivers,
                        std::vector<Diagnostic>* diags) {
  if (MutationPathAllowed(f.path) || f.file_allows_mutation) return;
  const auto& toks = f.tokens;
  const auto& methods = MutatorMethods();
  auto allowed_here = [&](int line) {
    return PragmaNearby(f, line, &LineFacts::allow_mutation);
  };
  auto report = [&](const Token& t, const std::string& type,
                    const std::string& method) {
    if (allowed_here(t.line)) return;
    Diagnostic d;
    d.file = f.path;
    d.line = t.line;
    d.col = t.col;
    d.check = "pcube-mutation-entry";
    d.message = "direct call to " + type + "::" + method +
                " bypasses QueryService::Apply (the only legal mutation "
                "entry point, DESIGN.md §15); route the write through a "
                "WriteBatch or tag it `// pcube-lint: allow-mutation(<why>)`";
    diags->push_back(std::move(d));
  };
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const std::string& text = toks[i].text;
    const std::string& next = toks[i + 1].text;
    // Bare unique names: `x.ApplyChanges(`, `cube->Rebuild(`, `Rebuild(`.
    if (UniqueMutatorNames().count(text) && next == "(") {
      // Skip declarations/definitions: preceded by a type-ish token rather
      // than a member-access / start-of-expression context. Qualified
      // calls (`PCube::Rebuild(`) are handled by the branch below.
      if (i > 0) {
        const std::string& prev = toks[i - 1].text;
        if (prev == "::") continue;
        if (IsIdentChar(prev[0]) && prev != "return")
          continue;  // `Status Rebuild(` — declaration, not a call
      }
      report(toks[i], "PCube", text);
      continue;
    }
    // Qualified calls: `RStarTree::Insert(...)` on any expression.
    if (methods.count(text) && next == "::" && i + 3 < toks.size()) {
      const std::string& method = toks[i + 2].text;
      if (methods.at(text).count(method) && toks[i + 3].text == "(") {
        report(toks[i], text, method);
        continue;
      }
    }
    // Typed receivers: `recv.Insert(`, `recv->Insert(`.
    if ((text == "." || (text == "-" && next == ">")) && i > 0) {
      size_t m = text == "." ? i + 1 : i + 2;  // method token index
      if (m + 1 >= toks.size() || toks[m + 1].text != "(") continue;
      if (UniqueMutatorNames().count(toks[m].text)) continue;  // done above
      const std::string& recv = toks[i - 1].text;
      auto r = receivers.find(recv);
      if (r == receivers.end()) continue;
      const auto& allowed = methods.at(r->second);
      if (allowed.count(toks[m].text)) {
        report(toks[m], r->second, toks[m].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// pcube-wire-no-abort
// ---------------------------------------------------------------------------

bool IsAbortFamily(const std::string& t) {
  if (t == "abort" || t == "assert") return true;
  if (t.rfind("PCUBE_CHECK", 0) == 0 || t.rfind("PCUBE_DCHECK", 0) == 0)
    return true;
  if (t == "CHECK" || t.rfind("CHECK_", 0) == 0) return true;
  if (t == "DCHECK" || t.rfind("DCHECK_", 0) == 0) return true;
  return false;
}

void CheckWireNoAbort(const SourceFile& f, const Options& opts,
                      std::vector<Diagnostic>* diags) {
  bool in_scope = false;
  for (const std::string& p : opts.wire_paths) {
    if (PathContains(f.path, p.c_str())) {
      in_scope = true;
      break;
    }
  }
  if (!in_scope) return;
  const auto& toks = f.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!IsAbortFamily(toks[i].text) || toks[i + 1].text != "(") continue;
    if (PragmaNearby(f, toks[i].line, &LineFacts::trusted)) continue;
    Diagnostic d;
    d.file = f.path;
    d.line = toks[i].line;
    d.col = toks[i].col;
    d.check = "pcube-wire-no-abort";
    d.message = "abort-family call `" + toks[i].text +
                "` in wire-facing code: wire-derived bytes must never reach "
                "a process abort (DESIGN.md §14); return a Status, or tag a "
                "locally-produced value `// pcube-lint: trusted(<why>)`";
    diags->push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// pcube-guarded-by-completeness
// ---------------------------------------------------------------------------

// Types that are themselves synchronization primitives (or handles to
// internally synchronized state) and therefore need no GUARDED_BY.
bool IsSyncPrimitiveSegment(const std::vector<const Token*>& seg) {
  for (const Token* t : seg) {
    if (t->text == "Mutex" || t->text == "SharedMutex" ||
        t->text == "CondVar" || t->text == "atomic" ||
        t->text.rfind("atomic_", 0) == 0) {
      return true;
    }
  }
  return false;
}

struct MemberSegment {
  std::vector<const Token*> toks;
  int first_line = 0;
  int last_line = 0;
};

struct ClassFrame {
  bool is_class = false;      // class/struct body (vs function/namespace)
  std::string name;
  std::string mutex_member;   // first Mutex/SharedMutex member, if any
  std::vector<MemberSegment> candidates;  // unguarded members, pending
};

void CheckGuardedByCompleteness(const SourceFile& f,
                                std::vector<Diagnostic>* diags) {
  const auto& toks = f.tokens;
  std::vector<ClassFrame> stack;
  MemberSegment seg;
  // Region pragmas live on comment-only lines (no tokens), so the active
  // region is precomputed per line, not discovered while walking tokens.
  std::vector<bool> in_region(f.lines.size(), false);
  {
    bool active = false;
    for (size_t l = 1; l < f.lines.size(); ++l) {
      if (f.lines[l].begin_lock_free) active = true;
      in_region[l] = active;
      if (f.lines[l].end_lock_free) active = false;
    }
  }

  auto seg_reset = [&]() { seg = MemberSegment{}; };
  auto seg_push = [&](const Token& t) {
    if (seg.toks.empty()) seg.first_line = t.line;
    seg.last_line = t.line;
    seg.toks.push_back(&t);
  };

  auto finish_segment = [&](bool ended_by_semicolon) {
    if (stack.empty() || !stack.back().is_class || !ended_by_semicolon) {
      seg_reset();
      return;
    }
    MemberSegment s = seg;
    seg_reset();
    if (s.toks.empty()) return;
    // Skip non-data-member segments.
    static const std::set<std::string> kSkipKeywords = {
        "using", "typedef", "friend", "static", "constexpr", "enum",
        "operator", "template", "public", "private", "protected"};
    bool has_paren = false, has_const = false, guarded = false;
    for (const Token* t : s.toks) {
      if (kSkipKeywords.count(t->text)) return;
      if (t->text == "(") has_paren = true;
      if (t->text == "const") has_const = true;
      if (t->text == "GUARDED_BY" || t->text == "PT_GUARDED_BY") guarded = true;
    }
    if (s.toks.size() < 2) return;  // `};` fragments etc.
    ClassFrame& frame = stack.back();
    // Mutex ownership detection (and its member name, for the message).
    // Only a by-value Mutex/SharedMutex member makes the class lock-owning:
    // `Mutex() = default;` is a constructor (has parens) and `Mutex* const
    // mu_;` in the RAII guards borrows a lock it does not own.
    size_t type_idx = (s.toks[0]->text == "mutable") ? 1 : 0;
    bool by_value_decl =
        !has_paren && s.toks.size() > type_idx + 1 &&
        s.toks[type_idx + 1]->text != "*" && s.toks[type_idx + 1]->text != "&";
    if (by_value_decl && (s.toks[type_idx]->text == "Mutex" ||
                          s.toks[type_idx]->text == "SharedMutex")) {
      if (frame.mutex_member.empty()) {
        for (const Token* t : s.toks) {
          if (t->text != "Mutex" && t->text != "SharedMutex" &&
              t->text != "mutable" && IsIdentChar(t->text[0])) {
            frame.mutex_member = t->text;
            break;
          }
        }
        if (frame.mutex_member.empty()) frame.mutex_member = "<mutex>";
      }
      return;
    }
    if (has_paren || has_const || guarded) return;
    if (IsSyncPrimitiveSegment(s.toks)) return;
    // Pragma escapes: on the declaration's lines, in the comment block
    // above it, or inside an active begin/end-lock-free region.
    bool exempt = s.first_line < (int)in_region.size() &&
                  in_region[s.first_line];
    for (int l = s.first_line; l <= s.last_line && !exempt; ++l) {
      exempt = FactsFor(f, l).lock_free;
    }
    if (!exempt) exempt = PragmaNearby(f, s.first_line, &LineFacts::lock_free);
    if (exempt) return;
    frame.candidates.push_back(std::move(s));
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.text == "class" || t.text == "struct") {
      // `enum class`, `template <class T>`, forward declarations are not
      // class bodies. Scan ahead for `{` before `;`/`>`/`,`.
      if (i > 0 && toks[i - 1].text == "enum") continue;
      // The class name is the LAST identifier in the class-head before the
      // base clause or body: attribute macros (`class CAPABILITY("mutex")
      // Mutex`, `class SCOPED_CAPABILITY MutexLock`) precede it.
      std::string name;
      bool body = false;
      bool in_head = true;
      for (size_t j = i + 1; j < toks.size() && j < i + 64; ++j) {
        const std::string& x = toks[j].text;
        if (x == ":") in_head = false;  // base clause; name is fixed now
        if (in_head && IsIdentChar(x[0]) && x != "alignas" && x != "final") {
          name = x;
        }
        if (x == "{") {
          body = true;
          break;
        }
        if (x == ";" || x == ">" || x == ",") break;
      }
      if (!body) continue;
      // Defer pushing until we meet that `{`; mark via pending name.
      // Simplest: push now and swallow tokens until `{` below.
      ClassFrame frame;
      frame.is_class = true;
      frame.name = name.empty() ? "<anonymous>" : name;
      // Advance i to the opening brace.
      while (i + 1 < toks.size() && toks[i + 1].text != "{") ++i;
      ++i;  // now at `{`
      stack.push_back(std::move(frame));
      seg_reset();
      continue;
    }
    if (t.text == "{") {
      if (!stack.empty() && stack.back().is_class && !seg.toks.empty()) {
        bool has_paren = false;
        for (const Token* p : seg.toks) {
          if (p->text == "(") { has_paren = true; break; }
        }
        // Brace initializer (`x{0};`): skip the braces, keep the segment.
        // Function body / nested aggregate: consume and drop the segment.
        int depth = 1;
        size_t j = i + 1;
        for (; j < toks.size() && depth > 0; ++j) {
          if (toks[j].text == "{") ++depth;
          if (toks[j].text == "}") --depth;
        }
        i = j - 1;
        if (has_paren) {
          seg_reset();  // function definition
          // A definition needs no trailing `;`.
        }
        continue;
      }
      // Non-class scope (function at namespace level, namespace, etc.).
      ClassFrame frame;  // is_class = false
      stack.push_back(frame);
      continue;
    }
    if (t.text == "}") {
      if (!stack.empty()) {
        ClassFrame frame = std::move(stack.back());
        stack.pop_back();
        if (frame.is_class && !frame.mutex_member.empty()) {
          for (const MemberSegment& m : frame.candidates) {
            // Member name: last identifier before `;`/`=`/`{`/`[`.
            std::string member;
            for (const Token* p : m.toks) {
              if (p->text == "=" || p->text == "{" || p->text == "[") break;
              if (IsIdentChar(p->text[0])) member = p->text;
            }
            Diagnostic d;
            d.file = f.path;
            d.line = m.first_line;
            d.col = m.toks.front()->col;
            d.check = "pcube-guarded-by-completeness";
            d.message = "member `" + member + "` of lock-owning class `" +
                        frame.name + "` (owns `" + frame.mutex_member +
                        "`) has no GUARDED_BY/PT_GUARDED_BY and no "
                        "`// pcube-lint: lock-free(<why>)` annotation";
            diags->push_back(std::move(d));
          }
        }
      }
      seg_reset();
      continue;
    }
    if (t.text == ";") {
      finish_segment(true);
      continue;
    }
    if (t.text == ":" && !seg.toks.empty() &&
        (seg.toks.back()->text == "public" ||
         seg.toks.back()->text == "private" ||
         seg.toks.back()->text == "protected")) {
      seg_reset();  // access label
      continue;
    }
    if (!stack.empty() && stack.back().is_class) seg_push(t);
  }
}

// ---------------------------------------------------------------------------
// pcube-ignore-error-rationale
// ---------------------------------------------------------------------------

void CheckIgnoreErrorRationale(const SourceFile& f,
                               std::vector<Diagnostic>* diags) {
  const auto& toks = f.tokens;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "IgnoreError" || toks[i + 1].text != "(") continue;
    const std::string& prev = toks[i - 1].text;
    const bool member_call =
        prev == "." || (prev == ">" && i >= 2 && toks[i - 2].text == "-");
    if (!member_call) continue;  // the declaration in status.h
    // A rationale counts anywhere on the discarding statement (call chains
    // wrap across lines) or on the line above its first line.
    size_t stmt_begin = i;
    while (stmt_begin > 0) {
      const std::string& x = toks[stmt_begin - 1].text;
      if (x == ";" || x == "{" || x == "}") break;
      --stmt_begin;
    }
    bool has_rationale = false;
    for (int l = toks[stmt_begin].line - 1; l <= toks[i].line; ++l) {
      if (FactsFor(f, l).has_rationale) {
        has_rationale = true;
        break;
      }
    }
    if (has_rationale) continue;
    Diagnostic d;
    d.file = f.path;
    d.line = toks[i].line;
    d.col = toks[i].col;
    d.check = "pcube-ignore-error-rationale";
    d.message = "`.IgnoreError()` without a rationale comment on this or "
                "the preceding line; say why discarding the Status is safe";
    diags->push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

// foo.cc -> foo.h in the same directory (receiver typing only).
std::string PairedHeader(const std::string& path) {
  size_t dot = path.rfind('.');
  if (dot == std::string::npos) return "";
  std::string ext = path.substr(dot);
  if (ext != ".cc" && ext != ".cpp") return "";
  return path.substr(0, dot) + ".h";
}

int Run(const Options& opts, const std::vector<std::string>& files) {
  std::vector<Diagnostic> diags;
  int io_errors = 0;
  size_t scanned = 0;
  for (const std::string& path : files) {
    SourceFile f;
    f.path = path;
    if (!ReadFile(path, &f.raw)) {
      std::cerr << "pcube_lint_scan: cannot read " << path << "\n";
      ++io_errors;
      continue;
    }
    MaskAndHarvest(&f);
    Tokenize(&f);
    ++scanned;

    std::map<std::string, std::string> receivers;
    if (CheckEnabled(opts, "pcube-mutation-entry")) {
      CollectTypedReceivers(f, &receivers);
      const std::string header = PairedHeader(path);
      if (!header.empty()) {
        SourceFile h;
        h.path = header;
        if (ReadFile(header, &h.raw)) {
          MaskAndHarvest(&h);
          Tokenize(&h);
          CollectTypedReceivers(h, &receivers);
        }
      }
      CheckMutationEntry(f, receivers, &diags);
    }
    if (CheckEnabled(opts, "pcube-wire-no-abort")) {
      CheckWireNoAbort(f, opts, &diags);
    }
    if (CheckEnabled(opts, "pcube-guarded-by-completeness")) {
      CheckGuardedByCompleteness(f, &diags);
    }
    if (CheckEnabled(opts, "pcube-ignore-error-rationale")) {
      CheckIgnoreErrorRationale(f, &diags);
    }
  }
  // One report per (file, line, col, check): the qualified-name and
  // typed-receiver matchers can both recognize the same call, but they
  // anchor on the same token, so the column disambiguates genuine
  // distinct violations sharing a source line.
  std::set<std::string> seen;
  std::vector<Diagnostic> unique;
  for (Diagnostic& d : diags) {
    std::string key = d.file + ":" + std::to_string(d.line) + ":" +
                      std::to_string(d.col) + ":" + d.check;
    if (seen.insert(std::move(key)).second) unique.push_back(std::move(d));
  }
  diags = std::move(unique);
  for (const Diagnostic& d : diags) {
    std::cout << d.file << ":" << d.line << ":" << d.col << ": warning: "
              << d.message << " [" << d.check << "]\n";
  }
  if (!opts.quiet) {
    std::cerr << "pcube_lint_scan: " << diags.size() << " finding(s) over "
              << scanned << " file(s)\n";
  }
  if (io_errors) return 2;
  return diags.empty() ? 0 : 1;
}

void Usage() {
  std::cerr <<
      "usage: pcube_lint_scan [options] <file.cc|file.h>...\n"
      "  --checks=a,b      run only the named checks (default: all)\n"
      "  --wire-paths=p,q  path substrings treated as wire-facing scope\n"
      "                    (default: src/server/)\n"
      "  --list-checks     print check names and exit\n"
      "  --quiet           suppress the summary line\n";
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  std::vector<std::string> files;
  const std::vector<std::string> known_checks = {
      "pcube-mutation-entry", "pcube-wire-no-abort",
      "pcube-guarded-by-completeness", "pcube-ignore-error-rationale"};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-checks") {
      for (const auto& c : known_checks) std::cout << c << "\n";
      return 0;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg.rfind("--checks=", 0) == 0) {
      for (const std::string& c : SplitCommas(arg.substr(9))) {
        if (std::find(known_checks.begin(), known_checks.end(), c) ==
            known_checks.end()) {
          std::cerr << "pcube_lint_scan: unknown check '" << c << "'\n";
          return 2;
        }
        opts.checks.insert(c);
      }
    } else if (arg.rfind("--wire-paths=", 0) == 0) {
      opts.wire_paths = SplitCommas(arg.substr(13));
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "pcube_lint_scan: unknown option '" << arg << "'\n";
      Usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    Usage();
    return 2;
  }
  return Run(opts, files);
}
