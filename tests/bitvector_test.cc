// Unit + property tests for BitVector.
#include <gtest/gtest.h>

#include <set>

#include "bitmap/bitvector.h"
#include "common/random.h"

namespace pcube {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_FALSE(v.AnySet());
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetClearAssign) {
  BitVector v(70);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(69);
  EXPECT_EQ(v.Count(), 4u);
  EXPECT_TRUE(v.Get(63));
  v.Clear(63);
  EXPECT_FALSE(v.Get(63));
  v.Assign(5, true);
  v.Assign(0, false);
  EXPECT_TRUE(v.Get(5));
  EXPECT_FALSE(v.Get(0));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVectorTest, FindNextSet) {
  BitVector v(200);
  v.Set(3);
  v.Set(64);
  v.Set(199);
  EXPECT_EQ(v.FindNextSet(0), 3u);
  EXPECT_EQ(v.FindNextSet(3), 3u);
  EXPECT_EQ(v.FindNextSet(4), 64u);
  EXPECT_EQ(v.FindNextSet(65), 199u);
  EXPECT_EQ(v.FindNextSet(200), 200u);
  BitVector empty(50);
  EXPECT_EQ(empty.FindNextSet(0), 50u);
}

TEST(BitVectorTest, SetPositionsMatchesIteration) {
  BitVector v(130);
  std::vector<uint32_t> expect = {0, 1, 31, 32, 63, 64, 127, 129};
  for (uint32_t p : expect) v.Set(p);
  EXPECT_EQ(v.SetPositions(), expect);
}

TEST(BitVectorTest, OrAndEquality) {
  BitVector a(80), b(80);
  a.Set(1);
  a.Set(70);
  b.Set(1);
  b.Set(2);
  BitVector u = a;
  u.InplaceOr(b);
  EXPECT_EQ(u.SetPositions(), (std::vector<uint32_t>{1, 2, 70}));
  BitVector i = a;
  i.InplaceAnd(b);
  EXPECT_EQ(i.SetPositions(), (std::vector<uint32_t>{1}));
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(BitVectorTest, ToStringBitOrder) {
  BitVector v(5);
  v.Set(0);
  v.Set(3);
  EXPECT_EQ(v.ToString(), "10010");
}

// Property sweep: random operations tracked against a std::set oracle.
class BitVectorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BitVectorPropertyTest, MatchesSetOracle) {
  Random rng(GetParam());
  size_t n = 1 + rng.Uniform(300);
  BitVector v(n);
  std::set<size_t> oracle;
  for (int op = 0; op < 2000; ++op) {
    size_t i = rng.Uniform(n);
    if (rng.Uniform(2) == 0) {
      v.Set(i);
      oracle.insert(i);
    } else {
      v.Clear(i);
      oracle.erase(i);
    }
  }
  EXPECT_EQ(v.Count(), oracle.size());
  auto positions = v.SetPositions();
  std::vector<uint32_t> expect(oracle.begin(), oracle.end());
  EXPECT_EQ(positions, expect);
  // FindNextSet agrees with the oracle from every starting point.
  for (size_t from = 0; from <= n; ++from) {
    auto it = oracle.lower_bound(from);
    size_t expected = (it == oracle.end()) ? n : *it;
    EXPECT_EQ(v.FindNextSet(from), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace pcube
