# Empty dependencies file for bench_fig15_sigload.
# This may be replaced when dependencies are built.
