// Simulated-disk accounting. Every physical page fetch in the storage layer
// is charged to one of these counters, classified by what the page holds.
// The paper's "number of disk accesses" figures (Fig. 9, Fig. 15) are read
// straight from an IoStats snapshot, which makes them deterministic and
// hardware-independent.
#pragma once

#include <cstdint>
#include <string>

namespace pcube {

/// What a fetched page contains, for per-category breakdowns.
enum class IoCategory : int {
  kRtreeBlock = 0,   ///< R-tree node page (paper: DBlock / SBlock)
  kSignature,        ///< partial-signature page (paper: SSig)
  kBooleanVerify,    ///< random tuple access for boolean verification (DBool)
  kBtree,            ///< B+-tree node page (boolean index / signature index)
  kHeapFile,         ///< base-table block (table scans)
  kNumCategories,
};

/// Mutable counter block shared by the storage structures of one experiment.
struct IoStats {
  uint64_t reads[static_cast<int>(IoCategory::kNumCategories)] = {};
  uint64_t writes[static_cast<int>(IoCategory::kNumCategories)] = {};

  void CountRead(IoCategory c, uint64_t n = 1) { reads[static_cast<int>(c)] += n; }
  void CountWrite(IoCategory c, uint64_t n = 1) { writes[static_cast<int>(c)] += n; }

  uint64_t ReadCount(IoCategory c) const { return reads[static_cast<int>(c)]; }
  uint64_t WriteCount(IoCategory c) const { return writes[static_cast<int>(c)]; }

  uint64_t TotalReads() const {
    uint64_t t = 0;
    for (uint64_t r : reads) t += r;
    return t;
  }
  uint64_t TotalWrites() const {
    uint64_t t = 0;
    for (uint64_t w : writes) t += w;
    return t;
  }

  void Reset() { *this = IoStats(); }

  /// Difference of two snapshots (this - other), element-wise.
  IoStats Delta(const IoStats& other) const {
    IoStats d;
    for (int i = 0; i < static_cast<int>(IoCategory::kNumCategories); ++i) {
      d.reads[i] = reads[i] - other.reads[i];
      d.writes[i] = writes[i] - other.writes[i];
    }
    return d;
  }

  std::string ToString() const;
};

}  // namespace pcube
