#include "common/trace.h"

#include <atomic>
#include <cstdio>

namespace pcube {

namespace {
thread_local Trace* tls_trace = nullptr;
}  // namespace

uint64_t Trace::NextId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void Trace::Record(std::string_view stage, double seconds) {
  for (Stage& s : stages_) {
    if (s.name == stage) {
      ++s.count;
      s.seconds += seconds;
      return;
    }
  }
  stages_.push_back(Stage{std::string(stage), 1, seconds});
}

double Trace::StageSeconds(std::string_view stage) const {
  for (const Stage& s : stages_) {
    if (s.name == stage) return s.seconds;
  }
  return 0;
}

std::string Trace::SpansJson() const {
  std::string out = "{";
  char buf[128];
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Stage& s = stages_[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%llu,\"seconds\":%.9g}",
                  i == 0 ? "" : ",", s.name.c_str(),
                  static_cast<unsigned long long>(s.count), s.seconds);
    out += buf;
  }
  out += "}";
  return out;
}

Trace::ScopedBind::ScopedBind(Trace* trace) : saved_(tls_trace) {
  tls_trace = trace;
}

Trace::ScopedBind::~ScopedBind() { tls_trace = saved_; }

Trace* Trace::Current() { return tls_trace; }

Result<std::unique_ptr<QueryLog>> QueryLog::OpenFile(const std::string& path) {
  auto stream = std::make_unique<std::ofstream>(path, std::ios::trunc);
  if (!stream->is_open()) {
    return Status::IoError("cannot open query log '" + path + "'");
  }
  return std::unique_ptr<QueryLog>(new QueryLog(std::move(stream)));
}

void QueryLog::Append(const std::string& json_line) {
  MutexLock lock(&mu_);
  (*out_) << json_line << "\n";
  out_->flush();
  ++records_;
}

uint64_t QueryLog::records() const {
  MutexLock lock(&mu_);
  return records_;
}

}  // namespace pcube
