// Batched dominance testing for the skyline engine (DESIGN.md §12). The
// scalar engine tested one candidate against one skyline member at a time,
// re-deriving every member's transformed coordinates from its rect on each
// test. DominanceWindow instead keeps the current skyline members'
// coordinates in a struct-of-arrays layout — one contiguous 32-byte-aligned
// column per preference dimension — so one dominance test streams each
// column once and the AVX2 kernel compares the candidate against four
// members per step.
//
// Count semantics match the engine's skyband rule exactly: member m
// dominates candidate c iff m[d] <= c[d] on every dimension and m[d] < c[d]
// on at least one. CountDominators stops counting once `limit` dominators
// are found; the return value saturates at `limit` so batching (which may
// find a few extra dominators inside the final block) is observationally
// identical to the scalar early-exit loop. Coordinates are doubles and the
// kernels use ordered comparisons only, so scalar and AVX2 results are
// bit-identical (tests/simd_kernels_test.cc).
#pragma once

#include <cstddef>

#include "common/simd/aligned.h"

namespace pcube {

/// Column-major window of skyline-member coordinates.
class DominanceWindow {
 public:
  DominanceWindow() = default;
  explicit DominanceWindow(size_t dims) { Reset(dims); }

  /// Empties the window and sets the dimensionality.
  void Reset(size_t dims);

  /// Appends one member; `coords` holds `dims()` transformed coordinates.
  void Append(const double* coords);

  size_t size() const { return size_; }
  size_t dims() const { return dims_; }

  /// Number of members dominating `cand` (dims() coordinates), counting in
  /// insertion order and saturating at `limit` (>= 1).
  size_t CountDominators(const double* cand, size_t limit) const;

  /// Per-level variants for the differential tests and the kernel bench;
  /// the Avx2 one requires simd::CpuSupportsAvx2().
  size_t CountDominatorsScalar(const double* cand, size_t limit) const;
#if defined(__x86_64__) && !defined(PCUBE_SIMD_DISABLED)
  size_t CountDominatorsAvx2(const double* cand, size_t limit) const;
#endif

 private:
  const double* Col(size_t d) const { return cols_.data() + d * capacity_; }
  void Grow(size_t new_capacity);

  size_t dims_ = 0;
  size_t size_ = 0;
  size_t capacity_ = 0;  // always a multiple of 4; columns stay 32B-aligned
  simd::AlignedVector<double> cols_;  // dims_ columns of capacity_ doubles
};

}  // namespace pcube
