#include "data/generators.h"

#include <algorithm>

#include "common/random.h"

namespace pcube {

namespace {

float Clamp01(double v) {
  return static_cast<float>(std::clamp(v, 0.0, 1.0));
}

void FillUniform(Random* rng, int dims, float* out) {
  for (int d = 0; d < dims; ++d) out[d] = static_cast<float>(rng->NextDouble());
}

void FillCorrelated(Random* rng, int dims, float* out) {
  // A point on the diagonal plus small per-dimension jitter.
  double v = rng->NextDouble();
  for (int d = 0; d < dims; ++d) {
    out[d] = Clamp01(v + 0.05 * rng->NextGaussian());
  }
}

void FillAntiCorrelated(Random* rng, int dims, float* out) {
  // Points near the hyperplane sum(x) = dims/2: start on the plane, then
  // transfer mass between random dimension pairs so coordinates
  // anti-correlate while the sum stays (nearly) constant.
  double v = std::clamp(0.5 + 0.05 * rng->NextGaussian(), 0.0, 1.0);
  std::vector<double> x(dims, v);
  int transfers = 4 * dims;
  for (int i = 0; i < transfers; ++i) {
    int a = static_cast<int>(rng->Uniform(dims));
    int b = static_cast<int>(rng->Uniform(dims));
    if (a == b) continue;
    double room = std::min(1.0 - x[a], x[b]);
    double delta = rng->NextDouble() * room;
    x[a] += delta;
    x[b] -= delta;
  }
  for (int d = 0; d < dims; ++d) out[d] = Clamp01(x[d]);
}

}  // namespace

Dataset GenerateSynthetic(const SyntheticConfig& config) {
  Schema schema;
  schema.num_bool = config.num_bool;
  schema.num_pref = config.num_pref;
  schema.bool_cardinality.assign(config.num_bool, config.bool_cardinality);
  Dataset data(schema, config.num_tuples);

  Random rng(config.seed);
  std::vector<float> point(config.num_pref);
  for (TupleId t = 0; t < config.num_tuples; ++t) {
    for (int d = 0; d < config.num_bool; ++d) {
      data.SetBoolValue(t, d,
                        static_cast<uint32_t>(rng.Uniform(config.bool_cardinality)));
    }
    switch (config.dist) {
      case PrefDistribution::kUniform:
        FillUniform(&rng, config.num_pref, point.data());
        break;
      case PrefDistribution::kCorrelated:
        FillCorrelated(&rng, config.num_pref, point.data());
        break;
      case PrefDistribution::kAntiCorrelated:
        FillAntiCorrelated(&rng, config.num_pref, point.data());
        break;
    }
    for (int d = 0; d < config.num_pref; ++d) {
      data.SetPrefValue(t, d, point[d]);
    }
  }
  return data;
}

}  // namespace pcube
