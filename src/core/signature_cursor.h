// Lazy signature retrieval during query processing (paper §IV.B.2).
//
// A cursor materialises one cell's signature incrementally: it starts from
// the partial signature referenced by the R-tree root (SID 0) and, whenever
// the query requests a node that is not yet present, loads further partials
// following the paper's probing rule — "use the first level node in the path
// from the root to n as reference to load the next partial signature; if
// that partial has already been loaded, check the second-level node, and so
// on". Each partial load costs exactly one signature-page read (SSig).
//
// Thread-safety: a cursor is mutable per-query state (the set of loaded
// partials grows as the query probes). One cursor serves one query on one
// thread; concurrent queries get independent cursors via PCube::MakeProbe.
#pragma once

#include <set>

#include "cache/fragment_cache.h"
#include "core/signature_codec.h"
#include "core/signature_store.h"

namespace pcube {

/// Incremental reader of one cell's stored signature.
class SignatureCursor {
 public:
  /// `cache` (optional) is the shared L2 fragment cache: partial loads are
  /// served from it when possible and publish their decodes into it,
  /// stamped with the cell's epoch read before the store access. L2 hits
  /// do not count as partials_loaded (no page was read, nothing decoded).
  SignatureCursor(const SignatureStore* store, CellId cell, uint32_t fanout,
                  int levels, FragmentCache* cache = nullptr)
      : store_(store),
        cell_(cell),
        cache_(cache),
        fragment_(fanout, levels),
        levels_(levels) {}

  /// True iff the node/tuple addressed by `path` (length in [1, levels]) is
  /// marked present for this cell. Loads partial signatures on demand.
  Result<bool> Test(const Path& path);

  /// Number of partial-signature pages loaded so far.
  uint64_t partials_loaded() const { return partials_loaded_; }

  const SignatureFragment& fragment() const { return fragment_; }

  /// Multi-cursor fusion support (SignatureProbe): retain each decoded
  /// node's compressed wire bytes so node pairs can be intersected in
  /// compressed form. Must be set before the first Test.
  void set_keep_encoded(bool keep) { fragment_.set_keep_encoded(keep); }

  /// Ensures the node at `path` is materialised (loading partials on
  /// demand); false when the cell's signature provably lacks it.
  Result<bool> EnsureNodeLoaded(const Path& path) { return EnsureNode(path); }

  /// Decoded bit array of a materialised node, or null.
  const BitVector* NodeBits(const Path& path) const {
    return fragment_.Node(path);
  }

  /// Compressed wire bytes of a materialised node, or null when not
  /// retained (keep_encoded off, or the node was replayed from the L2
  /// fragment cache, which stores decoded arrays only).
  const std::vector<uint8_t>* EncodedNode(const Path& path) const {
    return fragment_.EncodedNode(path);
  }

  uint32_t fanout() const { return fragment_.fanout(); }

 private:
  /// Ensures the array of the node at `node_path` is present if it exists in
  /// the stored signature; returns false when the cell's signature provably
  /// lacks it.
  Result<bool> EnsureNode(const Path& node_path);
  Status LoadPartialAt(const Path& root_path);

  const SignatureStore* store_;
  CellId cell_;
  FragmentCache* cache_;
  SignatureFragment fragment_;
  int levels_;
  std::set<uint64_t> attempted_;  // partial SIDs already probed (hit or miss)
  uint64_t partials_loaded_ = 0;
  bool root_loaded_ = false;
};

}  // namespace pcube
