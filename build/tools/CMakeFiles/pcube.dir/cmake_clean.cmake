file(REMOVE_RECURSE
  "CMakeFiles/pcube.dir/pcube_cli.cpp.o"
  "CMakeFiles/pcube.dir/pcube_cli.cpp.o.d"
  "pcube"
  "pcube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
