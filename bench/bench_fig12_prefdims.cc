// Figure 12: skyline execution time w.r.t. the number of preference
// dimensions Dp in {2, 3, 4}.
//
// Paper's claims to reproduce: skyline computation gets harder as Dp grows,
// so Domination's time climbs steeply; Boolean is largely insensitive
// (selection cost dominates); Signature stays consistently best.
#include "bench_common.h"

namespace pcube::bench {
namespace {

Workbench* WorkbenchForDp(int dp) {
  uint64_t n = TupleSweep()[0] * 2;
  return CachedWorkbench2("fig12/" + std::to_string(dp), [n, dp] {
    SyntheticConfig config = PaperConfig(n);
    config.num_pref = dp;
    return GenerateSynthetic(config);
  });
}

void BM_SkylineByDp(benchmark::State& state, const char* method) {
  int dp = static_cast<int>(state.range(0));
  Workbench* wb = WorkbenchForDp(dp);
  PredicateSet preds = OnePredicate(100);
  MeasuredRun last;
  for (auto _ : state) {
    if (std::string(method) == "signature") {
      last = RunSignatureSkyline(wb, preds);
    } else if (std::string(method) == "domination") {
      last = RunDominationSkyline(wb, preds);
    } else {
      last = RunBooleanSkyline(wb, preds);
    }
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

void RegisterAll() {
  for (int dp : {2, 3, 4}) {
    for (const char* method : {"boolean", "domination", "signature"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig12/SkylineByDp/") + method).c_str(),
          BM_SkylineByDp, method)
          ->Arg(dp)
          ->Iterations(3)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
