# Empty dependencies file for bench_fig13_topk.
# This may be replaced when dependencies are built.
