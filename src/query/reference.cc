#include "query/reference.h"

#include <algorithm>
#include <cmath>

namespace pcube {

bool DominatesOn(const Dataset& data, TupleId a, TupleId b,
                 const std::vector<int>& dims) {
  bool one_lt = false;
  for (int d : dims) {
    float av = data.PrefValue(a, d);
    float bv = data.PrefValue(b, d);
    if (av > bv) return false;
    if (av < bv) one_lt = true;
  }
  return one_lt;
}

std::vector<TupleId> NaiveSkyline(const Dataset& data,
                                  const PredicateSet& preds,
                                  std::vector<int> dims) {
  if (dims.empty()) {
    for (int d = 0; d < data.num_pref(); ++d) dims.push_back(d);
  }
  std::vector<TupleId> candidates;
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    if (preds.Matches(data, t)) candidates.push_back(t);
  }
  return SortFilterSkyline(data, std::move(candidates), dims);
}

std::vector<TupleId> SortFilterSkyline(const Dataset& data,
                                       std::vector<TupleId> tids,
                                       const std::vector<int>& dims) {
  // Sort by coordinate sum: a tuple can only be dominated by tuples that
  // sort before it (Chomicki et al.'s sort-first skyline [7]).
  auto coord_sum = [&](TupleId t) {
    double s = 0;
    for (int d : dims) s += data.PrefValue(t, d);
    return s;
  };
  std::sort(tids.begin(), tids.end(), [&](TupleId a, TupleId b) {
    double sa = coord_sum(a), sb = coord_sum(b);
    if (sa != sb) return sa < sb;
    return a < b;
  });
  std::vector<TupleId> skyline;
  for (TupleId t : tids) {
    bool dominated = false;
    for (TupleId s : skyline) {
      if (DominatesOn(data, s, t, dims)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<TupleId> NaiveSkyband(const Dataset& data,
                                  const PredicateSet& preds,
                                  std::vector<int> dims,
                                  std::vector<float> origin,
                                  size_t skyband_k) {
  if (dims.empty()) {
    for (int d = 0; d < data.num_pref(); ++d) dims.push_back(d);
  }
  auto coord = [&](TupleId t, int d) -> double {
    double v = data.PrefValue(t, d);
    return origin.empty() ? v : std::abs(v - origin[d]);
  };
  auto dominates = [&](TupleId a, TupleId b) {
    bool one_lt = false;
    for (int d : dims) {
      double av = coord(a, d), bv = coord(b, d);
      if (av > bv) return false;
      if (av < bv) one_lt = true;
    }
    return one_lt;
  };
  std::vector<TupleId> candidates;
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    if (preds.Matches(data, t)) candidates.push_back(t);
  }
  std::vector<TupleId> out;
  for (TupleId t : candidates) {
    size_t dominators = 0;
    for (TupleId s : candidates) {
      if (s != t && dominates(s, t) && ++dominators >= skyband_k) break;
    }
    if (dominators < skyband_k) out.push_back(t);
  }
  return out;
}

std::vector<std::pair<TupleId, double>> NaiveTopK(const Dataset& data,
                                                  const PredicateSet& preds,
                                                  const RankingFunction& f,
                                                  size_t k) {
  std::vector<std::pair<TupleId, double>> scored;
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    if (!preds.Matches(data, t)) continue;
    scored.emplace_back(t, f.Score(data.PrefPoint(t)));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace pcube
