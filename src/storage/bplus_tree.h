// Disk-style B+-tree over 64-bit keys and values, stored in 4 KB pages
// behind a BufferPool. Used in two roles:
//   * the per-dimension boolean index of the Boolean-first baseline
//     (composite key <value, seq> -> tuple id, range-scanned per predicate);
//   * the P-Cube signature directory, mapping <cell id, SID> -> page id of a
//     partial signature (paper §VI.A: "Signatures are compressed, decomposed
//     and indexed (using B+-tree) by cell IDs and SID's").
//
// Keys are unique; callers needing duplicates pack a sequence number into
// the key's low bits (see BooleanIndex).
//
// Thread-safety: Get and RangeScan are const, keep no iterator state in the
// tree, and are safe from any number of threads against a built tree.
// Insert splits pages in place and is single-threaded by contract.
#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"
#include "storage/buffer_pool.h"

namespace pcube {

/// Paged B+-tree with uint64 keys and values.
class BPlusTree {
 public:
  /// Creates an empty tree whose node fetches are charged to `cat`.
  static Result<BPlusTree> Create(BufferPool* pool,
                                  IoCategory cat = IoCategory::kBtree);

  /// Re-attaches to an existing tree given its root page (e.g. after reopening
  /// a FilePageManager).
  static BPlusTree Attach(BufferPool* pool, PageId root, uint64_t num_entries,
                          uint64_t num_pages = 0,
                          IoCategory cat = IoCategory::kBtree);

  /// Builds a tree bottom-up from key-ascending (key, value) pairs. Much
  /// faster than repeated Insert and produces full pages; used by the
  /// construction-cost benchmarks (Fig. 5/6).
  static Result<BPlusTree> BulkLoad(
      BufferPool* pool, const std::vector<std::pair<uint64_t, uint64_t>>& sorted,
      IoCategory cat = IoCategory::kBtree);

  /// Inserts or overwrites `key`.
  Status Insert(uint64_t key, uint64_t value);

  /// Point lookup. NotFound if absent.
  Result<uint64_t> Get(uint64_t key) const;

  /// Visits all entries with lo <= key <= hi in ascending key order.
  /// The visitor returns false to stop early.
  Status RangeScan(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t key, uint64_t value)>& visit) const;

  uint64_t num_entries() const { return num_entries_; }
  PageId root() const { return root_; }
  int height() const { return height_; }

  /// Pages owned by this tree (leaves + internal), for size accounting.
  uint64_t num_pages() const { return num_pages_; }

 private:
  BPlusTree(BufferPool* pool, IoCategory cat) : pool_(pool), cat_(cat) {}

  struct SplitResult {
    bool split = false;
    uint64_t promoted_key = 0;  // smallest key of the new right sibling
    PageId right = kInvalidPageId;
  };

  Status InsertRecursive(PageId pid, int level, uint64_t key, uint64_t value,
                         SplitResult* out);

  BufferPool* pool_;
  IoCategory cat_;
  PageId root_ = kInvalidPageId;
  int height_ = 0;  // 0 = root is a leaf
  uint64_t num_entries_ = 0;
  uint64_t num_pages_ = 0;
};

}  // namespace pcube
