#include "core/signature_store.h"

#include <algorithm>
#include <set>

#include "common/bit_util.h"

namespace pcube {

namespace {

// Directory value layout: page id (38 bits) | offset (13 bits) | len (13 bits).
constexpr int kLenBits = 13;
constexpr int kOffBits = 13;
constexpr uint64_t kLenMask = (uint64_t{1} << kLenBits) - 1;
constexpr uint64_t kOffMask = (uint64_t{1} << kOffBits) - 1;

uint64_t PackLocation(PageId pid, uint32_t offset, uint32_t len) {
  PCUBE_DCHECK_LE(offset, kPageSize);
  PCUBE_DCHECK_LE(len, kPageSize);
  return (static_cast<uint64_t>(pid) << (kOffBits + kLenBits)) |
         (static_cast<uint64_t>(offset) << kLenBits) | len;
}

void UnpackLocation(uint64_t value, PageId* pid, uint32_t* offset,
                    uint32_t* len) {
  *len = static_cast<uint32_t>(value & kLenMask);
  *offset = static_cast<uint32_t>((value >> kLenBits) & kOffMask);
  *pid = static_cast<PageId>(value >> (kOffBits + kLenBits));
}

/// Sentinel directory value for a deleted partial.
constexpr uint64_t kTombstone = ~uint64_t{0};

}  // namespace

Result<SignatureStore> SignatureStore::Create(BufferPool* pool) {
  auto tree = BPlusTree::Create(pool, IoCategory::kBtree);
  if (!tree.ok()) return tree.status();
  return SignatureStore(std::move(*tree), pool);
}

uint64_t SignatureStore::MakeKey(uint32_t dense_cell, uint64_t sid) {
  PCUBE_CHECK_LE(sid, kMaxSid) << "SID exceeds key budget";
  return (static_cast<uint64_t>(dense_cell) << kSidBits) | sid;
}

Result<uint32_t> SignatureStore::DenseId(CellId cell) const {
  auto it = dense_.find(cell);
  if (it == dense_.end()) return Status::NotFound("cell never stored");
  return it->second;
}

uint32_t SignatureStore::InternCell(CellId cell) {
  auto it = dense_.find(cell);
  if (it != dense_.end()) return it->second;
  uint32_t id = next_dense_++;
  dense_.emplace(cell, id);
  return id;
}

Result<uint64_t> SignatureStore::AppendBlob(const std::vector<uint8_t>& bytes) {
  // Partials are packed into shared pages ("the data summarization is much
  // cheaper in storage cost", §IV.A): open a fresh page only when the
  // current one cannot hold the blob.
  if (append_page_ == kInvalidPageId ||
      append_offset_ + bytes.size() > kPageSize) {
    auto handle = pool_->New(IoCategory::kSignature, &append_page_);
    if (!handle.ok()) return handle.status();
    append_offset_ = 0;
    ++num_pages_;
    data_pages_.push_back(append_page_);
  }
  auto handle = pool_->GetMutable(append_page_, IoCategory::kSignature);
  if (!handle.ok()) return handle.status();
  std::copy(bytes.begin(), bytes.end(), (*handle)->data() + append_offset_);
  uint32_t offset = append_offset_;
  append_offset_ += static_cast<uint32_t>(bytes.size());
  return PackLocation(append_page_, offset,
                      static_cast<uint32_t>(bytes.size()));
}

Status SignatureStore::Put(CellId cell, const Signature& sig) {
  uint32_t dense = InternCell(cell);
  std::vector<PartialSignature> partials = DecomposeSignature(sig, kMaxPayload);

  // Existing partial locations for this cell, for in-place overwrites.
  std::map<uint64_t, uint64_t> old_locs;  // sid -> packed location
  PCUBE_RETURN_NOT_OK(index_.RangeScan(
      MakeKey(dense, 0), MakeKey(dense, kMaxSid),
      [&](uint64_t key, uint64_t value) {
        if (value != kTombstone) old_locs.emplace(key & kMaxSid, value);
        return true;
      }));

  std::set<uint64_t> new_sids;
  for (const PartialSignature& p : partials) {
    new_sids.insert(p.root_sid);
    PCUBE_CHECK_LE(p.bytes.size(), kMaxPayload);
    auto it = old_locs.find(p.root_sid);
    if (it != old_locs.end()) {
      PageId pid;
      uint32_t offset, len;
      UnpackLocation(it->second, &pid, &offset, &len);
      if (p.bytes.size() <= len) {
        // Overwrite in place; shrinkage updates the directory length.
        auto handle = pool_->GetMutable(pid, IoCategory::kSignature);
        if (!handle.ok()) return handle.status();
        std::copy(p.bytes.begin(), p.bytes.end(), (*handle)->data() + offset);
        if (p.bytes.size() != len) {
          PCUBE_RETURN_NOT_OK(index_.Insert(
              MakeKey(dense, p.root_sid),
              PackLocation(pid, offset, static_cast<uint32_t>(p.bytes.size()))));
        }
        continue;
      }
      // Outgrown its slot: the old bytes leak until compaction; append anew.
      --num_partials_;
    }
    auto loc = AppendBlob(p.bytes);
    if (!loc.ok()) return loc.status();
    ++num_partials_;
    PCUBE_RETURN_NOT_OK(index_.Insert(MakeKey(dense, p.root_sid), *loc));
  }

  // Tombstone partials that no longer exist.
  for (const auto& [sid, loc] : old_locs) {
    if (new_sids.count(sid) == 0) {
      PCUBE_RETURN_NOT_OK(index_.Insert(MakeKey(dense, sid), kTombstone));
      --num_partials_;
    }
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> SignatureStore::LoadPartial(CellId cell,
                                                         uint64_t sid) const {
  auto dense = DenseId(cell);
  if (!dense.ok()) return Status::NotFound("cell has no signature");
  auto value = index_.Get(MakeKey(*dense, sid));
  if (!value.ok()) return value.status();
  if (*value == kTombstone) return Status::NotFound("partial tombstoned");
  PageId pid;
  uint32_t offset, len;
  UnpackLocation(*value, &pid, &offset, &len);
  if (offset + len > kPageSize) return Status::Corruption("partial location");
  auto handle = pool_->Get(pid, IoCategory::kSignature);
  if (!handle.ok()) return handle.status();
  const uint8_t* base = (*handle)->data() + offset;
  return std::vector<uint8_t>(base, base + len);
}

Result<std::vector<uint64_t>> SignatureStore::ListPartials(CellId cell) const {
  auto dense = DenseId(cell);
  if (!dense.ok()) return std::vector<uint64_t>{};
  std::vector<uint64_t> sids;
  PCUBE_RETURN_NOT_OK(index_.RangeScan(
      MakeKey(*dense, 0), MakeKey(*dense, kMaxSid),
      [&](uint64_t key, uint64_t value) {
        if (value != kTombstone) sids.push_back(key & kMaxSid);
        return true;
      }));
  return sids;
}

Result<std::vector<PageId>> SignatureStore::DataPages() const {
  std::set<PageId> pages;
  PCUBE_RETURN_NOT_OK(
      index_.RangeScan(0, ~uint64_t{0}, [&](uint64_t, uint64_t value) {
        if (value != kTombstone) {
          PageId pid;
          uint32_t offset, len;
          UnpackLocation(value, &pid, &offset, &len);
          pages.insert(pid);
        }
        return true;
      }));
  return std::vector<PageId>(pages.begin(), pages.end());
}

Result<Signature> SignatureStore::LoadFull(CellId cell, uint32_t fanout,
                                           int levels) const {
  auto sids = ListPartials(cell);
  if (!sids.ok()) return sids.status();
  SignatureFragment fragment(fanout, levels);
  // Ascending SID order == generation (BFS) order, so skip sets line up.
  for (uint64_t sid : *sids) {
    auto bytes = LoadPartial(cell, sid);
    if (!bytes.ok()) return bytes.status();
    // Recover the root path: count base-(fanout+1) digits for the level.
    int level = 0;
    for (uint64_t v = sid; v > 0; v /= (fanout + 1)) ++level;
    Path root_path = SidToPath(sid, fanout, level);
    PCUBE_RETURN_NOT_OK(DecodePartialSignature(root_path, *bytes, &fragment));
  }
  return fragment.ToSignature();
}

Result<bool> SignatureStore::HasCell(CellId cell) const {
  auto sids = ListPartials(cell);
  if (!sids.ok()) return sids.status();
  return !sids->empty();
}

Status SignatureStore::Compact() {
  struct Item {
    uint32_t dense;
    uint64_t sid;
    std::vector<uint8_t> bytes;
  };
  std::vector<Item> items;
  for (const auto& [cell, dense] : dense_) {
    auto sids = ListPartials(cell);
    if (!sids.ok()) return sids.status();
    for (uint64_t sid : *sids) {
      auto bytes = LoadPartial(cell, sid);
      if (!bytes.ok()) return bytes.status();
      items.push_back({dense, sid, std::move(*bytes)});
    }
  }

  std::vector<PageId> old_pages = std::move(data_pages_);
  data_pages_.clear();
  append_page_ = kInvalidPageId;
  append_offset_ = 0;
  num_pages_ = 0;
  for (const Item& item : items) {
    auto loc = AppendBlob(item.bytes);
    if (!loc.ok()) return loc.status();
    PCUBE_RETURN_NOT_OK(index_.Insert(MakeKey(item.dense, item.sid), *loc));
  }
  num_partials_ = items.size();
  for (PageId pid : old_pages) {
    Status st = pool_->FreePage(pid);
    if (st.code() == StatusCode::kNotSupported) continue;  // no free list
    PCUBE_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

}  // namespace pcube
