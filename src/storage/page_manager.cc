#include "storage/page_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace pcube {

Result<PageId> MemoryPageManager::Allocate() {
  if (!free_list_.empty()) {
    PageId pid = free_list_.back();
    free_list_.pop_back();
    pages_[pid]->Zero();
    return pid;
  }
  auto page = std::make_unique<Page>();
  page->Zero();
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemoryPageManager::Free(PageId pid) {
  if (pid >= pages_.size()) return Status::OutOfRange("page id out of range");
  free_list_.push_back(pid);
  return Status::OK();
}

Status MemoryPageManager::Read(PageId pid, Page* out) {
  if (pid >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(pid) +
                              " >= " + std::to_string(pages_.size()));
  }
  *out = *pages_[pid];
  return Status::OK();
}

Status MemoryPageManager::Write(PageId pid, const Page& page) {
  if (pid >= pages_.size()) {
    return Status::OutOfRange("page id " + std::to_string(pid) +
                              " >= " + std::to_string(pages_.size()));
  }
  *pages_[pid] = page;
  return Status::OK();
}

Result<std::unique_ptr<FilePageManager>> FilePageManager::Open(
    const std::string& path, bool truncate) {
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + "): " + std::strerror(errno));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IoError("lseek(" + path + "): " + std::strerror(errno));
  }
  uint64_t num_pages = static_cast<uint64_t>(size) / kPageSize;
  return std::unique_ptr<FilePageManager>(new FilePageManager(fd, num_pages));
}

FilePageManager::~FilePageManager() {
  if (fd_ >= 0) ::close(fd_);
}

Result<PageId> FilePageManager::Allocate() {
  Page zero;
  zero.Zero();
  PageId pid = num_pages_;
  PCUBE_RETURN_NOT_OK(Write(pid, zero));
  num_pages_ = pid + 1;
  return pid;
}

Status FilePageManager::Read(PageId pid, Page* out) {
  if (pid >= num_pages_) return Status::OutOfRange("page id out of range");
  ssize_t n = ::pread(fd_, out->data(), kPageSize,
                      static_cast<off_t>(pid * kPageSize));
  if (n < 0) {
    return Status::IoError("pread: " + std::string(std::strerror(errno)));
  }
  if (n != static_cast<ssize_t>(kPageSize)) {
    // A positive-but-short pread means the file ends mid-page: the store was
    // truncated, not that the device failed. Corruption, not IoError — the
    // BufferPool retries transient IoErrors but a truncated file never heals.
    return Status::Corruption("short pread: page " + std::to_string(pid) +
                              " got " + std::to_string(n) + "/" +
                              std::to_string(kPageSize) + " bytes");
  }
  return Status::OK();
}

Status FilePageManager::Write(PageId pid, const Page& page) {
  if (pid > num_pages_) return Status::OutOfRange("page id out of range");
  ssize_t n = ::pwrite(fd_, page.data(), kPageSize,
                       static_cast<off_t>(pid * kPageSize));
  if (n < 0) {
    return Status::IoError("pwrite: " + std::string(std::strerror(errno)));
  }
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("short pwrite: page " + std::to_string(pid) +
                           " wrote " + std::to_string(n) + "/" +
                           std::to_string(kPageSize) + " bytes");
  }
  return Status::OK();
}

Status FilePageManager::Sync() {
  if (::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync: " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status LatencyPageManager::Read(PageId pid, Page* out) {
  double us = read_latency_us_.load(std::memory_order_relaxed);
  if (us > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(us));
  }
  return inner_->Read(pid, out);
}

}  // namespace pcube
