file(REMOVE_RECURSE
  "CMakeFiles/pcube_workbench.dir/catalog.cc.o"
  "CMakeFiles/pcube_workbench.dir/catalog.cc.o.d"
  "CMakeFiles/pcube_workbench.dir/planner.cc.o"
  "CMakeFiles/pcube_workbench.dir/planner.cc.o.d"
  "CMakeFiles/pcube_workbench.dir/workbench.cc.o"
  "CMakeFiles/pcube_workbench.dir/workbench.cc.o.d"
  "libpcube_workbench.a"
  "libpcube_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
