// Cost-based method selection. Fig. 11 of the paper shows a crossover: for
// highly selective predicates (large C) the Boolean-first plan approaches —
// and can beat — the signature plan, because fetching a handful of matching
// tuples is cheaper than any space traversal. A production system should
// therefore pick the method per query. This planner estimates page costs
// from the boolean indices' exact match counts and a simple R-tree traversal
// model, runs the cheaper plan (or the one forced by the request's
// PlanHint), and reports the estimates, the executed plan's EngineCounters
// and I/O, and a per-stage Trace in one QueryResponse.
#pragma once

#include <chrono>
#include <optional>

#include "query/request.h"
#include "workbench/workbench.h"

namespace pcube {

/// Chooses and executes plans against one workbench.
class QueryPlanner {
 public:
  /// `wb` must outlive the planner and have indices + cube built.
  explicit QueryPlanner(Workbench* wb) : wb_(wb) {}

  /// Estimates both plans for `preds` without executing anything
  /// (index-only match counting).
  Result<PlanEstimate> Estimate(const PredicateSet& preds) const;

  /// The single entry point: consults the workbench's result cache (L1),
  /// then — on a miss — estimates, picks a plan (honouring request.hint),
  /// cold-starts the buffer pool and executes, publishing the answer back
  /// into the cache. The response's estimate.choice is the plan that ran
  /// (for a cache hit, the plan that produced the cached entry) and
  /// response.cache records how the cache participated. Forced plan hints
  /// bypass the cache in both directions: the caller asked for a specific
  /// execution, so neither a cached answer nor publishing one is wanted.
  Result<QueryResponse> Run(const QueryRequest& request);

 private:
  /// Runs the branch-and-bound signature plan into `resp`. On success the
  /// engine's full output is exported through `skyline_state`/`topk_state`
  /// (when non-null) for the result cache.
  Status ExecuteSignature(const QueryRequest& request,
                          const std::optional<std::chrono::steady_clock::
                                                  time_point>& deadline,
                          QueryResponse* resp,
                          std::shared_ptr<const SkylineOutput>* skyline_state,
                          std::shared_ptr<const TopKOutput>* topk_state);
  /// Runs the boolean-first baseline plan into `resp`.
  Status ExecuteBoolean(const QueryRequest& request, QueryResponse* resp);
  /// True when the boolean plan can answer this request (it implements
  /// plain skylines and top-k, but not skybands or dynamic skylines).
  static bool CanDegrade(const QueryRequest& request);

  Workbench* wb_;
};

}  // namespace pcube
