file(REMOVE_RECURSE
  "libpcube_storage.a"
)
