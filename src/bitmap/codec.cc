#include "bitmap/codec.h"

#include <algorithm>

#include "common/bit_util.h"
#include "common/metrics.h"
#include "common/simd/word_kernels.h"

namespace pcube {

namespace {

constexpr uint32_t kWahGroupBits = 31;
constexpr uint32_t kWahFillFlag = 0x80000000u;
constexpr uint32_t kWahFillValue = 0x40000000u;
constexpr uint32_t kWahMaxRun = 0x3FFFFFFFu;
constexpr uint32_t kWahPayloadMask = 0x7FFFFFFFu;

void PutVarint(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const uint8_t* data, size_t size, size_t* offset, uint32_t* v) {
  uint32_t result = 0;
  int shift = 0;
  while (*offset < size && shift <= 28) {
    uint8_t byte = data[(*offset)++];
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

// --- word-level bit manipulation (the codec's per-bit loops were the
// cardinality-style hot spots named by ROADMAP item 3; everything below
// moves whole words or 31-bit groups per step) ---------------------------

/// OR the low `count` (<= 31) bits of `v` into `words` at bit offset `pos`.
/// Callers guarantee pos + count fits the allocated words.
void OrGroupAt(uint64_t* words, size_t pos, uint32_t v, size_t count) {
  uint64_t val = v & (count >= kWahGroupBits
                          ? kWahPayloadMask
                          : ((uint32_t{1} << count) - 1));
  size_t wi = pos >> 6;
  size_t off = pos & 63;
  words[wi] |= val << off;
  if (off + count > 64) words[wi + 1] |= val >> (64 - off);
}

/// Sets every bit of [begin, end).
void SetBitRange(uint64_t* words, size_t begin, size_t end) {
  if (begin >= end) return;
  size_t wb = begin >> 6;
  size_t we = (end - 1) >> 6;
  uint64_t first = ~uint64_t{0} << (begin & 63);
  uint64_t last = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (wb == we) {
    words[wb] |= first & last;
    return;
  }
  words[wb] |= first;
  for (size_t i = wb + 1; i < we; ++i) words[i] = ~uint64_t{0};
  words[we] |= last;
}

/// dst[begin, end) |= src[begin, end), both addressed in the same bit space.
void OrRangeFrom(uint64_t* dst, const uint64_t* src, size_t begin,
                 size_t end) {
  if (begin >= end) return;
  size_t wb = begin >> 6;
  size_t we = (end - 1) >> 6;
  uint64_t first = ~uint64_t{0} << (begin & 63);
  uint64_t last = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (wb == we) {
    dst[wb] |= src[wb] & first & last;
    return;
  }
  dst[wb] |= src[wb] & first;
  for (size_t i = wb + 1; i < we; ++i) dst[i] |= src[i];
  dst[we] |= src[we] & last;
}

/// Zeroes the pad bits above `nbits` in the final word (defence against
/// corrupt payloads — the all-pad-bits-zero invariant must survive Decode).
void MaskTailWord(uint64_t* words, size_t nbits) {
  if ((nbits & 63) != 0) {
    words[(nbits - 1) >> 6] &= ~uint64_t{0} >> (64 - (nbits & 63));
  }
}

/// Reads 31 bits of `bits` starting at group `g` (zero-padded at the tail).
uint32_t WahGroup(const BitVector& bits, size_t g) {
  size_t base = g * kWahGroupBits;
  const uint64_t* words = bits.words().data();
  size_t wi = base >> 6;
  size_t off = base & 63;
  uint64_t v = words[wi] >> off;
  if (off + kWahGroupBits > 64 && wi + 1 < bits.words().size()) {
    v |= words[wi + 1] << (64 - off);
  }
  uint32_t out = static_cast<uint32_t>(v) & kWahPayloadMask;
  size_t avail = bits.size() - base;
  if (avail < kWahGroupBits) out &= (uint32_t{1} << avail) - 1;
  return out;
}

void EncodeVerbatim(const BitVector& bits, std::vector<uint8_t>* out) {
  size_t nbytes = bit_util::Bytes(bits.size());
  size_t start = out->size();
  out->resize(start + nbytes);
  uint8_t* dst = out->data() + start;
  const uint64_t* words = bits.words().data();
  size_t full = nbytes / 8;
  for (size_t w = 0; w < full; ++w) {
    bit_util::StoreLE<uint64_t>(dst + w * 8, words[w]);
  }
  for (size_t b = full * 8; b < nbytes; ++b) {
    dst[b] = static_cast<uint8_t>(words[b >> 3] >> ((b & 7) * 8));
  }
}

void EncodeWah(const BitVector& bits, std::vector<uint8_t>* out) {
  size_t groups = bit_util::CeilDiv(bits.size(), kWahGroupBits);
  std::vector<uint32_t> words;
  uint32_t run_len = 0;
  bool run_val = false;
  auto flush_run = [&]() {
    while (run_len > 0) {
      uint32_t chunk = std::min(run_len, kWahMaxRun);
      words.push_back(kWahFillFlag | (run_val ? kWahFillValue : 0) | chunk);
      run_len -= chunk;
    }
  };
  for (size_t g = 0; g < groups; ++g) {
    uint32_t v = WahGroup(bits, g);
    if (v == 0 || v == kWahPayloadMask) {
      bool val = (v != 0);
      if (run_len > 0 && val != run_val) flush_run();
      run_val = val;
      ++run_len;
    } else {
      flush_run();
      words.push_back(v);
    }
  }
  flush_run();
  for (uint32_t w : words) {
    size_t p = out->size();
    out->resize(p + 4);
    bit_util::StoreLE<uint32_t>(out->data() + p, w);
  }
}

void EncodeSparse(const BitVector& bits, std::vector<uint8_t>* out) {
  std::vector<uint32_t> pos = bits.SetPositions();
  PutVarint(static_cast<uint32_t>(pos.size()), out);
  uint32_t prev = 0;
  for (uint32_t p : pos) {
    PutVarint(p - prev, out);
    prev = p;
  }
}

size_t SparseSize(const BitVector& bits) {
  std::vector<uint8_t> tmp;
  EncodeSparse(bits, &tmp);
  return tmp.size();
}

size_t WahSize(const BitVector& bits) {
  std::vector<uint8_t> tmp;
  EncodeWah(bits, &tmp);
  return tmp.size();
}

// --- decode bodies (header already consumed) ----------------------------

Status DecodeVerbatimBody(const uint8_t* data, size_t size, size_t* offset,
                          size_t nbits, BitVector* out) {
  size_t nbytes = bit_util::Bytes(nbits);
  if (*offset + nbytes > size) {
    return Status::Corruption("verbatim body truncated");
  }
  const uint8_t* src = data + *offset;
  uint64_t* words = out->mutable_words();
  size_t full = nbytes / 8;
  for (size_t w = 0; w < full; ++w) {
    words[w] = bit_util::LoadLE<uint64_t>(src + w * 8);
  }
  for (size_t b = full * 8; b < nbytes; ++b) {
    words[b >> 3] |= uint64_t{src[b]} << ((b & 7) * 8);
  }
  if (nbits > 0) MaskTailWord(words, nbits);
  *offset += nbytes;
  return Status::OK();
}

Status DecodeWahBody(const uint8_t* data, size_t size, size_t* offset,
                     size_t nbits, BitVector* out) {
  uint64_t* words = out->mutable_words();
  size_t bit = 0;
  size_t total_groups = bit_util::CeilDiv(nbits, kWahGroupBits);
  size_t groups_done = 0;
  while (groups_done < total_groups) {
    if (*offset + 4 > size) return Status::Corruption("WAH body truncated");
    uint32_t w = bit_util::LoadLE<uint32_t>(data + *offset);
    *offset += 4;
    if (w & kWahFillFlag) {
      uint32_t run = w & kWahMaxRun;
      if (groups_done + run > total_groups) {
        return Status::Corruption("WAH run overflows bit count");
      }
      if ((w & kWahFillValue) != 0) {
        SetBitRange(words, bit,
                    std::min(bit + run * size_t{kWahGroupBits}, nbits));
      }
      bit += run * size_t{kWahGroupBits};
      groups_done += run;
    } else {
      OrGroupAt(words, bit, w, std::min<size_t>(kWahGroupBits, nbits - bit));
      bit += kWahGroupBits;
      ++groups_done;
    }
  }
  return Status::OK();
}

Status DecodeSparseBody(const uint8_t* data, size_t size, size_t* offset,
                        size_t nbits, BitVector* out) {
  uint32_t count = 0;
  if (!GetVarint(data, size, offset, &count)) {
    return Status::Corruption("sparse count truncated");
  }
  uint32_t pos = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint(data, size, offset, &delta)) {
      return Status::Corruption("sparse delta truncated");
    }
    pos += delta;
    if (pos >= nbits) return Status::Corruption("sparse position out of range");
    out->Set(pos);
  }
  return Status::OK();
}

Status DecodeBody(BitmapScheme scheme, const uint8_t* data, size_t size,
                  size_t* offset, size_t nbits, BitVector* out) {
  switch (scheme) {
    case BitmapScheme::kVerbatim:
      return DecodeVerbatimBody(data, size, offset, nbits, out);
    case BitmapScheme::kWah:
      return DecodeWahBody(data, size, offset, nbits, out);
    case BitmapScheme::kSparse:
      return DecodeSparseBody(data, size, offset, nbits, out);
  }
  return Status::Corruption("unreachable");
}

/// Parses the u8 scheme | u16 bit-count header.
Status ParseHeader(const uint8_t* data, size_t size, size_t* offset,
                   BitmapScheme* scheme, uint16_t* nbits) {
  if (*offset + 3 > size) return Status::Corruption("bitmap header truncated");
  uint8_t tag = data[*offset];
  if (tag > static_cast<uint8_t>(BitmapScheme::kSparse)) {
    return Status::Corruption("unknown bitmap scheme tag");
  }
  *scheme = static_cast<BitmapScheme>(tag);
  *nbits = bit_util::LoadLE<uint16_t>(data + *offset + 1);
  *offset += 3;
  return Status::OK();
}

/// Streaming reader over one encoded WAH body: hands out fills (whole runs,
/// never expanded) and literal words, validating against the group total.
struct WahReader {
  const uint8_t* data;
  size_t size;
  size_t* offset;
  uint32_t run_left = 0;   // groups left in the current fill
  bool run_val = false;
  bool has_literal = false;
  uint32_t literal = 0;

  bool Exhausted() const { return run_left == 0 && !has_literal; }

  /// Ensures a current item; `groups_left` is the shared number of groups
  /// the merge still has to produce (= this operand's remaining groups).
  Status Ensure(size_t groups_left) {
    while (Exhausted()) {
      if (*offset + 4 > size) return Status::Corruption("WAH body truncated");
      uint32_t w = bit_util::LoadLE<uint32_t>(data + *offset);
      *offset += 4;
      if (w & kWahFillFlag) {
        run_left = w & kWahMaxRun;  // zero-length runs are skipped
        run_val = (w & kWahFillValue) != 0;
        if (run_left > groups_left) {
          return Status::Corruption("WAH run overflows bit count");
        }
      } else {
        literal = w & kWahPayloadMask;
        has_literal = true;
      }
    }
    return Status::OK();
  }

  /// Consumes one group; only valid when the current item is a literal or a
  /// fill with run_left >= 1.
  void ConsumeOne() {
    if (has_literal) {
      has_literal = false;
    } else {
      --run_left;
    }
  }

  /// The 31-bit payload of the current item viewed as one group.
  uint32_t GroupValue() const {
    if (has_literal) return literal;
    return run_val ? kWahPayloadMask : 0;
  }
};

Counter* EncodedIntersectCounter() {
  static Counter* c = MetricsRegistry::Default().GetCounter(
      "pcube_simd_kernel_calls_total{kernel=\"encoded_intersect\"}");
  return c;
}

/// a is WAH, b is fully decoded (verbatim side or recursion base): walk a's
/// words, skipping zero fills without touching b, word-copying one fills,
/// ANDing literals against b's 31-bit groups.
Status IntersectWahDecoded(WahReader* a, const BitVector& b, size_t nbits,
                           BitVector* out) {
  size_t total_groups = bit_util::CeilDiv(nbits, kWahGroupBits);
  uint64_t* words = out->mutable_words();
  size_t g = 0;
  while (g < total_groups) {
    PCUBE_RETURN_NOT_OK(a->Ensure(total_groups - g));
    if (a->has_literal) {
      uint32_t v = a->literal & WahGroup(b, g);
      OrGroupAt(words, g * kWahGroupBits, v,
                std::min<size_t>(kWahGroupBits, nbits - g * kWahGroupBits));
      a->ConsumeOne();
      ++g;
    } else {
      size_t k = std::min<size_t>(a->run_left, total_groups - g);
      if (a->run_val) {
        OrRangeFrom(words, b.words().data(), g * kWahGroupBits,
                    std::min((g + k) * kWahGroupBits, nbits));
      }
      a->run_left -= static_cast<uint32_t>(k);
      g += k;
    }
  }
  return Status::OK();
}

/// Both operands WAH: merge runs in compressed form. Zero fills on either
/// side skip min(run, run) groups with no decoding at all; only
/// literal-vs-literal pairs do bit work.
Status IntersectWahWah(WahReader* a, WahReader* b, size_t nbits,
                       BitVector* out) {
  size_t total_groups = bit_util::CeilDiv(nbits, kWahGroupBits);
  uint64_t* words = out->mutable_words();
  size_t g = 0;
  while (g < total_groups) {
    PCUBE_RETURN_NOT_OK(a->Ensure(total_groups - g));
    PCUBE_RETURN_NOT_OK(b->Ensure(total_groups - g));
    if (!a->has_literal && !b->has_literal) {
      size_t k = std::min<size_t>(std::min(a->run_left, b->run_left),
                                  total_groups - g);
      if (a->run_val && b->run_val) {
        SetBitRange(words, g * kWahGroupBits,
                    std::min((g + k) * kWahGroupBits, nbits));
      }
      a->run_left -= static_cast<uint32_t>(k);
      b->run_left -= static_cast<uint32_t>(k);
      g += k;
    } else {
      uint32_t v = a->GroupValue() & b->GroupValue();
      if (v != 0) {
        OrGroupAt(words, g * kWahGroupBits, v,
                  std::min<size_t>(kWahGroupBits, nbits - g * kWahGroupBits));
      }
      a->ConsumeOne();
      b->ConsumeOne();
      ++g;
    }
  }
  return Status::OK();
}

/// a is sparse: stream its set positions against fully decoded b.
Status IntersectSparseDecoded(const uint8_t* data, size_t size,
                              size_t* offset, const BitVector& b,
                              size_t nbits, BitVector* out) {
  uint32_t count = 0;
  if (!GetVarint(data, size, offset, &count)) {
    return Status::Corruption("sparse count truncated");
  }
  uint32_t pos = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    if (!GetVarint(data, size, offset, &delta)) {
      return Status::Corruption("sparse delta truncated");
    }
    pos += delta;
    if (pos >= nbits) return Status::Corruption("sparse position out of range");
    if (b.Get(pos)) out->Set(pos);
  }
  return Status::OK();
}

}  // namespace

void BitmapCodec::EncodeWith(BitmapScheme scheme, const BitVector& bits,
                             std::vector<uint8_t>* out) {
  PCUBE_CHECK_LE(bits.size(), kMaxBits);
  out->push_back(static_cast<uint8_t>(scheme));
  size_t p = out->size();
  out->resize(p + 2);
  bit_util::StoreLE<uint16_t>(out->data() + p, static_cast<uint16_t>(bits.size()));
  switch (scheme) {
    case BitmapScheme::kVerbatim:
      EncodeVerbatim(bits, out);
      break;
    case BitmapScheme::kWah:
      EncodeWah(bits, out);
      break;
    case BitmapScheme::kSparse:
      EncodeSparse(bits, out);
      break;
  }
}

void BitmapCodec::Encode(const BitVector& bits, std::vector<uint8_t>* out) {
  size_t verbatim = bit_util::Bytes(bits.size());
  size_t wah = WahSize(bits);
  size_t sparse = SparseSize(bits);
  BitmapScheme best = BitmapScheme::kVerbatim;
  size_t best_size = verbatim;
  if (wah < best_size) {
    best = BitmapScheme::kWah;
    best_size = wah;
  }
  if (sparse < best_size) {
    best = BitmapScheme::kSparse;
  }
  EncodeWith(best, bits, out);
}

size_t BitmapCodec::EncodedSize(const BitVector& bits) {
  size_t body = std::min({bit_util::Bytes(bits.size()), WahSize(bits),
                          SparseSize(bits)});
  return 3 + body;  // scheme byte + u16 length
}

Result<BitmapScheme> BitmapCodec::PeekScheme(const uint8_t* data, size_t size) {
  if (size < 1) return Status::Corruption("empty bitmap encoding");
  uint8_t tag = data[0];
  if (tag > static_cast<uint8_t>(BitmapScheme::kSparse)) {
    return Status::Corruption("unknown bitmap scheme tag");
  }
  return static_cast<BitmapScheme>(tag);
}

Status BitmapCodec::Decode(const uint8_t* data, size_t size, size_t* offset,
                           BitVector* out) {
  BitmapScheme scheme{};
  uint16_t nbits = 0;
  PCUBE_RETURN_NOT_OK(ParseHeader(data, size, offset, &scheme, &nbits));
  *out = BitVector(nbits);
  return DecodeBody(scheme, data, size, offset, nbits, out);
}

Status BitmapCodec::IntersectEncoded(const uint8_t* a, size_t a_size,
                                     size_t* a_offset, const uint8_t* b,
                                     size_t b_size, size_t* b_offset,
                                     BitVector* out) {
  EncodedIntersectCounter()->Increment();
  BitmapScheme a_scheme{};
  BitmapScheme b_scheme{};
  uint16_t a_bits = 0;
  uint16_t b_bits = 0;
  PCUBE_RETURN_NOT_OK(ParseHeader(a, a_size, a_offset, &a_scheme, &a_bits));
  PCUBE_RETURN_NOT_OK(ParseHeader(b, b_size, b_offset, &b_scheme, &b_bits));
  if (a_bits != b_bits) {
    return Status::Corruption("encoded bitmaps disagree on bit count");
  }
  const size_t nbits = a_bits;
  *out = BitVector(nbits);

  // Sparse operands stream their positions against the other side decoded.
  if (a_scheme == BitmapScheme::kSparse || b_scheme == BitmapScheme::kSparse) {
    const uint8_t* s = a;
    size_t s_size = a_size;
    size_t* s_offset = a_offset;
    BitmapScheme o_scheme = b_scheme;
    const uint8_t* o = b;
    size_t o_size = b_size;
    size_t* o_offset = b_offset;
    if (a_scheme != BitmapScheme::kSparse) {
      s = b, s_size = b_size, s_offset = b_offset;
      o = a, o_size = a_size, o_offset = a_offset, o_scheme = a_scheme;
    }
    BitVector other(nbits);
    PCUBE_RETURN_NOT_OK(DecodeBody(o_scheme, o, o_size, o_offset, nbits,
                                   &other));
    return IntersectSparseDecoded(s, s_size, s_offset, other, nbits, out);
  }

  // Verbatim x verbatim: both payloads word-load, one pass of the 256-bit
  // AND kernel.
  if (a_scheme == BitmapScheme::kVerbatim &&
      b_scheme == BitmapScheme::kVerbatim) {
    PCUBE_RETURN_NOT_OK(DecodeVerbatimBody(a, a_size, a_offset, nbits, out));
    BitVector other(nbits);
    PCUBE_RETURN_NOT_OK(DecodeVerbatimBody(b, b_size, b_offset, nbits,
                                           &other));
    simd::AndWords(out->mutable_words(), out->words().data(),
                   other.words().data(), out->words().size());
    return Status::OK();
  }

  // At least one WAH operand: runs skip without decoding.
  if (a_scheme == BitmapScheme::kWah && b_scheme == BitmapScheme::kWah) {
    WahReader ra{a, a_size, a_offset};
    WahReader rb{b, b_size, b_offset};
    return IntersectWahWah(&ra, &rb, nbits, out);
  }
  const uint8_t* w = a;
  size_t w_size = a_size;
  size_t* w_offset = a_offset;
  const uint8_t* v = b;
  size_t v_size = b_size;
  size_t* v_offset = b_offset;
  if (a_scheme != BitmapScheme::kWah) {
    w = b, w_size = b_size, w_offset = b_offset;
    v = a, v_size = a_size, v_offset = a_offset;
  }
  BitVector decoded(nbits);
  PCUBE_RETURN_NOT_OK(DecodeVerbatimBody(v, v_size, v_offset, nbits,
                                         &decoded));
  WahReader rw{w, w_size, w_offset};
  return IntersectWahDecoded(&rw, decoded, nbits, out);
}

}  // namespace pcube
