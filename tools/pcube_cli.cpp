// pcube — command-line front end for the P-Cube library.
//
//   pcube generate --rows N [--bool K --pref M --card C --dist D --seed S]
//                  --out data.csv
//       Emit a synthetic CSV (boolean columns first, then preference
//       columns; distribution D in {uniform, correlated, anticorrelated}).
//
//   pcube build --csv data.csv --spec bbbppp [--header] --db data.pcube
//       Import a CSV (spec: 'b' boolean column, 'p' preference column,
//       '-' skip), build the heap file, boolean B+-trees, R*-tree and
//       P-Cube, and persist everything to one file.
//
//   pcube info --db data.pcube
//       Print the stored relation and structure statistics.
//
//   pcube explain --db data.pcube [--where ...]
//       Print the planner's cost estimates and plan choice for a query.
//
//   pcube skyline --db data.pcube [--where "col=value,col=value"]
//                 [--band K] [--origin x,y,...] [--limit N]
//       Signature-pruned skyline / k-skyband / dynamic skyline.
//
//   pcube topk --db data.pcube --k N [--where ...]
//              (--weights w1,w2,... | --target t1,... [--tweights w1,...])
//       Signature-pruned top-k under a linear function (--weights) or a
//       weighted squared distance to a target point (--target).
//
//   pcube ingest (--db data.pcube | --connect HOST:PORT)
//               [--csv rows.csv --spec bbbppp [--header]]
//               [--delete tid,tid,...] [--batch N] [--ack applied|durable]
//               [--tenant T] [--save]
//       Stream mutations through the write path (DESIGN.md §15): CSV rows
//       become WriteBatch inserts (chunked --batch rows per Apply, default
//       1024), --delete tids become deletes. With --db the batches commit
//       through the local WAL (--save additionally checkpoints into the
//       page file); with --connect they travel as kWrite frames to a
//       running `pcube serve`. Prints sustained rows/sec and commit stats.
//
//   pcube verify --db data.pcube
//       Full integrity walk: validate the WAL sidecar first (record CRCs,
//       LSN monotonicity, torn tail — inspected BEFORE opening, since Open
//       replays and heals the log), then re-read every page through the
//       checksum layer, check B+-tree key order, R-tree structure and
//       signature assembly. Exit 1 (listing the problems) if anything fails.
//
//   pcube corrupt --db data.pcube [--kind signature|rtree|table|catalog]
//                 [--page N] [--offset K] [--wal]
//       Deliberately flip one byte per targeted page in the raw file
//       (testing tool; `verify` and checksummed reads must catch it).
//       --wal targets the WAL sidecar (<db>.wal) instead of the page file.
//
//   pcube serve --db data.pcube [--shards N] [--port P] [--workers N]
//               [--queue-cap N] [--tenant-rate R] [--tenant-burst B]
//               [--max-conns N] [--query-log FILE]
//       Serve the database over TCP (127.0.0.1 only) with multi-tenant
//       admission control: per-tenant token-bucket quotas, a bounded
//       request queue and early load shedding (DESIGN.md §14). Runs until
//       SIGINT/SIGTERM.
//
//   pcube query --connect HOST:PORT [--tenant T] [--deadline-ms N]
//               [--where "0=#3,..."] [--limit N]
//               (--k N (--weights w,.. | --target t,.. [--tweights w,..])
//                | [--band K] [--origin x,..])
//       Client mode: send one query to a running `pcube serve` and print
//       the streamed answer. No database file is opened, so predicates use
//       raw dimension indices and "#code" values.
//
// Both query commands accept:
//   --plan auto|signature|boolean   plan selection (default: auto, the cost
//                                   model picks; see `explain`. A forced
//                                   plan bypasses the result cache)
//   --shards N                      answer through a scatter-gather
//                                   coordinator over N in-process shards
//                                   (boolean-row hash partition; sub-queries
//                                   always run the signature engines, so
//                                   --plan only controls cache bypass).
//                                   `explain` prints the shard plan.
//   --deadline-ms N                 per-query deadline; exceeding it fails
//                                   the query with a Timeout status
//   --metrics                       append a Prometheus-style text dump of
//                                   every engine, cache and buffer-pool
//                                   metric
//   --query-log FILE                write one JSONL record (trace id, plan,
//                                   cache outcome, counters, per-stage
//                                   spans) to FILE
//
// Every command that opens a database accepts:
//   --fault-plan SPEC               inject storage faults while queries run,
//                                   e.g. "seed=7,read_error=0.01,bit_flip=
//                                   0.001" (see storage/fault_injection.h)
//   --cache MB                      budget PER LEVEL for the two query cache
//                                   levels (L1 semantic results, L2 decoded
//                                   signature fragments; default 16)
//   --no-cache                      disable both cache levels
//
// Predicate values use the stored dictionary when the database came from a
// CSV import ("color=red"); raw codes also work ("color=#3" or "2=#3").
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/simd/simd.h"
#include "common/timer.h"
#include "data/csv.h"
#include "data/generators.h"
#include "query/write_batch.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/sharded_workbench.h"
#include "storage/wal.h"
#include "workbench/planner.h"
#include "workbench/workbench.h"

using namespace pcube;

namespace {

// ------------------------------------------------------------- arg parsing

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
        std::exit(2);
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) const {
    if (!Has(key)) {
      std::fprintf(stderr, "missing required --%s\n", key.c_str());
      std::exit(2);
    }
    return values_.at(key);
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    return Has(key) ? std::strtoll(values_.at(key).c_str(), nullptr, 10)
                    : fallback;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::vector<std::string> SplitList(const std::string& s, char sep = ',') {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

std::vector<double> ParseDoubles(const std::string& s) {
  std::vector<double> out;
  for (const std::string& item : SplitList(s)) {
    out.push_back(std::strtod(item.c_str(), nullptr));
  }
  return out;
}

[[noreturn]] void Die(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) Die(r.status());
  return std::move(*r);
}

// --------------------------------------------------------------- database

std::unique_ptr<Workbench> OpenDb(const Args& args) {
  WorkbenchOptions options;
  if (args.Has("fault-plan")) {
    options.fault_plan = Unwrap(FaultPlan::Parse(args.Get("fault-plan")));
  }
  if (args.Has("no-cache")) {
    options.result_cache_mb = 0;
    options.fragment_cache_mb = 0;
  } else if (args.Has("cache")) {
    size_t mb = static_cast<size_t>(args.GetInt("cache", 16));
    options.result_cache_mb = mb;
    options.fragment_cache_mb = mb;
  }
  return Unwrap(Workbench::Open(args.Require("db"), options));
}

/// The query commands' service handle. The file-backed Workbench is always
/// opened (it owns the dictionaries and the global Dataset the output is
/// printed from); with --shards N (N > 1) a scatter-gather coordinator is
/// built over a copy of that relation and answers the queries instead —
/// result tids are global either way.
struct ServiceHandle {
  std::unique_ptr<Workbench> wb;
  std::unique_ptr<ShardedWorkbench> sharded;
  QueryService* service = nullptr;
};

ServiceHandle OpenService(const Args& args) {
  ServiceHandle h;
  h.wb = OpenDb(args);
  size_t shards = static_cast<size_t>(args.GetInt("shards", 1));
  if (shards > 1) {
    ShardedOptions options;
    options.num_shards = shards;
    if (args.Has("no-cache")) {
      options.result_cache_mb = 0;
      options.shard.fragment_cache_mb = 0;
    } else if (args.Has("cache")) {
      size_t mb = static_cast<size_t>(args.GetInt("cache", 16));
      options.result_cache_mb = mb;
      options.shard.fragment_cache_mb = mb;
    }
    h.sharded = Unwrap(ShardedWorkbench::Build(h.wb->data(), options));
    h.service = h.sharded.get();
  } else {
    h.service = h.wb.get();
  }
  return h;
}

/// Resolves "name=value" predicates against the stored dictionaries; names
/// may be dimension indices, values may be "#<code>".
PredicateSet ParseWhere(const Workbench& wb, const std::string& where) {
  PredicateSet preds;
  if (where.empty()) return preds;
  const auto& dicts = wb.dictionaries();
  for (const std::string& term : SplitList(where)) {
    size_t eq = term.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad predicate '%s' (want col=value)\n",
                   term.c_str());
      std::exit(2);
    }
    std::string col = term.substr(0, eq);
    std::string value = term.substr(eq + 1);
    int dim = -1;
    // Column: numeric index, or a dictionary... columns have no stored
    // names; accept indices only unless value lookup disambiguates.
    char* end = nullptr;
    long parsed = std::strtol(col.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') {
      dim = static_cast<int>(parsed);
    }
    uint32_t code = 0;
    bool have_code = false;
    if (!value.empty() && value[0] == '#') {
      code = static_cast<uint32_t>(std::strtoul(value.c_str() + 1, nullptr, 10));
      have_code = true;
    }
    if (!have_code) {
      // Dictionary lookup: in the named dimension, or in all of them.
      for (size_t d = 0; d < dicts.size(); ++d) {
        if (dim >= 0 && static_cast<int>(d) != dim) continue;
        for (size_t v = 0; v < dicts[d].size(); ++v) {
          if (dicts[d][v] == value) {
            dim = static_cast<int>(d);
            code = static_cast<uint32_t>(v);
            have_code = true;
            break;
          }
        }
        if (have_code) break;
      }
    }
    if (dim < 0 || !have_code) {
      std::fprintf(stderr, "cannot resolve predicate '%s'\n", term.c_str());
      std::exit(2);
    }
    preds.Add({dim, code});
  }
  return preds;
}

const char* DictValue(const Workbench& wb, int dim, uint32_t code) {
  static std::string scratch;
  const auto& dicts = wb.dictionaries();
  if (static_cast<size_t>(dim) < dicts.size() &&
      code < dicts[dim].size()) {
    return dicts[dim][code].c_str();
  }
  scratch = "#" + std::to_string(code);
  return scratch.c_str();
}

void PrintTuple(const Workbench& wb, TupleId tid, double score,
                bool with_score) {
  const Dataset& data = wb.data();
  std::printf("  #%-8llu", static_cast<unsigned long long>(tid));
  for (int d = 0; d < data.num_bool(); ++d) {
    std::printf(" %s", DictValue(wb, d, data.BoolValue(tid, d)));
  }
  std::printf(" |");
  for (int d = 0; d < data.num_pref(); ++d) {
    std::printf(" %.4f", data.PrefValue(tid, d));
  }
  if (with_score) std::printf("  (score %.6f)", score);
  std::printf("\n");
}

PlanHint ParsePlanHint(const Args& args) {
  std::string plan = args.Get("plan", "auto");
  if (plan == "signature") return PlanHint::kSignature;
  if (plan == "boolean") return PlanHint::kBooleanFirst;
  if (plan == "auto") return PlanHint::kAuto;
  std::fprintf(stderr, "unknown --plan '%s' (auto|signature|boolean)\n",
               plan.c_str());
  std::exit(2);
}

/// Shared epilogue of the query commands: the I/O line, the optional JSONL
/// query-log record and the optional metrics dump.
void FinishQuery(QueryService* service, const QueryRequest& request,
                 const QueryResponse& resp, const Args& args) {
  std::printf("disk: %llu page reads (%llu r-tree, %llu signature)",
              static_cast<unsigned long long>(resp.io.TotalReads()),
              static_cast<unsigned long long>(
                  resp.io.ReadCount(IoCategory::kRtreeBlock)),
              static_cast<unsigned long long>(
                  resp.io.ReadCount(IoCategory::kSignature)));
  if (resp.cache != CacheOutcome::kNone) {
    std::printf("  [cache: %s]", CacheOutcomeName(resp.cache));
  }
  if (resp.fanout_shards > 0) {
    std::printf("  [shards: %u]", static_cast<unsigned>(resp.fanout_shards));
  }
  std::printf("\n");
  if (args.Has("query-log")) {
    auto log = Unwrap(QueryLog::OpenFile(args.Get("query-log")));
    log->Append(QueryLogRecord(request, resp));
  }
  if (args.Has("metrics")) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    service->ExportMetrics(&registry);
    std::printf("\n%s", registry.RenderText().c_str());
  }
}

// --------------------------------------------------------------- commands

int CmdGenerate(const Args& args) {
  SyntheticConfig config;
  config.num_tuples = static_cast<uint64_t>(args.GetInt("rows", 10000));
  config.num_bool = static_cast<int>(args.GetInt("bool", 3));
  config.num_pref = static_cast<int>(args.GetInt("pref", 3));
  config.bool_cardinality = static_cast<uint32_t>(args.GetInt("card", 100));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  std::string dist = args.Get("dist", "uniform");
  if (dist == "correlated") {
    config.dist = PrefDistribution::kCorrelated;
  } else if (dist == "anticorrelated") {
    config.dist = PrefDistribution::kAntiCorrelated;
  } else if (dist != "uniform") {
    std::fprintf(stderr, "unknown --dist '%s'\n", dist.c_str());
    return 2;
  }
  Dataset data = GenerateSynthetic(config);

  std::ofstream out(args.Require("out"));
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open output file\n");
    return 1;
  }
  for (int d = 0; d < config.num_bool; ++d) out << "b" << d << ",";
  for (int d = 0; d < config.num_pref; ++d) {
    out << "p" << d << (d + 1 < config.num_pref ? "," : "\n");
  }
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    for (int d = 0; d < config.num_bool; ++d) {
      out << "v" << data.BoolValue(t, d) << ",";
    }
    for (int d = 0; d < config.num_pref; ++d) {
      out << data.PrefValue(t, d) << (d + 1 < config.num_pref ? "," : "\n");
    }
  }
  std::printf("wrote %llu rows to %s (spec: %s)\n",
              static_cast<unsigned long long>(data.num_tuples()),
              args.Get("out").c_str(),
              (std::string(config.num_bool, 'b') +
               std::string(config.num_pref, 'p'))
                  .c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  CsvTable table = Unwrap(ReadCsvFile(args.Require("csv"),
                                      args.Require("spec"),
                                      args.Has("header")));
  std::printf("imported %llu rows: %d boolean dims, %d preference dims\n",
              static_cast<unsigned long long>(table.data.num_tuples()),
              table.data.num_bool(), table.data.num_pref());
  WorkbenchOptions options;
  options.file_path = args.Require("db");
  auto wb = Unwrap(Workbench::Build(std::move(table.data), options));
  wb->set_dictionaries(std::move(table.dictionaries));
  if (Status st = wb->Save(); !st.ok()) Die(st);
  std::printf(
      "built %s: %llu pages (heap %llu, r-tree %llu, p-cube %llu), %llu "
      "signature cells\n",
      args.Get("db").c_str(),
      static_cast<unsigned long long>(wb->page_manager()->NumPages()),
      static_cast<unsigned long long>(wb->table()->num_pages()),
      static_cast<unsigned long long>(wb->tree()->num_pages()),
      static_cast<unsigned long long>(wb->cube()->MaterializedPages()),
      static_cast<unsigned long long>(wb->cube()->num_cells()));
  return 0;
}

int CmdInfo(const Args& args) {
  auto wb = OpenDb(args);
  const Dataset& data = wb->data();
  std::printf("%s\n", args.Get("db").c_str());
  std::printf("  tuples:           %llu\n",
              static_cast<unsigned long long>(data.num_tuples()));
  std::printf("  boolean dims:     %d (cardinalities:", data.num_bool());
  for (uint32_t card : data.schema().bool_cardinality) std::printf(" %u", card);
  std::printf(")\n");
  std::printf("  preference dims:  %d\n", data.num_pref());
  std::printf("  r-tree:           height %d, fanout %u, %llu pages\n",
              wb->tree()->height(), wb->tree()->fanout(),
              static_cast<unsigned long long>(wb->tree()->num_pages()));
  std::printf("  p-cube:           %llu cells, %llu pages\n",
              static_cast<unsigned long long>(wb->cube()->num_cells()),
              static_cast<unsigned long long>(wb->cube()->MaterializedPages()));
  std::printf("  total file:       %.2f MB\n",
              static_cast<double>(wb->page_manager()->SizeBytes()) / 1e6);
  return 0;
}

int CmdSkyline(const Args& args) {
  ServiceHandle h = OpenService(args);
  PredicateSet preds = ParseWhere(*h.wb, args.Get("where"));
  SkylineQueryOptions options;
  options.skyband_k = static_cast<size_t>(args.GetInt("band", 1));
  if (args.Has("origin")) {
    for (double v : ParseDoubles(args.Get("origin"))) {
      options.origin.push_back(static_cast<float>(v));
    }
  }
  QueryRequest request = QueryRequest::Skyline(preds, options);
  request.hint = ParsePlanHint(args);
  request.deadline_ms = static_cast<uint64_t>(args.GetInt("deadline-ms", 0));
  auto resp = Unwrap(h.service->Run(request));
  if (resp.degraded) {
    std::printf("degraded: %s; answered via boolean-first fallback\n",
                resp.degraded_reason.c_str());
  }
  std::printf("%zu result(s) for %s [%s plan]\n", resp.tids.size(),
              preds.empty() ? "(no predicate)" : preds.ToString().c_str(),
              resp.estimate.choice == PlanChoice::kSignature
                  ? "signature"
                  : "boolean-first");
  size_t limit = static_cast<size_t>(args.GetInt("limit", 50));
  for (size_t i = 0; i < resp.tids.size() && i < limit; ++i) {
    PrintTuple(*h.wb, resp.tids[i], 0, false);
  }
  if (resp.tids.size() > limit) std::printf("  ... (--limit to see more)\n");
  FinishQuery(h.service, request, resp, args);
  return 0;
}

int CmdTopK(const Args& args) {
  ServiceHandle h = OpenService(args);
  PredicateSet preds = ParseWhere(*h.wb, args.Get("where"));
  size_t k = static_cast<size_t>(args.GetInt("k", 10));
  std::unique_ptr<RankingFunction> f;
  int dp = h.wb->data().num_pref();
  if (args.Has("target")) {
    std::vector<double> target = ParseDoubles(args.Get("target"));
    std::vector<double> weights =
        args.Has("tweights") ? ParseDoubles(args.Get("tweights"))
                             : std::vector<double>(target.size(), 1.0);
    if (static_cast<int>(target.size()) != dp) {
      std::fprintf(stderr, "--target needs %d coordinates\n", dp);
      return 2;
    }
    f = std::make_unique<WeightedL2Ranking>(target, weights);
  } else {
    std::vector<double> weights =
        args.Has("weights") ? ParseDoubles(args.Get("weights"))
                            : std::vector<double>(dp, 1.0);
    if (static_cast<int>(weights.size()) != dp) {
      std::fprintf(stderr, "--weights needs %d values\n", dp);
      return 2;
    }
    f = std::make_unique<LinearRanking>(weights);
  }
  QueryRequest request =
      QueryRequest::TopK(preds, std::shared_ptr<const RankingFunction>(
                                    std::shared_ptr<const RankingFunction>(),
                                    f.get()),
                         k);
  request.hint = ParsePlanHint(args);
  request.deadline_ms = static_cast<uint64_t>(args.GetInt("deadline-ms", 0));
  auto resp = Unwrap(h.service->Run(request));
  if (resp.degraded) {
    std::printf("degraded: %s; answered via boolean-first fallback\n",
                resp.degraded_reason.c_str());
  }
  std::printf("top %zu for %s\n", resp.tids.size(),
              preds.empty() ? "(no predicate)" : preds.ToString().c_str());
  for (size_t i = 0; i < resp.tids.size(); ++i) {
    PrintTuple(*h.wb, resp.tids[i], resp.scores[i], true);
  }
  FinishQuery(h.service, request, resp, args);
  return 0;
}

int CmdExplain(const Args& args) {
  ServiceHandle h = OpenService(args);
  PredicateSet preds = ParseWhere(*h.wb, args.Get("where"));
  auto est = h.service->Estimate(preds);
  if (!est.ok()) Die(est.status());
  std::printf("query: %s\n",
              preds.empty() ? "(no predicate)" : preds.ToString().c_str());
  std::printf("  estimated matching tuples: %llu\n",
              static_cast<unsigned long long>(est->matching_tuples));
  std::printf("  boolean-first plan:        ~%llu page reads\n",
              static_cast<unsigned long long>(est->boolean_pages));
  std::printf("  signature plan:            ~%llu page reads\n",
              static_cast<unsigned long long>(est->signature_pages));
  std::printf("  chosen plan:               %s\n",
              est->choice == PlanChoice::kSignature ? "signature (P-Cube)"
                                                    : "boolean-first");
  std::printf("  simd kernels:              %s\n",
              simd::SimdLevelName(simd::ActiveSimdLevel()));
  std::printf("shard plan (%zu shard%s):\n",
              h.service->num_shards(),
              h.service->num_shards() == 1 ? "" : "s");
  std::printf("%s", h.service->DescribeShards().c_str());
  return 0;
}

int CmdVerify(const Args& args) {
  // Inspect the WAL sidecar BEFORE opening: Workbench::Open replays the log
  // and zeroes any torn tail, so damage must be reported off the raw file.
  size_t wal_problems = 0;
  const std::string wal_path = args.Require("db") + ".wal";
  if (std::ifstream(wal_path).good()) {
    auto wal_report = Unwrap(Wal::Inspect(wal_path));
    std::printf("wal: %llu record(s), start lsn %llu, last lsn %llu%s\n",
                static_cast<unsigned long long>(wal_report.num_records),
                static_cast<unsigned long long>(wal_report.start_lsn),
                static_cast<unsigned long long>(wal_report.last_lsn),
                wal_report.torn_tail
                    ? " (torn tail: unacknowledged suffix will be discarded)"
                    : "");
    for (const std::string& msg : wal_report.errors) {
      std::fprintf(stderr, "  wal: %s\n", msg.c_str());
    }
    wal_problems = wal_report.errors.size();
  }
  auto wb = OpenDb(args);
  auto report = Unwrap(wb->VerifyIntegrity());
  std::printf("verified %llu pages\n",
              static_cast<unsigned long long>(report.pages_checked));
  for (const auto& [pid, msg] : report.errors) {
    if (pid == kInvalidPageId) {
      std::fprintf(stderr, "  %s\n", msg.c_str());
    } else {
      std::fprintf(stderr, "  page %llu: %s\n",
                   static_cast<unsigned long long>(pid), msg.c_str());
    }
  }
  if (!report.ok() || wal_problems > 0) {
    std::fprintf(stderr, "%zu problem(s) found\n",
                 report.errors.size() + wal_problems);
    return 1;
  }
  std::printf("ok\n");
  return 0;
}

int CmdCorrupt(const Args& args) {
  std::string path = args.Require("db");
  std::vector<PageId> targets;
  if (args.Has("wal")) {
    // The WAL sidecar: default to page 1 (the head of the record region;
    // page 0 is the header) so `verify` sees a record CRC failure.
    path += ".wal";
    targets.push_back(static_cast<PageId>(args.GetInt("page", 1)));
  } else if (args.Has("page")) {
    targets.push_back(static_cast<PageId>(args.GetInt("page", 0)));
  } else {
    // Open the database to locate the pages of the requested structure,
    // then close it before touching the raw file.
    std::string kind = args.Get("kind", "signature");
    auto wb = Unwrap(Workbench::Open(path));
    if (kind == "signature") {
      // Every data page of the signature store, so any probe hits damage.
      targets = Unwrap(wb->cube()->store().DataPages());
    } else if (kind == "rtree") {
      targets.push_back(wb->tree()->root());
    } else if (kind == "table") {
      const auto& pages = wb->table()->page_ids();
      if (pages.empty()) {
        std::fprintf(stderr, "table has no pages\n");
        return 1;
      }
      targets.push_back(pages.front());
    } else if (kind == "catalog") {
      targets.push_back(PageId{0});
    } else {
      std::fprintf(stderr,
                   "unknown --kind '%s' (signature|rtree|table|catalog)\n",
                   kind.c_str());
      return 2;
    }
  }
  if (targets.empty()) {
    std::fprintf(stderr, "no pages to corrupt\n");
    return 1;
  }
  size_t offset = static_cast<size_t>(args.GetInt("offset", 64)) % kPageSize;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  for (PageId pid : targets) {
    long pos = static_cast<long>(pid * kPageSize + offset);
    unsigned char byte = 0;
    if (std::fseek(f, pos, SEEK_SET) != 0 || std::fread(&byte, 1, 1, f) != 1) {
      std::fprintf(stderr, "cannot read page %llu\n",
                   static_cast<unsigned long long>(pid));
      std::fclose(f);
      return 1;
    }
    byte ^= 0xFF;
    if (std::fseek(f, pos, SEEK_SET) != 0 ||
        std::fwrite(&byte, 1, 1, f) != 1) {
      std::fprintf(stderr, "cannot write page %llu\n",
                   static_cast<unsigned long long>(pid));
      std::fclose(f);
      return 1;
    }
  }
  std::fclose(f);
  std::printf("flipped byte %zu in %zu page(s):",
              offset, targets.size());
  for (PageId pid : targets) {
    std::printf(" %llu", static_cast<unsigned long long>(pid));
  }
  std::printf("\n");
  return 0;
}

// ------------------------------------------------------------------ ingest

/// Resolves one CSV boolean value: dictionary string (local mode only),
/// "#code" (the wire form), or a bare / "v"-prefixed integer (the form
/// `pcube generate` emits).
bool ResolveIngestBool(const std::vector<std::vector<std::string>>* dicts,
                       size_t dim, const std::string& value, uint32_t* out) {
  if (dicts != nullptr && dim < dicts->size()) {
    const auto& dict = (*dicts)[dim];
    for (size_t v = 0; v < dict.size(); ++v) {
      if (dict[v] == value) {
        *out = static_cast<uint32_t>(v);
        return true;
      }
    }
  }
  const char* s = value.c_str();
  if (*s == '#' || *s == 'v') ++s;
  if (*s == '\0') return false;
  char* end = nullptr;
  const unsigned long code = std::strtoul(s, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint32_t>(code);
  return true;
}

/// Reads --csv/--spec rows into WriteBatch insert rows.
std::vector<WriteBatch::Row> LoadIngestRows(
    const Args& args, const std::vector<std::vector<std::string>>* dicts) {
  std::vector<WriteBatch::Row> rows;
  if (!args.Has("csv")) return rows;
  const std::string spec = args.Require("spec");
  std::ifstream in(args.Get("csv"));
  if (!in.is_open()) {
    std::fprintf(stderr, "cannot open %s\n", args.Get("csv").c_str());
    std::exit(1);
  }
  std::string line;
  bool skip_header = args.Has("header");
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (skip_header) {
      skip_header = false;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitList(line);
    if (fields.size() < spec.size()) {
      std::fprintf(stderr, "line %zu: %zu field(s), spec wants %zu\n",
                   line_no, fields.size(), spec.size());
      std::exit(2);
    }
    WriteBatch::Row row;
    size_t bool_dim = 0;
    for (size_t i = 0; i < spec.size(); ++i) {
      if (spec[i] == 'b') {
        uint32_t code = 0;
        if (!ResolveIngestBool(dicts, bool_dim, fields[i], &code)) {
          std::fprintf(stderr, "line %zu: cannot resolve boolean '%s'\n",
                       line_no, fields[i].c_str());
          std::exit(2);
        }
        row.bools.push_back(code);
        ++bool_dim;
      } else if (spec[i] == 'p') {
        row.prefs.push_back(
            static_cast<float>(std::strtod(fields[i].c_str(), nullptr)));
      } else if (spec[i] != '-') {
        std::fprintf(stderr, "bad spec char '%c' (want b, p or -)\n", spec[i]);
        std::exit(2);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

int CmdIngest(const Args& args) {
  const bool remote = args.Has("connect");
  if (remote == args.Has("db")) {
    std::fprintf(stderr, "ingest wants exactly one of --db or --connect\n");
    return 2;
  }
  WriteBatch::Ack ack = WriteBatch::Ack::kApplied;
  const std::string ack_name = args.Get("ack", "applied");
  if (ack_name == "durable") {
    ack = WriteBatch::Ack::kDurable;
  } else if (ack_name != "applied") {
    std::fprintf(stderr, "unknown --ack '%s' (applied|durable)\n",
                 ack_name.c_str());
    return 2;
  }

  std::unique_ptr<Workbench> wb;
  std::unique_ptr<PCubeClient> client;
  if (remote) {
    const std::string connect = args.Get("connect");
    const size_t colon = connect.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--connect wants HOST:PORT\n");
      return 2;
    }
    client = Unwrap(PCubeClient::Connect(
        connect.substr(0, colon),
        static_cast<uint16_t>(
            std::strtoul(connect.c_str() + colon + 1, nullptr, 10))));
  } else {
    wb = OpenDb(args);
  }

  std::vector<WriteBatch::Row> rows =
      LoadIngestRows(args, wb ? &wb->dictionaries() : nullptr);
  std::vector<TupleId> deletes;
  for (const std::string& item : SplitList(args.Get("delete"))) {
    deletes.push_back(
        static_cast<TupleId>(std::strtoull(item.c_str(), nullptr, 10)));
  }
  if (rows.empty() && deletes.empty()) {
    std::fprintf(stderr, "nothing to ingest (--csv/--spec or --delete)\n");
    return 2;
  }

  const size_t batch_rows =
      static_cast<size_t>(std::max<int64_t>(1, args.GetInt("batch", 1024)));
  const std::string tenant = args.Get("tenant", "default");

  Timer total;
  size_t batches = 0;
  double commit_total = 0, commit_max = 0;
  uint32_t max_group = 0;
  WriteResult last;
  auto apply = [&](WriteBatch&& batch) {
    WriteResult r = remote ? Unwrap(client->Write(batch, tenant))
                           : Unwrap(wb->Apply(batch));
    ++batches;
    commit_total += r.commit_seconds;
    commit_max = std::max(commit_max, r.commit_seconds);
    max_group = std::max(max_group, r.group_size);
    last = r;
  };
  for (size_t first = 0; first < rows.size(); first += batch_rows) {
    WriteBatch batch;
    batch.ack = ack;
    const size_t count = std::min(batch_rows, rows.size() - first);
    batch.inserts.assign(std::make_move_iterator(rows.begin() + first),
                         std::make_move_iterator(rows.begin() + first + count));
    apply(std::move(batch));
  }
  if (!deletes.empty()) {
    WriteBatch batch;
    batch.ack = ack;
    batch.deletes = std::move(deletes);
    apply(std::move(batch));
  }
  const double seconds = total.ElapsedSeconds();
  const size_t total_rows =
      rows.size() + (args.Has("delete")
                         ? SplitList(args.Get("delete")).size()
                         : 0);
  std::printf(
      "ingested %zu row(s) in %zu batch(es), %.3f s (%.0f rows/s)\n"
      "  commit: mean %.3f ms, max %.3f ms, max group %u, last lsn %llu, "
      "epoch %llu%s\n",
      total_rows, batches, seconds,
      seconds > 0 ? static_cast<double>(total_rows) / seconds : 0.0,
      batches > 0 ? commit_total / static_cast<double>(batches) * 1e3 : 0.0,
      commit_max * 1e3, max_group,
      static_cast<unsigned long long>(last.lsn),
      static_cast<unsigned long long>(last.epoch),
      last.durable ? "" : " (NOT durable: RAM-backed service)");
  if (!remote && args.Has("save")) {
    if (Status st = wb->Save(); !st.ok()) Die(st);
    std::printf("checkpointed into %s\n", args.Get("db").c_str());
  }
  return 0;
}

// ----------------------------------------------------------- serve / query

volatile std::sig_atomic_t g_stop_requested = 0;
void HandleStopSignal(int) { g_stop_requested = 1; }

int CmdServe(const Args& args) {
  ServiceHandle h = OpenService(args);
  std::unique_ptr<QueryLog> log;
  if (args.Has("query-log")) {
    log = Unwrap(QueryLog::OpenFile(args.Get("query-log")));
  }
  ServerOptions options;
  options.port = static_cast<uint16_t>(args.GetInt("port", 7333));
  options.workers = static_cast<size_t>(args.GetInt("workers", 0));
  options.max_connections = static_cast<size_t>(args.GetInt("max-conns", 64));
  options.admission.queue_cap =
      static_cast<size_t>(args.GetInt("queue-cap", 64));
  options.admission.tenant_rate =
      std::strtod(args.Get("tenant-rate", "0").c_str(), nullptr);
  options.admission.tenant_burst =
      std::strtod(args.Get("tenant-burst", "0").c_str(), nullptr);

  PCubeServer server(h.service, options, log.get());
  if (Status st = server.Start(); !st.ok()) Die(st);
  std::printf("pcube serve: listening on 127.0.0.1:%u "
              "(%zu shard%s, queue cap %zu, tenant rate %s)\n",
              static_cast<unsigned>(server.port()), h.service->num_shards(),
              h.service->num_shards() == 1 ? "" : "s",
              options.admission.queue_cap,
              options.admission.tenant_rate > 0
                  ? args.Get("tenant-rate").c_str()
                  : "unlimited");
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("pcube serve: shutting down (served %llu request(s))\n",
              static_cast<unsigned long long>(server.requests_served()));
  server.Stop();
  return 0;
}

/// Client-mode predicates: no database (hence no dictionary), so columns
/// are dimension indices and values are "#code" or bare numeric codes.
PredicateSet ParseWhereRaw(const std::string& where) {
  PredicateSet preds;
  if (where.empty()) return preds;
  for (const std::string& term : SplitList(where)) {
    const size_t eq = term.find('=');
    bool ok = eq != std::string::npos;
    int dim = 0;
    uint32_t code = 0;
    if (ok) {
      char* end = nullptr;
      dim = static_cast<int>(std::strtol(term.c_str(), &end, 10));
      ok = end == term.c_str() + eq && dim >= 0;
      std::string value = term.substr(eq + 1);
      if (!value.empty() && value[0] == '#') value.erase(0, 1);
      char* vend = nullptr;
      code = static_cast<uint32_t>(std::strtoul(value.c_str(), &vend, 10));
      ok = ok && !value.empty() && vend == value.c_str() + value.size();
    }
    if (!ok) {
      std::fprintf(stderr,
                   "bad predicate '%s' (client mode wants dim=#code)\n",
                   term.c_str());
      std::exit(2);
    }
    preds.Add({dim, code});
  }
  return preds;
}

int CmdQuery(const Args& args) {
  const std::string connect = args.Require("connect");
  const size_t colon = connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants HOST:PORT\n");
    return 2;
  }
  const std::string host = connect.substr(0, colon);
  const uint16_t port = static_cast<uint16_t>(
      std::strtoul(connect.c_str() + colon + 1, nullptr, 10));

  PredicateSet preds = ParseWhereRaw(args.Get("where"));
  QueryRequest request;
  if (args.Has("k")) {
    const size_t k = static_cast<size_t>(args.GetInt("k", 10));
    std::shared_ptr<const RankingFunction> f;
    if (args.Has("target")) {
      std::vector<double> target = ParseDoubles(args.Get("target"));
      std::vector<double> weights =
          args.Has("tweights") ? ParseDoubles(args.Get("tweights"))
                               : std::vector<double>(target.size(), 1.0);
      f = std::make_shared<WeightedL2Ranking>(std::move(target),
                                              std::move(weights));
    } else if (args.Has("weights")) {
      f = std::make_shared<LinearRanking>(ParseDoubles(args.Get("weights")));
    } else {
      std::fprintf(stderr,
                   "client-mode top-k needs --weights or --target (the "
                   "preference dimensionality is not known locally)\n");
      return 2;
    }
    request = QueryRequest::TopK(std::move(preds), std::move(f), k);
  } else {
    SkylineQueryOptions options;
    options.skyband_k = static_cast<size_t>(args.GetInt("band", 1));
    if (args.Has("origin")) {
      for (double v : ParseDoubles(args.Get("origin"))) {
        options.origin.push_back(static_cast<float>(v));
      }
    }
    request = QueryRequest::Skyline(std::move(preds), options);
  }
  request.deadline_ms = static_cast<uint64_t>(args.GetInt("deadline-ms", 0));

  auto client = Unwrap(PCubeClient::Connect(host, port));
  PCubeClient::ServerStats stats;
  auto resp = Unwrap(client->Run(request, args.Get("tenant", "default"),
                                 &stats));
  std::printf("%zu result(s) [%s plan, cache: %s, server %.3f ms, "
              "queue wait %.3f ms, %llu page reads, trace %llu]\n",
              resp.tids.size(),
              resp.estimate.choice == PlanChoice::kSignature
                  ? "signature"
                  : "boolean-first",
              CacheOutcomeName(resp.cache), resp.seconds * 1e3,
              stats.queue_wait_seconds * 1e3,
              static_cast<unsigned long long>(stats.io_reads),
              static_cast<unsigned long long>(stats.trace_id));
  const size_t limit = static_cast<size_t>(args.GetInt("limit", 50));
  for (size_t i = 0; i < resp.tids.size() && i < limit; ++i) {
    std::printf("  #%llu", static_cast<unsigned long long>(resp.tids[i]));
    if (!resp.scores.empty()) std::printf("  (score %.6f)", resp.scores[i]);
    std::printf("\n");
  }
  if (resp.tids.size() > limit) std::printf("  ... (--limit to see more)\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: pcube <generate|build|info|explain|skyline|topk"
               "|ingest|verify|corrupt|serve|query> [--options]\n"
               "run `pcube --help` for the full option list\n");
  return 2;
}

int Help() {
  std::printf(
      "pcube — P-Cube preference queries over multi-dimensional data\n"
      "\n"
      "commands:\n"
      "  generate --rows N --out F     emit a synthetic CSV\n"
      "           [--bool K --pref M --card C --dist D --seed S]\n"
      "  build    --csv F --spec S --db F [--header]\n"
      "                                import a CSV and persist all\n"
      "                                structures to one file\n"
      "  info     --db F               stored relation + structure stats\n"
      "  explain  --db F [--where W]   cost estimates and plan choice\n"
      "  skyline  --db F [--where W] [--band K] [--origin X,..] [--limit N]\n"
      "  topk     --db F --k N [--where W]\n"
      "           (--weights W,.. | --target T,.. [--tweights W,..])\n"
      "  ingest   (--db F | --connect HOST:PORT)\n"
      "           [--csv F --spec S [--header]] [--delete TID,..]\n"
      "           [--batch N] [--ack applied|durable] [--tenant T] [--save]\n"
      "                                stream WriteBatches through the WAL\n"
      "                                (local) or as kWrite frames (remote)\n"
      "  verify   --db F               WAL sidecar + full integrity walk\n"
      "                                (exit 1 on damage)\n"
      "  corrupt  --db F [--kind signature|rtree|table|catalog]\n"
      "           [--page N] [--offset K] [--wal]  flip bytes (testing tool)\n"
      "  serve    --db F [--shards N] [--port P] [--workers N]\n"
      "           [--queue-cap N] [--tenant-rate R] [--tenant-burst B]\n"
      "           [--max-conns N] [--query-log FILE]\n"
      "                                serve the database over TCP\n"
      "                                (127.0.0.1 only) with per-tenant\n"
      "                                admission control and load shedding\n"
      "  query    --connect HOST:PORT [--tenant T] [--deadline-ms N]\n"
      "           [--where \"0=#3,..\"] [--limit N]\n"
      "           (--k N (--weights W,.. | --target T,.. [--tweights W,..])\n"
      "            | [--band K] [--origin X,..])\n"
      "                                send one query to a running server\n"
      "\n"
      "query options (skyline, topk):\n"
      "  --plan auto|signature|boolean  plan selection (default auto: the\n"
      "                                 cost model picks; a forced plan\n"
      "                                 bypasses the result cache)\n"
      "  --shards N                     scatter-gather over N in-process\n"
      "                                 shards (boolean-row hash partition;\n"
      "                                 results identical to unsharded).\n"
      "                                 `explain` prints the shard plan\n"
      "  --deadline-ms N                fail the query with Timeout beyond N\n"
      "  --metrics                      print a Prometheus-style dump of all\n"
      "                                 engine/cache/buffer-pool metrics\n"
      "  --query-log FILE               append one JSONL trace record (plan,\n"
      "                                 cache outcome, counters, spans)\n"
      "\n"
      "database options (every command with --db):\n"
      "  --cache MB                     per-level budget for the query\n"
      "                                 caches: L1 semantic result cache and\n"
      "                                 L2 decoded-signature fragment cache\n"
      "                                 (default 16)\n"
      "  --no-cache                     disable both cache levels\n"
      "  --fault-plan SPEC              inject storage faults, e.g.\n"
      "                                 \"seed=7,read_error=0.01\"\n"
      "\n"
      "predicates: --where \"col=value,col=value\"; values may use the CSV\n"
      "dictionary (\"color=red\"), raw codes (\"color=#3\") or dimension\n"
      "indices (\"2=#3\").\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "help" || cmd == "-h") return Help();
  Args args(argc, argv);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "build") return CmdBuild(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "explain") return CmdExplain(args);
  if (cmd == "skyline") return CmdSkyline(args);
  if (cmd == "topk") return CmdTopK(args);
  if (cmd == "ingest") return CmdIngest(args);
  if (cmd == "verify") return CmdVerify(args);
  if (cmd == "corrupt") return CmdCorrupt(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "query") return CmdQuery(args);
  return Usage();
}
