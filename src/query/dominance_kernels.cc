#include "query/dominance_kernels.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/simd/simd.h"

#if defined(__x86_64__) && !defined(PCUBE_SIMD_DISABLED)
#define PCUBE_DOMINANCE_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace pcube {

void DominanceWindow::Reset(size_t dims) {
  dims_ = dims;
  size_ = 0;
  capacity_ = 0;
  cols_.clear();
}

void DominanceWindow::Grow(size_t new_capacity) {
  // Capacity stays a multiple of four so every column begins 32B-aligned
  // (column d starts at d * capacity_ doubles) and full blocks use aligned
  // loads.
  new_capacity = (new_capacity + 3) & ~size_t{3};
  simd::AlignedVector<double> next(dims_ * new_capacity);
  for (size_t d = 0; d < dims_; ++d) {
    std::copy_n(cols_.data() + d * capacity_, size_,
                next.data() + d * new_capacity);
  }
  cols_ = std::move(next);
  capacity_ = new_capacity;
}

void DominanceWindow::Append(const double* coords) {
  if (size_ == capacity_) Grow(capacity_ == 0 ? 8 : capacity_ * 2);
  for (size_t d = 0; d < dims_; ++d) cols_[d * capacity_ + size_] = coords[d];
  ++size_;
}

size_t DominanceWindow::CountDominatorsScalar(const double* cand,
                                              size_t limit) const {
  size_t count = 0;
  for (size_t i = 0; i < size_; ++i) {
    bool all_le = true;
    bool one_lt = false;
    for (size_t d = 0; d < dims_; ++d) {
      double m = Col(d)[i];
      if (m > cand[d]) {
        all_le = false;
        break;
      }
      if (m < cand[d]) one_lt = true;
    }
    if (all_le && one_lt && ++count >= limit) return count;
  }
  return count;
}

#if defined(PCUBE_DOMINANCE_HAVE_AVX2)

__attribute__((target("avx2"))) size_t DominanceWindow::CountDominatorsAvx2(
    const double* cand, size_t limit) const {
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= size_; i += 4) {
    __m256d all_le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d any_lt = _mm256_setzero_pd();
    for (size_t d = 0; d < dims_; ++d) {
      __m256d m = _mm256_load_pd(Col(d) + i);
      __m256d c = _mm256_set1_pd(cand[d]);
      all_le = _mm256_and_pd(all_le, _mm256_cmp_pd(m, c, _CMP_LE_OQ));
      if (_mm256_movemask_pd(all_le) == 0) break;  // no lane can dominate
      any_lt = _mm256_or_pd(any_lt, _mm256_cmp_pd(m, c, _CMP_LT_OQ));
    }
    int dom = _mm256_movemask_pd(_mm256_and_pd(all_le, any_lt));
    count += static_cast<size_t>(std::popcount(static_cast<unsigned>(dom)));
    if (count >= limit) return limit;
  }
  for (; i < size_; ++i) {
    bool all_le = true;
    bool one_lt = false;
    for (size_t d = 0; d < dims_; ++d) {
      double m = Col(d)[i];
      if (m > cand[d]) {
        all_le = false;
        break;
      }
      if (m < cand[d]) one_lt = true;
    }
    if (all_le && one_lt && ++count >= limit) return count;
  }
  return count;
}

#endif  // PCUBE_DOMINANCE_HAVE_AVX2

size_t DominanceWindow::CountDominators(const double* cand,
                                        size_t limit) const {
  PCUBE_DCHECK_GE(limit, size_t{1});
  static Counter* calls = MetricsRegistry::Default().GetCounter(
      "pcube_simd_kernel_calls_total{kernel=\"dominance_batch\"}");
  calls->Increment();
#if defined(PCUBE_DOMINANCE_HAVE_AVX2)
  if (simd::ActiveSimdLevel() == simd::SimdLevel::kAvx2) {
    return CountDominatorsAvx2(cand, limit);
  }
#endif
  return CountDominatorsScalar(cand, limit);
}

}  // namespace pcube
