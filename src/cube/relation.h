// The relation model of the paper (§III): a relation R with boolean
// dimensions A1..Ab (categorical, queried with equality predicates) and
// preference dimensions N1..Np (numeric, queried with top-k / skyline
// criteria). Dataset is the in-memory, column-sliced form from which every
// persistent structure (heap file, R-tree, boolean indices, P-Cube) is built.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace pcube {

/// Identifies one tuple of the relation; dense, 0-based.
using TupleId = uint64_t;

/// Dimensional layout of a relation.
struct Schema {
  int num_bool = 0;
  int num_pref = 0;
  /// Cardinality of each boolean dimension (values are coded 0..card-1).
  std::vector<uint32_t> bool_cardinality;

  bool Valid() const {
    return num_bool >= 0 && num_pref >= 1 &&
           bool_cardinality.size() == static_cast<size_t>(num_bool);
  }
};

/// In-memory relation instance, row-major per attribute class.
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, uint64_t num_tuples)
      : schema_(std::move(schema)),
        num_tuples_(num_tuples),
        bools_(num_tuples * schema_.num_bool),
        prefs_(num_tuples * schema_.num_pref) {
    PCUBE_CHECK(schema_.Valid());
  }

  const Schema& schema() const { return schema_; }
  uint64_t num_tuples() const { return num_tuples_; }
  int num_bool() const { return schema_.num_bool; }
  int num_pref() const { return schema_.num_pref; }

  uint32_t BoolValue(TupleId t, int dim) const {
    PCUBE_DCHECK_LT(t, num_tuples_);
    return bools_[t * schema_.num_bool + dim];
  }
  void SetBoolValue(TupleId t, int dim, uint32_t v) {
    PCUBE_DCHECK_LT(v, schema_.bool_cardinality[dim]);
    bools_[t * schema_.num_bool + dim] = v;
  }

  float PrefValue(TupleId t, int dim) const {
    PCUBE_DCHECK_LT(t, num_tuples_);
    return prefs_[t * schema_.num_pref + dim];
  }
  void SetPrefValue(TupleId t, int dim, float v) {
    prefs_[t * schema_.num_pref + dim] = v;
  }

  /// All preference coordinates of tuple `t`.
  std::span<const float> PrefPoint(TupleId t) const {
    return {prefs_.data() + t * schema_.num_pref,
            static_cast<size_t>(schema_.num_pref)};
  }
  std::span<const uint32_t> BoolRow(TupleId t) const {
    return {bools_.data() + t * schema_.num_bool,
            static_cast<size_t>(schema_.num_bool)};
  }

  /// Appends one tuple; returns its TupleId.
  TupleId Append(std::span<const uint32_t> bool_vals,
                 std::span<const float> pref_vals) {
    PCUBE_CHECK_EQ(bool_vals.size(), static_cast<size_t>(schema_.num_bool));
    PCUBE_CHECK_EQ(pref_vals.size(), static_cast<size_t>(schema_.num_pref));
    bools_.insert(bools_.end(), bool_vals.begin(), bool_vals.end());
    prefs_.insert(prefs_.end(), pref_vals.begin(), pref_vals.end());
    return num_tuples_++;
  }

 private:
  Schema schema_;
  uint64_t num_tuples_ = 0;
  std::vector<uint32_t> bools_;
  std::vector<float> prefs_;
};

}  // namespace pcube
