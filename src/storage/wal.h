// Write-ahead log with group commit (DESIGN.md §15).
//
// The log is its own little page store next to the database file
// (`<path>.wal`): page 0 is a header (magic, version, the LSN expected at
// the head of the record region), pages 1..N hold variable-length records
// packed back to back, spanning page boundaries. Each record is
//
//   u32 crc | u32 len | u64 lsn | payload[len]        (little-endian)
//
// with the CRC-32 taken over (len, lsn, payload). Sixteen zero bytes where
// a record header should be mark the clean end of the log. The payload is
// opaque to this layer — the Workbench logs encoded WriteBatches plus its
// replay cursor (workbench/write_path.h).
//
// Durability protocol: Stage() appends a record to an in-memory buffer and
// assigns its LSN; WaitDurable(lsn) blocks until that record is on stable
// storage. The first waiter becomes the *leader*: it takes every staged
// record, writes the affected pages (only the tail page is ever rewritten —
// committed bytes are never touched again, so a torn tail-page write can
// only damage records that were never acknowledged), issues ONE
// PageManager::Sync() for the whole group, then wakes the followers. That
// single fsync amortized over every concurrently staged batch is the entire
// point: commit latency is one disk flush regardless of writer count.
//
// Crash recovery: Replay() walks the record region, verifies each CRC and
// that LSNs are consecutive, and hands intact records to the visitor. The
// first CRC failure (or a record extending past the written region) is a
// *torn tail* — the crash interrupted the leader mid-commit — and is
// discarded: by the protocol above no such record was ever acknowledged.
// Damage BEHIND a valid record (an LSN gap) is real corruption and fails
// the replay. Records the checkpoint already folded into the page file
// (stale LSNs from a crash between header rewrite and tail reset) are
// recognized by LSN and skipped.
//
// The page stack mirrors the main store: base file/memory manager, optional
// fault injection (crash tests tear the tail page deterministically), then
// ChecksumPageManager in memory-only mode — page CRCs catch intra-run rot,
// while the per-record CRC is the cross-restart authority.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/fault_injection.h"
#include "storage/page_manager.h"

namespace pcube {

class Counter;
class Histogram;

/// Per-record payload cap (a WriteBatch of kMaxBatchRows wide rows fits).
inline constexpr uint32_t kMaxWalPayload = 64u << 20;

/// Durable, group-committed record log.
class Wal {
 public:
  struct Options {
    /// Log file path; empty keeps the log in RAM (no crash durability, but
    /// the commit protocol — and its metrics — behave identically).
    std::string path;
    /// Start fresh, discarding any existing log (the Build path).
    bool truncate = false;
    /// Fault injection below the checksum layer (crash tests).
    FaultPlan fault_plan;
  };

  /// One replayed record.
  struct Record {
    uint64_t lsn = 0;
    std::string payload;
  };

  /// What a Replay()/Inspect() walk found.
  struct InspectReport {
    uint64_t start_lsn = 1;    ///< header: LSN expected at the region head
    uint64_t num_records = 0;  ///< intact records
    uint64_t last_lsn = 0;     ///< LSN of the last intact record (0 = none)
    bool torn_tail = false;    ///< unacknowledged suffix discarded
    /// Structural problems (bad header, LSN gap behind valid records, ...).
    /// A torn tail alone is NOT an error — it is the expected crash residue.
    std::vector<std::string> errors;
    bool ok() const { return errors.empty(); }
  };

  /// Opens (or creates) the log. An existing file's header is validated.
  static Result<std::unique_ptr<Wal>> Open(const Options& options);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Walks every intact record in LSN order through `visit`, then positions
  /// the append cursor after the last one, zeroing any torn tail so the log
  /// is clean again. Call once, before the first Stage().
  Result<InspectReport> Replay(
      const std::function<Status(const Record&)>& visit);

  /// Read-only structural validation of a standalone log file (the engine
  /// behind `pcube verify`): record CRCs, LSN monotonicity, torn tail.
  static Result<InspectReport> Inspect(const std::string& path);

  /// Appends one record to the staging buffer and returns its LSN. The
  /// record is NOT durable until WaitDurable(lsn) returns OK.
  Result<uint64_t> Stage(const std::string& payload);

  /// Blocks until every record with LSN <= `lsn` is on stable storage,
  /// joining (or leading) a group commit. `group_size`, when non-null,
  /// receives the number of records the group's single Sync() covered.
  /// `lsn` must have been returned by a prior Stage(); an LSN at or past
  /// next_lsn() is InvalidArgument (it could never become durable).
  Status WaitDurable(uint64_t lsn, uint32_t* group_size = nullptr);

  /// Logically empties the log: records with LSN < next_lsn() are declared
  /// folded into the checkpointed page file. Caller must have drained all
  /// writers first (no staged-but-undurable records).
  Status Checkpoint();

  /// False for RAM-backed logs: commits complete but survive nothing.
  bool durable() const { return file_backed_; }

  uint64_t next_lsn() const;
  uint64_t durable_lsn() const;
  uint64_t sync_count() const;

  /// The fault-injection layer, or null (tests arm torn tail writes).
  FaultInjectingPageManager* faults() { return faults_; }

 private:
  Wal();

  /// Leader body: appends `bytes` to the record region (rewriting the tail
  /// page, allocating new ones) and issues one Sync().
  Status WriteAndSync(const std::string& bytes);
  Status WriteHeader();
  /// Loads tail-page state for appending at byte `region_bytes` of the
  /// record region.
  Status SeekTail(uint64_t region_bytes);

  // pcube-lint: begin-lock-free(fixed by Open()/Create() before the log is
  // handed to any writer; never reassigned afterwards)
  std::unique_ptr<PageManager> pm_;
  FaultInjectingPageManager* faults_ = nullptr;  // owned via pm_ chain
  bool file_backed_ = false;
  // pcube-lint: end-lock-free

  mutable Mutex mu_;
  std::string pending_ GUARDED_BY(mu_);      ///< staged, not yet written
  uint64_t next_lsn_ GUARDED_BY(mu_) = 1;    ///< next Stage() gets this
  uint64_t durable_lsn_ GUARDED_BY(mu_) = 0;
  uint64_t start_lsn_ GUARDED_BY(mu_) = 1;   ///< header copy
  bool leader_active_ GUARDED_BY(mu_) = false;
  uint32_t last_group_size_ GUARDED_BY(mu_) = 0;
  Status broken_ GUARDED_BY(mu_);  ///< sticky: a failed commit kills the log
  CondVar cv_;

  // Append cursor (leader-only once commits start; Replay positions it).
  PageId tail_page_ GUARDED_BY(mu_) = 1;
  size_t tail_offset_ GUARDED_BY(mu_) = 0;
  Page tail_ GUARDED_BY(mu_);

  std::atomic<uint64_t> syncs_{0};
  // pcube-lint: begin-lock-free(registered once in the constructor; the
  // metric objects themselves are internally synchronized)
  Counter* commits_metric_;
  Counter* syncs_metric_;
  Histogram* group_size_metric_;
  // pcube-lint: end-lock-free
};

}  // namespace pcube
