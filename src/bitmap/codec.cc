#include "bitmap/codec.h"

#include <algorithm>

#include "common/bit_util.h"

namespace pcube {

namespace {

constexpr uint32_t kWahGroupBits = 31;
constexpr uint32_t kWahFillFlag = 0x80000000u;
constexpr uint32_t kWahFillValue = 0x40000000u;
constexpr uint32_t kWahMaxRun = 0x3FFFFFFFu;
constexpr uint32_t kWahPayloadMask = 0x7FFFFFFFu;

void PutVarint(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const uint8_t* data, size_t size, size_t* offset, uint32_t* v) {
  uint32_t result = 0;
  int shift = 0;
  while (*offset < size && shift <= 28) {
    uint8_t byte = data[(*offset)++];
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

/// Reads 31 bits of `bits` starting at group `g` (zero-padded at the tail).
uint32_t WahGroup(const BitVector& bits, size_t g) {
  uint32_t v = 0;
  size_t base = g * kWahGroupBits;
  size_t end = std::min(base + kWahGroupBits, bits.size());
  for (size_t i = base; i < end; ++i) {
    if (bits.Get(i)) v |= 1u << (i - base);
  }
  return v;
}

void EncodeVerbatim(const BitVector& bits, std::vector<uint8_t>* out) {
  size_t nbytes = bit_util::Bytes(bits.size());
  size_t start = out->size();
  out->resize(start + nbytes, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits.Get(i)) (*out)[start + (i >> 3)] |= uint8_t{1} << (i & 7);
  }
}

void EncodeWah(const BitVector& bits, std::vector<uint8_t>* out) {
  size_t groups = bit_util::CeilDiv(bits.size(), kWahGroupBits);
  std::vector<uint32_t> words;
  uint32_t run_len = 0;
  bool run_val = false;
  auto flush_run = [&]() {
    while (run_len > 0) {
      uint32_t chunk = std::min(run_len, kWahMaxRun);
      words.push_back(kWahFillFlag | (run_val ? kWahFillValue : 0) | chunk);
      run_len -= chunk;
    }
  };
  for (size_t g = 0; g < groups; ++g) {
    uint32_t v = WahGroup(bits, g);
    if (v == 0 || v == kWahPayloadMask) {
      bool val = (v != 0);
      if (run_len > 0 && val != run_val) flush_run();
      run_val = val;
      ++run_len;
    } else {
      flush_run();
      words.push_back(v);
    }
  }
  flush_run();
  for (uint32_t w : words) {
    size_t p = out->size();
    out->resize(p + 4);
    bit_util::StoreLE<uint32_t>(out->data() + p, w);
  }
}

void EncodeSparse(const BitVector& bits, std::vector<uint8_t>* out) {
  std::vector<uint32_t> pos = bits.SetPositions();
  PutVarint(static_cast<uint32_t>(pos.size()), out);
  uint32_t prev = 0;
  for (uint32_t p : pos) {
    PutVarint(p - prev, out);
    prev = p;
  }
}

size_t SparseSize(const BitVector& bits) {
  std::vector<uint8_t> tmp;
  EncodeSparse(bits, &tmp);
  return tmp.size();
}

size_t WahSize(const BitVector& bits) {
  std::vector<uint8_t> tmp;
  EncodeWah(bits, &tmp);
  return tmp.size();
}

}  // namespace

void BitmapCodec::EncodeWith(BitmapScheme scheme, const BitVector& bits,
                             std::vector<uint8_t>* out) {
  PCUBE_CHECK_LE(bits.size(), kMaxBits);
  out->push_back(static_cast<uint8_t>(scheme));
  size_t p = out->size();
  out->resize(p + 2);
  bit_util::StoreLE<uint16_t>(out->data() + p, static_cast<uint16_t>(bits.size()));
  switch (scheme) {
    case BitmapScheme::kVerbatim:
      EncodeVerbatim(bits, out);
      break;
    case BitmapScheme::kWah:
      EncodeWah(bits, out);
      break;
    case BitmapScheme::kSparse:
      EncodeSparse(bits, out);
      break;
  }
}

void BitmapCodec::Encode(const BitVector& bits, std::vector<uint8_t>* out) {
  size_t verbatim = bit_util::Bytes(bits.size());
  size_t wah = WahSize(bits);
  size_t sparse = SparseSize(bits);
  BitmapScheme best = BitmapScheme::kVerbatim;
  size_t best_size = verbatim;
  if (wah < best_size) {
    best = BitmapScheme::kWah;
    best_size = wah;
  }
  if (sparse < best_size) {
    best = BitmapScheme::kSparse;
  }
  EncodeWith(best, bits, out);
}

size_t BitmapCodec::EncodedSize(const BitVector& bits) {
  size_t body = std::min({bit_util::Bytes(bits.size()), WahSize(bits),
                          SparseSize(bits)});
  return 3 + body;  // scheme byte + u16 length
}

Result<BitmapScheme> BitmapCodec::PeekScheme(const uint8_t* data, size_t size) {
  if (size < 1) return Status::Corruption("empty bitmap encoding");
  uint8_t tag = data[0];
  if (tag > static_cast<uint8_t>(BitmapScheme::kSparse)) {
    return Status::Corruption("unknown bitmap scheme tag");
  }
  return static_cast<BitmapScheme>(tag);
}

Status BitmapCodec::Decode(const uint8_t* data, size_t size, size_t* offset,
                           BitVector* out) {
  if (*offset + 3 > size) return Status::Corruption("bitmap header truncated");
  uint8_t tag = data[*offset];
  if (tag > static_cast<uint8_t>(BitmapScheme::kSparse)) {
    return Status::Corruption("unknown bitmap scheme tag");
  }
  uint16_t nbits = bit_util::LoadLE<uint16_t>(data + *offset + 1);
  *offset += 3;
  *out = BitVector(nbits);
  switch (static_cast<BitmapScheme>(tag)) {
    case BitmapScheme::kVerbatim: {
      size_t nbytes = bit_util::Bytes(nbits);
      if (*offset + nbytes > size) return Status::Corruption("verbatim body truncated");
      for (size_t i = 0; i < nbits; ++i) {
        if (data[*offset + (i >> 3)] & (uint8_t{1} << (i & 7))) out->Set(i);
      }
      *offset += nbytes;
      return Status::OK();
    }
    case BitmapScheme::kWah: {
      size_t bit = 0;
      size_t total_groups = bit_util::CeilDiv(nbits, kWahGroupBits);
      size_t groups_done = 0;
      while (groups_done < total_groups) {
        if (*offset + 4 > size) return Status::Corruption("WAH body truncated");
        uint32_t w = bit_util::LoadLE<uint32_t>(data + *offset);
        *offset += 4;
        if (w & kWahFillFlag) {
          bool val = (w & kWahFillValue) != 0;
          uint32_t run = w & kWahMaxRun;
          if (groups_done + run > total_groups) {
            return Status::Corruption("WAH run overflows bit count");
          }
          if (val) {
            for (uint32_t g = 0; g < run; ++g) {
              size_t end = std::min(bit + kWahGroupBits, static_cast<size_t>(nbits));
              for (size_t i = bit; i < end; ++i) out->Set(i);
              bit += kWahGroupBits;
            }
          } else {
            bit += static_cast<size_t>(run) * kWahGroupBits;
          }
          groups_done += run;
        } else {
          size_t end = std::min(bit + kWahGroupBits, static_cast<size_t>(nbits));
          for (size_t i = bit; i < end; ++i) {
            if (w & (1u << (i - bit))) out->Set(i);
          }
          bit += kWahGroupBits;
          ++groups_done;
        }
      }
      return Status::OK();
    }
    case BitmapScheme::kSparse: {
      uint32_t count = 0;
      if (!GetVarint(data, size, offset, &count)) {
        return Status::Corruption("sparse count truncated");
      }
      uint32_t pos = 0;
      for (uint32_t i = 0; i < count; ++i) {
        uint32_t delta = 0;
        if (!GetVarint(data, size, offset, &delta)) {
          return Status::Corruption("sparse delta truncated");
        }
        pos += delta;
        if (pos >= nbits) return Status::Corruption("sparse position out of range");
        out->Set(pos);
      }
      return Status::OK();
    }
  }
  return Status::Corruption("unreachable");
}

}  // namespace pcube
