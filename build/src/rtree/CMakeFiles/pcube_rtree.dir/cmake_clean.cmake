file(REMOVE_RECURSE
  "CMakeFiles/pcube_rtree.dir/geometry.cc.o"
  "CMakeFiles/pcube_rtree.dir/geometry.cc.o.d"
  "CMakeFiles/pcube_rtree.dir/rstar_tree.cc.o"
  "CMakeFiles/pcube_rtree.dir/rstar_tree.cc.o.d"
  "libpcube_rtree.a"
  "libpcube_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
