// Unit tests for the BooleanProbe family and the TupleVerifier.
#include <gtest/gtest.h>

#include "baselines/index_merge.h"
#include "common/random.h"
#include "core/pcube.h"
#include "data/generators.h"
#include "query/verifier.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

TEST(ProbeTest, TrueProbePassesEverything) {
  TrueProbe probe;
  EXPECT_TRUE(*probe.Test({1, 2, 3}));
  EXPECT_TRUE(*probe.TestData({1}, 42));
  EXPECT_TRUE(probe.exact());
  EXPECT_EQ(probe.partials_loaded(), 0u);
}

TEST(ProbeTest, RidSetProbeFiltersOnlyTuples) {
  RidSetProbe probe({5, 7, 9});
  EXPECT_TRUE(*probe.Test({1, 1}));  // nodes always pass
  EXPECT_TRUE(*probe.TestData({1, 1, 1}, 5));
  EXPECT_FALSE(*probe.TestData({1, 1, 2}, 6));
  EXPECT_TRUE(*probe.TestData({2, 2, 2}, 9));
}

class ProbeFixture : public ::testing::Test {
 protected:
  ProbeFixture() {
    SyntheticConfig config;
    config.num_tuples = 2000;
    config.num_bool = 2;
    config.num_pref = 2;
    config.bool_cardinality = 3;
    config.seed = 501;
    WorkbenchOptions options;
    options.rtree.max_entries = 8;
    options.pcube.build_bloom = true;
    auto wb = Workbench::Build(GenerateSynthetic(config), options);
    PCUBE_CHECK(wb.ok());
    wb_ = std::move(*wb);
  }

  std::unique_ptr<Workbench> wb_;
};

TEST_F(ProbeFixture, SignatureProbeAndsItsCursors) {
  PredicateSet both{{0, 1}, {1, 2}};
  auto combined = wb_->cube()->MakeProbe(both);
  ASSERT_TRUE(combined.ok());
  auto a = wb_->cube()->MakeProbe({{0, 1}});
  auto b = wb_->cube()->MakeProbe({{1, 2}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Random rng(502);
  int levels = wb_->cube()->levels();
  uint32_t m = wb_->cube()->fanout();
  for (int i = 0; i < 1000; ++i) {
    size_t len = 1 + rng.Uniform(levels);
    Path p(len);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(m));
    auto rc = (*combined)->Test(p);
    auto ra = (*a)->Test(p);
    auto rb = (*b)->Test(p);
    ASSERT_TRUE(rc.ok());
    EXPECT_EQ(*rc, *ra && *rb) << PathToString(p);
  }
}

TEST_F(ProbeFixture, SignatureProbeCountsPartialLoads) {
  auto probe = wb_->cube()->MakeProbe({{0, 0}, {1, 0}});
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ((*probe)->partials_loaded(), 0u);
  ASSERT_TRUE((*probe)->Test({1}).ok());
  EXPECT_GE((*probe)->partials_loaded(), 1u);
  EXPECT_TRUE((*probe)->exact());
}

TEST_F(ProbeFixture, BloomProbeNotExactButNeverFalseNegative) {
  PredicateSet preds{{0, 2}};
  auto bloom = wb_->cube()->MakeBloomProbe(preds);
  ASSERT_TRUE(bloom.ok());
  EXPECT_FALSE((*bloom)->exact());
  auto exact = wb_->cube()->MakeProbe(preds);
  ASSERT_TRUE(exact.ok());
  Random rng(503);
  int levels = wb_->cube()->levels();
  uint32_t m = wb_->cube()->fanout();
  for (int i = 0; i < 1000; ++i) {
    size_t len = 1 + rng.Uniform(levels);
    Path p(len);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(m));
    if (*(*exact)->Test(p)) {
      EXPECT_TRUE(*(*bloom)->Test(p)) << PathToString(p);
    }
  }
}

TEST_F(ProbeFixture, VerifierChecksAgainstHeapFile) {
  PredicateSet preds{{0, 1}};
  TupleVerifier verifier(wb_->table(), preds);
  int verified_true = 0;
  for (TupleId t = 0; t < 200; ++t) {
    auto r = verifier.Verify(t);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, wb_->data().BoolValue(t, 0) == 1u);
    if (*r) ++verified_true;
  }
  EXPECT_GT(verified_true, 0);
  // Verification I/O lands in the DBool category.
  ASSERT_TRUE(wb_->ColdStart().ok());
  ASSERT_TRUE(verifier.Verify(0).ok());
  EXPECT_EQ(wb_->IoSince().ReadCount(IoCategory::kBooleanVerify), 1u);
  // Out-of-range tuples fail cleanly.
  EXPECT_FALSE(verifier.Verify(999999).ok());
}

TEST_F(ProbeFixture, EmptyCellProbePrunesAll) {
  // Cardinality is 3; value 2 exists, value 99 cannot.
  Schema schema = wb_->data().schema();
  (void)schema;
  auto probe = wb_->cube()->MakeProbe({{0, 99}});
  ASSERT_TRUE(probe.ok());
  EXPECT_FALSE(*(*probe)->Test({1}));
  EXPECT_FALSE(*(*probe)->Test({1, 1, 1}));
}

}  // namespace
}  // namespace pcube
