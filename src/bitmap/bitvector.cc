#include "bitmap/bitvector.h"

#include "common/simd/word_kernels.h"

namespace pcube {

size_t BitVector::FindNextSet(size_t from) const {
  if (from >= num_bits_) return num_bits_;
  size_t word_idx = from >> 6;
  uint64_t w = words_[word_idx] >> (from & 63);
  if (w != 0) {
    size_t pos = from + std::countr_zero(w);
    return pos < num_bits_ ? pos : num_bits_;
  }
  for (++word_idx; word_idx < words_.size(); ++word_idx) {
    if (words_[word_idx] != 0) {
      size_t pos = (word_idx << 6) + std::countr_zero(words_[word_idx]);
      return pos < num_bits_ ? pos : num_bits_;
    }
  }
  return num_bits_;
}

size_t BitVector::Count() const {
  return simd::PopcountWords(words_.data(), words_.size());
}

bool BitVector::AnySet() const {
  return simd::AnyWords(words_.data(), words_.size());
}

bool BitVector::InplaceAnd(const BitVector& other) {
  PCUBE_CHECK_EQ(num_bits_, other.num_bits_);
  return simd::AndWords(words_.data(), words_.data(), other.words_.data(),
                        words_.size());
}

void BitVector::InplaceOr(const BitVector& other) {
  PCUBE_CHECK_EQ(num_bits_, other.num_bits_);
  simd::OrWords(words_.data(), words_.data(), other.words_.data(),
                words_.size());
}

void BitVector::InplaceAndNot(const BitVector& other) {
  PCUBE_CHECK_EQ(num_bits_, other.num_bits_);
  simd::AndNotWords(words_.data(), words_.data(), other.words_.data(),
                    words_.size());
}

size_t BitVector::AndCount(const BitVector& other) const {
  PCUBE_CHECK_EQ(num_bits_, other.num_bits_);
  return simd::AndPopcountWords(words_.data(), other.words_.data(),
                                words_.size());
}

std::vector<uint32_t> BitVector::SetPositions() const {
  std::vector<uint32_t> out;
  for (size_t i = FindNextSet(0); i < num_bits_; i = FindNextSet(i + 1)) {
    out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::string BitVector::ToString() const {
  std::string s;
  s.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) s.push_back(Get(i) ? '1' : '0');
  return s;
}

}  // namespace pcube
