// Backing store for pages. Implementations:
//   MemoryPageManager — pages in RAM; the benchmark default. Combined with a
//     cold BufferPool it yields deterministic, hardware-independent "disk
//     access" counts.
//   FilePageManager  — pages in a real file via pread/pwrite, for users who
//     want actual persistence.
//   LatencyPageManager — decorator that sleeps per physical read, turning
//     the cost model's per-page latency into real blocked time (throughput
//     benchmarks overlap these stalls across worker threads).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace pcube {

/// Abstract page store.
///
/// Thread-safety contract: Allocate/Free/NumPages mutate allocator state and
/// are single-threaded (build/maintenance paths only). Read/Write are safe
/// to call concurrently for DIFFERENT pages; the striped BufferPool
/// guarantees it never issues two concurrent accesses to the SAME page
/// (same-page operations serialise on the page's stripe). Under that
/// discipline MemoryPageManager reads touch disjoint Page objects and
/// FilePageManager uses positional pread/pwrite, so the concurrent query
/// path is race-free.
class PageManager {
 public:
  virtual ~PageManager() = default;

  /// Allocates a fresh zeroed page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `pid` into `*out`.
  virtual Status Read(PageId pid, Page* out) = 0;

  /// Writes `page` as the new content of `pid`.
  virtual Status Write(PageId pid, const Page& page) = 0;

  /// Returns `pid` to the allocator for reuse (space reclamation after
  /// compaction). Implementations may decline with NotSupported.
  virtual Status Free(PageId pid) {
    (void)pid;
    return Status::NotSupported("page manager has no free list");
  }

  /// Number of pages allocated so far (freed pages stay counted until
  /// reused).
  virtual uint64_t NumPages() const = 0;

  /// Forces previously written pages to stable storage (fdatasync for the
  /// file-backed store). Durability barriers — the WAL's group commit — are
  /// built on this; in-memory stores return OK immediately. Safe to call
  /// concurrently with Read/Write of other pages.
  virtual Status Sync() { return Status::OK(); }

  /// Total allocated bytes (NumPages() * kPageSize).
  uint64_t SizeBytes() const { return NumPages() * kPageSize; }
};

/// Page store kept entirely in RAM.
class MemoryPageManager : public PageManager {
 public:
  Result<PageId> Allocate() override;
  Status Read(PageId pid, Page* out) override;
  Status Write(PageId pid, const Page& page) override;
  Status Free(PageId pid) override;
  uint64_t NumPages() const override { return pages_.size(); }

  /// Pages currently on the free list (reused before growing).
  size_t num_free() const { return free_list_.size(); }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<PageId> free_list_;
};

/// Page store backed by a file on disk.
class FilePageManager : public PageManager {
 public:
  /// Creates (truncating) or opens `path`. When opening an existing file the
  /// page count is recovered from the file size.
  static Result<std::unique_ptr<FilePageManager>> Open(const std::string& path,
                                                       bool truncate);
  ~FilePageManager() override;

  FilePageManager(const FilePageManager&) = delete;
  FilePageManager& operator=(const FilePageManager&) = delete;

  Result<PageId> Allocate() override;
  Status Read(PageId pid, Page* out) override;
  Status Write(PageId pid, const Page& page) override;
  uint64_t NumPages() const override { return num_pages_; }
  Status Sync() override;

 private:
  FilePageManager(int fd, uint64_t num_pages) : fd_(fd), num_pages_(num_pages) {}

  int fd_;
  uint64_t num_pages_;
};

/// Decorator that adds a fixed sleep to every physical Read, simulating the
/// random-access latency of the paper's 2008-era disk (bench_common.h adds
/// the same latency arithmetically; this version actually blocks, so
/// concurrent queries can overlap their stalls). The latency is an atomic:
/// benchmarks build at zero latency and enable it for the measured phase.
class LatencyPageManager : public PageManager {
 public:
  explicit LatencyPageManager(std::unique_ptr<PageManager> inner,
                              double read_latency_us = 0)
      : inner_(std::move(inner)), read_latency_us_(read_latency_us) {}

  void set_read_latency_us(double us) {
    read_latency_us_.store(us, std::memory_order_relaxed);
  }
  double read_latency_us() const {
    return read_latency_us_.load(std::memory_order_relaxed);
  }
  PageManager* inner() const { return inner_.get(); }

  Result<PageId> Allocate() override { return inner_->Allocate(); }
  Status Read(PageId pid, Page* out) override;
  Status Write(PageId pid, const Page& page) override {
    return inner_->Write(pid, page);
  }
  Status Free(PageId pid) override { return inner_->Free(pid); }
  uint64_t NumPages() const override { return inner_->NumPages(); }
  Status Sync() override { return inner_->Sync(); }

 private:
  std::unique_ptr<PageManager> inner_;
  std::atomic<double> read_latency_us_;
};

}  // namespace pcube
