// The unified query API. Every front door of the system — the cost-based
// QueryPlanner, the concurrent BatchExecutor and the pcube CLI — speaks
// QueryRequest in and QueryResponse out, so a query is planned, executed,
// measured and logged identically no matter how it arrived. The response
// carries the full observability payload: the engine counters behind
// Figs. 8-16, the executed physical I/O, the plan that ran, and a Trace of
// per-stage timings that serialises to one JSONL query-log record.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io_stats.h"
#include "common/trace.h"
#include "cube/cell.h"
#include "query/query_types.h"
#include "query/ranking.h"

namespace pcube {

/// Which physical plan executes a query.
enum class PlanChoice { kSignature, kBooleanFirst };

/// Caller-supplied plan constraint: kAuto lets the cost model decide,
/// anything else forces that plan (regression tests, the CLI's --plan).
enum class PlanHint { kAuto, kSignature, kBooleanFirst };

/// Cost estimates (in 4 KB page reads) and the decision.
struct PlanEstimate {
  uint64_t matching_tuples = 0;
  uint64_t boolean_pages = 0;    ///< selection fetches or table scan
  uint64_t signature_pages = 0;  ///< modelled R-tree blocks + signatures
  PlanChoice choice = PlanChoice::kSignature;
};

/// One parsed preference query, ready to plan and execute.
struct QueryRequest {
  enum class Kind { kSkyline, kTopK };

  Kind kind = Kind::kSkyline;
  PredicateSet preds;

  /// kSkyline: preference dims / k-skyband / dynamic-skyline origin.
  SkylineQueryOptions skyline;

  /// kTopK: ranking function (shared_ptr so a batch can reuse one function
  /// across queries; read concurrently, so it must stay immutable) and k.
  std::shared_ptr<const RankingFunction> ranking;
  size_t k = 10;

  PlanHint hint = PlanHint::kAuto;

  /// Wall-clock budget for the execution, 0 = unlimited. When it expires
  /// mid-expansion the query fails with Status::Timeout rather than
  /// returning a silently incomplete answer.
  uint64_t deadline_ms = 0;

  static QueryRequest Skyline(PredicateSet preds,
                              SkylineQueryOptions options = {}) {
    QueryRequest q;
    q.kind = Kind::kSkyline;
    q.preds = std::move(preds);
    q.skyline = std::move(options);
    return q;
  }

  static QueryRequest TopK(PredicateSet preds,
                           std::shared_ptr<const RankingFunction> f,
                           size_t k) {
    QueryRequest q;
    q.kind = Kind::kTopK;
    q.preds = std::move(preds);
    q.ranking = std::move(f);
    q.k = k;
    return q;
  }

  /// True when the query has a stable canonical form: always for skylines,
  /// for top-k only when the ranking function reports a CacheKey(). Queries
  /// without one cannot be fingerprinted and bypass the result cache.
  bool Canonicalizable() const;

  /// Canonical textual form of the query: kind, predicates (already sorted
  /// by dimension), skyline options with pref_dims sorted and deduped,
  /// ranking CacheKey and k, with all floating-point parameters rendered as
  /// exact bit patterns. Two requests with equal Canonical() strings have
  /// byte-identical answers against the same data. Plan hints and deadlines
  /// are deliberately excluded — they change how a query runs, not what it
  /// returns. Empty when !Canonicalizable().
  std::string Canonical() const;

  /// Stable 64-bit FNV-1a hash of Canonical(); 0 when !Canonicalizable().
  uint64_t Fingerprint() const;

  /// Canonical() with the predicate set replaced by `preds` and, for top-k,
  /// the k term dropped. This is the result cache's family key: a cached
  /// top-k answer serves any smaller k of the same family by truncation,
  /// and containment lookups probe the families of predicate subsets.
  std::string CanonicalFamily(const PredicateSet& preds) const;
  uint64_t FamilyFingerprint(const PredicateSet& preds) const;
};

/// FNV-1a 64-bit over a byte string (the query-fingerprint hash).
uint64_t Fnv1a64(const std::string& bytes);

/// How the result cache participated in answering a query.
enum class CacheOutcome {
  kNone,         ///< no result cache configured
  kBypass,       ///< cache present but not consulted (forced plan hint,
                 ///< non-canonicalizable query)
  kMiss,         ///< consulted, executed from scratch
  kHit,          ///< served from an exact cached entry (incl. truncation)
  kContainment,  ///< derived from a cached subset-predicate entry
};

const char* CacheOutcomeName(CacheOutcome outcome);

/// What every execution path returns: the answer plus everything needed to
/// observe how it was produced.
struct QueryResponse {
  /// Result tuples: ascending tid order for skylines, rank order for top-k.
  std::vector<TupleId> tids;
  /// Top-k only: exact scores aligned with `tids` (ascending).
  std::vector<double> scores;
  /// Counters of the executed engine (both plans report them; the
  /// boolean-first path fills heap_peak with its in-memory working set).
  EngineCounters counters;
  /// Physical page I/O this query performed.
  IoStats io;
  /// Cost-model output; estimate.choice is the plan that actually ran.
  PlanEstimate estimate;
  /// Per-stage timings (signature_probe, heap_expand, boolean_verify,
  /// io_wait, ...) plus the process-unique trace id.
  Trace trace;
  double seconds = 0;  ///< wall time of the execution

  /// True when the signature plan failed on corrupt/unreadable pages and
  /// the planner recomputed the answer via the boolean-first plan (P-Cube
  /// signatures are derived state, so the base relation remains
  /// authoritative). `degraded_reason` carries the original failure.
  bool degraded = false;
  std::string degraded_reason;

  /// Result-cache outcome for this query (logged as `cache:` in the query
  /// log). Degraded responses are never inserted into the cache.
  CacheOutcome cache = CacheOutcome::kNone;

  /// Number of shards this query scattered to (logged as `shards:`).
  /// 0 = answered by a single workbench with no coordinator; a sharded
  /// coordinator sets it to the live-shard count on fan-out and leaves it 0
  /// when the coordinator's L1 served the request without scattering.
  uint32_t fanout_shards = 0;

  uint64_t trace_id() const { return trace.id(); }
};

/// One query-log line: a JSON object (no trailing newline) with the trace
/// id, query shape, chosen plan, result size, I/O, engine counters and
/// per-stage spans. Schema documented in DESIGN.md §8. `tenant` attributes
/// the record to a network-server tenant (empty outside the server, logged
/// as "" — the field is always present so log consumers need no schema
/// branch).
std::string QueryLogRecord(const QueryRequest& request,
                           const QueryResponse& response,
                           const std::string& tenant = std::string());

}  // namespace pcube
