#include "server/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/bit_util.h"

namespace pcube::wire {

namespace {

// ---- Little-endian byte-buffer writer/reader (catalog.cc idiom) ----------

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  template <typename T>
  void LE(T v) {
    uint8_t buf[sizeof(T)];
    bit_util::StoreLE(buf, v);
    out_->append(reinterpret_cast<const char*>(buf), sizeof(T));
  }
  void F32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    LE(bits);
  }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    LE(bits);
  }
  void Bytes(const std::string& s) { out_->append(s); }

 private:
  std::string* out_;
};

// Every read is bounds-checked; a decode must end with ExpectDone() so
// trailing garbage is an error rather than silently ignored input.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

  Status U8(uint8_t* v) { return Fixed(v); }
  Status U16(uint16_t* v) { return Fixed(v); }
  Status U32(uint32_t* v) { return Fixed(v); }
  Status U64(uint64_t* v) { return Fixed(v); }
  Status F32(float* v) {
    uint32_t bits;
    PCUBE_RETURN_NOT_OK(Fixed(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status F64(double* v) {
    uint64_t bits;
    PCUBE_RETURN_NOT_OK(Fixed(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }
  Status Bytes(size_t n, std::string* out) {
    if (Remaining() < n) return Truncated();
    out->assign(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return Status::OK();
  }
  size_t Remaining() const { return static_cast<size_t>(end_ - p_); }
  Status ExpectDone() const {
    if (p_ != end_) {
      return Status::Corruption("frame payload has trailing bytes");
    }
    return Status::OK();
  }

 private:
  template <typename T>
  Status Fixed(T* v) {
    if (Remaining() < sizeof(T)) return Truncated();
    *v = bit_util::LoadLE<T>(p_);
    p_ += sizeof(T);
    return Status::OK();
  }
  static Status Truncated() {
    return Status::Corruption("frame payload truncated");
  }

  const uint8_t* p_;
  const uint8_t* end_;
};

bool ValidTenant(const std::string& tenant) {
  if (tenant.size() > kMaxTenantBytes) return false;
  for (char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status ReadFiniteF64(Reader* r, const char* what, double* v) {
  PCUBE_RETURN_NOT_OK(r->F64(v));
  if (!std::isfinite(*v)) {
    return Status::InvalidArgument(std::string(what) + " is not finite");
  }
  return Status::OK();
}

Status ReadDoubleList(Reader* r, size_t n, const char* what,
                      std::vector<double>* out) {
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v;
    PCUBE_RETURN_NOT_OK(ReadFiniteF64(r, what, &v));
    out->push_back(v);
  }
  return Status::OK();
}

Status ReadNonNegativeList(Reader* r, size_t n, const char* what,
                           std::vector<double>* out) {
  PCUBE_RETURN_NOT_OK(ReadDoubleList(r, n, what, out));
  // ranking.h constructors PCUBE_CHECK weights >= 0 — reaching that check
  // from wire bytes would let a peer abort the server, so reject here.
  for (double v : *out) {
    if (v < 0) {
      return Status::InvalidArgument(std::string(what) + " is negative");
    }
  }
  return Status::OK();
}

// Wire encoding of ranking kinds (part of the protocol, do not renumber).
constexpr uint8_t kRankLinear = 1;
constexpr uint8_t kRankWeightedL2 = 2;
constexpr uint8_t kRankMinkowski = 3;

struct RankingWire {
  uint8_t kind = 0;
  std::vector<double> weights;
  std::vector<double> target;  // wl2 / minkowski
  double p = 0;                // minkowski
};

/// Recovers the wire form of a ranking. Only the three stock rankings of
/// ranking.h are representable; a custom RankingFunction subclass is
/// InvalidArgument (the server could not reconstruct it anyway).
Status RankingToWire(const RankingFunction& f, RankingWire* out) {
  if (const auto* lin = dynamic_cast<const LinearRanking*>(&f)) {
    out->kind = kRankLinear;
    out->weights = lin->weights();
    return Status::OK();
  }
  if (const auto* wl2 = dynamic_cast<const WeightedL2Ranking*>(&f)) {
    out->kind = kRankWeightedL2;
    out->target = wl2->target();
    out->weights = wl2->weights();
    return Status::OK();
  }
  if (const auto* mink = dynamic_cast<const MinkowskiRanking*>(&f)) {
    out->kind = kRankMinkowski;
    out->target = mink->target();
    out->weights = mink->weights();
    out->p = mink->p();
    return Status::OK();
  }
  return Status::InvalidArgument(
      "ranking function is not representable on the wire");
}

}  // namespace

uint8_t StatusCodeToWire(StatusCode code) {
  // Stable protocol values, independent of the enum's in-memory order.
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kNotFound: return 2;
    case StatusCode::kAlreadyExists: return 3;
    case StatusCode::kOutOfRange: return 4;
    case StatusCode::kCorruption: return 5;
    case StatusCode::kIoError: return 6;
    case StatusCode::kNotSupported: return 7;
    case StatusCode::kInternal: return 8;
    case StatusCode::kTimeout: return 9;
    case StatusCode::kResourceExhausted: return 10;
  }
  return 8;
}

StatusCode StatusCodeFromWire(uint8_t wire) {
  switch (wire) {
    case 0: return StatusCode::kOk;
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kNotFound;
    case 3: return StatusCode::kAlreadyExists;
    case 4: return StatusCode::kOutOfRange;
    case 5: return StatusCode::kCorruption;
    case 6: return StatusCode::kIoError;
    case 7: return StatusCode::kNotSupported;
    case 8: return StatusCode::kInternal;
    case 9: return StatusCode::kTimeout;
    case 10: return StatusCode::kResourceExhausted;
    default: return StatusCode::kInternal;
  }
}

void AppendFrame(FrameType type, const std::string& payload,
                 std::string* out) {
  // pcube-lint: trusted(encode side — the payload was produced by this
  // process, not read off the wire; oversize here is a local logic bug)
  PCUBE_CHECK_LE(payload.size(), kMaxPayload);
  Writer w(out);
  w.LE<uint32_t>(kMagic);
  w.U8(kVersion);
  w.U8(static_cast<uint8_t>(type));
  w.LE<uint16_t>(0);  // reserved, must be zero
  w.LE<uint32_t>(static_cast<uint32_t>(payload.size()));
  w.Bytes(payload);
}

Result<std::string> EncodeQuery(const QueryEnvelope& envelope) {
  const QueryRequest& q = envelope.request;
  if (!ValidTenant(envelope.tenant)) {
    return Status::InvalidArgument("tenant must match [A-Za-z0-9_.-]{0,64}");
  }
  if (q.preds.size() > kMaxPredicates) {
    return Status::InvalidArgument("too many predicates for the wire");
  }
  for (const Predicate& p : q.preds.predicates()) {
    if (p.dim < 0 || p.dim > kMaxDimIndex) {
      return Status::InvalidArgument("predicate dimension out of wire range");
    }
  }
  if (q.deadline_ms > kMaxDeadlineMs) {
    return Status::InvalidArgument("deadline_ms exceeds the wire cap");
  }

  std::string payload;
  Writer w(&payload);
  w.U8(static_cast<uint8_t>(envelope.tenant.size()));
  w.Bytes(envelope.tenant);
  w.U8(q.kind == QueryRequest::Kind::kSkyline ? 0 : 1);
  w.LE<uint64_t>(q.deadline_ms);
  w.LE<uint16_t>(static_cast<uint16_t>(q.preds.size()));
  for (const Predicate& p : q.preds.predicates()) {
    w.LE<uint16_t>(static_cast<uint16_t>(p.dim));
    w.LE<uint32_t>(p.value);
  }

  if (q.kind == QueryRequest::Kind::kSkyline) {
    const SkylineQueryOptions& o = q.skyline;
    if (o.pref_dims.size() > kMaxDims || o.origin.size() > kMaxDims) {
      return Status::InvalidArgument("too many skyline dims for the wire");
    }
    for (int d : o.pref_dims) {
      if (d < 0 || d > kMaxDimIndex) {
        return Status::InvalidArgument("pref dim out of wire range");
      }
    }
    for (float v : o.origin) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("origin coordinate is not finite");
      }
    }
    if (o.skyband_k < 1 || o.skyband_k > kMaxSkybandK) {
      return Status::InvalidArgument("skyband_k out of wire range");
    }
    w.LE<uint16_t>(static_cast<uint16_t>(o.pref_dims.size()));
    for (int d : o.pref_dims) w.LE<uint16_t>(static_cast<uint16_t>(d));
    w.LE<uint16_t>(static_cast<uint16_t>(o.origin.size()));
    for (float v : o.origin) w.F32(v);
    w.LE<uint32_t>(static_cast<uint32_t>(o.skyband_k));
  } else {
    if (q.k < 1 || q.k > kMaxK) {
      return Status::InvalidArgument("k out of wire range");
    }
    if (q.ranking == nullptr) {
      return Status::InvalidArgument("top-k query without a ranking");
    }
    RankingWire rw;
    PCUBE_RETURN_NOT_OK(RankingToWire(*q.ranking, &rw));
    if (rw.weights.size() > kMaxDims || rw.weights.empty()) {
      return Status::InvalidArgument("ranking dims out of wire range");
    }
    w.LE<uint64_t>(q.k);
    w.U8(rw.kind);
    w.LE<uint16_t>(static_cast<uint16_t>(rw.weights.size()));
    if (rw.kind == kRankMinkowski) w.F64(rw.p);
    if (rw.kind != kRankLinear) {
      for (double v : rw.target) w.F64(v);
    }
    for (double v : rw.weights) w.F64(v);
  }
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("query does not fit in one frame");
  }
  return payload;
}

Status DecodeQuery(const uint8_t* data, size_t size, QueryEnvelope* out) {
  Reader r(data, size);
  uint8_t tenant_len;
  PCUBE_RETURN_NOT_OK(r.U8(&tenant_len));
  if (tenant_len > kMaxTenantBytes) {
    return Status::InvalidArgument("tenant id too long");
  }
  PCUBE_RETURN_NOT_OK(r.Bytes(tenant_len, &out->tenant));
  if (!ValidTenant(out->tenant)) {
    return Status::InvalidArgument("tenant id has invalid characters");
  }

  QueryRequest q;
  uint8_t kind;
  PCUBE_RETURN_NOT_OK(r.U8(&kind));
  if (kind > 1) return Status::InvalidArgument("unknown query kind");
  q.kind = kind == 0 ? QueryRequest::Kind::kSkyline : QueryRequest::Kind::kTopK;
  PCUBE_RETURN_NOT_OK(r.U64(&q.deadline_ms));
  if (q.deadline_ms > kMaxDeadlineMs) {
    return Status::InvalidArgument("deadline_ms exceeds the wire cap");
  }

  uint16_t npreds;
  PCUBE_RETURN_NOT_OK(r.U16(&npreds));
  if (npreds > kMaxPredicates) {
    return Status::InvalidArgument("too many predicates");
  }
  for (uint16_t i = 0; i < npreds; ++i) {
    uint16_t dim;
    uint32_t value;
    PCUBE_RETURN_NOT_OK(r.U16(&dim));
    PCUBE_RETURN_NOT_OK(r.U32(&value));
    if (dim > kMaxDimIndex) {
      return Status::InvalidArgument("predicate dimension out of range");
    }
    q.preds.Add(Predicate{static_cast<int>(dim), value});
  }

  if (q.kind == QueryRequest::Kind::kSkyline) {
    uint16_t npref;
    PCUBE_RETURN_NOT_OK(r.U16(&npref));
    if (npref > kMaxDims) return Status::InvalidArgument("too many pref dims");
    q.skyline.pref_dims.reserve(npref);
    for (uint16_t i = 0; i < npref; ++i) {
      uint16_t d;
      PCUBE_RETURN_NOT_OK(r.U16(&d));
      if (d > kMaxDimIndex) {
        return Status::InvalidArgument("pref dim out of range");
      }
      q.skyline.pref_dims.push_back(static_cast<int>(d));
    }
    uint16_t norigin;
    PCUBE_RETURN_NOT_OK(r.U16(&norigin));
    if (norigin > kMaxDims) {
      return Status::InvalidArgument("origin has too many dims");
    }
    q.skyline.origin.reserve(norigin);
    for (uint16_t i = 0; i < norigin; ++i) {
      float v;
      PCUBE_RETURN_NOT_OK(r.F32(&v));
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("origin coordinate is not finite");
      }
      q.skyline.origin.push_back(v);
    }
    uint32_t band;
    PCUBE_RETURN_NOT_OK(r.U32(&band));
    if (band < 1 || band > kMaxSkybandK) {
      return Status::InvalidArgument("skyband_k out of range");
    }
    q.skyline.skyband_k = band;
  } else {
    uint64_t k;
    PCUBE_RETURN_NOT_OK(r.U64(&k));
    if (k < 1 || k > kMaxK) return Status::InvalidArgument("k out of range");
    q.k = k;
    uint8_t rank_kind;
    uint16_t ndims;
    PCUBE_RETURN_NOT_OK(r.U8(&rank_kind));
    PCUBE_RETURN_NOT_OK(r.U16(&ndims));
    if (ndims < 1 || ndims > kMaxDims) {
      return Status::InvalidArgument("ranking dims out of range");
    }
    std::vector<double> weights, target;
    switch (rank_kind) {
      case kRankLinear:
        PCUBE_RETURN_NOT_OK(ReadDoubleList(&r, ndims, "weight", &weights));
        q.ranking = std::make_shared<LinearRanking>(std::move(weights));
        break;
      case kRankWeightedL2:
        PCUBE_RETURN_NOT_OK(ReadDoubleList(&r, ndims, "target", &target));
        PCUBE_RETURN_NOT_OK(ReadNonNegativeList(&r, ndims, "weight", &weights));
        q.ranking = std::make_shared<WeightedL2Ranking>(std::move(target),
                                                        std::move(weights));
        break;
      case kRankMinkowski: {
        double p;
        PCUBE_RETURN_NOT_OK(ReadFiniteF64(&r, "minkowski p", &p));
        if (p < 1) return Status::InvalidArgument("minkowski p must be >= 1");
        PCUBE_RETURN_NOT_OK(ReadDoubleList(&r, ndims, "target", &target));
        PCUBE_RETURN_NOT_OK(ReadNonNegativeList(&r, ndims, "weight", &weights));
        q.ranking = std::make_shared<MinkowskiRanking>(
            std::move(target), std::move(weights), p);
        break;
      }
      default:
        return Status::InvalidArgument("unknown ranking kind");
    }
  }
  PCUBE_RETURN_NOT_OK(r.ExpectDone());
  out->request = std::move(q);
  return Status::OK();
}

Result<std::string> EncodeWrite(const WriteEnvelope& envelope) {
  if (!ValidTenant(envelope.tenant)) {
    return Status::InvalidArgument("tenant must match [A-Za-z0-9_.-]{0,64}");
  }
  auto batch = EncodeWriteBatch(envelope.batch);
  if (!batch.ok()) return batch.status();
  std::string payload;
  Writer w(&payload);
  w.U8(static_cast<uint8_t>(envelope.tenant.size()));
  w.Bytes(envelope.tenant);
  w.Bytes(*batch);
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument(
        "write batch does not fit in one frame; split it");
  }
  return payload;
}

Status DecodeWrite(const uint8_t* data, size_t size, WriteEnvelope* out) {
  Reader r(data, size);
  uint8_t tenant_len;
  PCUBE_RETURN_NOT_OK(r.U8(&tenant_len));
  if (tenant_len > kMaxTenantBytes) {
    return Status::InvalidArgument("tenant id too long");
  }
  PCUBE_RETURN_NOT_OK(r.Bytes(tenant_len, &out->tenant));
  if (!ValidTenant(out->tenant)) {
    return Status::InvalidArgument("tenant id has invalid characters");
  }
  // The batch codec enforces its own caps and exact-length contract, so the
  // whole remainder is handed over (no trailing bytes can survive).
  return DecodeWriteBatch(data + (size - r.Remaining()), r.Remaining(),
                          &out->batch);
}

std::string EncodeWriteAck(const WriteResult& result) {
  std::string payload;
  Writer w(&payload);
  w.LE<uint64_t>(result.lsn);
  w.LE<uint64_t>(result.first_tid);
  w.LE<uint64_t>(result.epoch);
  w.F64(result.commit_seconds);
  w.LE<uint32_t>(result.group_size);
  w.U8(result.durable ? 1 : 0);
  return payload;
}

Status DecodeWriteAck(const uint8_t* data, size_t size, WriteResult* out) {
  Reader r(data, size);
  PCUBE_RETURN_NOT_OK(r.U64(&out->lsn));
  PCUBE_RETURN_NOT_OK(r.U64(&out->first_tid));
  PCUBE_RETURN_NOT_OK(r.U64(&out->epoch));
  PCUBE_RETURN_NOT_OK(r.F64(&out->commit_seconds));
  if (!std::isfinite(out->commit_seconds) || out->commit_seconds < 0) {
    return Status::Corruption("commit_seconds is not a finite duration");
  }
  PCUBE_RETURN_NOT_OK(r.U32(&out->group_size));
  uint8_t durable;
  PCUBE_RETURN_NOT_OK(r.U8(&durable));
  if (durable > 1) return Status::Corruption("durable flag out of range");
  out->durable = durable != 0;
  return r.ExpectDone();
}

std::string EncodeResultHeader(const ResultHeader& h) {
  std::string payload;
  Writer w(&payload);
  w.LE<uint64_t>(h.trace_id);
  w.LE<uint64_t>(h.result_count);
  w.U8(h.has_scores ? 1 : 0);
  w.U8(h.plan);
  w.U8(h.cache);
  w.U8(h.degraded ? 1 : 0);
  w.LE<uint32_t>(h.fanout_shards);
  w.F64(h.seconds);
  w.F64(h.queue_wait_seconds);
  w.LE<uint64_t>(h.io_reads);
  w.LE<uint64_t>(h.counters.heap_peak);
  w.LE<uint64_t>(h.counters.nodes_expanded);
  w.LE<uint64_t>(h.counters.pruned_boolean);
  w.LE<uint64_t>(h.counters.pruned_preference);
  w.LE<uint64_t>(h.counters.verified);
  w.F64(h.counters.sig_seconds);
  return payload;
}

Status DecodeResultHeader(const uint8_t* data, size_t size,
                          ResultHeader* out) {
  Reader r(data, size);
  PCUBE_RETURN_NOT_OK(r.U64(&out->trace_id));
  PCUBE_RETURN_NOT_OK(r.U64(&out->result_count));
  uint8_t has_scores, degraded;
  PCUBE_RETURN_NOT_OK(r.U8(&has_scores));
  PCUBE_RETURN_NOT_OK(r.U8(&out->plan));
  PCUBE_RETURN_NOT_OK(r.U8(&out->cache));
  PCUBE_RETURN_NOT_OK(r.U8(&degraded));
  if (has_scores > 1 || degraded > 1 || out->plan > 1 || out->cache > 4) {
    return Status::Corruption("result header field out of range");
  }
  if (out->result_count > kMaxResultTuples) {
    return Status::Corruption("result count exceeds the client cap");
  }
  out->has_scores = has_scores != 0;
  out->degraded = degraded != 0;
  PCUBE_RETURN_NOT_OK(r.U32(&out->fanout_shards));
  PCUBE_RETURN_NOT_OK(r.F64(&out->seconds));
  PCUBE_RETURN_NOT_OK(r.F64(&out->queue_wait_seconds));
  PCUBE_RETURN_NOT_OK(r.U64(&out->io_reads));
  PCUBE_RETURN_NOT_OK(r.U64(&out->counters.heap_peak));
  PCUBE_RETURN_NOT_OK(r.U64(&out->counters.nodes_expanded));
  PCUBE_RETURN_NOT_OK(r.U64(&out->counters.pruned_boolean));
  PCUBE_RETURN_NOT_OK(r.U64(&out->counters.pruned_preference));
  PCUBE_RETURN_NOT_OK(r.U64(&out->counters.verified));
  PCUBE_RETURN_NOT_OK(r.F64(&out->counters.sig_seconds));
  return r.ExpectDone();
}

std::string EncodeResultChunk(const std::vector<TupleId>& tids,
                              const std::vector<double>& scores,
                              size_t first, size_t count) {
  // pcube-lint: trusted(encode side — the caller slices locally computed
  // results; the bound is an invariant of the chunking loop, not wire data)
  PCUBE_CHECK_LE(count, kChunkTuples);
  // pcube-lint: trusted(same — local chunking invariant)
  PCUBE_CHECK_LE(first + count, tids.size());
  const bool has_scores = !scores.empty();
  std::string payload;
  Writer w(&payload);
  w.LE<uint32_t>(static_cast<uint32_t>(count));
  w.U8(has_scores ? 1 : 0);
  for (size_t i = first; i < first + count; ++i) w.LE<uint64_t>(tids[i]);
  if (has_scores) {
    for (size_t i = first; i < first + count; ++i) w.F64(scores[i]);
  }
  return payload;
}

Status DecodeResultChunk(const uint8_t* data, size_t size, bool has_scores,
                         std::vector<TupleId>* tids,
                         std::vector<double>* scores) {
  Reader r(data, size);
  uint32_t count;
  uint8_t chunk_scores;
  PCUBE_RETURN_NOT_OK(r.U32(&count));
  PCUBE_RETURN_NOT_OK(r.U8(&chunk_scores));
  if (count < 1 || count > kChunkTuples) {
    return Status::Corruption("chunk tuple count out of range");
  }
  if (chunk_scores > 1 || (chunk_scores != 0) != has_scores) {
    return Status::Corruption("chunk score flag contradicts result header");
  }
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t tid;
    PCUBE_RETURN_NOT_OK(r.U64(&tid));
    tids->push_back(tid);
  }
  if (has_scores) {
    for (uint32_t i = 0; i < count; ++i) {
      double v;
      PCUBE_RETURN_NOT_OK(r.F64(&v));
      scores->push_back(v);
    }
  }
  return r.ExpectDone();
}

std::string EncodeError(const Status& status) {
  std::string msg = status.message();
  if (msg.size() > kMaxErrorBytes) msg.resize(kMaxErrorBytes);
  std::string payload;
  Writer w(&payload);
  w.U8(StatusCodeToWire(status.code()));
  w.LE<uint16_t>(static_cast<uint16_t>(msg.size()));
  w.Bytes(msg);
  return payload;
}

Status DecodeError(const uint8_t* data, size_t size) {
  Reader r(data, size);
  uint8_t code;
  uint16_t len;
  PCUBE_RETURN_NOT_OK(r.U8(&code));
  PCUBE_RETURN_NOT_OK(r.U16(&len));
  if (len > kMaxErrorBytes) {
    return Status::Corruption("error message too long");
  }
  std::string msg;
  PCUBE_RETURN_NOT_OK(r.Bytes(len, &msg));
  PCUBE_RETURN_NOT_OK(r.ExpectDone());
  const StatusCode sc = StatusCodeFromWire(code);
  if (sc == StatusCode::kOk) {
    return Status::Corruption("error frame with OK status");
  }
  return Status(sc, std::move(msg));
}

Status ParseFrameHeader(const uint8_t* data, FrameHeader* out) {
  const uint32_t magic = bit_util::LoadLE<uint32_t>(data);
  if (magic != kMagic) return Status::Corruption("bad frame magic");
  out->version = data[4];
  if (out->version != kVersion) {
    return Status::Corruption("unsupported protocol version");
  }
  const uint8_t type = data[5];
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > static_cast<uint8_t>(FrameType::kWriteAck)) {
    return Status::Corruption("unknown frame type");
  }
  out->type = static_cast<FrameType>(type);
  const uint16_t reserved = bit_util::LoadLE<uint16_t>(data + 6);
  if (reserved != 0) return Status::Corruption("reserved bytes must be zero");
  out->payload_len = bit_util::LoadLE<uint32_t>(data + 8);
  if (out->payload_len > kMaxPayload) {
    return Status::Corruption("frame payload exceeds the 1 MiB cap");
  }
  return Status::OK();
}

Status ReadExact(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r == 0) return Status::IoError("peer closed the connection");
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteAll(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::send(fd, p, n, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    p += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ReadFrame(int fd, FrameHeader* header, std::string* payload) {
  uint8_t raw[kHeaderBytes];
  PCUBE_RETURN_NOT_OK(ReadExact(fd, raw, sizeof(raw)));
  PCUBE_RETURN_NOT_OK(ParseFrameHeader(raw, header));
  payload->resize(header->payload_len);
  if (header->payload_len > 0) {
    PCUBE_RETURN_NOT_OK(ReadExact(fd, payload->data(), payload->size()));
  }
  return Status::OK();
}

Status WriteFrame(int fd, FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  AppendFrame(type, payload, &frame);
  return WriteAll(fd, frame.data(), frame.size());
}

}  // namespace pcube::wire
