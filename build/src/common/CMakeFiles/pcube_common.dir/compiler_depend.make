# Empty compiler generated dependencies file for pcube_common.
# This may be replaced when dependencies are built.
