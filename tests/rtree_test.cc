// R*-tree tests: geometry, node layout, construction (insert / STR bulk /
// explicit), path queries, deletion with stable slots, and the path-change
// reporting that drives incremental P-Cube maintenance.
// pcube-lint: allow-mutation-file(unit tests of the tree's own mutators;
// there is no WriteBatch to route through at this layer)
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "data/generators.h"
#include "data/table1.h"
#include "rtree/node.h"
#include "rtree/rstar_tree.h"

namespace pcube {
namespace {

TEST(GeometryTest, AreaMarginEnlargement) {
  RectF a = RectF::Empty(2);
  a.min = {0, 0};
  a.max = {2, 3};
  a.dims = 2;
  EXPECT_DOUBLE_EQ(a.Area(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  RectF b = RectF::Point(std::vector<float>{4.0f, 1.0f});
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 4 * 3 - 6);
  a.Expand(b);
  EXPECT_EQ(a.max[0], 4.0f);
}

TEST(GeometryTest, OverlapAndContainment) {
  RectF a = RectF::Empty(2);
  a.min = {0, 0};
  a.max = {2, 2};
  RectF b = RectF::Empty(2);
  b.min = {1, 1};
  b.max = {3, 3};
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  RectF c = RectF::Empty(2);
  c.min = {5, 5};
  c.max = {6, 6};
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  std::vector<float> p = {1.5f, 0.5f};
  EXPECT_TRUE(a.ContainsPoint(p));
  EXPECT_FALSE(c.ContainsPoint(p));
  EXPECT_DOUBLE_EQ(b.MinCoordSum(), 2.0);
}

TEST(PathTest, SidMatchesPaperExample) {
  // Paper §IV.B.1 with M = 2: root SID 0, N1 = <1> -> 1, N3 = <1,1> -> 4.
  EXPECT_EQ(PathToSid({}, 2), 0u);
  EXPECT_EQ(PathToSid({1}, 2), 1u);
  EXPECT_EQ(PathToSid({2}, 2), 2u);
  EXPECT_EQ(PathToSid({1, 1}, 2), 4u);
  EXPECT_EQ(PathToSid({1, 2}, 2), 5u);
  EXPECT_EQ(PathToSid({2, 2}, 2), 8u);
}

TEST(PathTest, SidRoundTrip) {
  for (uint32_t m : {2u, 7u, 100u}) {
    for (Path p : std::vector<Path>{{1}, {1, 1}, {2, 1, 2}, {1, 2, 1, 2}}) {
      for (auto& slot : p) slot = std::min<uint16_t>(slot, static_cast<uint16_t>(m));
      uint64_t sid = PathToSid(p, m);
      EXPECT_EQ(SidToPath(sid, m, static_cast<int>(p.size())), p);
    }
  }
}

TEST(PathTest, SidsUniqueAcrossLevels) {
  // Enumerate all paths of length <= 3 for M = 3; SIDs must be distinct.
  const uint32_t m = 3;
  std::set<uint64_t> sids;
  sids.insert(PathToSid({}, m));
  std::vector<Path> frontier = {{}};
  for (int level = 0; level < 3; ++level) {
    std::vector<Path> next;
    for (const Path& p : frontier) {
      for (uint16_t s = 1; s <= m; ++s) {
        Path q = p;
        q.push_back(s);
        EXPECT_TRUE(sids.insert(PathToSid(q, m)).second) << PathToString(q);
        next.push_back(q);
      }
    }
    frontier = std::move(next);
  }
}

TEST(NodeViewTest, LayoutAndSlots) {
  EXPECT_GE(NodeView::MaxEntries(2), 100u);
  EXPECT_LT(NodeView::MaxEntries(5), NodeView::MaxEntries(2));
  Page page;
  NodeView node(&page, 3);
  node.Init(true, 0);
  EXPECT_TRUE(node.is_leaf());
  EXPECT_EQ(node.count(), 0u);
  RectF r = RectF::Point(std::vector<float>{0.1f, 0.2f, 0.3f});
  node.SetEntry(5, r, 42);
  EXPECT_TRUE(node.Valid(5));
  EXPECT_FALSE(node.Valid(4));
  EXPECT_EQ(node.count(), 1u);
  EXPECT_EQ(node.GetId(5), 42u);
  EXPECT_TRUE(node.GetRect(5).Equals(r));
  EXPECT_EQ(node.FirstFreeSlot(), 0u);
  node.ClearEntry(5);
  EXPECT_EQ(node.count(), 0u);
  node.ClearEntry(5);  // clearing twice is a no-op
  EXPECT_EQ(node.count(), 0u);
}

class RTreeFixture : public ::testing::Test {
 protected:
  RTreeFixture() : pool_(&pm_, 4096, &stats_) {}

  Dataset MakeData(uint64_t n, int dp, uint64_t seed) {
    SyntheticConfig config;
    config.num_tuples = n;
    config.num_bool = 1;
    config.num_pref = dp;
    config.bool_cardinality = 4;
    config.seed = seed;
    return GenerateSynthetic(config);
  }

  /// Structural invariants: parent rect == child MBR, level consistency,
  /// every tuple's CollectPaths entry resolves via FindPath.
  void CheckInvariants(const RStarTree& tree, const Dataset& data,
                       const std::set<TupleId>& expect_tids) {
    std::set<TupleId> seen;
    std::map<TupleId, Path> paths;
    ASSERT_TRUE(tree.CollectPaths([&](TupleId tid, const Path& p,
                                      std::span<const float> pt) {
      EXPECT_TRUE(seen.insert(tid).second) << "duplicate tid " << tid;
      EXPECT_EQ(p.size(), static_cast<size_t>(tree.height() + 1));
      for (int d = 0; d < tree.dims(); ++d) {
        EXPECT_FLOAT_EQ(pt[d], data.PrefValue(tid, d));
      }
      paths[tid] = p;
    }).ok());
    EXPECT_EQ(seen, expect_tids);
    EXPECT_EQ(tree.num_entries(), expect_tids.size());
    for (TupleId tid : expect_tids) {
      auto found = tree.FindPath(data.PrefPoint(tid), tid);
      ASSERT_TRUE(found.ok()) << tid;
      EXPECT_EQ(*found, paths[tid]);
    }
    CheckMbrs(tree, tree.root());
  }

  void CheckMbrs(const RStarTree& tree, PageId pid) {
    auto handle = tree.ReadNode(pid);
    ASSERT_TRUE(handle.ok());
    NodeView node(handle->get(), tree.dims());
    if (node.is_leaf()) return;
    for (uint32_t s = 0; s < node.max_entries(); ++s) {
      if (!node.Valid(s)) continue;
      PageId child = node.GetId(s);
      RectF parent_rect = node.GetRect(s);
      {
        auto child_handle = tree.ReadNode(child);
        ASSERT_TRUE(child_handle.ok());
        NodeView cv(child_handle->get(), tree.dims());
        EXPECT_EQ(cv.level() + 1, node.level());
        EXPECT_TRUE(parent_rect.Equals(cv.Mbr()))
            << "parent entry rect != child MBR";
      }
      CheckMbrs(tree, child);
    }
  }

  MemoryPageManager pm_;
  IoStats stats_;
  BufferPool pool_;
};

TEST_F(RTreeFixture, InsertBuildSmallFanout) {
  Dataset data = MakeData(500, 2, 21);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 8;
  auto tree = RStarTree::BuildByInsertion(&pool_, data, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_GE(tree->height(), 2);
  std::set<TupleId> all;
  for (TupleId t = 0; t < 500; ++t) all.insert(t);
  CheckInvariants(*tree, data, all);
}

TEST_F(RTreeFixture, InsertBuildWithoutReinsert) {
  Dataset data = MakeData(400, 3, 22);
  RTreeOptions options;
  options.dims = 3;
  options.max_entries = 6;
  options.forced_reinsert = false;
  auto tree = RStarTree::BuildByInsertion(&pool_, data, options);
  ASSERT_TRUE(tree.ok());
  std::set<TupleId> all;
  for (TupleId t = 0; t < 400; ++t) all.insert(t);
  CheckInvariants(*tree, data, all);
}

TEST_F(RTreeFixture, BulkLoadStructure) {
  Dataset data = MakeData(2000, 2, 23);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 16;
  auto tree = RStarTree::BulkLoad(&pool_, data, options);
  ASSERT_TRUE(tree.ok());
  std::set<TupleId> all;
  for (TupleId t = 0; t < 2000; ++t) all.insert(t);
  CheckInvariants(*tree, data, all);
}

TEST_F(RTreeFixture, BulkLoadPageFanout) {
  Dataset data = MakeData(30000, 3, 24);
  RTreeOptions options;
  options.dims = 3;
  auto tree = RStarTree::BulkLoad(&pool_, data, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 30000u);
  // Page-derived fanout for 3 dims exceeds 100, so 30k points fit height 2.
  EXPECT_LE(tree->height(), 2);
}

TEST_F(RTreeFixture, ExplicitBuildMatchesTable1) {
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 2;
  auto tree = RStarTree::BuildExplicit(&pool_, options, Table1TreeEntries());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->height(), 2);
  EXPECT_EQ(tree->num_entries(), 8u);
  for (const auto& [tid, point, path] : Table1TreeEntries()) {
    auto found = tree->FindPath(point, tid);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, path) << "t" << (tid + 1);
  }
  EXPECT_TRUE(tree->ResolvePath({1}, IoCategory::kRtreeBlock).ok());
  EXPECT_TRUE(tree->ResolvePath({2, 2}, IoCategory::kRtreeBlock).ok());
  EXPECT_FALSE(tree->ResolvePath({3}, IoCategory::kRtreeBlock).ok());
}

TEST_F(RTreeFixture, DeleteKeepsOtherPathsStable) {
  Dataset data = MakeData(300, 2, 25);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 8;
  auto tree = RStarTree::BuildByInsertion(&pool_, data, options);
  ASSERT_TRUE(tree.ok());

  std::map<TupleId, Path> before;
  ASSERT_TRUE(tree->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        before[tid] = p;
      }).ok());

  std::set<TupleId> remaining;
  for (TupleId t = 0; t < 300; ++t) remaining.insert(t);
  Random rng(4);
  TupleId first_victim = 0;
  for (int i = 0; i < 100; ++i) {
    TupleId victim =
        *std::next(remaining.begin(),
                   static_cast<long>(rng.Uniform(remaining.size())));
    if (i == 0) first_victim = victim;
    PathChangeSet changes;
    ASSERT_TRUE(tree->Delete(data.PrefPoint(victim), victim, &changes).ok());
    remaining.erase(victim);
    ASSERT_EQ(changes.changes.size(), 1u);
    EXPECT_TRUE(changes.changes[0].deleted);
    EXPECT_EQ(changes.changes[0].old_path, before[victim]);
  }
  // Survivors keep their exact paths (free-entry model, paper §IV.B.3).
  ASSERT_TRUE(tree->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        EXPECT_EQ(p, before[tid]) << "path moved for tid " << tid;
      }).ok());
  CheckInvariants(*tree, data, remaining);
  // Deleting an already-deleted tuple fails cleanly.
  EXPECT_FALSE(
      tree->Delete(data.PrefPoint(first_victim), first_victim, nullptr).ok());
}

TEST_F(RTreeFixture, InsertReportsAccuratePathChanges) {
  Dataset data = MakeData(600, 2, 26);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 8;
  auto tree = RStarTree::Create(&pool_, options);
  ASSERT_TRUE(tree.ok());
  for (TupleId t = 0; t < 300; ++t) {
    ASSERT_TRUE(tree->Insert(data.PrefPoint(t), t, nullptr).ok());
  }
  for (TupleId t = 300; t < 600; ++t) {
    std::map<TupleId, Path> before;
    ASSERT_TRUE(tree->CollectPaths(
        [&](TupleId tid, const Path& p, std::span<const float>) {
          before[tid] = p;
        }).ok());
    PathChangeSet changes;
    ASSERT_TRUE(tree->Insert(data.PrefPoint(t), t, &changes).ok());
    std::map<TupleId, Path> after;
    ASSERT_TRUE(tree->CollectPaths(
        [&](TupleId tid, const Path& p, std::span<const float>) {
          after[tid] = p;
        }).ok());

    if (changes.root_split) continue;  // everything changed; consumers rebuild

    std::set<TupleId> reported;
    for (const PathChange& c : changes.changes) {
      reported.insert(c.tid);
      ASSERT_TRUE(c.has_new);
      EXPECT_EQ(c.new_path, after[c.tid]) << "tid " << c.tid;
      if (c.has_old) {
        EXPECT_EQ(c.old_path, before[c.tid]) << "tid " << c.tid;
      } else {
        EXPECT_EQ(c.tid, t);  // only the new tuple lacks an old path
      }
    }
    for (const auto& [tid, path] : after) {
      auto it = before.find(tid);
      if (it == before.end() || it->second != path) {
        EXPECT_TRUE(reported.count(tid) > 0)
            << "unreported path change for tid " << tid;
      }
    }
  }
}

TEST_F(RTreeFixture, MixedInsertDeleteBatchChanges) {
  Dataset data = MakeData(400, 2, 27);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 8;
  auto tree = RStarTree::Create(&pool_, options);
  ASSERT_TRUE(tree.ok());
  for (TupleId t = 0; t < 200; ++t) {
    ASSERT_TRUE(tree->Insert(data.PrefPoint(t), t, nullptr).ok());
  }
  std::map<TupleId, Path> before;
  ASSERT_TRUE(tree->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        before[tid] = p;
      }).ok());

  // One batch: insert 100 new, delete 50 old.
  PathChangeSet changes;
  for (TupleId t = 200; t < 300; ++t) {
    ASSERT_TRUE(tree->Insert(data.PrefPoint(t), t, &changes).ok());
  }
  for (TupleId t = 0; t < 50; ++t) {
    ASSERT_TRUE(tree->Delete(data.PrefPoint(t), t, &changes).ok());
  }
  if (changes.root_split) GTEST_SKIP() << "root split in batch";

  std::map<TupleId, Path> after;
  ASSERT_TRUE(tree->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float>) {
        after[tid] = p;
      }).ok());
  std::set<TupleId> reported;
  for (const PathChange& c : changes.changes) {
    reported.insert(c.tid);
    if (c.deleted) {
      EXPECT_EQ(after.count(c.tid), 0u);
      if (c.has_old) {
        EXPECT_EQ(c.old_path, before[c.tid]);
      }
    } else {
      ASSERT_TRUE(c.has_new) << c.tid;
      EXPECT_EQ(c.new_path, after[c.tid]);
    }
  }
  for (const auto& [tid, path] : after) {
    if (reported.count(tid) == 0) {
      EXPECT_EQ(before.at(tid), path);
    }
  }
}

}  // namespace
}  // namespace pcube
