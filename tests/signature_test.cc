// Signature tests, anchored on the paper's worked example: the (A=a1)
// signature of Fig. 2 computed from Table I / Fig. 1, plus Set/Clear/Test
// properties against a brute-force oracle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/signature.h"
#include "core/signature_builder.h"
#include "data/generators.h"
#include "data/table1.h"
#include "rtree/rstar_tree.h"
#include "storage/buffer_pool.h"

namespace pcube {
namespace {

// Signature of one cell over Table I's tree (M = 2, 3 node levels).
Signature Table1CellSignature(int dim, uint32_t value) {
  Dataset data = MakeTable1Dataset();
  Signature sig(2, 3);
  for (const auto& [tid, point, path] : Table1TreeEntries()) {
    if (data.BoolValue(tid, dim) == value) sig.SetPath(path);
  }
  return sig;
}

TEST(SignatureTest, Fig2WorkedExample) {
  // Cell A = a1 holds t1 <1,1,1> and t3 <1,2,1>. Fig. 2a shows the bit
  // arrays: root "10", N1 "11", N3 "10", N4 "10"; no arrays under N2.
  Signature sig = Table1CellSignature(kTable1DimA, 0);
  EXPECT_EQ(sig.root().bits.ToString(), "10");
  const SignatureNode* n1 = sig.FindNode({1});
  ASSERT_NE(n1, nullptr);
  EXPECT_EQ(n1->bits.ToString(), "11");
  const SignatureNode* n3 = sig.FindNode({1, 1});
  ASSERT_NE(n3, nullptr);
  EXPECT_EQ(n3->bits.ToString(), "10");
  const SignatureNode* n4 = sig.FindNode({1, 2});
  ASSERT_NE(n4, nullptr);
  EXPECT_EQ(n4->bits.ToString(), "10");
  EXPECT_EQ(sig.FindNode({2}), nullptr);

  // Test() on every node and tuple path.
  EXPECT_TRUE(sig.Test({1}));
  EXPECT_FALSE(sig.Test({2}));
  EXPECT_TRUE(sig.Test({1, 1}));
  EXPECT_TRUE(sig.Test({1, 2}));
  EXPECT_TRUE(sig.Test({1, 1, 1}));   // t1
  EXPECT_FALSE(sig.Test({1, 1, 2}));  // t2 is a2
  EXPECT_TRUE(sig.Test({1, 2, 1}));   // t3
  EXPECT_FALSE(sig.Test({2, 1, 1}));  // t5
}

TEST(SignatureTest, InsertionOrderDoesNotMatter) {
  Signature a(4, 3), b(4, 3);
  std::vector<Path> paths = {{1, 2, 3}, {4, 4, 4}, {1, 2, 1}, {2, 1, 1}};
  for (const Path& p : paths) a.SetPath(p);
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) b.SetPath(*it);
  EXPECT_TRUE(a.Equals(b));
}

TEST(SignatureTest, ClearPathInvertsSetPath) {
  Signature sig(3, 3);
  sig.SetPath({1, 2, 3});
  sig.SetPath({1, 2, 1});
  sig.SetPath({2, 1, 1});
  // Remove one path; the shared prefix must survive.
  sig.ClearPath({1, 2, 3});
  EXPECT_TRUE(sig.Test({1, 2, 1}));
  EXPECT_FALSE(sig.Test({1, 2, 3}));
  EXPECT_TRUE(sig.Test({1, 2}));
  // Remove the second path under <1,2>: the whole branch must vanish.
  sig.ClearPath({1, 2, 1});
  EXPECT_FALSE(sig.Test({1, 2}));
  EXPECT_FALSE(sig.Test({1}));
  EXPECT_EQ(sig.FindNode({1}), nullptr);
  EXPECT_TRUE(sig.Test({2, 1, 1}));
  sig.ClearPath({2, 1, 1});
  EXPECT_TRUE(sig.Empty());
}

TEST(SignatureTest, ClearMissingPathIsNoOp) {
  Signature sig(3, 2);
  sig.SetPath({1, 1});
  Signature copy = sig.Clone();
  sig.ClearPath({2, 2});
  sig.ClearPath({1, 3});
  EXPECT_TRUE(sig.Equals(copy));
}

TEST(SignatureTest, CloneIsDeep) {
  Signature sig(3, 2);
  sig.SetPath({1, 1});
  Signature copy = sig.Clone();
  sig.SetPath({2, 2});
  EXPECT_FALSE(copy.Test({2, 2}));
  EXPECT_TRUE(sig.Test({2, 2}));
}

TEST(SignatureTest, CountsAndToString) {
  Signature sig(2, 3);
  sig.SetPath({1, 1, 1});
  sig.SetPath({1, 2, 1});
  // Bits: root{1}, <1>{1,2}, <1,1>{1}, <1,2>{1} = 5 set bits, 4 arrays.
  EXPECT_EQ(sig.CountBits(), 5u);
  EXPECT_EQ(sig.CountNodes(), 4u);
  EXPECT_NE(sig.ToString().find("<1,2>: 10"), std::string::npos);
}

// Property: Test(path) over a signature built from random tuple paths equals
// the brute-force "does any inserted path have this prefix" oracle.
class SignaturePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SignaturePropertyTest, MatchesPrefixOracle) {
  Random rng(GetParam());
  const uint32_t m = 2 + rng.Uniform(5);
  const int levels = 2 + static_cast<int>(rng.Uniform(3));
  Signature sig(m, levels);
  std::set<Path> inserted;
  for (int i = 0; i < 200; ++i) {
    Path p(levels);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(m));
    sig.SetPath(p);
    inserted.insert(p);
  }
  // Remove a random subset again.
  std::vector<Path> all(inserted.begin(), inserted.end());
  for (size_t i = 0; i < all.size() / 2; ++i) {
    sig.ClearPath(all[i]);
    inserted.erase(all[i]);
  }
  auto oracle = [&](const Path& prefix) {
    for (const Path& p : inserted) {
      if (std::equal(prefix.begin(), prefix.end(), p.begin())) return true;
    }
    return false;
  };
  // Exhaustively check all prefixes up to full depth (m^levels is small).
  std::vector<Path> frontier = {{}};
  for (int level = 0; level < levels; ++level) {
    std::vector<Path> next;
    for (const Path& p : frontier) {
      for (uint16_t s = 1; s <= m; ++s) {
        Path q = p;
        q.push_back(s);
        EXPECT_EQ(sig.Test(q), oracle(q)) << PathToString(q);
        next.push_back(q);
      }
    }
    frontier = std::move(next);
    if (frontier.size() > 5000) break;  // cap the exhaustive sweep
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SignaturePropertyTest, ::testing::Range(0, 10));

// End-to-end: signatures built from a real R-tree agree with a brute-force
// check against the tree's node containment.
TEST(SignatureTest, BuilderMatchesTreeContainment) {
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 4096, &stats);
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 5;
  config.seed = 9;
  Dataset data = GenerateSynthetic(config);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 8;
  auto tree = RStarTree::BuildByInsertion(&pool, data, options);
  ASSERT_TRUE(tree.ok());
  auto paths = PathTable::Collect(*tree);
  ASSERT_TRUE(paths.ok());

  for (int dim = 0; dim < 2; ++dim) {
    auto sigs = BuildAtomicCuboidSignatures(data, *paths, dim, tree->fanout(),
                                            tree->height() + 1);
    for (uint32_t v = 0; v < 5; ++v) {
      // Oracle: set of all prefixes of paths of tuples with value v.
      std::set<Path> present;
      for (TupleId t = 0; t < data.num_tuples(); ++t) {
        if (data.BoolValue(t, dim) != v) continue;
        const Path& p = paths->path(t);
        for (size_t len = 1; len <= p.size(); ++len) {
          present.insert(Path(p.begin(), p.begin() + len));
        }
      }
      for (TupleId t = 0; t < data.num_tuples(); t += 13) {
        const Path& p = paths->path(t);
        for (size_t len = 1; len <= p.size(); ++len) {
          Path prefix(p.begin(), p.begin() + len);
          EXPECT_EQ(sigs[v].Test(prefix), present.count(prefix) > 0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace pcube
