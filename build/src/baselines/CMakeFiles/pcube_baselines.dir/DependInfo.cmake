
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/boolean_first.cc" "src/baselines/CMakeFiles/pcube_baselines.dir/boolean_first.cc.o" "gcc" "src/baselines/CMakeFiles/pcube_baselines.dir/boolean_first.cc.o.d"
  "/root/repo/src/baselines/domination_first.cc" "src/baselines/CMakeFiles/pcube_baselines.dir/domination_first.cc.o" "gcc" "src/baselines/CMakeFiles/pcube_baselines.dir/domination_first.cc.o.d"
  "/root/repo/src/baselines/index_merge.cc" "src/baselines/CMakeFiles/pcube_baselines.dir/index_merge.cc.o" "gcc" "src/baselines/CMakeFiles/pcube_baselines.dir/index_merge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/pcube_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pcube_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/pcube_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pcube_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/pcube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
