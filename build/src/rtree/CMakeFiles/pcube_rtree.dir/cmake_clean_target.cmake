file(REMOVE_RECURSE
  "libpcube_rtree.a"
)
