// End-to-end tests of the write path (DESIGN.md §15): Apply() semantics on
// the Workbench (read-your-writes, validation, ack modes), crash recovery
// through WAL replay in Workbench::Open — including a deterministically torn
// commit via scripted fault injection — and the ShardedWorkbench's routed
// Apply. TSan-labeled: the maintenance thread, the group-commit handshake
// and the coordinator fan-out all run under these tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "query/reference.h"
#include "shard/sharded_workbench.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

SyntheticConfig SmallConfig(uint64_t seed) {
  SyntheticConfig config;
  config.num_tuples = 800;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = seed;
  return config;
}

WriteBatch::Row MakeRow(const Dataset& data, TupleId t) {
  auto bools = data.BoolRow(t);
  auto prefs = data.PrefPoint(t);
  return {{bools.begin(), bools.end()}, {prefs.begin(), prefs.end()}};
}

/// A row that strictly dominates every synthetic tuple (generator values
/// are in [0, 1); smaller is better), so the skyline of its cell is just it.
WriteBatch::Row DominatingRow(uint32_t bool_value, int num_bool,
                              int num_pref) {
  WriteBatch::Row row;
  row.bools.assign(static_cast<size_t>(num_bool), bool_value);
  row.prefs.assign(static_cast<size_t>(num_pref), -1.5f);
  return row;
}

/// Naive skyline over the LIVE tuples only (NaiveSkyline knows nothing of
/// tombstones), sorted ascending like the engines' answers.
std::vector<TupleId> LiveSkyline(const Workbench& w,
                                 const PredicateSet& preds) {
  const Dataset& data = w.data();
  std::vector<TupleId> tids;
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    if (w.tombstones().count(t) > 0) continue;
    bool match = true;
    for (const Predicate& p : preds.predicates()) {
      if (data.BoolValue(t, p.dim) != p.value) {
        match = false;
        break;
      }
    }
    if (match) tids.push_back(t);
  }
  std::vector<int> dims;  // SortFilterSkyline does not expand {} to all dims
  for (int d = 0; d < data.num_pref(); ++d) dims.push_back(d);
  std::vector<TupleId> sky = SortFilterSkyline(data, std::move(tids), dims);
  std::sort(sky.begin(), sky.end());
  return sky;
}

std::string FirstProblem(const Workbench::IntegrityReport& report) {
  return report.ok() ? std::string() : report.errors.front().second;
}

TEST(WritePathTest, ApplyAcksAndReadsItsOwnWrites) {
  auto built = Workbench::Build(GenerateSynthetic(SmallConfig(11)), {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Workbench& w = **built;
  const TupleId base = w.data().num_tuples();

  WriteBatch batch;
  batch.inserts.push_back(DominatingRow(1, 2, 2));
  auto applied = w.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->first_tid, base);
  EXPECT_GT(applied->lsn, 0u);
  EXPECT_GE(applied->group_size, 1u);
  EXPECT_FALSE(applied->durable);  // RAM-backed WAL: no crash durability

  // kApplied means the return IS the visibility barrier: no drain needed.
  auto sky = w.RunShared(QueryRequest::Skyline({{0, 1}}));
  ASSERT_TRUE(sky.ok());
  ASSERT_EQ(sky->tids.size(), 1u);
  EXPECT_EQ(sky->tids[0], base);

  // Deleting the dominator restores the pre-insert skyline.
  WriteBatch erase;
  erase.deletes.push_back(base);
  ASSERT_TRUE(w.Apply(erase).ok());
  auto after = w.RunShared(QueryRequest::Skyline({{0, 1}}));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(std::count(after->tids.begin(), after->tids.end(), base), 0);
  EXPECT_EQ(after->tids, LiveSkyline(w, {{0, 1}}));
}

TEST(WritePathTest, ApplyRejectsMalformedBatches) {
  auto built = Workbench::Build(GenerateSynthetic(SmallConfig(12)), {});
  ASSERT_TRUE(built.ok());
  Workbench& w = **built;
  const TupleId base = w.data().num_tuples();

  {
    WriteBatch batch;  // wrong boolean arity (schema has 2 dims)
    batch.inserts.push_back({{1}, {0.5f, 0.5f}});
    EXPECT_TRUE(w.Apply(batch).status().IsInvalidArgument());
  }
  {
    WriteBatch batch;  // boolean value beyond the cardinality (3)
    batch.inserts.push_back({{1, 7}, {0.5f, 0.5f}});
    EXPECT_TRUE(w.Apply(batch).status().IsInvalidArgument());
  }
  {
    WriteBatch batch;  // non-finite preference coordinate
    batch.inserts.push_back(
        {{1, 1}, {std::numeric_limits<float>::quiet_NaN(), 0.5f}});
    EXPECT_TRUE(w.Apply(batch).status().IsInvalidArgument());
  }
  {
    WriteBatch batch;  // delete of a tuple that does not exist
    batch.deletes.push_back(base + 1000);
    EXPECT_FALSE(w.Apply(batch).ok());
  }
  {
    WriteBatch batch;  // empty batches are a no-op error, not a WAL record
    EXPECT_TRUE(w.Apply(batch).status().IsInvalidArgument());
  }
  // A rejected batch must not have perturbed the instance.
  EXPECT_EQ(w.data().num_tuples(), base);
  auto report = w.VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << FirstProblem(*report);
}

TEST(WritePathTest, RejectedBatchAppliesNothingAndNeverReachesTheWal) {
  auto built = Workbench::Build(GenerateSynthetic(SmallConfig(23)), {});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Workbench& w = **built;
  const TupleId base = w.data().num_tuples();
  const uint64_t next_lsn = w.wal()->next_lsn();

  // Valid inserts riding with an out-of-range delete: all-or-nothing means
  // the inserts must not land either, and no WAL record may exist.
  WriteBatch bad;
  bad.inserts.push_back(DominatingRow(1, 2, 2));
  bad.deletes.push_back(base + 1000);
  EXPECT_TRUE(w.Apply(bad).status().IsInvalidArgument());
  EXPECT_EQ(w.data().num_tuples(), base);
  EXPECT_EQ(w.wal()->next_lsn(), next_lsn);

  // Duplicate delete within one batch: same contract, NotFound.
  WriteBatch dup;
  dup.inserts.push_back(DominatingRow(1, 2, 2));
  dup.deletes.push_back(0);
  dup.deletes.push_back(0);
  EXPECT_TRUE(w.Apply(dup).status().IsNotFound());
  EXPECT_EQ(w.data().num_tuples(), base);
  EXPECT_EQ(w.wal()->next_lsn(), next_lsn);

  // Deleting the same tuple in two batches: the second is refused at stage
  // time, before the WAL sees it — even while the first may still be
  // pending in the maintenance queue.
  WriteBatch first;
  first.deletes.push_back(1);
  ASSERT_TRUE(w.Apply(first).ok());
  WriteBatch second;
  second.deletes.push_back(1);
  EXPECT_TRUE(w.Apply(second).status().IsNotFound());

  auto report = w.VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << FirstProblem(*report);
}

TEST(WritePathTest, RejectedDeleteCannotBrickRecovery) {
  // Regression: a delete-of-unknown-tuple batch used to be staged durably
  // and only then refused at apply time, so a crash left the WAL holding a
  // batch replay could not apply — and Open refused the whole database.
  const std::string path = testing::TempDir() + "/pcube_wp_reject.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  TupleId expect_rows = 0;
  {
    WorkbenchOptions options;
    options.file_path = path;
    auto built = Workbench::Build(GenerateSynthetic(SmallConfig(24)), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Workbench& w = **built;
    ASSERT_TRUE(w.Save().ok());  // checkpoint: WAL now empty

    WriteBatch bad;
    bad.inserts.push_back(DominatingRow(1, 2, 2));
    bad.deletes.push_back(w.data().num_tuples() + 1000);
    EXPECT_TRUE(w.Apply(bad).status().IsInvalidArgument());

    WriteBatch good;
    good.inserts.push_back(DominatingRow(2, 2, 2));
    good.deletes.push_back(3);
    ASSERT_TRUE(w.Apply(good).ok());
    expect_rows = w.data().num_tuples();
  }  // crash WITHOUT Save: recovery has only the WAL to go on

  // The rejected batch left no record; the acknowledged one is the log's
  // whole content, and reopening replays it without tripping.
  auto inspected = Wal::Inspect(path + ".wal");
  ASSERT_TRUE(inspected.ok());
  EXPECT_TRUE(inspected->ok());
  EXPECT_EQ(inspected->num_records, 1u);
  auto reopened = Workbench::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->data().num_tuples(), expect_rows);
  EXPECT_EQ((*reopened)->tombstones().count(3), 1u);
  auto report = (*reopened)->VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << FirstProblem(*report);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());
}

TEST(WritePathTest, DurableAckVisibleAfterDrain) {
  const std::string path = testing::TempDir() + "/pcube_wp_durable.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  WorkbenchOptions options;
  options.file_path = path;
  auto built = Workbench::Build(GenerateSynthetic(SmallConfig(13)), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Workbench& w = **built;
  const TupleId base = w.data().num_tuples();

  WriteBatch batch;
  batch.ack = WriteBatch::Ack::kDurable;
  batch.inserts.push_back(DominatingRow(2, 2, 2));
  auto applied = w.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_TRUE(applied->durable);  // file-backed: the fsync happened
  EXPECT_EQ(w.wal()->durable_lsn(), applied->lsn);

  // kDurable does not promise visibility; DrainWrites() does.
  ASSERT_TRUE(w.DrainWrites().ok());
  auto sky = w.RunShared(QueryRequest::Skyline({{0, 2}}));
  ASSERT_TRUE(sky.ok());
  ASSERT_EQ(sky->tids.size(), 1u);
  EXPECT_EQ(sky->tids[0], base);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());
}

TEST(WritePathTest, OpenReplaysUncheckpointedBatches) {
  const std::string path = testing::TempDir() + "/pcube_wp_replay.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::vector<TupleId> expect_sky;
  TupleId expect_rows = 0;
  size_t expect_tombstones = 0;
  {
    WorkbenchOptions options;
    options.file_path = path;
    auto built = Workbench::Build(GenerateSynthetic(SmallConfig(14)), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Workbench& w = **built;
    ASSERT_TRUE(w.Save().ok());  // checkpoint: WAL now empty

    // Two batches AFTER the checkpoint: their only record is the WAL.
    Dataset extra = GenerateSynthetic(SmallConfig(15));
    WriteBatch first;
    for (TupleId t = 0; t < 30; ++t) first.inserts.push_back(MakeRow(extra, t));
    ASSERT_TRUE(w.Apply(first).ok());
    WriteBatch second;
    for (TupleId t = 30; t < 50; ++t) {
      second.inserts.push_back(MakeRow(extra, t));
    }
    second.deletes.push_back(5);
    second.deletes.push_back(17);
    ASSERT_TRUE(w.Apply(second).ok());

    expect_rows = w.data().num_tuples();
    expect_tombstones = w.tombstones().size();
    auto sky = w.RunShared(QueryRequest::Skyline({{1, 0}}));
    ASSERT_TRUE(sky.ok());
    expect_sky = sky->tids;
  }  // destroyed WITHOUT Save: the batches exist only in the WAL

  auto reopened = Workbench::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Workbench& w = **reopened;
  EXPECT_EQ(w.data().num_tuples(), expect_rows);
  EXPECT_EQ(w.tombstones().size(), expect_tombstones);
  EXPECT_EQ(w.tombstones().count(5), 1u);
  EXPECT_EQ(w.tombstones().count(17), 1u);
  auto sky = w.RunShared(QueryRequest::Skyline({{1, 0}}));
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(sky->tids, expect_sky);
  auto report = w.VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << FirstProblem(*report);

  // Idempotence across the Save()/checkpoint boundary: replay again after a
  // Save — the WAL is empty now, so a third Open sees the same state.
  ASSERT_TRUE(w.Save().ok());
  reopened->reset();
  auto third = Workbench::Open(path);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ((*third)->data().num_tuples(), expect_rows);
  EXPECT_EQ((*third)->tombstones().size(), expect_tombstones);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());
}

TEST(WritePathTest, TornCommitIsDiscardedOnReopen) {
  // Deterministic crash-mid-commit: a scripted torn write persists only a
  // prefix of the WAL's first record page while the process runs on none
  // the wiser. The batch spans >1 page so the torn page is guaranteed to
  // truncate the record; on reopen its CRC fails, Replay classifies a torn
  // tail, and ONLY that final batch is gone — the pre-crash state answers.
  const std::string path = testing::TempDir() + "/pcube_wp_torn.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  TupleId base_rows = 0;
  {
    WorkbenchOptions options;
    options.file_path = path;
    ScriptedFault tear;
    tear.pid = 1;  // first record page (page 0 is the WAL header)
    tear.op = ScriptedFault::Op::kWrite;
    tear.kind = ScriptedFault::Kind::kTornWrite;
    options.wal_fault_plan.seed = 91;
    options.wal_fault_plan.script.push_back(tear);
    auto built = Workbench::Build(GenerateSynthetic(SmallConfig(16)), options);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    Workbench& w = **built;
    ASSERT_TRUE(w.Save().ok());
    base_rows = w.data().num_tuples();

    Dataset extra = GenerateSynthetic(SmallConfig(17));
    WriteBatch batch;  // ~400 rows * ~20 bytes: well past one 4 KiB page
    for (TupleId t = 0; t < 400; ++t) batch.inserts.push_back(MakeRow(extra, t));
    auto applied = w.Apply(batch);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_TRUE(applied->durable);  // the tear is silent, like a real crash
  }

  auto reopened = Workbench::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->data().num_tuples(), base_rows);
  auto report = (*reopened)->VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << FirstProblem(*report);
  // The heal zeroed the torn suffix: the log is clean again and writable.
  auto inspected = Wal::Inspect(path + ".wal");
  ASSERT_TRUE(inspected.ok());
  EXPECT_TRUE(inspected->ok());
  EXPECT_FALSE(inspected->torn_tail);
  WriteBatch redo;
  redo.inserts.push_back(DominatingRow(0, 2, 2));
  EXPECT_TRUE((*reopened)->Apply(redo).ok());

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());
}

/// Sorted multiset of skyline preference points — the shard-agnostic way to
/// compare answers between deployments whose tuple ids differ.
std::vector<std::vector<float>> SkylinePoints(QueryService& service,
                                              const PredicateSet& preds) {
  auto resp = service.RunShared(QueryRequest::Skyline(preds));
  PCUBE_CHECK(resp.ok()) << resp.status().ToString();
  std::vector<std::vector<float>> points;
  for (TupleId tid : resp->tids) {
    auto pt = service.data().PrefPoint(tid);
    points.emplace_back(pt.begin(), pt.end());
  }
  std::sort(points.begin(), points.end());
  return points;
}

TEST(WritePathTest, ShardedApplyRoutesInsertsAndDeletes) {
  Dataset data = GenerateSynthetic(SmallConfig(18));
  ShardedOptions options;
  options.num_shards = 3;
  auto built = ShardedWorkbench::Build(Dataset(data), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardedWorkbench& sharded = **built;
  const TupleId base = sharded.data().num_tuples();

  // Mirror every mutation into a single-node workbench: answers must agree
  // point-for-point regardless of how the coordinator scattered the rows.
  auto reference = Workbench::Build(std::move(data), {});
  ASSERT_TRUE(reference.ok());

  Dataset extra = GenerateSynthetic(SmallConfig(19));
  WriteBatch batch;
  for (TupleId t = 0; t < 60; ++t) batch.inserts.push_back(MakeRow(extra, t));
  batch.inserts.push_back(DominatingRow(1, 2, 2));
  batch.deletes.push_back(3);
  batch.deletes.push_back(400);

  auto applied = sharded.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->first_tid, base);
  EXPECT_FALSE(applied->durable);  // shards are in-memory rebuilds
  ASSERT_TRUE((*reference)->Apply(batch).ok());

  EXPECT_EQ(sharded.data().num_tuples(), base + 61);
  for (uint32_t v = 0; v < 3; ++v) {
    for (int dim = 0; dim < 2; ++dim) {
      EXPECT_EQ(SkylinePoints(sharded, {{dim, v}}),
                SkylinePoints(**reference, {{dim, v}}))
          << "dim=" << dim << " v=" << v;
    }
  }

  // The dominator got a global tid; deleting it through the routed path
  // must resolve to whichever shard it landed on.
  auto sky = sharded.RunShared(QueryRequest::Skyline({{0, 1}}));
  ASSERT_TRUE(sky.ok());
  ASSERT_EQ(sky->tids.size(), 1u);
  WriteBatch erase;
  erase.deletes.push_back(sky->tids[0]);
  ASSERT_TRUE(sharded.Apply(erase).ok());
  WriteBatch erase_ref;
  erase_ref.deletes.push_back(base + 60);  // same row in reference ids
  ASSERT_TRUE((*reference)->Apply(erase_ref).ok());
  EXPECT_EQ(SkylinePoints(sharded, {{0, 1}}),
            SkylinePoints(**reference, {{0, 1}}));
}

TEST(WritePathTest, ShardedApplyRejectsBadBatchesWholly) {
  // Regression: a bad delete used to be discovered only after the
  // coordinator had extended the global view, leaving global_tids_ ahead of
  // the shard's row count — the next write then died on an internal CHECK.
  Dataset data = GenerateSynthetic(SmallConfig(25));
  ShardedOptions options;
  options.num_shards = 3;
  auto built = ShardedWorkbench::Build(std::move(data), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ShardedWorkbench& sharded = **built;
  const TupleId base = sharded.data().num_tuples();

  WriteBatch bad;
  bad.inserts.push_back(DominatingRow(0, 2, 2));
  bad.deletes.push_back(base + 999);
  EXPECT_TRUE(sharded.Apply(bad).status().IsInvalidArgument());
  EXPECT_EQ(sharded.data().num_tuples(), base);  // nothing routed or appended

  WriteBatch dup;  // duplicate delete of one global tid, plus inserts
  dup.inserts.push_back(DominatingRow(1, 2, 2));
  dup.deletes.push_back(4);
  dup.deletes.push_back(4);
  EXPECT_TRUE(sharded.Apply(dup).status().IsNotFound());
  EXPECT_EQ(sharded.data().num_tuples(), base);

  // The coordinator's view did not diverge: the next write still predicts
  // tids correctly, acknowledges, and its routed delete resolves.
  WriteBatch good;
  good.inserts.push_back(DominatingRow(1, 2, 2));
  good.deletes.push_back(4);
  auto applied = sharded.Apply(good);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_EQ(applied->first_tid, base);
  EXPECT_EQ(sharded.data().num_tuples(), base + 1);

  // Deleting tid 4 again is refused via the owning shard's tombstones.
  WriteBatch again;
  again.deletes.push_back(4);
  EXPECT_TRUE(sharded.Apply(again).status().IsNotFound());
}

TEST(WritePathTest, ConcurrentWritersFormCommitGroups) {
  const std::string path = testing::TempDir() + "/pcube_wp_group.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  WorkbenchOptions options;
  options.file_path = path;
  auto built = Workbench::Build(GenerateSynthetic(SmallConfig(20)), options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Workbench& w = **built;
  const TupleId base = w.data().num_tuples();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> failures{0};
  std::atomic<uint32_t> max_group{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        WriteBatch batch;
        batch.inserts.push_back(DominatingRow(0, 2, 2));
        auto applied = w.Apply(batch);
        if (!applied.ok()) {
          failures.fetch_add(1);
          return;
        }
        uint32_t g = applied->group_size;
        uint32_t seen = max_group.load();
        while (g > seen && !max_group.compare_exchange_weak(seen, g)) {
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(w.data().num_tuples(),
            base + static_cast<TupleId>(kThreads * kPerThread));
  EXPECT_GE(max_group.load(), 1u);
  ASSERT_TRUE(w.DrainWrites().ok());
  auto report = w.VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << FirstProblem(*report);

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".chk").c_str());
}

TEST(WritePathTest, RebuildCubeAfterWritesKeepsAnswers) {
  auto built = Workbench::Build(GenerateSynthetic(SmallConfig(21)), {});
  ASSERT_TRUE(built.ok());
  Workbench& w = **built;
  Dataset extra = GenerateSynthetic(SmallConfig(22));
  WriteBatch batch;
  for (TupleId t = 0; t < 100; ++t) batch.inserts.push_back(MakeRow(extra, t));
  batch.deletes.push_back(7);
  ASSERT_TRUE(w.Apply(batch).ok());
  ASSERT_TRUE(w.RebuildCube().ok());
  for (uint32_t v = 0; v < 3; ++v) {
    auto sky = w.RunShared(QueryRequest::Skyline({{0, v}}));
    ASSERT_TRUE(sky.ok());
    EXPECT_EQ(sky->tids, LiveSkyline(w, {{0, v}}))
        << "v=" << v;
  }
}

}  // namespace
}  // namespace pcube
