file(REMOVE_RECURSE
  "CMakeFiles/grid_partition_test.dir/grid_partition_test.cc.o"
  "CMakeFiles/grid_partition_test.dir/grid_partition_test.cc.o.d"
  "grid_partition_test"
  "grid_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
