#include "core/signature_codec.h"

#include <deque>
#include <set>

#include "bitmap/codec.h"

namespace pcube {

Signature SignatureFragment::ToSignature() const {
  Signature sig(m_, levels_);
  for (const auto& [path, bits] : arrays_) {
    // Map iteration is lexicographic, so parents precede children.
    SignatureNode* node = &sig.mutable_root();
    for (uint16_t slot : path) {
      auto& child = node->children[slot];
      if (!child) child = std::make_unique<SignatureNode>();
      node = child.get();
    }
    node->bits = bits;
  }
  return sig;
}

std::vector<PartialSignature> DecomposeSignature(const Signature& sig,
                                                 size_t max_payload) {
  std::vector<PartialSignature> out;
  if (sig.root().bits.empty() || !sig.root().bits.AnySet()) return out;
  const int levels = sig.levels();
  const uint32_t m = sig.fanout();

  std::set<Path> coded;
  std::deque<Path> roots;
  roots.push_back({});

  while (!roots.empty()) {
    Path p = std::move(roots.front());
    roots.pop_front();
    const SignatureNode* root_node = sig.FindNode(p);
    if (root_node == nullptr) continue;

    PartialSignature partial;
    partial.root_sid = PathToSid(p, m);
    partial.root_path = p;
    bool cut = false;

    std::deque<Path> bfs;
    bfs.push_back(p);
    while (!bfs.empty()) {
      Path x = std::move(bfs.front());
      bfs.pop_front();
      const SignatureNode* node = sig.FindNode(x);
      PCUBE_DCHECK(node != nullptr);
      if (coded.find(x) == coded.end()) {
        size_t before = partial.bytes.size();
        BitmapCodec::Encode(node->bits, &partial.bytes);
        if (partial.bytes.size() > max_payload) {
          PCUBE_CHECK_GT(before, size_t{0})
              << "single node array exceeds partial-signature payload";
          partial.bytes.resize(before);  // drop the overflowing node
          cut = true;
          break;
        }
        coded.insert(x);
      }
      if (static_cast<int>(x.size()) + 1 < levels) {
        for (size_t bit = node->bits.FindNextSet(0); bit < node->bits.size();
             bit = node->bits.FindNextSet(bit + 1)) {
          Path child = x;
          child.push_back(static_cast<uint16_t>(bit + 1));
          bfs.push_back(std::move(child));
        }
      }
    }

    if (!partial.bytes.empty()) out.push_back(std::move(partial));
    if (cut && static_cast<int>(p.size()) + 1 < levels) {
      // Subtree not fully covered: its children become partial roots, in
      // slot order (BFS generation order == ascending SID).
      for (size_t bit = root_node->bits.FindNextSet(0);
           bit < root_node->bits.size();
           bit = root_node->bits.FindNextSet(bit + 1)) {
        Path child = p;
        child.push_back(static_cast<uint16_t>(bit + 1));
        roots.push_back(std::move(child));
      }
    }
  }
  return out;
}

Status DecodePartialSignature(const Path& root_path,
                              const std::vector<uint8_t>& bytes,
                              SignatureFragment* fragment,
                              std::vector<std::pair<Path, BitVector>>* added) {
  const int levels = fragment->levels();
  size_t offset = 0;
  std::deque<Path> bfs;
  bfs.push_back(root_path);
  while (!bfs.empty()) {
    Path x = std::move(bfs.front());
    bfs.pop_front();
    if (!fragment->HasNode(x)) {
      if (offset >= bytes.size()) break;  // cut point: rest is in later partials
      BitVector bits;
      const size_t start = offset;
      PCUBE_RETURN_NOT_OK(
          BitmapCodec::Decode(bytes.data(), bytes.size(), &offset, &bits));
      if (added != nullptr) added->emplace_back(x, bits);
      fragment->AddNode(x, std::move(bits));
      if (fragment->keep_encoded()) {
        fragment->SetEncodedNode(
            x, std::vector<uint8_t>(bytes.begin() + start,
                                    bytes.begin() + offset));
      }
    }
    const BitVector* bits = fragment->Node(x);
    if (static_cast<int>(x.size()) + 1 < levels) {
      for (size_t bit = bits->FindNextSet(0); bit < bits->size();
           bit = bits->FindNextSet(bit + 1)) {
        Path child = x;
        child.push_back(static_cast<uint16_t>(bit + 1));
        bfs.push_back(std::move(child));
      }
    }
  }
  if (offset != bytes.size()) {
    return Status::Corruption("partial signature has trailing bytes");
  }
  return Status::OK();
}

}  // namespace pcube
