# Empty dependencies file for signature_codec_test.
# This may be replaced when dependencies are built.
