// Lightweight Status / Result error handling, in the style of Arrow/RocksDB.
// The library does not throw exceptions on expected failure paths; fallible
// operations return Status (or Result<T> when they produce a value).
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace pcube {

/// Machine-readable failure category carried by Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kNotSupported,
  kInternal,
  kTimeout,
  kResourceExhausted,
};

/// Returns a human-readable name for a StatusCode ("OK", "Invalid argument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Usage follows the Arrow convention:
///
///   Status s = page_manager.Read(pid, &page);
///   if (!s.ok()) return s;                     // or PCUBE_RETURN_NOT_OK(s)
///
/// The class is [[nodiscard]]: every function returning a Status by value
/// is a build error to call and ignore (-Werror=unused-result). The rare
/// call site where dropping the error is genuinely correct must say so with
/// an explicit `.IgnoreError()`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status (the default).
  Status() = default;

  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  /// The load-shedding status: a limit (queue capacity, tenant quota,
  /// projected wait vs. deadline) rejected the work BEFORE it ran. Distinct
  /// from Timeout, which means the work started and its budget expired.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Explicitly discards the status. The one sanctioned way to ignore an
  /// error: it turns an invisible dropped Status into a greppable,
  /// reviewable statement of intent at the call site.
  void IgnoreError() const {}

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// A value-or-Status, analogous to arrow::Result.
///
/// Dereferencing a non-OK Result is a programming error and aborts in debug
/// builds (checked via PCUBE_DCHECK). [[nodiscard]] like Status: silently
/// dropping a Result discards both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : repr_(std::move(value)) {}              // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {        // NOLINT implicit
    PCUBE_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  T& value() & {
    PCUBE_DCHECK(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    PCUBE_DCHECK(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    PCUBE_DCHECK(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace pcube

/// Propagates a non-OK Status to the caller.
#define PCUBE_RETURN_NOT_OK(expr)             \
  do {                                        \
    ::pcube::Status _st = (expr);             \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Asserts that an expression returns OK; aborts with the message otherwise.
/// For call sites where failure indicates a bug rather than an input error.
#define PCUBE_CHECK_OK(expr)                                        \
  do {                                                              \
    ::pcube::Status _st = (expr);                                   \
    PCUBE_CHECK(_st.ok()) << "status not OK: " << _st.ToString();   \
  } while (0)
