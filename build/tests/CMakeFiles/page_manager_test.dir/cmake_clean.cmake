file(REMOVE_RECURSE
  "CMakeFiles/page_manager_test.dir/page_manager_test.cc.o"
  "CMakeFiles/page_manager_test.dir/page_manager_test.cc.o.d"
  "page_manager_test"
  "page_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
