// LRU page cache over a PageManager. A cache miss performs a physical
// PageManager::Read and is charged to the caller-supplied IoCategory; a hit
// is free. Benchmarks start each query with a cleared ("cold") pool so the
// reported disk-access counts match the paper's cold-cache methodology.
//
// Frames are handed out as RAII PageHandles that pin the frame: a pinned
// frame is never evicted, so a handle's Page* stays valid and mutations are
// never lost. If every frame is pinned the pool grows past its capacity
// rather than failing (the standard steal-free policy).
//
// Thread-safety (concurrent query execution): the pool is internally
// partitioned into stripes, each owning a mutex, a frame map and an LRU
// list; a page always maps to the same stripe, so Get/GetMutable/Unpin on
// different pages mostly proceed in parallel while operations on the same
// page serialise. Hit/miss counters are atomics and IoStats charging is
// race-free (see io_stats.h). This makes the READ path — Get() on pages
// written by a happens-before build phase — safe from any number of threads,
// which is what concurrent TopKEngine/SkylineEngine instances need. The
// MUTATION entry points (New, FreePage, FlushAll, Clear) additionally call
// PageManager::Allocate/Free, which are NOT thread-safe; build and
// maintenance remain single-threaded by contract (DESIGN.md "Concurrency
// model").
#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/io_stats.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace pcube {

class BufferPool;
class MetricsRegistry;

/// Pinning, move-only reference to a cached page frame.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, PageId pid, Page* page)
      : pool_(pool), pid_(pid), page_(page) {}
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  Page* get() const { return page_; }
  Page& operator*() const { return *page_; }
  Page* operator->() const { return page_; }
  PageId pid() const { return pid_; }
  bool valid() const { return page_ != nullptr; }

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId pid_ = kInvalidPageId;
  Page* page_ = nullptr;
};

/// Write-back LRU buffer pool with pinning and lock striping.
class BufferPool {
 public:
  /// `capacity_pages` bounds the number of cached frames (>= 1) except when
  /// pins force temporary growth. `num_stripes` controls lock striping:
  /// 0 picks automatically — a single stripe for small pools (preserving the
  /// strict global-LRU eviction order the paper experiments and unit tests
  /// rely on) and 32 stripes for pools of >= 256 pages, where per-stripe
  /// LRU is indistinguishable in practice and concurrency matters.
  BufferPool(PageManager* pm, size_t capacity_pages, IoStats* stats,
             size_t num_stripes = 0);

  /// Registers `stats` as this thread's attribution sink: physical reads and
  /// write-backs performed by the calling thread on ANY BufferPool are also
  /// charged to it (on top of the pool's shared IoStats). The BatchExecutor
  /// wraps each query in one of these to report per-query I/O.
  class ScopedThreadStats {
   public:
    explicit ScopedThreadStats(IoStats* stats);
    ~ScopedThreadStats();
    ScopedThreadStats(const ScopedThreadStats&) = delete;
    ScopedThreadStats& operator=(const ScopedThreadStats&) = delete;

   private:
    IoStats* saved_;
  };

  /// Fetches `pid` for reading; counts a physical read in `cat` on miss.
  /// Safe to call concurrently with other Get/GetMutable/Unpin.
  Result<PageHandle> Get(PageId pid, IoCategory cat);

  /// Fetches `pid` for modification; the frame is marked dirty and written
  /// back on eviction or FlushAll(). The write-back is charged to `cat`.
  Result<PageHandle> GetMutable(PageId pid, IoCategory cat);

  /// Allocates a new page and returns a dirty frame for it. Single-threaded
  /// (calls PageManager::Allocate).
  Result<PageHandle> New(IoCategory cat, PageId* pid);

  /// Writes back all dirty frames (keeps them cached). Single-threaded.
  Status FlushAll();

  /// Writes back dirty frames and empties the cache (a "cold" restart).
  /// Requires no outstanding pins. Single-threaded.
  Status Clear();

  /// Frees `pid`: drops any cached frame without write-back and returns the
  /// page to the PageManager's free list. The page must be unpinned and no
  /// longer referenced by any structure. Single-threaded.
  Status FreePage(PageId pid);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Frames dropped to make room (write-backs of dirty victims included).
  uint64_t evictions() const;
  /// Total wall time threads spent blocked in physical page reads. With a
  /// LatencyPageManager this is the simulated disk time the workload paid;
  /// it also lands in the current query's trace as `io_wait` spans.
  double load_wait_seconds() const;
  size_t num_stripes() const { return stripes_.size(); }
  PageManager* page_manager() const { return pm_; }
  IoStats* stats() const { return stats_; }

  /// Point-in-time counters of one lock stripe.
  struct StripeStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    double load_wait_seconds = 0;
    size_t frames = 0;  ///< resident frames right now
  };
  std::vector<StripeStats> PerStripeStats() const;

  /// Publishes pool gauges into `registry` under `prefix`
  /// (`<prefix>_hits{stripe="0"}`, ... plus `<prefix>_*_total` sums).
  void ExportTo(MetricsRegistry* registry, const std::string& prefix) const;

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    bool dirty = false;
    // True while the frame's physical read is in flight outside the stripe
    // lock; loading frames are never evicted and same-page fetchers wait on
    // Stripe::cv until the flag clears.
    bool loading = false;
    int pins = 0;
    IoCategory cat = IoCategory::kHeapFile;
    std::list<PageId>::iterator lru_pos;
  };

  /// One lock-striping partition: pages hash onto exactly one stripe, which
  /// owns their frames, their LRU order and a share of the capacity.
  /// Lock order: stripe mutexes are leaves — no other pcube lock is ever
  /// acquired while one is held (the physical read in Fetch runs unlocked).
  struct Stripe {
    Mutex mu;
    CondVar cv;  // signalled when a loading frame settles
    std::unordered_map<PageId, Frame> frames GUARDED_BY(mu);
    std::list<PageId> lru GUARDED_BY(mu);  // front = most recent
    size_t capacity GUARDED_BY(mu) = 1;
    // Per-stripe observability counters (atomics so PerStripeStats and the
    // metrics export read them without taking every stripe lock).
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> load_wait_us{0};
  };

  Stripe& StripeFor(PageId pid) {
    return *stripes_[static_cast<size_t>(pid) % stripes_.size()];
  }

  /// Hit-or-load; the physical read runs outside the stripe lock so misses
  /// on different pages overlap. Returns a pinned handle.
  Result<PageHandle> Fetch(PageId pid, IoCategory cat, bool load, bool dirty);
  /// PageManager::Read with bounded retry + exponential backoff on transient
  /// IoError (the only retryable class — Corruption never heals by
  /// re-reading). Attempts are counted in the pcube_io_retries_total /
  /// pcube_io_giveups_total metrics.
  Status ReadWithRetry(PageId pid, Page* out);
  /// Evicts the LRU unpinned frame of `stripe` (caller holds its mutex); a
  /// fully pinned stripe grows instead of failing.
  Status EvictOne(Stripe* stripe) REQUIRES(stripe->mu);
  void Unpin(PageId pid);
  void ChargeRead(IoCategory cat);
  void ChargeWrite(IoCategory cat);

  PageManager* pm_;
  IoStats* stats_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace pcube
