file(REMOVE_RECURSE
  "libpcube_bitmap.a"
)
