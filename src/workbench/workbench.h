// End-to-end assembly of one experimental instance: a simulated disk
// (MemoryPageManager + BufferPool + IoStats), the heap file, the boolean
// B+-tree indices, the shared R*-tree partition and the P-Cube built over
// it. Tests, benchmarks and examples all start from here so they measure
// the same storage stack the paper describes in §VI.A.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <unordered_set>

#include "baselines/boolean_first.h"
#include "baselines/domination_first.h"
#include "baselines/index_merge.h"
#include "cache/epoch.h"
#include "cache/fragment_cache.h"
#include "cache/result_cache.h"
#include "common/metrics.h"
#include "core/pcube.h"
#include "data/generators.h"
#include "query/incremental.h"
#include "query/skyline_engine.h"
#include "query/topk_engine.h"
#include "common/mutex.h"
#include "query/write_batch.h"
#include "storage/checksum.h"
#include "storage/fault_injection.h"
#include "storage/table_store.h"
#include "storage/wal.h"
#include "workbench/batch_executor.h"
#include "workbench/query_service.h"
#include "workbench/write_path.h"

namespace pcube {

/// Every knob of a Workbench instance, for both entry points — this struct
/// is the single documented surface: Build(data, options) honours all
/// fields; Open(path, options) honours the runtime fields (pool_pages,
/// pool_stripes, read_latency_us, verify_checksums, fault_plan and the
/// cache knobs) and ignores the build-time ones (rtree, pcube, grid/build_*
/// flags, file_path) because the structures already exist on disk.
struct WorkbenchOptions {
  /// Buffer-pool capacity in pages (default 64Ki pages = 256 MiB of frames).
  size_t pool_pages = size_t{1} << 16;
  /// Lock stripes for the buffer pool; 0 = automatic (see BufferPool).
  /// Concurrency benchmarks set this explicitly so small eviction-pressure
  /// pools still get parallel stripes.
  size_t pool_stripes = 0;
  /// R*-tree shape (fanout etc.; dims is overwritten from the schema).
  RTreeOptions rtree;
  /// P-Cube materialisation (cuboid depth, Bloom signatures).
  PCubeOptions pcube;
  /// Build the R-tree by repeated R* insertion (construction benchmarks)
  /// instead of STR bulk loading.
  bool rtree_by_insertion = false;
  /// When > 0, use an equi-width grid partition with this many cells per
  /// dimension as the P-Cube template instead of an R-tree clustering.
  int grid_cells_per_dim = 0;
  bool build_indices = true;
  bool build_cube = true;
  bool build_table = true;
  /// When > 0, wrap the page manager in a LatencyPageManager sleeping this
  /// long per physical read. The latency is enabled only AFTER construction,
  /// so building stays fast; queries then pay real blocked time per page
  /// miss (throughput benchmarks overlap these stalls across workers).
  double read_latency_us = 0;
  /// When non-empty, back everything by a file instead of RAM; the instance
  /// can then be persisted with Save() and reopened with Workbench::Open().
  std::string file_path;
  /// Verify a CRC-32 per page on every physical read (storage/checksum.h).
  /// File-backed instances persist the checksums to `<file_path>.chk` on
  /// Save(); files from before this layer open fine (adopt-on-read).
  bool verify_checksums = true;
  /// Storage fault injection (storage/fault_injection.h). Injection is
  /// disarmed while Build/Open construct the structures and armed just
  /// before returning, so faults hit queries, not construction.
  FaultPlan fault_plan;
  /// Separate fault plan for the write-ahead log's own page stack (crash
  /// tests tear the WAL tail deterministically without perturbing the main
  /// store). Disarmed during Open's replay, armed before returning.
  FaultPlan wal_fault_plan;
  /// L1 semantic result cache budget in MiB (cache/result_cache.h); 0
  /// disables the level. Served through QueryPlanner::Run and RunBatch.
  size_t result_cache_mb = 16;
  /// L2 decoded-signature fragment cache budget in MiB
  /// (cache/fragment_cache.h); 0 disables the level.
  size_t fragment_cache_mb = 16;
  /// Allow L1 containment reuse: answer predicates P' ⊇ P from the entry
  /// cached for P (top-k filter pass / skyline Lemma 2 drill-down).
  /// Exact-repeat and truncation hits work regardless.
  bool enable_containment = true;
};

/// One fully built experimental instance — the single-shard QueryService.
/// Heap-allocated and pinned (the maintenance thread and the lock members
/// make it immovable); always held behind a unique_ptr.
class Workbench : public QueryService {
 public:
  /// Builds every structure for `data` (the R-tree dims follow the schema).
  static Result<std::unique_ptr<Workbench>> Build(Dataset data,
                                                  WorkbenchOptions options);

  /// Stops the maintenance thread. Durable-acked batches it had not applied
  /// yet survive in the WAL and are replayed by the next Open().
  ~Workbench() override;

  /// Writes the catalog and flushes all pages; only valid for file-backed
  /// instances (options.file_path). Requires build_table and build_indices;
  /// the cube must use atomic cuboids without Bloom signatures. Drains the
  /// write path, syncs the page file, then truncates the WAL (checkpoint).
  Status Save();

  /// Reopens a previously Save()d file: re-attaches every structure and
  /// reconstructs the in-memory Dataset from the heap file. The single
  /// open path — `options` defaults cover the common case; see
  /// WorkbenchOptions for which fields apply to reopen.
  static Result<std::unique_ptr<Workbench>> Open(
      const std::string& path, const WorkbenchOptions& options = {});

  /// Flushes and empties the buffer pool and snapshots IoStats — queries run
  /// after this observe cold-cache disk-access counts.
  Status ColdStart();

  /// I/O performed since the last ColdStart().
  IoStats IoSince() const { return stats_.Delta(snapshot_); }

  const Dataset& data() const override { return data_; }
  Dataset* mutable_data() { return &data_; }
  BufferPool* pool() { return pool_.get(); }
  IoStats* stats() { return &stats_; }
  TableStore* table() { return table_.get(); }
  const std::vector<BooleanIndex>& indices() const { return indices_; }
  std::vector<BooleanIndex>* mutable_indices() { return &indices_; }
  RStarTree* tree() { return tree_.get(); }
  PCube* cube() { return cube_.get(); }
  PageManager* page_manager() { return pm_.get(); }
  /// The fault-injection layer, or null when options.fault_plan is empty.
  FaultInjectingPageManager* faults() { return faults_; }
  /// The checksum layer, or null when options.verify_checksums is false.
  ChecksumPageManager* checksums() { return checksums_; }

  /// The invalidation epochs every mutation bumps (always present).
  DataEpoch* epoch() override { return &epoch_; }
  /// L1 result cache, or null when options.result_cache_mb == 0.
  ResultCache* result_cache() override { return result_cache_.get(); }
  /// L2 fragment cache, or null when options.fragment_cache_mb == 0.
  FragmentCache* fragment_cache() { return fragment_cache_.get(); }

  /// Optional value dictionaries for the boolean dimensions (set by CSV
  /// importers); persisted with Save() and restored by Open().
  void set_dictionaries(std::vector<std::vector<std::string>> dicts) {
    dictionaries_ = std::move(dicts);
  }
  const std::vector<std::vector<std::string>>& dictionaries() const {
    return dictionaries_;
  }

  /// The single entry point (QueryService): plans via QueryPlanner — L1
  /// lookup, cost-based plan choice honouring request.hint, cold-start
  /// execution, cache publish. See workbench/planner.h for the contract.
  Result<QueryResponse> Run(const QueryRequest& request) override;

  /// Thread-safe single-query entry (QueryService::RunShared): executes on
  /// the calling thread with RunBatch's contract — signature engines, warm
  /// measurements, L1 consulted, no degradation — via a long-lived
  /// BatchExecutor over this instance's shared structures. The instance
  /// must not be mutated while shared queries run.
  Result<QueryResponse> RunShared(const QueryRequest& request) override;

  /// Index-only cost estimates for both plans (QueryPlanner::Estimate).
  Result<PlanEstimate> Estimate(const PredicateSet& preds) override;

  /// The mutation entry point (QueryService::Apply, DESIGN.md §15): fully
  /// validates the batch (schema AND delete tids, against the staged-write
  /// cursors), stages it in the WAL under the write lock, joins a group
  /// commit (one fsync per concurrent writer group), then either returns at
  /// durability (Ack::kDurable) or waits for the maintenance thread to apply
  /// the batch (Ack::kApplied — read-your-writes). A rejected batch never
  /// reaches the WAL, so a batch the log accepted can only fail to apply on
  /// a storage fault — replay after a crash never trips over a batch the
  /// original run already refused. Thread-safe; runs concurrently with
  /// queries, which only ever block for the bounded slice the maintenance
  /// thread holds the structure writer lock.
  Result<WriteResult> Apply(const WriteBatch& batch) override;

  /// The write cursor: row count including every staged insert — the tid
  /// the next Apply()'s first insert would receive. Thread-safe.
  uint64_t staged_rows() const {
    MutexLock lock(&write_mu_);
    return staged_rows_;
  }

  /// Blocks until every batch staged so far is durable AND applied.
  Status DrainWrites();

  /// Recomputes every cube signature from the current tree — the public
  /// gateway to the internal PCube::Rebuild (bench_fig7's rebuild arm).
  /// Drains the write path first; bumps every epoch.
  Status RebuildCube();

  /// Tuples deleted since the heap file was built: Apply() removes deletes
  /// from the R-tree immediately but the heap file and boolean indices keep
  /// their rows, so the boolean-first plan filters through this set. Stable
  /// only while no Apply() is in flight.
  const std::unordered_set<TupleId>& tombstones() const { return tombstones_; }

  /// The write-ahead log (always present; RAM-backed when file_path empty).
  Wal* wal() { return wal_.get(); }

  size_t num_shards() const override { return 1; }
  std::string DescribeShards() const override;

  /// Convenience: signature-based skyline with cold-cache accounting.
  Result<SkylineOutput> SignatureSkyline(const PredicateSet& preds,
                                         std::vector<int> pref_dims = {});
  /// Convenience: signature-based top-k.
  Result<TopKOutput> SignatureTopK(const PredicateSet& preds,
                                   const RankingFunction& f, size_t k);

  /// Convenience: answers `queries` concurrently on `num_workers` threads
  /// over this instance's shared tree + cube (see batch_executor.h). The
  /// instance must not be mutated while the batch runs. `query_log`, when
  /// non-null, receives one JSONL record per query.
  BatchOutput RunBatch(const std::vector<BatchQuery>& queries,
                       size_t num_workers,
                       QueryLog* query_log = nullptr) override;

  /// Publishes this instance's storage gauges — buffer pool per-stripe
  /// hit/miss/eviction/load-wait plus structure page counts — into
  /// `registry` (pass &MetricsRegistry::Default() for the process dump).
  void ExportMetrics(MetricsRegistry* registry) const override;

  /// What VerifyIntegrity found. ok() means every page read back with a
  /// valid checksum and every structure held its invariants.
  struct IntegrityReport {
    uint64_t pages_checked = 0;
    /// One (page id or kInvalidPageId, description) per problem.
    std::vector<std::pair<PageId, std::string>> errors;
    bool ok() const { return errors.empty(); }
  };

  /// Full integrity walk (the engine behind `pcube verify`): reads every
  /// allocated page through the checksum layer, range-scans each boolean
  /// B+-tree checking key order and entry counts, walks the R-tree
  /// structure (RStarTree::CheckStructure) and reassembles every stored
  /// cell signature. Read-only; ends with a ColdStart so the verification
  /// traffic does not pollute later measurements.
  Result<IntegrityReport> VerifyIntegrity();

 private:
  friend class WriteApplier;

  Workbench() : pool_(nullptr) {}

  /// Creates the configured cache levels and attaches them (and the epoch
  /// registry) to the cube; shared tail of Build() and Open().
  void SetUpCaches(const WorkbenchOptions& options);

  /// Seeds the write-path cursors from the (possibly replayed) WAL and
  /// starts the maintenance thread; shared tail of Build() and Open().
  void StartMaintenance();

  /// One staged-but-unapplied batch, queued in LSN order.
  struct PendingWrite {
    uint64_t lsn = 0;
    WriteBatch batch;
  };

  /// Background maintenance: takes bounded slices of DURABLE pending
  /// batches, applies them under the structure writer lock (readers run
  /// between slices), records per-batch failures, advances applied_lsn_.
  void MaintenanceLoop();

  // pcube-lint: begin-lock-free(the structural members are synchronized by
  // struct_mu_'s whole-execution protocol: queries hold the shared side for
  // their entire run, the maintenance thread takes the exclusive side per
  // bounded slice — a discipline GUARDED_BY cannot express because reads
  // reach these fields through layers that never see the lock)
  Dataset data_;
  IoStats stats_;
  IoStats snapshot_;
  std::unique_ptr<PageManager> pm_;
  FaultInjectingPageManager* faults_ = nullptr;   // owned via pm_ chain
  ChecksumPageManager* checksums_ = nullptr;      // owned via pm_ chain
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<TableStore> table_;
  std::vector<BooleanIndex> indices_;
  std::unique_ptr<RStarTree> tree_;
  std::unique_ptr<PCube> cube_;
  DataEpoch epoch_;
  std::unique_ptr<FragmentCache> fragment_cache_;
  std::unique_ptr<ResultCache> result_cache_;
  /// Poolless executor behind RunShared (created with the caches; null when
  /// the instance was built without a cube).
  std::unique_ptr<BatchExecutor> shared_executor_;
  PageId catalog_root_ = kInvalidPageId;
  RTreeOptions rtree_options_;
  std::vector<std::vector<std::string>> dictionaries_;
  // pcube-lint: end-lock-free

  // ---- Write path (DESIGN.md §15) ----------------------------------------
  // pcube-lint: lock-free(the Wal is internally synchronized; the pointer
  // itself is fixed by Build()/Open() before the maintenance thread starts)
  std::unique_ptr<Wal> wal_;
  /// Structure lock: queries hold it shared for their whole execution, the
  /// maintenance thread holds it exclusive per bounded slice. Mutable so
  /// const observers (ExportMetrics) can take the shared side.
  mutable SharedMutex struct_mu_;
  /// Deleted tuples (see tombstones()); written under struct_mu_ exclusive,
  /// read by the boolean-first plan under the shared side.
  // pcube-lint: lock-free(same whole-execution struct_mu_ protocol as the
  // structural members above)
  std::unordered_set<TupleId> tombstones_;
  /// Mutable so the const staged_rows() observer can lock it.
  mutable Mutex write_mu_;
  std::deque<PendingWrite> pending_writes_ GUARDED_BY(write_mu_);
  /// Logical row count including every staged insert: the next batch's
  /// first_tid and its WAL replay cursor (base_rows).
  uint64_t staged_rows_ GUARDED_BY(write_mu_) = 0;
  /// Tids deleted by any staged batch (tombstones_ plus batches not yet
  /// applied): Apply() rejects a delete against this set BEFORE the batch
  /// reaches the WAL, so logically invalid deletes are refused wholly and
  /// the log never holds a batch that replay would have to refuse.
  std::unordered_set<TupleId> staged_deletes_ GUARDED_BY(write_mu_);
  uint64_t applied_lsn_ GUARDED_BY(write_mu_) = 0;
  /// Failures of applied batches, keyed by LSN; consumed by the kApplied
  /// waiter (kDurable failures surface in metrics and DrainWrites).
  std::map<uint64_t, Status> apply_errors_ GUARDED_BY(write_mu_);
  bool stop_maintenance_ GUARDED_BY(write_mu_) = false;
  CondVar pending_cv_;  ///< maintenance waits: work arrived / stop
  CondVar applied_cv_;  ///< writers wait: applied_lsn_ advanced
  // pcube-lint: lock-free(started last in StartMaintenance(), joined in
  // Stop()/the destructor; the handle is never touched in between)
  std::thread maintenance_;
};

}  // namespace pcube
