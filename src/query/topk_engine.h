// Top-k query processing with Algorithm 1 (paper §V.B): identical framework
// to the skyline engine, but the candidate heap is ordered best-first by the
// ranking function's lower bound f(n) = min_{x in n} f(x), and preference
// pruning drops an entry when k results at least as good already exist.
// Because entries pop in ascending bound order and data objects carry exact
// scores, the first k accepted data objects are exactly the top-k.
#pragma once

#include <chrono>
#include <optional>

#include "common/trace.h"
#include "core/probe.h"
#include "query/query_types.h"
#include "query/ranking.h"
#include "query/verifier.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// Executes top-k queries against one R-tree + boolean probe.
class TopKEngine {
 public:
  /// `f` and the probe/verifier must outlive the engine. `verifier` works as
  /// in SkylineEngine (minimal probing / lossy-probe safety).
  TopKEngine(const RStarTree* tree, BooleanProbe* probe,
             const TupleVerifier* verifier, const RankingFunction* f,
             size_t k);

  /// Runs from the root.
  Result<TopKOutput> Run();

  /// Runs with a reconstructed candidate heap (Lemma 2 seeds).
  Result<TopKOutput> RunFrom(const std::vector<SearchEntry>& seed);

  /// Optional per-stage timing sink (signature_probe, heap_expand,
  /// boolean_verify). Must outlive the run; null disables tracing.
  void set_trace(Trace* trace) { trace_ = trace; }

  /// Optional wall-clock deadline, checked once per heap pop: when it
  /// passes, the run stops with Status::Timeout (results found so far are
  /// the best-scored prefix, but a partial top-k is not the top-k).
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }

 private:
  Result<bool> Prune(const SearchEntry& e);

  const RStarTree* tree_;
  BooleanProbe* probe_;
  const TupleVerifier* verifier_;
  Trace* trace_ = nullptr;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const RankingFunction* f_;
  size_t k_;
  TopKOutput out_;
};

}  // namespace pcube
