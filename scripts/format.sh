#!/usr/bin/env bash
# Formats (or with --check, verifies) every tracked C++ source against the
# repo's .clang-format. Exit codes: 0 clean, 1 violations/failure, 77 when
# clang-format is not installed (scripts/ci.sh reports that as a skipped
# phase; the compile-time gates do not depend on it).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="format"
if [ "${1:-}" = "--check" ]; then
  MODE="check"
elif [ -n "${1:-}" ]; then
  echo "usage: scripts/format.sh [--check]" >&2
  exit 1
fi

if ! command -v clang-format >/dev/null 2>&1; then
  echo "format.sh: clang-format not installed — skipping" >&2
  exit 77
fi

mapfile -t FILES < <(git ls-files '*.cc' '*.h' '*.cpp' '*.hpp')
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "format.sh: no C++ sources found" >&2
  exit 1
fi

if [ "$MODE" = "check" ]; then
  clang-format --dry-run --Werror "${FILES[@]}"
  echo "format.sh: ${#FILES[@]} files clean"
else
  clang-format -i "${FILES[@]}"
  echo "format.sh: formatted ${#FILES[@]} files"
fi
