#include "core/signature.h"

#include <sstream>
#include <vector>

namespace pcube {

namespace {
void EnsureBits(SignatureNode* node, uint32_t m) {
  if (node->bits.empty()) node->bits = BitVector(m);
}
}  // namespace

void Signature::SetPath(const Path& p) {
  PCUBE_CHECK_EQ(p.size(), static_cast<size_t>(levels_));
  SignatureNode* node = &root_;
  for (int i = 0; i < levels_; ++i) {
    EnsureBits(node, m_);
    uint16_t slot = p[i];
    PCUBE_DCHECK_GE(slot, 1);
    PCUBE_DCHECK_LE(slot, m_);
    node->bits.Set(slot - 1);
    if (i + 1 < levels_) {
      auto& child = node->children[slot];
      if (!child) child = std::make_unique<SignatureNode>();
      node = child.get();
    }
  }
}

void Signature::ClearPath(const Path& p) {
  PCUBE_CHECK_EQ(p.size(), static_cast<size_t>(levels_));
  // Collect the node chain, then clear bottom-up while arrays go empty.
  std::vector<SignatureNode*> chain{&root_};
  SignatureNode* node = &root_;
  for (int i = 0; i + 1 < levels_; ++i) {
    auto it = node->children.find(p[i]);
    if (it == node->children.end()) return;  // path not present
    node = it->second.get();
    chain.push_back(node);
  }
  for (int i = levels_ - 1; i >= 0; --i) {
    SignatureNode* n = chain[i];
    if (n->bits.empty()) return;
    n->bits.Clear(p[i] - 1);
    if (i + 1 < levels_) n->children.erase(p[i]);  // only if child emptied
    if (n->bits.AnySet()) break;  // node still non-empty: stop propagating
  }
  // Note: children.erase above runs only when the child's array emptied,
  // because the loop advances upward only in that case.
}

bool Signature::Test(const Path& p) const {
  PCUBE_DCHECK_GE(p.size(), size_t{1});
  PCUBE_DCHECK_LE(p.size(), static_cast<size_t>(levels_));
  const SignatureNode* node = &root_;
  for (size_t i = 0; i < p.size(); ++i) {
    if (node->bits.empty() || p[i] < 1 || p[i] > m_ || !node->bits.Get(p[i] - 1)) {
      return false;
    }
    if (i + 1 == p.size()) return true;
    auto it = node->children.find(p[i]);
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return true;
}

const SignatureNode* Signature::FindNode(const Path& p) const {
  const SignatureNode* node = &root_;
  for (uint16_t slot : p) {
    auto it = node->children.find(slot);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

namespace {
uint64_t CountBitsRec(const SignatureNode& n) {
  uint64_t c = n.bits.Count();
  for (const auto& [slot, child] : n.children) c += CountBitsRec(*child);
  return c;
}
uint64_t CountNodesRec(const SignatureNode& n) {
  uint64_t c = 1;
  for (const auto& [slot, child] : n.children) c += CountNodesRec(*child);
  return c;
}
bool EqualsRec(const SignatureNode& a, const SignatureNode& b) {
  // Treat an absent/empty array as all-zero.
  if (!(a.bits == b.bits)) {
    if (a.bits.Count() != 0 || b.bits.Count() != 0) return false;
  }
  if (a.children.size() != b.children.size()) return false;
  auto ia = a.children.begin();
  auto ib = b.children.begin();
  for (; ia != a.children.end(); ++ia, ++ib) {
    if (ia->first != ib->first) return false;
    if (!EqualsRec(*ia->second, *ib->second)) return false;
  }
  return true;
}
void DumpRec(const SignatureNode& n, Path* prefix, std::ostringstream* os) {
  *os << PathToString(*prefix) << ": " << n.bits.ToString() << "\n";
  for (const auto& [slot, child] : n.children) {
    prefix->push_back(slot);
    DumpRec(*child, prefix, os);
    prefix->pop_back();
  }
}
}  // namespace

uint64_t Signature::CountBits() const { return CountBitsRec(root_); }
uint64_t Signature::CountNodes() const { return CountNodesRec(root_); }

bool Signature::Equals(const Signature& other) const {
  return m_ == other.m_ && levels_ == other.levels_ &&
         EqualsRec(root_, other.root_);
}

std::string Signature::ToString() const {
  std::ostringstream os;
  Path prefix;
  DumpRec(root_, &prefix, &os);
  return os.str();
}

void Signature::CloneInto(const SignatureNode& src, SignatureNode* dst) {
  dst->bits = src.bits;
  for (const auto& [slot, child] : src.children) {
    auto copy = std::make_unique<SignatureNode>();
    CloneInto(*child, copy.get());
    dst->children.emplace(slot, std::move(copy));
  }
}

Signature Signature::Clone() const {
  Signature out(m_, levels_);
  CloneInto(root_, &out.root_);
  return out;
}

}  // namespace pcube
