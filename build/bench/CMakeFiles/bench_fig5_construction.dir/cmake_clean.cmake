file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_construction.dir/bench_fig5_construction.cc.o"
  "CMakeFiles/bench_fig5_construction.dir/bench_fig5_construction.cc.o.d"
  "bench_fig5_construction"
  "bench_fig5_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
