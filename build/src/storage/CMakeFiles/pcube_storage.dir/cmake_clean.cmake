file(REMOVE_RECURSE
  "CMakeFiles/pcube_storage.dir/boolean_index.cc.o"
  "CMakeFiles/pcube_storage.dir/boolean_index.cc.o.d"
  "CMakeFiles/pcube_storage.dir/bplus_tree.cc.o"
  "CMakeFiles/pcube_storage.dir/bplus_tree.cc.o.d"
  "CMakeFiles/pcube_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/pcube_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/pcube_storage.dir/page_manager.cc.o"
  "CMakeFiles/pcube_storage.dir/page_manager.cc.o.d"
  "CMakeFiles/pcube_storage.dir/table_store.cc.o"
  "CMakeFiles/pcube_storage.dir/table_store.cc.o.d"
  "libpcube_storage.a"
  "libpcube_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
