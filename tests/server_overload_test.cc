// The admission controller and the live server under sustained overload
// (DESIGN.md §14.2-14.3). Unit tests pin each admission gate — tenant
// token bucket, queue capacity, projected wait — and the queue-time
// deadline shrink; the soak test then drives a real server over loopback
// with more closed-loop clients than workers (offered load ~2x what the
// executor can sustain) and asserts the robustness contract:
//   * the admitted backlog stays bounded by queue_cap at every instant,
//   * load IS shed (nonzero ResourceExhausted answers),
//   * every admitted answer is byte-identical to a direct RunShared,
//   * no crashes, no stuck threads, clean shutdown.
// Runs under TSan via scripts/ci.sh (label `tsan`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/client.h"
#include "server/server.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

// ---- AdmissionController unit tests --------------------------------------

TEST(AdmissionControllerTest, QueueCapacityGate) {
  MetricsRegistry registry;
  AdmissionOptions options;
  options.queue_cap = 3;
  AdmissionController ac(options, &registry);
  AdmissionController::Ticket t;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ac.Admit("a", 0, &t).ok());
  }
  Status shed = ac.Admit("a", 0, &t);
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_EQ(ac.in_flight(), 3u);
  ac.Finish(/*executed=*/true, 0.01);
  EXPECT_TRUE(ac.Admit("a", 0, &t).ok());
  EXPECT_EQ(ac.in_flight_peak(), 3u);
  EXPECT_EQ(
      registry.GetCounter("pcube_server_shed_total{reason=\"queue_full\"}")
          ->Value(),
      1u);
}

TEST(AdmissionControllerTest, TenantTokenBucket) {
  MetricsRegistry registry;
  AdmissionOptions options;
  options.queue_cap = 1000;
  options.tenant_rate = 1;  // 1 request/second...
  options.tenant_burst = 3; // ...after a burst of 3
  AdmissionController ac(options, &registry);
  AdmissionController::Ticket t;
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (ac.Admit("spammer", 0, &t).ok()) ++admitted;
  }
  // The burst drains and then refill is ~0 within this loop's microseconds.
  EXPECT_EQ(admitted, 3);
  // An unrelated tenant has its own full bucket.
  EXPECT_TRUE(ac.Admit("quiet", 0, &t).ok());
  EXPECT_GE(
      registry.GetCounter("pcube_server_shed_total{reason=\"quota\"}")->Value(),
      7u);
  // Per-tenant request accounting counted every attempt.
  EXPECT_EQ(
      registry.GetCounter("pcube_server_requests_total{tenant=\"spammer\"}")
          ->Value(),
      10u);
}

TEST(AdmissionControllerTest, ProjectedWaitShedsPredictableMisses) {
  MetricsRegistry registry;
  AdmissionOptions options;
  options.queue_cap = 1000;
  options.workers = 1;
  AdmissionController ac(options, &registry);
  AdmissionController::Ticket t;

  // Seed the EWMA: one completed 50 ms execution.
  ASSERT_TRUE(ac.Admit("a", 0, &t).ok());
  uint64_t remaining = 0;
  double wait = 0;
  ASSERT_TRUE(ac.StartExecution(t, 0, &remaining, &wait).ok());
  ac.Finish(/*executed=*/true, 0.05);
  EXPECT_NEAR(ac.ewma_exec_seconds(), 0.05, 1e-9);

  // Build a backlog of 10 admitted requests (deadline-less, never shed).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ac.Admit("a", 0, &t).ok());
  }
  // 10 ahead x 50 ms each / 1 worker = 500 ms projected wait: a 100 ms
  // deadline is a predictable miss and must be shed NOW...
  Status shed = ac.Admit("a", 100, &t);
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  // ...while a 2 s deadline clears the projection and is admitted.
  EXPECT_TRUE(ac.Admit("a", 2000, &t).ok());
  EXPECT_EQ(
      registry
          .GetCounter("pcube_server_shed_total{reason=\"projected_wait\"}")
          ->Value(),
      1u);
}

TEST(AdmissionControllerTest, QueueWaitShrinksTheDeadlineBudget) {
  MetricsRegistry registry;
  AdmissionController ac({}, &registry);
  AdmissionController::Ticket t;
  ASSERT_TRUE(ac.Admit("a", 500, &t).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  uint64_t remaining = 0;
  double wait = 0;
  ASSERT_TRUE(ac.StartExecution(t, 500, &remaining, &wait).ok());
  // ~30 ms queued: the execution budget must have shrunk by the wait.
  EXPECT_LT(remaining, 500u);
  EXPECT_GE(remaining, 300u);  // generous slack for slow CI
  EXPECT_GT(wait, 0.02);
  ac.Finish(/*executed=*/true, 0.001);

  // A budget consumed entirely in the queue is a Timeout, not a shed: the
  // work was admitted, started, and its clock ran out (DESIGN.md §14.3).
  ASSERT_TRUE(ac.Admit("a", 10, &t).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  Status timed_out = ac.StartExecution(t, 10, &remaining, &wait);
  EXPECT_TRUE(timed_out.IsTimeout()) << timed_out.ToString();
  EXPECT_EQ(ac.in_flight(), 0u);  // the slot was released
}

TEST(AdmissionControllerTest, ZeroDeadlineIsNeverShedByProjection) {
  MetricsRegistry registry;
  AdmissionOptions options;
  options.queue_cap = 50;
  options.workers = 1;
  AdmissionController ac(options, &registry);
  AdmissionController::Ticket t;
  ASSERT_TRUE(ac.Admit("a", 0, &t).ok());
  uint64_t remaining = 99;
  double wait = 0;
  ASSERT_TRUE(ac.StartExecution(t, 0, &remaining, &wait).ok());
  EXPECT_EQ(remaining, 0u);  // 0 stays 0 = unlimited
  ac.Finish(/*executed=*/true, 10.0);  // huge EWMA
  for (int i = 0; i < 49; ++i) {
    ASSERT_TRUE(ac.Admit("a", 0, &t).ok()) << i;  // projection never fires
  }
}

// ---- Live-server soak at ~2x sustainable load ----------------------------

class ServerOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    // Millisecond-scale queries: with microsecond execution the closed-loop
    // clients below would rarely overlap inside the admission window and
    // the queue would never actually fill.
    config.num_tuples = 60000;
    config.num_bool = 3;
    config.num_pref = 2;
    config.bool_cardinality = 6;
    config.seed = 99;
    WorkbenchOptions wo;
    wo.result_cache_mb = 0;  // every request executes: real, steady load
    wo.fragment_cache_mb = 4;
    auto built = Workbench::Build(GenerateSynthetic(config), wo);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    wb_ = std::move(*built);
  }

  std::vector<QueryRequest> Workload() {
    auto linear =
        std::make_shared<LinearRanking>(std::vector<double>{1.0, 0.5});
    std::vector<QueryRequest> queries;
    for (uint32_t v = 0; v < 6; ++v) {
      queries.push_back(QueryRequest::Skyline(PredicateSet{{0, v}}));
      queries.push_back(QueryRequest::TopK(PredicateSet{{1, v}}, linear, 8));
    }
    return queries;
  }

  std::unique_ptr<Workbench> wb_;
};

TEST_F(ServerOverloadTest, ShedsUnderOverloadAdmittedAnswersStayExact) {
  ServerOptions options;
  options.workers = 2;
  options.admission.queue_cap = 4;
  PCubeServer server(wb_.get(), options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<QueryRequest> queries = Workload();
  std::vector<QueryResponse> expected;
  for (const QueryRequest& q : queries) {
    auto resp = wb_->RunShared(q);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    expected.push_back(std::move(*resp));
  }

  // 10 closed-loop clients against 2 workers and a queue of 4: offered
  // concurrency is 2.5x the cap, so admissions MUST be shed while the
  // backlog stays inside the cap at every instant.
  constexpr int kClients = 10;
  constexpr int kItersPerClient = 40;
  std::atomic<int> ok_count{0}, shed_count{0}, timeout_count{0};
  std::atomic<int> mismatches{0}, hard_failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = PCubeClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        hard_failures.fetch_add(1);
        return;
      }
      const std::string tenant = c % 2 == 0 ? "even" : "odd";
      for (int i = 0; i < kItersPerClient; ++i) {
        const size_t q = (c * 7 + i) % queries.size();
        auto resp = (*client)->Run(queries[q], tenant);
        if (resp.ok()) {
          ok_count.fetch_add(1);
          if (resp->tids != expected[q].tids ||
              resp->scores != expected[q].scores) {
            mismatches.fetch_add(1);
          }
        } else if (resp.status().IsResourceExhausted()) {
          shed_count.fetch_add(1);
        } else if (resp.status().IsTimeout()) {
          timeout_count.fetch_add(1);
        } else {
          hard_failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(ok_count.load(), 0);
  EXPECT_GT(shed_count.load(), 0) << "overload never shed: admission inert?";
  // The bounded queue is the whole point: the backlog never exceeded cap.
  EXPECT_LE(server.admission().in_flight_peak(), options.admission.queue_cap);
  server.Stop();
  EXPECT_EQ(server.admission().in_flight(), 0u);
}

TEST_F(ServerOverloadTest, TenantQuotaIsolatesTheNoisyNeighbor) {
  ServerOptions options;
  options.workers = 2;
  options.admission.queue_cap = 64;
  options.admission.tenant_rate = 2;
  options.admission.tenant_burst = 2;
  PCubeServer server(wb_.get(), options);
  ASSERT_TRUE(server.Start().ok());

  const QueryRequest q = QueryRequest::Skyline(PredicateSet{{0, 1}});
  auto spammer = PCubeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(spammer.ok());
  int spammer_ok = 0, spammer_shed = 0;
  for (int i = 0; i < 10; ++i) {
    auto resp = (*spammer)->Run(q, "noisy");
    if (resp.ok()) {
      ++spammer_ok;
    } else if (resp.status().IsResourceExhausted()) {
      ++spammer_shed;
    }
  }
  EXPECT_GT(spammer_shed, 0) << "quota never engaged";
  EXPECT_GT(spammer_ok, 0) << "burst should admit the first requests";

  // The well-behaved tenant is untouched by the neighbor's quota state.
  auto quiet = PCubeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(quiet.ok());
  auto resp = (*quiet)->Run(q, "quiet");
  EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  server.Stop();
}

TEST(ServerDeadlineTest, QueueTimeCountsAgainstTheDeadline) {
  // A millisecond-scale dataset (so execution, and thus queue wait, is
  // comfortably larger than the tight deadline below), one worker, and four
  // closed-loop hog connections keeping a multi-millisecond backlog in
  // front of it. A client whose whole budget is 1 ms must then see its
  // budget die before or during execution: Timeout (admitted but the queue
  // ate the clock) or ResourceExhausted (projected-wait shed once the EWMA
  // is seeded) — never a full-budget execution.
  SyntheticConfig config;
  config.num_tuples = 120000;
  config.num_bool = 3;
  config.num_pref = 2;
  config.bool_cardinality = 6;
  config.seed = 99;
  WorkbenchOptions wo;
  wo.result_cache_mb = 0;
  auto built = Workbench::Build(GenerateSynthetic(config), wo);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::unique_ptr<Workbench> wb = std::move(*built);

  ServerOptions options;
  options.workers = 1;
  options.admission.queue_cap = 16;
  PCubeServer server(wb.get(), options);
  ASSERT_TRUE(server.Start().ok());

  const QueryRequest slow = QueryRequest::Skyline(PredicateSet{{0, 1}});
  std::atomic<int> hard_failures{0};
  std::atomic<int> deadline_outcomes{0};  // Timeout or ResourceExhausted
  std::atomic<bool> stop{false};
  std::vector<std::thread> hogs;
  for (int h = 0; h < 4; ++h) {
    hogs.emplace_back([&] {
      auto client = PCubeClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        hard_failures.fetch_add(1);
        return;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        auto resp = (*client)->Run(slow, "hog");
        if (!resp.ok() && !resp.status().IsResourceExhausted() &&
            !resp.status().IsTimeout()) {
          hard_failures.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread hurried([&] {
    auto client = PCubeClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      hard_failures.fetch_add(1);
      stop.store(true);
      return;
    }
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      QueryRequest q = slow;
      q.deadline_ms = 1;  // far below the backlog in front of the worker
      auto resp = (*client)->Run(q, "hurried");
      if (!resp.ok()) {
        if (resp.status().IsTimeout() ||
            resp.status().IsResourceExhausted()) {
          deadline_outcomes.fetch_add(1);
          break;  // contract observed; wind the soak down
        }
        hard_failures.fetch_add(1);
        break;
      }
    }
    stop.store(true);
  });
  hurried.join();
  for (std::thread& t : hogs) t.join();
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_GT(deadline_outcomes.load(), 0)
      << "queue wait never charged against the deadline";
  server.Stop();
}

}  // namespace
}  // namespace pcube
