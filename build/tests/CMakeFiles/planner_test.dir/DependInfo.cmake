
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/planner_test.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/planner_test.dir/planner_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workbench/CMakeFiles/pcube_workbench.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pcube_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/pcube_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/pcube_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pcube_data.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/pcube_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pcube_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/pcube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
