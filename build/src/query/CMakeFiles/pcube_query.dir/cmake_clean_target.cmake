file(REMOVE_RECURSE
  "libpcube_query.a"
)
