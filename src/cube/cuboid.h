// Cuboid lattice utilities. A cuboid is identified by a bitmask over the
// boolean dimensions; the P-Cube always materialises the atomic cuboids
// (single-bit masks, paper §IV.B.2: "we assume that the P-Cube always
// contains a set of atomic cuboids") and may additionally materialise
// low-dimensional composite cuboids as suggested by the minimal-cubing
// literature [19], [12].
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cube/cell.h"

namespace pcube {

/// Subset of boolean dimensions, as a bitmask (bit d = dimension d).
using CuboidMask = uint32_t;

inline CuboidMask MaskOf(const PredicateSet& preds) {
  CuboidMask m = 0;
  for (const auto& p : preds.predicates()) m |= CuboidMask{1} << p.dim;
  return m;
}

/// Enumerates all non-empty cuboid masks of dimensionality <= max_dims.
std::vector<CuboidMask> EnumerateCuboids(int num_bool_dims, int max_dims);

/// Assigns CellIds to cells. Atomic cells use the fixed AtomicCellId
/// encoding; composite cells (>= 2 predicates) get sequential ids from a
/// private range so they can coexist with atomic ids in one signature store.
class CellRegistry {
 public:
  /// Returns the id for `preds` (size >= 1), registering composites on first
  /// use. Single-predicate sets map to AtomicCellId.
  CellId Intern(const PredicateSet& preds);

  /// Returns the id if known, or kUnknownCell.
  CellId Lookup(const PredicateSet& preds) const;

  static constexpr CellId kUnknownCell = ~CellId{0};

  size_t num_composite() const { return composite_.size(); }

 private:
  static constexpr CellId kCompositeBase = CellId{1} << 48;

  std::map<std::vector<std::pair<int, uint32_t>>, CellId> composite_;
};

}  // namespace pcube
