
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitmap/bitvector.cc" "src/bitmap/CMakeFiles/pcube_bitmap.dir/bitvector.cc.o" "gcc" "src/bitmap/CMakeFiles/pcube_bitmap.dir/bitvector.cc.o.d"
  "/root/repo/src/bitmap/bloom_filter.cc" "src/bitmap/CMakeFiles/pcube_bitmap.dir/bloom_filter.cc.o" "gcc" "src/bitmap/CMakeFiles/pcube_bitmap.dir/bloom_filter.cc.o.d"
  "/root/repo/src/bitmap/codec.cc" "src/bitmap/CMakeFiles/pcube_bitmap.dir/codec.cc.o" "gcc" "src/bitmap/CMakeFiles/pcube_bitmap.dir/codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
