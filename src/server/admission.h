// Multi-tenant admission control for `pcube serve` (DESIGN.md §14): every
// request passes through Admit() BEFORE any work is queued, and the
// controller sheds load early — with Status::ResourceExhausted — rather
// than letting an overloaded server queue unboundedly and time everything
// out. Three independent gates, checked in order:
//
//   1. tenant quota   — a token bucket per tenant (rate tokens/sec, burst
//                       capacity). A tenant that exceeds its rate is shed
//                       no matter how idle the server is, so one chatty
//                       client cannot starve the rest.
//   2. queue capacity — a hard cap on admitted-but-unfinished requests.
//                       This bounds the server's queue memory and worst-case
//                       drain time under any load.
//   3. projected wait — admitted backlog / workers x EWMA execution time.
//                       When the request carries a deadline and would
//                       PREDICTABLY miss it just waiting in line, shedding
//                       now is strictly better than timing out later: the
//                       client learns in microseconds instead of after
//                       deadline_ms, and the server does zero wasted work.
//
// Admitted requests get their remaining budget recomputed when a worker
// picks them up (StartExecution): time-in-queue is charged against
// deadline_ms, so the engine-level deadline honours the budget END TO END
// instead of restarting the clock at execution. A budget fully consumed in
// the queue is a Timeout (the shed-vs-timeout decision table is in
// DESIGN.md §14.3).
//
// Thread-safety: all entry points may be called from any number of
// connection and worker threads; state is a single mutex plus atomics for
// the test-visible peaks.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"

namespace pcube {

/// Knobs of the admission controller.
struct AdmissionOptions {
  /// Max admitted-but-unfinished requests (queued + executing). Admissions
  /// beyond this are shed with reason "queue_full".
  size_t queue_cap = 64;
  /// Executor parallelism used by the projected-wait model (the server
  /// fills this in from its worker-pool size).
  size_t workers = 1;
  /// Per-tenant sustained rate in requests/second; 0 disables quotas.
  double tenant_rate = 0;
  /// Per-tenant burst capacity in requests; 0 means max(1, tenant_rate).
  double tenant_burst = 0;
  /// Hard bound on the tenant-bucket table (a defensive cap, not a quota:
  /// the tenant id is wire-controlled, so the table must not grow without
  /// limit under a tenant-churning client).
  size_t max_tenants = 4096;
};

/// Token-bucket + bounded-queue + projected-wait load shedder.
class AdmissionController {
 public:
  /// Metrics go to `registry` (never null in the server; tests may pass a
  /// private registry to observe counts in isolation).
  AdmissionController(AdmissionOptions options, MetricsRegistry* registry);

  /// Handed out by Admit; carries the admission timestamp that
  /// StartExecution charges queue time against.
  struct Ticket {
    std::chrono::steady_clock::time_point admitted_at;
  };

  /// Runs the three gates. OK = the caller MUST eventually call
  /// StartExecution + Finish (or Finish(false, 0) if it drops the work).
  /// Non-OK = ResourceExhausted with the gate's reason; nothing to release.
  Status Admit(const std::string& tenant, uint64_t deadline_ms, Ticket* ticket)
      EXCLUDES(mu_);

  /// Called on the worker when execution begins. Observes the queue-wait
  /// histogram and shrinks the budget: `*remaining_ms` = deadline_ms minus
  /// time-in-queue (0 stays 0 = unlimited). Returns Timeout — and releases
  /// the admission slot — when the budget was consumed entirely in the
  /// queue; the caller must NOT execute or call Finish in that case.
  Status StartExecution(const Ticket& ticket, uint64_t deadline_ms,
                        uint64_t* remaining_ms, double* queue_wait_seconds)
      EXCLUDES(mu_);

  /// Releases the admission slot. `executed` distinguishes a completed
  /// execution (feeds `exec_seconds` into the EWMA the projected-wait gate
  /// uses) from abandoned work (EWMA untouched).
  void Finish(bool executed, double exec_seconds) EXCLUDES(mu_);

  /// Admitted-but-unfinished requests right now / lifetime peak.
  size_t in_flight() const EXCLUDES(mu_);
  size_t in_flight_peak() const EXCLUDES(mu_);
  /// Current EWMA of execution seconds (0 until the first completion).
  double ewma_exec_seconds() const EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Bucket {
    double tokens = 0;
    std::chrono::steady_clock::time_point last;
  };

  /// Refills and charges `tenant`'s bucket; false = out of tokens.
  bool TakeToken(const std::string& tenant,
                 std::chrono::steady_clock::time_point now) REQUIRES(mu_);

  void Shed(const char* reason);

  const AdmissionOptions options_;

  // Registration happens once in the constructor; hot paths use pointers.
  // pcube-lint: begin-lock-free(the pointers are written once in the
  // constructor before any other thread sees `this`; the metric objects
  // they point at are internally synchronized)
  Counter* shed_total_;
  Counter* shed_quota_;
  Counter* shed_queue_full_;
  Counter* shed_projected_wait_;
  Gauge* in_flight_gauge_;
  Histogram* queue_wait_;
  MetricsRegistry* registry_;
  // pcube-lint: end-lock-free

  mutable Mutex mu_;
  std::map<std::string, Bucket> buckets_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;
  size_t in_flight_peak_ GUARDED_BY(mu_) = 0;
  /// EWMA (alpha = 0.2) of completed execution times; 0 = no samples yet,
  /// which deliberately disables the projected-wait gate until the server
  /// has evidence of how expensive queries actually are.
  double ewma_exec_seconds_ GUARDED_BY(mu_) = 0;
};

}  // namespace pcube
