#include "server/admission.h"

#include <algorithm>

namespace pcube {

namespace {
constexpr double kEwmaAlpha = 0.2;

double SecondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options,
                                         MetricsRegistry* registry)
    : options_(options), registry_(registry) {
  shed_total_ = registry->GetCounter("pcube_server_shed_total");
  shed_quota_ = registry->GetCounter("pcube_server_shed_total{reason=\"quota\"}");
  shed_queue_full_ =
      registry->GetCounter("pcube_server_shed_total{reason=\"queue_full\"}");
  shed_projected_wait_ = registry->GetCounter(
      "pcube_server_shed_total{reason=\"projected_wait\"}");
  in_flight_gauge_ = registry->GetGauge("pcube_server_inflight");
  queue_wait_ = registry->GetHistogram("pcube_server_queue_wait_seconds");
}

bool AdmissionController::TakeToken(
    const std::string& tenant, std::chrono::steady_clock::time_point now) {
  const double burst = options_.tenant_burst > 0
                           ? options_.tenant_burst
                           : std::max(1.0, options_.tenant_rate);
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    // A fresh tenant starts with a full burst. The table is bounded; a
    // client churning through tenant ids is shed once it is full (tenants
    // the operator cares about were seen long before the 4096th id).
    if (buckets_.size() >= options_.max_tenants) return false;
    it = buckets_.emplace(tenant, Bucket{burst, now}).first;
  } else {
    Bucket& b = it->second;
    b.tokens = std::min(
        burst, b.tokens + options_.tenant_rate * SecondsBetween(b.last, now));
    b.last = now;
  }
  if (it->second.tokens < 1.0) return false;
  it->second.tokens -= 1.0;
  return true;
}

void AdmissionController::Shed(const char* reason) {
  shed_total_->Increment();
  if (reason == std::string_view("quota")) {
    shed_quota_->Increment();
  } else if (reason == std::string_view("queue_full")) {
    shed_queue_full_->Increment();
  } else {
    shed_projected_wait_->Increment();
  }
}

Status AdmissionController::Admit(const std::string& tenant,
                                  uint64_t deadline_ms, Ticket* ticket) {
  const auto now = std::chrono::steady_clock::now();
  // Per-tenant request accounting happens on every admission attempt, shed
  // or not: the metric answers "who is sending load", not "who got served".
  registry_->GetCounter("pcube_server_requests_total{tenant=\"" + tenant +
                        "\"}")->Increment();
  MutexLock lock(&mu_);
  if (options_.tenant_rate > 0 && !TakeToken(tenant, now)) {
    Shed("quota");
    return Status::ResourceExhausted("tenant '" + tenant +
                                     "' is over its request quota");
  }
  if (in_flight_ >= options_.queue_cap) {
    Shed("queue_full");
    return Status::ResourceExhausted("server queue is full");
  }
  if (deadline_ms > 0 && ewma_exec_seconds_ > 0) {
    // The new request drains after everything already admitted: backlog
    // positions ahead of it divided by the executor width, each costing one
    // EWMA execution. Shedding on a predictable miss beats timing out.
    const size_t workers = std::max<size_t>(1, options_.workers);
    const double projected_wait_ms = 1e3 * ewma_exec_seconds_ *
                                     (static_cast<double>(in_flight_) /
                                      static_cast<double>(workers));
    if (projected_wait_ms > static_cast<double>(deadline_ms)) {
      Shed("projected_wait");
      return Status::ResourceExhausted(
          "projected queue wait exceeds the request deadline");
    }
  }
  ++in_flight_;
  in_flight_peak_ = std::max(in_flight_peak_, in_flight_);
  in_flight_gauge_->Set(static_cast<double>(in_flight_));
  ticket->admitted_at = now;
  return Status::OK();
}

Status AdmissionController::StartExecution(const Ticket& ticket,
                                           uint64_t deadline_ms,
                                           uint64_t* remaining_ms,
                                           double* queue_wait_seconds) {
  const auto now = std::chrono::steady_clock::now();
  const double wait = SecondsBetween(ticket.admitted_at, now);
  queue_wait_->Observe(wait);
  *queue_wait_seconds = wait;
  *remaining_ms = deadline_ms;
  if (deadline_ms > 0) {
    const uint64_t waited_ms = static_cast<uint64_t>(wait * 1e3);
    if (waited_ms >= deadline_ms) {
      Finish(/*executed=*/false, 0);
      return Status::Timeout("deadline exhausted while queued");
    }
    *remaining_ms = deadline_ms - waited_ms;
  }
  return Status::OK();
}

void AdmissionController::Finish(bool executed, double exec_seconds) {
  MutexLock lock(&mu_);
  if (in_flight_ > 0) --in_flight_;
  in_flight_gauge_->Set(static_cast<double>(in_flight_));
  if (executed && exec_seconds >= 0) {
    ewma_exec_seconds_ = ewma_exec_seconds_ == 0
                             ? exec_seconds
                             : kEwmaAlpha * exec_seconds +
                                   (1 - kEwmaAlpha) * ewma_exec_seconds_;
  }
}

size_t AdmissionController::in_flight() const {
  MutexLock lock(&mu_);
  return in_flight_;
}

size_t AdmissionController::in_flight_peak() const {
  MutexLock lock(&mu_);
  return in_flight_peak_;
}

double AdmissionController::ewma_exec_seconds() const {
  MutexLock lock(&mu_);
  return ewma_exec_seconds_;
}

}  // namespace pcube
