// Persistence tests: a file-backed workbench survives Save() + Open() with
// identical query answers, signatures, and structures; catalog corruption is
// detected.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/generators.h"
#include "query/reference.h"
#include "workbench/catalog.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

class PersistenceTest : public ::testing::Test {
 protected:
  std::string path_ = testing::TempDir() + "/pcube_persist_test.db";

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());  // the WAL sidecar
  }

  Dataset MakeData(uint64_t seed) {
    SyntheticConfig config;
    config.num_tuples = 3000;
    config.num_bool = 3;
    config.num_pref = 2;
    config.bool_cardinality = 4;
    config.seed = seed;
    return GenerateSynthetic(config);
  }
};

TEST_F(PersistenceTest, SaveOpenRoundTripsQueries) {
  PredicateSet preds{{0, 2}};
  LinearRanking f({0.3, 0.7});
  std::vector<TupleId> skyline_before;
  std::vector<double> topk_before;
  {
    WorkbenchOptions options;
    options.file_path = path_;
    auto wb = Workbench::Build(MakeData(71), options);
    ASSERT_TRUE(wb.ok()) << wb.status().ToString();
    auto sky = (*wb)->SignatureSkyline(preds);
    ASSERT_TRUE(sky.ok());
    skyline_before = SkylineTids(*sky);
    auto topk = (*wb)->SignatureTopK(preds, f, 15);
    ASSERT_TRUE(topk.ok());
    for (const auto& e : topk->results) topk_before.push_back(e.key);
    ASSERT_TRUE((*wb)->Save().ok());
  }  // workbench destroyed; only the file remains

  auto wb = Workbench::Open(path_);
  ASSERT_TRUE(wb.ok()) << wb.status().ToString();
  // The reconstructed Dataset matches the generator.
  Dataset expect = MakeData(71);
  ASSERT_EQ((*wb)->data().num_tuples(), expect.num_tuples());
  for (TupleId t = 0; t < expect.num_tuples(); t += 113) {
    EXPECT_EQ((*wb)->data().BoolValue(t, 1), expect.BoolValue(t, 1));
    EXPECT_EQ((*wb)->data().PrefValue(t, 0), expect.PrefValue(t, 0));
  }
  // Queries give identical answers (and match naive).
  auto sky = (*wb)->SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), skyline_before);
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), preds));
  auto topk = (*wb)->SignatureTopK(preds, f, 15);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->results.size(), topk_before.size());
  for (size_t i = 0; i < topk_before.size(); ++i) {
    EXPECT_DOUBLE_EQ(topk->results[i].key, topk_before[i]);
  }
}

TEST_F(PersistenceTest, ReopenedSignaturesAreBitIdentical) {
  {
    WorkbenchOptions options;
    options.file_path = path_;
    auto wb = Workbench::Build(MakeData(72), options);
    ASSERT_TRUE(wb.ok());
    ASSERT_TRUE((*wb)->Save().ok());
  }
  auto wb = Workbench::Open(path_);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  auto paths = PathTable::Collect(*w.tree());
  ASSERT_TRUE(paths.ok());
  for (int dim = 0; dim < 3; ++dim) {
    for (uint32_t v = 0; v < 4; ++v) {
      Signature expect = BuildCellSignature(w.data(), *paths, {{dim, v}},
                                            w.tree()->fanout(),
                                            w.cube()->levels());
      auto got = w.cube()->store().LoadFull(AtomicCellId(dim, v),
                                            w.tree()->fanout(),
                                            w.cube()->levels());
      ASSERT_TRUE(got.ok());
      EXPECT_TRUE(got->Equals(expect)) << "dim=" << dim << " v=" << v;
    }
  }
}

TEST_F(PersistenceTest, ReopenedWorkbenchSupportsMaintenance) {
  {
    WorkbenchOptions options;
    options.file_path = path_;
    auto wb = Workbench::Build(MakeData(73), options);
    ASSERT_TRUE(wb.ok());
    ASSERT_TRUE((*wb)->Save().ok());
  }
  auto wb = Workbench::Open(path_);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  // Insert 20 new tuples through the reopened stack's write path.
  Dataset extra = MakeData(74);
  WriteBatch batch;
  for (TupleId i = 0; i < 20; ++i) {
    auto bools = extra.BoolRow(i);
    auto prefs = extra.PrefPoint(i);
    batch.inserts.push_back({{bools.begin(), bools.end()},
                             {prefs.begin(), prefs.end()}});
  }
  auto applied = w.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  // Queries still match naive over the extended dataset.
  PredicateSet preds{{1, 1}};
  auto sky = w.SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline(w.data(), preds));
}

TEST_F(PersistenceTest, SaveRequiresFileBacking) {
  auto wb = Workbench::Build(MakeData(75), WorkbenchOptions{});
  ASSERT_TRUE(wb.ok());
  EXPECT_TRUE((*wb)->Save().IsInvalidArgument());
}

TEST_F(PersistenceTest, OpenRejectsGarbageFile) {
  {
    auto fpm = FilePageManager::Open(path_, /*truncate=*/true);
    ASSERT_TRUE(fpm.ok());
    Page junk;
    junk.Zero();
    junk.bytes[0] = 0x42;
    auto pid = (*fpm)->Allocate();
    ASSERT_TRUE(pid.ok());
    ASSERT_TRUE((*fpm)->Write(*pid, junk).ok());
  }
  auto wb = Workbench::Open(path_);
  EXPECT_FALSE(wb.ok());
}

TEST_F(PersistenceTest, CatalogRoundTripsLargeTableMaps) {
  // Force a multi-page catalog: thousands of table page ids.
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 256, &stats);
  PageId root;
  { auto h = pool.New(IoCategory::kBtree, &root); ASSERT_TRUE(h.ok()); }
  CatalogData c;
  c.num_bool = 2;
  c.num_pref = 3;
  c.bool_cardinality = {10, 20};
  c.num_tuples = 123456;
  for (PageId p = 0; p < 5000; ++p) c.table_pages.push_back(p * 7);
  CatalogData::IndexInfo info;
  info.root = 9;
  info.num_entries = 11;
  info.num_pages = 3;
  info.next_seq = 123;
  c.indices = {info, info};
  c.rtree_root = 77;
  c.rtree_height = 3;
  c.rtree_fanout = 127;
  c.rtree_entries = 123456;
  c.rtree_pages = 999;
  c.has_cube = true;
  for (uint64_t i = 0; i < 500; ++i) c.sig_dense.emplace(i * 3 + (1ull << 32), i);
  c.sig_index_root = 5;
  c.sig_num_partials = 42;
  c.sig_num_pages = 17;
  c.sig_append_page = 900;
  c.sig_append_offset = 1234;
  c.cube_cells = 30;
  c.cube_levels = 3;
  ASSERT_TRUE(SaveCatalog(&pool, root, c).ok());
  auto back = LoadCatalog(&pool, root);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->table_pages, c.table_pages);
  EXPECT_EQ(back->sig_dense, c.sig_dense);
  EXPECT_EQ(back->rtree_fanout, c.rtree_fanout);
  EXPECT_EQ(back->indices.size(), 2u);
  EXPECT_EQ(back->indices[1].next_seq, 123u);
  EXPECT_EQ(back->sig_append_offset, 1234u);
  EXPECT_EQ(back->cube_levels, 3);
}

}  // namespace
}  // namespace pcube
