file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_prefdims.dir/bench_fig12_prefdims.cc.o"
  "CMakeFiles/bench_fig12_prefdims.dir/bench_fig12_prefdims.cc.o.d"
  "bench_fig12_prefdims"
  "bench_fig12_prefdims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_prefdims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
