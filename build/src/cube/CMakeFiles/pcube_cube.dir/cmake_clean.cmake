file(REMOVE_RECURSE
  "CMakeFiles/pcube_cube.dir/cuboid.cc.o"
  "CMakeFiles/pcube_cube.dir/cuboid.cc.o.d"
  "libpcube_cube.a"
  "libpcube_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
