// Builds cell signatures from tuple paths (paper §IV.B.1, "Summarizing Data
// for Group-bys"). The paper computes each cuboid's signatures tuple-wise by
// recursively sorting the grouped tuples' paths; an in-memory signature tree
// makes the sort unnecessary — inserting paths in any order produces the
// identical signature — so the builder just groups by cell and inserts.
#pragma once

#include <vector>

#include "core/signature.h"
#include "cube/cell.h"
#include "cube/relation.h"
#include "rtree/rstar_tree.h"

namespace pcube {

/// Tuple paths of an entire tree, indexed by TupleId.
class PathTable {
 public:
  /// Collects every tuple's current path from `tree` (one DFS).
  static Result<PathTable> Collect(const RStarTree& tree);

  const Path& path(TupleId t) const {
    PCUBE_DCHECK_LT(t, paths_.size());
    return paths_[t];
  }
  size_t size() const { return paths_.size(); }

  /// False when the tuple has no path — it is not in the tree (deleted).
  /// Rebuild loops over the full tid range must skip such tuples; their
  /// bits belong to no cell.
  bool contains(TupleId t) const {
    return t < paths_.size() && !paths_[t].empty();
  }

  void Set(TupleId t, Path p) {
    if (t >= paths_.size()) paths_.resize(t + 1);
    paths_[t] = std::move(p);
  }

 private:
  std::vector<Path> paths_;
};

/// Builds the signatures of one atomic cuboid (boolean dimension `dim`):
/// one Signature per value 0..cardinality-1. Signatures of values that never
/// occur are empty.
std::vector<Signature> BuildAtomicCuboidSignatures(const Dataset& data,
                                                   const PathTable& paths,
                                                   int dim, uint32_t fanout,
                                                   int levels);

/// Builds the signature of one arbitrary cell (conjunctive predicate set) by
/// direct grouping — the offline reference against which online signature
/// intersection is validated.
Signature BuildCellSignature(const Dataset& data, const PathTable& paths,
                             const PredicateSet& preds, uint32_t fanout,
                             int levels);

}  // namespace pcube
