#include "workbench/planner.h"

#include <algorithm>
#include <cmath>

#include "cache/cached_execution.h"
#include "common/metrics.h"

namespace pcube {

Result<PlanEstimate> QueryPlanner::Estimate(const PredicateSet& preds) const {
  PlanEstimate est;
  const uint64_t total = wb_->data().num_tuples();

  // Exact per-predicate counts from the boolean indices (an index-only
  // scan; cheap relative to either plan).
  uint64_t min_count = total;
  double combined_selectivity = 1.0;
  for (const Predicate& p : preds.predicates()) {
    auto count = wb_->indices()[p.dim].Count(p.value);
    if (!count.ok()) return count.status();
    min_count = std::min(min_count, *count);
    combined_selectivity *=
        total == 0 ? 0.0 : static_cast<double>(*count) / total;
  }
  est.matching_tuples = preds.empty()
                            ? total
                            : static_cast<uint64_t>(combined_selectivity *
                                                    static_cast<double>(total));

  // Boolean-first: fetch the most selective predicate's postings (one
  // random page per tuple) or scan the table, whichever is cheaper — the
  // same rule BooleanFirstExecutor applies.
  uint64_t scan_pages = wb_->table()->num_pages();
  est.boolean_pages = preds.empty() ? scan_pages : std::min(min_count, scan_pages);

  // Signature plan: the branch-and-bound visits the root path plus the
  // leaf-region around the selected subset's skyline. Model: the traversal
  // touches the fraction of R-tree pages holding matching tuples, discounted
  // by preference pruning (empirically ~2/3 of the subset's pages are
  // pruned), plus one signature page and its directory lookup per predicate.
  double match_fraction =
      preds.empty() ? 1.0
                    : std::max(combined_selectivity,
                               1.0 / static_cast<double>(std::max<uint64_t>(
                                         1, wb_->tree()->num_pages())));
  constexpr double kPreferencePruning = 1.0 / 3.0;
  est.signature_pages =
      static_cast<uint64_t>(wb_->tree()->height() + 1 +
                            match_fraction * kPreferencePruning *
                                static_cast<double>(wb_->tree()->num_pages())) +
      2 * preds.size();

  est.choice = est.signature_pages <= est.boolean_pages
                   ? PlanChoice::kSignature
                   : PlanChoice::kBooleanFirst;
  return est;
}

Status QueryPlanner::ExecuteSignature(
    const QueryRequest& request,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    QueryResponse* resp, std::shared_ptr<const SkylineOutput>* skyline_state,
    std::shared_ptr<const TopKOutput>* topk_state) {
  auto probe = wb_->cube()->MakeProbe(request.preds);
  if (!probe.ok()) return probe.status();
  if (request.kind == QueryRequest::Kind::kSkyline) {
    SkylineEngine engine(wb_->tree(), probe->get(), nullptr, request.skyline);
    engine.set_trace(&resp->trace);
    if (deadline) engine.set_deadline(*deadline);
    auto run = engine.Run();
    if (!run.ok()) return run.status();
    resp->counters = run->counters;
    for (const SearchEntry& e : run->skyline) resp->tids.push_back(e.id);
    if (skyline_state != nullptr) {
      *skyline_state = std::make_shared<const SkylineOutput>(std::move(*run));
    }
  } else {
    TopKEngine engine(wb_->tree(), probe->get(), nullptr,
                      request.ranking.get(), request.k);
    engine.set_trace(&resp->trace);
    if (deadline) engine.set_deadline(*deadline);
    auto run = engine.Run();
    if (!run.ok()) return run.status();
    resp->counters = run->counters;
    for (const SearchEntry& e : run->results) {
      resp->tids.push_back(e.id);
      resp->scores.push_back(e.key);
    }
    if (topk_state != nullptr) {
      *topk_state = std::make_shared<const TopKOutput>(std::move(*run));
    }
  }
  return Status::OK();
}

Status QueryPlanner::ExecuteBoolean(const QueryRequest& request,
                                    QueryResponse* resp) {
  ScopedSpan span(&resp->trace, "boolean_first");
  BooleanFirstExecutor boolean(&wb_->indices(), wb_->table(),
                               &wb_->tombstones());
  if (request.kind == QueryRequest::Kind::kSkyline) {
    auto run = boolean.Skyline(request.preds, request.skyline.pref_dims);
    if (!run.ok()) return run.status();
    resp->counters = run->counters;
    resp->tids = run->tids;
  } else {
    auto run = boolean.TopK(request.preds, *request.ranking, request.k);
    if (!run.ok()) return run.status();
    resp->counters = run->counters;
    resp->tids = run->tids;
    resp->scores = run->scores;
  }
  return Status::OK();
}

bool QueryPlanner::CanDegrade(const QueryRequest& request) {
  if (request.kind == QueryRequest::Kind::kTopK) return true;
  // The boolean baseline implements only the plain skyline.
  return request.skyline.skyband_k == 1 && request.skyline.origin.empty();
}

Result<QueryResponse> QueryPlanner::Run(const QueryRequest& request) {
  if (request.kind == QueryRequest::Kind::kTopK && request.ranking == nullptr) {
    return Status::InvalidArgument("top-k query without ranking");
  }
  QueryResponse resp;
  MetricsRegistry& registry = MetricsRegistry::Default();

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (request.deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(request.deadline_ms);
  }

  // L1 result cache. A forced plan hint bypasses it entirely (lookup AND
  // insert): the caller demands a specific execution — regression tests
  // compare both plans on one query — and an answer produced under duress
  // should not masquerade as the cost-based one later. Queries without a
  // canonical form (custom rankings) cannot be keyed and bypass too.
  ResultCache* cache = wb_->result_cache();
  bool use_cache = cache != nullptr && request.hint == PlanHint::kAuto &&
                   request.Canonicalizable();
  if (cache != nullptr && !use_cache) {
    resp.cache = CacheOutcome::kBypass;
    registry.GetCounter("pcube_result_cache_bypass_total")->Increment();
  }
  if (use_cache) {
    ResultCache::Lookup found;
    {
      ScopedSpan span(&resp.trace, "cache_lookup");
      found = cache->Find(request, wb_->data());
    }
    resp.cache = found.outcome;
    if (found.outcome == CacheOutcome::kHit) {
      Timer timer;
      resp.tids = std::move(found.tids);
      resp.scores = std::move(found.scores);
      resp.estimate.choice = found.plan;
      resp.seconds = timer.ElapsedSeconds();
      registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
      return resp;
    }
    if (found.outcome == CacheOutcome::kContainment &&
        request.kind == QueryRequest::Kind::kSkyline) {
      // Lemma 2 drill-down seeded from the cached ancestor instead of a
      // root restart. Stamps are read before the execution it feeds.
      ResultCache::Stamps stamps = cache->SnapshotStamps(request.preds);
      PCUBE_RETURN_NOT_OK(wb_->ColdStart());
      Timer timer;
      Trace::ScopedBind bind(&resp.trace);
      auto run = RunSkylineDrillDown(wb_->tree(), wb_->cube(), request,
                                     *found.drill_prev, &resp.trace, deadline);
      if (run.ok()) {
        resp.counters = run->counters;
        for (const SearchEntry& e : run->skyline) resp.tids.push_back(e.id);
        std::sort(resp.tids.begin(), resp.tids.end());
        resp.estimate.choice = PlanChoice::kSignature;
        resp.seconds = timer.ElapsedSeconds();
        resp.io = wb_->IoSince();
        cache->Insert(
            request, resp,
            std::make_shared<const SkylineOutput>(std::move(*run)), nullptr,
            stamps);
        registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
        return resp;
      }
      if (run.status().IsTimeout()) {
        registry.GetCounter("pcube_query_timeouts_total")->Increment();
        return run.status();
      }
      // Any other drill-down failure: fall back to a fresh execution.
      resp.cache = CacheOutcome::kMiss;
      resp.tids.clear();
      resp.counters = EngineCounters();
    }
    if (found.outcome == CacheOutcome::kContainment &&
        request.kind == QueryRequest::Kind::kTopK) {
      // Filter pass already produced the final answer inside Find.
      Timer timer;
      resp.tids = std::move(found.tids);
      resp.scores = std::move(found.scores);
      resp.estimate.choice = found.plan;
      resp.seconds = timer.ElapsedSeconds();
      registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
      return resp;
    }
  }
  ResultCache::Stamps stamps;
  if (use_cache) stamps = cache->SnapshotStamps(request.preds);

  {
    ScopedSpan span(&resp.trace, "plan_estimate");
    auto est = Estimate(request.preds);
    if (!est.ok()) return est.status();
    resp.estimate = *est;
  }
  if (request.hint == PlanHint::kSignature) {
    resp.estimate.choice = PlanChoice::kSignature;
  } else if (request.hint == PlanHint::kBooleanFirst) {
    resp.estimate.choice = PlanChoice::kBooleanFirst;
  }
  // The boolean-first baseline only implements the plain skyline; skybands
  // and dynamic skylines are signature-engine queries regardless of cost.
  if (request.kind == QueryRequest::Kind::kSkyline &&
      (request.skyline.skyband_k > 1 || !request.skyline.origin.empty())) {
    resp.estimate.choice = PlanChoice::kSignature;
  }

  PCUBE_RETURN_NOT_OK(wb_->ColdStart());
  Timer timer;
  // Bind the trace to this thread so the BufferPool attributes `io_wait`.
  Trace::ScopedBind bind(&resp.trace);

  std::shared_ptr<const SkylineOutput> skyline_state;
  std::shared_ptr<const TopKOutput> topk_state;
  if (resp.estimate.choice == PlanChoice::kSignature) {
    Status st = ExecuteSignature(request, deadline, &resp,
                                 use_cache ? &skyline_state : nullptr,
                                 use_cache ? &topk_state : nullptr);
    if (!st.ok()) {
      // Signatures and the R-tree are derived, redundant state: when their
      // pages are corrupt or unreadable, the base relation can still answer
      // the query through the boolean-first plan. Timeouts and other
      // failures are not storage damage and propagate unchanged.
      if (!(st.IsCorruption() || st.IsIoError()) || !CanDegrade(request)) {
        if (st.IsTimeout()) {
          registry.GetCounter("pcube_query_timeouts_total")->Increment();
        }
        return st;
      }
      resp.tids.clear();
      resp.scores.clear();
      resp.counters = EngineCounters();
      resp.degraded = true;
      resp.degraded_reason = st.ToString();
      resp.estimate.choice = PlanChoice::kBooleanFirst;
      registry.GetCounter("pcube_queries_degraded_total")->Increment();
      Status fallback = ExecuteBoolean(request, &resp);
      if (!fallback.ok()) return fallback;
    }
  } else {
    PCUBE_RETURN_NOT_OK(ExecuteBoolean(request, &resp));
  }
  if (request.kind == QueryRequest::Kind::kSkyline) {
    std::sort(resp.tids.begin(), resp.tids.end());
  }
  resp.seconds = timer.ElapsedSeconds();
  resp.io = wb_->IoSince();

  // Publish the executed answer. Insert() itself refuses degraded
  // responses — a boolean-first answer computed around corrupt pages must
  // not outlive the corruption.
  if (use_cache) {
    cache->Insert(request, resp, std::move(skyline_state),
                  std::move(topk_state), stamps);
  }

  registry
      .GetCounter(resp.estimate.choice == PlanChoice::kSignature
                      ? "pcube_planner_plans_total{plan=\"signature\"}"
                      : "pcube_planner_plans_total{plan=\"boolean_first\"}")
      ->Increment();
  registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
  return resp;
}

}  // namespace pcube
