// Clang thread-safety analysis annotations (Abseil/LevelDB style).
//
// These macros attach lock contracts to types, fields and functions so that
// `clang -Wthread-safety` proves them at compile time: a field declared
// GUARDED_BY(mu_) cannot be touched without mu_ held, a function declared
// REQUIRES(mu_) cannot be called without it, and a SCOPED_CAPABILITY guard
// that is released early cannot leak a held lock out of scope. Under any
// compiler without the attribute (GCC in the default container) every macro
// expands to nothing — the annotations are documentation there and a build
// gate under Clang (see PCUBE_WERROR_THREAD_SAFETY in CMakeLists.txt).
//
// Always annotate through the wrappers in common/mutex.h; raw std::mutex is
// invisible to the analysis.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define PCUBE_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define PCUBE_THREAD_ANNOTATION_IMPL(x)  // no-op off Clang
#endif

// Types: CAPABILITY marks a class as a lockable resource ("mutex" is the
// kind reported in diagnostics); SCOPED_CAPABILITY marks RAII guards whose
// constructor acquires and destructor releases.
#define CAPABILITY(x) PCUBE_THREAD_ANNOTATION_IMPL(capability(x))
#define SCOPED_CAPABILITY PCUBE_THREAD_ANNOTATION_IMPL(scoped_lockable)

// Fields: data protected by a mutex (or, for pointers, the pointed-to data).
#define GUARDED_BY(x) PCUBE_THREAD_ANNOTATION_IMPL(guarded_by(x))
#define PT_GUARDED_BY(x) PCUBE_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

// Lock-ordering declarations between mutexes (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

// Function contracts: the caller must hold (REQUIRES) or must NOT hold
// (EXCLUDES) the listed capabilities across the call.
#define REQUIRES(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) PCUBE_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

// Functions that acquire/release capabilities (mutex methods and guards).
#define ACQUIRE(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PCUBE_THREAD_ANNOTATION_IMPL(try_acquire_shared_capability(__VA_ARGS__))

// Runtime assertion that a capability is held (AssertHeld()).
#define ASSERT_CAPABILITY(x) \
  PCUBE_THREAD_ANNOTATION_IMPL(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  PCUBE_THREAD_ANNOTATION_IMPL(assert_shared_capability(x))

// A function returning a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) PCUBE_THREAD_ANNOTATION_IMPL(lock_returned(x))

// Escape hatch for code the analysis cannot model (document why at use).
#define NO_THREAD_SAFETY_ANALYSIS \
  PCUBE_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)
