# Empty compiler generated dependencies file for pcube_test.
# This may be replaced when dependencies are built.
