// Segmented-LRU replacement — the LRU/LFU hybrid used by both cache
// levels. New entries enter a probationary segment; a hit promotes into a
// protected segment capped at a fraction of the budget, whose overflow
// demotes back to probation. One-shot fills therefore wash through
// probation without displacing the recurring working set, which is the
// frequency signal plain LRU lacks, at LRU cost (O(1) per operation, no
// decay sweeps).
//
// A shard is NOT thread-safe: the owning cache wraps each shard in its own
// mutex, which keeps the critical sections short and lets independent keys
// proceed in parallel.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace pcube {

template <typename K, typename V, typename Hash = std::hash<K>>
class SlruShard {
 public:
  /// `capacity_bytes` is the shard's total budget across both segments.
  explicit SlruShard(size_t capacity_bytes = 0) { set_capacity(capacity_bytes); }

  /// Sets the budget (entries are only evicted on the next Insert).
  void set_capacity(size_t capacity_bytes) {
    capacity_ = capacity_bytes;
    protected_cap_ = capacity_bytes * 4 / 5;
  }

  /// Returns the value (copy — values are cheap handles, typically
  /// shared_ptr) and promotes the entry, or nullptr-equivalent via `found`.
  bool Lookup(const K& key, V* out) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    Node node = it->second;
    if (node->second.prot) {
      protected_.splice(protected_.begin(), protected_, node);
    } else {
      node->second.prot = true;
      protected_bytes_ += node->second.charge;
      protected_.splice(protected_.begin(), probation_, node);
      ShrinkProtected();
    }
    *out = node->second.value;
    return true;
  }

  /// Inserts or replaces. Returns the number of entries evicted to make
  /// room. Entries larger than the whole budget are rejected (returns 0,
  /// nothing cached) rather than cycling the cache.
  size_t Insert(const K& key, V value, size_t charge) {
    if (charge > capacity_) {
      Erase(key);
      return 0;
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      Node node = it->second;
      bytes_ -= node->second.charge;
      if (node->second.prot) protected_bytes_ -= node->second.charge;
      node->second.value = std::move(value);
      node->second.charge = charge;
      bytes_ += charge;
      if (node->second.prot) {
        protected_bytes_ += charge;
        protected_.splice(protected_.begin(), protected_, node);
        ShrinkProtected();
      } else {
        probation_.splice(probation_.begin(), probation_, node);
      }
      return EvictOverflow();
    }
    probation_.emplace_front(key, Entry{std::move(value), charge, false});
    index_.emplace(key, probation_.begin());
    bytes_ += charge;
    return EvictOverflow();
  }

  /// Removes `key` if present; returns true when an entry was dropped.
  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    Node node = it->second;
    bytes_ -= node->second.charge;
    if (node->second.prot) {
      protected_bytes_ -= node->second.charge;
      protected_.erase(node);
    } else {
      probation_.erase(node);
    }
    index_.erase(it);
    return true;
  }

  void Clear() {
    probation_.clear();
    protected_.clear();
    index_.clear();
    bytes_ = protected_bytes_ = 0;
  }

  size_t bytes() const { return bytes_; }
  size_t entries() const { return index_.size(); }

 private:
  struct Entry {
    V value;
    size_t charge = 0;
    bool prot = false;
  };
  using List = std::list<std::pair<K, Entry>>;
  using Node = typename List::iterator;

  // Demote protected-LRU entries until the protected segment fits; they
  // re-enter probation at the MRU end so a re-hit re-promotes cheaply.
  void ShrinkProtected() {
    while (protected_bytes_ > protected_cap_ && !protected_.empty()) {
      Node tail = std::prev(protected_.end());
      protected_bytes_ -= tail->second.charge;
      tail->second.prot = false;
      probation_.splice(probation_.begin(), protected_, tail);
    }
  }

  size_t EvictOverflow() {
    size_t evicted = 0;
    while (bytes_ > capacity_) {
      List& victim_list = probation_.empty() ? protected_ : probation_;
      PCUBE_DCHECK(!victim_list.empty());
      Node tail = std::prev(victim_list.end());
      bytes_ -= tail->second.charge;
      if (tail->second.prot) protected_bytes_ -= tail->second.charge;
      index_.erase(tail->first);
      victim_list.erase(tail);
      ++evicted;
    }
    return evicted;
  }

  size_t capacity_ = 0;
  size_t protected_cap_ = 0;
  size_t bytes_ = 0;
  size_t protected_bytes_ = 0;
  List probation_;
  List protected_;
  std::unordered_map<K, Node, Hash> index_;
};

}  // namespace pcube
