// Compression and decomposition of signatures into page-sized *partial
// signatures* (paper §IV.B.1) and the symmetric reassembly used at query
// time (§IV.B.2).
//
// Encoding walks the signature tree breadth-first from the root, appending
// each node's adaptively-compressed bit array (bitmap/codec.h) until the
// page payload is full: that prefix becomes the partial signature referenced
// by the root's SID. Remaining nodes are emitted the same way from partials
// rooted at the first uncovered subtrees, in BFS order of their roots — the
// paper's "start from the first child N1 of the root ... nodes coded by
// previous partial signatures will be skipped".
//
// Decoding is exactly symmetric: to decode a partial rooted at path P, walk
// subtree(P) breadth-first, skipping nodes already decoded from
// earlier-generated partials (ascending SID == generation order, which the
// cursor guarantees by loading root-to-leaf prefixes in order), and consume
// one compressed array per remaining node until the payload is exhausted.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/signature.h"

namespace pcube {

/// One page-sized fragment of a cell's signature.
struct PartialSignature {
  uint64_t root_sid = 0;
  /// Root path (redundant with root_sid given fanout/level, kept for
  /// convenience during encoding; decode reconstructs it from context).
  Path root_path;
  std::vector<uint8_t> bytes;
};

/// Fragment of a signature being reassembled at query time: the set of
/// node arrays decoded so far, keyed by node path.
class SignatureFragment {
 public:
  SignatureFragment(uint32_t fanout, int levels)
      : m_(fanout), levels_(levels) {}

  uint32_t fanout() const { return m_; }
  int levels() const { return levels_; }

  bool HasNode(const Path& p) const { return arrays_.count(p) > 0; }
  const BitVector* Node(const Path& p) const {
    auto it = arrays_.find(p);
    return it == arrays_.end() ? nullptr : &it->second;
  }
  void AddNode(const Path& p, BitVector bits) {
    arrays_.emplace(p, std::move(bits));
  }

  /// When set, DecodePartialSignature keeps each contributed node's
  /// compressed wire bytes next to the decoded array, so multi-predicate
  /// probes can intersect node pairs in compressed form
  /// (BitmapCodec::IntersectEncoded) instead of walking decoded words.
  void set_keep_encoded(bool keep) { keep_encoded_ = keep; }
  bool keep_encoded() const { return keep_encoded_; }

  /// Retains `wire` (one BitmapCodec encoding) for a node already added;
  /// no-op unless keep_encoded().
  void SetEncodedNode(const Path& p, std::vector<uint8_t> wire) {
    if (keep_encoded_) encoded_.emplace(p, std::move(wire));
  }

  /// The compressed wire bytes of a node, or null when not retained (nodes
  /// replayed from the fragment cache arrive decoded; callers fall back to
  /// the decoded AND).
  const std::vector<uint8_t>* EncodedNode(const Path& p) const {
    auto it = encoded_.find(p);
    return it == encoded_.end() ? nullptr : &it->second;
  }

  size_t num_nodes() const { return arrays_.size(); }

  /// Converts the (complete) fragment back into a Signature; used by
  /// maintenance and round-trip tests.
  Signature ToSignature() const;

 private:
  uint32_t m_;
  int levels_;
  std::map<Path, BitVector> arrays_;
  bool keep_encoded_ = false;
  std::map<Path, std::vector<uint8_t>> encoded_;
};

/// Splits `sig` into compressed partial signatures, each with payload size
/// <= max_payload bytes (one disk page each in the store).
std::vector<PartialSignature> DecomposeSignature(const Signature& sig,
                                                 size_t max_payload);

/// Decodes one partial signature (rooted at `root_path`) into `fragment`,
/// skipping nodes the fragment already contains. Fails with Corruption when
/// the payload does not align with the fragment's current state — which
/// happens if ancestor partials were not decoded first.
///
/// When `added` is non-null it collects (path, bits) for every node this
/// call contributed, in decode order. Because cursors always load partials
/// along root-to-leaf prefixes in order, the contributed set is a pure
/// function of (cell, sid) — which is what makes the decode cacheable and
/// replayable into another query's fragment (cache/fragment_cache.h).
Status DecodePartialSignature(
    const Path& root_path, const std::vector<uint8_t>& bytes,
    SignatureFragment* fragment,
    std::vector<std::pair<Path, BitVector>>* added = nullptr);

}  // namespace pcube
