#include "workbench/batch_executor.h"

#include <algorithm>
#include <chrono>

#include "cache/cached_execution.h"
#include "common/metrics.h"
#include "common/timer.h"

namespace pcube {

void ReportQueryMetrics(const BatchQuery& query, const QueryResponse& resp,
                        const Status& status) {
  MetricsRegistry& registry = MetricsRegistry::Default();
  registry
      .GetCounter(query.kind == BatchQuery::Kind::kSkyline
                      ? "pcube_queries_total{kind=\"skyline\"}"
                      : "pcube_queries_total{kind=\"topk\"}")
      ->Increment();
  if (!status.ok()) {
    registry.GetCounter("pcube_query_failures_total")->Increment();
    if (status.IsTimeout()) {
      registry.GetCounter("pcube_query_timeouts_total")->Increment();
    }
    return;
  }
  registry.GetHistogram("pcube_query_seconds")->Observe(resp.seconds);
  registry.GetCounter("pcube_engine_nodes_expanded_total")
      ->Increment(resp.counters.nodes_expanded);
  registry.GetCounter("pcube_engine_pruned_boolean_total")
      ->Increment(resp.counters.pruned_boolean);
  registry.GetCounter("pcube_engine_pruned_preference_total")
      ->Increment(resp.counters.pruned_preference);
  registry.GetCounter("pcube_engine_verified_total")
      ->Increment(resp.counters.verified);
  registry.GetGauge("pcube_engine_heap_peak")
      ->Set(static_cast<double>(resp.counters.heap_peak));
}

BatchQueryResult BatchExecutor::ExecuteOne(const BatchQuery& query) const {
  BatchQueryResult result;
  // Batches always execute the signature plan over the shared cube.
  result.response.estimate.choice = PlanChoice::kSignature;
  // Per-thread I/O attribution: every physical read this worker performs
  // while the query runs lands in result.io. The trace binding routes the
  // BufferPool's io_wait spans to this query's trace the same way.
  BufferPool::ScopedThreadStats scope(&result.io);
  Trace::ScopedBind bind(&result.response.trace);
  Timer timer;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (query.deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(query.deadline_ms);
  }
  // L1 result cache. Batches ignore plan hints (they always run the
  // signature plan), so only canonicalizability gates cache use. A hit is
  // served only when the entry can reconstruct the full engine output —
  // BatchQueryResult promises skyline/topk on success — which Find's
  // require_state mode enforces.
  const bool use_cache =
      cache_ != nullptr && data_ != nullptr && query.Canonicalizable();
  if (cache_ != nullptr && !use_cache) {
    result.response.cache = CacheOutcome::kBypass;
    MetricsRegistry::Default()
        .GetCounter("pcube_result_cache_bypass_total")
        ->Increment();
  }
  if (use_cache) {
    ResultCache::Lookup found;
    {
      ScopedSpan span(&result.response.trace, "cache_lookup");
      found = cache_->Find(query, *data_, /*require_state=*/true);
    }
    result.response.cache = found.outcome;
    if (found.outcome == CacheOutcome::kHit) {
      result.response.tids = std::move(found.tids);
      result.response.scores = std::move(found.scores);
      result.response.estimate.choice = found.plan;
      if (query.kind == BatchQuery::Kind::kSkyline) {
        result.response.counters = found.skyline_state->counters;
        result.skyline = *found.skyline_state;
      } else {
        result.response.counters = found.topk_state->counters;
        result.topk = *found.topk_state;
      }
      result.seconds = timer.ElapsedSeconds();
      result.response.seconds = result.seconds;
      result.response.io = result.io;
      return result;
    }
    if (found.outcome == CacheOutcome::kContainment) {
      // Skyline only (require_state skips top-k containment): Lemma 2
      // drill-down from the cached ancestor. Stamps are read before the
      // execution they will guard.
      ResultCache::Stamps stamps = cache_->SnapshotStamps(query.preds);
      auto run = RunSkylineDrillDown(tree_, cube_, query, *found.drill_prev,
                                     &result.response.trace, deadline);
      if (run.ok()) {
        result.response.counters = run->counters;
        for (const SearchEntry& e : run->skyline) {
          result.response.tids.push_back(e.id);
        }
        std::sort(result.response.tids.begin(), result.response.tids.end());
        result.skyline = std::move(*run);
        result.seconds = timer.ElapsedSeconds();
        result.response.seconds = result.seconds;
        result.response.io = result.io;
        cache_->Insert(query, result.response,
                       std::make_shared<const SkylineOutput>(*result.skyline),
                       nullptr, stamps);
        return result;
      }
      if (run.status().IsTimeout()) {
        result.status = run.status();
        result.seconds = timer.ElapsedSeconds();
        result.response.seconds = result.seconds;
        result.response.io = result.io;
        return result;
      }
      // Any other drill-down failure: fall through to a fresh execution.
      result.response.cache = CacheOutcome::kMiss;
    }
  }
  ResultCache::Stamps stamps;
  if (use_cache) stamps = cache_->SnapshotStamps(query.preds);

  auto probe = cube_->MakeProbe(query.preds);
  if (!probe.ok()) {
    result.status = probe.status();
    return result;
  }
  switch (query.kind) {
    case BatchQuery::Kind::kSkyline: {
      SkylineEngine engine(tree_, probe->get(), nullptr, query.skyline);
      engine.set_trace(&result.response.trace);
      if (deadline) engine.set_deadline(*deadline);
      auto out = engine.Run();
      if (out.ok()) {
        result.response.counters = out->counters;
        for (const SearchEntry& e : out->skyline) {
          result.response.tids.push_back(e.id);
        }
        std::sort(result.response.tids.begin(), result.response.tids.end());
        result.skyline = std::move(*out);
      } else {
        result.status = out.status();
      }
      break;
    }
    case BatchQuery::Kind::kTopK: {
      if (query.ranking == nullptr) {
        result.status = Status::InvalidArgument("top-k query without ranking");
        break;
      }
      TopKEngine engine(tree_, probe->get(), nullptr, query.ranking.get(),
                        query.k);
      engine.set_trace(&result.response.trace);
      if (deadline) engine.set_deadline(*deadline);
      auto out = engine.Run();
      if (out.ok()) {
        result.response.counters = out->counters;
        for (const SearchEntry& e : out->results) {
          result.response.tids.push_back(e.id);
          result.response.scores.push_back(e.key);
        }
        result.topk = std::move(*out);
      } else {
        result.status = out.status();
      }
      break;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  result.response.seconds = result.seconds;
  result.response.io = result.io;
  if (use_cache && result.status.ok()) {
    if (query.kind == BatchQuery::Kind::kSkyline) {
      cache_->Insert(query, result.response,
                     std::make_shared<const SkylineOutput>(*result.skyline),
                     nullptr, stamps);
    } else {
      cache_->Insert(query, result.response, nullptr,
                     std::make_shared<const TopKOutput>(*result.topk), stamps);
    }
  }
  return result;
}

BatchOutput BatchExecutor::Execute(const std::vector<BatchQuery>& queries) {
  Timer timer;
  BatchOutput out;
  out.results.resize(queries.size());
  std::vector<std::future<void>> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(pool_->Submit([this, &queries, &out, i] {
      out.results[i] = ExecuteOne(queries[i]);
      const BatchQueryResult& r = out.results[i];
      ReportQueryMetrics(queries[i], r.response, r.status);
      if (query_log_ != nullptr && r.status.ok()) {
        query_log_->Append(QueryLogRecord(queries[i], r.response));
      }
    }));
  }
  for (auto& f : futures) f.get();
  Histogram latency;
  for (const BatchQueryResult& r : out.results) {
    out.io.Merge(r.io);
    if (!r.status.ok()) {
      ++out.failed;  // includes timeouts, itemised separately below
      if (r.status.IsTimeout()) ++out.timed_out;
    } else {
      latency.Observe(r.seconds);
    }
  }
  out.latency.p50 = latency.Quantile(0.50);
  out.latency.p95 = latency.Quantile(0.95);
  out.latency.p99 = latency.Quantile(0.99);
  out.latency.mean = latency.Mean();
  out.latency.count = latency.Count();
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace pcube
