// The paper's running example: the 8-tuple sample database of Table I with
// boolean dimensions A (a1..a4) and B (b1..b3), preference dimensions X, Y,
// and the exact R-tree partition of Fig. 1 (m = 1, M = 2) whose tuple paths
// are the `path` column of Table I. Used by tests to reproduce the worked
// signature examples (Fig. 2 and Fig. 3) bit for bit.
#pragma once

#include <tuple>
#include <vector>

#include "cube/relation.h"
#include "rtree/path.h"

namespace pcube {

/// Boolean dimension indices and coded values of the sample database.
/// A-values a1..a4 are coded 0..3 on dimension 0; b1..b3 are 0..2 on
/// dimension 1.
inline constexpr int kTable1DimA = 0;
inline constexpr int kTable1DimB = 1;

/// The sample relation of Table I (tids 0..7 = t1..t8).
Dataset MakeTable1Dataset();

/// The (tid, point, path) entries of Table I / Fig. 1, ready for
/// RStarTree::BuildExplicit with dims = 2 and max_entries = 2.
std::vector<std::tuple<TupleId, std::vector<float>, Path>> Table1TreeEntries();

}  // namespace pcube
