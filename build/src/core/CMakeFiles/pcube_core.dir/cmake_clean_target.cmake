file(REMOVE_RECURSE
  "libpcube_core.a"
)
