// Per-dimension B+-tree index over a boolean dimension, as used by the
// Boolean-first baseline (paper §VI.A: "We use B+-tree to index each boolean
// dimension"). Duplicate values are handled by packing a sequence number
// into the low bits of the key: key = value << 40 | seq, so an equality
// predicate becomes the range [value<<40, (value<<40) | maxseq].
#pragma once

#include "common/status.h"
#include "cube/relation.h"
#include "storage/bplus_tree.h"

namespace pcube {

/// Equality-lookup index on one boolean dimension.
class BooleanIndex {
 public:
  /// Bulk-builds the index for dimension `dim` of `data`.
  static Result<BooleanIndex> Build(BufferPool* pool, const Dataset& data,
                                    int dim);

  /// Re-attaches to a previously built index (catalog-driven reopen).
  static BooleanIndex Attach(BufferPool* pool, int dim, PageId root,
                             uint64_t num_entries, uint64_t num_pages,
                             uint64_t next_seq) {
    BooleanIndex index(
        BPlusTree::Attach(pool, root, num_entries, num_pages), dim);
    index.next_seq_ = next_seq;
    return index;
  }

  const BPlusTree& tree() const { return tree_; }
  uint64_t next_seq() const { return next_seq_; }

  /// Appends a posting for a newly inserted tuple.
  Status Add(uint32_t value, TupleId tid);

  /// Collects the TupleIds with A_dim = value, in insertion order.
  Result<std::vector<TupleId>> Lookup(uint32_t value) const;

  /// Number of matching tuples without materialising them (still reads the
  /// leaf pages — an index-only scan).
  Result<uint64_t> Count(uint32_t value) const;

  uint64_t num_pages() const { return tree_.num_pages(); }
  int dim() const { return dim_; }

 private:
  static constexpr int kSeqBits = 40;

  BooleanIndex(BPlusTree tree, int dim) : tree_(std::move(tree)), dim_(dim) {}

  static uint64_t MakeKey(uint32_t value, uint64_t seq) {
    PCUBE_DCHECK_LT(seq, uint64_t{1} << kSeqBits);
    return (static_cast<uint64_t>(value) << kSeqBits) | seq;
  }

  BPlusTree tree_;
  int dim_;
  uint64_t next_seq_ = 0;
};

}  // namespace pcube
