file(REMOVE_RECURSE
  "CMakeFiles/signature_codec_test.dir/signature_codec_test.cc.o"
  "CMakeFiles/signature_codec_test.dir/signature_codec_test.cc.o.d"
  "signature_codec_test"
  "signature_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
