#include "workbench/batch_executor.h"

#include "common/timer.h"

namespace pcube {

BatchQueryResult BatchExecutor::RunOne(const BatchQuery& query) const {
  BatchQueryResult result;
  // Per-thread I/O attribution: every physical read this worker performs
  // while the query runs lands in result.io.
  BufferPool::ScopedThreadStats scope(&result.io);
  Timer timer;
  auto probe = cube_->MakeProbe(query.preds);
  if (!probe.ok()) {
    result.status = probe.status();
    return result;
  }
  switch (query.kind) {
    case BatchQuery::Kind::kSkyline: {
      SkylineEngine engine(tree_, probe->get(), nullptr, query.skyline);
      auto out = engine.Run();
      if (out.ok()) {
        result.skyline = std::move(*out);
      } else {
        result.status = out.status();
      }
      break;
    }
    case BatchQuery::Kind::kTopK: {
      if (query.ranking == nullptr) {
        result.status = Status::InvalidArgument("top-k query without ranking");
        break;
      }
      TopKEngine engine(tree_, probe->get(), nullptr, query.ranking.get(),
                        query.k);
      auto out = engine.Run();
      if (out.ok()) {
        result.topk = std::move(*out);
      } else {
        result.status = out.status();
      }
      break;
    }
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

BatchOutput BatchExecutor::Execute(const std::vector<BatchQuery>& queries) {
  Timer timer;
  BatchOutput out;
  out.results.resize(queries.size());
  std::vector<std::future<void>> futures;
  futures.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    futures.push_back(pool_->Submit(
        [this, &queries, &out, i] { out.results[i] = RunOne(queries[i]); }));
  }
  for (auto& f : futures) f.get();
  for (const BatchQueryResult& r : out.results) {
    out.io.Merge(r.io);
    if (!r.status.ok()) ++out.failed;
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

}  // namespace pcube
