// Unit tests for src/common: Status/Result, Random, bit utilities, IoStats.
#include <gtest/gtest.h>

#include "common/bit_util.h"
#include "common/io_stats.h"
#include "common/random.h"
#include "common/status.h"

namespace pcube {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "Not found: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_FALSE(StatusCodeToString(static_cast<StatusCode>(c)).empty());
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::IoError("boom"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

Status FailsThrough() {
  PCUBE_RETURN_NOT_OK(Status::Corruption("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kCorruption);
}

TEST(RandomTest, DeterministicInSeed) {
  Random a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Random a2(123), c2(124);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c2.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, UniformBounded) {
  Random rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(7), 7u);
  }
}

TEST(RandomTest, GaussianMoments) {
  Random rng(7);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(BitUtilTest, SetGetClear) {
  uint64_t words[2] = {0, 0};
  bit_util::SetBit(words, 0);
  bit_util::SetBit(words, 63);
  bit_util::SetBit(words, 64);
  EXPECT_TRUE(bit_util::GetBit(words, 0));
  EXPECT_TRUE(bit_util::GetBit(words, 63));
  EXPECT_TRUE(bit_util::GetBit(words, 64));
  EXPECT_FALSE(bit_util::GetBit(words, 1));
  bit_util::ClearBit(words, 63);
  EXPECT_FALSE(bit_util::GetBit(words, 63));
}

TEST(BitUtilTest, Sizing) {
  EXPECT_EQ(bit_util::Words64(0), 0u);
  EXPECT_EQ(bit_util::Words64(1), 1u);
  EXPECT_EQ(bit_util::Words64(64), 1u);
  EXPECT_EQ(bit_util::Words64(65), 2u);
  EXPECT_EQ(bit_util::Bytes(9), 2u);
  EXPECT_EQ(bit_util::CeilDiv(10, 3), 4u);
}

TEST(BitUtilTest, LoadStoreRoundTrip) {
  uint8_t buf[8];
  bit_util::StoreLE<uint32_t>(buf, 0xdeadbeef);
  EXPECT_EQ(bit_util::LoadLE<uint32_t>(buf), 0xdeadbeefu);
  bit_util::StoreLE<float>(buf, 3.25f);
  EXPECT_EQ(bit_util::LoadLE<float>(buf), 3.25f);
}

TEST(IoStatsTest, CountsAndDeltas) {
  IoStats s;
  s.CountRead(IoCategory::kRtreeBlock, 3);
  s.CountRead(IoCategory::kSignature);
  s.CountWrite(IoCategory::kBtree, 2);
  EXPECT_EQ(s.ReadCount(IoCategory::kRtreeBlock), 3u);
  EXPECT_EQ(s.TotalReads(), 4u);
  EXPECT_EQ(s.TotalWrites(), 2u);
  IoStats snap = s;
  s.CountRead(IoCategory::kRtreeBlock, 5);
  IoStats d = s.Delta(snap);
  EXPECT_EQ(d.ReadCount(IoCategory::kRtreeBlock), 5u);
  EXPECT_EQ(d.ReadCount(IoCategory::kSignature), 0u);
  EXPECT_NE(s.ToString().find("rtree"), std::string::npos);
}

}  // namespace
}  // namespace pcube
