file(REMOVE_RECURSE
  "CMakeFiles/pcube_bitmap.dir/bitvector.cc.o"
  "CMakeFiles/pcube_bitmap.dir/bitvector.cc.o.d"
  "CMakeFiles/pcube_bitmap.dir/bloom_filter.cc.o"
  "CMakeFiles/pcube_bitmap.dir/bloom_filter.cc.o.d"
  "CMakeFiles/pcube_bitmap.dir/codec.cc.o"
  "CMakeFiles/pcube_bitmap.dir/codec.cc.o.d"
  "libpcube_bitmap.a"
  "libpcube_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
