#include "storage/buffer_pool.h"

#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"

namespace pcube {

namespace {
// Per-thread attribution sink shared by every pool (see ScopedThreadStats).
thread_local IoStats* tls_io_stats = nullptr;
}  // namespace

BufferPool::ScopedThreadStats::ScopedThreadStats(IoStats* stats)
    : saved_(tls_io_stats) {
  tls_io_stats = stats;
}

BufferPool::ScopedThreadStats::~ScopedThreadStats() { tls_io_stats = saved_; }

PageHandle& PageHandle::operator=(PageHandle&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    pid_ = o.pid_;
    page_ = o.page_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    o.pid_ = kInvalidPageId;
  }
  return *this;
}

void PageHandle::Release() {
  if (pool_ != nullptr && page_ != nullptr) {
    pool_->Unpin(pid_);
  }
  pool_ = nullptr;
  page_ = nullptr;
  pid_ = kInvalidPageId;
}

BufferPool::BufferPool(PageManager* pm, size_t capacity_pages, IoStats* stats,
                       size_t num_stripes)
    : pm_(pm), stats_(stats) {
  if (capacity_pages < 1) capacity_pages = 1;
  if (num_stripes == 0) num_stripes = capacity_pages >= 256 ? 32 : 1;
  if (num_stripes > capacity_pages) num_stripes = capacity_pages;
  stripes_.reserve(num_stripes);
  for (size_t i = 0; i < num_stripes; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
    // Distribute the capacity; every stripe keeps at least one frame.
    stripes_.back()->capacity =
        std::max<size_t>(1, capacity_pages / num_stripes);
  }
}

void BufferPool::ChargeRead(IoCategory cat) {
  if (stats_ != nullptr) stats_->CountRead(cat);
  if (tls_io_stats != nullptr) tls_io_stats->CountRead(cat);
}

void BufferPool::ChargeWrite(IoCategory cat) {
  if (stats_ != nullptr) stats_->CountWrite(cat);
  if (tls_io_stats != nullptr) tls_io_stats->CountWrite(cat);
}

void BufferPool::Unpin(PageId pid) {
  Stripe& stripe = StripeFor(pid);
  MutexLock lock(&stripe.mu);
  auto it = stripe.frames.find(pid);
  PCUBE_DCHECK(it != stripe.frames.end());
  PCUBE_DCHECK_GT(it->second.pins, 0);
  --it->second.pins;
}

Status BufferPool::EvictOne(Stripe* stripe) {
  // Scan from the LRU tail for the first unpinned frame. If all frames are
  // pinned, grow instead of failing.
  for (auto it = stripe->lru.rbegin(); it != stripe->lru.rend(); ++it) {
    PageId victim = *it;
    auto fit = stripe->frames.find(victim);
    PCUBE_DCHECK(fit != stripe->frames.end());
    if (fit->second.pins > 0 || fit->second.loading) continue;
    if (fit->second.dirty) {
      PCUBE_RETURN_NOT_OK(pm_->Write(victim, fit->second.page));
      ChargeWrite(fit->second.cat);
    }
    stripe->lru.erase(std::next(it).base());
    stripe->frames.erase(fit);
    stripe->evictions.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  return Status::OK();  // everything pinned: grow
}

Status BufferPool::ReadWithRetry(PageId pid, Page* out) {
  // IoError is the one retryable failure class: it means the device call
  // itself failed (possibly transiently), whereas Corruption means the bytes
  // came back wrong and re-reading the same bytes cannot help. Bounded
  // exponential backoff: 100us, 200us, 400us between the up-to-4 attempts.
  // Called from Fetch's unlocked, timed load section, so retry stalls are
  // still attributed to io_wait in traces and load_wait_us.
  static Counter* retries =
      MetricsRegistry::Default().GetCounter("pcube_io_retries_total");
  static Counter* giveups =
      MetricsRegistry::Default().GetCounter("pcube_io_giveups_total");
  constexpr int kMaxAttempts = 4;
  Status st;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    if (attempt > 0) {
      retries->Increment();
      std::this_thread::sleep_for(
          std::chrono::microseconds(100u << (attempt - 1)));
    }
    st = pm_->Read(pid, out);
    if (!st.IsIoError()) return st;
  }
  giveups->Increment();
  return st;
}

Result<PageHandle> BufferPool::Fetch(PageId pid, IoCategory cat, bool load,
                                     bool dirty) {
  Stripe& stripe = StripeFor(pid);
  MutexLock lock(&stripe.mu);
  for (;;) {
    auto it = stripe.frames.find(pid);
    if (it == stripe.frames.end()) break;
    Frame& frame = it->second;
    if (frame.loading) {
      // Another thread is reading this page in. Wait and re-check: if its
      // load fails it removes the frame, and we retry as a fresh miss.
      stripe.cv.Wait(&stripe.mu);
      continue;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    stripe.hits.fetch_add(1, std::memory_order_relaxed);
    stripe.lru.erase(frame.lru_pos);
    stripe.lru.push_front(pid);
    frame.lru_pos = stripe.lru.begin();
    if (dirty) {
      frame.dirty = true;
      frame.cat = cat;
    }
    ++frame.pins;
    return PageHandle(this, pid, &frame.page);
  }
  if (load) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    stripe.misses.fetch_add(1, std::memory_order_relaxed);
  }
  if (stripe.frames.size() >= stripe.capacity) {
    PCUBE_RETURN_NOT_OK(EvictOne(&stripe));
  }
  stripe.lru.push_front(pid);
  Frame& frame = stripe.frames[pid];
  frame.lru_pos = stripe.lru.begin();
  frame.cat = cat;
  if (load) {
    // The physical read happens OUTSIDE the stripe lock so misses on
    // different pages overlap their I/O stalls. While it is in flight the
    // frame is marked `loading`: eviction skips it and same-page fetchers
    // wait on the stripe's condition variable instead of issuing a second
    // read, so the PageManager still never sees two concurrent accesses to
    // one page. &frame stays valid across the unlock because unordered_map
    // never invalidates references on insert, and erase of a loading frame
    // is excluded by the eviction rule.
    frame.loading = true;
    lock.Unlock();
    Timer read_timer;
    Status st = ReadWithRetry(pid, &frame.page);
    double wait = read_timer.ElapsedSeconds();
    stripe.load_wait_us.fetch_add(static_cast<uint64_t>(wait * 1e6),
                                  std::memory_order_relaxed);
    if (Trace* trace = Trace::Current(); trace != nullptr) {
      trace->Record("io_wait", wait);
    }
    lock.Lock();
    frame.loading = false;
    if (!st.ok()) {
      stripe.lru.erase(frame.lru_pos);
      stripe.frames.erase(pid);
      stripe.cv.SignalAll();
      return st;
    }
    ChargeRead(cat);
    stripe.cv.SignalAll();
  } else {
    frame.page.Zero();
  }
  if (dirty) frame.dirty = true;
  ++frame.pins;
  return PageHandle(this, pid, &frame.page);
}

Result<PageHandle> BufferPool::Get(PageId pid, IoCategory cat) {
  return Fetch(pid, cat, /*load=*/true, /*dirty=*/false);
}

Result<PageHandle> BufferPool::GetMutable(PageId pid, IoCategory cat) {
  return Fetch(pid, cat, /*load=*/true, /*dirty=*/true);
}

Result<PageHandle> BufferPool::New(IoCategory cat, PageId* pid) {
  auto alloc = pm_->Allocate();
  if (!alloc.ok()) return alloc.status();
  *pid = *alloc;
  // A fresh page is zero-filled in place: no physical read, no miss charged.
  return Fetch(*pid, cat, /*load=*/false, /*dirty=*/true);
}

Status BufferPool::FlushAll() {
  for (auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for (auto& [pid, frame] : stripe->frames) {
      if (frame.dirty) {
        PCUBE_RETURN_NOT_OK(pm_->Write(pid, frame.page));
        ChargeWrite(frame.cat);
        frame.dirty = false;
      }
    }
  }
  return Status::OK();
}

Status BufferPool::FreePage(PageId pid) {
  Stripe& stripe = StripeFor(pid);
  {
    MutexLock lock(&stripe.mu);
    auto it = stripe.frames.find(pid);
    if (it != stripe.frames.end()) {
      PCUBE_CHECK_EQ(it->second.pins, 0) << "freeing a pinned page";
      stripe.lru.erase(it->second.lru_pos);
      stripe.frames.erase(it);
    }
  }
  return pm_->Free(pid);
}

uint64_t BufferPool::evictions() const {
  uint64_t n = 0;
  for (const auto& stripe : stripes_) {
    n += stripe->evictions.load(std::memory_order_relaxed);
  }
  return n;
}

double BufferPool::load_wait_seconds() const {
  uint64_t us = 0;
  for (const auto& stripe : stripes_) {
    us += stripe->load_wait_us.load(std::memory_order_relaxed);
  }
  return static_cast<double>(us) * 1e-6;
}

std::vector<BufferPool::StripeStats> BufferPool::PerStripeStats() const {
  std::vector<StripeStats> out;
  out.reserve(stripes_.size());
  for (const auto& stripe : stripes_) {
    StripeStats s;
    s.hits = stripe->hits.load(std::memory_order_relaxed);
    s.misses = stripe->misses.load(std::memory_order_relaxed);
    s.evictions = stripe->evictions.load(std::memory_order_relaxed);
    s.load_wait_seconds =
        static_cast<double>(
            stripe->load_wait_us.load(std::memory_order_relaxed)) *
        1e-6;
    {
      MutexLock lock(&stripe->mu);
      s.frames = stripe->frames.size();
    }
    out.push_back(s);
  }
  return out;
}

void BufferPool::ExportTo(MetricsRegistry* registry,
                          const std::string& prefix) const {
  std::vector<StripeStats> stats = PerStripeStats();
  StripeStats total;
  for (size_t i = 0; i < stats.size(); ++i) {
    const StripeStats& s = stats[i];
    std::string label = "{stripe=\"" + std::to_string(i) + "\"}";
    registry->GetGauge(prefix + "_hits" + label)
        ->Set(static_cast<double>(s.hits));
    registry->GetGauge(prefix + "_misses" + label)
        ->Set(static_cast<double>(s.misses));
    registry->GetGauge(prefix + "_evictions" + label)
        ->Set(static_cast<double>(s.evictions));
    registry->GetGauge(prefix + "_load_wait_seconds" + label)
        ->Set(s.load_wait_seconds);
    registry->GetGauge(prefix + "_frames" + label)
        ->Set(static_cast<double>(s.frames));
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.load_wait_seconds += s.load_wait_seconds;
    total.frames += s.frames;
  }
  registry->GetGauge(prefix + "_hits_total")
      ->Set(static_cast<double>(total.hits));
  registry->GetGauge(prefix + "_misses_total")
      ->Set(static_cast<double>(total.misses));
  registry->GetGauge(prefix + "_evictions_total")
      ->Set(static_cast<double>(total.evictions));
  registry->GetGauge(prefix + "_load_wait_seconds_total")
      ->Set(total.load_wait_seconds);
  registry->GetGauge(prefix + "_frames_total")
      ->Set(static_cast<double>(total.frames));
  registry->GetGauge(prefix + "_stripes")
      ->Set(static_cast<double>(stats.size()));
}

Status BufferPool::Clear() {
  PCUBE_RETURN_NOT_OK(FlushAll());
  for (auto& stripe : stripes_) {
    MutexLock lock(&stripe->mu);
    for ([[maybe_unused]] auto& [pid, frame] : stripe->frames) {
      PCUBE_CHECK_EQ(frame.pins, 0) << "Clear() with outstanding pins";
    }
    stripe->frames.clear();
    stripe->lru.clear();
  }
  return Status::OK();
}

}  // namespace pcube
