// Negative controls for pcube-wire-no-abort: Status returns and checks on
// values the server produced itself (tagged trusted) are fine.
#include "../lint_fixture_support.h"

namespace pcube::wire {

Status DecodeDefensively(const unsigned char* bytes, unsigned long len) {
  if (len < 12) return Status{};  // reject, never abort
  if (bytes[0] != 'P') return Status{};
  // The chunk size below is computed by the server, not read off the wire.
  unsigned long chunk = len < 4096 ? len : 4096;
  // pcube-lint: trusted(chunk is clamped locally two lines above; no wire
  // byte reaches this check)
  PCUBE_CHECK_LE(chunk, 4096u);
  return Status{};
}

}  // namespace pcube::wire
