#include "common/status.h"

namespace pcube {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace pcube
