# Empty dependencies file for pcube_query.
# This may be replaced when dependencies are built.
