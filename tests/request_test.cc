// Canonicalization and fingerprint tests for the unified QueryRequest: the
// cache key must be insensitive to predicate/pref-dim insertion order,
// sensitive to everything that changes the answer, and absent (bypass) for
// requests without a canonical form.
#include <gtest/gtest.h>

#include "query/request.h"

namespace pcube {
namespace {

TEST(RequestCanonicalTest, PredicateInsertionOrderIsIrrelevant) {
  PredicateSet a;
  a.Add({0, 5});
  a.Add({2, 7});
  a.Add({1, 1});
  PredicateSet b;
  b.Add({2, 7});
  b.Add({1, 1});
  b.Add({0, 5});
  QueryRequest qa = QueryRequest::Skyline(a);
  QueryRequest qb = QueryRequest::Skyline(b);
  EXPECT_EQ(qa.Canonical(), qb.Canonical());
  EXPECT_EQ(qa.Fingerprint(), qb.Fingerprint());
  EXPECT_NE(qa.Canonical(), "");
}

TEST(RequestCanonicalTest, PrefDimOrderAndDuplicatesAreIrrelevant) {
  SkylineQueryOptions oa;
  oa.pref_dims = {2, 0, 1};
  SkylineQueryOptions ob;
  ob.pref_dims = {0, 1, 2, 1};
  QueryRequest qa = QueryRequest::Skyline({{0, 3}}, oa);
  QueryRequest qb = QueryRequest::Skyline({{0, 3}}, ob);
  EXPECT_EQ(qa.Canonical(), qb.Canonical());
  EXPECT_EQ(qa.Fingerprint(), qb.Fingerprint());

  SkylineQueryOptions oc;
  oc.pref_dims = {0, 1};
  QueryRequest qc = QueryRequest::Skyline({{0, 3}}, oc);
  EXPECT_NE(qa.Canonical(), qc.Canonical());
}

TEST(RequestCanonicalTest, DistinctQueriesGetDistinctKeys) {
  QueryRequest base = QueryRequest::Skyline({{0, 3}});
  EXPECT_NE(base.Canonical(), QueryRequest::Skyline({{0, 4}}).Canonical());
  EXPECT_NE(base.Canonical(), QueryRequest::Skyline({{1, 3}}).Canonical());
  EXPECT_NE(base.Canonical(),
            QueryRequest::Skyline({{0, 3}, {1, 1}}).Canonical());

  SkylineQueryOptions band;
  band.skyband_k = 2;
  EXPECT_NE(base.Canonical(),
            QueryRequest::Skyline({{0, 3}}, band).Canonical());

  SkylineQueryOptions dynamic;
  dynamic.origin = {0.5f, 0.5f};
  EXPECT_NE(base.Canonical(),
            QueryRequest::Skyline({{0, 3}}, dynamic).Canonical());
  // The origin is keyed by exact float bits, not a rounded rendering.
  SkylineQueryOptions dynamic2;
  dynamic2.origin = {0.5f, 0.50000006f};  // next float up from 0.5
  EXPECT_NE(QueryRequest::Skyline({{0, 3}}, dynamic).Canonical(),
            QueryRequest::Skyline({{0, 3}}, dynamic2).Canonical());
}

TEST(RequestCanonicalTest, TopKKeysSeparateKButShareTheFamily) {
  auto f = std::make_shared<LinearRanking>(std::vector<double>{0.25, 0.75});
  QueryRequest k5 = QueryRequest::TopK({{0, 1}}, f, 5);
  QueryRequest k9 = QueryRequest::TopK({{0, 1}}, f, 9);
  EXPECT_NE(k5.Canonical(), k9.Canonical());
  EXPECT_NE(k5.Fingerprint(), k9.Fingerprint());
  // The family key strips k, so one cached run serves smaller k by prefix.
  EXPECT_EQ(k5.CanonicalFamily(k5.preds), k9.CanonicalFamily(k9.preds));
  EXPECT_EQ(k5.FamilyFingerprint(k5.preds), k9.FamilyFingerprint(k9.preds));
}

TEST(RequestCanonicalTest, RankingWeightsAreBitExact) {
  auto a = std::make_shared<LinearRanking>(std::vector<double>{0.1, 0.2});
  auto b = std::make_shared<LinearRanking>(std::vector<double>{0.1, 0.2});
  auto c = std::make_shared<LinearRanking>(
      std::vector<double>{0.1, 0.20000000000000004});  // next double up
  EXPECT_EQ(QueryRequest::TopK({{0, 1}}, a, 5).Canonical(),
            QueryRequest::TopK({{0, 1}}, b, 5).Canonical());
  EXPECT_NE(QueryRequest::TopK({{0, 1}}, a, 5).Canonical(),
            QueryRequest::TopK({{0, 1}}, c, 5).Canonical());

  auto l2 = std::make_shared<WeightedL2Ranking>(
      std::vector<double>{0.1, 0.2}, std::vector<double>{1.0, 1.0});
  EXPECT_NE(QueryRequest::TopK({{0, 1}}, a, 5).Canonical(),
            QueryRequest::TopK({{0, 1}}, l2, 5).Canonical());
}

// A ranking that deliberately opts out of caching (no CacheKey override).
class OpaqueRanking : public RankingFunction {
 public:
  double Score(std::span<const float> point) const override {
    double s = 0;
    for (float v : point) s += v;
    return s;
  }
  double LowerBound(const RectF& box) const override { return box.min[0]; }
};

TEST(RequestCanonicalTest, CustomRankingIsNotCanonicalizable) {
  auto f = std::make_shared<OpaqueRanking>();
  QueryRequest q = QueryRequest::TopK({{0, 1}}, f, 5);
  EXPECT_FALSE(q.Canonicalizable());
  EXPECT_EQ(q.Canonical(), "");
  EXPECT_EQ(q.Fingerprint(), 0u);
  // Skylines always canonicalize.
  EXPECT_TRUE(QueryRequest::Skyline({}).Canonicalizable());
}

TEST(RequestCanonicalTest, FamilySubstitutesPredicates) {
  QueryRequest q = QueryRequest::Skyline({{0, 3}, {1, 1}});
  PredicateSet sub{{0, 3}};
  // The family for a subset equals the family the subset's own query
  // would produce — that identity is what containment probing relies on.
  QueryRequest sub_q = QueryRequest::Skyline(sub);
  EXPECT_EQ(q.CanonicalFamily(sub), sub_q.CanonicalFamily(sub_q.preds));
}

TEST(RequestCanonicalTest, Fnv1a64KnownAnswers) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

}  // namespace
}  // namespace pcube
