#include "common/simd/word_kernels.h"

#include <bit>
#include <string>

#include "common/metrics.h"
#include "common/simd/simd.h"

#if defined(PCUBE_SIMD_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace pcube::simd {

// ---------------------------------------------------------------------------
// Scalar reference: one 64-bit word per step. These double as the ground
// truth of the differential tests, so they stay deliberately plain.
// ---------------------------------------------------------------------------

bool AndWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                    size_t n) {
  uint64_t any = 0;
  for (size_t i = 0; i < n; ++i) {
    dst[i] = a[i] & b[i];
    any |= dst[i];
  }
  return any != 0;
}

void OrWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] | b[i];
}

void AndNotWordsScalar(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] = a[i] & ~b[i];
}

uint64_t PopcountWordsScalar(const uint64_t* a, size_t n) {
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) c += std::popcount(a[i]);
  return c;
}

uint64_t AndPopcountWordsScalar(const uint64_t* a, const uint64_t* b,
                                size_t n) {
  uint64_t c = 0;
  for (size_t i = 0; i < n; ++i) c += std::popcount(a[i] & b[i]);
  return c;
}

bool AnyWordsScalar(const uint64_t* a, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// AVX2: 256 bits (four words) per step via the target attribute, so the
// translation unit itself compiles for the baseline ISA and these bodies
// are only reachable behind the CPUID dispatch. Loads are unaligned
// (interior pointers are legal per the header contract); POPCNT rides
// along because every AVX2 CPU has it.
// ---------------------------------------------------------------------------

#if defined(PCUBE_SIMD_HAVE_AVX2)

__attribute__((target("avx2"))) bool AndWordsAvx2(uint64_t* dst,
                                                  const uint64_t* a,
                                                  const uint64_t* b,
                                                  size_t n) {
  size_t i = 0;
  __m256i any = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i v = _mm256_and_si256(va, vb);
    any = _mm256_or_si256(any, v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  uint64_t tail_any = _mm256_testz_si256(any, any) ? 0 : 1;
  for (; i < n; ++i) {
    dst[i] = a[i] & b[i];
    tail_any |= dst[i];
  }
  return tail_any != 0;
}

__attribute__((target("avx2"))) void OrWordsAvx2(uint64_t* dst,
                                                 const uint64_t* a,
                                                 const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(va, vb));
  }
  for (; i < n; ++i) dst[i] = a[i] | b[i];
}

__attribute__((target("avx2"))) void AndNotWordsAvx2(uint64_t* dst,
                                                     const uint64_t* a,
                                                     const uint64_t* b,
                                                     size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot computes ~first & second, so the operands swap.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(vb, va));
  }
  for (; i < n; ++i) dst[i] = a[i] & ~b[i];
}

__attribute__((target("avx2,popcnt"))) uint64_t PopcountWordsAvx2(
    const uint64_t* a, size_t n) {
  // Hardware POPCNT, four independent chains per step to hide its latency;
  // a vectorised Harley-Seal only pays off far beyond node-array sizes.
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(a[i]));
    c1 += static_cast<uint64_t>(__builtin_popcountll(a[i + 1]));
    c2 += static_cast<uint64_t>(__builtin_popcountll(a[i + 2]));
    c3 += static_cast<uint64_t>(__builtin_popcountll(a[i + 3]));
  }
  for (; i < n; ++i) c0 += static_cast<uint64_t>(__builtin_popcountll(a[i]));
  return c0 + c1 + c2 + c3;
}

__attribute__((target("avx2,popcnt"))) uint64_t AndPopcountWordsAvx2(
    const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
    c1 += static_cast<uint64_t>(__builtin_popcountll(a[i + 1] & b[i + 1]));
    c2 += static_cast<uint64_t>(__builtin_popcountll(a[i + 2] & b[i + 2]));
    c3 += static_cast<uint64_t>(__builtin_popcountll(a[i + 3] & b[i + 3]));
  }
  for (; i < n; ++i) {
    c0 += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return c0 + c1 + c2 + c3;
}

__attribute__((target("avx2"))) bool AnyWordsAvx2(const uint64_t* a,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    if (!_mm256_testz_si256(v, v)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] != 0) return true;
  }
  return false;
}

#endif  // PCUBE_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// Dispatching entry points. The level is a process constant, so the branch
// predicts perfectly; the counter is one relaxed increment.
// ---------------------------------------------------------------------------

namespace {

inline bool UseAvx2() {
#if defined(PCUBE_SIMD_HAVE_AVX2)
  return ActiveSimdLevel() == SimdLevel::kAvx2;
#else
  return false;
#endif
}

inline Counter* KernelCounter(const char* kernel) {
  return MetricsRegistry::Default().GetCounter(
      std::string("pcube_simd_kernel_calls_total{kernel=\"") + kernel +
      "\"}");
}

}  // namespace

bool AndWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t n) {
  static Counter* calls = KernelCounter("and");
  calls->Increment();
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (UseAvx2()) return AndWordsAvx2(dst, a, b, n);
#endif
  return AndWordsScalar(dst, a, b, n);
}

void OrWords(uint64_t* dst, const uint64_t* a, const uint64_t* b, size_t n) {
  static Counter* calls = KernelCounter("or");
  calls->Increment();
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (UseAvx2()) return OrWordsAvx2(dst, a, b, n);
#endif
  OrWordsScalar(dst, a, b, n);
}

void AndNotWords(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                 size_t n) {
  static Counter* calls = KernelCounter("andnot");
  calls->Increment();
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (UseAvx2()) return AndNotWordsAvx2(dst, a, b, n);
#endif
  AndNotWordsScalar(dst, a, b, n);
}

uint64_t PopcountWords(const uint64_t* a, size_t n) {
  static Counter* calls = KernelCounter("popcount");
  calls->Increment();
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (UseAvx2()) return PopcountWordsAvx2(a, n);
#endif
  return PopcountWordsScalar(a, n);
}

uint64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, size_t n) {
  static Counter* calls = KernelCounter("and_popcount");
  calls->Increment();
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (UseAvx2()) return AndPopcountWordsAvx2(a, b, n);
#endif
  return AndPopcountWordsScalar(a, b, n);
}

bool AnyWords(const uint64_t* a, size_t n) {
  static Counter* calls = KernelCounter("any");
  calls->Increment();
#if defined(PCUBE_SIMD_HAVE_AVX2)
  if (UseAvx2()) return AnyWordsAvx2(a, n);
#endif
  return AnyWordsScalar(a, n);
}

}  // namespace pcube::simd
