file(REMOVE_RECURSE
  "CMakeFiles/pcube_test.dir/pcube_test.cc.o"
  "CMakeFiles/pcube_test.dir/pcube_test.cc.o.d"
  "pcube_test"
  "pcube_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
