// Figure 10: peak candidate-heap size (memory working set) w.r.t. T for
// skyline queries.
//
// Paper's claim to reproduce: with signatures, the number of entries kept in
// memory is an order of magnitude smaller than Domination (whose lazy
// verification keeps unverified candidates around) and Boolean (which holds
// the whole selected subset).
#include "bench_common.h"

namespace pcube::bench {
namespace {

void BM_HeapPeak(benchmark::State& state) {
  uint64_t n = static_cast<uint64_t>(state.range(0));
  Workbench* wb = CachedWorkbench2("fig10/" + std::to_string(n), [n] {
    return GenerateSynthetic(PaperConfig(n));
  });
  PredicateSet preds = OnePredicate(100);
  MeasuredRun boolean, dom, sig;
  for (auto _ : state) {
    boolean = RunBooleanSkyline(wb, preds);
    dom = RunDominationSkyline(wb, preds);
    sig = RunSignatureSkyline(wb, preds);
  }
  state.counters["Boolean"] = static_cast<double>(boolean.heap_peak);
  state.counters["Domination"] = static_cast<double>(dom.heap_peak);
  state.counters["Signature"] = static_cast<double>(sig.heap_peak);
}

void RegisterAll() {
  for (uint64_t n : TupleSweep()) {
    benchmark::RegisterBenchmark("fig10/PeakCandidateHeap", BM_HeapPeak)
        ->Arg(static_cast<int64_t>(n))
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
