// LRU page cache over a PageManager. A cache miss performs a physical
// PageManager::Read and is charged to the caller-supplied IoCategory; a hit
// is free. Benchmarks start each query with a cleared ("cold") pool so the
// reported disk-access counts match the paper's cold-cache methodology.
//
// Frames are handed out as RAII PageHandles that pin the frame: a pinned
// frame is never evicted, so a handle's Page* stays valid and mutations are
// never lost. If every frame is pinned the pool grows past its capacity
// rather than failing (the standard steal-free policy).
#pragma once

#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/io_stats.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_manager.h"

namespace pcube {

class BufferPool;

/// Pinning, move-only reference to a cached page frame.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(BufferPool* pool, PageId pid, Page* page)
      : pool_(pool), pid_(pid), page_(page) {}
  PageHandle(PageHandle&& o) noexcept { *this = std::move(o); }
  PageHandle& operator=(PageHandle&& o) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  Page* get() const { return page_; }
  Page& operator*() const { return *page_; }
  Page* operator->() const { return page_; }
  PageId pid() const { return pid_; }
  bool valid() const { return page_ != nullptr; }

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId pid_ = kInvalidPageId;
  Page* page_ = nullptr;
};

/// Write-back LRU buffer pool with pinning.
class BufferPool {
 public:
  /// `capacity_pages` bounds the number of cached frames (>= 1) except when
  /// pins force temporary growth.
  BufferPool(PageManager* pm, size_t capacity_pages, IoStats* stats);

  /// Fetches `pid` for reading; counts a physical read in `cat` on miss.
  Result<PageHandle> Get(PageId pid, IoCategory cat);

  /// Fetches `pid` for modification; the frame is marked dirty and written
  /// back on eviction or FlushAll(). The write-back is charged to `cat`.
  Result<PageHandle> GetMutable(PageId pid, IoCategory cat);

  /// Allocates a new page and returns a dirty frame for it.
  Result<PageHandle> New(IoCategory cat, PageId* pid);

  /// Writes back all dirty frames (keeps them cached).
  Status FlushAll();

  /// Writes back dirty frames and empties the cache (a "cold" restart).
  /// Requires no outstanding pins.
  Status Clear();

  /// Frees `pid`: drops any cached frame without write-back and returns the
  /// page to the PageManager's free list. The page must be unpinned and no
  /// longer referenced by any structure.
  Status FreePage(PageId pid);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  PageManager* page_manager() const { return pm_; }
  IoStats* stats() const { return stats_; }

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    bool dirty = false;
    int pins = 0;
    IoCategory cat = IoCategory::kHeapFile;
    std::list<PageId>::iterator lru_pos;
  };

  Result<Frame*> GetFrame(PageId pid, IoCategory cat, bool load);
  Status EvictOne();
  void Unpin(PageId pid);

  PageManager* pm_;
  size_t capacity_;
  IoStats* stats_;
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace pcube
