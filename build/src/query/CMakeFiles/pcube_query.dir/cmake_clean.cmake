file(REMOVE_RECURSE
  "CMakeFiles/pcube_query.dir/convex_hull.cc.o"
  "CMakeFiles/pcube_query.dir/convex_hull.cc.o.d"
  "CMakeFiles/pcube_query.dir/reference.cc.o"
  "CMakeFiles/pcube_query.dir/reference.cc.o.d"
  "CMakeFiles/pcube_query.dir/skyline_engine.cc.o"
  "CMakeFiles/pcube_query.dir/skyline_engine.cc.o.d"
  "CMakeFiles/pcube_query.dir/topk_engine.cc.o"
  "CMakeFiles/pcube_query.dir/topk_engine.cc.o.d"
  "libpcube_query.a"
  "libpcube_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcube_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
