// Convex-hull preference queries (paper §VII, after Böhm & Kriegel [21]):
// the tuples of the selected subset that are optimal for SOME non-negative
// linear ranking function. These are exactly the vertices of the lower-left
// convex hull of the subset and always form a subset of its skyline, so the
// query is answered by the signature-pruned skyline engine followed by a
// hull computation over the (small) skyline. 2-D preference spaces.
#pragma once

#include "query/skyline_engine.h"

namespace pcube {

/// One hull vertex with the weight range it wins.
struct HullVertex {
  TupleId tid = 0;
  float x = 0;
  float y = 0;
};

/// Result of a convex-hull query.
struct ConvexHullOutput {
  /// Lower-left hull vertices ordered by ascending x (descending y); each is
  /// the unique minimiser of w*x + (1-w)*y for some weight interval.
  std::vector<HullVertex> hull;
  /// The skyline the hull was extracted from, with its counters.
  SkylineOutput skyline;
};

/// Answers SELECT hull FROM R WHERE <preds> PREFERENCE BY N_a, N_b:
/// runs Algorithm 1 with signature pruning on dimensions {dim_x, dim_y},
/// then Andrew's monotone chain over the skyline points.
Result<ConvexHullOutput> ConvexHullQuery(const RStarTree& tree,
                                         BooleanProbe* probe, int dim_x,
                                         int dim_y);

/// Reference: hull vertex tids by brute force over a Dataset subset.
std::vector<TupleId> NaiveConvexHull(const Dataset& data,
                                     const PredicateSet& preds, int dim_x,
                                     int dim_y);

}  // namespace pcube
