#include "storage/table_store.h"

#include "common/bit_util.h"

namespace pcube {

void TableStore::EncodeRow(std::span<const uint32_t> bools,
                           std::span<const float> prefs, uint8_t* dst) const {
  for (int d = 0; d < num_bool_; ++d) {
    bit_util::StoreLE<uint32_t>(dst + 4 * d, bools[d]);
  }
  for (int d = 0; d < num_pref_; ++d) {
    bit_util::StoreLE<float>(dst + 4 * num_bool_ + 4 * d, prefs[d]);
  }
}

void TableStore::DecodeRow(const uint8_t* src, TupleId tid, TupleData* out) const {
  out->tid = tid;
  out->bools.resize(num_bool_);
  out->prefs.resize(num_pref_);
  for (int d = 0; d < num_bool_; ++d) {
    out->bools[d] = bit_util::LoadLE<uint32_t>(src + 4 * d);
  }
  for (int d = 0; d < num_pref_; ++d) {
    out->prefs[d] = bit_util::LoadLE<float>(src + 4 * num_bool_ + 4 * d);
  }
}

Result<TableStore> TableStore::Build(BufferPool* pool, const Dataset& data) {
  TableStore store(pool, data.num_bool(), data.num_pref());
  for (TupleId t = 0; t < data.num_tuples(); ++t) {
    auto res = store.Append(data.BoolRow(t), data.PrefPoint(t));
    if (!res.ok()) return res.status();
  }
  return store;
}

Result<TupleId> TableStore::Append(std::span<const uint32_t> bools,
                                   std::span<const float> prefs) {
  uint64_t slot = num_tuples_ % rows_per_page_;
  if (slot == 0) {
    PageId pid;
    auto handle = pool_->New(IoCategory::kHeapFile, &pid);
    if (!handle.ok()) return handle.status();
    page_ids_.push_back(pid);
  }
  auto handle = pool_->GetMutable(page_ids_.back(), IoCategory::kHeapFile);
  if (!handle.ok()) return handle.status();
  EncodeRow(bools, prefs, (*handle)->data() + slot * row_size_);
  return num_tuples_++;
}

Result<TupleData> TableStore::GetTuple(TupleId tid, IoCategory cat) const {
  if (tid >= num_tuples_) return Status::OutOfRange("tuple id out of range");
  PageId pid = page_ids_[tid / rows_per_page_];
  auto handle = pool_->Get(pid, cat);
  if (!handle.ok()) return handle.status();
  TupleData out;
  DecodeRow((*handle)->data() + (tid % rows_per_page_) * row_size_, tid, &out);
  return out;
}

Status TableStore::Scan(const std::function<bool(const TupleData&)>& visit) const {
  TupleData row;
  for (uint64_t p = 0; p < page_ids_.size(); ++p) {
    auto handle = pool_->Get(page_ids_[p], IoCategory::kHeapFile);
    if (!handle.ok()) return handle.status();
    uint64_t base = p * rows_per_page_;
    uint64_t n = std::min(rows_per_page_, num_tuples_ - base);
    for (uint64_t i = 0; i < n; ++i) {
      DecodeRow((*handle)->data() + i * row_size_, base + i, &row);
      if (!visit(row)) return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace pcube
