// Monotone data epochs: the invalidation backbone of both cache levels.
// The Workbench owns one DataEpoch; every incremental maintenance step
// (PCube::ApplyChanges, the paper's Fig. 7 path) bumps the epoch of each
// affected cell, and full rebuilds bump everything. Cache entries record
// the epochs they were computed under and are compared at lookup — stale
// entries are evicted lazily, so the read path takes no lock beyond one
// sharded mutex per probed cell.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "cube/cell.h"

namespace pcube {

/// Thread-safe epoch registry. Epochs only grow; 0 is the initial epoch of
/// every cell and of the whole dataset.
class DataEpoch {
 public:
  DataEpoch() = default;
  DataEpoch(const DataEpoch&) = delete;
  DataEpoch& operator=(const DataEpoch&) = delete;

  /// Epoch of one cell: the per-cell record if newer than the floor set by
  /// the last BumpAll, else that floor.
  uint64_t OfCell(CellId cell) const {
    uint64_t floor = floor_.load(std::memory_order_acquire);
    const Shard& s = shards_[ShardOf(cell)];
    MutexLock lock(&s.mu);
    auto it = s.cells.find(cell);
    uint64_t e = it == s.cells.end() ? 0 : it->second;
    return e > floor ? e : floor;
  }

  /// Dataset-wide epoch: bumped by every mutation anywhere. Entries for
  /// predicate-free queries (no cells to stamp) validate against this.
  uint64_t global() const { return global_.load(std::memory_order_acquire); }

  /// Structural epoch: bumped whenever the R-tree shape may have changed
  /// (any insert/delete — node paths and MBRs in cached engine state are
  /// only reusable while this is unchanged).
  uint64_t structure() const {
    return structure_.load(std::memory_order_acquire);
  }

  /// Records a mutation touching `cells`: all of them move to a fresh
  /// dataset epoch, and the structural epoch advances.
  void BumpCells(const std::vector<CellId>& cells) {
    uint64_t e = global_.fetch_add(1, std::memory_order_acq_rel) + 1;
    structure_.fetch_add(1, std::memory_order_acq_rel);
    for (CellId cell : cells) {
      Shard& s = shards_[ShardOf(cell)];
      MutexLock lock(&s.mu);
      uint64_t& slot = s.cells[cell];
      if (slot < e) slot = e;
    }
  }

  /// Records a mutation whose footprint is unknown (full rebuild, bulk
  /// load): every cell's epoch advances at once via the floor.
  void BumpAll() {
    uint64_t e = global_.fetch_add(1, std::memory_order_acq_rel) + 1;
    structure_.fetch_add(1, std::memory_order_acq_rel);
    uint64_t f = floor_.load(std::memory_order_relaxed);
    while (f < e &&
           !floor_.compare_exchange_weak(f, e, std::memory_order_acq_rel)) {
    }
  }

 private:
  static constexpr size_t kShards = 16;
  static size_t ShardOf(CellId cell) {
    // Cells of one dimension share the high bits; mix before sharding.
    uint64_t x = cell * 0x9e3779b97f4a7c15ULL;
    return static_cast<size_t>(x >> 60) & (kShards - 1);
  }

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<CellId, uint64_t> cells GUARDED_BY(mu);
  };

  std::atomic<uint64_t> global_{0};
  std::atomic<uint64_t> structure_{0};
  std::atomic<uint64_t> floor_{0};
  Shard shards_[kShards];
};

}  // namespace pcube
