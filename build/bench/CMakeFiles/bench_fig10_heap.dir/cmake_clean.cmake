file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_heap.dir/bench_fig10_heap.cc.o"
  "CMakeFiles/bench_fig10_heap.dir/bench_fig10_heap.cc.o.d"
  "bench_fig10_heap"
  "bench_fig10_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
