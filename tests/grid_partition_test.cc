// Grid-partition template tests: the alternative partition method of
// §IV.B.1 plugs into the unchanged signature + engine machinery.
#include <gtest/gtest.h>

#include <set>

#include "data/generators.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

TEST(GridPartitionTest, StructureHoldsEveryTuple) {
  SyntheticConfig config;
  config.num_tuples = 3000;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 41;
  Dataset data = GenerateSynthetic(config);
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 4096, &stats);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 16;
  auto tree = RStarTree::BuildGridPartition(&pool, data, options, 8);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_entries(), 3000u);
  std::set<TupleId> seen;
  ASSERT_TRUE(tree->CollectPaths(
      [&](TupleId tid, const Path& p, std::span<const float> pt) {
        EXPECT_TRUE(seen.insert(tid).second);
        EXPECT_EQ(p.size(), static_cast<size_t>(tree->height() + 1));
        EXPECT_FLOAT_EQ(pt[0], data.PrefValue(tid, 0));
      }).ok());
  EXPECT_EQ(seen.size(), 3000u);
  // FindPath resolves through the grid structure too.
  for (TupleId t = 0; t < 3000; t += 311) {
    EXPECT_TRUE(tree->FindPath(data.PrefPoint(t), t).ok());
  }
}

TEST(GridPartitionTest, QueriesMatchNaiveOnGridTemplate) {
  SyntheticConfig config;
  config.num_tuples = 4000;
  config.num_bool = 2;
  config.num_pref = 2;
  config.bool_cardinality = 4;
  config.seed = 42;
  WorkbenchOptions options;
  options.grid_cells_per_dim = 6;
  options.rtree.max_entries = 16;
  auto wb = Workbench::Build(GenerateSynthetic(config), options);
  ASSERT_TRUE(wb.ok());
  LinearRanking f({0.4, 0.6});
  for (uint32_t v = 0; v < 4; ++v) {
    PredicateSet preds{{0, v}};
    auto sky = (*wb)->SignatureSkyline(preds);
    ASSERT_TRUE(sky.ok());
    EXPECT_EQ(SkylineTids(*sky), NaiveSkyline((*wb)->data(), preds));
    auto topk = (*wb)->SignatureTopK(preds, f, 10);
    ASSERT_TRUE(topk.ok());
    auto naive = NaiveTopK((*wb)->data(), preds, f, 10);
    ASSERT_EQ(topk->results.size(), naive.size());
    for (size_t i = 0; i < naive.size(); ++i) {
      EXPECT_NEAR(topk->results[i].key, naive[i].second, 1e-9);
    }
  }
}

TEST(GridPartitionTest, MaintenanceWorksOnGridTemplate) {
  SyntheticConfig config;
  config.num_tuples = 1500;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 3;
  config.seed = 43;
  Dataset full = GenerateSynthetic(config);
  Dataset initial(full.schema(), 0);
  for (TupleId t = 0; t < 1200; ++t) {
    initial.Append(full.BoolRow(t), full.PrefPoint(t));
  }
  WorkbenchOptions options;
  options.grid_cells_per_dim = 5;
  options.rtree.max_entries = 12;
  auto wb = Workbench::Build(std::move(initial), options);
  ASSERT_TRUE(wb.ok());
  Workbench& w = **wb;
  WriteBatch batch;
  for (TupleId src = 1200; src < 1500; ++src) {
    auto bools = full.BoolRow(src);
    auto prefs = full.PrefPoint(src);
    batch.inserts.push_back({{bools.begin(), bools.end()},
                             {prefs.begin(), prefs.end()}});
  }
  auto applied = w.Apply(batch);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  PredicateSet preds{{0, 1}};
  auto sky = w.SignatureSkyline(preds);
  ASSERT_TRUE(sky.ok());
  EXPECT_EQ(SkylineTids(*sky), NaiveSkyline(w.data(), preds));
}

TEST(GridPartitionTest, DegenerateGrids) {
  SyntheticConfig config;
  config.num_tuples = 300;
  config.num_bool = 1;
  config.num_pref = 2;
  config.bool_cardinality = 2;
  config.seed = 44;
  Dataset data = GenerateSynthetic(config);
  MemoryPageManager pm;
  IoStats stats;
  BufferPool pool(&pm, 1024, &stats);
  RTreeOptions options;
  options.dims = 2;
  options.max_entries = 8;
  // 1 cell per dim = one big bucket; still a valid tree.
  auto coarse = RStarTree::BuildGridPartition(&pool, data, options, 1);
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(coarse->num_entries(), 300u);
  // Very fine grid: most cells empty; still a valid tree.
  auto fine = RStarTree::BuildGridPartition(&pool, data, options, 64);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(fine->num_entries(), 300u);
}

}  // namespace
}  // namespace pcube
