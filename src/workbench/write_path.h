// The structure-mutation half of the write path (DESIGN.md §15).
//
// WriteApplier is the ONLY code that calls the raw structure mutators
// (Dataset/TableStore/BooleanIndex appends, RStarTree::Insert/Delete,
// PCube::ApplyChanges/Rebuild — the latter two are private to PCube with
// this class as their sole friend). Routing every mutation through one
// class is what makes the epoch-stamping contract unbypassable: the cube
// bumps the affected cells' DataEpochs inside ApplyChanges, and a cube-less
// workbench gets the equivalent bump here, so both cache levels invalidate
// exactly no matter how the batch reached the structures.
//
// Two callers, same code path:
//   * the Workbench maintenance thread, applying durable batches in bounded
//     slices under the structure writer lock (readers keep running between
//     slices — the RediSearch fork_gc discipline);
//   * WAL replay inside Workbench::Open, single-threaded, with `replay`
//     mode tolerating the idempotence cases a crash between Save() and the
//     WAL checkpoint creates (re-deleting an already-deleted tuple).
#pragma once

#include "common/status.h"
#include "query/write_batch.h"

namespace pcube {

class Workbench;

/// Applies WriteBatches to every structure of one Workbench.
class WriteApplier {
 public:
  /// The applier mutates `wb`'s structures directly; the caller owns the
  /// locking (structure writer lock held, or single-threaded recovery).
  explicit WriteApplier(Workbench* wb) : wb_(wb) {}

  /// Applies one batch: inserts get consecutive tids starting at the
  /// dataset's current row count, deletes are removed from the R-tree and
  /// tombstoned for the boolean-first plan, and the cube's signatures are
  /// maintained incrementally (paper Fig. 7), falling back to a full
  /// signature rebuild when the batch split the root. In `replay` mode a
  /// delete of an already-missing tuple is skipped, not an error.
  Status Apply(const WriteBatch& batch, bool replay);

  /// Recomputes every materialised signature from the tree's current state
  /// (the PCube::Rebuild gateway; bumps every epoch).
  Status RebuildCube();

 private:
  Workbench* wb_;
};

/// WAL record payload codec: the Workbench logs `u64 base_rows` (the row
/// count the dataset must have for the batch to apply — the idempotence
/// cursor replay checks) followed by the encoded batch.
Result<std::string> EncodeWalPayload(uint64_t base_rows,
                                     const WriteBatch& batch);
Status DecodeWalPayload(const std::string& payload, uint64_t* base_rows,
                        WriteBatch* batch);

}  // namespace pcube
