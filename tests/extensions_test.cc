// Tests for the §VII extension queries: dynamic skylines, k-skybands, their
// combination, and convex-hull queries — all with signature pruning and all
// checked against naive references.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "data/generators.h"
#include "query/convex_hull.h"
#include "query/reference.h"
#include "workbench/workbench.h"

namespace pcube {
namespace {

std::vector<TupleId> SkylineTids(const SkylineOutput& out) {
  std::vector<TupleId> tids;
  for (const SearchEntry& e : out.skyline) tids.push_back(e.id);
  std::sort(tids.begin(), tids.end());
  return tids;
}

class ExtensionsTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Workbench> MakeWorkbench(uint64_t seed, int dp = 2) {
    SyntheticConfig config;
    config.num_tuples = 2500;
    config.num_bool = 2;
    config.num_pref = dp;
    config.bool_cardinality = 3;
    config.seed = seed;
    WorkbenchOptions options;
    options.rtree.max_entries = 10;
    auto wb = Workbench::Build(GenerateSynthetic(config), options);
    PCUBE_CHECK(wb.ok());
    return std::move(*wb);
  }

  Result<SkylineOutput> Run(Workbench& w, const PredicateSet& preds,
                            SkylineQueryOptions options) {
    auto probe = w.cube()->MakeProbe(preds);
    if (!probe.ok()) return probe.status();
    SkylineEngine engine(w.tree(), probe->get(), nullptr, std::move(options));
    return engine.Run();
  }
};

TEST_P(ExtensionsTest, DynamicSkylineMatchesNaive) {
  auto wb = MakeWorkbench(800 + GetParam());
  Random rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<float> origin = {static_cast<float>(rng.NextDouble()),
                                 static_cast<float>(rng.NextDouble())};
    PredicateSet preds{{0, static_cast<uint32_t>(rng.Uniform(3))}};
    SkylineQueryOptions options;
    options.origin = origin;
    auto out = Run(*wb, preds, options);
    ASSERT_TRUE(out.ok());
    auto naive = NaiveSkyband(wb->data(), preds, {}, origin, 1);
    std::sort(naive.begin(), naive.end());
    EXPECT_EQ(SkylineTids(*out), naive)
        << "origin (" << origin[0] << "," << origin[1] << ")";
  }
}

TEST_P(ExtensionsTest, SkybandMatchesNaive) {
  auto wb = MakeWorkbench(830 + GetParam());
  Random rng(50 + GetParam());
  for (size_t k : {2u, 3u, 5u}) {
    PredicateSet preds{{1, static_cast<uint32_t>(rng.Uniform(3))}};
    SkylineQueryOptions options;
    options.skyband_k = k;
    auto out = Run(*wb, preds, options);
    ASSERT_TRUE(out.ok());
    auto naive = NaiveSkyband(wb->data(), preds, {}, {}, k);
    std::sort(naive.begin(), naive.end());
    EXPECT_EQ(SkylineTids(*out), naive) << "k=" << k;
  }
}

TEST_P(ExtensionsTest, DynamicSkybandCombination) {
  auto wb = MakeWorkbench(860 + GetParam());
  Random rng(100 + GetParam());
  std::vector<float> origin = {0.5f, 0.5f};
  PredicateSet preds{{0, static_cast<uint32_t>(rng.Uniform(3))}};
  SkylineQueryOptions options;
  options.origin = origin;
  options.skyband_k = 3;
  auto out = Run(*wb, preds, options);
  ASSERT_TRUE(out.ok());
  auto naive = NaiveSkyband(wb->data(), preds, {}, origin, 3);
  std::sort(naive.begin(), naive.end());
  EXPECT_EQ(SkylineTids(*out), naive);
}

TEST_P(ExtensionsTest, SkybandContainsSkyline) {
  auto wb = MakeWorkbench(890 + GetParam());
  PredicateSet preds{{0, 1}};
  SkylineQueryOptions sky_opts;
  auto sky = Run(*wb, preds, sky_opts);
  ASSERT_TRUE(sky.ok());
  SkylineQueryOptions band_opts;
  band_opts.skyband_k = 4;
  auto band = Run(*wb, preds, band_opts);
  ASSERT_TRUE(band.ok());
  auto sky_tids = SkylineTids(*sky);
  auto band_tids = SkylineTids(*band);
  EXPECT_GE(band_tids.size(), sky_tids.size());
  EXPECT_TRUE(std::includes(band_tids.begin(), band_tids.end(),
                            sky_tids.begin(), sky_tids.end()));
}

TEST_P(ExtensionsTest, ConvexHullMatchesNaive) {
  auto wb = MakeWorkbench(920 + GetParam());
  Random rng(150 + GetParam());
  PredicateSet preds{{0, static_cast<uint32_t>(rng.Uniform(3))}};
  auto probe = wb->cube()->MakeProbe(preds);
  ASSERT_TRUE(probe.ok());
  auto out = ConvexHullQuery(*wb->tree(), probe->get(), 0, 1);
  ASSERT_TRUE(out.ok());
  std::vector<TupleId> got;
  for (const HullVertex& v : out->hull) got.push_back(v.tid);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, NaiveConvexHull(wb->data(), preds, 0, 1));
}

TEST_P(ExtensionsTest, ConvexHullContainsEveryLinearOptimum) {
  // Property behind the hull query: for any non-negative weights, the top-1
  // under the linear function is a hull vertex (ties allowed).
  auto wb = MakeWorkbench(950 + GetParam());
  PredicateSet preds{{1, 0}};
  auto probe = wb->cube()->MakeProbe(preds);
  ASSERT_TRUE(probe.ok());
  auto out = ConvexHullQuery(*wb->tree(), probe->get(), 0, 1);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out->hull.empty());
  Random rng(200 + GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    double w = rng.NextDouble();
    LinearRanking f({w, 1.0 - w});
    auto naive = NaiveTopK(wb->data(), preds, f, 1);
    ASSERT_EQ(naive.size(), 1u);
    double best = naive[0].second;
    // Some hull vertex attains the optimal score.
    bool attained = false;
    for (const HullVertex& v : out->hull) {
      double score = w * v.x + (1.0 - w) * v.y;
      if (std::abs(score - best) < 1e-6) attained = true;
    }
    EXPECT_TRUE(attained) << "w=" << w;
  }
}

TEST_P(ExtensionsTest, HullIsSubsetOfSkyline) {
  auto wb = MakeWorkbench(980 + GetParam());
  PredicateSet preds;
  auto probe = wb->cube()->MakeProbe(preds);
  ASSERT_TRUE(probe.ok());
  auto out = ConvexHullQuery(*wb->tree(), probe->get(), 0, 1);
  ASSERT_TRUE(out.ok());
  std::vector<TupleId> sky = SkylineTids(out->skyline);
  EXPECT_LE(out->hull.size(), sky.size());
  for (const HullVertex& v : out->hull) {
    EXPECT_TRUE(std::binary_search(sky.begin(), sky.end(), v.tid));
  }
  // Hull vertices arrive ordered by ascending x, descending y.
  for (size_t i = 1; i < out->hull.size(); ++i) {
    EXPECT_LT(out->hull[i - 1].x, out->hull[i].x);
    EXPECT_GT(out->hull[i - 1].y, out->hull[i].y);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtensionsTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace pcube
