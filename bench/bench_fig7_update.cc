// Figure 7: incremental update time when inserting 1-100 new tuples, for
// (a) tuple-at-a-time incremental maintenance, (b) batched incremental
// maintenance, and (c) full recomputation.
//
// Paper's claims to reproduce: incremental maintenance is far cheaper than
// recomputation (only target cells are updated), and batching amortises
// (average per-tuple cost drops from 0.11 s to 0.04 s in the paper).
#include "bench_common.h"

namespace pcube::bench {
namespace {

constexpr uint64_t kSeedBase = 977;

std::unique_ptr<Workbench> FreshWorkbench(uint64_t n) {
  WorkbenchOptions options;
  auto wb = Workbench::Build(GenerateSynthetic(PaperConfig(n)), options);
  PCUBE_CHECK(wb.ok());
  return std::move(*wb);
}

Dataset NewTuples(int count) {
  SyntheticConfig config = PaperConfig(static_cast<uint64_t>(count));
  config.seed = kSeedBase;
  return GenerateSynthetic(config);
}

WriteBatch::Row MakeRow(const Dataset& data, TupleId t) {
  auto bools = data.BoolRow(t);
  auto prefs = data.PrefPoint(t);
  return {{bools.begin(), bools.end()}, {prefs.begin(), prefs.end()}};
}

void BM_IncrementalPerTuple(benchmark::State& state) {
  uint64_t n = TupleSweep()[1];
  int inserts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto wb = FreshWorkbench(n);
    Dataset extra = NewTuples(inserts);
    Timer t;
    for (TupleId i = 0; i < extra.num_tuples(); ++i) {
      WriteBatch batch;  // one tuple per Apply: the paper's non-batched mode
      batch.inserts.push_back(MakeRow(extra, i));
      auto applied = wb->Apply(batch);
      PCUBE_CHECK(applied.ok()) << applied.status().ToString();
    }
    state.SetIterationTime(t.ElapsedSeconds());
    state.counters["per_tuple_ms"] = t.ElapsedSeconds() * 1e3 / inserts;
  }
}

void BM_IncrementalBatch(benchmark::State& state) {
  uint64_t n = TupleSweep()[1];
  int inserts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto wb = FreshWorkbench(n);
    Dataset extra = NewTuples(inserts);
    Timer t;
    WriteBatch batch;  // all tuples in one Apply: batched maintenance
    for (TupleId i = 0; i < extra.num_tuples(); ++i) {
      batch.inserts.push_back(MakeRow(extra, i));
    }
    auto applied = wb->Apply(batch);
    PCUBE_CHECK(applied.ok()) << applied.status().ToString();
    state.SetIterationTime(t.ElapsedSeconds());
    state.counters["per_tuple_ms"] = t.ElapsedSeconds() * 1e3 / inserts;
  }
}

void BM_Recompute(benchmark::State& state) {
  uint64_t n = TupleSweep()[1];
  int inserts = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto wb = FreshWorkbench(n);
    Dataset extra = NewTuples(inserts);
    Timer t;
    WriteBatch batch;
    for (TupleId i = 0; i < extra.num_tuples(); ++i) {
      batch.inserts.push_back(MakeRow(extra, i));
    }
    auto applied = wb->Apply(batch);
    PCUBE_CHECK(applied.ok()) << applied.status().ToString();
    PCUBE_CHECK_OK(wb->RebuildCube());  // force the full-recompute arm
    state.SetIterationTime(t.ElapsedSeconds());
    state.counters["per_tuple_ms"] = t.ElapsedSeconds() * 1e3 / inserts;
  }
}

void RegisterAll() {
  for (int inserts : {1, 10, 100}) {
    benchmark::RegisterBenchmark("fig7/IncrementalPerTuple",
                                 BM_IncrementalPerTuple)
        ->Arg(inserts)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig7/IncrementalBatch", BM_IncrementalBatch)
        ->Arg(inserts)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark("fig7/Recompute", BM_Recompute)
        ->Arg(inserts)
        ->Iterations(1)
        ->UseManualTime()
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
