#include "workbench/catalog.h"

#include <set>

#include "common/bit_util.h"

namespace pcube {

namespace {

class Writer {
 public:
  void U32(uint32_t v) {
    size_t p = buf_.size();
    buf_.resize(p + 4);
    bit_util::StoreLE<uint32_t>(buf_.data() + p, v);
  }
  void U64(uint64_t v) {
    size_t p = buf_.size();
    buf_.resize(p + 8);
    bit_util::StoreLE<uint64_t>(buf_.data() + p, v);
  }
  void Bytes(const std::string& s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  const std::vector<uint8_t>& bytes() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class Reader {
 public:
  Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  Result<uint32_t> U32() {
    if (pos_ + 4 > buf_.size()) return Status::Corruption("catalog truncated");
    uint32_t v = bit_util::LoadLE<uint32_t>(buf_.data() + pos_);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    if (pos_ + 8 > buf_.size()) return Status::Corruption("catalog truncated");
    uint64_t v = bit_util::LoadLE<uint64_t>(buf_.data() + pos_);
    pos_ += 8;
    return v;
  }
  Result<std::string> Bytes(size_t n) {
    if (pos_ + n > buf_.size()) return Status::Corruption("catalog truncated");
    std::string s(buf_.begin() + pos_, buf_.begin() + pos_ + n);
    pos_ += n;
    return s;
  }
  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

constexpr size_t kChunk = kPageSize - 12;  // u32 len + u64 next

}  // namespace

Status SaveCatalog(BufferPool* pool, PageId root, const CatalogData& c) {
  Writer w;
  w.U32(CatalogData::kMagic);
  w.U32(CatalogData::kVersion);
  w.U32(static_cast<uint32_t>(c.num_bool));
  w.U32(static_cast<uint32_t>(c.num_pref));
  for (uint32_t card : c.bool_cardinality) w.U32(card);
  w.U64(c.num_tuples);
  w.U64(c.table_pages.size());
  for (PageId pid : c.table_pages) w.U64(pid);
  w.U64(c.indices.size());
  for (const auto& idx : c.indices) {
    w.U64(idx.root);
    w.U64(idx.num_entries);
    w.U64(idx.num_pages);
    w.U64(idx.next_seq);
  }
  w.U64(c.rtree_root);
  w.U32(static_cast<uint32_t>(c.rtree_height));
  w.U32(c.rtree_fanout);
  w.U64(c.rtree_entries);
  w.U64(c.rtree_pages);
  w.U32(c.has_cube ? 1 : 0);
  if (c.has_cube) {
    w.U64(c.sig_index_root);
    w.U64(c.sig_index_entries);
    w.U64(c.sig_index_pages);
    w.U64(c.sig_dense.size());
    for (const auto& [cell, dense] : c.sig_dense) {
      w.U64(cell);
      w.U32(dense);
    }
    w.U64(c.sig_num_partials);
    w.U64(c.sig_num_pages);
    w.U64(c.sig_append_page);
    w.U32(c.sig_append_offset);
    w.U64(c.cube_cells);
    w.U32(static_cast<uint32_t>(c.cube_levels));
  }
  w.U32(c.dictionaries.empty() ? 0 : 1);
  if (!c.dictionaries.empty()) {
    w.U64(c.dictionaries.size());
    for (const auto& dict : c.dictionaries) {
      w.U64(dict.size());
      for (const std::string& s : dict) {
        w.U32(static_cast<uint32_t>(s.size()));
        w.Bytes(s);
      }
    }
  }
  w.U64(c.tombstones.size());
  for (TupleId tid : c.tombstones) w.U64(tid);

  // Write the chain.
  const std::vector<uint8_t>& bytes = w.bytes();
  PageId pid = root;
  size_t offset = 0;
  while (true) {
    size_t n = std::min(kChunk, bytes.size() - offset);
    PageId next = kInvalidPageId;
    if (offset + n < bytes.size()) {
      auto handle = pool->New(IoCategory::kBtree, &next);
      if (!handle.ok()) return handle.status();
    }
    auto handle = pool->GetMutable(pid, IoCategory::kBtree);
    if (!handle.ok()) return handle.status();
    Page* page = handle->get();
    bit_util::StoreLE<uint32_t>(page->data(), static_cast<uint32_t>(n));
    bit_util::StoreLE<uint64_t>(page->data() + 4, next);
    std::copy(bytes.begin() + offset, bytes.begin() + offset + n,
              page->data() + 12);
    offset += n;
    if (next == kInvalidPageId) break;
    pid = next;
  }
  return Status::OK();
}

Result<CatalogData> LoadCatalog(BufferPool* pool, PageId root) {
  std::vector<uint8_t> bytes;
  PageId pid = root;
  std::set<PageId> visited;
  while (pid != kInvalidPageId) {
    if (!visited.insert(pid).second) {
      return Status::Corruption("catalog page chain contains a cycle");
    }
    auto handle = pool->Get(pid, IoCategory::kBtree);
    if (!handle.ok()) return handle.status();
    const Page* page = handle->get();
    uint32_t len = bit_util::LoadLE<uint32_t>(page->data());
    if (len > kChunk) return Status::Corruption("catalog chunk length");
    PageId next = bit_util::LoadLE<uint64_t>(page->data() + 4);
    if (next != kInvalidPageId &&
        next >= pool->page_manager()->NumPages()) {
      return Status::Corruption("catalog next pointer out of range");
    }
    bytes.insert(bytes.end(), page->data() + 12, page->data() + 12 + len);
    pid = next;
  }

  Reader r(bytes);
  CatalogData c;
  auto magic = r.U32();
  if (!magic.ok()) return magic.status();
  if (*magic != CatalogData::kMagic) {
    return Status::Corruption("not a P-Cube catalog");
  }
  auto version = r.U32();
  if (!version.ok()) return version.status();
  if (*version != CatalogData::kVersion) {
    return Status::NotSupported("catalog version " + std::to_string(*version));
  }

  // The remaining reads follow the exact write order; propagate the first
  // failure.
#define PCUBE_READ(var, call)          \
  do {                                 \
    auto _r = (call);                  \
    if (!_r.ok()) return _r.status();  \
    var = *_r;                         \
  } while (0)

  // A corrupt or fuzzed catalog can claim absurd element counts. Every
  // count is checked against the bytes actually left in the buffer (using
  // the minimum encoded size of one element) BEFORE any resize, so damage
  // yields Status::Corruption instead of a multi-gigabyte allocation.
#define PCUBE_CHECK_COUNT(n, min_elem_bytes)                      \
  do {                                                            \
    if ((n) > r.remaining() / (min_elem_bytes)) {                 \
      return Status::Corruption("catalog count " + std::to_string(n) + \
                                " exceeds remaining bytes");      \
    }                                                             \
  } while (0)

  uint32_t tmp32;
  uint64_t tmp64;
  PCUBE_READ(tmp32, r.U32());
  PCUBE_CHECK_COUNT(tmp32, 4);
  c.num_bool = static_cast<int>(tmp32);
  PCUBE_READ(tmp32, r.U32());
  PCUBE_CHECK_COUNT(tmp32, 4);
  c.num_pref = static_cast<int>(tmp32);
  c.bool_cardinality.resize(c.num_bool);
  for (int d = 0; d < c.num_bool; ++d) PCUBE_READ(c.bool_cardinality[d], r.U32());
  PCUBE_READ(c.num_tuples, r.U64());
  PCUBE_READ(tmp64, r.U64());
  PCUBE_CHECK_COUNT(tmp64, 8);
  c.table_pages.resize(tmp64);
  for (auto& pid2 : c.table_pages) PCUBE_READ(pid2, r.U64());
  PCUBE_READ(tmp64, r.U64());
  PCUBE_CHECK_COUNT(tmp64, 32);
  c.indices.resize(tmp64);
  for (auto& idx : c.indices) {
    PCUBE_READ(idx.root, r.U64());
    PCUBE_READ(idx.num_entries, r.U64());
    PCUBE_READ(idx.num_pages, r.U64());
    PCUBE_READ(idx.next_seq, r.U64());
  }
  PCUBE_READ(c.rtree_root, r.U64());
  PCUBE_READ(tmp32, r.U32());
  c.rtree_height = static_cast<int>(tmp32);
  PCUBE_READ(c.rtree_fanout, r.U32());
  PCUBE_READ(c.rtree_entries, r.U64());
  PCUBE_READ(c.rtree_pages, r.U64());
  PCUBE_READ(tmp32, r.U32());
  c.has_cube = tmp32 != 0;
  if (c.has_cube) {
    PCUBE_READ(c.sig_index_root, r.U64());
    PCUBE_READ(c.sig_index_entries, r.U64());
    PCUBE_READ(c.sig_index_pages, r.U64());
    PCUBE_READ(tmp64, r.U64());
    PCUBE_CHECK_COUNT(tmp64, 12);
    for (uint64_t i = 0; i < tmp64; ++i) {
      uint64_t cell;
      uint32_t dense;
      PCUBE_READ(cell, r.U64());
      PCUBE_READ(dense, r.U32());
      c.sig_dense.emplace(cell, dense);
    }
    PCUBE_READ(c.sig_num_partials, r.U64());
    PCUBE_READ(c.sig_num_pages, r.U64());
    PCUBE_READ(c.sig_append_page, r.U64());
    PCUBE_READ(c.sig_append_offset, r.U32());
    PCUBE_READ(c.cube_cells, r.U64());
    PCUBE_READ(tmp32, r.U32());
    c.cube_levels = static_cast<int>(tmp32);
  }
  PCUBE_READ(tmp32, r.U32());
  if (tmp32 != 0) {
    PCUBE_READ(tmp64, r.U64());
    PCUBE_CHECK_COUNT(tmp64, 8);
    c.dictionaries.resize(tmp64);
    for (auto& dict : c.dictionaries) {
      PCUBE_READ(tmp64, r.U64());
      PCUBE_CHECK_COUNT(tmp64, 4);
      dict.resize(tmp64);
      for (auto& s : dict) {
        PCUBE_READ(tmp32, r.U32());
        PCUBE_READ(s, r.Bytes(tmp32));
      }
    }
  }
  // Trailing tombstone list; absent in pre-write-path catalogs.
  if (!r.AtEnd()) {
    PCUBE_READ(tmp64, r.U64());
    PCUBE_CHECK_COUNT(tmp64, 8);
    c.tombstones.resize(tmp64);
    for (auto& tid : c.tombstones) PCUBE_READ(tid, r.U64());
  }
#undef PCUBE_CHECK_COUNT
#undef PCUBE_READ
  return c;
}

}  // namespace pcube
