#include "common/io_stats.h"

#include <sstream>

namespace pcube {

namespace {
const char* kCategoryNames[] = {"rtree", "signature", "bool-verify", "btree",
                                "heapfile"};
}  // namespace

std::string IoStats::ToString() const {
  std::ostringstream os;
  os << "IoStats{";
  bool first = true;
  for (int i = 0; i < static_cast<int>(IoCategory::kNumCategories); ++i) {
    if (reads[i] == 0 && writes[i] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << kCategoryNames[i] << ": r=" << reads[i] << " w=" << writes[i];
  }
  os << "}";
  return os.str();
}

}  // namespace pcube
