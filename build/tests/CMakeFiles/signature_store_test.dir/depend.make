# Empty dependencies file for signature_store_test.
# This may be replaced when dependencies are built.
