// Figure 11: skyline execution time w.r.t. the boolean-dimension
// cardinality C in {10, 100, 1000}, T fixed.
//
// Paper's claims to reproduce: Boolean improves as C grows (more selective
// predicates), Domination deteriorates (verification discards more
// candidates), Signature stays robust and best throughout.
#include "bench_common.h"

namespace pcube::bench {
namespace {

Workbench* WorkbenchForC(uint32_t c) {
  uint64_t n = TupleSweep()[0] * 2;  // stands in for the paper's T = 1M
  return CachedWorkbench2("fig11/" + std::to_string(c), [n, c] {
    SyntheticConfig config = PaperConfig(n);
    config.bool_cardinality = c;
    return GenerateSynthetic(config);
  });
}

void BM_SkylineByCardinality(benchmark::State& state, const char* method) {
  uint32_t c = static_cast<uint32_t>(state.range(0));
  Workbench* wb = WorkbenchForC(c);
  PredicateSet preds = OnePredicate(c);
  MeasuredRun last;
  for (auto _ : state) {
    if (std::string(method) == "signature") {
      last = RunSignatureSkyline(wb, preds);
    } else if (std::string(method) == "domination") {
      last = RunDominationSkyline(wb, preds);
    } else {
      last = RunBooleanSkyline(wb, preds);
    }
    state.SetIterationTime(CostSeconds(last));
  }
  ReportRun(state, last);
}

void RegisterAll() {
  for (uint32_t c : {10u, 100u, 1000u}) {
    for (const char* method : {"boolean", "domination", "signature"}) {
      benchmark::RegisterBenchmark(
          (std::string("fig11/SkylineByC/") + method).c_str(),
          BM_SkylineByCardinality, method)
          ->Arg(c)
          ->Iterations(3)
          ->UseManualTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace pcube::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  pcube::bench::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
