file(REMOVE_RECURSE
  "libpcube_workbench.a"
)
