// Fixture-driven test for the pcube_lint_scan fallback scanner.
//
// Every fixture under tests/lint_fixtures/ seeds violations with
// `// expect-lint: <check>` markers. The test runs the scanner over the
// corpus and requires an exact match: each marker reported exactly once
// with the expected check name, and nothing reported without a marker.
// Negative-control fixtures (no markers) must therefore stay silent.
//
// Usage: lint_fixture_test <path-to-pcube_lint_scan> <fixture-dir>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace {

namespace fs = std::filesystem;

std::string g_scanner;
std::string g_fixture_dir;

struct Finding {
  std::string file;  // basename-relative to the fixture dir
  int line = 0;
  std::string check;

  bool operator<(const Finding& o) const {
    return std::tie(file, line, check) < std::tie(o.file, o.line, o.check);
  }
  bool operator==(const Finding& o) const {
    return file == o.file && line == o.line && check == o.check;
  }
};

std::ostream& operator<<(std::ostream& os, const Finding& f) {
  return os << f.file << ":" << f.line << " [" << f.check << "]";
}

std::vector<fs::path> FixtureFiles() {
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(g_fixture_dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".cc" || ext == ".h") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string RelativeName(const fs::path& p) {
  return fs::relative(p, g_fixture_dir).generic_string();
}

// Collect `// expect-lint: <check>` markers from a fixture file.
std::vector<Finding> ExpectedIn(const fs::path& path) {
  std::vector<Finding> expected;
  std::ifstream in(path);
  std::string line;
  int lineno = 0;
  const std::regex marker(R"(//\s*expect-lint:\s*([A-Za-z0-9_-]+))");
  while (std::getline(in, line)) {
    ++lineno;
    std::smatch m;
    std::string rest = line;
    while (std::regex_search(rest, m, marker)) {
      expected.push_back({RelativeName(path), lineno, m[1].str()});
      rest = m.suffix();
    }
  }
  return expected;
}

struct ScanResult {
  int exit_code = -1;
  std::vector<Finding> findings;
  std::string raw;
};

// Run the scanner over `files` (absolute paths) with extra flags; parse
// the `file:line:col: warning: msg [check]` diagnostics it emits.
ScanResult RunScanner(const std::vector<fs::path>& files,
                      const std::string& extra_flags) {
  std::ostringstream cmd;
  cmd << "'" << g_scanner << "' --quiet " << extra_flags;
  for (const auto& f : files) cmd << " '" << f.string() << "'";
  cmd << " 2>&1";

  ScanResult result;
  FILE* pipe = popen(cmd.str().c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd.str();
    return result;
  }
  char buf[4096];
  while (fgets(buf, sizeof(buf), pipe) != nullptr) result.raw += buf;
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

  const std::regex diag(
      R"((.+):(\d+):(\d+): warning: .* \[([A-Za-z0-9_-]+)\])");
  std::istringstream lines(result.raw);
  std::string line;
  while (std::getline(lines, line)) {
    std::smatch m;
    if (!std::regex_match(line, m, diag)) continue;
    Finding f;
    f.file = RelativeName(fs::path(m[1].str()));
    f.line = std::stoi(m[2].str());
    f.check = m[4].str();
    result.findings.push_back(std::move(f));
  }
  std::sort(result.findings.begin(), result.findings.end());
  return result;
}

// Fixtures under server/ model wire-decode paths; the production default
// scope is src/server/, so the fixture run widens it.
const char kWireFlag[] = "--wire-paths=lint_fixtures/server/";

TEST(LintFixtures, EverySeededViolationReportedExactlyOnce) {
  const auto files = FixtureFiles();
  ASSERT_FALSE(files.empty()) << "no fixtures found under " << g_fixture_dir;

  std::vector<Finding> expected;
  for (const auto& f : files) {
    auto in_file = ExpectedIn(f);
    expected.insert(expected.end(), in_file.begin(), in_file.end());
  }
  std::sort(expected.begin(), expected.end());
  ASSERT_FALSE(expected.empty()) << "fixture corpus seeds no violations";

  const ScanResult scan = RunScanner(files, kWireFlag);
  EXPECT_EQ(scan.exit_code, 1) << "scanner should exit 1 when it finds "
                               << "violations\noutput:\n"
                               << scan.raw;

  std::multiset<Finding> got(scan.findings.begin(), scan.findings.end());
  for (const Finding& e : expected) {
    EXPECT_EQ(got.count(e), 1u) << "expected exactly one report for " << e
                                << "\noutput:\n"
                                << scan.raw;
  }
  for (const Finding& g : scan.findings) {
    const bool was_expected =
        std::binary_search(expected.begin(), expected.end(), g);
    EXPECT_TRUE(was_expected) << "false positive: " << g << "\noutput:\n"
                              << scan.raw;
  }
  EXPECT_EQ(scan.findings.size(), expected.size());
}

TEST(LintFixtures, NegativeControlsStaySilent) {
  std::vector<fs::path> clean;
  for (const auto& f : FixtureFiles()) {
    if (ExpectedIn(f).empty()) clean.push_back(f);
  }
  ASSERT_FALSE(clean.empty()) << "corpus has no negative-control fixtures";

  const ScanResult scan = RunScanner(clean, kWireFlag);
  EXPECT_EQ(scan.exit_code, 0) << scan.raw;
  EXPECT_TRUE(scan.findings.empty()) << scan.raw;
}

TEST(LintFixtures, ChecksFlagRestrictsReporting) {
  const auto files = FixtureFiles();
  const ScanResult scan = RunScanner(
      files, std::string(kWireFlag) + " --checks=pcube-mutation-entry");
  for (const Finding& f : scan.findings) {
    EXPECT_EQ(f.check, "pcube-mutation-entry") << scan.raw;
  }
  EXPECT_FALSE(scan.findings.empty())
      << "mutation fixtures should still report\n"
      << scan.raw;
}

TEST(LintFixtures, UsageErrorsExitTwo) {
  const ScanResult no_files = RunScanner({}, "");
  EXPECT_EQ(no_files.exit_code, 2) << no_files.raw;

  const ScanResult bad_check =
      RunScanner(FixtureFiles(), "--checks=no-such-check");
  EXPECT_EQ(bad_check.exit_code, 2) << bad_check.raw;
}

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <path-to-pcube_lint_scan> <fixture-dir>\n",
                 argv[0]);
    return 2;
  }
  g_scanner = argv[1];
  g_fixture_dir = argv[2];
  return RUN_ALL_TESTS();
}
