# Empty dependencies file for bench_fig14_predicates.
# This may be replaced when dependencies are built.
