// Decomposition / reassembly tests: partial signatures of bounded payload
// reassemble into exactly the original signature, in ascending-SID order and
// under the cursor's lazy prefix-probing order.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/signature_codec.h"

namespace pcube {
namespace {

Signature RandomSignature(uint32_t m, int levels, int paths, uint64_t seed) {
  Random rng(seed);
  Signature sig(m, levels);
  for (int i = 0; i < paths; ++i) {
    Path p(levels);
    for (auto& s : p) s = static_cast<uint16_t>(1 + rng.Uniform(m));
    sig.SetPath(p);
  }
  return sig;
}

Signature Reassemble(const Signature& original,
                     const std::vector<PartialSignature>& partials) {
  SignatureFragment fragment(original.fanout(), original.levels());
  for (const PartialSignature& p : partials) {
    EXPECT_TRUE(
        DecodePartialSignature(p.root_path, p.bytes, &fragment).ok());
  }
  return fragment.ToSignature();
}

TEST(SignatureCodecTest, EmptySignatureHasNoPartials) {
  Signature sig(4, 3);
  EXPECT_TRUE(DecomposeSignature(sig, 4000).empty());
}

TEST(SignatureCodecTest, SmallSignatureFitsOnePartial) {
  Signature sig(4, 3);
  sig.SetPath({1, 2, 3});
  sig.SetPath({4, 4, 4});
  auto partials = DecomposeSignature(sig, 4000);
  ASSERT_EQ(partials.size(), 1u);
  EXPECT_EQ(partials[0].root_sid, 0u);
  EXPECT_TRUE(Reassemble(sig, partials).Equals(sig));
}

TEST(SignatureCodecTest, TinyPayloadForcesManyPartials) {
  Signature sig = RandomSignature(5, 4, 300, 31);
  // 24-byte payload: every partial holds only a couple of arrays.
  auto partials = DecomposeSignature(sig, 24);
  EXPECT_GT(partials.size(), 10u);
  // Partials are generated in ascending SID order (BFS of roots).
  for (size_t i = 1; i < partials.size(); ++i) {
    EXPECT_LT(partials[i - 1].root_sid, partials[i].root_sid);
  }
  for (const auto& p : partials) {
    EXPECT_LE(p.bytes.size(), 24u);
  }
  EXPECT_TRUE(Reassemble(sig, partials).Equals(sig));
}

TEST(SignatureCodecTest, PartialSubsetDecodesPrefixOfTree) {
  Signature sig = RandomSignature(4, 3, 100, 32);
  auto partials = DecomposeSignature(sig, 32);
  ASSERT_GT(partials.size(), 2u);
  // Decoding only the root partial yields a fragment whose arrays all match
  // the original signature (no garbage).
  SignatureFragment fragment(sig.fanout(), sig.levels());
  ASSERT_TRUE(DecodePartialSignature(partials[0].root_path, partials[0].bytes,
                                     &fragment).ok());
  EXPECT_GT(fragment.num_nodes(), 0u);
  Signature partial_sig = fragment.ToSignature();
  EXPECT_FALSE(partial_sig.Empty());
  // The decoded root array equals the original's.
  const BitVector* root_bits = fragment.Node({});
  ASSERT_NE(root_bits, nullptr);
  EXPECT_TRUE(*root_bits == sig.root().bits);
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecRoundTripTest, RoundTripsAtAllPayloadSizes) {
  auto [seed, payload] = GetParam();
  for (uint32_t m : {2u, 3u, 7u}) {
    for (int levels : {1, 2, 3, 4}) {
      Signature sig = RandomSignature(m, levels, 150, seed * 97 + m + levels);
      auto partials = DecomposeSignature(sig, payload);
      Signature back = Reassemble(sig, partials);
      EXPECT_TRUE(back.Equals(sig))
          << "m=" << m << " levels=" << levels << " payload=" << payload;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPayloads, CodecRoundTripTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(16, 40, 200, 4000)));

}  // namespace
}  // namespace pcube
