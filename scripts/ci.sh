#!/usr/bin/env bash
# CI driver. Usage: scripts/ci.sh [jobs] [phase...]
#
#   jobs   — optional leading integer, default $(nproc)
#   phase  — any of: plain tsan asan ubsan tidy lint format throughput
#            corruption cache shard serve ingest simd simd-off
#            (default: all, in that order)
#
# Phases:
#   plain      — RelWithDebInfo build, full ctest suite (includes the
#                compile-fail negative tests of the enforcement layer).
#   tsan/asan/ubsan — sanitizer builds. The test set is label-driven: a
#                test labeled `tsan` in tests/CMakeLists.txt is built and
#                run by the tsan phase (`ctest -L tsan`), and the build
#                target list is derived from the same labels, so there is
#                exactly one place that decides sanitizer coverage.
#   tidy       — clang-tidy over every non-test entry of the plain build's
#                compile_commands.json (src/, tools/, bench/), warnings as
#                errors per .clang-tidy. Skipped when clang-tidy is absent.
#   lint       — pcube-lint architecture checks (DESIGN.md §16): mutation
#                entry-point discipline, no aborts reachable from wire
#                decode, GUARDED_BY completeness on lock-owning classes,
#                rationale comments on IgnoreError. Runs the clang-tidy
#                plugin when LLVM dev headers were available at configure
#                time, always the pcube_lint_scan fallback, and a
#                clang --analyze sweep when clang is installed.
#   format     — scripts/format.sh --check against .clang-format. Skipped
#                when clang-format is absent.
#   throughput — bench_throughput smoke (observability artifacts).
#   corruption — end-to-end corruption gate (verify flags corruption, the
#                degraded answer matches the boolean-first reference).
#   cache      — bench_cache smoke (warm pass must record L1 hits and beat
#                the cold pass).
#   shard      — scatter-gather gate: the shard differential suite
#                (shard_test) plus a bench_shard smoke whose every shard
#                count must answer byte-identically to the 1-shard
#                baseline; emits BENCH_shard.json with QPS per shard count.
#   serve      — network-server gate: a background `pcube serve` must answer
#                a client-mode query identically to a local run, survive raw
#                garbage bytes on its port, shut down cleanly on SIGTERM, and
#                a bench_serve smoke must show overload being shed (non-zero
#                exit when the 2x run sheds nothing); emits BENCH_serve.json.
#   ingest     — write-path gate: the SIGKILL crash-recovery test (reopen
#                must replay the WAL and match a never-crashed reference),
#                a CLI round trip (pcube ingest streams rows through the
#                WAL, verify inspects the sidecar, corrupt --wal tears it
#                and verify must call the torn tail out), and a
#                bench_ingest smoke (sustained ingest concurrent with
#                queries; non-zero exit when commits fail, rows go missing
#                or group commit never coalesces); emits BENCH_ingest.json.
#   simd       — bench_micro kernel smoke (PCUBE_SIMD_SMOKE=1): emits
#                BENCH_simd.json and, when AVX2 kernels are dispatched,
#                fails below 2x verbatim-intersect / 1.5x batched-dominance
#                speedup over scalar. Report-only on scalar-only machines.
#   simd-off   — full ctest suite of a -DPCUBE_SIMD=OFF build: the scalar
#                fallback path must pass everything, including the
#                differential suite, with the vector kernels compiled out.
#
# Every configure exports compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS is set in CMakeLists.txt), so clang-tidy
# and editors share one database per build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
if [[ "${1:-}" =~ ^[0-9]+$ ]]; then
  JOBS="$1"
  shift
fi

ALL_PHASES=(plain tsan asan ubsan tidy lint format throughput corruption
            cache shard serve ingest simd simd-off)
if [ "$#" -gt 0 ]; then
  PHASES=("$@")
  for phase in "${PHASES[@]}"; do
    case " ${ALL_PHASES[*]} " in
      *" $phase "*) ;;
      *)
        echo "ci.sh: unknown phase '$phase' (known: ${ALL_PHASES[*]})" >&2
        exit 1
        ;;
    esac
  done
else
  PHASES=("${ALL_PHASES[@]}")
fi

want() {
  local phase
  for phase in "${PHASES[@]}"; do
    if [ "$phase" = "$1" ]; then return 0; fi
  done
  return 1
}

# Configures + builds the plain tree (the smoke/gate phases run binaries
# out of it). Cheap when already up to date.
ensure_plain_build() {
  cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build -j "$JOBS"
}

# Builds a sanitizer tree and runs the ctest label that defines its test
# set: sanitizer_pass <dir> <PCUBE_SANITIZE value> <label>.
sanitizer_pass() {
  local dir="$1" sanitizer="$2" label="$3"
  cmake -B "$dir" -S . -DPCUBE_SANITIZE="$sanitizer"
  # Derive the build-target list from the test labels so a newly labeled
  # test cannot silently miss the sanitizer matrix. Test name == target
  # name for every pcube_add_test; the compile-fail script tests carry
  # only the `static` label and so never land here.
  local -a targets
  mapfile -t targets < <(ctest --test-dir "$dir" -N -L "$label" |
                         sed -n 's/^ *Test *#[0-9]*: //p')
  if [ "${#targets[@]}" -eq 0 ]; then
    echo "ci.sh: no tests labeled '$label' — label set regressed" >&2
    exit 1
  fi
  echo "--- $label targets: ${targets[*]}"
  cmake --build "$dir" -j "$JOBS" --target "${targets[@]}"
  ctest --test-dir "$dir" --output-on-failure -L "$label"
}

if want plain; then
  echo "=== plain build ==="
  ensure_plain_build
  echo "=== plain ctest ==="
  ctest --test-dir build --output-on-failure
fi

if want tsan; then
  echo "=== tsan ==="
  sanitizer_pass build-tsan thread tsan
fi

if want asan; then
  echo "=== asan ==="
  sanitizer_pass build-asan address asan
fi

if want ubsan; then
  echo "=== ubsan ==="
  sanitizer_pass build-ubsan undefined ubsan
fi

if want tidy; then
  echo "=== clang-tidy ==="
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "ci.sh: clang-tidy not installed — phase SKIPPED"
  else
    # The plain tree's database covers everything; tidy the non-test code
    # (tests trip GTest-macro noise, and the compile-time gates already
    # cover them). .clang-tidy sets WarningsAsErrors: '*'.
    cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    mapfile -t tidy_files < <(git ls-files 'src/**/*.cc' 'tools/*.cpp' \
                              'bench/*.cc')
    clang-tidy -p build --quiet "${tidy_files[@]}"
    echo "ci.sh: clang-tidy clean over ${#tidy_files[@]} files"
  fi
fi

if want lint; then
  echo "=== pcube-lint ==="
  # Architecture checks (DESIGN.md §16). scripts/lint.sh picks the best
  # available tier itself: clang-tidy plugin when built, always the
  # pcube_lint_scan fallback, clang --analyze when clang exists. The
  # fixture corpus (lint_fixture_test, plain phase) pins both tiers'
  # semantics, so a SKIP here never means the rules went unenforced.
  ensure_plain_build
  scripts/lint.sh build
fi

if want format; then
  echo "=== format check ==="
  rc=0
  scripts/format.sh --check || rc=$?
  if [ "$rc" -eq 77 ]; then
    echo "ci.sh: clang-format not installed — phase SKIPPED"
  elif [ "$rc" -ne 0 ]; then
    exit "$rc"
  fi
fi

if want throughput; then
  echo "=== throughput smoke ==="
  ensure_plain_build
  SMOKE_DIR=build/smoke
  mkdir -p "$SMOKE_DIR"
  (cd "$SMOKE_DIR" &&
   PCUBE_THROUGHPUT_SMOKE=1 \
   PCUBE_THROUGHPUT_ROWS=2000 \
   PCUBE_THROUGHPUT_QUERIES=24 \
   PCUBE_THROUGHPUT_LATENCY_US=100 \
   ../bench/bench_throughput)
  for field in latency_p50 latency_p95 latency_p99; do
    if ! grep -q "\"$field\"" "$SMOKE_DIR/BENCH_throughput.json"; then
      echo "ci.sh: BENCH_throughput.json is missing $field" >&2
      exit 1
    fi
  done
  for artifact in BENCH_throughput_metrics.prom BENCH_throughput_querylog.jsonl; do
    if [ ! -s "$SMOKE_DIR/$artifact" ]; then
      echo "ci.sh: $artifact missing or empty" >&2
      exit 1
    fi
  done
  if ! grep -q '^pcube_bufferpool_hits_total' "$SMOKE_DIR/BENCH_throughput_metrics.prom"; then
    echo "ci.sh: metrics dump lacks buffer-pool counters" >&2
    exit 1
  fi
  mkdir -p build/artifacts
  cp "$SMOKE_DIR"/BENCH_throughput.json \
     "$SMOKE_DIR"/BENCH_throughput_metrics.prom \
     "$SMOKE_DIR"/BENCH_throughput_querylog.jsonl build/artifacts/
  echo "ci.sh: artifacts in build/artifacts/"
fi

if want corruption; then
  echo "=== corruption gate ==="
  ensure_plain_build
  GATE_DIR=build/corruption-gate
  rm -rf "$GATE_DIR"
  mkdir -p "$GATE_DIR"
  PCUBE=build/tools/pcube
  "$PCUBE" generate --rows 3000 --bool 3 --pref 2 --card 8 --seed 5 \
    --out "$GATE_DIR/data.csv" >/dev/null
  "$PCUBE" build --csv "$GATE_DIR/data.csv" --spec bbbpp --header \
    --db "$GATE_DIR/gate.pcube" >/dev/null
  # Reference answer from the boolean-first plan (never touches signatures).
  "$PCUBE" skyline --db "$GATE_DIR/gate.pcube" --where "0=#3" --plan boolean \
    --limit 100000 | grep '^  #' | sort > "$GATE_DIR/reference.txt"
  [ -s "$GATE_DIR/reference.txt" ] || {
    echo "ci.sh: gate reference query returned nothing" >&2; exit 1; }
  "$PCUBE" verify --db "$GATE_DIR/gate.pcube" >/dev/null || {
    echo "ci.sh: verify failed on a pristine database" >&2; exit 1; }
  "$PCUBE" corrupt --db "$GATE_DIR/gate.pcube" --kind signature >/dev/null
  if "$PCUBE" verify --db "$GATE_DIR/gate.pcube" >/dev/null 2>&1; then
    echo "ci.sh: verify missed the corrupted signature pages" >&2
    exit 1
  fi
  "$PCUBE" skyline --db "$GATE_DIR/gate.pcube" --where "0=#3" --plan signature \
    --limit 100000 > "$GATE_DIR/degraded_run.txt"
  grep -q '^degraded:' "$GATE_DIR/degraded_run.txt" || {
    echo "ci.sh: query on corrupt signatures did not report degradation" >&2
    exit 1
  }
  grep '^  #' "$GATE_DIR/degraded_run.txt" | sort > "$GATE_DIR/degraded.txt"
  diff -u "$GATE_DIR/reference.txt" "$GATE_DIR/degraded.txt" || {
    echo "ci.sh: degraded answer differs from the reference" >&2
    exit 1
  }
  echo "ci.sh: corruption gate passed"
fi

if want cache; then
  echo "=== cache smoke ==="
  ensure_plain_build
  CACHE_DIR=build/cache-smoke
  mkdir -p "$CACHE_DIR"
  # bench_cache itself exits non-zero when the warm pass records no L1 hits,
  # misses the 2x warm-over-cold bar, or the hot pass falls below cold.
  (cd "$CACHE_DIR" &&
   PCUBE_CACHE_ROWS=2000 \
   PCUBE_CACHE_QUERIES=24 \
   PCUBE_CACHE_LATENCY_US=100 \
   PCUBE_CACHE_WORKERS=2 \
   PCUBE_CACHE_HOT_PASSES=2 \
   ../bench/bench_cache)
  for field in warm_over_cold l1_hit_rate; do
    if ! grep -q "\"$field\"" "$CACHE_DIR/BENCH_cache.json"; then
      echo "ci.sh: BENCH_cache.json is missing $field" >&2
      exit 1
    fi
  done
  for counter in pcube_result_cache_hits_total pcube_fragment_cache_hits_total \
                 pcube_result_cache_hit_rate; do
    if ! grep -q "^$counter" "$CACHE_DIR/BENCH_cache_metrics.prom"; then
      echo "ci.sh: metrics dump lacks $counter" >&2
      exit 1
    fi
  done
  if ! grep -q '"cache":' "$CACHE_DIR/BENCH_cache_querylog.jsonl"; then
    echo "ci.sh: query log records lack the cache: field" >&2
    exit 1
  fi
  mkdir -p build/artifacts
  cp "$CACHE_DIR"/BENCH_cache.json "$CACHE_DIR"/BENCH_cache_metrics.prom \
     "$CACHE_DIR"/BENCH_cache_querylog.jsonl build/artifacts/
  echo "ci.sh: cache smoke passed"
fi

if want shard; then
  echo "=== shard gate ==="
  ensure_plain_build
  # The differential property suite: sharded answers at 1/2/4/7 shards must
  # be result-identical to the unsharded workbench, and a hot request must
  # be served by the coordinator L1 without fanning out.
  ctest --test-dir build --output-on-failure -R '^shard_test$'
  SHARD_DIR=build/shard-smoke
  mkdir -p "$SHARD_DIR"
  # bench_shard exits non-zero itself when any shard count's answers
  # diverge from the 1-shard baseline.
  (cd "$SHARD_DIR" &&
   PCUBE_SHARD_SMOKE=1 \
   PCUBE_SHARD_ROWS=3000 \
   PCUBE_SHARD_QUERIES=30 \
   PCUBE_SHARD_LATENCY_US=100 \
   PCUBE_SHARD_POOL_PAGES=64 \
   PCUBE_SHARD_WORKERS=2 \
   ../bench/bench_shard)
  for field in shards qps speedup identical_to_baseline; do
    if ! grep -q "\"$field\"" "$SHARD_DIR/BENCH_shard.json"; then
      echo "ci.sh: BENCH_shard.json is missing $field" >&2
      exit 1
    fi
  done
  mkdir -p build/artifacts
  cp "$SHARD_DIR/BENCH_shard.json" build/artifacts/
  echo "ci.sh: shard gate passed"
fi

if want serve; then
  echo "=== serve gate ==="
  ensure_plain_build
  SERVE_DIR=build/serve-gate
  rm -rf "$SERVE_DIR"
  mkdir -p "$SERVE_DIR"
  PCUBE=build/tools/pcube
  "$PCUBE" generate --rows 3000 --bool 3 --pref 2 --card 8 --seed 5 \
    --out "$SERVE_DIR/data.csv" >/dev/null
  "$PCUBE" build --csv "$SERVE_DIR/data.csv" --spec bbbpp --header \
    --db "$SERVE_DIR/serve.pcube" >/dev/null
  # Reference answer from a local (in-process) run of the same query.
  "$PCUBE" skyline --db "$SERVE_DIR/serve.pcube" --where "0=#3" \
    --limit 100000 | awk '/^  #/ {print $1}' | sort > "$SERVE_DIR/reference.txt"
  [ -s "$SERVE_DIR/reference.txt" ] || {
    echo "ci.sh: serve gate reference query returned nothing" >&2; exit 1; }

  # Background server on an ephemeral port (parsed from its banner).
  "$PCUBE" serve --db "$SERVE_DIR/serve.pcube" --port 0 \
    > "$SERVE_DIR/server.log" 2>&1 &
  SERVE_PID=$!
  trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
  PORT=""
  for _ in $(seq 50); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$SERVE_DIR/server.log")
    [ -n "$PORT" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || {
      echo "ci.sh: pcube serve died on startup" >&2
      cat "$SERVE_DIR/server.log" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "ci.sh: no port in serve banner" >&2; exit 1; }

  # Client smoke: the remote answer must equal the local reference.
  "$PCUBE" query --connect "127.0.0.1:$PORT" --where "0=#3" \
    --limit 100000 | awk '/^  #/ {print $1}' | sort > "$SERVE_DIR/remote.txt"
  diff -u "$SERVE_DIR/reference.txt" "$SERVE_DIR/remote.txt" || {
    echo "ci.sh: remote answer differs from the local run" >&2
    exit 1
  }

  # Malformed-frame gate: raw garbage on the socket must not take the
  # server down or poison later, well-formed queries.
  head -c 64 /dev/urandom > "/dev/tcp/127.0.0.1/$PORT" || true
  printf 'not a pcube frame' > "/dev/tcp/127.0.0.1/$PORT" || true
  kill -0 "$SERVE_PID" 2>/dev/null || {
    echo "ci.sh: server died on malformed input" >&2; exit 1; }
  "$PCUBE" query --connect "127.0.0.1:$PORT" --where "0=#3" \
    --limit 100000 | awk '/^  #/ {print $1}' | sort > "$SERVE_DIR/after_garbage.txt"
  diff -u "$SERVE_DIR/reference.txt" "$SERVE_DIR/after_garbage.txt" || {
    echo "ci.sh: answers changed after malformed frames" >&2
    exit 1
  }

  # Clean shutdown on SIGTERM.
  kill -TERM "$SERVE_PID"
  wait "$SERVE_PID" || {
    echo "ci.sh: pcube serve exited non-zero on SIGTERM" >&2; exit 1; }
  trap - EXIT
  grep -q 'shutting down' "$SERVE_DIR/server.log" || {
    echo "ci.sh: serve shutdown banner missing" >&2; exit 1; }

  # Overload gate: bench_serve exits non-zero itself when the 2x offered
  # load is not shed or admitted traffic sees hard failures.
  (cd "$SERVE_DIR" && PCUBE_SERVE_SMOKE=1 ../bench/bench_serve)
  for field in qps shed_rate queue_wait_p50 queue_wait_p95 queue_wait_p99; do
    if ! grep -q "\"$field\"" "$SERVE_DIR/BENCH_serve.json"; then
      echo "ci.sh: BENCH_serve.json is missing $field" >&2
      exit 1
    fi
  done
  mkdir -p build/artifacts
  cp "$SERVE_DIR/BENCH_serve.json" build/artifacts/
  echo "ci.sh: serve gate passed"
fi

if want ingest; then
  echo "=== ingest gate ==="
  ensure_plain_build
  cmake --build build -j "$JOBS" --target bench_ingest
  # Crash-recovery gate: a child is SIGKILLed mid-commit; the reopen must
  # replay the WAL, verify clean, and answer exactly like a never-crashed
  # reference that applied the recovered prefix of batches.
  ctest --test-dir build --output-on-failure -R '^crash_recovery_test$'

  INGEST_DIR=build/ingest-gate
  rm -rf "$INGEST_DIR"
  mkdir -p "$INGEST_DIR"
  PCUBE=build/tools/pcube

  # CLI write-path round trip: stream rows through the WAL, verify the
  # sidecar, then tear the log — verify must report the torn tail (crash
  # residue degrades, it does not fail) and the healed database must answer.
  "$PCUBE" generate --rows 2000 --bool 2 --pref 2 --card 6 --seed 9 \
    --out "$INGEST_DIR/base.csv" >/dev/null
  "$PCUBE" build --csv "$INGEST_DIR/base.csv" --spec bbpp --header \
    --db "$INGEST_DIR/ingest.pcube" >/dev/null
  "$PCUBE" generate --rows 500 --bool 2 --pref 2 --card 6 --seed 10 \
    --out "$INGEST_DIR/extra.csv" >/dev/null
  "$PCUBE" ingest --db "$INGEST_DIR/ingest.pcube" --csv "$INGEST_DIR/extra.csv" \
    --spec bbpp --header --batch 128 > "$INGEST_DIR/ingest.log"
  grep -q '^ingested 500 row' "$INGEST_DIR/ingest.log" || {
    echo "ci.sh: pcube ingest did not acknowledge 500 rows" >&2; exit 1; }
  "$PCUBE" verify --db "$INGEST_DIR/ingest.pcube" > "$INGEST_DIR/verify.log" || {
    echo "ci.sh: verify failed after ingest" >&2; exit 1; }
  grep -q '^wal: ' "$INGEST_DIR/verify.log" || {
    echo "ci.sh: verify did not inspect the WAL sidecar" >&2; exit 1; }
  # The verify above recovered and checkpointed, emptying the log. Refill it
  # so the corruption below lands inside a live record, not a zeroed region.
  "$PCUBE" ingest --db "$INGEST_DIR/ingest.pcube" --csv "$INGEST_DIR/extra.csv" \
    --spec bbpp --header --batch 128 > "$INGEST_DIR/ingest2.log"
  "$PCUBE" corrupt --db "$INGEST_DIR/ingest.pcube" --wal >/dev/null
  "$PCUBE" verify --db "$INGEST_DIR/ingest.pcube" \
    > "$INGEST_DIR/verify_torn.log" || {
    echo "ci.sh: a torn WAL tail must degrade, not fail, verify" >&2; exit 1; }
  grep -q 'torn tail' "$INGEST_DIR/verify_torn.log" || {
    echo "ci.sh: verify missed the torn WAL tail" >&2; exit 1; }
  "$PCUBE" skyline --db "$INGEST_DIR/ingest.pcube" --where "0=#3" --limit 10 \
    >/dev/null || {
    echo "ci.sh: query failed after the WAL heal" >&2; exit 1; }

  # bench_ingest smoke: sustained WriteBatch ingest with real fsyncs, alone
  # and concurrent with query traffic. The binary is its own gate.
  (cd "$INGEST_DIR" &&
   PCUBE_INGEST_ROWS=2000 \
   PCUBE_INGEST_BATCHES=25 \
   PCUBE_INGEST_BATCH_ROWS=16 \
   PCUBE_INGEST_WRITERS=2 \
   PCUBE_INGEST_READERS=1 \
   ../bench/bench_ingest)
  for field in inserts_per_sec commit_p50_ms commit_p95_ms commit_p99_ms \
               mean_group_size; do
    if ! grep -q "\"$field\"" "$INGEST_DIR/BENCH_ingest.json"; then
      echo "ci.sh: BENCH_ingest.json is missing $field" >&2
      exit 1
    fi
  done
  mkdir -p build/artifacts
  cp "$INGEST_DIR/BENCH_ingest.json" build/artifacts/
  echo "ci.sh: ingest gate passed"
fi

if want simd; then
  echo "=== simd kernel smoke ==="
  ensure_plain_build
  cmake --build build -j "$JOBS" --target bench_micro
  SIMD_DIR=build/simd-smoke
  mkdir -p "$SIMD_DIR"
  # bench_micro's smoke mode exits non-zero itself when the AVX2 kernels
  # are dispatched but miss the 2x intersect / 1.5x dominance bars.
  (cd "$SIMD_DIR" && PCUBE_SIMD_SMOKE=1 ../bench/bench_micro)
  for field in simd_level intersect_speedup dominance_speedup; do
    if ! grep -q "\"$field\"" "$SIMD_DIR/BENCH_simd.json"; then
      echo "ci.sh: BENCH_simd.json is missing $field" >&2
      exit 1
    fi
  done
  mkdir -p build/artifacts
  cp "$SIMD_DIR/BENCH_simd.json" build/artifacts/
  echo "ci.sh: simd smoke passed"
fi

if want simd-off; then
  echo "=== scalar fallback (PCUBE_SIMD=OFF) ==="
  cmake -B build-simd-off -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPCUBE_SIMD=OFF
  cmake --build build-simd-off -j "$JOBS"
  ctest --test-dir build-simd-off --output-on-failure
fi

echo "ci.sh: selected phases green (${PHASES[*]})"
